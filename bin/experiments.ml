(* Command-line driver regenerating every figure of the paper plus the
   ablation suite. `experiments all` reproduces the full evaluation. *)

open Cmdliner

let seed_arg =
  let doc = "Master seed for workload generation." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let seeds_arg =
  let doc = "Replication seeds (comma-separated)." in
  Arg.(value & opt (list int) [ 42; 43 ] & info [ "seeds" ] ~docv:"SEEDS" ~doc)

let alpha_arg =
  let doc = "LMTF/P-LMTF sample size alpha." in
  Arg.(value & opt int 4 & info [ "alpha" ] ~docv:"ALPHA" ~doc)

let samples_arg =
  let doc = "Probe flows per Fig.1 point." in
  Arg.(value & opt int 400 & info [ "samples" ] ~docv:"N" ~doc)

let util_arg =
  let doc = "Background fabric-utilisation target (0-0.95)." in
  Arg.(value & opt float 0.70 & info [ "util" ] ~docv:"U" ~doc)

let events_arg =
  let doc = "Number of queued update events." in
  Arg.(value & opt int 30 & info [ "events" ] ~docv:"N" ~doc)

let no_churn_arg =
  let doc = "Keep the background static (no churn)." in
  Arg.(value & flag & info [ "no-churn" ] ~doc)

(* ------------------------------------------------------------------ *)
(* Observability plumbing shared by summary / report / all.            *)

let trace_arg =
  let doc =
    "Record a span trace of the run and write it to $(docv) in Chrome \
     trace_event format (open in chrome://tracing or ui.perfetto.dev)."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let counters_arg =
  let doc = "Print the observability counter table after the run." in
  Arg.(value & flag & info [ "counters" ] ~doc)

let hist_arg =
  let doc =
    "Record latency/size histograms (planner, migration, per-event service \
     times) during the run and include them in the JSON report."
  in
  Arg.(value & flag & info [ "hist" ] ~doc)

let series_arg =
  let doc =
    "Sample the per-round gauge time-series (queue length, retry backlog, \
     utilisation) during the run and include it in the JSON report."
  in
  Arg.(value & flag & info [ "series" ] ~doc)

(* Run [f] under the requested instrumentation: capture spans in memory
   and export them as a Chrome trace on exit; print the counter delta
   attributable to [f]. *)
let with_obs ~trace ~counters f =
  let before = Obs.Counters.snapshot () in
  let captured =
    match trace with
    | None -> None
    | Some path ->
        let sink, events = Obs.Trace.memory () in
        Obs.Trace.install sink;
        Some (path, events)
  in
  Fun.protect
    ~finally:(fun () ->
      (match captured with
      | Some (path, events) ->
          Obs.Trace.uninstall ();
          let evs = events () in
          Obs.Export.write_chrome path evs;
          Format.printf "trace: wrote %d span events to %s@."
            (List.length evs) path
      | None -> ());
      if counters then
        Format.printf "%a@." Obs.Counters.pp_table
          (Obs.Counters.diff ~before ~after:(Obs.Counters.snapshot ())))
    f

let policy_arg =
  let doc =
    "Policy for the report run: $(b,fifo), $(b,reorder), $(b,lmtf), \
     $(b,plmtf), $(b,flow-rr) or $(b,flow-arrival)."
  in
  Arg.(
    value
    & opt
        (enum
           [
             ("fifo", `Fifo);
             ("reorder", `Reorder);
             ("lmtf", `Lmtf);
             ("plmtf", `Plmtf);
             ("flow-rr", `Flow_rr);
             ("flow-arrival", `Flow_arrival);
           ])
        `Plmtf
    & info [ "policy" ] ~docv:"POLICY" ~doc)

let out_arg =
  let doc = "Write the JSON report to $(docv) instead of stdout." in
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)

let summary_cmd =
  let run seed alpha util n_events no_churn trace counters =
    with_obs ~trace ~counters (fun () ->
        let scenario = Scenario.prepare ~utilization:util ~seed () in
        Format.printf "network: %a@." Net_state.pp scenario.Scenario.net;
        let events = Scenario.events scenario ~n:n_events in
        let policies =
          [
            Policy.Fifo;
            Policy.Lmtf { alpha };
            Policy.Plmtf { alpha };
            Policy.Flow_level Policy.Round_robin;
          ]
        in
        let summaries =
          List.map
            (fun policy ->
              let churn =
                if no_churn then None
                else Some (Scenario.churn ~target:util ~seed:(seed + 2) scenario)
              in
              Metrics.of_run
                (Engine.run ?churn ~seed:(seed + 1)
                   ~net:(Net_state.copy scenario.Scenario.net)
                   ~events policy))
            policies
        in
        List.iter (fun s -> Format.printf "%a@." Metrics.pp_summary s) summaries;
        match summaries with
        | baseline :: others ->
            Format.printf "%a@."
              (fun ppf -> Metrics.pp_comparison ppf ~baseline)
              others
        | [] -> ())
  in
  Cmd.v
    (Cmd.info "summary"
       ~doc:"One-shot policy comparison with configurable workload")
    Term.(
      const run $ seed_arg $ alpha_arg $ util_arg $ events_arg $ no_churn_arg
      $ trace_arg $ counters_arg)

let policy_of_tag ~alpha = function
  | `Fifo -> Policy.Fifo
  | `Reorder -> Policy.Reorder
  | `Lmtf -> Policy.Lmtf { alpha }
  | `Plmtf -> Policy.Plmtf { alpha }
  | `Flow_rr -> Policy.Flow_level Policy.Round_robin
  | `Flow_arrival -> Policy.Flow_level Policy.By_arrival

let report_cmd =
  let run seed alpha util n_events no_churn policy_tag out trace counters hist
      with_series =
    with_obs ~trace ~counters (fun () ->
        let scenario = Scenario.prepare ~utilization:util ~seed () in
        let events = Scenario.events scenario ~n:n_events in
        let policy = policy_of_tag ~alpha policy_tag in
        let churn =
          if no_churn then None
          else Some (Scenario.churn ~target:util ~seed:(seed + 2) scenario)
        in
        if hist then begin
          Obs.Histogram.Registry.reset ();
          Obs.Histogram.Registry.enable ()
        end;
        let series = if with_series then Some (Engine.make_series ()) else None in
        let before = Obs.Counters.snapshot () in
        let run_result =
          Engine.run ?churn ?series ~seed:(seed + 1)
            ~net:(Net_state.copy scenario.Scenario.net)
            ~events policy
        in
        let run_counters =
          Obs.Counters.diff ~before ~after:(Obs.Counters.snapshot ())
        in
        let histograms =
          if hist then begin
            Obs.Histogram.Registry.disable ();
            Some (Obs.Histogram.Registry.snapshot ())
          end
          else None
        in
        let json =
          Run_report.to_json ~counters:run_counters ?histograms ?series
            run_result
        in
        match out with
        | None -> print_endline (Obs.Json.to_string json)
        | Some path ->
            Out_channel.with_open_text path (fun oc ->
                output_string oc (Obs.Json.to_string json);
                output_char oc '\n');
            Format.printf "report: wrote %s@." path)
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Emit one run as a JSON artifact: summary, per-event results, \
          round log, counter snapshot and (on request) histograms and the \
          per-round series")
    Term.(
      const run $ seed_arg $ alpha_arg $ util_arg $ events_arg $ no_churn_arg
      $ policy_arg $ out_arg $ trace_arg $ counters_arg $ hist_arg
      $ series_arg)

let profile_policy_arg =
  let doc =
    "Policy for the profiled run: $(b,fifo), $(b,reorder), $(b,lmtf), \
     $(b,plmtf), $(b,flow-rr) or $(b,flow-arrival)."
  in
  Arg.(
    value
    & opt
        (enum
           [
             ("fifo", `Fifo);
             ("reorder", `Reorder);
             ("lmtf", `Lmtf);
             ("plmtf", `Plmtf);
             ("flow-rr", `Flow_rr);
             ("flow-arrival", `Flow_arrival);
           ])
        `Lmtf
    & info [ "policy" ] ~docv:"POLICY" ~doc)

let collapsed_arg =
  let doc =
    "Write perf-style collapsed stacks to $(docv) (feed to flamegraph.pl or \
     paste into speedscope)."
  in
  Arg.(value & opt (some string) None & info [ "collapsed" ] ~docv:"FILE" ~doc)

let top_arg =
  let doc = "Rows in the printed hotspot table." in
  Arg.(value & opt int 10 & info [ "top" ] ~docv:"N" ~doc)

let series_csv_arg =
  let doc = "Write the per-round gauge series to $(docv) as CSV." in
  Arg.(value & opt (some string) None & info [ "series-csv" ] ~docv:"FILE" ~doc)

let profile_cmd =
  let run seed alpha util n_events no_churn policy_tag top collapsed series_csv
      out =
    let scenario = Scenario.prepare ~utilization:util ~seed () in
    let events = Scenario.events scenario ~n:n_events in
    let policy = policy_of_tag ~alpha policy_tag in
    let churn =
      if no_churn then None
      else Some (Scenario.churn ~target:util ~seed:(seed + 2) scenario)
    in
    (* The whole observability stack goes on for the run: spans feed the
       profiler, the registry feeds the histogram blocks, the series
       captures the per-round trajectory. *)
    let sink, captured = Obs.Trace.memory () in
    Obs.Trace.install sink;
    Obs.Histogram.Registry.reset ();
    Obs.Histogram.Registry.enable ();
    let series = Engine.make_series () in
    let before = Obs.Counters.snapshot () in
    let run_result =
      Fun.protect
        ~finally:(fun () ->
          Obs.Histogram.Registry.disable ();
          Obs.Trace.uninstall ())
        (fun () ->
          Engine.run ?churn ~series ~seed:(seed + 1)
            ~net:(Net_state.copy scenario.Scenario.net)
            ~events policy)
    in
    let run_counters =
      Obs.Counters.diff ~before ~after:(Obs.Counters.snapshot ())
    in
    let profile = Obs.Profile.of_events (captured ()) in
    let histograms = Obs.Histogram.Registry.snapshot () in
    Format.printf "profile: %d spans over %d events, %d rounds@."
      (Obs.Profile.span_count profile)
      (Array.length run_result.Engine.events)
      run_result.Engine.rounds;
    Format.printf "%a@." (Obs.Profile.pp_hotspots ~top) profile;
    List.iter
      (fun (name, h) -> Format.printf "%-28s %a@." name Obs.Histogram.pp h)
      histograms;
    (match collapsed with
    | None -> ()
    | Some path ->
        Out_channel.with_open_text path (fun oc ->
            output_string oc (Obs.Profile.collapsed profile));
        Format.printf "profile: wrote collapsed stacks to %s@." path);
    (match series_csv with
    | None -> ()
    | Some path ->
        Out_channel.with_open_text path (fun oc ->
            output_string oc (Obs.Series.to_csv series));
        Format.printf "profile: wrote series CSV to %s@." path);
    match out with
    | None -> ()
    | Some path ->
        let json =
          Run_report.to_json ~counters:run_counters ~histograms ~series
            ~profile run_result
        in
        Out_channel.with_open_text path (fun oc ->
            output_string oc (Obs.Json.to_string json);
            output_char oc '\n');
        Format.printf "profile: wrote report to %s@." path
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Profile one run: span-tree hotspot table, histogram summaries, \
          flamegraph-ready collapsed stacks, per-round series CSV and a \
          full JSON report")
    Term.(
      const run $ seed_arg $ alpha_arg $ util_arg $ events_arg $ no_churn_arg
      $ profile_policy_arg $ top_arg $ collapsed_arg $ series_csv_arg
      $ out_arg)

let fig1_cmd =
  let run seed samples = Nu_expt.Fig1.run ~seed ~samples () in
  Cmd.v
    (Cmd.info "fig1" ~doc:"Success probability of migration-free insertion")
    Term.(const run $ seed_arg $ samples_arg)

let fig2_cmd =
  Cmd.v
    (Cmd.info "fig2" ~doc:"Worked example: flow-level vs event-level order")
    Term.(const Nu_expt.Fig2.run $ const ())

let fig3_cmd =
  Cmd.v
    (Cmd.info "fig3" ~doc:"Worked example: FIFO vs cost-ordered execution")
    Term.(const Nu_expt.Fig3.run $ const ())

let fig4_cmd =
  let run seeds = Nu_expt.Fig4.run ~seeds () in
  Cmd.v
    (Cmd.info "fig4" ~doc:"Flow-level vs event-level as events grow")
    Term.(const run $ seeds_arg)

let fig5_cmd =
  let run seeds = Nu_expt.Fig5.run ~seeds () in
  Cmd.v
    (Cmd.info "fig5" ~doc:"Flow-level vs event-level as the queue grows")
    Term.(const run $ seeds_arg)

let fig6_cmd =
  let run seeds alpha = Nu_expt.Fig6.run ~seeds ~alpha () in
  Cmd.v
    (Cmd.info "fig6" ~doc:"LMTF/P-LMTF reductions vs FIFO and plan time")
    Term.(const run $ seeds_arg $ alpha_arg)

let fig7_cmd =
  let run seeds alpha = Nu_expt.Fig7.run ~seeds ~alpha () in
  Cmd.v
    (Cmd.info "fig7" ~doc:"P-LMTF vs FIFO across event types and utilisation")
    Term.(const run $ seeds_arg $ alpha_arg)

let fig8_cmd =
  let run seeds alpha = Nu_expt.Fig8.run ~seeds ~alpha () in
  Cmd.v
    (Cmd.info "fig8" ~doc:"Queuing-delay reductions vs FIFO")
    Term.(const run $ seeds_arg $ alpha_arg)

let fig9_cmd =
  let run seed alpha = Nu_expt.Fig9.run ~seed ~alpha () in
  Cmd.v
    (Cmd.info "fig9" ~doc:"Per-event queuing delay under the three policies")
    Term.(const run $ seed_arg $ alpha_arg)

let mixed_cmd =
  let run seed alpha = Nu_expt.Mixed_issues.run ~seed ~alpha () in
  Cmd.v
    (Cmd.info "mixed"
       ~doc:"Extension: queue mixing additions, VM migrations, switch upgrades and link failures")
    Term.(const run $ seed_arg $ alpha_arg)

let arrivals_cmd =
  let run seed alpha = Nu_expt.Arrival_study.run ~seed ~alpha () in
  Cmd.v
    (Cmd.info "arrivals"
       ~doc:"Extension: Poisson event arrivals — ECT vs offered load")
    Term.(const run $ seed_arg $ alpha_arg)

let ablation_cmd =
  Cmd.v
    (Cmd.info "ablation" ~doc:"Design-choice ablations (alpha, greedy order, admission, routing)")
    Term.(const Nu_expt.Ablation.run_all $ const ())

let fault_seed_arg =
  let doc = "Seed for the generated fault schedule." in
  Arg.(value & opt int 7 & info [ "fault-seed" ] ~docv:"SEED" ~doc)

let fault_rate_arg =
  let doc = "Primary faults per simulated second." in
  Arg.(value & opt float 0.2 & info [ "fault-rate" ] ~docv:"RATE" ~doc)

let retry_max_arg =
  let doc = "Aborted attempts before an event degrades to best-effort." in
  Arg.(value & opt int 3 & info [ "retry-max" ] ~docv:"N" ~doc)

let chaos_cmd =
  let run seed alpha util n_events fault_seed fault_rate retry_max out trace
      counters =
    with_obs ~trace ~counters (fun () ->
        let params =
          {
            Nu_expt.Chaos.seed;
            fault_seed;
            fault_rate;
            retry_max;
            utilization = util;
            n_events;
            alpha;
          }
        in
        let result = Nu_expt.Chaos.run ~params () in
        Nu_expt.Chaos.print result;
        (match out with
        | None -> ()
        | Some path ->
            Out_channel.with_open_text path (fun oc ->
                output_string oc
                  (Obs.Json.to_string (Nu_expt.Chaos.result_to_json result));
                output_char oc '\n');
            Format.printf "chaos: wrote %s@." path);
        if result.Nu_expt.Chaos.violations > 0 then exit 1)
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Robustness: run a policy under a seeded fault schedule; exits \
          non-zero on any update-consistency invariant violation")
    Term.(
      const run $ seed_arg $ alpha_arg $ util_arg $ events_arg $ fault_seed_arg
      $ fault_rate_arg $ retry_max_arg $ out_arg $ trace_arg $ counters_arg)

(* ------------------------------------------------------------------ *)
(* Online serving: serve / snapshot / replay.                          *)

let ticks_arg =
  let doc = "Controller ticks to serve." in
  Arg.(value & opt int 200 & info [ "ticks" ] ~docv:"N" ~doc)

let rate_arg =
  let doc = "Mean update events arriving per tick (synthetic source)." in
  Arg.(value & opt float 0.4 & info [ "rate" ] ~docv:"R" ~doc)

let flows_per_event_arg =
  let doc = "Install flows per synthetic update event." in
  Arg.(value & opt int 3 & info [ "flows-per-event" ] ~docv:"N" ~doc)

let tenants_arg =
  let doc = "Tenant labels (comma-separated) for synthetic arrivals." in
  Arg.(
    value
    & opt (list string) [ "tenant-a"; "tenant-b"; "tenant-c" ]
    & info [ "tenants" ] ~docv:"NAMES" ~doc)

let stream_arg =
  let doc =
    "Serve the JSONL command stream in $(docv) instead of the synthetic \
     arrival process (one {\"tick\":N,\"tenant\":\"...\",\"event\":{...}} \
     object per line, tick-sorted)."
  in
  Arg.(value & opt (some string) None & info [ "stream" ] ~docv:"FILE" ~doc)

let admission_conv =
  let parse s =
    match Admission.policy_of_name s with
    | Ok p -> Ok p
    | Error m -> Error (`Msg m)
  in
  let print ppf p = Format.pp_print_string ppf (Admission.policy_name p) in
  Arg.conv ~docv:"POLICY" (parse, print)

let admission_arg =
  let doc =
    "Backpressure policy when the admission queue fills: $(b,block), \
     $(b,drop-newest), $(b,drop-oldest) or $(b,tenant-quota(N))."
  in
  Arg.(
    value & opt admission_conv Admission.Block
    & info [ "admission" ] ~docv:"POLICY" ~doc)

let capacity_arg =
  let doc = "Admission queue capacity (requests)." in
  Arg.(value & opt int 64 & info [ "capacity" ] ~docv:"N" ~doc)

let drain_arg =
  let doc = "Max requests drained into the engine per tick." in
  Arg.(value & opt int 8 & info [ "drain" ] ~docv:"N" ~doc)

let steps_arg =
  let doc = "Max engine service rounds per tick." in
  Arg.(value & opt int 4 & info [ "steps" ] ~docv:"N" ~doc)

let domains_arg =
  let doc =
    "Probe fan-out width (OCaml domains). Decisions and digests are \
     bit-identical at any width; replay may use a different width than the \
     recorded run."
  in
  Arg.(value & opt int 1 & info [ "domains" ] ~docv:"N" ~doc)

let tick_dt_arg =
  let doc = "Simulated seconds per controller tick." in
  Arg.(value & opt float 0.05 & info [ "tick-dt" ] ~docv:"SECONDS" ~doc)

let serve_churn_arg =
  let doc = "Enable checkpoint-safe background churn at the --util target." in
  Arg.(value & flag & info [ "churn" ] ~doc)

let checkpoint_arg =
  let doc =
    "Checkpoint file. With --checkpoint-every K, saved after every K-th \
     tick; otherwise saved once after the serving phase."
  in
  Arg.(value & opt (some string) None & info [ "checkpoint" ] ~docv:"FILE" ~doc)

let checkpoint_every_arg =
  let doc = "Checkpoint period in ticks (0 = only at end of serving)." in
  Arg.(value & opt int 0 & info [ "checkpoint-every" ] ~docv:"K" ~doc)

let journal_arg =
  let doc = "Write the append-only operation journal to $(docv) (JSONL)." in
  Arg.(value & opt (some string) None & info [ "journal" ] ~docv:"FILE" ~doc)

let no_complete_arg =
  let doc = "Stop after the serving phase without draining to quiescence." in
  Arg.(value & flag & info [ "no-complete" ] ~doc)

let expect_digest_arg =
  let doc = "Fail (exit 1) unless the final decision digest equals $(docv)." in
  Arg.(value & opt (some string) None & info [ "expect-digest" ] ~docv:"HEX" ~doc)

let upto_arg =
  let doc = "Replay journal ticks strictly below $(docv) only." in
  Arg.(value & opt (some int) None & info [ "upto" ] ~docv:"TICK" ~doc)

let serve_fault_rate_arg =
  let doc = "Primary faults per simulated second during serving (0 = none)." in
  Arg.(value & opt float 0.0 & info [ "fault-rate" ] ~docv:"RATE" ~doc)

let metrics_dir_arg =
  let doc =
    "Enable live telemetry and write the OpenMetrics exposition file \
     ($(docv)/metrics.prom, atomic rename) and the request-lifecycle JSONL \
     ($(docv)/lifecycle.jsonl) there."
  in
  Arg.(value & opt (some string) None & info [ "metrics-dir" ] ~docv:"DIR" ~doc)

let metrics_every_arg =
  let doc = "Rewrite the exposition file every $(docv) ticks." in
  Arg.(value & opt int 10 & info [ "metrics-every" ] ~docv:"N" ~doc)

let watch_flag_arg =
  let doc =
    "Attach the streaming watchdog (requires $(b,--metrics-dir)): CUSUM \
     change-point, backlog-slope, fairness-collapse and WAL/restart-rate \
     detectors drive per-tenant health state machines; alerts stream to \
     $(i,DIR)/alerts.jsonl, observations to $(i,DIR)/watch.jsonl, and \
     alerts.json/health.json are written at retirement."
  in
  Arg.(value & flag & info [ "watch" ] ~doc)

(* The serving configuration and source spec are rebuilt identically by
   serve and replay from the same flags — restore validates the pair
   against the checkpoint's fingerprint. *)
let serve_cfg_term =
  let mk seed alpha util policy_tag capacity admission drain steps tick_dt
      churn domains =
    {
      Serve.policy = policy_of_tag ~alpha policy_tag;
      engine_seed = seed + 1;
      admission_capacity = capacity;
      admission_policy = admission;
      drain_per_tick = drain;
      steps_per_tick = steps;
      tick_dt_s = tick_dt;
      co_max_cost_mbit = 0.0;
      estimate_cache = true;
      churn =
        (if churn then
           Some
             {
               Serve.churn_seed = seed + 2;
               churn_target = util;
               churn_max_per_round = 200;
               churn_first_id = 10_000_000;
             }
         else None);
      domains;
    }
  in
  Term.(
    const mk $ seed_arg $ alpha_arg $ util_arg $ policy_arg $ capacity_arg
    $ admission_arg $ drain_arg $ steps_arg $ tick_dt_arg $ serve_churn_arg
    $ domains_arg)

let source_spec_term =
  let mk seed rate flows_per_event tenants stream =
    match stream with
    | Some path -> Serve_source.Stream path
    | None ->
        Serve_source.Synthetic
          {
            seed = seed + 3;
            rate_per_tick = rate;
            flows_per_event;
            tenants;
            first_event_id = 1;
            first_flow_id = 1_000_000;
          }
  in
  Term.(
    const mk $ seed_arg $ rate_arg $ flows_per_event_arg $ tenants_arg
    $ stream_arg)

let print_serve_summary t result =
  Format.printf
    "serve: %d tick(s), %d event(s) completed, %d round(s), backlog %d, \
     queue %d, deferred %d@."
    (Serve.tick_count t)
    (Array.length result.Engine.events)
    result.Engine.rounds (Serve.engine_backlog t)
    (Admission.size (Serve.admission t))
    (Serve.deferred_count t);
  List.iter
    (fun (tenant, (admitted, shed, drained)) ->
      Format.printf "  %-12s admitted %d, shed %d, drained %d@." tenant
        admitted shed drained)
    (Admission.tenant_stats (Serve.admission t))

(* Shared by serve and replay: telemetry is recording-only, so a replay
   may attach it even when the original run did not — the decision
   digest is unaffected either way. *)
let make_telemetry ~metrics_every ?(watch = false) metrics_dir =
  if watch && metrics_dir = None then begin
    Format.eprintf "serve: --watch requires --metrics-dir@.";
    exit 2
  end;
  Option.map
    (fun dir ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      Serve_telemetry.create
        {
          Serve_telemetry.default_config with
          Serve_telemetry.metrics_dir = Some dir;
          metrics_every;
          lifecycle_path = Some (Filename.concat dir "lifecycle.jsonl");
          watch =
            (if watch then
               Some { Obs.Watch.default_config with Obs.Watch.dir = Some dir }
             else None);
        })
    metrics_dir

let write_json path json =
  Out_channel.with_open_text path (fun oc ->
      output_string oc (Obs.Json.to_string json);
      output_char oc '\n')

(* After retirement: print the alert summary and drop the alerts.json /
   health.json artifacts next to the journals. *)
let finish_watch telemetry metrics_dir =
  match Option.bind telemetry Serve_telemetry.watch with
  | None -> None
  | Some w ->
      (match metrics_dir with
      | Some dir ->
          write_json (Filename.concat dir "alerts.json") (Obs.Watch.alerts_json w);
          write_json (Filename.concat dir "health.json") (Obs.Watch.health_json w)
      | None -> ());
      Format.printf
        "watch: %d alert(s) (%d critical), global health %s, digest %s@."
        (Obs.Watch.alert_total w)
        (Obs.Watch.critical_total w)
        (Obs.Health.state_name (Obs.Watch.global_state w))
        (Obs.Watch.alert_digest w);
      Some w

let print_telemetry_summary telemetry metrics_dir =
  match (telemetry, metrics_dir) with
  | Some tel, Some dir ->
      Format.printf "telemetry: %d stamp(s), %d exposition write(s) in %s@."
        (Obs.Lifecycle.stamped (Serve_telemetry.lifecycle tel))
        (Serve_telemetry.expo_writes tel)
        dir
  | _ -> ()

let shards_arg =
  let doc =
    "Serve through the sharded fabric with $(docv) shard controllers \
     (0 = classic single-controller path). One shard executes the exact \
     single-controller schedule, so its digest is bit-identical."
  in
  Arg.(value & opt int 0 & info [ "shards" ] ~docv:"N" ~doc)

let regions_arg =
  let doc =
    "Partition-map regions for --shards (0 = auto: max 8 shards). On the \
     pod-major Fat-Tree host numbering, 8 regions make a region a pod."
  in
  Arg.(value & opt int 0 & info [ "regions" ] ~docv:"R" ~doc)

let kill_shard_arg =
  let doc =
    "Crash-injection: abort shard $(docv)'s write-ahead journal mid-run \
     (with --kill-at), then recover the whole fabric from the checkpoint \
     + journals and keep serving. Requires --shards, --journal and \
     --checkpoint."
  in
  Arg.(value & opt int (-1) & info [ "kill-shard" ] ~docv:"K" ~doc)

let kill_at_arg =
  let doc = "Tick at which --kill-shard strikes (a checkpoint is saved \
             halfway there)." in
  Arg.(value & opt int 0 & info [ "kill-at" ] ~docv:"T" ~doc)

let print_shard_summary t =
  Format.printf
    "serve: %d tick(s), %d shard(s), %d event(s) completed, backlog %d, \
     coordinator %d journal entr(ies) %d pending@."
    (Shard_fabric.tick_count t)
    (Shard_fabric.shard_count t)
    (Shard_fabric.completed t)
    (let n = ref 0 in
     for k = 0 to Shard_fabric.shard_count t - 1 do
       n := !n + Shard_fabric.backlog t k
     done;
     !n)
    (Shard_coord.entries (Shard_fabric.coord t))
    (Shard_coord.pending_count (Shard_fabric.coord t));
  List.iteri
    (fun k d -> Format.printf "  shard %d digest %s@." k d)
    (Shard_fabric.shard_digests t)

(* The sharded serve path: N wave-synchronised controllers over one
   fabric, per-shard WAL segments plus a coordinator journal, optional
   mid-run crash of one shard's WAL followed by whole-fabric recovery.
   The printed digest must be bit-identical to the same run without the
   crash — and, with one shard, to the classic serve path. *)
let run_sharded cfg spec ~shards ~regions ~util ~seed ~ticks ~checkpoint
    ~journal_path ~no_complete ~kill_shard ~kill_at ~telemetry ~metrics_dir =
  let rec ensure_parent path =
    let dir = Filename.dirname path in
    if dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
      ensure_parent dir;
      Sys.mkdir dir 0o755
    end
  in
  Option.iter ensure_parent journal_path;
  Option.iter ensure_parent checkpoint;
  let scenario = Scenario.prepare ~utilization:util ~seed () in
  let fcfg =
    Shard_fabric.default_config
      ?regions:(if regions > 0 then Some regions else None)
      cfg ~shards
  in
  let t =
    Shard_fabric.create ?telemetry ?journal_base:journal_path fcfg
      ~topology:scenario.Scenario.topology ~net:scenario.Scenario.net
      ~source_spec:spec
  in
  let finish t =
    if not no_complete then Shard_fabric.complete t;
    print_shard_summary t;
    Format.printf "digest: %s@." (Shard_fabric.digest t);
    ignore (Shard_fabric.retire t : Engine.run_result list);
    print_telemetry_summary telemetry metrics_dir;
    ignore (finish_watch telemetry metrics_dir)
  in
  if kill_shard >= 0 && kill_at > 0 then begin
    let journal_base, cp_path =
      match (journal_path, checkpoint) with
      | Some jb, Some cp -> (jb, cp)
      | _ ->
          Format.eprintf "serve: --kill-shard requires --journal and \
                          --checkpoint@.";
          exit 2
    in
    if kill_shard >= shards then begin
      Format.eprintf "serve: --kill-shard %d out of range (shards %d)@."
        kill_shard shards;
      exit 2
    end;
    let cp_at = max 1 (kill_at / 2) in
    Shard_fabric.run t ~ticks:cp_at;
    Shard_fabric.save_checkpoint t ~path:cp_path;
    Shard_fabric.run t ~ticks:(kill_at - cp_at);
    Shard_fabric.kill_shard_journal t kill_shard;
    Format.printf "serve: killed shard %d's journal at tick %d@." kill_shard
      (Shard_fabric.tick_count t);
    (* The crashed fabric is abandoned where it stands; recovery works
       from durable state alone. *)
    match
      Shard_fabric.recover ?telemetry fcfg ~topology:scenario.Scenario.topology
        ~source_spec:spec ~checkpoint_path:cp_path ~journal_base
    with
    | Error m ->
        Format.eprintf "serve: recovery failed: %s@." m;
        exit 1
    | Ok (t2, replayed) ->
        Format.printf "serve: recovered at tick %d (%d tick(s) replayed)@."
          (Shard_fabric.tick_count t2)
          replayed;
        let remaining = ticks - Shard_fabric.tick_count t2 in
        if remaining > 0 then Shard_fabric.run t2 ~ticks:remaining;
        finish t2
  end
  else begin
    Shard_fabric.run t ~ticks;
    (match checkpoint with
    | Some path -> Shard_fabric.save_checkpoint t ~path
    | None -> ());
    finish t
  end

let serve_cmd =
  let run cfg spec seed util ticks fault_seed fault_rate retry_max checkpoint
      checkpoint_every journal_path no_complete metrics_dir metrics_every watch
      out trace counters hist shards regions kill_shard kill_at =
    with_obs ~trace ~counters (fun () ->
        try
          if shards > 0 then begin
            if fault_rate > 0.0 then begin
              Format.eprintf
                "serve: fault injection is unsupported with --shards@.";
              exit 2
            end;
            if out <> None then
              Format.eprintf
                "serve: note: --out is ignored with --shards@.";
            if hist then begin
              Obs.Histogram.Registry.reset ();
              Obs.Histogram.Registry.enable ()
            end;
            let telemetry = make_telemetry ~metrics_every ~watch metrics_dir in
            run_sharded cfg spec ~shards ~regions ~util ~seed ~ticks
              ~checkpoint ~journal_path ~no_complete ~kill_shard ~kill_at
              ~telemetry ~metrics_dir
          end
          else begin
          let scenario = Scenario.prepare ~utilization:util ~seed () in
          let injector =
            if fault_rate <= 0.0 then None
            else begin
              let fconfig =
                {
                  Fault_model.default_config with
                  Fault_model.rate_per_s = fault_rate;
                  horizon_s = float_of_int ticks *. cfg.Serve.tick_dt_s;
                }
              in
              let retry =
                {
                  Retry_policy.default with
                  Retry_policy.max_attempts = retry_max;
                }
              in
              Some
                (Injector.create ~retry
                   (Fault_model.generate ~config:fconfig ~seed:fault_seed
                      scenario.Scenario.topology))
            end
          in
          let journal = Option.map Journal.open_writer journal_path in
          if hist then begin
            Obs.Histogram.Registry.reset ();
            Obs.Histogram.Registry.enable ()
          end;
          let telemetry = make_telemetry ~metrics_every ~watch metrics_dir in
          let before = Obs.Counters.snapshot () in
          let t =
            Serve.create ?injector ?telemetry ?journal cfg
              ~topology:scenario.Scenario.topology ~net:scenario.Scenario.net
              ~source_spec:spec
          in
          Serve.run ?checkpoint_path:checkpoint ~checkpoint_every ~ticks t;
          (match checkpoint with
          | Some path when checkpoint_every = 0 ->
              ignore (Serve.save_checkpoint t path : string)
          | _ -> ());
          if not no_complete then Serve.complete t;
          let result = Serve.retire t in
          let run_counters =
            Obs.Counters.diff ~before ~after:(Obs.Counters.snapshot ())
          in
          let histograms =
            if hist then begin
              Obs.Histogram.Registry.disable ();
              Some (Obs.Histogram.Registry.snapshot ())
            end
            else None
          in
          print_serve_summary t result;
          Format.printf "digest: %s@." (Run_digest.of_run result);
          print_telemetry_summary telemetry metrics_dir;
          let watcher = finish_watch telemetry metrics_dir in
          match out with
          | None -> ()
          | Some path ->
              let json =
                Run_report.to_json ~counters:run_counters ?histograms
                  ?telemetry:(Option.map Serve_telemetry.to_json telemetry)
                  ?alerts:(Option.map Obs.Watch.report_json watcher)
                  result
              in
              write_json path json;
              Format.printf "serve: wrote %s@." path
          end
        with Invalid_argument m | Failure m ->
          Format.eprintf "serve: %s@." m;
          exit 1)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the online update controller: seeded or JSONL arrivals through \
          bounded admission into the incremental engine, with optional \
          fault injection, durable checkpoints and a write-ahead journal")
    Term.(
      const run $ serve_cfg_term $ source_spec_term $ seed_arg $ util_arg
      $ ticks_arg $ fault_seed_arg $ serve_fault_rate_arg $ retry_max_arg
      $ checkpoint_arg $ checkpoint_every_arg $ journal_arg $ no_complete_arg
      $ metrics_dir_arg $ metrics_every_arg $ watch_flag_arg $ out_arg
      $ trace_arg $ counters_arg $ hist_arg $ shards_arg $ regions_arg
      $ kill_shard_arg $ kill_at_arg)

let checkpoint_file_arg =
  let doc = "Checkpoint file to inspect." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"CHECKPOINT" ~doc)

let snapshot_cmd =
  let run path =
    let topology = Fat_tree.to_topology (Fat_tree.create ~k:8 ()) in
    match Serve_checkpoint.load ~graph:topology.Topology.graph path with
    | Error m ->
        Format.eprintf "snapshot: %s: %s@." path m;
        exit 1
    | Ok cp ->
        let st = cp.Serve_checkpoint.stepper in
        Format.printf "checkpoint: %s@." path;
        Format.printf "  tick:       %d@." cp.Serve_checkpoint.tick;
        Format.printf "  engine:     %d completed, %d queued, %d pending, \
                       %d held, %d round(s), now %.3f s@."
          (List.length st.Engine.Stepper.fz_results)
          (List.length st.Engine.Stepper.fz_queue)
          (List.length st.Engine.Stepper.fz_pending)
          (List.length st.Engine.Stepper.fz_held)
          st.Engine.Stepper.fz_rounds st.Engine.Stepper.fz_now;
        let queued =
          List.fold_left
            (fun acc (_, q) -> acc + List.length q)
            0 cp.Serve_checkpoint.admission.Admission.fz_queues
        in
        Format.printf "  admission:  %d queued across %d tenant(s), %d \
                       deferred@."
          queued
          (List.length cp.Serve_checkpoint.admission.Admission.fz_tenants)
          (List.length cp.Serve_checkpoint.deferred);
        Format.printf "  injector:   %s@."
          (match cp.Serve_checkpoint.injector with
          | None -> "none"
          | Some fz ->
              Printf.sprintf "%d fault(s) outstanding"
                (List.length fz.Injector.fz_pending));
        Format.printf "  source:     %s@."
          (match cp.Serve_checkpoint.source with
          | Serve_source.F_synthetic f ->
              Printf.sprintf "synthetic (next event id %d)" f.next_event_id
          | Serve_source.F_stream f -> Printf.sprintf "stream (pos %d)" f.pos);
        Format.printf "  meta:       %s@."
          (Obs.Json.to_string cp.Serve_checkpoint.meta)
  in
  Cmd.v
    (Cmd.info "snapshot"
       ~doc:"Validate a serve checkpoint and print its contents")
    Term.(const run $ checkpoint_file_arg)

let replay_journal_arg =
  let doc = "Operation journal to re-drive after restoring." in
  Arg.(value & opt (some string) None & info [ "journal" ] ~docv:"FILE" ~doc)

let replay_checkpoint_arg =
  let doc =
    "Checkpoint file to restore from. Required without --shards; with \
     --shards the fabric cold-starts from the journals when omitted."
  in
  Arg.(value & opt (some string) None & info [ "checkpoint" ] ~docv:"FILE" ~doc)

(* Shard-fabric external audit: rebuild the whole fabric (N shard WALs
   + coordinator journal) from durable state alone and assert the
   digest. Cold-starts the fabric net from the same scenario seed the
   serving run used, unless a checkpoint narrows the replay window. *)
let replay_sharded cfg spec ~shards ~regions ~seed ~util ~checkpoint
    ~journal_path ~no_complete ~telemetry ~metrics_dir ~expect_digest =
  let journal_base =
    match journal_path with
    | Some jb -> jb
    | None ->
        Format.eprintf "replay: --shards requires --journal BASE@.";
        exit 2
  in
  let scenario = Scenario.prepare ~utilization:util ~seed () in
  let fcfg =
    Shard_fabric.default_config
      ?regions:(if regions > 0 then Some regions else None)
      cfg ~shards
  in
  match
    Shard_fabric.replay ?telemetry ?checkpoint_path:checkpoint fcfg
      ~topology:scenario.Scenario.topology ~net:scenario.Scenario.net
      ~source_spec:spec ~journal_base
  with
  | Error m ->
      Format.eprintf "replay: %s@." m;
      exit 1
  | Ok (t, replayed) -> (
      Format.printf "replay: re-drove %d committed tick(s) across %d \
                     shard WAL(s)@."
        replayed shards;
      if not no_complete then Shard_fabric.complete t;
      let digest = Shard_fabric.digest t in
      print_shard_summary t;
      Format.printf "digest: %s@." digest;
      ignore (Shard_fabric.retire t : Engine.run_result list);
      print_telemetry_summary telemetry metrics_dir;
      ignore (finish_watch telemetry metrics_dir);
      match expect_digest with
      | Some d when d <> digest ->
          Format.eprintf "replay: digest mismatch: expected %s, got %s@." d
            digest;
          exit 1
      | Some _ -> Format.printf "replay: digest matches@."
      | None -> ())

let replay_cmd =
  let run cfg spec checkpoint journal_path upto retry_max no_complete
      metrics_dir metrics_every watch expect_digest shards regions seed util =
    let topology = Fat_tree.to_topology (Fat_tree.create ~k:8 ()) in
    if shards > 0 then begin
      let telemetry = make_telemetry ~metrics_every ~watch metrics_dir in
      replay_sharded cfg spec ~shards ~regions ~seed ~util ~checkpoint
        ~journal_path ~no_complete ~telemetry ~metrics_dir ~expect_digest;
      exit 0
    end;
    let checkpoint =
      match checkpoint with
      | Some cp -> cp
      | None ->
          Format.eprintf "replay: --checkpoint is required without --shards@.";
          exit 2
    in
    let retry =
      { Retry_policy.default with Retry_policy.max_attempts = retry_max }
    in
    let telemetry = make_telemetry ~metrics_every ~watch metrics_dir in
    match Serve.restore ~retry ?telemetry ~config:cfg ~source_spec:spec
            ~topology checkpoint
    with
    | Error m ->
        Format.eprintf "replay: %s@." m;
        exit 1
    | Ok t -> (
        Format.printf "replay: restored %s at tick %d@." checkpoint
          (Serve.tick_count t);
        (match journal_path with
        | None -> ()
        | Some jp -> (
            match Journal.read_report jp with
            | Error m ->
                Format.eprintf "replay: %s: %s@." jp m;
                exit 1
            | Ok report -> (
                if report.Journal.corrupt <> [] then
                  Format.printf "replay: skipped %d corrupt frame(s) in %s@."
                    (List.length report.Journal.corrupt)
                    jp;
                match Journal.last_commit report.Journal.entries with
                | Journal.Empty ->
                    Format.eprintf
                      "replay: %s holds no committed tick — the journal is \
                       empty, header-only or fully torn; nothing to re-drive@."
                      jp;
                    exit 1
                | Journal.Committed _ -> (
                    match Serve.replay_entries ?upto t report.Journal.entries with
                    | Error m ->
                        Format.eprintf "replay: %s@." m;
                        exit 1
                    | Ok n ->
                        Format.printf "replay: re-drove %d committed tick(s)@."
                          n))));
        if not no_complete then Serve.complete t;
        let digest = Serve.digest t in
        print_serve_summary t (Serve.result t);
        Format.printf "digest: %s@." digest;
        (* Final exposition write + lifecycle flush. *)
        Option.iter Serve_telemetry.on_retire telemetry;
        print_telemetry_summary telemetry metrics_dir;
        ignore (finish_watch telemetry metrics_dir);
        match expect_digest with
        | Some d when d <> digest ->
            Format.eprintf "replay: digest mismatch: expected %s, got %s@." d
              digest;
            exit 1
        | Some _ -> Format.printf "replay: digest matches@."
        | None -> ())
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:
         "Restore a serve checkpoint, re-drive its journal deterministically \
          and print (optionally assert) the decision digest"
       ~man:
         [
           `P
             "Telemetry is recording-only: attaching $(b,--metrics-dir) to a \
              replay never changes the digest, even when the original run \
              served without it.";
         ])
    Term.(
      const run $ serve_cfg_term $ source_spec_term $ replay_checkpoint_arg
      $ replay_journal_arg $ upto_arg $ retry_max_arg $ no_complete_arg
      $ metrics_dir_arg $ metrics_every_arg $ watch_flag_arg
      $ expect_digest_arg $ shards_arg $ regions_arg $ seed_arg $ util_arg)

(* ------------------------------------------------------------------ *)
(* Crash storm: the same serving run twice — once uninterrupted, once
   under seeded storage faults and supervision — asserting the storm
   changes nothing about the decisions.                                 *)

let crashes_arg =
  let doc = "Number of seeded storage faults (crash/corrupt points)." in
  Arg.(value & opt int 8 & info [ "crashes" ] ~docv:"N" ~doc)

let storm_dir_arg =
  let doc =
    "Directory for the storm's durable store (journal + checkpoint chain) \
     and report artifacts (faults.json, recovery.json, journal_report.json)."
  in
  Arg.(
    value & opt string "crashstorm_out" & info [ "dir" ] ~docv:"DIR" ~doc)

let max_restarts_arg =
  let doc = "Give up after $(docv) supervised restarts." in
  Arg.(value & opt int 16 & info [ "max-restarts" ] ~docv:"N" ~doc)

let crashstorm_cmd =
  let run cfg spec seed util ticks crashes fault_seed max_restarts dir trace
      counters =
    with_obs ~trace ~counters (fun () ->
        try
          (* Reference: the identical run, uninterrupted and storeless. *)
          let s0 = Scenario.prepare ~utilization:util ~seed () in
          let t0 =
            Serve.create cfg ~topology:s0.Scenario.topology
              ~net:s0.Scenario.net ~source_spec:spec
          in
          Serve.run ~ticks t0;
          Serve.complete t0;
          let reference = Serve.digest t0 in
          ignore (Serve.retire t0 : Engine.run_result);
          Format.printf "uninterrupted digest: %s@." reference;
          (* Stormed run: durable store under seeded fault pressure. *)
          if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
          let journal_path = Filename.concat dir "journal.wal" in
          let checkpoint_path = Filename.concat dir "checkpoint.json" in
          let stale =
            (checkpoint_path ^ ".tmp")
            :: List.map (Serve_checkpoint.Chain.gen_path checkpoint_path)
                 (List.init 9 Fun.id)
            @ List.map (Journal.segment_path journal_path) (List.init 9 Fun.id)
          in
          List.iter (fun p -> if Sys.file_exists p then Sys.remove p) stale;
          let plan =
            Store_fault.generate
              ~config:
                {
                  Store_fault.default_config with
                  Store_fault.n_faults = crashes;
                  ops_span = max 40 (ticks * 3);
                }
              ~seed:fault_seed ()
          in
          let fault = Store_fault.create plan in
          let storm = Scenario.prepare ~utilization:util ~seed () in
          let fresh_net () =
            (Scenario.prepare ~utilization:util ~seed ()).Scenario.net
          in
          let outcome =
            Supervisor.run
              ~sup:
                {
                  Supervisor.default_config with
                  Supervisor.max_restarts;
                }
              ~fault
              ~jitter_seed:(seed lxor (fault_seed * 0x9E3779B1))
              ~serve_config:cfg ~source_spec:spec
              ~topology:storm.Scenario.topology ~fresh_net ~journal_path
              ~checkpoint_path ~ticks ()
          in
          let write_json path json =
            Out_channel.with_open_text path (fun oc ->
                output_string oc (Obs.Json.to_string json);
                output_char oc '\n')
          in
          write_json (Filename.concat dir "faults.json")
            (Store_fault.to_json fault);
          write_json
            (Filename.concat dir "recovery.json")
            (Obs.Json.Obj
               [
                 ("reference_digest", Obs.Json.String reference);
                 ("outcome", Supervisor.outcome_to_json outcome);
               ]);
          (match Journal.read_report journal_path with
          | Ok report ->
              write_json
                (Filename.concat dir "journal_report.json")
                (Journal.report_to_json report)
          | Error m -> Format.eprintf "crashstorm: journal report: %s@." m);
          Format.printf
            "storm: %d fault(s) armed, %d fired, %d restart(s), %d corrupt \
             frame(s) skipped@."
            (List.length plan)
            (Store_fault.fired_count fault)
            outcome.Supervisor.restarts outcome.Supervisor.corrupt_frames;
          List.iter
            (fun e ->
              match e with
              | Supervisor.Failed { attempt; cls; reason; _ } ->
                  Format.printf "  attempt %d died: [%s] %s@." attempt
                    (Supervisor.class_name cls)
                    reason
              | Supervisor.Started { attempt; from_tick; fallback_depth; replayed }
                when fallback_depth > 0 ->
                  Format.printf
                    "  attempt %d recovered from tick %d (fallback depth %d, \
                     %d tick(s) replayed)@."
                    attempt from_tick fallback_depth replayed
              | _ -> ())
            outcome.Supervisor.events;
          Format.printf "recovery digest: %s@." outcome.Supervisor.recovery_digest;
          if outcome.Supervisor.gave_up then begin
            Format.eprintf "crashstorm: supervisor gave up after %d restart(s)@."
              outcome.Supervisor.restarts;
            exit 1
          end;
          let digest = Option.get outcome.Supervisor.digest in
          Format.printf "digest: %s@." digest;
          if digest <> reference then begin
            Format.eprintf
              "crashstorm: digest mismatch: storm %s, uninterrupted %s@."
              digest reference;
            exit 1
          end;
          Format.printf
            "crashstorm: storm digest matches uninterrupted digest@."
        with Invalid_argument m | Failure m ->
          Format.eprintf "crashstorm: %s@." m;
          exit 1)
  in
  Cmd.v
    (Cmd.info "crashstorm"
       ~doc:
         "Serve under seeded storage faults (torn writes, bit flips, ENOSPC, \
          fsync loss, kills) with supervised recovery, and assert the \
          decision digest matches the uninterrupted run bit-for-bit"
       ~man:
         [
           `P
             "The storm leaves its durable store in $(b,--dir); audit it \
              externally with $(b,replay --checkpoint DIR/checkpoint.json \
              --journal DIR/journal.wal --expect-digest D) where D is the \
              printed digest.";
         ])
    Term.(
      const run $ serve_cfg_term $ source_spec_term $ seed_arg $ util_arg
      $ ticks_arg $ crashes_arg $ fault_seed_arg $ max_restarts_arg
      $ storm_dir_arg $ trace_arg $ counters_arg)

(* ------------------------------------------------------------------ *)
(* Telemetry summary: render a metrics dir (lifecycle JSONL + exposition
   file) into a per-tenant / SLO table.                                 *)

let telemetry_dir_arg =
  let doc = "Metrics directory written by $(b,serve --metrics-dir)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR" ~doc)

let telemetry_cmd =
  let run dir =
    let prom = Filename.concat dir "metrics.prom" in
    let jsonl = Filename.concat dir "lifecycle.jsonl" in
    if not (Sys.file_exists prom) && not (Sys.file_exists jsonl) then begin
      Format.eprintf "telemetry: %s has neither metrics.prom nor \
                      lifecycle.jsonl@." dir;
      exit 1
    end;
    if Sys.file_exists prom then begin
      let text = In_channel.with_open_text prom In_channel.input_all in
      match Obs.Expo.validate text with
      | Error m ->
          Format.eprintf "telemetry: %s: invalid exposition: %s@." prom m;
          exit 1
      | Ok () ->
          Format.printf "exposition: %s OK (%d byte(s), %d line(s))@." prom
            (String.length text)
            (List.length (String.split_on_char '\n' text) - 1)
    end;
    if Sys.file_exists jsonl then begin
      match Obs.Lifecycle.read_jsonl jsonl with
      | Error m ->
          Format.eprintf "telemetry: %s: %s@." jsonl m;
          exit 1
      | Ok { Obs.Lifecycle.read = entries; torn } ->
          (match torn with
          | Some (n, _) ->
              Format.printf
                "lifecycle: torn trailing line %d skipped (crash mid-append)@."
                n
          | None -> ());
          (* Rebuild per-tenant stats from the stamp stream. Terminal
             stamps carry the tenant attribution; a degraded completion
             is counted as completed too. *)
          let tenants : (string, int array * Obs.Histogram.t) Hashtbl.t =
            Hashtbl.create 8
          in
          let overall = Obs.Histogram.create () in
          (* slots: arrived admitted shed completed degraded *)
          let slot name i =
            let stats, hist =
              match Hashtbl.find_opt tenants name with
              | Some v -> v
              | None ->
                  let v = (Array.make 5 0, Obs.Histogram.create ()) in
                  Hashtbl.add tenants name v;
                  v
            in
            stats.(i) <- stats.(i) + 1;
            hist
          in
          let tn (e : Obs.Lifecycle.entry) =
            if e.Obs.Lifecycle.tenant = "" then "unknown"
            else e.Obs.Lifecycle.tenant
          in
          List.iter
            (fun (e : Obs.Lifecycle.entry) ->
              match e.Obs.Lifecycle.stage with
              | Obs.Lifecycle.Arrived -> ignore (slot (tn e) 0)
              | Obs.Lifecycle.Admitted -> ignore (slot (tn e) 1)
              | Obs.Lifecycle.Shed _ -> ignore (slot (tn e) 2)
              | Obs.Lifecycle.Completed { ect_s } ->
                  Obs.Histogram.record (slot (tn e) 3) ect_s;
                  Obs.Histogram.record overall ect_s
              | Obs.Lifecycle.Degraded { ect_s; _ } ->
                  Obs.Histogram.record (slot (tn e) 3) ect_s;
                  ignore (slot (tn e) 4);
                  Obs.Histogram.record overall ect_s
              | Obs.Lifecycle.Deferred | Obs.Lifecycle.Submitted _
              | Obs.Lifecycle.Planned _ | Obs.Lifecycle.Aborted _
              | Obs.Lifecycle.Retry_scheduled _ -> ())
            entries;
          let rows =
            Hashtbl.fold (fun name v acc -> (name, v) :: acc) tenants []
            |> List.sort (fun (a, _) (b, _) -> compare a b)
          in
          Format.printf "lifecycle: %s, %d stamp(s), %d tenant(s)@." jsonl
            (List.length entries) (List.length rows);
          Format.printf "%-14s %8s %8s %6s %9s %8s %10s %10s@." "tenant"
            "arrived" "admitted" "shed" "completed" "degraded" "mean-ect"
            "p99-ect";
          let fopt h f =
            if Obs.Histogram.is_empty h then "-"
            else Printf.sprintf "%.3f" (f h)
          in
          List.iter
            (fun (name, (stats, hist)) ->
              Format.printf "%-14s %8d %8d %6d %9d %8d %10s %10s@." name
                stats.(0) stats.(1) stats.(2) stats.(3) stats.(4)
                (fopt hist Obs.Histogram.mean)
                (fopt hist Obs.Histogram.p99))
            rows;
          (* Jain's fairness index over per-tenant mean ECT. *)
          let means =
            List.filter_map
              (fun (_, (_, h)) ->
                if Obs.Histogram.is_empty h then None
                else Some (Obs.Histogram.mean h))
              rows
          in
          (match means with
          | [] -> Format.printf "jain index: - (no completions)@."
          | xs ->
              let n = float_of_int (List.length xs) in
              let s = List.fold_left ( +. ) 0.0 xs in
              let s2 = List.fold_left (fun a x -> a +. (x *. x)) 0.0 xs in
              Format.printf "jain index: %.4f over %d tenant(s)@."
                (if s2 = 0.0 then 1.0 else s *. s /. (n *. s2))
                (List.length xs));
          if not (Obs.Histogram.is_empty overall) then
            Format.printf "overall ECT: mean %.3f s, p99 %.3f s, p999 %.3f s \
                           (%d completion(s))@."
              (Obs.Histogram.mean overall)
              (Obs.Histogram.p99 overall)
              (Obs.Histogram.p999 overall)
              (Obs.Histogram.count overall)
    end
  in
  Cmd.v
    (Cmd.info "telemetry"
       ~doc:
         "Validate a serve metrics directory (OpenMetrics exposition file) \
          and summarise its lifecycle JSONL into a per-tenant fairness/SLO \
          table")
    Term.(const run $ telemetry_dir_arg)

(* ------------------------------------------------------------------ *)
(* Offline watchdog evaluation over a recorded metrics directory.      *)

let watch_dir_arg =
  let doc =
    "Metrics directory recorded by $(b,serve --metrics-dir) (ideally with \
     $(b,--watch), so it holds the watch.jsonl observation journal)."
  in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR" ~doc)

let watch_out_arg =
  let doc = "Write alerts.json and health.json into $(docv) (default DIR)." in
  Arg.(value & opt (some string) None & info [ "o"; "out-dir" ] ~docv:"DIR" ~doc)

let from_lifecycle_arg =
  let doc =
    "Reconstruct the observation stream from lifecycle.jsonl instead of \
     watch.jsonl. Approximate (counter deltas are zero, gauges are \
     rebuilt from stamps): alert digests are not comparable to a live \
     watcher's, so no digest diff is performed."
  in
  Arg.(value & flag & info [ "from-lifecycle" ] ~doc)

let watch_cmd =
  let run dir out_dir from_lifecycle =
    let watch_jsonl = Filename.concat dir "watch.jsonl" in
    let alerts_jsonl = Filename.concat dir "alerts.jsonl" in
    let fail fmt =
      Format.kasprintf
        (fun m ->
          Format.eprintf "watch: %s@." m;
          exit 2)
        fmt
    in
    let w, live_comparable =
      if (not from_lifecycle) && Sys.file_exists watch_jsonl then begin
        match Obs.Watch.read_journal watch_jsonl with
        | Error m -> fail "%s" m
        | Ok j ->
            (match j.Obs.Watch.j_torn with
            | Some n ->
                Format.printf
                  "watch: torn trailing line %d of %s skipped (crash \
                   mid-append)@."
                  n watch_jsonl
            | None -> ());
            let cfg =
              Option.value j.Obs.Watch.j_config
                ~default:Obs.Watch.default_config
            in
            let w = Obs.Watch.create cfg in
            List.iter (Obs.Watch.ingest w) j.Obs.Watch.j_obs;
            Format.printf "watch: re-evaluated %d journaled tick(s) from %s@."
              (List.length j.Obs.Watch.j_obs)
              watch_jsonl;
            (w, true)
      end
      else begin
        let lifecycle = Filename.concat dir "lifecycle.jsonl" in
        if not (Sys.file_exists lifecycle) then
          fail "%s holds neither watch.jsonl nor lifecycle.jsonl" dir;
        match Obs.Lifecycle.read_jsonl lifecycle with
        | Error m -> fail "%s" m
        | Ok { Obs.Lifecycle.read = entries; torn } ->
            (match torn with
            | Some (n, _) ->
                Format.printf
                  "watch: torn trailing line %d of %s skipped@." n lifecycle
            | None -> ());
            let w = Obs.Watch.create Obs.Watch.default_config in
            let obs = Obs.Watch.obs_of_lifecycle entries in
            List.iter (Obs.Watch.ingest w) obs;
            Format.printf
              "watch: reconstructed %d tick(s) from %d lifecycle stamp(s) \
               (approximate: no counter deltas)@."
              (List.length obs) (List.length entries);
            (w, false)
      end
    in
    let out = Option.value out_dir ~default:dir in
    if not (Sys.file_exists out) then Sys.mkdir out 0o755;
    write_json (Filename.concat out "alerts.json") (Obs.Watch.alerts_json w);
    write_json (Filename.concat out "health.json") (Obs.Watch.health_json w);
    Format.printf
      "watch: %d alert(s) (%d critical), global health %s, digest %s@."
      (Obs.Watch.alert_total w)
      (Obs.Watch.critical_total w)
      (Obs.Health.state_name (Obs.Watch.global_state w))
      (Obs.Watch.alert_digest w);
    Format.printf "watch: wrote %s and %s@."
      (Filename.concat out "alerts.json")
      (Filename.concat out "health.json");
    (* Differential check against the live run's alert journal: the
       offline re-evaluation must reproduce it bit for bit. *)
    if live_comparable && Sys.file_exists alerts_jsonl then begin
      match Obs.Watch.read_alerts_digest alerts_jsonl with
      | Error m -> fail "%s" m
      | Ok (live_digest, lines) ->
          if live_digest <> Obs.Watch.alert_digest w then begin
            Format.eprintf
              "watch: digest mismatch: live journal %s (%d line(s)) vs \
               offline %s@."
              live_digest lines
              (Obs.Watch.alert_digest w);
            exit 3
          end;
          Format.printf "watch: digest matches live journal (%d line(s))@."
            lines
    end;
    if Obs.Watch.critical_total w > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "watch"
       ~doc:
         "Evaluate the watchdog detectors offline over a recorded metrics \
          directory, write alerts.json/health.json, diff the alert digest \
          against the live journal, and exit non-zero when Critical alerts \
          are present"
       ~man:
         [
           `P
             "Exit status: 0 = healthy, 1 = Critical alerts present, 2 = \
              unreadable input, 3 = offline digest diverges from the live \
              alert journal.";
         ])
    Term.(const run $ watch_dir_arg $ watch_out_arg $ from_lifecycle_arg)

let all_cmd =
  let run seeds alpha trace counters =
    with_obs ~trace ~counters (fun () ->
        Nu_expt.Fig2.run ();
        Nu_expt.Fig3.run ();
        Nu_expt.Fig1.run ();
        Nu_expt.Fig4.run ~seeds ();
        Nu_expt.Fig5.run ~seeds ();
        Nu_expt.Fig6.run ~seeds ~alpha ();
        Nu_expt.Fig7.run ~seeds ~alpha ();
        Nu_expt.Fig8.run ~seeds ~alpha ();
        Nu_expt.Fig9.run ~alpha ();
        Nu_expt.Mixed_issues.run ~alpha ();
        Nu_expt.Arrival_study.run ~alpha ();
        Nu_expt.Ablation.run_all ())
  in
  Cmd.v
    (Cmd.info "all" ~doc:"Regenerate every figure and the ablations")
    Term.(const run $ seeds_arg $ alpha_arg $ trace_arg $ counters_arg)

let main =
  Cmd.group
    (Cmd.info "experiments" ~version:"1.0.0"
       ~doc:
         "Trace-driven evaluation of event-level network update (ICDCS'17 \
          reproduction)")
    [
      fig1_cmd;
      fig2_cmd;
      fig3_cmd;
      fig4_cmd;
      fig5_cmd;
      fig6_cmd;
      fig7_cmd;
      fig8_cmd;
      fig9_cmd;
      summary_cmd;
      report_cmd;
      profile_cmd;
      mixed_cmd;
      arrivals_cmd;
      ablation_cmd;
      chaos_cmd;
      serve_cmd;
      snapshot_cmd;
      replay_cmd;
      crashstorm_cmd;
      telemetry_cmd;
      watch_cmd;
      all_cmd;
    ]

let () = exit (Cmd.eval main)
