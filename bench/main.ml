(* Benchmark harness.

   Part 1 - Bechamel micro-benchmarks: one Test.make per paper figure
   (a reduced kernel of the experiment each figure runs) plus the hot
   substrate kernels (planning, migration clearing, state copy, ECMP
   enumeration). Reported as ns/run via OLS on the monotonic clock.

   Part 2 - the full figure series: every table the paper's evaluation
   reports, regenerated at the default experiment sizes (the same output
   `experiments all` produces). Shapes, not absolute times, are the
   reproduction target; see EXPERIMENTS.md. *)

open Bechamel
open Toolkit

(* ------------------------------------------------------------------ *)
(* Shared fixtures, built once. *)

let scenario = lazy (Core.Scenario.prepare ~utilization:0.70 ~seed:42 ())

let small_events n =
  let s = Lazy.force scenario in
  Core.Scenario.events ~shape:(Core.Event_gen.Range (8, 15)) s ~n

let bench_event = lazy (List.hd (small_events 1))
let bench_queue = lazy (small_events 8)

let run_policy policy =
  let s = Lazy.force scenario in
  let events = Lazy.force bench_queue in
  ignore
    (Core.Engine.run ~seed:3
       ~net:(Core.Net_state.copy s.Core.Scenario.net)
       ~events policy)

(* ------------------------------------------------------------------ *)
(* Micro-benchmarks.

   Fixtures are allocated through Test.make_with_resource so the
   scenario lazy is forced when a benchmark starts, not while this list
   is being constructed at module load (which would bill fixture setup
   to startup), and so each test gets its own PRNG rather than sharing
   stream state with its neighbours. *)

let substrate_tests () =
  [
    Test.make_with_resource ~name:"prng-bits64" Test.uniq
      ~allocate:(fun () -> Core.Prng.create 99)
      ~free:ignore
      (Staged.stage (fun rng -> ignore (Core.Prng.bits64 rng)));
    Test.make_with_resource ~name:"dist-bounded-pareto" Test.uniq
      ~allocate:(fun () -> Core.Prng.create 100)
      ~free:ignore
      (Staged.stage (fun rng ->
           ignore (Core.Dist.bounded_pareto rng ~shape:1.1 ~lo:1.0 ~hi:400.0)));
    Test.make_with_resource ~name:"fat-tree-ecmp-interpod" Test.uniq
      ~allocate:(fun () -> (Lazy.force scenario).Core.Scenario.fat_tree)
      ~free:ignore
      (Staged.stage (fun ft ->
           ignore
             (Core.Fat_tree.ecmp_paths ft ~src:(Core.Fat_tree.host ft 0)
                ~dst:(Core.Fat_tree.host ft 127))));
    Test.make_with_resource ~name:"net-state-copy" Test.uniq
      ~allocate:(fun () -> (Lazy.force scenario).Core.Scenario.net)
      ~free:ignore
      (Staged.stage (fun net -> ignore (Core.Net_state.copy net)));
    Test.make_with_resource ~name:"planner-cost-of" Test.uniq
      ~allocate:(fun () ->
        ((Lazy.force scenario).Core.Scenario.net, Lazy.force bench_event))
      ~free:ignore
      (Staged.stage (fun (net, ev) -> ignore (Core.Planner.cost_of net ev)));
    Test.make_with_resource ~name:"planner-plan-revert" Test.uniq
      ~allocate:(fun () ->
        ((Lazy.force scenario).Core.Scenario.net, Lazy.force bench_event))
      ~free:ignore
      (Staged.stage (fun (net, ev) ->
           let plan = Core.Planner.plan net ev in
           Core.Planner.revert net plan));
  ]

let figure_tests () =
  [
    Test.make ~name:"fig1-probe-50-flows"
      (Staged.stage (fun () ->
           let s = Lazy.force scenario in
           let rng = Core.Prng.create 1 in
           for i = 0 to 49 do
             let r =
               (Core.Yahoo_trace.generate ~first_id:(900_000 + i) rng
                  ~host_count:128 ~n:1).(0)
             in
             let d = Core.Flow_record.demand_mbps r in
             ignore
               (match Core.Routing.desired_path s.Core.Scenario.net r with
               | Some p ->
                   Core.Net_state.path_feasible s.Core.Scenario.net p ~demand:d
               | None -> false)
           done));
    Test.make ~name:"fig2-slot-model"
      (Staged.stage (fun () ->
           ignore (Nu_expt.Fig2.flow_level ~flows_per_event:[ 4; 4; 4 ]);
           ignore (Nu_expt.Fig2.event_level ~flows_per_event:[ 4; 4; 4 ])));
    Test.make ~name:"fig3-slot-model"
      (Staged.stage (fun () ->
           ignore (Nu_expt.Fig3.completions Nu_expt.Fig3.paper_events)));
    Test.make ~name:"fig4-event-level-run"
      (Staged.stage (fun () -> run_policy Core.Policy.Fifo));
    Test.make ~name:"fig5-flow-level-run"
      (Staged.stage (fun () ->
           run_policy (Core.Policy.Flow_level Core.Policy.Round_robin)));
    Test.make ~name:"fig6-lmtf-run"
      (Staged.stage (fun () -> run_policy (Core.Policy.Lmtf { alpha = 4 })));
    Test.make ~name:"fig7-plmtf-run"
      (Staged.stage (fun () -> run_policy (Core.Policy.Plmtf { alpha = 4 })));
    Test.make ~name:"fig8-queuing-metrics"
      (Staged.stage (fun () ->
           let s = Lazy.force scenario in
           let run =
             Core.Engine.run ~seed:3
               ~net:(Core.Net_state.copy s.Core.Scenario.net)
               ~events:(Lazy.force bench_queue)
               (Core.Policy.Plmtf { alpha = 4 })
           in
           ignore (Core.Metrics.of_run run)));
    Test.make ~name:"fig9-per-event-delays"
      (Staged.stage (fun () ->
           let s = Lazy.force scenario in
           let run =
             Core.Engine.run ~seed:3
               ~net:(Core.Net_state.copy s.Core.Scenario.net)
               ~events:(Lazy.force bench_queue)
               (Core.Policy.Lmtf { alpha = 4 })
           in
           ignore (Core.Metrics.queuing_delays run)));
  ]

let run_benchmarks tests =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~stabilize:false
      ~kde:(Some 10) ()
  in
  let counters_before = Core.Obs.Counters.snapshot () in
  let raw = Benchmark.all cfg instances (Test.make_grouped ~name:"bench" tests) in
  let counters_after = Core.Obs.Counters.snapshot () in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name est acc -> (name, est) :: acc) results [] in
  let rows = List.sort compare rows in
  Printf.printf "%-44s %16s %10s\n" "benchmark" "ns/run" "r^2";
  List.iter
    (fun (name, est) ->
      let ns =
        match Analyze.OLS.estimates est with
        | Some (v :: _) -> Printf.sprintf "%.0f" v
        | _ -> "-"
      in
      let r2 =
        match Analyze.OLS.r_square est with
        | Some v -> Printf.sprintf "%.3f" v
        | None -> "-"
      in
      Printf.printf "%-44s %16s %10s\n" name ns r2)
    rows;
  (* Work-unit accounting for the whole benchmark pass: how many planner
     probes, migrations, state copies etc. the measured iterations
     consumed, next to their ns/run. *)
  Format.printf "%a@."
    Core.Obs.Counters.pp_table
    (Core.Obs.Counters.diff ~before:counters_before ~after:counters_after)

let () =
  print_endline "=== Part 1: Bechamel micro-benchmarks (ns/run) ===";
  run_benchmarks (substrate_tests () @ figure_tests ());
  print_newline ();
  print_endline "=== Part 2: full figure regeneration (paper evaluation) ===";
  Nu_expt.Fig2.run ();
  Nu_expt.Fig3.run ();
  Nu_expt.Fig1.run ();
  Nu_expt.Fig4.run ();
  Nu_expt.Fig5.run ();
  Nu_expt.Fig6.run ();
  Nu_expt.Fig7.run ();
  Nu_expt.Fig8.run ();
  Nu_expt.Fig9.run ();
  print_endline "=== Part 3: design-choice ablations ===";
  Nu_expt.Ablation.run_all ()
