(* Bench regression gate: diff a current sched_bench JSON document
   against a committed baseline (BENCH_PR6.json) and fail CI on a
   planning-wall regression beyond tolerance or any decision-digest
   change. All comparison logic lives in Core.Obs.Regress (unit-tested);
   this is the file-reading, exit-code-setting shell around it.

     dune exec bench/compare.exe -- \
       --baseline BENCH_PR6.json --current bench_now.json \
       --json-out bench_delta.json

   Exit codes: 0 the gate passes, 1 regression/digest failure, 2 the
   documents are not comparable (workload or schema mismatch, unreadable
   or malformed input). *)

let baseline_file = ref ""
let current_file = ref ""
let max_regress = ref 0.15
let json_out = ref ""

let args =
  [
    ("--baseline", Arg.Set_string baseline_file, "FILE committed baseline JSON");
    ("--current", Arg.Set_string current_file, "FILE freshly produced run JSON");
    ( "--max-regress",
      Arg.Set_float max_regress,
      "F tolerated fractional planning-wall increase (default 0.15)" );
    ( "--json-out",
      Arg.Set_string json_out,
      "FILE write a machine-readable delta document (written even when the \
       gate fails or the runs are incomparable)" );
  ]

let usage =
  "compare --baseline FILE --current FILE [--max-regress F] [--json-out FILE]"

(* The delta document is the CI artifact: write it on every path that
   has two parsed inputs, including incomparable ones. *)
let write_delta ~baseline ~current =
  if !json_out <> "" then begin
    let doc =
      Core.Obs.Regress.delta_json ~max_regress:!max_regress ~baseline ~current
        ()
    in
    let oc = open_out !json_out in
    output_string oc (Core.Obs.Json.to_string doc);
    output_char oc '\n';
    close_out oc;
    Printf.printf "delta written to %s\n" !json_out
  end

let incomparable fmt =
  Printf.ksprintf
    (fun s ->
      Printf.eprintf "compare: %s\n%!" s;
      exit 2)
    fmt

let load label path =
  if path = "" then incomparable "missing --%s FILE" label;
  match
    let ic = open_in path in
    let len = in_channel_length ic in
    let body = really_input_string ic len in
    close_in ic;
    Core.Obs.Json.of_string body
  with
  | Ok j -> j
  | Error e -> incomparable "%s %s: parse error: %s" label path e
  | exception Sys_error e -> incomparable "cannot read %s: %s" label e

let () =
  Arg.parse args (fun _ -> raise (Arg.Bad "no positional arguments")) usage;
  let baseline = load "baseline" !baseline_file in
  let current = load "current" !current_file in
  write_delta ~baseline ~current;
  match
    Core.Obs.Regress.check ~max_regress:!max_regress ~baseline ~current ()
  with
  | Error reason -> incomparable "%s" reason
  | Ok { Core.Obs.Regress.failures; notes } ->
      List.iter (fun n -> Printf.printf "note: %s\n" n) notes;
      List.iter (fun f -> Printf.printf "FAIL: %s\n" f) failures;
      if failures = [] then begin
        Printf.printf "bench gate: PASS (%s vs %s)\n" !current_file
          !baseline_file;
        exit 0
      end
      else begin
        Printf.printf "bench gate: FAIL (%d failure%s)\n" (List.length failures)
          (if List.length failures = 1 then "" else "s");
        exit 1
      end
