(* Scheduler-level benchmark: events-per-second and probes-per-round on
   the k=8 Fat-Tree under churn, for the sampling policies whose hot
   path is Planner probing (LMTF and Reorder), plus the fault-injection
   scenarios: an empty fault schedule (whose digest must equal the
   fault-free run — the fault hooks are required to cost nothing when
   idle) and a seeded fault-churn run exercising abort/retry/degrade.

   Emits machine-readable JSON (BENCH_PR6.json) so the perf trajectory
   of the planning hot path is tracked per-PR:

     dune exec bench/sched_bench.exe -- --out BENCH_PR6.json
     dune exec bench/sched_bench.exe -- --quick --out BENCH_PR6.json

   [--baseline FILE] merges a previously recorded run (e.g. one taken on
   the pre-optimisation tree) under the "baseline" key and reports the
   planning-wall speedup against it.

   Besides timing, every scenario digests its run_result (event ids,
   ECT-defining timestamps, costs, probe counts, rounds) into a stable
   FNV-1a hash. Identical seeds must produce identical digests across
   optimisation work — the planner/scheduler fast paths are required to
   be bit-identical rewrites, not approximations. *)

let quick = ref false
let out_file = ref ""
let baseline_file = ref ""
let seed = ref 42
let only : string list ref = ref []
let domains = ref 1

let args =
  [
    ("--quick", Arg.Set quick, "reduced event count (CI smoke mode)");
    ("--out", Arg.Set_string out_file, "FILE write JSON results to FILE");
    ( "--baseline",
      Arg.Set_string baseline_file,
      "FILE merge a prior run's JSON as the comparison baseline" );
    ("--seed", Arg.Set_int seed, "N scenario seed (default 42)");
    ( "--scenario",
      Arg.String (fun s -> only := s :: !only),
      "NAME run only the named scenario (repeatable); digest cross-checks \
       apply only when both sides ran" );
    ( "--domains",
      Arg.Set_int domains,
      "N probe fan-out width for the *-mc scenarios (default 1 skips them)" );
  ]

let usage =
  "sched_bench [--quick] [--out FILE] [--baseline FILE] [--seed N] [--scenario \
   NAME]... [--domains N]"

(* ------------------------------------------------------------------ *)
(* Stable digest of a run_result.                                      *)

let fnv_prime = 0x100000001b3L
let fnv_basis = 0xcbf29ce484222325L

let fnv64 h x =
  let h = Int64.logxor h x in
  Int64.mul h fnv_prime

let fnv_float h f = fnv64 h (Int64.bits_of_float f)
let fnv_int h i = fnv64 h (Int64.of_int i)

let digest_of_run (r : Core.Engine.run_result) =
  let h = ref fnv_basis in
  Array.iter
    (fun (e : Core.Engine.event_result) ->
      h := fnv_int !h e.Core.Engine.event_id;
      h := fnv_float !h e.Core.Engine.arrival_s;
      h := fnv_float !h e.Core.Engine.start_s;
      h := fnv_float !h e.Core.Engine.completion_s;
      h := fnv_float !h e.Core.Engine.cost_mbit;
      h := fnv_int !h e.Core.Engine.plan_work_units;
      h := fnv_int !h e.Core.Engine.failed_items;
      h := fnv_int !h (if e.Core.Engine.co_scheduled then 1 else 0))
    r.Core.Engine.events;
  h := fnv_int !h r.Core.Engine.rounds;
  h := fnv_int !h r.Core.Engine.total_plan_units;
  h := fnv_float !h r.Core.Engine.total_cost_mbit;
  h := fnv_float !h r.Core.Engine.makespan_s;
  (* fabric_utilization is deliberately left out: it is telemetry whose
     low-order bits depend on summation order (the incremental Kahan sum
     vs a fresh fold), not a scheduling decision. The digest covers the
     decisions — ECTs, costs, rounds, batches, work units. *)
  List.iter
    (fun (ri : Core.Engine.round_info) ->
      h := fnv_float !h ri.Core.Engine.round_start_s;
      List.iter (fun id -> h := fnv_int !h id) ri.Core.Engine.executed;
      h := fnv_int !h ri.Core.Engine.round_units)
    r.Core.Engine.rounds_log;
  Printf.sprintf "%016Lx" !h

(* ------------------------------------------------------------------ *)
(* One measured scenario.                                              *)

type measurement = {
  m_name : string;
  m_events : int;
  m_rounds : int;
  m_plan_units : int;
  m_planning_wall_s : float;
  m_run_wall_s : float;
  m_events_per_s : float;
  m_probes_per_round : float;
  m_total_cost_mbit : float;
  m_digest : string;
  m_recovery_digest : string option;
  m_counters : Core.Obs.Counters.snapshot;
}

let now_s () = Unix.gettimeofday ()

let measure ~name ~policy ~n_events ?(faults = `Off) ?(obs = false)
    ?(stepper = false) ?(telemetry = `Off) ?(wal = false) ?(domains = 1)
    ?(shards = 0) ?(churn_big = false) () =
  (* A fresh scenario per measurement: the run mutates its network. *)
  let s = Core.Scenario.prepare ~k:8 ~utilization:0.70 ~seed:!seed () in
  let events = Core.Scenario.events s ~n:n_events in
  let churn =
    if churn_big then
      (* The million-flow churn cap scenario: a hotter refill setpoint
         and a deeper per-round refill, flow ids drawn from the churn
         window above 10M. The run loop hard-caps churn placements at
         one million. *)
      { (Core.Scenario.churn ~target:0.85 s) with
        Core.Engine.max_placements_per_round = 2000 }
    else Core.Scenario.churn ~target:0.70 s
  in
  (* [obs] turns the whole observability stack on for the run — memory
     trace sink, histogram registry, per-round series — to measure its
     overhead and prove it does not perturb a single decision. *)
  let series =
    if obs then begin
      let sink, _ = Core.Obs.Trace.memory () in
      Core.Obs.Trace.install sink;
      Core.Obs.Histogram.Registry.reset ();
      Core.Obs.Histogram.Registry.enable ();
      Some (Core.Engine.make_series ())
    end
    else None
  in
  let injector =
    match faults with
    | `Off -> None
    | `Empty -> Some (Core.Injector.create [])
    | `Seeded ->
        let config =
          {
            Core.Fault_model.default_config with
            Core.Fault_model.rate_per_s = 0.5;
            horizon_s = 20.0;
            repair_s = 4.0;
          }
        in
        Some
          (Core.Injector.create
             (Core.Fault_model.generate ~config ~seed:(!seed + 9)
                s.Core.Scenario.topology))
  in
  let before = Core.Obs.Counters.snapshot () in
  let t0 = now_s () in
  (* Sharded fabric digest override: the shard scenarios digest the
     combined fabric decision stream (per-shard digests folded with the
     coordinator journal digest), which for one shard collapses to the
     single-controller digest. *)
  let fabric_digest = ref None in
  let run =
    if shards > 0 then begin
      (* The sharded serving ingest path, raw: N wave-synchronised
         steppers over the shared net, the workload routed by the
         deterministic partition map, cross-shard migration sets
         escalated to the global coordinator. Shard 0 owns the
         background churn; siblings share the flow generator with a
         zero refill setpoint so placements happen exactly once. *)
      assert (injector = None);
      let host_count = s.Core.Scenario.host_count in
      let part =
        Core.Shard_partition.create ~host_count ~regions:8 ~shards
      in
      let steppers =
        Array.init shards (fun k ->
            let churn_k =
              if k = 0 then churn
              else { churn with Core.Engine.target_utilization = 0.0 }
            in
            Core.Engine.Stepper.create
              ~seed:(if k = 0 then 3 else 3 + (k * 7919))
              ~domains:1 ~churn:churn_k ~init_expiry:(k = 0) ?series
              ~net:s.Core.Scenario.net policy)
      in
      List.iter
        (fun ev ->
          Core.Engine.Stepper.submit
            steppers.(Core.Shard_partition.home_of_event part ev)
            [ ev ])
        events;
      let coordinator =
        Core.Shard_coord.create ~seed:(3 lxor 0x5eed)
          Core.Shard_coord.default_config
      in
      let pool =
        if shards > 1 then
          Some (Core.Probe_pool.create ~domains:shards ~net:s.Core.Scenario.net)
        else None
      in
      let shard_of_flow fid =
        match Core.Net_state.flow s.Core.Scenario.net fid with
        | Some placed ->
            Some
              (Core.Shard_partition.shard_of_region part
                 (Core.Shard_partition.region_of_host part
                    placed.Core.Net_state.record.Core.Flow_record.src))
        | None -> None
      in
      let escalate =
        if shards = 1 then None
        else
          Some
            (fun ~shard plan ->
              List.exists
                (fun fid ->
                  match shard_of_flow fid with
                  | Some home -> home <> shard
                  | None -> false)
                (Core.Shard_coord.moved_flow_ids plan))
      in
      let placements0 = Core.Obs.Counters.get Core.Obs.Counters.Churn_placements in
      let on_commit ~home ~result ~degraded:_ plan =
        Core.Engine.Stepper.register_departures steppers.(home)
          ~completion:result.Core.Engine.completion_s plan
      in
      let external_commit =
        match escalate with
        | None -> None
        | Some _ ->
            Some
              (fun ~shard ~event ~moved ~txn_open ~attempt ->
                Core.Shard_coord.commit_escalated coordinator
                  ~net:s.Core.Scenario.net ~tick:0 ~now_floor_s:0.0
                  ~home:shard ~event ~moved ~shard_of_flow
                  ~backlogs:(Array.map Core.Engine.Stepper.backlog steppers)
                  ~txn_open ~attempt ~on_commit)
      in
      let wave = ref 0 in
      let continue_ = ref true in
      while !continue_ do
        let stepped =
          match
            Core.Engine.Stepper.step_group ?pool ?escalate ?external_commit
              steppers
          with
          | `Stepped (_, escalations) ->
              List.iter
                (fun (e : Core.Engine.Stepper.escalation) ->
                  Core.Shard_coord.submit coordinator ~tick:!wave
                    ~home:e.Core.Engine.Stepper.esc_shard
                    e.Core.Engine.Stepper.esc_event)
                escalations;
              true
          | `Idle -> false
        in
        Core.Shard_coord.attempt_due coordinator ~net:s.Core.Scenario.net
          ~tick:!wave ~now_floor_s:0.0 ~shard_of_flow
          ~backlogs:(Array.map Core.Engine.Stepper.backlog steppers)
          ~on_commit;
        (* Wave barrier: every shard reads the fabric-wide clock. *)
        let now_max =
          Array.fold_left
            (fun acc st -> Float.max acc (Core.Engine.Stepper.now_s st))
            (Core.Shard_coord.now_s coordinator)
            steppers
        in
        Array.iter
          (fun st -> Core.Engine.Stepper.advance_clock st ~to_s:now_max)
          steppers;
        incr wave;
        let churned =
          Core.Obs.Counters.get Core.Obs.Counters.Churn_placements - placements0
        in
        continue_ :=
          (stepped || Core.Shard_coord.pending_count coordinator > 0)
          && churned < 1_000_000
      done;
      (match pool with Some p -> Core.Probe_pool.shutdown p | None -> ());
      let runs = Array.map Core.Engine.Stepper.result steppers in
      Array.iter Core.Engine.Stepper.close steppers;
      let shard_digests =
        Array.to_list (Array.map Core.Run_digest.of_run runs)
      in
      fabric_digest :=
        Some
          (Core.Run_digest.combine
             (if Core.Shard_coord.entries coordinator > 0 then
                shard_digests @ [ Core.Shard_coord.digest coordinator ]
              else shard_digests));
      let coord_events = Array.of_list (Core.Shard_coord.results coordinator) in
      let sum f = Array.fold_left (fun acc r -> acc + f r) 0 runs in
      let sumf f = Array.fold_left (fun acc r -> acc +. f r) 0.0 runs in
      {
        runs.(0) with
        Core.Engine.events =
          Array.concat
            (Array.to_list (Array.map (fun r -> r.Core.Engine.events) runs)
            @ [ coord_events ]);
        rounds = sum (fun r -> r.Core.Engine.rounds);
        rounds_log =
          List.concat
            (Array.to_list (Array.map (fun r -> r.Core.Engine.rounds_log) runs));
        total_plan_units =
          sum (fun r -> r.Core.Engine.total_plan_units)
          + Core.Shard_coord.units coordinator;
        total_plan_time_s = sumf (fun r -> r.Core.Engine.total_plan_time_s);
        total_cost_mbit = sumf (fun r -> r.Core.Engine.total_cost_mbit);
        makespan_s =
          Array.fold_left
            (fun acc r -> Float.max acc r.Core.Engine.makespan_s)
            (Core.Shard_coord.now_s coordinator)
            runs;
        planning_wall_s = sumf (fun r -> r.Core.Engine.planning_wall_s);
      }
    end
    else if stepper then begin
      (* The serving ingest path: the same workload submitted through the
         incremental stepper and stepped round by round. Required to be a
         bit-identical (and near-free) rewrite of the batch loop. With
         [telemetry], a full Telemetry observer (lifecycle + fairness +
         SLO) is attached to the stepper — recording every round and
         completion while the digest must not move. *)
      let tel =
        match telemetry with
        | `Off -> None
        | `On ->
            Some (Core.Serve_telemetry.create Core.Serve_telemetry.default_config)
        | `Watch ->
            (* In-memory watchdog (no journal dir): detectors, health
               machines and alert ring run over every tick while the
               digest must not move. *)
            Some
              (Core.Serve_telemetry.create
                 {
                   Core.Serve_telemetry.default_config with
                   Core.Serve_telemetry.watch = Some Core.Obs.Watch.default_config;
                 })
      in
      let observer = Option.map Core.Serve_telemetry.observer tel in
      let st =
        Core.Engine.Stepper.create ~seed:3 ~domains ~churn ?injector ?series
          ?observer ~net:s.Core.Scenario.net policy
      in
      (* [wal] journals the whole workload through the CRC32-framed
         write-ahead log alongside the run — measuring the durable
         store's overhead on the ingest path while the digest must not
         move — then reads it back and requires zero corrupt frames. *)
      let journal =
        if wal then begin
          let path = Filename.temp_file "sched_bench_wal" ".wal" in
          let w = Core.Journal.open_writer path in
          List.iteri
            (fun i ev ->
              Core.Journal.write w
                (Core.Journal.Arrive
                   { tick = i; request = Core.Serve_request.v ~tenant:"bench" ev }))
            events;
          List.iteri (fun i _ -> Core.Journal.write w (Core.Journal.Tick_done i)) events;
          Core.Journal.flush w;
          Some (path, w)
        end
        else None
      in
      Core.Engine.Stepper.submit st events;
      (match (telemetry, tel) with
      | `Watch, Some tel ->
          (* Drive the controller-side tick hooks around bounded step
             batches so the watchdog sees a tick stream. Grouping steps
             into ticks changes nothing: the stepper is stepped to idle
             either way, and every hook is recording-only. *)
          let tick = ref 0 in
          let idle = ref false in
          while not !idle do
            Core.Serve_telemetry.on_tick_start tel ~tick:!tick
              ~now_s:(float_of_int !tick *. 0.05);
            let steps = ref 0 in
            while (not !idle) && !steps < 4 do
              if Core.Engine.Stepper.step st = `Idle then idle := true;
              incr steps
            done;
            Core.Serve_telemetry.on_tick_end tel ~tick:!tick ~queue:0
              ~backlog:(Core.Engine.Stepper.backlog st);
            incr tick
          done;
          Core.Serve_telemetry.on_retire tel
      | _ -> while Core.Engine.Stepper.step st <> `Idle do () done);
      (match journal with
      | None -> ()
      | Some (path, w) ->
          Core.Journal.close_writer w;
          (match Core.Journal.read_report path with
          | Error m ->
              Printf.eprintf "bench: FAIL WAL read-back: %s\n%!" m;
              exit 1
          | Ok r ->
              if r.Core.Journal.corrupt <> [] then begin
                Printf.eprintf
                  "bench: FAIL WAL read-back reported %d corrupt frame(s)\n%!"
                  (List.length r.Core.Journal.corrupt);
                exit 1
              end;
              if r.Core.Journal.frames <> 2 * List.length events then begin
                Printf.eprintf
                  "bench: FAIL WAL read-back lost frames (%d of %d)\n%!"
                  r.Core.Journal.frames
                  (2 * List.length events);
                exit 1
              end);
          Sys.remove path);
      Core.Engine.Stepper.result st
    end
    else
      Core.Engine.run ~seed:3 ~domains ~churn ?injector ?series
        ~net:s.Core.Scenario.net ~events policy
  in
  let wall = now_s () -. t0 in
  if obs then begin
    Core.Obs.Histogram.Registry.disable ();
    Core.Obs.Trace.uninstall ()
  end;
  let counters =
    Core.Obs.Counters.diff ~before ~after:(Core.Obs.Counters.snapshot ())
  in
  let n = Array.length run.Core.Engine.events in
  {
    m_name = name;
    m_events = n;
    m_rounds = run.Core.Engine.rounds;
    m_plan_units = run.Core.Engine.total_plan_units;
    m_planning_wall_s = run.Core.Engine.planning_wall_s;
    m_run_wall_s = wall;
    m_events_per_s = (if wall > 0.0 then float_of_int n /. wall else 0.0);
    m_probes_per_round =
      (if run.Core.Engine.rounds > 0 then
         float_of_int run.Core.Engine.total_plan_units
         /. float_of_int run.Core.Engine.rounds
       else 0.0);
    m_total_cost_mbit = run.Core.Engine.total_cost_mbit;
    m_digest =
      (match !fabric_digest with Some d -> d | None -> digest_of_run run);
    m_recovery_digest =
      Option.map
        (fun inj -> Core.Recovery.digest (Core.Injector.recovery inj))
        injector;
    m_counters = counters;
  }

let json_of_measurement m =
  Core.Obs.Json.Obj
    [
      ("name", Core.Obs.Json.String m.m_name);
      ("events", Core.Obs.Json.Int m.m_events);
      ("rounds", Core.Obs.Json.Int m.m_rounds);
      ("plan_units", Core.Obs.Json.Int m.m_plan_units);
      ("planning_wall_s", Core.Obs.Json.Float m.m_planning_wall_s);
      ("run_wall_s", Core.Obs.Json.Float m.m_run_wall_s);
      ("events_per_s", Core.Obs.Json.Float m.m_events_per_s);
      ("probes_per_round", Core.Obs.Json.Float m.m_probes_per_round);
      ("total_cost_mbit", Core.Obs.Json.Float m.m_total_cost_mbit);
      ("digest", Core.Obs.Json.String m.m_digest);
      ( "recovery_digest",
        match m.m_recovery_digest with
        | Some d -> Core.Obs.Json.String d
        | None -> Core.Obs.Json.Null );
      ("counters", Core.Obs.Counters.to_json m.m_counters);
    ]

(* ------------------------------------------------------------------ *)

let () =
  Arg.parse args (fun _ -> raise (Arg.Bad "no positional arguments")) usage;
  let n_events = if !quick then 40 else 120 in
  let scenarios =
    [
      ("lmtf-churn-k8", Core.Policy.Lmtf { alpha = 4 }, `Off, false, false, `Off);
      ("reorder-churn-k8", Core.Policy.Reorder, `Off, false, false, `Off);
      (* Digest must equal lmtf-churn-k8's: an idle injector is free. *)
      ( "lmtf-empty-faults-k8",
        Core.Policy.Lmtf { alpha = 4 },
        `Empty,
        false,
        false,
        `Off );
      ( "lmtf-fault-churn-k8",
        Core.Policy.Lmtf { alpha = 4 },
        `Seeded,
        false,
        false,
        `Off );
      (* Digest must equal lmtf-churn-k8's: tracing, histograms and the
         per-round series are read-only observers of the run. *)
      ("lmtf-obs-on-k8", Core.Policy.Lmtf { alpha = 4 }, `Off, true, false, `Off);
      (* Digest must equal lmtf-churn-k8's: the online controller's
         ingest path (stepper submit + incremental stepping) is a
         restructuring of the batch loop, not a re-decision. *)
      ("serve-churn-k8", Core.Policy.Lmtf { alpha = 4 }, `Off, false, true, `Off);
      (* Digest must equal serve-churn-k8's: the serving telemetry
         observer (lifecycle stamps, fairness, SLO) records every round
         and completion without perturbing one decision. *)
      ( "serve-telemetry-k8",
        Core.Policy.Lmtf { alpha = 4 },
        `Off,
        false,
        true,
        `On );
      (* Digest must equal serve-churn-k8's: CRC32-framed write-ahead
         journaling is durable-store I/O, never a scheduling input. *)
      ("serve-wal-k8", Core.Policy.Lmtf { alpha = 4 }, `Off, false, true, `Off);
      (* Digest must equal serve-churn-k8's: the nu_watch watchdog
         (CUSUM/slope/Jain detectors, health machines, alert ring) is
         strictly recording-only even with tick hooks driven. *)
      ( "serve-watch-k8",
        Core.Policy.Lmtf { alpha = 4 },
        `Off,
        false,
        true,
        `Watch );
      (* Sharded fabric ladder. serve-shard1-k8's digest must equal
         serve-churn-k8's: one shard IS the single controller, wave for
         step. The wider rungs scale events/s with the shard count (a
         probe domain per shard). *)
      ("serve-shard1-k8", Core.Policy.Lmtf { alpha = 4 }, `Off, false, true, `Off);
      ("serve-shard2-k8", Core.Policy.Lmtf { alpha = 4 }, `Off, false, true, `Off);
      ("serve-shard4-k8", Core.Policy.Lmtf { alpha = 4 }, `Off, false, true, `Off);
    ]
  in
  let scenarios =
    (* Full mode tops the ladder with the million-flow churn cap: a
       hotter, deeper churn (ids in the 10M+ window) under four shards,
       the run hard-capped at one million churn placements. *)
    if !quick then scenarios
    else
      scenarios
      @ [
          ( "serve-shard4-churn1m-k8",
            Core.Policy.Lmtf { alpha = 4 },
            `Off,
            false,
            true,
            `Off );
        ]
  in
  let scenarios =
    (* Multicore counterparts run only when a fan-out width was asked
       for; their digests are required (below) to equal the sequential
       runs' bit for bit — the probe fan-out must never change a
       decision, only the wall clock. *)
    if !domains > 1 then
      scenarios
      @ [
          ( "lmtf-churn-mc-k8",
            Core.Policy.Lmtf { alpha = 4 },
            `Off,
            false,
            false,
            `Off );
          ("reorder-churn-mc-k8", Core.Policy.Reorder, `Off, false, false, `Off);
        ]
    else scenarios
  in
  let scenarios =
    match !only with
    | [] -> scenarios
    | names ->
        List.iter
          (fun n ->
            if
              not
                (List.exists (fun (name, _, _, _, _, _) -> name = n) scenarios)
            then begin
              Printf.eprintf "bench: unknown scenario %s\n%!" n;
              exit 2
            end)
          names;
        List.filter (fun (name, _, _, _, _, _) -> List.mem name names) scenarios
  in
  let measurements =
    List.map
      (fun (name, policy, faults, obs, stepper, telemetry) ->
        let domains =
          if Filename.check_suffix name "-mc-k8" then !domains else 1
        in
        let shards =
          match name with
          | "serve-shard1-k8" -> 1
          | "serve-shard2-k8" -> 2
          | "serve-shard4-k8" | "serve-shard4-churn1m-k8" -> 4
          | _ -> 0
        in
        let churn_big = name = "serve-shard4-churn1m-k8" in
        let n_events = if churn_big then n_events * 4 else n_events in
        Printf.eprintf "bench: running %s (%d events, %d domain%s)...\n%!" name
          n_events domains
          (if domains = 1 then "" else "s");
        measure ~name ~policy ~n_events ~faults ~obs ~stepper ~telemetry
          ~wal:(name = "serve-wal-k8") ~domains ~shards ~churn_big ())
      scenarios
  in
  let digest_must_match ~of_:other ~reference ~what =
    match
      ( List.find_opt (fun m -> m.m_name = reference) measurements,
        List.find_opt (fun m -> m.m_name = other) measurements )
    with
    | Some a, Some b when a.m_digest <> b.m_digest ->
        Printf.eprintf "bench: FAIL %s changed the run digest (%s vs %s)\n%!"
          what a.m_digest b.m_digest;
        exit 1
    | _ -> ()
  in
  (* Invariants checked on every bench run: fault hooks must not perturb
     a single scheduling decision while idle, and the full observability
     stack must not perturb one while recording. *)
  digest_must_match ~of_:"lmtf-empty-faults-k8" ~reference:"lmtf-churn-k8"
    ~what:"empty fault schedule";
  digest_must_match ~of_:"lmtf-obs-on-k8" ~reference:"lmtf-churn-k8"
    ~what:"enabled observability";
  digest_must_match ~of_:"serve-churn-k8" ~reference:"lmtf-churn-k8"
    ~what:"serving ingest path";
  digest_must_match ~of_:"serve-telemetry-k8" ~reference:"serve-churn-k8"
    ~what:"attached serving telemetry";
  digest_must_match ~of_:"serve-watch-k8" ~reference:"serve-churn-k8"
    ~what:"attached watchdog";
  digest_must_match ~of_:"serve-wal-k8" ~reference:"serve-churn-k8"
    ~what:"write-ahead journaling";
  digest_must_match ~of_:"serve-shard1-k8" ~reference:"serve-churn-k8"
    ~what:"sharded fabric with one shard";
  digest_must_match ~of_:"lmtf-churn-mc-k8" ~reference:"lmtf-churn-k8"
    ~what:"parallel probe fan-out (LMTF)";
  digest_must_match ~of_:"reorder-churn-mc-k8" ~reference:"reorder-churn-k8"
    ~what:"parallel probe fan-out (Reorder)";
  List.iter
    (fun m ->
      Printf.printf
        "%-20s events %4d  rounds %5d  probes/round %7.1f  planning %7.3fs  \
         wall %7.3fs  ev/s %7.1f  digest %s\n"
        m.m_name m.m_events m.m_rounds m.m_probes_per_round m.m_planning_wall_s
        m.m_run_wall_s m.m_events_per_s m.m_digest)
    measurements;
  let baseline =
    if !baseline_file = "" then None
    else begin
      match
        let ic = open_in !baseline_file in
        let len = in_channel_length ic in
        let body = really_input_string ic len in
        close_in ic;
        Core.Obs.Json.of_string body
      with
      | Ok j -> Some j
      | Error e ->
          Printf.eprintf "bench: bad baseline %s: %s\n%!" !baseline_file e;
          None
      | exception Sys_error e ->
          (* An unreadable baseline degrades to a baseline-less run —
             the measurements themselves are still worth keeping. *)
          Printf.eprintf "bench: cannot read baseline: %s\n%!" e;
          None
    end
  in
  (* Speedup report against the baseline's matching scenario names. *)
  let speedups =
    match baseline with
    | None -> []
    | Some j -> (
        match Core.Obs.Json.member "scenarios" j with
        | Some (Core.Obs.Json.List bases) ->
            List.filter_map
              (fun m ->
                List.find_map
                  (fun b ->
                    match
                      ( Core.Obs.Json.member "name" b,
                        Core.Obs.Json.member "planning_wall_s" b,
                        Core.Obs.Json.member "digest" b )
                    with
                    | ( Some (Core.Obs.Json.String n),
                        Some (Core.Obs.Json.Float w),
                        digest )
                      when n = m.m_name && m.m_planning_wall_s > 0.0 ->
                        let identical =
                          match digest with
                          | Some (Core.Obs.Json.String d) -> d = m.m_digest
                          | _ -> false
                        in
                        Some
                          ( m.m_name,
                            w /. m.m_planning_wall_s,
                            identical )
                    | _ -> None)
                  bases)
              measurements
        | _ -> [])
  in
  List.iter
    (fun (name, x, identical) ->
      Printf.printf "%-20s planning speedup vs baseline: %.2fx  (digest %s)\n"
        name x
        (if identical then "identical" else "DIFFERS"))
    speedups;
  let result =
    Core.Obs.Json.Obj
      (List.concat
         [
           [
             ("bench", Core.Obs.Json.String "sched_bench_pr10");
             ( "schema_version",
               Core.Obs.Json.Int Core.Obs.Regress.schema_version );
             ("mode", Core.Obs.Json.String (if !quick then "quick" else "full"));
             ("seed", Core.Obs.Json.Int !seed);
             ("n_events", Core.Obs.Json.Int n_events);
             ( "scenarios",
               Core.Obs.Json.List (List.map json_of_measurement measurements) );
           ];
           (match speedups with
           | [] -> []
           | _ ->
               [
                 ( "speedup_vs_baseline",
                   Core.Obs.Json.Obj
                     (List.map
                        (fun (n, x, identical) ->
                          ( n,
                            Core.Obs.Json.Obj
                              [
                                ("planning_wall", Core.Obs.Json.Float x);
                                ("digest_identical", Core.Obs.Json.Bool identical);
                              ] ))
                        speedups) );
               ]);
           (match baseline with
           | None -> []
           | Some j -> [ ("baseline", j) ]);
         ])
  in
  match !out_file with
  | "" -> ()
  | path ->
      let oc = open_out path in
      output_string oc (Core.Obs.Json.to_string result);
      output_string oc "\n";
      close_out oc;
      Printf.eprintf "bench: wrote %s\n%!" path
