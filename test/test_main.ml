(* Entry point aggregating all suites. `dune runtest` runs everything;
   ALCOTEST_QUICK_TESTS=1 skips the statistical `Slow cases. *)

let () =
  Alcotest.run "event-level-network-update"
    [
      ("stats", Test_stats.suite);
      ("graph", Test_graph.suite);
      ("topo", Test_topo.suite);
      ("traffic", Test_traffic.suite);
      ("net", Test_net.suite);
      ("update", Test_update.suite);
      ("dataplane", Test_dataplane.suite);
      ("fault", Test_fault.suite);
      ("sched", Test_sched.suite);
      ("obs", Test_obs.suite);
      ("serve", Test_serve.suite);
      ("cli", Test_cli.suite);
      ("expt", Test_expt.suite);
      ("scenario", Test_scenario.suite);
      ("shard", Test_shard.suite);
    ]
