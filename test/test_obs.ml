(* nu_obs: JSON codec, counters, trace spans, exporters, and the
   no-perturbation guarantee of instrumentation. *)

let flow ?(id = 0) ?(demand = 50.0) ?(duration = 10.0) ?(arrival = 0.0) src dst
    =
  Flow_record.v ~id ~src ~dst ~size_mbit:(demand *. duration)
    ~duration_s:duration ~arrival_s:arrival

(* Small deterministic workload on a k=4 Fat-Tree (mirrors test_sched). *)
let workload ?(n = 5) ?(m = 4) () =
  let next = ref 0 in
  List.init n (fun i ->
      let flows =
        List.init m (fun j ->
            let id = !next in
            incr next;
            let src = (i + j) mod 16 in
            let dst = (src + 3 + j) mod 16 in
            let dst = if dst = src then (dst + 1) mod 16 else dst in
            flow ~id ~demand:(10.0 +. float_of_int (j * 5)) src dst)
      in
      Event.of_spec { Event_gen.event_id = i; arrival_s = 0.0; flows })

let loaded_net () =
  let net = Net_state.create (Fat_tree.to_topology (Fat_tree.create ~k:4 ())) in
  let next = ref 1000 in
  for src = 0 to 7 do
    let dst = 15 - src in
    let r = flow ~id:!next ~demand:300.0 src dst in
    incr next;
    match Routing.select net r with
    | Some p -> ( match Net_state.place net r p with Ok () -> () | Error _ -> ())
    | None -> ()
  done;
  net

let with_memory_sink f =
  let sink, events = Obs.Trace.memory () in
  Obs.Trace.install sink;
  Fun.protect ~finally:Obs.Trace.uninstall (fun () -> f events)

(* ------------------------------------------------------------------ *)
(* Json                                                                *)

let test_json_roundtrip () =
  let v =
    Obs.Json.Obj
      [
        ("null", Obs.Json.Null);
        ("yes", Obs.Json.Bool true);
        ("n", Obs.Json.Int (-42));
        ("pi", Obs.Json.Float 3.140625);
        ("text", Obs.Json.String "line\nbreak \"quoted\" back\\slash");
        ( "nested",
          Obs.Json.List
            [ Obs.Json.Int 1; Obs.Json.Obj [ ("k", Obs.Json.String "v") ] ] );
        ("empty_list", Obs.Json.List []);
        ("empty_obj", Obs.Json.Obj []);
      ]
  in
  match Obs.Json.of_string (Obs.Json.to_string v) with
  | Ok v' -> Alcotest.(check bool) "round-trips" true (v = v')
  | Error msg -> Alcotest.failf "parse error: %s" msg

let test_json_float_precision () =
  let f = 0.1 +. 0.2 in
  match Obs.Json.of_string (Obs.Json.to_string (Obs.Json.Float f)) with
  | Ok (Obs.Json.Float f') ->
      Alcotest.(check (float 0.0)) "exact round-trip" f f'
  | Ok _ -> Alcotest.fail "expected a float"
  | Error msg -> Alcotest.failf "parse error: %s" msg

(* Print/parse must be the identity on the whole value space: every
   constructor, control characters, multi-byte escapes, deep nesting.
   Floats are the historical trap — an integral float printed without a
   marker ("1") parses back as Int 1 and the round-trip silently
   retypes the value. *)
let json_gen =
  let open QCheck.Gen in
  let any_byte = map Char.chr (int_range 0 255) in
  let finite f = if Float.is_finite f then f else 0.5 in
  let scalar =
    oneof
      [
        return Obs.Json.Null;
        map (fun b -> Obs.Json.Bool b) bool;
        map (fun i -> Obs.Json.Int i) int;
        map (fun f -> Obs.Json.Float (finite f)) float;
        map
          (fun s -> Obs.Json.String s)
          (string_size ~gen:any_byte (int_bound 12));
      ]
  in
  let key = string_size ~gen:any_byte (int_bound 6) in
  sized
  @@ fix (fun self n ->
         if n <= 0 then scalar
         else
           frequency
             [
               (3, scalar);
               ( 1,
                 map
                   (fun xs -> Obs.Json.List xs)
                   (list_size (int_bound 4) (self (n / 2))) );
               ( 1,
                 map
                   (fun kvs -> Obs.Json.Obj kvs)
                   (list_size (int_bound 4) (pair key (self (n / 2)))) );
             ])

let prop_json_print_parse_identity =
  QCheck.Test.make ~name:"json print/parse is the identity" ~count:1000
    (QCheck.make json_gen ~print:Obs.Json.to_string)
    (fun j ->
      match Obs.Json.of_string (Obs.Json.to_string j) with
      | Ok j' -> j' = j
      | Error _ -> false)

let test_json_integral_float_keeps_type () =
  Alcotest.(check string) "marker forced" "1.0"
    (Obs.Json.to_string (Obs.Json.Float 1.0));
  Alcotest.(check string) "negative too" "-3.0"
    (Obs.Json.to_string (Obs.Json.Float (-3.0)));
  (match Obs.Json.of_string (Obs.Json.to_string (Obs.Json.Float 1.0)) with
  | Ok (Obs.Json.Float f) -> Alcotest.(check (float 0.0)) "stays float" 1.0 f
  | Ok _ -> Alcotest.fail "Float 1.0 no longer parses back as Float"
  | Error m -> Alcotest.fail m);
  match Obs.Json.of_string "1" with
  | Ok (Obs.Json.Int 1) -> ()
  | _ -> Alcotest.fail "bare integers must still parse as Int"

let test_json_control_and_unicode_escapes () =
  let s = "\x00\x01\x1f\b\012\n\r\t\"\\/" in
  (match Obs.Json.of_string (Obs.Json.to_string (Obs.Json.String s)) with
  | Ok (Obs.Json.String s') -> Alcotest.(check string) "control bytes" s s'
  | Ok _ -> Alcotest.fail "expected a string"
  | Error m -> Alcotest.fail m);
  (match Obs.Json.of_string "\"\\u00e9\"" with
  | Ok (Obs.Json.String s) ->
      Alcotest.(check string) "\\u decodes to UTF-8" "\xc3\xa9" s
  | _ -> Alcotest.fail "\\u00e9 should parse");
  match Obs.Json.of_string "\"\\uZZZZ\"" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "invalid \\u escape accepted"

let test_json_nonfinite_is_null () =
  Alcotest.(check string) "nan" "null" (Obs.Json.to_string (Obs.Json.Float Float.nan));
  Alcotest.(check string)
    "inf" "null"
    (Obs.Json.to_string (Obs.Json.Float Float.infinity))

let test_json_parse_errors () =
  let bad = [ "{"; "[1,"; "\"unterminated"; "tru"; "{\"a\" 1}"; "1 2" ] in
  List.iter
    (fun s ->
      match Obs.Json.of_string s with
      | Ok _ -> Alcotest.failf "accepted invalid JSON: %s" s
      | Error _ -> ())
    bad;
  (* \u escape, whitespace, exponents *)
  match Obs.Json.of_string "  { \"a\" : [ 1e3 , \"\\u0041\" ] }  " with
  | Ok v ->
      Alcotest.(check bool)
        "parsed" true
        (Obs.Json.member "a" v
        = Some (Obs.Json.List [ Obs.Json.Float 1000.0; Obs.Json.String "A" ]))
  | Error msg -> Alcotest.failf "parse error: %s" msg

(* ------------------------------------------------------------------ *)
(* Trace                                                               *)

let test_span_lifo_nesting () =
  with_memory_sink (fun events ->
      Obs.Trace.with_span "outer" (fun () ->
          Obs.Trace.with_span "inner" (fun () -> ());
          Obs.Trace.instant "tick");
      let evs = events () in
      let shape =
        List.map
          (fun (e : Obs.Trace.event) ->
            let ph =
              match e.Obs.Trace.phase with
              | Obs.Trace.Begin -> "B"
              | Obs.Trace.End -> "E"
              | Obs.Trace.Instant -> "i"
            in
            (ph, e.Obs.Trace.name, e.Obs.Trace.depth))
          evs
      in
      Alcotest.(check (list (triple string string int)))
        "event shape"
        [
          ("B", "outer", 0);
          ("B", "inner", 1);
          ("E", "inner", 1);
          ("i", "tick", 1);
          ("E", "outer", 0);
        ]
        shape;
      let ts = List.map (fun (e : Obs.Trace.event) -> e.Obs.Trace.ts_ns) evs in
      let rec nondecreasing = function
        | a :: (b :: _ as rest) -> Int64.compare a b <= 0 && nondecreasing rest
        | _ -> true
      in
      Alcotest.(check bool) "timestamps nondecreasing" true (nondecreasing ts))

let test_span_non_lifo_raises () =
  with_memory_sink (fun _ ->
      let a = Obs.Trace.span "a" in
      let b = Obs.Trace.span "b" in
      Alcotest.check_raises "close outer first"
        (Invalid_argument "Trace.finish: non-LIFO close of span a") (fun () ->
          Obs.Trace.finish a);
      Obs.Trace.finish b;
      Obs.Trace.finish a)

let test_span_exception_safety () =
  with_memory_sink (fun events ->
      (try
         Obs.Trace.with_span "boom" (fun () -> failwith "inner failure")
       with Failure _ -> ());
      let evs = events () in
      Alcotest.(check int) "begin and end emitted" 2 (List.length evs);
      match List.rev evs with
      | (last : Obs.Trace.event) :: _ ->
          Alcotest.(check bool)
            "span closed" true
            (last.Obs.Trace.phase = Obs.Trace.End
            && last.Obs.Trace.name = "boom")
      | [] -> Alcotest.fail "no events")

let test_disabled_tracing_is_noop () =
  Alcotest.(check bool) "off by default" false (Obs.Trace.enabled ());
  let sp = Obs.Trace.span ~attrs:[ ("k", Obs.Trace.Int 1) ] "untracked" in
  Obs.Trace.finish sp;
  Obs.Trace.instant "nothing";
  Alcotest.(check int)
    "with_span is just f ()" 7
    (Obs.Trace.with_span "untracked" (fun () -> 7))

(* ------------------------------------------------------------------ *)
(* Counters                                                            *)

let test_counters_snapshot_diff () =
  let before = Obs.Counters.snapshot () in
  Obs.Counters.incr Obs.Counters.State_copies;
  Obs.Counters.incr Obs.Counters.State_copies;
  Obs.Counters.add Obs.Counters.Planner_probes 5;
  let d = Obs.Counters.diff ~before ~after:(Obs.Counters.snapshot ()) in
  Alcotest.(check int) "incr twice" 2 (Obs.Counters.value d Obs.Counters.State_copies);
  Alcotest.(check int) "add 5" 5 (Obs.Counters.value d Obs.Counters.Planner_probes);
  Alcotest.(check int) "untouched" 0 (Obs.Counters.value d Obs.Counters.Engine_rounds);
  Alcotest.(check bool) "not zero" false (Obs.Counters.is_zero d);
  let d0 = Obs.Counters.diff ~before ~after:before in
  Alcotest.(check bool) "self-diff is zero" true (Obs.Counters.is_zero d0)

let test_counters_alist_json () =
  let snap = Obs.Counters.snapshot () in
  let alist = Obs.Counters.to_alist snap in
  (* Fixed keys always render; named counters (created by other tests
     or telemetry) may follow them. *)
  Alcotest.(check bool)
    "at least all fixed keys" true
    (List.length alist >= List.length Obs.Counters.all);
  List.iter
    (fun k ->
      match List.assoc_opt (Obs.Counters.name k) alist with
      | Some v -> Alcotest.(check int) (Obs.Counters.name k) (Obs.Counters.value snap k) v
      | None -> Alcotest.failf "missing key %s" (Obs.Counters.name k))
    Obs.Counters.all;
  (* JSON form parses back and carries every key. *)
  match Obs.Json.of_string (Obs.Json.to_string (Obs.Counters.to_json snap)) with
  | Ok (Obs.Json.Obj kvs) ->
      Alcotest.(check int) "json keys" (List.length alist) (List.length kvs)
  | Ok _ -> Alcotest.fail "expected an object"
  | Error msg -> Alcotest.failf "parse error: %s" msg

let test_counters_count_pipeline_work () =
  let net = loaded_net () in
  let events = workload () in
  let before = Obs.Counters.snapshot () in
  ignore (Engine.run ~seed:11 ~net ~events (Policy.Lmtf { alpha = 2 }));
  let d = Obs.Counters.diff ~before ~after:(Obs.Counters.snapshot ()) in
  Alcotest.(check bool)
    "rounds counted" true
    (Obs.Counters.value d Obs.Counters.Engine_rounds > 0);
  Alcotest.(check bool)
    "plans counted" true
    (Obs.Counters.value d Obs.Counters.Planner_plans > 0);
  Alcotest.(check bool)
    "probes counted" true
    (Obs.Counters.value d Obs.Counters.Planner_probes > 0);
  Alcotest.(check bool)
    "estimates counted" true
    (Obs.Counters.value d Obs.Counters.Cost_estimates > 0);
  Alcotest.(check int)
    "lmtf executes one event per round"
    (Obs.Counters.value d Obs.Counters.Engine_rounds)
    (Obs.Counters.value d Obs.Counters.Events_executed)

(* ------------------------------------------------------------------ *)
(* Exporters on a real traced run                                      *)

let traced_run () =
  with_memory_sink (fun events ->
      let net = loaded_net () in
      let events_l = workload () in
      ignore (Engine.run ~seed:11 ~net ~events:events_l (Policy.Plmtf { alpha = 2 }));
      events ())

let test_trace_covers_pipeline () =
  let evs = traced_run () in
  let names =
    List.filter_map
      (fun (e : Obs.Trace.event) ->
        if e.Obs.Trace.phase = Obs.Trace.Begin then Some e.Obs.Trace.name
        else None)
      evs
  in
  List.iter
    (fun expected ->
      Alcotest.(check bool)
        (Printf.sprintf "span %s present" expected)
        true (List.mem expected names))
    [ "run"; "round"; "plan"; "estimate"; "execute" ];
  (* Begin/End balance: every span closes. *)
  let balance =
    List.fold_left
      (fun acc (e : Obs.Trace.event) ->
        match e.Obs.Trace.phase with
        | Obs.Trace.Begin -> acc + 1
        | Obs.Trace.End -> acc - 1
        | Obs.Trace.Instant -> acc)
      0 evs
  in
  Alcotest.(check int) "begin/end balanced" 0 balance

let test_jsonl_export_parses () =
  let evs = traced_run () in
  let jsonl = Obs.Export.jsonl_of_events evs in
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' jsonl)
  in
  Alcotest.(check int) "one line per event" (List.length evs) (List.length lines);
  List.iter
    (fun line ->
      match Obs.Json.of_string line with
      | Ok v ->
          if Obs.Json.member "ph" v = None then
            Alcotest.failf "line missing ph: %s" line
      | Error msg -> Alcotest.failf "unparseable line (%s): %s" msg line)
    lines

let test_chrome_export_parses () =
  let evs = traced_run () in
  let json = Obs.Export.chrome_of_events evs in
  match Obs.Json.of_string (Obs.Json.to_string json) with
  | Error msg -> Alcotest.failf "unparseable chrome trace: %s" msg
  | Ok v -> (
      match Obs.Json.member "traceEvents" v with
      | Some (Obs.Json.List items) ->
          Alcotest.(check int)
            "one trace event per span event" (List.length evs)
            (List.length items);
          List.iter
            (fun item ->
              match
                (Obs.Json.member "ph" item, Obs.Json.member "ts" item)
              with
              | Some (Obs.Json.String _), Some _ -> ()
              | _ -> Alcotest.fail "trace event missing ph/ts")
            items
      | _ -> Alcotest.fail "no traceEvents array")

(* ------------------------------------------------------------------ *)
(* Instrumentation must not perturb results                            *)

let test_span_unwind_on_raise () =
  (* A raising function that leaves a child span open: with_span must
     close the child and itself (well-formed tree) and leave the stack
     usable for subsequent spans. *)
  with_memory_sink (fun events ->
      (try
         Obs.Trace.with_span "outer" (fun () ->
             let _child = Obs.Trace.span "child" in
             failwith "mid-span failure")
       with Failure _ -> ());
      Obs.Trace.with_span "after" (fun () -> ());
      let shape =
        List.map
          (fun (e : Obs.Trace.event) ->
            let ph =
              match e.Obs.Trace.phase with
              | Obs.Trace.Begin -> "B"
              | Obs.Trace.End -> "E"
              | Obs.Trace.Instant -> "i"
            in
            (ph, e.Obs.Trace.name, e.Obs.Trace.depth))
          (events ())
      in
      Alcotest.(check (list (triple string string int)))
        "children unwound, stack clean"
        [
          ("B", "outer", 0);
          ("B", "child", 1);
          ("E", "child", 1);
          ("E", "outer", 0);
          ("B", "after", 0);
          ("E", "after", 0);
        ]
        shape;
      let unwound =
        List.filter
          (fun (e : Obs.Trace.event) ->
            List.mem_assoc "unwound" e.Obs.Trace.attrs)
          (events ())
      in
      Alcotest.(check int) "both closes marked unwound" 2 (List.length unwound))

(* ------------------------------------------------------------------ *)
(* Histograms                                                          *)

let test_histogram_exact_side_stats () =
  let h = Obs.Histogram.create () in
  Alcotest.(check bool) "fresh is empty" true (Obs.Histogram.is_empty h);
  List.iter (Obs.Histogram.record h) [ 3.0; 1.0; 4.0; 1.0; 5.0; 0.0 ];
  Obs.Histogram.record_n h 2.0 4;
  Alcotest.(check int) "count" 10 (Obs.Histogram.count h);
  Alcotest.(check (float 1e-9)) "sum" 22.0 (Obs.Histogram.sum h);
  Alcotest.(check (float 1e-9)) "mean" 2.2 (Obs.Histogram.mean h);
  Alcotest.(check (float 0.0)) "min exact" 0.0 (Obs.Histogram.min_value h);
  Alcotest.(check (float 0.0)) "max exact" 5.0 (Obs.Histogram.max_value h);
  Alcotest.check_raises "negative rejected"
    (Invalid_argument "Histogram.record: sample must be finite and non-negative")
    (fun () -> Obs.Histogram.record h (-1.0));
  Obs.Histogram.reset h;
  Alcotest.(check bool) "reset empties" true (Obs.Histogram.is_empty h)

let test_histogram_quantile_bounds () =
  let h = Obs.Histogram.create () in
  for i = 1 to 1000 do
    Obs.Histogram.record h (float_of_int i)
  done;
  let rel = Obs.Histogram.rel_error h in
  List.iter
    (fun (q, exact) ->
      let est = Obs.Histogram.quantile h q in
      Alcotest.(check bool)
        (Printf.sprintf "q=%.3f within rel error" q)
        true
        (Float.abs (est -. exact) <= (rel *. exact) +. 1e-9))
    [ (0.0, 1.0); (0.5, 500.5); (0.9, 900.1); (0.99, 990.01); (1.0, 1000.0) ];
  Alcotest.(check (float 0.0))
    "p100 clamps to max" 1000.0
    (Obs.Histogram.quantile h 1.0)

let prop_histogram_matches_descriptive =
  QCheck.Test.make ~name:"histogram quantiles track Descriptive.percentile"
    ~count:100
    QCheck.(list (float_range 0.0 1000.0))
    (fun samples ->
      QCheck.assume (samples <> []);
      let h = Obs.Histogram.create () in
      List.iter (Obs.Histogram.record h) samples;
      let arr = Array.of_list samples in
      let rel = Obs.Histogram.rel_error h in
      List.for_all
        (fun q ->
          let exact = Descriptive.percentile arr (q *. 100.0) in
          let est = Obs.Histogram.quantile h q in
          Float.abs (est -. exact) <= (rel *. Float.abs exact) +. 1e-9)
        [ 0.0; 0.1; 0.25; 0.5; 0.75; 0.9; 0.99; 0.999; 1.0 ])

let prop_histogram_merge_associative =
  QCheck.Test.make ~name:"histogram merge is associative" ~count:100
    QCheck.(
      triple
        (list (float_range 0.0 500.0))
        (list (float_range 0.0 500.0))
        (list (float_range 0.0 500.0)))
    (fun (xs, ys, zs) ->
      let mk samples =
        let h = Obs.Histogram.create () in
        List.iter (Obs.Histogram.record h) samples;
        h
      in
      let a () = mk xs and b () = mk ys and c () = mk zs in
      let l = Obs.Histogram.merge (Obs.Histogram.merge (a ()) (b ())) (c ())
      and r = Obs.Histogram.merge (a ()) (Obs.Histogram.merge (b ()) (c ())) in
      Obs.Histogram.count l = Obs.Histogram.count r
      && Float.abs (Obs.Histogram.sum l -. Obs.Histogram.sum r)
         <= 1e-9 *. (1.0 +. Float.abs (Obs.Histogram.sum l))
      && (Obs.Histogram.is_empty l
         || Obs.Histogram.min_value l = Obs.Histogram.min_value r
            && Obs.Histogram.max_value l = Obs.Histogram.max_value r
            && List.for_all
                 (fun q ->
                   Obs.Histogram.quantile l q = Obs.Histogram.quantile r q)
                 [ 0.0; 0.25; 0.5; 0.9; 0.99; 1.0 ]))

let test_histogram_json () =
  let h = Obs.Histogram.create ~sub_buckets:8 () in
  List.iter (Obs.Histogram.record h) [ 0.0; 1.0; 2.5; 1000.0 ];
  match Obs.Json.of_string (Obs.Json.to_string (Obs.Histogram.to_json h)) with
  | Error msg -> Alcotest.failf "unparseable histogram json: %s" msg
  | Ok v -> (
      Alcotest.(check bool)
        "count" true
        (Obs.Json.member "count" v = Some (Obs.Json.Int 4));
      Alcotest.(check bool)
        "sub_buckets" true
        (Obs.Json.member "sub_buckets" v = Some (Obs.Json.Int 8));
      match Obs.Json.member "buckets" v with
      | Some (Obs.Json.List buckets) ->
          let total =
            List.fold_left
              (fun acc b ->
                match b with
                | Obs.Json.List [ _; _; Obs.Json.Int n ] -> acc + n
                | _ -> Alcotest.fail "bucket is not a [lo, hi, count] triple")
              0 buckets
          in
          Alcotest.(check int) "bucket counts sum to count" 4 total
      | _ -> Alcotest.fail "no buckets list")

let test_histogram_registry_gated () =
  Alcotest.(check bool)
    "off by default" false
    (Obs.Histogram.Registry.enabled ());
  Obs.Histogram.Registry.reset ();
  Obs.Histogram.Registry.record "t.off" 1.0;
  Alcotest.(check bool)
    "record while off is a no-op" true
    (Obs.Histogram.Registry.find "t.off" = None);
  Obs.Histogram.Registry.enable ();
  Fun.protect ~finally:(fun () ->
      Obs.Histogram.Registry.disable ();
      Obs.Histogram.Registry.reset ())
  @@ fun () ->
  Obs.Histogram.Registry.record "t.b" 2.0;
  Obs.Histogram.Registry.record "t.a" 1.0;
  Obs.Histogram.Registry.record "t.a" 3.0;
  (match Obs.Histogram.Registry.find "t.a" with
  | Some h -> Alcotest.(check int) "live histogram" 2 (Obs.Histogram.count h)
  | None -> Alcotest.fail "t.a missing");
  let snap = Obs.Histogram.Registry.snapshot () in
  Alcotest.(check (list string))
    "snapshot sorted by name" [ "t.a"; "t.b" ] (List.map fst snap);
  (* Snapshot copies are independent of later recording. *)
  Obs.Histogram.Registry.record "t.a" 9.0;
  Alcotest.(check int)
    "snapshot is a copy" 2
    (Obs.Histogram.count (List.assoc "t.a" snap))

(* ------------------------------------------------------------------ *)
(* Series                                                              *)

let test_series_bounded_decimation () =
  let s = Obs.Series.create ~capacity:16 ~columns:[ "v" ] () in
  for i = 0 to 999 do
    Obs.Series.sample s ~t_s:(float_of_int i) [| float_of_int i |]
  done;
  Alcotest.(check int) "total samples" 1000 (Obs.Series.total_samples s);
  Alcotest.(check bool) "bounded" true (Obs.Series.length s <= 16);
  let stride = Obs.Series.stride s in
  Alcotest.(check bool)
    "stride is a power of two" true
    (stride > 1 && stride land (stride - 1) = 0);
  (* Retained rows sit on the uniform stride grid, first sample kept. *)
  let prev = ref (-1.0) in
  for i = 0 to Obs.Series.length s - 1 do
    let t, row = Obs.Series.get s i in
    Alcotest.(check (float 0.0)) "row matches instant" t row.(0);
    Alcotest.(check bool)
      "on stride grid" true
      (int_of_float t mod stride = 0);
    Alcotest.(check bool) "strictly increasing" true (t > !prev);
    prev := t
  done;
  let t0, _ = Obs.Series.get s 0 in
  Alcotest.(check (float 0.0)) "first sample kept" 0.0 t0

let test_series_csv_and_json () =
  let s = Obs.Series.create ~capacity:8 ~columns:[ "a"; "b" ] () in
  Obs.Series.sample s ~t_s:0.0 [| 1.5; 2.5 |];
  Obs.Series.sample s ~t_s:0.5 [| 3.5; 4.5 |];
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' (Obs.Series.to_csv s))
  in
  Alcotest.(check (list string))
    "csv" [ "t_s,a,b"; "0,1.5,2.5"; "0.5,3.5,4.5" ] lines;
  match Obs.Json.of_string (Obs.Json.to_string (Obs.Series.to_json s)) with
  | Error msg -> Alcotest.failf "unparseable series json: %s" msg
  | Ok v ->
      (match Obs.Json.member "data" v with
      | Some (Obs.Json.Obj cols) ->
          Alcotest.(check (list string)) "column-major" [ "a"; "b" ]
            (List.map fst cols);
          Alcotest.(check bool)
            "column b" true
            (List.assoc "b" cols
            = Obs.Json.List [ Obs.Json.Float 2.5; Obs.Json.Float 4.5 ])
      | _ -> Alcotest.fail "no data object");
      Alcotest.(check bool)
        "row mismatch raises" true
        (try
           Obs.Series.sample s ~t_s:1.0 [| 1.0 |];
           false
         with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Profile                                                             *)

let ev phase name ts depth =
  {
    Obs.Trace.phase;
    name;
    ts_ns = Int64.of_int ts;
    depth;
    attrs = [];
  }

let test_profile_tree_merges_siblings () =
  (* run[0..200] containing plan[10..40], plan[40..100], exec[100..150]:
     same-named siblings merge, self = total minus children. *)
  let events =
    [
      ev Obs.Trace.Begin "run" 0 0;
      ev Obs.Trace.Begin "plan" 10 1;
      ev Obs.Trace.End "plan" 40 1;
      ev Obs.Trace.Begin "plan" 40 1;
      ev Obs.Trace.End "plan" 100 1;
      ev Obs.Trace.Begin "exec" 100 1;
      ev Obs.Trace.End "exec" 150 1;
      ev Obs.Trace.End "run" 200 0;
    ]
  in
  let t = Obs.Profile.of_events events in
  Alcotest.(check int) "span count" 4 (Obs.Profile.span_count t);
  match t with
  | [ root ] ->
      Alcotest.(check string) "root" "run" root.Obs.Profile.name;
      Alcotest.(check int) "root count" 1 root.Obs.Profile.count;
      Alcotest.(check int64) "root total" 200L root.Obs.Profile.total_ns;
      Alcotest.(check int64) "root self" 60L root.Obs.Profile.self_ns;
      let names =
        List.map (fun n -> n.Obs.Profile.name) root.Obs.Profile.children
      in
      Alcotest.(check (list string))
        "children sorted by total" [ "plan"; "exec" ] names;
      let plan = List.hd root.Obs.Profile.children in
      Alcotest.(check int) "plan merged" 2 plan.Obs.Profile.count;
      Alcotest.(check int64) "plan total" 90L plan.Obs.Profile.total_ns;
      let hot = Obs.Profile.hotspots t in
      Alcotest.(check (list string))
        "hotspots by self time" [ "plan"; "run"; "exec" ]
        (List.map (fun (n, _, _, _) -> n) hot);
      let stacks =
        List.sort compare
          (List.filter
             (fun l -> l <> "")
             (String.split_on_char '\n' (Obs.Profile.collapsed t)))
      in
      Alcotest.(check (list string))
        "collapsed stacks"
        [ "run 60"; "run;exec 50"; "run;plan 90" ]
        stacks
  | _ -> Alcotest.fail "expected a single root"

let test_profile_tolerates_truncation () =
  (* A span left open closes at the last timestamp seen. *)
  let events =
    [
      ev Obs.Trace.Begin "run" 0 0;
      ev Obs.Trace.Begin "round" 10 1;
      ev Obs.Trace.End "round" 30 1;
      ev Obs.Trace.Begin "round" 30 1;
    ]
  in
  match Obs.Profile.of_events events with
  | [ root ] ->
      Alcotest.(check int64)
        "open root closed at last ts" 30L root.Obs.Profile.total_ns;
      Alcotest.(check int) "both rounds counted" 3 (Obs.Profile.span_count [ root ])
  | _ -> Alcotest.fail "expected a single root"

let test_profile_of_real_run () =
  let evs = traced_run () in
  let t = Obs.Profile.of_events evs in
  let hot = Obs.Profile.hotspots ~top:100 t in
  List.iter
    (fun expected ->
      Alcotest.(check bool)
        (Printf.sprintf "%s in hotspots" expected)
        true
        (List.exists (fun (n, _, _, _) -> n = expected) hot))
    [ "run"; "round"; "plan"; "estimate" ];
  Alcotest.(check bool)
    "collapsed non-empty" true
    (String.length (Obs.Profile.collapsed t) > 0);
  match Obs.Json.of_string (Obs.Json.to_string (Obs.Profile.to_json t)) with
  | Ok v ->
      Alcotest.(check bool)
        "spans count exported" true
        (Obs.Json.member "spans" v = Some (Obs.Json.Int (Obs.Profile.span_count t)))
  | Error msg -> Alcotest.failf "unparseable profile json: %s" msg

(* ------------------------------------------------------------------ *)
(* Regression gate                                                     *)

let bench_doc ?schema ?(mode = "full") ?(seed = 42) ?(n_events = 120) scenarios
    =
  Obs.Json.Obj
    ((match schema with
     | Some v -> [ ("schema_version", Obs.Json.Int v) ]
     | None -> [])
    @ [
        ("mode", Obs.Json.String mode);
        ("seed", Obs.Json.Int seed);
        ("n_events", Obs.Json.Int n_events);
        ( "scenarios",
          Obs.Json.List
            (List.map
               (fun (name, digest, wall) ->
                 Obs.Json.Obj
                   [
                     ("name", Obs.Json.String name);
                     ("digest", Obs.Json.String digest);
                     ("planning_wall_s", Obs.Json.Float wall);
                   ])
               scenarios) );
      ])

let check_gate ?max_regress ~baseline ~current () =
  match Obs.Regress.check ?max_regress ~baseline ~current () with
  | Ok r -> r
  | Error e -> Alcotest.failf "expected comparable documents: %s" e

let test_regress_pass_and_wall_regression () =
  let baseline = bench_doc [ ("lmtf", "aaaa", 2.0); ("reorder", "bbbb", 10.0) ] in
  let same =
    bench_doc ~schema:Obs.Regress.schema_version
      [ ("lmtf", "aaaa", 2.1); ("reorder", "bbbb", 9.0) ]
  in
  let r = check_gate ~baseline ~current:same () in
  Alcotest.(check (list string)) "within tolerance passes" [] r.Obs.Regress.failures;
  (* Injected 15%+ planning-wall regression must fail the gate. *)
  let slow =
    bench_doc [ ("lmtf", "aaaa", 2.0 *. 1.2); ("reorder", "bbbb", 10.0) ]
  in
  let r = check_gate ~baseline ~current:slow () in
  Alcotest.(check int) "regression caught" 1 (List.length r.Obs.Regress.failures);
  (* A looser tolerance accepts the same slowdown. *)
  let r = check_gate ~max_regress:0.25 ~baseline ~current:slow () in
  Alcotest.(check (list string)) "tolerance is a dial" [] r.Obs.Regress.failures

let test_regress_digest_and_missing_scenario () =
  let baseline = bench_doc [ ("lmtf", "aaaa", 2.0); ("reorder", "bbbb", 10.0) ] in
  let drifted = bench_doc [ ("lmtf", "cccc", 2.0) ] in
  let r = check_gate ~baseline ~current:drifted () in
  Alcotest.(check int)
    "digest change + missing scenario" 2
    (List.length r.Obs.Regress.failures);
  (* Extra scenarios in the current run are a note, not a failure. *)
  let wider =
    bench_doc
      [ ("lmtf", "aaaa", 2.0); ("reorder", "bbbb", 10.0); ("new", "dddd", 1.0) ]
  in
  let r = check_gate ~baseline ~current:wider () in
  Alcotest.(check (list string)) "new scenario passes" [] r.Obs.Regress.failures;
  Alcotest.(check bool) "but is noted" true (r.Obs.Regress.notes <> [])

let test_regress_incomparable () =
  let baseline = bench_doc [ ("lmtf", "aaaa", 2.0) ] in
  (* Schema absence (historical baseline) is accepted... *)
  let current = bench_doc ~schema:Obs.Regress.schema_version [ ("lmtf", "aaaa", 2.0) ] in
  (match Obs.Regress.check ~baseline ~current () with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "absent schema_version must compare: %s" e);
  (* ...but a present-and-different one is not. *)
  let future = bench_doc ~schema:(Obs.Regress.schema_version + 1) [] in
  (match Obs.Regress.check ~baseline:current ~current:future () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "schema mismatch must be incomparable");
  (* Different workloads never compare. *)
  let quick = bench_doc ~mode:"quick" ~n_events:40 [ ("lmtf", "aaaa", 0.2) ] in
  match Obs.Regress.check ~baseline ~current:quick () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "workload mismatch must be incomparable"

(* ------------------------------------------------------------------ *)
(* Engine integration: series sampling, histogram recording            *)

let test_engine_series_and_histograms () =
  let go ~obs =
    let net = loaded_net () in
    let events = workload () in
    let series = if obs then Some (Engine.make_series ()) else None in
    if obs then begin
      Obs.Histogram.Registry.reset ();
      Obs.Histogram.Registry.enable ()
    end;
    let r =
      Fun.protect ~finally:(fun () ->
          if obs then Obs.Histogram.Registry.disable ())
      @@ fun () ->
      Engine.run ?series ~seed:11 ~net ~events (Policy.Lmtf { alpha = 2 })
    in
    (Metrics.of_run r, r, series)
  in
  let plain, _, _ = go ~obs:false in
  let observed, r, series = go ~obs:true in
  Alcotest.(check bool)
    "series + histograms do not perturb the run" true (plain = observed);
  let s = Option.get series in
  Alcotest.(check int) "one row per round" r.Engine.rounds (Obs.Series.length s);
  Alcotest.(check (list string))
    "engine columns" Engine.series_columns (Obs.Series.columns s);
  let _, first = Obs.Series.get s 0 in
  Alcotest.(check (float 0.0))
    "initial queue depth is the full workload"
    (float_of_int (List.length (workload ())))
    first.(1);
  List.iter
    (fun name ->
      match Obs.Histogram.Registry.find name with
      | Some h ->
          Alcotest.(check int)
            (name ^ " one sample per event")
            (Array.length r.Engine.events)
            (Obs.Histogram.count h)
      | None -> Alcotest.failf "%s not recorded" name)
    [ "engine.event_service_s"; "engine.event_queuing_s" ];
  List.iter
    (fun name ->
      match Obs.Histogram.Registry.find name with
      | Some h ->
          Alcotest.(check bool) (name ^ " recorded") true (Obs.Histogram.count h > 0)
      | None -> Alcotest.failf "%s not recorded" name)
    [ "planner.plan_latency_s"; "planner.probe_latency_s"; "planner.moves_per_event" ];
  Obs.Histogram.Registry.reset ()

(* ------------------------------------------------------------------ *)
(* Named counters: late registration                                   *)

(* Regression: a named counter created *after* [before] was snapshotted
   must still appear in the diff (against an implicit 0), not vanish. *)
let test_counters_late_registration_diff () =
  let name = "test.late_registration" in
  let before = Obs.Counters.snapshot () in
  Obs.Counters.incr_named name;
  Obs.Counters.add_named name 4;
  let after = Obs.Counters.snapshot () in
  let d = Obs.Counters.diff ~before ~after in
  Alcotest.(check int) "late counter diffs against 0" 5
    (Obs.Counters.named_value d name);
  Alcotest.(check bool)
    "alist carries it" true
    (List.assoc_opt name (Obs.Counters.to_alist d) = Some 5);
  (* The asymmetric direction too: present in before, absent from a
     fresh process state — union means it still diffs (to a negative
     delta here, since diff is blind subtraction). *)
  let d0 = Obs.Counters.diff ~before:after ~after in
  Alcotest.(check int) "self-diff zero" 0 (Obs.Counters.named_value d0 name);
  Alcotest.(check bool) "self-diff is_zero" true (Obs.Counters.is_zero d0);
  Alcotest.check_raises "empty name rejected"
    (Invalid_argument "Counters.add_named: empty name") (fun () ->
      Obs.Counters.incr_named "")

(* The robustness counters (durable store + supervisor) go through the
   named registry, so they ride the same snapshot/diff machinery as the
   fixed keys: a diff over a region that bumped them reports exactly
   the deltas, symmetrically in both directions, whether or not the
   names existed when [before] was taken. *)
let test_robustness_counters_snapshot_diff () =
  let bumps =
    [
      ("store.frames_corrupt", 2);
      ("supervisor.restarts", 3);
      ("recovery.fallback_depth", 1);
    ]
  in
  let before = Obs.Counters.snapshot () in
  List.iter (fun (name, n) -> Obs.Counters.add_named name n) bumps;
  let after = Obs.Counters.snapshot () in
  let d = Obs.Counters.diff ~before ~after in
  List.iter
    (fun (name, n) ->
      Alcotest.(check int) (name ^ " delta") n (Obs.Counters.named_value d name);
      Alcotest.(check bool)
        (name ^ " listed") true
        (List.assoc_opt name (Obs.Counters.to_alist d) = Some n))
    bumps;
  (* Symmetry: swapping before/after negates every delta. *)
  let d' = Obs.Counters.diff ~before:after ~after:before in
  List.iter
    (fun (name, n) ->
      Alcotest.(check int) (name ^ " negated") (-n)
        (Obs.Counters.named_value d' name))
    bumps;
  Alcotest.(check bool) "self-diff is zero" true
    (Obs.Counters.is_zero (Obs.Counters.diff ~before:after ~after))

(* ------------------------------------------------------------------ *)
(* Histogram merge with mismatched bucket configs                      *)

let prop_histogram_merge_mismatch_raises =
  QCheck.Test.make ~name:"histogram merge rejects sub_buckets mismatch"
    ~count:50
    QCheck.(
      triple (int_range 0 5) (int_range 0 5) (list (float_range 0.0 100.0)))
    (fun (ea, eb, samples) ->
      QCheck.assume (ea <> eb);
      let mk e =
        let h = Obs.Histogram.create ~sub_buckets:(1 lsl (e + 1)) () in
        List.iter (Obs.Histogram.record h) samples;
        h
      in
      try
        ignore (Obs.Histogram.merge (mk ea) (mk eb));
        false
      with Invalid_argument _ -> true)

let prop_histogram_merge_equals_concat =
  QCheck.Test.make
    ~name:"histogram merge equals one histogram over concatenated samples"
    ~count:100
    QCheck.(
      pair (list (float_range 0.0 500.0)) (list (float_range 0.0 500.0)))
    (fun (xs, ys) ->
      let mk samples =
        let h = Obs.Histogram.create ~sub_buckets:16 () in
        List.iter (Obs.Histogram.record h) samples;
        h
      in
      let merged = Obs.Histogram.merge (mk xs) (mk ys) in
      let whole = mk (xs @ ys) in
      Obs.Histogram.count merged = Obs.Histogram.count whole
      && Obs.Histogram.buckets merged = Obs.Histogram.buckets whole
      && (Obs.Histogram.is_empty whole
         || List.for_all
              (fun q ->
                Obs.Histogram.quantile merged q = Obs.Histogram.quantile whole q)
              [ 0.0; 0.5; 0.99; 1.0 ]))

(* ------------------------------------------------------------------ *)
(* Series decimation at the stride boundary                            *)

(* Differential against the specification: after offering rows at
   t = 0, 1, ..., n-1, the retained rows are exactly the multiples of
   the final stride below n — uniform grid, first sample kept, no
   off-grid stragglers around the capacity/decimation boundaries. *)
let prop_series_stride_grid =
  QCheck.Test.make ~name:"series retains exactly the stride-grid rows"
    ~count:200
    QCheck.(pair (int_range 2 12) (int_range 1 300))
    (fun (capacity, n) ->
      let s = Obs.Series.create ~capacity ~columns:[ "v" ] () in
      (* create rounds an odd capacity up to even. *)
      let effective = capacity + (capacity land 1) in
      for i = 0 to n - 1 do
        Obs.Series.sample s ~t_s:(float_of_int i) [| float_of_int i |]
      done;
      let stride = Obs.Series.stride s in
      let expected =
        List.init n Fun.id |> List.filter (fun i -> i mod stride = 0)
      in
      let retained =
        List.init (Obs.Series.length s) (fun i ->
            int_of_float (fst (Obs.Series.get s i)))
      in
      Obs.Series.total_samples s = n
      && Obs.Series.length s <= effective
      && retained = expected)

let test_series_decimation_boundary () =
  (* Pin the exact boundary behaviour at capacity 4: the offer that
     fills the buffer triggers decimation and is itself dropped (it sits
     off the doubled grid); retention snaps to the new grid. *)
  let s = Obs.Series.create ~capacity:4 ~columns:[ "v" ] () in
  let offer i = Obs.Series.sample s ~t_s:(float_of_int i) [| 0.0 |] in
  let retained () =
    List.init (Obs.Series.length s) (fun i ->
        int_of_float (fst (Obs.Series.get s i)))
  in
  for i = 0 to 2 do offer i done;
  Alcotest.(check (list int)) "below capacity: everything" [ 0; 1; 2 ]
    (retained ());
  Alcotest.(check int) "stride still 1" 1 (Obs.Series.stride s);
  offer 3;
  (* 4th row fills the buffer: decimate to evens, stride doubles. *)
  Alcotest.(check (list int)) "decimated to evens" [ 0; 2 ] (retained ());
  Alcotest.(check int) "stride doubled" 2 (Obs.Series.stride s);
  offer 4;
  Alcotest.(check (list int)) "next keep lands on the new grid" [ 0; 2; 4 ]
    (retained ());
  offer 5;
  Alcotest.(check (list int)) "odd row dropped in O(1)" [ 0; 2; 4 ]
    (retained ())

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)

let test_lifecycle_stamps_and_jsonl () =
  let dir = Filename.temp_file "nu_lifecycle" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o700;
  let path = Filename.concat dir "lifecycle.jsonl" in
  let lc = Obs.Lifecycle.create ~path ~capacity:8 () in
  Obs.Lifecycle.stamp lc ~id:7 ~tenant:"t-a" ~tick:0 ~t_s:0.0
    Obs.Lifecycle.Arrived;
  Obs.Lifecycle.stamp lc ~id:7 ~tick:0 ~t_s:0.0 Obs.Lifecycle.Admitted;
  Obs.Lifecycle.stamp lc ~id:7 ~tick:1 ~t_s:0.05
    (Obs.Lifecycle.Submitted { wait_ticks = 1 });
  Obs.Lifecycle.stamp lc ~id:7 ~tick:1 ~t_s:0.05
    (Obs.Lifecycle.Planned { round = 0; co_scheduled = true });
  Alcotest.(check (option string))
    "tenant inherited while in flight" (Some "t-a")
    (Obs.Lifecycle.tenant_of lc 7);
  Alcotest.(check int) "in flight" 1 (Obs.Lifecycle.in_flight lc);
  Obs.Lifecycle.stamp lc ~id:7 ~tick:2 ~t_s:0.1
    (Obs.Lifecycle.Completed { ect_s = 0.1 });
  Alcotest.(check (option string))
    "terminal stamp retires attribution" None
    (Obs.Lifecycle.tenant_of lc 7);
  Alcotest.(check int) "nothing in flight" 0 (Obs.Lifecycle.in_flight lc);
  Alcotest.(check int) "five stamps" 5 (Obs.Lifecycle.stamped lc);
  Obs.Lifecycle.close lc;
  (* The streamed JSONL reads back as the in-memory ring. *)
  (match Obs.Lifecycle.read_jsonl path with
  | Error m -> Alcotest.failf "read_jsonl: %s" m
  | Ok { Obs.Lifecycle.read = entries; torn } ->
      Alcotest.(check bool) "no torn tail" true (torn = None);
      Alcotest.(check int) "one line per stamp" 5 (List.length entries);
      Alcotest.(check bool)
        "file round-trips the ring" true
        (entries = Obs.Lifecycle.entries lc);
      let stages =
        List.map (fun e -> Obs.Lifecycle.stage_name e.Obs.Lifecycle.stage)
          entries
      in
      Alcotest.(check (list string))
        "stage order preserved"
        [ "arrived"; "admitted"; "submitted"; "planned"; "completed" ]
        stages);
  Sys.remove path;
  Sys.rmdir dir

let test_lifecycle_entry_json_roundtrip () =
  let entries =
    [
      Obs.Lifecycle.Arrived;
      Obs.Lifecycle.Admitted;
      Obs.Lifecycle.Shed "tenant-quota";
      Obs.Lifecycle.Deferred;
      Obs.Lifecycle.Submitted { wait_ticks = 3 };
      Obs.Lifecycle.Planned { round = 9; co_scheduled = false };
      Obs.Lifecycle.Aborted { round = 9 };
      Obs.Lifecycle.Retry_scheduled { ready_s = 1.25 };
      Obs.Lifecycle.Completed { ect_s = 0.5 };
      Obs.Lifecycle.Degraded { ect_s = 2.0; failed_items = 2 };
    ]
    |> List.mapi (fun i stage ->
           { Obs.Lifecycle.id = i; tenant = "t"; tick = i; t_s = 0.1; stage })
  in
  List.iter
    (fun e ->
      match Obs.Lifecycle.entry_of_json (Obs.Lifecycle.entry_to_json e) with
      | Ok e' ->
          Alcotest.(check bool)
            (Obs.Lifecycle.stage_name e.Obs.Lifecycle.stage ^ " round-trips")
            true (e = e')
      | Error m -> Alcotest.failf "entry_of_json: %s" m)
    entries

(* ------------------------------------------------------------------ *)
(* Fairness                                                            *)

let test_fairness_jain_and_windows () =
  let f = Obs.Fairness.create ~window:2 () in
  Alcotest.(check (option (float 0.0)))
    "no completions, no index" None (Obs.Fairness.jain_index f);
  Obs.Fairness.observe_admit f ~tenant:"a";
  Obs.Fairness.observe_admit f ~tenant:"b";
  Obs.Fairness.observe_shed f ~tenant:"b";
  Obs.Fairness.observe_completion f ~tenant:"a" ~ect_s:1.0 ~degraded:false;
  Obs.Fairness.observe_completion f ~tenant:"b" ~ect_s:1.0 ~degraded:true;
  (* Equal means => perfectly fair. *)
  (match Obs.Fairness.jain_index f with
  | Some j -> Alcotest.(check (float 1e-9)) "equal means" 1.0 j
  | None -> Alcotest.fail "index expected");
  Obs.Fairness.observe_completion f ~tenant:"a" ~ect_s:1.0 ~degraded:false;
  (* a: mean 1.0 over 2; b: mean 1.0 — still equal. Skew b hard. *)
  Obs.Fairness.observe_completion f ~tenant:"b" ~ect_s:31.0 ~degraded:false;
  (match Obs.Fairness.jain_index f with
  | Some j ->
      (* means 1 and 16: (17)^2 / (2 * 257) = 289/514. *)
      Alcotest.(check (float 1e-6)) "skewed index" (289.0 /. 514.0) j
  | None -> Alcotest.fail "index expected");
  Alcotest.(check (list string))
    "tenants sorted" [ "a"; "b" ] (Obs.Fairness.tenant_names f);
  (match Obs.Fairness.view f with
  | [ a; b ] ->
      Alcotest.(check string) "a first" "a" a.Obs.Fairness.v_tenant;
      Alcotest.(check int) "a completed" 2 a.Obs.Fairness.v_completed;
      Alcotest.(check int) "b degraded" 1 b.Obs.Fairness.v_degraded;
      Alcotest.(check (float 1e-9))
        "b shed ratio" 0.5 b.Obs.Fairness.v_shed_ratio
  | _ -> Alcotest.fail "two tenants expected");
  (* Window rotation: nothing before the first full window. *)
  Alcotest.(check int) "no window yet" 0 (Obs.Fairness.windows_completed f);
  Alcotest.(check bool) "last_window empty" true (Obs.Fairness.last_window f = []);
  Obs.Fairness.on_tick f;
  Obs.Fairness.on_tick f;
  Alcotest.(check int) "one window" 1 (Obs.Fairness.windows_completed f);
  (match Obs.Fairness.last_window f with
  | [ wa; wb ] ->
      Alcotest.(check string) "window tenant a" "a" wa.Obs.Fairness.w_tenant;
      Alcotest.(check int) "a window count" 2 wa.Obs.Fairness.w_count;
      Alcotest.(check int) "b window count" 2 wb.Obs.Fairness.w_count
  | _ -> Alcotest.fail "both tenants completed in window 0");
  (* The frozen window is stable: a new completion lands in the next. *)
  Obs.Fairness.observe_completion f ~tenant:"a" ~ect_s:9.0 ~degraded:false;
  match Obs.Fairness.last_window f with
  | [ wa; _ ] -> Alcotest.(check int) "frozen" 2 wa.Obs.Fairness.w_count
  | _ -> Alcotest.fail "window changed shape"

(* ------------------------------------------------------------------ *)
(* Slo                                                                 *)

let test_slo_rolling_and_breaches () =
  let s =
    Obs.Slo.create ~window:2 ~p99_target_s:0.5 ~max_queue:10 ~max_backlog:3 ()
  in
  Alcotest.(check (option (float 0.0))) "empty p99" None (Obs.Slo.p99 s);
  Obs.Slo.observe_ect s 0.1;
  Obs.Slo.observe_gauges s ~queue:4 ~backlog:1;
  Obs.Slo.on_tick s ~tick:0;
  Alcotest.(check int) "under targets: no breach" 0 (Obs.Slo.breach_count s);
  (* Blow past the p99 target and the backlog cap. *)
  for _ = 1 to 50 do Obs.Slo.observe_ect s 2.0 done;
  Obs.Slo.observe_gauges s ~queue:4 ~backlog:7;
  Obs.Slo.on_tick s ~tick:1;
  Alcotest.(check bool)
    "p99 reflects the spike" true
    (match Obs.Slo.p99 s with Some v -> v > 1.5 | None -> false);
  let metrics =
    List.map (fun b -> b.Obs.Slo.b_metric) (Obs.Slo.breaches s)
  in
  Alcotest.(check bool) "p99 breach recorded" true
    (List.mem "p99_ect_s" metrics);
  Alcotest.(check bool) "backlog breach recorded" true
    (List.mem "engine_backlog" metrics);
  Alcotest.(check bool) "queue under cap: no breach" false
    (List.mem "queue_depth" metrics);
  List.iter
    (fun b -> Alcotest.(check int) "breach stamped with tick" 1 b.Obs.Slo.b_tick)
    (Obs.Slo.breaches s);
  (* Rotation bounds history: after two full windows with no samples,
     the rolling pair is empty again. *)
  for t = 2 to 5 do Obs.Slo.on_tick s ~tick:t done;
  Alcotest.(check bool)
    "old spike aged out" true
    (Obs.Histogram.is_empty (Obs.Slo.rolling s));
  Alcotest.(check (option (float 0.0))) "p99 empty again" None (Obs.Slo.p99 s)

(* ------------------------------------------------------------------ *)
(* OpenMetrics exposition                                              *)

let test_expo_metric_name () =
  List.iter
    (fun (input, expected) ->
      Alcotest.(check string) input expected (Obs.Expo.metric_name input))
    [
      ("serve.admission_wait_s", "nu_serve_admission_wait_seconds");
      ("planner_plans", "nu_planner_plans");
      ("Weird-Name.1", "nu_weird_name_1");
      ("telemetry.expo_writes", "nu_telemetry_expo_writes");
    ]

let test_expo_render_validates () =
  let f = Obs.Fairness.create ~window:2 () in
  Obs.Fairness.observe_admit f ~tenant:"quoted\"tenant\nx";
  Obs.Fairness.observe_completion f ~tenant:"quoted\"tenant\nx" ~ect_s:0.25
    ~degraded:false;
  let slo = Obs.Slo.create ~p99_target_s:0.1 () in
  Obs.Slo.observe_ect slo 0.5;
  Obs.Slo.observe_gauges slo ~queue:2 ~backlog:1;
  Obs.Slo.on_tick slo ~tick:0;
  let h = Obs.Histogram.create ~sub_buckets:4 () in
  List.iter (Obs.Histogram.record h) [ 0.1; 0.2; 3.0 ];
  let doc =
    Obs.Expo.render
      ~counters:(Obs.Counters.snapshot ())
      ~histograms:[ ("serve.wait_s", h) ]
      ~fairness:f ~slo ()
  in
  (match Obs.Expo.validate doc with
  | Ok () -> ()
  | Error m -> Alcotest.failf "rendered document rejected: %s" m);
  Alcotest.(check bool)
    "self-terminated" true
    (String.length doc >= 6
    && String.sub doc (String.length doc - 6) 6 = "# EOF\n");
  (* Histogram families render cumulatively with a +Inf catch-all. *)
  Alcotest.(check bool)
    "+Inf bucket" true
    (let substr = "nu_serve_wait_seconds_bucket{le=\"+Inf\"} 3" in
     let rec find i =
       i + String.length substr <= String.length doc
       && (String.sub doc i (String.length substr) = substr || find (i + 1))
     in
     find 0);
  (* Malformed documents are rejected with a line number. *)
  List.iter
    (fun (label, bad) ->
      match Obs.Expo.validate bad with
      | Error _ -> ()
      | Ok () -> Alcotest.failf "accepted %s" label)
    [
      ("missing EOF", "# TYPE nu_x counter\nnu_x_total 1\n");
      ("undeclared family", "nu_ghost 1\n# EOF\n");
      ("bad value", "# TYPE nu_x gauge\nnu_x yes\n# EOF\n");
      ("unterminated label", "# TYPE nu_x gauge\nnu_x{a=\"b} 1\n# EOF\n");
      ( "text after EOF",
        "# TYPE nu_x gauge\nnu_x 1\n# EOF\nnu_x 2\n" );
    ]

(* ------------------------------------------------------------------ *)
(* Chrome flow events                                                  *)

let test_chrome_flow_events () =
  let mk ts attrs =
    {
      Obs.Trace.phase = Obs.Trace.Instant;
      name = "lifecycle";
      ts_ns = Int64.of_int ts;
      depth = 0;
      attrs;
    }
  in
  let events =
    [
      mk 0 [ ("flow", Obs.Trace.Str "s"); ("id", Obs.Trace.Int 7) ];
      mk 1000 [ ("flow", Obs.Trace.Str "t"); ("id", Obs.Trace.Int 7) ];
      mk 2000 [ ("flow", Obs.Trace.Str "f"); ("id", Obs.Trace.Int 7) ];
      (* No flow attrs: stays an ordinary instant. *)
      mk 3000 [];
    ]
  in
  match Obs.Json.member "traceEvents" (Obs.Export.chrome_of_events events) with
  | Some (Obs.Json.List [ s; t; f; plain ]) ->
      let ph v = Obs.Json.member "ph" v in
      Alcotest.(check bool) "flow start" true (ph s = Some (Obs.Json.String "s"));
      Alcotest.(check bool) "flow step" true (ph t = Some (Obs.Json.String "t"));
      Alcotest.(check bool) "flow finish" true (ph f = Some (Obs.Json.String "f"));
      Alcotest.(check bool)
        "finish binds enclosing" true
        (Obs.Json.member "bp" f = Some (Obs.Json.String "e"));
      Alcotest.(check bool)
        "flow id threaded" true
        (Obs.Json.member "id" s = Some (Obs.Json.Int 7));
      Alcotest.(check bool)
        "plain instant untouched" true
        (ph plain = Some (Obs.Json.String "i"))
  | _ -> Alcotest.fail "expected four trace events"

(* ------------------------------------------------------------------ *)
(* Regress delta document                                              *)

let test_regress_delta_json () =
  let baseline = bench_doc [ ("lmtf", "aaaa", 2.0); ("gone", "gggg", 1.0) ] in
  let current = bench_doc [ ("lmtf", "bbbb", 3.0); ("new", "nnnn", 1.0) ] in
  let doc = Obs.Regress.delta_json ~baseline ~current () in
  Alcotest.(check bool)
    "digest change fails" true
    (Obs.Json.member "result" doc = Some (Obs.Json.String "fail"));
  (match Obs.Json.member "scenarios" doc with
  | Some (Obs.Json.List [ lmtf; gone; fresh ]) ->
      Alcotest.(check bool)
        "digest mismatch flagged" true
        (Obs.Json.member "digest_match" lmtf = Some (Obs.Json.Bool false));
      Alcotest.(check bool)
        "wall delta present" true
        (Obs.Json.member "planning_wall_delta_pct" lmtf <> None);
      Alcotest.(check bool)
        "missing scenario statused" true
        (Obs.Json.member "status" gone
        = Some (Obs.Json.String "missing_from_current"));
      Alcotest.(check bool)
        "new scenario statused" true
        (Obs.Json.member "status" fresh
        = Some (Obs.Json.String "new_in_current"))
  | _ -> Alcotest.fail "expected three scenario deltas");
  (* Incomparable runs still carry best-effort deltas. *)
  let quick = bench_doc ~mode:"quick" ~n_events:40 [ ("lmtf", "aaaa", 0.2) ] in
  let doc = Obs.Regress.delta_json ~baseline ~current:quick () in
  Alcotest.(check bool)
    "incomparable result" true
    (Obs.Json.member "result" doc = Some (Obs.Json.String "incomparable"));
  Alcotest.(check bool) "reason present" true (Obs.Json.member "reason" doc <> None);
  match Obs.Json.member "scenarios" doc with
  | Some (Obs.Json.List (_ :: _)) -> ()
  | _ -> Alcotest.fail "deltas expected even when incomparable"

let test_null_sink_identical_results () =
  let run_once ~traced =
    let net = loaded_net () in
    let events = workload () in
    let go () =
      Metrics.of_run
        (Engine.run ~seed:11 ~net ~events (Policy.Plmtf { alpha = 2 }))
    in
    if traced then
      with_memory_sink (fun _ -> go ())
    else go ()
  in
  let plain = run_once ~traced:false in
  let traced = run_once ~traced:true in
  Alcotest.(check bool)
    "summaries identical with and without tracing" true (plain = traced)

(* ------------------------------------------------------------------ *)
(* Watchdog: streaming detectors                                       *)

let contains_sub doc sub =
  let n = String.length sub in
  let rec find i =
    i + n <= String.length doc && (String.sub doc i n = sub || find (i + 1))
  in
  find 0

let test_cusum_step_change () =
  let open Obs.Detector.Cusum in
  let c = create default in
  (* A stable, slightly dithered baseline never fires. *)
  for i = 0 to 29 do
    let st = observe c (1.0 +. (0.01 *. float_of_int (i mod 3))) in
    Alcotest.(check bool) "quiet on stable signal" false st.firing
  done;
  (* A level shift fires within a handful of samples, direction Up. *)
  let fired = ref None in
  for i = 0 to 9 do
    let st = observe c 5.0 in
    if st.firing && !fired = None then fired := Some (i, st.direction)
  done;
  (match !fired with
  | None -> Alcotest.fail "step change never detected"
  | Some (i, dir) ->
      Alcotest.(check bool) "detected within 5 samples" true (i <= 5);
      Alcotest.(check bool) "shift direction is up" true (dir = Some Up));
  (* Determinism: a twin fed the same stream agrees on every status. *)
  let a = create default and b = create default in
  for i = 0 to 59 do
    let v = if i < 30 then 1.0 else 7.5 +. (0.1 *. float_of_int (i mod 4)) in
    Alcotest.(check bool) "twin statuses equal" true (observe a v = observe b v)
  done

let test_slope_and_rate () =
  let s = Obs.Detector.Slope.create ~window:5 in
  let last = ref None in
  for i = 0 to 3 do
    last := Obs.Detector.Slope.observe s (float_of_int i)
  done;
  Alcotest.(check bool) "no slope before the window fills" true (!last = None);
  (match Obs.Detector.Slope.observe s 4.0 with
  | Some sl -> Alcotest.(check (float 1e-9)) "unit ramp" 1.0 sl
  | None -> Alcotest.fail "slope expected once the window is full");
  for _ = 1 to 5 do
    last := Obs.Detector.Slope.observe s 4.0
  done;
  (match !last with
  | Some sl -> Alcotest.(check (float 1e-9)) "flat signal" 0.0 sl
  | None -> Alcotest.fail "slope expected");
  let r = Obs.Detector.Rate.create ~window:3 in
  ignore (Obs.Detector.Rate.observe r 1 : int);
  ignore (Obs.Detector.Rate.observe r 2 : int);
  Alcotest.(check int) "windowed sum" 3 (Obs.Detector.Rate.observe r 0);
  Alcotest.(check int) "window slides" 2 (Obs.Detector.Rate.observe r 0);
  Alcotest.(check int) "oldest aged out" 0 (Obs.Detector.Rate.observe r 0)

(* ------------------------------------------------------------------ *)
(* Watchdog: hysteretic health machine                                 *)

let test_health_full_transition_sequence () =
  let cfg =
    { Obs.Health.warn_after = 2; crit_after = 3; clear_after = 2; recover_after = 2 }
  in
  let h = Obs.Health.create cfg in
  let obs firing = Obs.Health.observe h ~firing in
  Alcotest.(check bool) "one firing tick stays Ok" true (obs true = None);
  Alcotest.(check bool) "warn after 2 sustained" true
    (obs true = Some Obs.Health.Warn);
  Alcotest.(check bool) "no transition repeat" true (obs true = None);
  Alcotest.(check bool) "still warn" true (obs true = None);
  Alcotest.(check bool) "critical after 3 more" true
    (obs true = Some Obs.Health.Critical);
  Alcotest.(check bool) "one quiet tick holds" true (obs false = None);
  Alcotest.(check bool) "recovering after 2 quiet" true
    (obs false = Some Obs.Health.Recovering);
  Alcotest.(check bool) "relapse straight to critical" true
    (obs true = Some Obs.Health.Critical);
  Alcotest.(check bool) "quiet again" true (obs false = None);
  Alcotest.(check bool) "recovering again" true
    (obs false = Some Obs.Health.Recovering);
  Alcotest.(check bool) "recovery needs sustained quiet" true (obs false = None);
  Alcotest.(check bool) "ok after recover_after" true
    (obs false = Some Obs.Health.Ok)

let test_health_no_flapping () =
  (* A signal oscillating at the detector threshold: a consecutive-tick
     requirement of 2 means alternating fire/quiet never transitions. *)
  let cfg =
    { Obs.Health.warn_after = 2; crit_after = 2; clear_after = 2; recover_after = 2 }
  in
  let h = Obs.Health.create cfg in
  for i = 0 to 99 do
    match Obs.Health.observe h ~firing:(i mod 2 = 0) with
    | Some s ->
        Alcotest.failf "flapped into %s at tick %d" (Obs.Health.state_name s) i
    | None -> ()
  done;
  Alcotest.(check bool) "still Ok" true (Obs.Health.state h = Obs.Health.Ok)

(* ------------------------------------------------------------------ *)
(* Watchdog: nu_watch over a synthetic observation stream              *)

let synthetic_obs ?(n = 60) ?(spike_at = 30) () =
  List.init n (fun tick ->
      let spiking = tick >= spike_at in
      {
        Obs.Watch.o_tick = tick;
        o_queue = (if spiking then 40 + (tick mod 3) else 2 + (tick mod 2));
        o_backlog = (if spiking then 2 * (tick - spike_at + 1) else 1);
        o_ects =
          [
            ( "tenant-a",
              if spiking then 1.5 +. (0.01 *. float_of_int (tick mod 5))
              else 0.05 );
            ("tenant-b", 0.05 +. (0.001 *. float_of_int (tick mod 7)));
          ];
        o_corrupt_d = (if tick = spike_at + 5 then 2 else 0);
        o_restarts_d = (if tick = spike_at + 6 then 1 else 0);
      })

let with_temp_dir f =
  let dir = Filename.temp_file "nu_watch" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter Sys.remove (Sys.readdir dir |> Array.map (Filename.concat dir));
      Sys.rmdir dir)
    (fun () -> f dir)

let test_watch_deterministic_twins () =
  let stream = synthetic_obs () in
  let run () =
    let w = Obs.Watch.create Obs.Watch.default_config in
    List.iter (Obs.Watch.ingest w) stream;
    w
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "spike raises alerts" true (Obs.Watch.alert_total a > 0);
  Alcotest.(check bool) "criticals raised" true (Obs.Watch.critical_total a > 0);
  Alcotest.(check string) "digests bit-identical" (Obs.Watch.alert_digest a)
    (Obs.Watch.alert_digest b);
  Alcotest.(check bool) "alert sequences equal" true
    (Obs.Watch.alerts a = Obs.Watch.alerts b);
  Alcotest.(check int) "severity counts cover every alert"
    (Obs.Watch.alert_total a)
    (List.fold_left (fun acc (_, n) -> acc + n) 0 (Obs.Watch.by_severity a));
  Alcotest.(check bool) "spiking tenant tracked" true
    (List.mem_assoc "tenant-a" (Obs.Watch.tenant_states a));
  (* The alert block renders and the health timeline is non-empty. *)
  match Obs.Json.member "alert_total" (Obs.Watch.report_json a) with
  | Some (Obs.Json.Int n) ->
      Alcotest.(check int) "report totals agree" (Obs.Watch.alert_total a) n
  | _ -> Alcotest.fail "report_json lacks alert_total"

let test_watch_journal_roundtrip () =
  with_temp_dir (fun dir ->
      let stream = synthetic_obs () in
      let live =
        Obs.Watch.create
          { Obs.Watch.default_config with Obs.Watch.dir = Some dir }
      in
      List.iter (Obs.Watch.ingest live) stream;
      Obs.Watch.close live;
      match Obs.Watch.read_journal (Filename.concat dir "watch.jsonl") with
      | Error m -> Alcotest.failf "read_journal: %s" m
      | Ok { Obs.Watch.j_config; j_obs; j_torn } -> (
          Alcotest.(check bool) "no torn tail" true (j_torn = None);
          Alcotest.(check bool) "observations round-trip" true (j_obs = stream);
          let cfg =
            match j_config with
            | Some c -> c
            | None -> Alcotest.fail "config header missing"
          in
          (* Offline re-evaluation from the journal alone reproduces the
             live digest bit for bit. *)
          let offline = Obs.Watch.create cfg in
          List.iter (Obs.Watch.ingest offline) j_obs;
          Alcotest.(check string) "offline digest equals live"
            (Obs.Watch.alert_digest live)
            (Obs.Watch.alert_digest offline);
          Alcotest.(check int) "offline totals equal live"
            (Obs.Watch.alert_total live)
            (Obs.Watch.alert_total offline);
          (* And the journaled alert lines hash to the same digest. *)
          match
            Obs.Watch.read_alerts_digest (Filename.concat dir "alerts.jsonl")
          with
          | Error m -> Alcotest.failf "read_alerts_digest: %s" m
          | Ok (digest, lines) ->
              Alcotest.(check string) "alerts.jsonl digest"
                (Obs.Watch.alert_digest live) digest;
              Alcotest.(check int) "alerts.jsonl line count"
                (Obs.Watch.alert_total live) lines))

let read_file path =
  let ic = open_in_bin path in
  let body = really_input_string ic (in_channel_length ic) in
  close_in ic;
  body

let test_watch_resume_matches_uninterrupted () =
  let stream = synthetic_obs () in
  let cut = 35 in
  with_temp_dir (fun dir_a ->
      with_temp_dir (fun dir_b ->
          let full =
            Obs.Watch.create
              { Obs.Watch.default_config with Obs.Watch.dir = Some dir_a }
          in
          List.iter (Obs.Watch.ingest full) stream;
          Obs.Watch.close full;
          (* Crash after [cut] ticks, then a fresh watcher resumes on the
             same directory: its first observation at tick [cut] > 0
             triggers the journal-replay path. *)
          let before =
            Obs.Watch.create
              { Obs.Watch.default_config with Obs.Watch.dir = Some dir_b }
          in
          List.iter (Obs.Watch.ingest before)
            (List.filter (fun o -> o.Obs.Watch.o_tick < cut) stream);
          Obs.Watch.close before;
          let resumed =
            Obs.Watch.create
              { Obs.Watch.default_config with Obs.Watch.dir = Some dir_b }
          in
          List.iter (Obs.Watch.ingest resumed)
            (List.filter (fun o -> o.Obs.Watch.o_tick >= cut) stream);
          Obs.Watch.close resumed;
          Alcotest.(check string) "alert digest equals uninterrupted"
            (Obs.Watch.alert_digest full)
            (Obs.Watch.alert_digest resumed);
          Alcotest.(check int) "alert totals equal"
            (Obs.Watch.alert_total full)
            (Obs.Watch.alert_total resumed);
          Alcotest.(check string) "alerts.jsonl byte-identical"
            (read_file (Filename.concat dir_a "alerts.jsonl"))
            (read_file (Filename.concat dir_b "alerts.jsonl"));
          Alcotest.(check string) "watch.jsonl byte-identical"
            (read_file (Filename.concat dir_a "watch.jsonl"))
            (read_file (Filename.concat dir_b "watch.jsonl"))))

let test_watch_torn_tail_tolerated () =
  with_temp_dir (fun dir ->
      let stream = synthetic_obs ~n:20 ~spike_at:99 () in
      let w =
        Obs.Watch.create
          { Obs.Watch.default_config with Obs.Watch.dir = Some dir }
      in
      List.iter (Obs.Watch.ingest w) stream;
      Obs.Watch.close w;
      let path = Filename.concat dir "watch.jsonl" in
      (* A crash mid-append leaves a torn trailing line: tolerated. *)
      let oc = open_out_gen [ Open_append ] 0o600 path in
      output_string oc "{\"o_tick\": 20, \"o_que";
      close_out oc;
      (match Obs.Watch.read_journal path with
      | Error m -> Alcotest.failf "torn tail rejected: %s" m
      | Ok { Obs.Watch.j_obs; j_torn; _ } ->
          Alcotest.(check bool) "torn line reported" true (j_torn <> None);
          Alcotest.(check int) "intact prefix read" 20 (List.length j_obs));
      (* Garbage in the middle is a hard error, not silent data loss. *)
      let body = read_file path in
      let lines = String.split_on_char '\n' body in
      let corrupted =
        String.concat "\n"
          (List.mapi (fun i l -> if i = 3 then "garbage" else l) lines)
      in
      let oc = open_out_bin path in
      output_string oc corrupted;
      close_out oc;
      match Obs.Watch.read_journal path with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "mid-file garbage accepted")

let test_lifecycle_torn_tail_tolerated () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "lifecycle.jsonl" in
      let entry i =
        {
          Obs.Lifecycle.id = i;
          tenant = "t";
          tick = i;
          t_s = 0.05 *. float_of_int i;
          stage = Obs.Lifecycle.Arrived;
        }
      in
      let oc = open_out_bin path in
      for i = 0 to 4 do
        output_string oc
          (Obs.Json.to_string (Obs.Lifecycle.entry_to_json (entry i)));
        output_char oc '\n'
      done;
      (* Torn trailing line (crash mid-append). *)
      output_string oc "{\"id\": 5, \"tena";
      close_out oc;
      (match Obs.Lifecycle.read_jsonl path with
      | Error m -> Alcotest.failf "torn tail rejected: %s" m
      | Ok { Obs.Lifecycle.read; torn } ->
          Alcotest.(check int) "intact prefix read" 5 (List.length read);
          (match torn with
          | Some (line, _) -> Alcotest.(check int) "torn line number" 6 line
          | None -> Alcotest.fail "torn tail not reported"));
      (* Mid-file garbage stays a hard error. *)
      let body = read_file path in
      let lines = String.split_on_char '\n' body in
      let corrupted =
        String.concat "\n"
          (List.mapi (fun i l -> if i = 2 then "not json" else l) lines)
      in
      let oc = open_out_bin path in
      output_string oc corrupted;
      close_out oc;
      match Obs.Lifecycle.read_jsonl path with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "mid-file garbage accepted")

let test_slo_breach_cap_counts_dropped () =
  let s =
    Obs.Slo.create ~window:1 ~p99_target_s:1e-9 ~max_queue:0 ~max_backlog:0 ()
  in
  for tick = 0 to 99 do
    Obs.Slo.observe_ect s 1.0;
    Obs.Slo.observe_gauges s ~queue:5 ~backlog:5;
    Obs.Slo.on_tick s ~tick
  done;
  (* 3 breaches per tick: p99, queue, backlog. *)
  Alcotest.(check int) "exact total" 300 (Obs.Slo.breach_count s);
  Alcotest.(check int) "retained list bounded" 256
    (List.length (Obs.Slo.breaches s));
  Alcotest.(check int) "dropped counted, not silent" 44
    (Obs.Slo.breaches_dropped s);
  (* The truncation is visible in the report and the exposition. *)
  (match Obs.Json.member "breaches_dropped" (Obs.Slo.to_json s) with
  | Some (Obs.Json.Int n) -> Alcotest.(check int) "report agrees" 44 n
  | _ -> Alcotest.fail "breaches_dropped missing from to_json");
  let doc = Obs.Expo.render ~slo:s () in
  (match Obs.Expo.validate doc with
  | Ok () -> ()
  | Error m -> Alcotest.failf "slo exposition rejected: %s" m);
  Alcotest.(check bool) "dropped counter exposed" true
    (contains_sub doc "nu_slo_breaches_dropped_total 44")

let test_expo_watch_families_validate () =
  let w = Obs.Watch.create Obs.Watch.default_config in
  List.iter (Obs.Watch.ingest w) (synthetic_obs ());
  let doc = Obs.Expo.render ~watch:w () in
  (match Obs.Expo.validate doc with
  | Ok () -> ()
  | Error m -> Alcotest.failf "watch exposition rejected: %s" m);
  List.iter
    (fun sub ->
      Alcotest.(check bool) (sub ^ " present") true (contains_sub doc sub))
    [
      "# TYPE nu_alerts_total counter";
      "nu_alerts_total{severity=\"critical\"}";
      "# TYPE nu_alerts_detector_total counter";
      "nu_alerts_dropped_total";
      "nu_health_state{scope=\"global\"}";
      "nu_tenant_health_state{tenant=\"tenant-a\"}";
    ]

let prop_watch_digest_deterministic =
  (* Any spike position and stream length: twin watchers agree, and an
     offline journal re-evaluation reproduces the live digest. *)
  QCheck.Test.make ~name:"watch digest is a pure function of the obs stream"
    ~count:25
    QCheck.(pair (int_range 5 80) (int_range 1 80))
    (fun (n, spike_at) ->
      let stream = synthetic_obs ~n ~spike_at () in
      let run () =
        let w = Obs.Watch.create Obs.Watch.default_config in
        List.iter (Obs.Watch.ingest w) stream;
        Obs.Watch.alert_digest w
      in
      String.equal (run ()) (run ()))

let suite =
  [
    ("json round-trip", `Quick, test_json_roundtrip);
    ("json float precision", `Quick, test_json_float_precision);
    ("json non-finite", `Quick, test_json_nonfinite_is_null);
    ("json parse errors", `Quick, test_json_parse_errors);
    QCheck_alcotest.to_alcotest prop_json_print_parse_identity;
    ("json integral float type", `Quick, test_json_integral_float_keeps_type);
    ( "json control/unicode escapes",
      `Quick,
      test_json_control_and_unicode_escapes );
    ("span LIFO nesting", `Quick, test_span_lifo_nesting);
    ("span non-LIFO raises", `Quick, test_span_non_lifo_raises);
    ("span exception safety", `Quick, test_span_exception_safety);
    ("span unwind on raise", `Quick, test_span_unwind_on_raise);
    ("disabled tracing no-op", `Quick, test_disabled_tracing_is_noop);
    ("histogram side stats", `Quick, test_histogram_exact_side_stats);
    ("histogram quantile bounds", `Quick, test_histogram_quantile_bounds);
    QCheck_alcotest.to_alcotest prop_histogram_matches_descriptive;
    QCheck_alcotest.to_alcotest prop_histogram_merge_associative;
    ("histogram json", `Quick, test_histogram_json);
    ("histogram registry gated", `Quick, test_histogram_registry_gated);
    ("series bounded decimation", `Quick, test_series_bounded_decimation);
    ("series csv/json", `Quick, test_series_csv_and_json);
    ("profile sibling merge", `Quick, test_profile_tree_merges_siblings);
    ("profile truncation", `Quick, test_profile_tolerates_truncation);
    ("profile of real run", `Quick, test_profile_of_real_run);
    ("regress wall gate", `Quick, test_regress_pass_and_wall_regression);
    ("regress digest gate", `Quick, test_regress_digest_and_missing_scenario);
    ("regress incomparable", `Quick, test_regress_incomparable);
    ("regress delta json", `Quick, test_regress_delta_json);
    ( "counters late registration",
      `Quick,
      test_counters_late_registration_diff );
    ( "robustness counters snapshot/diff",
      `Quick,
      test_robustness_counters_snapshot_diff );
    QCheck_alcotest.to_alcotest prop_histogram_merge_mismatch_raises;
    QCheck_alcotest.to_alcotest prop_histogram_merge_equals_concat;
    QCheck_alcotest.to_alcotest prop_series_stride_grid;
    ("series decimation boundary", `Quick, test_series_decimation_boundary);
    ("lifecycle stamps + jsonl", `Quick, test_lifecycle_stamps_and_jsonl);
    ( "lifecycle entry json round-trip",
      `Quick,
      test_lifecycle_entry_json_roundtrip );
    ("fairness jain + windows", `Quick, test_fairness_jain_and_windows);
    ("slo rolling + breaches", `Quick, test_slo_rolling_and_breaches);
    ("slo breach cap counts dropped", `Quick, test_slo_breach_cap_counts_dropped);
    ("cusum step change", `Quick, test_cusum_step_change);
    ("slope + rate detectors", `Quick, test_slope_and_rate);
    ("health transition sequence", `Quick, test_health_full_transition_sequence);
    ("health no flapping", `Quick, test_health_no_flapping);
    ("watch deterministic twins", `Quick, test_watch_deterministic_twins);
    ("watch journal round-trip", `Quick, test_watch_journal_roundtrip);
    ( "watch resume matches uninterrupted",
      `Quick,
      test_watch_resume_matches_uninterrupted );
    ("watch torn tail tolerated", `Quick, test_watch_torn_tail_tolerated);
    ( "lifecycle torn tail tolerated",
      `Quick,
      test_lifecycle_torn_tail_tolerated );
    ("expo watch families validate", `Quick, test_expo_watch_families_validate);
    QCheck_alcotest.to_alcotest prop_watch_digest_deterministic;
    ("expo metric names", `Quick, test_expo_metric_name);
    ("expo render validates", `Quick, test_expo_render_validates);
    ("chrome flow events", `Quick, test_chrome_flow_events);
    ("engine series + histograms", `Quick, test_engine_series_and_histograms);
    ("counters snapshot/diff", `Quick, test_counters_snapshot_diff);
    ("counters alist/json", `Quick, test_counters_alist_json);
    ("counters pipeline work", `Quick, test_counters_count_pipeline_work);
    ("trace covers pipeline", `Quick, test_trace_covers_pipeline);
    ("jsonl export parses", `Quick, test_jsonl_export_parses);
    ("chrome export parses", `Quick, test_chrome_export_parses);
    ("null sink identical results", `Quick, test_null_sink_identical_results);
  ]
