(* nu_obs: JSON codec, counters, trace spans, exporters, and the
   no-perturbation guarantee of instrumentation. *)

let flow ?(id = 0) ?(demand = 50.0) ?(duration = 10.0) ?(arrival = 0.0) src dst
    =
  Flow_record.v ~id ~src ~dst ~size_mbit:(demand *. duration)
    ~duration_s:duration ~arrival_s:arrival

(* Small deterministic workload on a k=4 Fat-Tree (mirrors test_sched). *)
let workload ?(n = 5) ?(m = 4) () =
  let next = ref 0 in
  List.init n (fun i ->
      let flows =
        List.init m (fun j ->
            let id = !next in
            incr next;
            let src = (i + j) mod 16 in
            let dst = (src + 3 + j) mod 16 in
            let dst = if dst = src then (dst + 1) mod 16 else dst in
            flow ~id ~demand:(10.0 +. float_of_int (j * 5)) src dst)
      in
      Event.of_spec { Event_gen.event_id = i; arrival_s = 0.0; flows })

let loaded_net () =
  let net = Net_state.create (Fat_tree.to_topology (Fat_tree.create ~k:4 ())) in
  let next = ref 1000 in
  for src = 0 to 7 do
    let dst = 15 - src in
    let r = flow ~id:!next ~demand:300.0 src dst in
    incr next;
    match Routing.select net r with
    | Some p -> ( match Net_state.place net r p with Ok () -> () | Error _ -> ())
    | None -> ()
  done;
  net

let with_memory_sink f =
  let sink, events = Obs.Trace.memory () in
  Obs.Trace.install sink;
  Fun.protect ~finally:Obs.Trace.uninstall (fun () -> f events)

(* ------------------------------------------------------------------ *)
(* Json                                                                *)

let test_json_roundtrip () =
  let v =
    Obs.Json.Obj
      [
        ("null", Obs.Json.Null);
        ("yes", Obs.Json.Bool true);
        ("n", Obs.Json.Int (-42));
        ("pi", Obs.Json.Float 3.140625);
        ("text", Obs.Json.String "line\nbreak \"quoted\" back\\slash");
        ( "nested",
          Obs.Json.List
            [ Obs.Json.Int 1; Obs.Json.Obj [ ("k", Obs.Json.String "v") ] ] );
        ("empty_list", Obs.Json.List []);
        ("empty_obj", Obs.Json.Obj []);
      ]
  in
  match Obs.Json.of_string (Obs.Json.to_string v) with
  | Ok v' -> Alcotest.(check bool) "round-trips" true (v = v')
  | Error msg -> Alcotest.failf "parse error: %s" msg

let test_json_float_precision () =
  let f = 0.1 +. 0.2 in
  match Obs.Json.of_string (Obs.Json.to_string (Obs.Json.Float f)) with
  | Ok (Obs.Json.Float f') ->
      Alcotest.(check (float 0.0)) "exact round-trip" f f'
  | Ok _ -> Alcotest.fail "expected a float"
  | Error msg -> Alcotest.failf "parse error: %s" msg

let test_json_nonfinite_is_null () =
  Alcotest.(check string) "nan" "null" (Obs.Json.to_string (Obs.Json.Float Float.nan));
  Alcotest.(check string)
    "inf" "null"
    (Obs.Json.to_string (Obs.Json.Float Float.infinity))

let test_json_parse_errors () =
  let bad = [ "{"; "[1,"; "\"unterminated"; "tru"; "{\"a\" 1}"; "1 2" ] in
  List.iter
    (fun s ->
      match Obs.Json.of_string s with
      | Ok _ -> Alcotest.failf "accepted invalid JSON: %s" s
      | Error _ -> ())
    bad;
  (* \u escape, whitespace, exponents *)
  match Obs.Json.of_string "  { \"a\" : [ 1e3 , \"\\u0041\" ] }  " with
  | Ok v ->
      Alcotest.(check bool)
        "parsed" true
        (Obs.Json.member "a" v
        = Some (Obs.Json.List [ Obs.Json.Float 1000.0; Obs.Json.String "A" ]))
  | Error msg -> Alcotest.failf "parse error: %s" msg

(* ------------------------------------------------------------------ *)
(* Trace                                                               *)

let test_span_lifo_nesting () =
  with_memory_sink (fun events ->
      Obs.Trace.with_span "outer" (fun () ->
          Obs.Trace.with_span "inner" (fun () -> ());
          Obs.Trace.instant "tick");
      let evs = events () in
      let shape =
        List.map
          (fun (e : Obs.Trace.event) ->
            let ph =
              match e.Obs.Trace.phase with
              | Obs.Trace.Begin -> "B"
              | Obs.Trace.End -> "E"
              | Obs.Trace.Instant -> "i"
            in
            (ph, e.Obs.Trace.name, e.Obs.Trace.depth))
          evs
      in
      Alcotest.(check (list (triple string string int)))
        "event shape"
        [
          ("B", "outer", 0);
          ("B", "inner", 1);
          ("E", "inner", 1);
          ("i", "tick", 1);
          ("E", "outer", 0);
        ]
        shape;
      let ts = List.map (fun (e : Obs.Trace.event) -> e.Obs.Trace.ts_ns) evs in
      let rec nondecreasing = function
        | a :: (b :: _ as rest) -> Int64.compare a b <= 0 && nondecreasing rest
        | _ -> true
      in
      Alcotest.(check bool) "timestamps nondecreasing" true (nondecreasing ts))

let test_span_non_lifo_raises () =
  with_memory_sink (fun _ ->
      let a = Obs.Trace.span "a" in
      let b = Obs.Trace.span "b" in
      Alcotest.check_raises "close outer first"
        (Invalid_argument "Trace.finish: non-LIFO close of span a") (fun () ->
          Obs.Trace.finish a);
      Obs.Trace.finish b;
      Obs.Trace.finish a)

let test_span_exception_safety () =
  with_memory_sink (fun events ->
      (try
         Obs.Trace.with_span "boom" (fun () -> failwith "inner failure")
       with Failure _ -> ());
      let evs = events () in
      Alcotest.(check int) "begin and end emitted" 2 (List.length evs);
      match List.rev evs with
      | (last : Obs.Trace.event) :: _ ->
          Alcotest.(check bool)
            "span closed" true
            (last.Obs.Trace.phase = Obs.Trace.End
            && last.Obs.Trace.name = "boom")
      | [] -> Alcotest.fail "no events")

let test_disabled_tracing_is_noop () =
  Alcotest.(check bool) "off by default" false (Obs.Trace.enabled ());
  let sp = Obs.Trace.span ~attrs:[ ("k", Obs.Trace.Int 1) ] "untracked" in
  Obs.Trace.finish sp;
  Obs.Trace.instant "nothing";
  Alcotest.(check int)
    "with_span is just f ()" 7
    (Obs.Trace.with_span "untracked" (fun () -> 7))

(* ------------------------------------------------------------------ *)
(* Counters                                                            *)

let test_counters_snapshot_diff () =
  let before = Obs.Counters.snapshot () in
  Obs.Counters.incr Obs.Counters.State_copies;
  Obs.Counters.incr Obs.Counters.State_copies;
  Obs.Counters.add Obs.Counters.Planner_probes 5;
  let d = Obs.Counters.diff ~before ~after:(Obs.Counters.snapshot ()) in
  Alcotest.(check int) "incr twice" 2 (Obs.Counters.value d Obs.Counters.State_copies);
  Alcotest.(check int) "add 5" 5 (Obs.Counters.value d Obs.Counters.Planner_probes);
  Alcotest.(check int) "untouched" 0 (Obs.Counters.value d Obs.Counters.Engine_rounds);
  Alcotest.(check bool) "not zero" false (Obs.Counters.is_zero d);
  let d0 = Obs.Counters.diff ~before ~after:before in
  Alcotest.(check bool) "self-diff is zero" true (Obs.Counters.is_zero d0)

let test_counters_alist_json () =
  let snap = Obs.Counters.snapshot () in
  let alist = Obs.Counters.to_alist snap in
  Alcotest.(check int)
    "all keys present" (List.length Obs.Counters.all) (List.length alist);
  List.iter
    (fun k ->
      match List.assoc_opt (Obs.Counters.name k) alist with
      | Some v -> Alcotest.(check int) (Obs.Counters.name k) (Obs.Counters.value snap k) v
      | None -> Alcotest.failf "missing key %s" (Obs.Counters.name k))
    Obs.Counters.all;
  (* JSON form parses back and carries every key. *)
  match Obs.Json.of_string (Obs.Json.to_string (Obs.Counters.to_json snap)) with
  | Ok (Obs.Json.Obj kvs) ->
      Alcotest.(check int) "json keys" (List.length alist) (List.length kvs)
  | Ok _ -> Alcotest.fail "expected an object"
  | Error msg -> Alcotest.failf "parse error: %s" msg

let test_counters_count_pipeline_work () =
  let net = loaded_net () in
  let events = workload () in
  let before = Obs.Counters.snapshot () in
  ignore (Engine.run ~seed:11 ~net ~events (Policy.Lmtf { alpha = 2 }));
  let d = Obs.Counters.diff ~before ~after:(Obs.Counters.snapshot ()) in
  Alcotest.(check bool)
    "rounds counted" true
    (Obs.Counters.value d Obs.Counters.Engine_rounds > 0);
  Alcotest.(check bool)
    "plans counted" true
    (Obs.Counters.value d Obs.Counters.Planner_plans > 0);
  Alcotest.(check bool)
    "probes counted" true
    (Obs.Counters.value d Obs.Counters.Planner_probes > 0);
  Alcotest.(check bool)
    "estimates counted" true
    (Obs.Counters.value d Obs.Counters.Cost_estimates > 0);
  Alcotest.(check int)
    "lmtf executes one event per round"
    (Obs.Counters.value d Obs.Counters.Engine_rounds)
    (Obs.Counters.value d Obs.Counters.Events_executed)

(* ------------------------------------------------------------------ *)
(* Exporters on a real traced run                                      *)

let traced_run () =
  with_memory_sink (fun events ->
      let net = loaded_net () in
      let events_l = workload () in
      ignore (Engine.run ~seed:11 ~net ~events:events_l (Policy.Plmtf { alpha = 2 }));
      events ())

let test_trace_covers_pipeline () =
  let evs = traced_run () in
  let names =
    List.filter_map
      (fun (e : Obs.Trace.event) ->
        if e.Obs.Trace.phase = Obs.Trace.Begin then Some e.Obs.Trace.name
        else None)
      evs
  in
  List.iter
    (fun expected ->
      Alcotest.(check bool)
        (Printf.sprintf "span %s present" expected)
        true (List.mem expected names))
    [ "run"; "round"; "plan"; "estimate"; "execute" ];
  (* Begin/End balance: every span closes. *)
  let balance =
    List.fold_left
      (fun acc (e : Obs.Trace.event) ->
        match e.Obs.Trace.phase with
        | Obs.Trace.Begin -> acc + 1
        | Obs.Trace.End -> acc - 1
        | Obs.Trace.Instant -> acc)
      0 evs
  in
  Alcotest.(check int) "begin/end balanced" 0 balance

let test_jsonl_export_parses () =
  let evs = traced_run () in
  let jsonl = Obs.Export.jsonl_of_events evs in
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' jsonl)
  in
  Alcotest.(check int) "one line per event" (List.length evs) (List.length lines);
  List.iter
    (fun line ->
      match Obs.Json.of_string line with
      | Ok v ->
          if Obs.Json.member "ph" v = None then
            Alcotest.failf "line missing ph: %s" line
      | Error msg -> Alcotest.failf "unparseable line (%s): %s" msg line)
    lines

let test_chrome_export_parses () =
  let evs = traced_run () in
  let json = Obs.Export.chrome_of_events evs in
  match Obs.Json.of_string (Obs.Json.to_string json) with
  | Error msg -> Alcotest.failf "unparseable chrome trace: %s" msg
  | Ok v -> (
      match Obs.Json.member "traceEvents" v with
      | Some (Obs.Json.List items) ->
          Alcotest.(check int)
            "one trace event per span event" (List.length evs)
            (List.length items);
          List.iter
            (fun item ->
              match
                (Obs.Json.member "ph" item, Obs.Json.member "ts" item)
              with
              | Some (Obs.Json.String _), Some _ -> ()
              | _ -> Alcotest.fail "trace event missing ph/ts")
            items
      | _ -> Alcotest.fail "no traceEvents array")

(* ------------------------------------------------------------------ *)
(* Instrumentation must not perturb results                            *)

let test_null_sink_identical_results () =
  let run_once ~traced =
    let net = loaded_net () in
    let events = workload () in
    let go () =
      Metrics.of_run
        (Engine.run ~seed:11 ~net ~events (Policy.Plmtf { alpha = 2 }))
    in
    if traced then
      with_memory_sink (fun _ -> go ())
    else go ()
  in
  let plain = run_once ~traced:false in
  let traced = run_once ~traced:true in
  Alcotest.(check bool)
    "summaries identical with and without tracing" true (plain = traced)

let suite =
  [
    ("json round-trip", `Quick, test_json_roundtrip);
    ("json float precision", `Quick, test_json_float_precision);
    ("json non-finite", `Quick, test_json_nonfinite_is_null);
    ("json parse errors", `Quick, test_json_parse_errors);
    ("span LIFO nesting", `Quick, test_span_lifo_nesting);
    ("span non-LIFO raises", `Quick, test_span_non_lifo_raises);
    ("span exception safety", `Quick, test_span_exception_safety);
    ("disabled tracing no-op", `Quick, test_disabled_tracing_is_noop);
    ("counters snapshot/diff", `Quick, test_counters_snapshot_diff);
    ("counters alist/json", `Quick, test_counters_alist_json);
    ("counters pipeline work", `Quick, test_counters_count_pipeline_work);
    ("trace covers pipeline", `Quick, test_trace_covers_pipeline);
    ("jsonl export parses", `Quick, test_jsonl_export_parses);
    ("chrome export parses", `Quick, test_chrome_export_parses);
    ("null sink identical results", `Quick, test_null_sink_identical_results);
  ]
