(* nu_dataplane: rules, switch tables, packet walking, two-phase
   consistent updates; and Nu_update.Ordering (Dionysus-style rounds). *)

let topo4 () = Fat_tree.to_topology (Fat_tree.create ~k:4 ())

let flow ?(id = 0) ?(demand = 100.0) ?(duration = 10.0) src dst =
  Flow_record.v ~id ~src ~dst ~size_mbit:(demand *. duration)
    ~duration_s:duration ~arrival_s:0.0

let place_exn net record =
  match Routing.select net record with
  | None -> Alcotest.fail "no feasible path"
  | Some path -> (
      match Net_state.place net record path with
      | Ok () -> path
      | Error _ -> Alcotest.fail "placement failed")

let loaded_net () =
  let net = Net_state.create (topo4 ()) in
  let next = ref 100 in
  for src = 0 to 7 do
    let dst = 15 - src in
    let r = flow ~id:!next ~demand:250.0 src dst in
    incr next;
    ignore (place_exn net r)
  done;
  net

(* ------------------------------------------------------------------ *)
(* Rule / Switch_table                                                 *)

let test_rule_validation () =
  let r = Rule.v ~flow_id:1 ~version:0 ~out_edge:5 in
  Alcotest.(check bool) "matches" true (Rule.matches r ~flow_id:1 ~version:0);
  Alcotest.(check bool) "wrong version" false (Rule.matches r ~flow_id:1 ~version:1);
  Alcotest.check_raises "negative" (Invalid_argument "Rule.v: flow_id")
    (fun () -> ignore (Rule.v ~flow_id:(-1) ~version:0 ~out_edge:0))

let test_switch_table_basics () =
  let t = Switch_table.create () in
  Switch_table.install t (Rule.v ~flow_id:1 ~version:0 ~out_edge:3);
  Switch_table.install t (Rule.v ~flow_id:1 ~version:1 ~out_edge:4);
  Switch_table.install t (Rule.v ~flow_id:2 ~version:0 ~out_edge:5);
  Alcotest.(check int) "count" 3 (Switch_table.rule_count t);
  Alcotest.(check (list int)) "versions" [ 0; 1 ] (Switch_table.versions_of t ~flow_id:1);
  (match Switch_table.lookup t ~flow_id:1 ~version:1 with
  | Some r -> Alcotest.(check int) "out edge" 4 r.Rule.out_edge
  | None -> Alcotest.fail "installed");
  Alcotest.(check bool) "uninstall" true (Switch_table.uninstall t ~flow_id:1 ~version:0);
  Alcotest.(check bool) "uninstall twice" false (Switch_table.uninstall t ~flow_id:1 ~version:0);
  Alcotest.(check int) "count after" 2 (Switch_table.rule_count t)

let test_switch_table_idempotent_install () =
  let t = Switch_table.create () in
  let r = Rule.v ~flow_id:1 ~version:0 ~out_edge:3 in
  Switch_table.install t r;
  Switch_table.install t r;
  Alcotest.(check int) "single rule" 1 (Switch_table.rule_count t)

let test_switch_table_stamps () =
  let t = Switch_table.create () in
  Alcotest.(check bool) "no stamp" true (Switch_table.stamp t ~flow_id:1 = None);
  Switch_table.set_stamp t ~flow_id:1 ~version:3;
  Alcotest.(check (option int)) "stamped" (Some 3) (Switch_table.stamp t ~flow_id:1);
  Switch_table.clear_stamp t ~flow_id:1;
  Alcotest.(check bool) "cleared" true (Switch_table.stamp t ~flow_id:1 = None)

(* ------------------------------------------------------------------ *)
(* Fabric                                                              *)

let test_fabric_of_net_delivers () =
  let net = loaded_net () in
  let fabric = Fabric.of_net net in
  match Fabric.verify_all fabric net with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_fabric_rule_budget () =
  let net = loaded_net () in
  let fabric = Fabric.of_net net in
  (* One rule per hop per flow. *)
  let expected = ref 0 in
  Net_state.iter_flows net (fun p -> expected := !expected + Path.hops p.Net_state.path);
  Alcotest.(check int) "rules = total hops" !expected (Fabric.total_rules fabric)

let test_fabric_black_hole () =
  let net = loaded_net () in
  let fabric = Fabric.of_net net in
  (* A flow with no ingress stamp is black-holed at injection. *)
  match Fabric.forward fabric ~flow_id:9999 ~src:0 with
  | Fabric.Black_hole { at } -> Alcotest.(check int) "at injection" 0 at
  | _ -> Alcotest.fail "expected black hole"

let test_fabric_broken_rule_detected () =
  let net = loaded_net () in
  let fabric = Fabric.of_net net in
  (* Remove a mid-path rule: the packet must strand before its dst. *)
  let placed = Option.get (Net_state.flow net 100) in
  let path = placed.Net_state.path in
  let mid_edge = List.nth (Path.edges path) 2 in
  ignore
    (Switch_table.uninstall
       (Fabric.table fabric mid_edge.Graph.src)
       ~flow_id:100 ~version:0);
  match Fabric.verify_flow fabric net ~flow_id:100 with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "must detect the stranded packet"

let test_fabric_loop_detected () =
  let g = Graph.create ~initial_nodes:2 () in
  let e01 = Graph.add_edge g ~src:0 ~dst:1 ~capacity:10.0 in
  let e10 = Graph.add_edge g ~src:1 ~dst:0 ~capacity:10.0 in
  let fabric = Fabric.create g in
  Switch_table.install (Fabric.table fabric 0) (Rule.v ~flow_id:1 ~version:0 ~out_edge:e01);
  Switch_table.install (Fabric.table fabric 1) (Rule.v ~flow_id:1 ~version:0 ~out_edge:e10);
  Fabric.set_ingress fabric ~flow_id:1 ~ingress:0 ~version:0;
  match Fabric.forward fabric ~flow_id:1 ~src:0 with
  | Fabric.Looped _ -> ()
  | _ -> Alcotest.fail "expected loop detection"

(* ------------------------------------------------------------------ *)
(* Two-phase updates                                                   *)

(* Apply an update event, then run the two-phase protocol over the
   implied transitions, verifying per-flow consistency after EVERY
   intermediate step. Brand-new flows only become live at their flip, so
   the verified set grows as flips land. *)
let run_two_phase_verified net =
  let fabric = Fabric.of_net net in
  let live = Hashtbl.create 64 in
  Net_state.iter_flows net (fun p ->
      Hashtbl.replace live p.Net_state.record.Flow_record.id ());
  let verify_live stage_name =
    Hashtbl.iter
      (fun flow_id () ->
        match Fabric.verify_flow fabric net ~flow_id with
        | Ok () -> ()
        | Error e -> Alcotest.fail (stage_name ^ ": " ^ e))
      live
  in
  let ev =
    Event.of_spec
      {
        Event_gen.event_id = 0;
        arrival_s = 0.0;
        flows =
          [
            flow ~id:0 ~demand:300.0 0 15;
            flow ~id:1 ~demand:200.0 1 14;
            flow ~id:2 ~demand:10.0 2 13;
          ];
      }
  in
  let plan = Planner.plan net ev in
  Alcotest.(check int) "plan satisfiable" 0 plan.Planner.failed_count;
  let transitions = Two_phase.transitions_of_plan fabric plan in
  (* Stage: old paths must still be in force for every live flow. *)
  let _installed = Two_phase.stage fabric transitions in
  verify_live "after stage";
  (* Flip one by one; consistency must hold between every flip, and the
     flipped flow becomes live. *)
  List.iter
    (fun tr ->
      Two_phase.flip fabric tr;
      Hashtbl.replace live tr.Two_phase.flow_id ();
      verify_live "mid-flip")
    transitions;
  List.iter (fun tr -> ignore (Two_phase.collect fabric tr)) transitions;
  verify_live "after gc";
  (* Every placed flow must be live by now — full check. *)
  (match Fabric.verify_all fabric net with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("final: " ^ e));
  (fabric, plan, transitions)

let test_two_phase_consistency () =
  let net = loaded_net () in
  ignore (run_two_phase_verified net)

let test_two_phase_rule_counts () =
  let net = loaded_net () in
  let fabric = Fabric.of_net net in
  let base_rules = Fabric.total_rules fabric in
  let ev = Event.of_spec { Event_gen.event_id = 0; arrival_s = 0.0;
                           flows = [ flow ~id:0 ~demand:300.0 0 15 ] } in
  let plan = Planner.plan net ev in
  let transitions = Two_phase.transitions_of_plan fabric plan in
  let stats = Two_phase.execute fabric transitions in
  Alcotest.(check int) "stats count transitions"
    (List.length transitions) stats.Two_phase.transitions;
  Alcotest.(check bool) "peak >= installs of new flow" true
    (stats.Two_phase.peak_extra_rules >= Path.hops
       (match plan.Planner.items with
        | [ { Planner.outcome = Planner.Installed { path; _ }; _ } ] -> path
        | _ -> Alcotest.fail "single install"));
  (* Final rule budget: base + new paths - old paths. *)
  let expected = ref 0 in
  Net_state.iter_flows net (fun p -> expected := !expected + Path.hops p.Net_state.path);
  Alcotest.(check int) "final rules match placements" !expected
    (Fabric.total_rules fabric);
  ignore base_rules

let test_two_phase_version_bump () =
  let net = loaded_net () in
  let fabric = Fabric.of_net net in
  (* Reroute an existing flow: its version must go 0 -> 1. *)
  let placed = Option.get (Net_state.flow net 100) in
  let other =
    List.find
      (fun p -> not (Path.equal p placed.Net_state.path))
      (Net_state.candidate_paths net placed.Net_state.record)
  in
  (match Net_state.reroute net 100 other with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "reroute feasible");
  let tr =
    Two_phase.
      {
        flow_id = 100;
        old_path = Some placed.Net_state.path;
        new_path = other;
        old_version = 0;
        new_version = 1;
      }
  in
  ignore (Two_phase.stage fabric [ tr ]);
  Two_phase.flip fabric tr;
  ignore (Two_phase.collect fabric tr);
  (match Switch_table.stamp (Fabric.table fabric (Path.src other)) ~flow_id:100 with
  | Some 1 -> ()
  | _ -> Alcotest.fail "stamp must be at version 1");
  match Fabric.verify_flow fabric net ~flow_id:100 with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let prop_two_phase_random_flip_order =
  QCheck.Test.make ~name:"two-phase consistency under any flip order" ~count:15
    QCheck.small_int
    (fun seed ->
      let net = loaded_net () in
      let fabric = Fabric.of_net net in
      let rng = Prng.create seed in
      let specs = Event_gen.generate ~first_flow_id:10_000
          ~shape:(Event_gen.Range (3, 8)) rng ~host_count:16 ~n_events:1 in
      let ev = Event.of_spec (List.hd specs) in
      let plan = Planner.plan net ev in
      let transitions = Array.of_list (Two_phase.transitions_of_plan fabric plan) in
      ignore (Two_phase.stage fabric (Array.to_list transitions));
      Prng.shuffle rng transitions;
      let live = Hashtbl.create 64 in
      Net_state.iter_flows net (fun p ->
          Hashtbl.replace live p.Net_state.record.Flow_record.id ());
      (* New flows go live only at their flip. *)
      Array.iter
        (fun tr ->
          match tr.Two_phase.old_path with
          | None -> Hashtbl.remove live tr.Two_phase.flow_id
          | Some _ -> ())
        transitions;
      Array.for_all
        (fun tr ->
          Two_phase.flip fabric tr;
          Hashtbl.replace live tr.Two_phase.flow_id ();
          Hashtbl.fold
            (fun flow_id () ok ->
              ok && Fabric.verify_flow fabric net ~flow_id = Ok ())
            live true)
        transitions)

(* ------------------------------------------------------------------ *)
(* Two_phase under install faults                                      *)

(* A reroute transition for flow 100 built without touching the net, so
   the net still describes the OLD configuration: if the two-phase
   update is rolled back, fabric and net must agree again. *)
let reroute_transition net =
  let placed = Option.get (Net_state.flow net 100) in
  let other =
    List.find
      (fun p -> not (Path.equal p placed.Net_state.path))
      (Net_state.candidate_paths net placed.Net_state.record)
  in
  Two_phase.
    {
      flow_id = 100;
      old_path = Some placed.Net_state.path;
      new_path = other;
      old_version = 0;
      new_version = 1;
    }

let no_fault ~switch:_ ~flow_id:_ = None

let test_two_phase_faults_clean_oracle () =
  let net = loaded_net () in
  let fabric_a = Fabric.of_net net in
  let fabric_b = Fabric.of_net net in
  let tr = reroute_transition net in
  let stats = Two_phase.execute fabric_a [ tr ] in
  let report = Two_phase.execute_with_faults fabric_b ~fault:no_fault [ tr ] in
  Alcotest.(check bool) "same stats as execute" true
    (stats = report.Two_phase.stats);
  Alcotest.(check (list int)) "nothing dropped" []
    report.Two_phase.dropped_flow_ids;
  Alcotest.(check int) "same rule total"
    (Fabric.total_rules fabric_a) (Fabric.total_rules fabric_b)

let test_two_phase_dropped_install_rolls_back () =
  let net = loaded_net () in
  let fabric = Fabric.of_net net in
  let rules_before = Fabric.total_rules fabric in
  let tr = reroute_transition net in
  (* Drop every install of flow 100: the transition must be unstaged and
     never flipped, leaving the tables in the old configuration. *)
  let fault ~switch:_ ~flow_id =
    if flow_id = 100 then Some `Drop else None
  in
  let report = Two_phase.execute_with_faults fabric ~fault [ tr ] in
  Alcotest.(check (list int)) "transition aborted" [ 100 ]
    report.Two_phase.dropped_flow_ids;
  Alcotest.(check int) "no flips" 0 report.Two_phase.stats.Two_phase.flips;
  Alcotest.(check int) "staged rules unstaged" rules_before
    (Fabric.total_rules fabric);
  (match Switch_table.stamp
           (Fabric.table fabric (Path.src tr.Two_phase.new_path))
           ~flow_id:100 with
  | Some 0 -> ()
  | _ -> Alcotest.fail "ingress stamp must still be at the old version");
  (* The dataplane still forwards flow 100 along its old path. *)
  match Fabric.verify_all fabric net with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("old configuration must survive: " ^ e)

let test_two_phase_delayed_install_still_flips () =
  let net = loaded_net () in
  let fabric = Fabric.of_net net in
  let tr = reroute_transition net in
  let fault ~switch:_ ~flow_id =
    if flow_id = 100 then Some (`Delay 0.002) else None
  in
  let report = Two_phase.execute_with_faults fabric ~fault [ tr ] in
  Alcotest.(check (list int)) "late acks do not abort" []
    report.Two_phase.dropped_flow_ids;
  Alcotest.(check int) "flip issued" 1 report.Two_phase.stats.Two_phase.flips;
  Alcotest.(check int) "every hop acked late"
    (Path.hops tr.Two_phase.new_path) report.Two_phase.delayed_hops;
  Alcotest.(check (float 1e-9)) "latency accumulates"
    (0.002 *. float_of_int (Path.hops tr.Two_phase.new_path))
    report.Two_phase.extra_latency_s;
  (* The flow moved: re-point the net at the new path to verify. *)
  (match Net_state.reroute net 100 tr.Two_phase.new_path with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "reroute feasible");
  match Fabric.verify_all fabric net with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("new configuration must be live: " ^ e)

let test_two_phase_mixed_batch_partial_abort () =
  let net = loaded_net () in
  let fabric = Fabric.of_net net in
  let ev =
    Event.of_spec
      {
        Event_gen.event_id = 0;
        arrival_s = 0.0;
        flows = [ flow ~id:0 ~demand:10.0 0 15; flow ~id:1 ~demand:10.0 2 13 ];
      }
  in
  let plan = Planner.plan net ev in
  Alcotest.(check int) "plan satisfiable" 0 plan.Planner.failed_count;
  let transitions = Two_phase.transitions_of_plan fabric plan in
  (* Fail only flow 0's installs; flow 1 (and any migrations) proceed. *)
  let fault ~switch:_ ~flow_id = if flow_id = 0 then Some `Drop else None in
  let report = Two_phase.execute_with_faults fabric ~fault transitions in
  Alcotest.(check (list int)) "only flow 0 aborted" [ 0 ]
    report.Two_phase.dropped_flow_ids;
  Alcotest.(check int) "the rest flipped"
    (List.length transitions - 1)
    report.Two_phase.stats.Two_phase.flips;
  (* Flow 0 never went live; drop it from the net before verifying. *)
  (match Net_state.remove net 0 with Ok _ | Error `Not_found -> ());
  match Fabric.verify_all fabric net with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("surviving flows must verify: " ^ e)

(* ------------------------------------------------------------------ *)
(* Ordering                                                            *)

let test_ordering_empty () =
  let net = loaded_net () in
  match Ordering.schedule net [] with
  | Ok s ->
      Alcotest.(check int) "no rounds" 0 s.Ordering.depth;
      Alcotest.(check int) "width" 0 s.Ordering.width
  | Error _ -> Alcotest.fail "empty schedules trivially"

let test_ordering_plan_moves () =
  let net = loaded_net () in
  let before = Net_state.copy net in
  let ev =
    Event.of_spec
      {
        Event_gen.event_id = 0;
        arrival_s = 0.0;
        flows = [ flow ~id:0 ~demand:300.0 0 15; flow ~id:1 ~demand:300.0 1 14 ];
      }
  in
  let plan = Planner.plan net ev in
  let moves =
    List.concat_map
      (fun (item : Planner.item_plan) ->
        match item.Planner.outcome with
        | Planner.Installed { moves; _ } | Planner.Rerouted { moves; _ } -> moves
        | Planner.Failed _ -> [])
      plan.Planner.items
  in
  match Ordering.schedule before (Ordering.of_moves moves) with
  | Ok s ->
      Alcotest.(check int) "every move scheduled" (List.length moves)
        (List.fold_left (fun a r -> a + List.length r) 0 s.Ordering.rounds);
      Alcotest.(check bool) "depth sane" true (s.Ordering.depth <= max 1 (List.length moves))
  | Error (Ordering.Deadlock _) ->
      Alcotest.fail "planner moves replayed from pre-state cannot deadlock"
  | Error (Ordering.Unknown_flow id) -> Alcotest.failf "unknown flow %d" id

let test_ordering_unknown_flow () =
  let net = loaded_net () in
  let placed = Option.get (Net_state.flow net 100) in
  let spec = Ordering.{ flow_id = 424242; to_path = placed.Net_state.path } in
  match Ordering.schedule net [ spec ] with
  | Error (Ordering.Unknown_flow 424242) -> ()
  | _ -> Alcotest.fail "expected Unknown_flow"

let test_ordering_dependency_rounds () =
  (* A two-round dependency on a 3-spine leaf-spine: flow B (700 Mbps,
     on spine 1) wants spine 0, but flow C (400 Mbps) sits there; C must
     first move to the empty spine 2. *)
  let ls = Leaf_spine.create ~leaves:2 ~spines:3 ~hosts_per_leaf:2
      ~leaf_spine_capacity:1000.0 ~host_capacity:1000.0 () in
  let topo = Leaf_spine.to_topology ls in
  let net = Net_state.create topo in
  let path_via net r spine =
    List.find
      (fun p -> Path.mentions_node p spine)
      (Net_state.candidate_paths net r)
  in
  (* Hosts 0,1 on leaf 0; hosts 2,3 on leaf 1; spines are nodes 0-2. *)
  let c = flow ~id:1 ~demand:400.0 0 2 in
  let b = flow ~id:2 ~demand:700.0 1 3 in
  (match Net_state.place net c (path_via net c 0) with Ok () -> () | Error _ -> assert false);
  (match Net_state.place net b (path_via net b 1) with Ok () -> () | Error _ -> assert false);
  let moves =
    Ordering.
      [
        { flow_id = 2; to_path = path_via net b 0 };  (* blocked by C *)
        { flow_id = 1; to_path = path_via net c 2 };  (* free *)
      ]
  in
  match Ordering.schedule net moves with
  | Ok s ->
      Alcotest.(check int) "two rounds" 2 s.Ordering.depth;
      (match s.Ordering.rounds with
      | [ first; second ] ->
          Alcotest.(check (list int)) "C moves first" [ 1 ]
            (List.map (fun m -> m.Ordering.flow_id) first);
          Alcotest.(check (list int)) "B follows" [ 2 ]
            (List.map (fun m -> m.Ordering.flow_id) second)
      | _ -> Alcotest.fail "round shape")
  | Error _ -> Alcotest.fail "schedulable in two rounds"

let test_ordering_deadlock () =
  (* Both flows want to swap onto each other's spine, but both spines are
     too full to host two flows at once: a genuine deadlock. *)
  let ls = Leaf_spine.create ~leaves:2 ~spines:2 ~hosts_per_leaf:2
      ~leaf_spine_capacity:1000.0 ~host_capacity:1000.0 () in
  let topo = Leaf_spine.to_topology ls in
  let net = Net_state.create topo in
  let path_via net r spine =
    List.find (fun p -> Path.mentions_node p spine) (Net_state.candidate_paths net r)
  in
  let a = flow ~id:1 ~demand:700.0 0 2 in
  let b = flow ~id:2 ~demand:700.0 1 3 in
  (match Net_state.place net a (path_via net a 0) with Ok () -> () | Error _ -> assert false);
  (match Net_state.place net b (path_via net b 1) with Ok () -> () | Error _ -> assert false);
  let moves =
    Ordering.
      [
        { flow_id = 1; to_path = path_via net a 1 };
        { flow_id = 2; to_path = path_via net b 0 };
      ]
  in
  match Ordering.schedule net moves with
  | Error (Ordering.Deadlock blocked) ->
      Alcotest.(check int) "both stuck" 2 (List.length blocked)
  | Ok _ -> Alcotest.fail "700+700 cannot share a 1000 link"
  | Error (Ordering.Unknown_flow _) -> Alcotest.fail "flows exist"

let test_ordering_verify () =
  let net = loaded_net () in
  let before = Net_state.copy net in
  let ev =
    Event.of_spec
      {
        Event_gen.event_id = 0;
        arrival_s = 0.0;
        flows = [ flow ~id:0 ~demand:300.0 0 15; flow ~id:1 ~demand:300.0 1 14 ];
      }
  in
  let plan = Planner.plan net ev in
  let moves =
    List.concat_map
      (fun (item : Planner.item_plan) ->
        match item.Planner.outcome with
        | Planner.Installed { moves; _ } | Planner.Rerouted { moves; _ } -> moves
        | Planner.Failed _ -> [])
      plan.Planner.items
  in
  match Ordering.schedule before (Ordering.of_moves moves) with
  | Ok s -> (
      match Ordering.verify before s with
      | Ok () -> ()
      | Error e -> Alcotest.fail ("schedule must verify: " ^ e))
  | Error _ -> Alcotest.fail "schedulable"

let test_ordering_verify_rejects_bogus () =
  let net = loaded_net () in
  let placed = Option.get (Net_state.flow net 100) in
  let bogus =
    {
      Ordering.rounds = [ [ Ordering.{ flow_id = 31337; to_path = placed.Net_state.path } ] ];
      depth = 1;
      width = 1;
    }
  in
  match Ordering.verify net bogus with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "unknown flow must not verify"

let test_ordering_leaves_state_unchanged () =
  let net = loaded_net () in
  let placed = Option.get (Net_state.flow net 100) in
  let other =
    List.find
      (fun p -> not (Path.equal p placed.Net_state.path))
      (Net_state.candidate_paths net placed.Net_state.record)
  in
  let before = Net_state.flow_count net in
  ignore (Ordering.schedule net [ Ordering.{ flow_id = 100; to_path = other } ]);
  Alcotest.(check int) "flow count unchanged" before (Net_state.flow_count net);
  let placed' = Option.get (Net_state.flow net 100) in
  Alcotest.(check bool) "path unchanged" true
    (Path.equal placed.Net_state.path placed'.Net_state.path)

let suite =
  [
    ("rule validation", `Quick, test_rule_validation);
    ("switch table basics", `Quick, test_switch_table_basics);
    ("switch table idempotent", `Quick, test_switch_table_idempotent_install);
    ("switch table stamps", `Quick, test_switch_table_stamps);
    ("fabric delivers", `Quick, test_fabric_of_net_delivers);
    ("fabric rule budget", `Quick, test_fabric_rule_budget);
    ("fabric black hole", `Quick, test_fabric_black_hole);
    ("fabric broken rule", `Quick, test_fabric_broken_rule_detected);
    ("fabric loop", `Quick, test_fabric_loop_detected);
    ("two-phase consistency", `Quick, test_two_phase_consistency);
    ("two-phase rule counts", `Quick, test_two_phase_rule_counts);
    ("two-phase version bump", `Quick, test_two_phase_version_bump);
    QCheck_alcotest.to_alcotest prop_two_phase_random_flip_order;
    ("two-phase clean oracle", `Quick, test_two_phase_faults_clean_oracle);
    ("two-phase drop rolls back", `Quick, test_two_phase_dropped_install_rolls_back);
    ("two-phase delay still flips", `Quick, test_two_phase_delayed_install_still_flips);
    ("two-phase partial abort", `Quick, test_two_phase_mixed_batch_partial_abort);
    ("ordering empty", `Quick, test_ordering_empty);
    ("ordering plan moves", `Quick, test_ordering_plan_moves);
    ("ordering unknown flow", `Quick, test_ordering_unknown_flow);
    ("ordering dependency rounds", `Quick, test_ordering_dependency_rounds);
    ("ordering deadlock", `Quick, test_ordering_deadlock);
    ("ordering verify", `Quick, test_ordering_verify);
    ("ordering verify bogus", `Quick, test_ordering_verify_rejects_bogus);
    ("ordering state unchanged", `Quick, test_ordering_leaves_state_unchanged);
  ]
