(* nu_update: event abstraction, migration approximation, planner. *)

let topo4 () = Fat_tree.to_topology (Fat_tree.create ~k:4 ())

let flow ?(id = 0) ?(demand = 100.0) ?(duration = 10.0) src dst =
  Flow_record.v ~id ~src ~dst ~size_mbit:(demand *. duration)
    ~duration_s:duration ~arrival_s:0.0

let place_exn net record =
  match Routing.select net record with
  | None -> Alcotest.fail "no feasible path"
  | Some path -> (
      match Net_state.place net record path with
      | Ok () -> path
      | Error _ -> Alcotest.fail "placement failed")

(* A k=4 network loaded so the update machinery has something to chew on.
   Deterministic and fast (no trace generation). *)
let loaded_net () =
  let net = Net_state.create (topo4 ()) in
  (* Saturate the desired (hash-chosen) path of a later probe by loading
     inter-pod pairs moderately. *)
  let next = ref 100 in
  for src = 0 to 7 do
    let dst = 15 - src in
    let r = flow ~id:!next ~demand:300.0 src dst in
    incr next;
    ignore (place_exn net r)
  done;
  net

let residual_snapshot net =
  Array.init
    (Graph.edge_count (Net_state.graph net))
    (fun i -> Net_state.residual net i)

let check_same_residuals msg a b =
  Array.iteri
    (fun i va ->
      if abs_float (va -. b.(i)) > 1e-6 then
        Alcotest.failf "%s: edge %d differs (%.3f vs %.3f)" msg i va b.(i))
    a

(* ------------------------------------------------------------------ *)
(* Event                                                               *)

let spec_of_flows flows =
  { Event_gen.event_id = 1; arrival_s = 0.0; flows }

let test_event_of_spec () =
  let ev = Event.of_spec (spec_of_flows [ flow 0 1; flow ~id:1 2 3 ]) in
  Alcotest.(check int) "work count" 2 (Event.work_count ev);
  Alcotest.(check int) "installs" 2 (List.length (Event.install_records ev));
  Alcotest.(check bool) "kind" true (ev.Event.kind = Event.Additions)

let test_event_of_spec_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Event.of_spec: empty flow list")
    (fun () -> ignore (Event.of_spec (spec_of_flows [])))

let test_event_total_demand () =
  let ev = Event.of_spec (spec_of_flows [ flow ~demand:10.0 0 1; flow ~id:1 ~demand:20.0 2 3 ]) in
  Alcotest.(check (float 1e-9)) "sum" 30.0 (Event.total_install_demand_mbps ev)

let test_event_compare () =
  let a = { (Event.of_spec (spec_of_flows [ flow 0 1 ])) with Event.id = 1; arrival_s = 1.0 } in
  let b = { (Event.of_spec (spec_of_flows [ flow 0 1 ])) with Event.id = 2; arrival_s = 2.0 } in
  Alcotest.(check bool) "ordered" true (Event.compare_by_arrival a b < 0)

let test_switch_upgrade_event () =
  let net = loaded_net () in
  let ft = Fat_tree.create ~k:4 () in
  let agg = Fat_tree.aggregation ft ~pod:0 0 in
  (* Find a switch actually crossed by flows. *)
  let crossing = Net_state.flows_through_node net agg in
  if crossing = [] then
    Alcotest.check_raises "no flows"
      (Invalid_argument "Event.switch_upgrade_event: no flow crosses the switch")
      (fun () ->
        ignore (Event.switch_upgrade_event net ~id:9 ~arrival_s:0.0 ~switch:agg))
  else begin
    let ev = Event.switch_upgrade_event net ~id:9 ~arrival_s:0.0 ~switch:agg in
    Alcotest.(check int) "one reroute per crossing flow" (List.length crossing)
      (Event.work_count ev);
    Alcotest.(check bool) "kind" true (ev.Event.kind = Event.Switch_upgrade agg)
  end

let test_link_failure_evacuates () =
  let net = loaded_net () in
  let g = Net_state.graph net in
  let busy =
    let rec find id =
      if id >= Graph.edge_count g then Alcotest.fail "a busy edge exists"
      else if Net_state.flows_on_edge net id <> [] then id
      else find (id + 1)
    in
    find 0
  in
  let reverse = Graph.reverse_edge g (Graph.edge g busy) in
  Net_state.disable_edge net busy;
  (match reverse with
  | Some r -> Net_state.disable_edge net r.Graph.id
  | None -> ());
  let ev = Event.link_failure_event net ~id:7 ~arrival_s:0.0 ~edge:busy in
  Alcotest.(check bool) "kind" true
    (match ev.Event.kind with Event.Link_failure _ -> true | _ -> false);
  let plan = Planner.plan net ev in
  (* Every successfully rerouted flow must now avoid both directions. *)
  List.iter
    (fun (item : Planner.item_plan) ->
      match (item.Planner.work, item.Planner.outcome) with
      | Event.Reroute { flow_id; _ }, Planner.Rerouted _ -> (
          match Net_state.flow net flow_id with
          | Some placed ->
              Alcotest.(check bool) "avoids failed link" false
                (Path.mentions_edge placed.Net_state.path busy)
          | None -> Alcotest.fail "flow vanished")
      | _ -> ())
    plan.Planner.items;
  Alcotest.(check bool) "link drained" true
    (Net_state.flows_on_edge net busy = [] || plan.Planner.failed_count > 0);
  match Net_state.invariants_ok net with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_vm_migration_event () =
  let ev = Event.vm_migration_event ~id:3 ~arrival_s:1.0 ~flows:[ flow 0 1 ] in
  Alcotest.(check bool) "kind" true (ev.Event.kind = Event.Vm_migration);
  Alcotest.check_raises "no flows" (Invalid_argument "Event.vm_migration_event: no flows")
    (fun () -> ignore (Event.vm_migration_event ~id:3 ~arrival_s:1.0 ~flows:[]))

(* ------------------------------------------------------------------ *)
(* Migration                                                           *)

(* Craft a situation where clearing is needed and possible: leaf-spine
   with 2 spines. A blocker flow occupies spine 0 on the probe's path;
   migrating it to spine 1 frees the path. *)
let clearing_scenario () =
  let ls = Leaf_spine.create ~leaves:2 ~spines:2 ~hosts_per_leaf:2
      ~leaf_spine_capacity:1000.0 ~host_capacity:1000.0 () in
  let topo = Leaf_spine.to_topology ls in
  let net = Net_state.create topo in
  (* Host indices: 0,1 on leaf 0; 2,3 on leaf 1. *)
  let blocker = flow ~id:1 ~demand:900.0 1 3 in
  let via_spine0 = List.hd (Net_state.candidate_paths net blocker) in
  (match Net_state.place net blocker via_spine0 with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "blocker placement");
  (net, via_spine0)

let test_clear_path_moves_blocker () =
  let net, blocked_path = clearing_scenario () in
  (* A new 0->2 flow wants spine 0 (shares the leaf-spine links). *)
  let probe = flow ~id:2 ~demand:400.0 0 2 in
  let desired =
    List.find
      (fun p ->
        List.exists
          (fun (e : Graph.edge) -> Path.mentions_edge blocked_path e.Graph.id)
          (Path.edges p))
      (Net_state.candidate_paths net probe)
  in
  Alcotest.(check bool) "initially congested" false
    (Net_state.path_feasible net desired ~demand:400.0);
  let units = ref 0 in
  match
    Migration.clear_path ~work_units:units net ~demand:400.0 ~path:desired
      ~exclude:(fun _ -> false)
  with
  | Error _ -> Alcotest.fail "clearing is possible via spine 1"
  | Ok moves ->
      Alcotest.(check int) "one move" 1 (List.length moves);
      let m = List.hd moves in
      Alcotest.(check int) "moved the blocker" 1 m.Migration.flow_id;
      Alcotest.(check bool) "path now feasible" true
        (Net_state.path_feasible net desired ~demand:400.0);
      Alcotest.(check bool) "work units counted" true (!units > 0);
      Alcotest.(check (float 1e-9)) "cost = blocker size" 9000.0
        (Migration.moves_cost_mbit moves);
      (match Net_state.invariants_ok net with
      | Ok () -> ()
      | Error e -> Alcotest.fail e)

let test_clear_path_exclude_blocks () =
  let net, blocked_path = clearing_scenario () in
  let probe = flow ~id:2 ~demand:400.0 0 2 in
  let desired =
    List.find
      (fun p ->
        List.exists
          (fun (e : Graph.edge) -> Path.mentions_edge blocked_path e.Graph.id)
          (Path.edges p))
      (Net_state.candidate_paths net probe)
  in
  let before = residual_snapshot net in
  (match
     Migration.clear_path net ~demand:400.0 ~path:desired ~exclude:(fun id ->
         id = 1)
   with
  | Ok _ -> Alcotest.fail "the only movable flow is excluded"
  | Error (Migration.Cannot_free _) -> ());
  check_same_residuals "rollback exact" before (residual_snapshot net)

let test_clear_path_noop_when_free () =
  let net = Net_state.create (topo4 ()) in
  let probe = flow ~id:2 ~demand:100.0 0 15 in
  let path = List.hd (Net_state.candidate_paths net probe) in
  match Migration.clear_path net ~demand:100.0 ~path ~exclude:(fun _ -> false) with
  | Ok [] -> ()
  | Ok _ -> Alcotest.fail "no moves needed"
  | Error _ -> Alcotest.fail "path already free"

let test_clear_path_rollback_on_failure () =
  (* Saturate both spines so clearing must fail after possibly moving
     some flows; state must come back exactly. *)
  let ls = Leaf_spine.create ~leaves:2 ~spines:2 ~hosts_per_leaf:4 () in
  let topo = Leaf_spine.to_topology ls in
  let net = Net_state.create topo in
  (* leaf-spine links are 4000 Mbps; host links 1000. Fill both spines
     from distinct host pairs. *)
  let id = ref 0 in
  List.iter
    (fun (src, dst) ->
      let r = flow ~id:!id ~demand:900.0 src dst in
      incr id;
      let placed = ref false in
      List.iter
        (fun p ->
          if (not !placed) && Net_state.path_feasible net p ~demand:900.0 then begin
            (match Net_state.place net r p with Ok () -> placed := true | Error _ -> ())
          end)
        (Net_state.candidate_paths net r))
    [ (0, 4); (1, 5); (2, 6); (3, 7) ];
  (* Now each spine path carries ~1800/4000; ask for an infeasible gap on
     a saturated *host* link instead: host 0's access link has 900 used,
     demand 500 cannot fit and no flow can leave the access link. *)
  let probe = flow ~id:99 ~demand:500.0 0 6 in
  let path = List.hd (Net_state.candidate_paths net probe) in
  if Net_state.path_feasible net path ~demand:500.0 then ()
  else begin
    let before = residual_snapshot net in
    match Migration.clear_path net ~demand:500.0 ~path ~exclude:(fun _ -> false) with
    | Ok _ -> ()  (* clearing may legitimately succeed on fabric links *)
    | Error _ -> check_same_residuals "rollback" before (residual_snapshot net)
  end

let test_migration_orders_names () =
  Alcotest.(check int) "four orders" 4 (List.length Migration.all_orders);
  List.iter
    (fun o -> Alcotest.(check bool) "named" true (Migration.order_name o <> ""))
    Migration.all_orders

(* ------------------------------------------------------------------ *)
(* Planner                                                             *)

let test_plan_installs_event () =
  let net = loaded_net () in
  let ev =
    Event.of_spec
      (spec_of_flows [ flow ~id:0 ~demand:50.0 0 15; flow ~id:1 ~demand:20.0 3 12 ])
  in
  let plan = Planner.plan net ev in
  Alcotest.(check int) "no failures" 0 plan.Planner.failed_count;
  Alcotest.(check bool) "flows placed" true
    (Net_state.is_placed net 0 && Net_state.is_placed net 1);
  Alcotest.(check bool) "rule hops counted" true (plan.Planner.rule_hops >= 2 * 2);
  match Net_state.invariants_ok net with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_plan_revert_roundtrip () =
  let net = loaded_net () in
  let before = residual_snapshot net in
  let flows_before = Net_state.flow_count net in
  let ev =
    Event.of_spec
      (spec_of_flows
         [
           flow ~id:0 ~demand:300.0 0 15;
           flow ~id:1 ~demand:250.0 1 14;
           flow ~id:2 ~demand:10.0 2 13;
         ])
  in
  let plan = Planner.plan net ev in
  Planner.revert net plan;
  check_same_residuals "residuals restored" before (residual_snapshot net);
  Alcotest.(check int) "flow count restored" flows_before (Net_state.flow_count net);
  match Net_state.invariants_ok net with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_cost_of_pure () =
  let net = loaded_net () in
  let before = residual_snapshot net in
  let ev = Event.of_spec (spec_of_flows [ flow ~id:0 ~demand:300.0 0 15 ]) in
  let est1 = Planner.cost_of net ev in
  let est2 = Planner.cost_of net ev in
  check_same_residuals "state unchanged" before (residual_snapshot net);
  Alcotest.(check (float 1e-9)) "estimates deterministic"
    est1.Planner.est_cost_mbit est2.Planner.est_cost_mbit;
  Alcotest.(check bool) "units positive" true (est1.Planner.est_work_units > 0)

let test_plan_migration_cost_positive () =
  let net, blocked_path = clearing_scenario () in
  ignore blocked_path;
  (* 0 -> 2 at 400 Mbps: depending on the ECMP hash the desired path may
     need the blocker migrated. Whether or not migration happens, the
     flow must install. *)
  let ev = Event.of_spec (spec_of_flows [ flow ~id:2 ~demand:400.0 0 2 ]) in
  let plan = Planner.plan net ev in
  Alcotest.(check int) "installed" 0 plan.Planner.failed_count;
  Alcotest.(check bool) "cost consistent with moves" true
    ((plan.Planner.cost_mbit > 0.0) = (plan.Planner.move_count > 0))

let test_plan_desired_first_pays_more () =
  (* Force the desired path to be congested: scan-first should then be
     no more expensive than desired-first on the same state. *)
  let net, _ = clearing_scenario () in
  let ev = Event.of_spec (spec_of_flows [ flow ~id:2 ~demand:400.0 0 2 ]) in
  let desired_cfg = Planner.default_config in
  let scan_cfg = { Planner.default_config with Planner.admission = Planner.Scan_first } in
  let est_desired = Planner.cost_of ~config:desired_cfg net ev in
  let est_scan = Planner.cost_of ~config:scan_cfg net ev in
  Alcotest.(check bool) "scan-first cost <= desired-first" true
    (est_scan.Planner.est_cost_mbit <= est_desired.Planner.est_cost_mbit +. 1e-9)

let test_plan_failure_reason () =
  let net = Net_state.create (topo4 ()) in
  (* Demand beyond link capacity can never be placed. *)
  let ev = Event.of_spec (spec_of_flows [ flow ~id:0 ~demand:2000.0 0 15 ]) in
  let plan = Planner.plan net ev in
  Alcotest.(check int) "failed" 1 plan.Planner.failed_count;
  (match plan.Planner.items with
  | [ { Planner.outcome = Planner.Failed Planner.Could_not_free; _ } ] -> ()
  | _ -> Alcotest.fail "expected Could_not_free");
  Alcotest.(check bool) "nothing placed" false (Net_state.is_placed net 0)

let test_plan_reroute_work () =
  let net = loaded_net () in
  let ft = Fat_tree.create ~k:4 () in
  (* Upgrade an aggregation switch crossed by flows; after planning, no
     rerouted flow may still traverse it. *)
  let agg = Fat_tree.aggregation ft ~pod:0 0 in
  let crossing = Net_state.flows_through_node net agg in
  if crossing <> [] then begin
    let ev = Event.switch_upgrade_event net ~id:9 ~arrival_s:0.0 ~switch:agg in
    let plan = Planner.plan net ev in
    List.iter
      (fun (item : Planner.item_plan) ->
        match (item.Planner.work, item.Planner.outcome) with
        | Event.Reroute { flow_id; _ }, Planner.Rerouted _ -> (
            match Net_state.flow net flow_id with
            | Some placed ->
                Alcotest.(check bool) "evacuated" false
                  (Path.mentions_node placed.Net_state.path agg)
            | None -> Alcotest.fail "flow vanished")
        | Event.Reroute _, Planner.Failed _ -> ()
        | _ -> Alcotest.fail "unexpected item shape")
      plan.Planner.items;
    match Net_state.invariants_ok net with
    | Ok () -> ()
    | Error e -> Alcotest.fail e
  end

let test_plan_duplicate_install () =
  let net = Net_state.create (topo4 ()) in
  let r = flow ~id:0 ~demand:10.0 0 15 in
  let _ = place_exn net r in
  let ev = Event.of_spec (spec_of_flows [ r ]) in
  let plan = Planner.plan net ev in
  (match plan.Planner.items with
  | [ { Planner.outcome = Planner.Failed Planner.Already_placed; _ } ] -> ()
  | _ -> Alcotest.fail "expected Already_placed");
  (* Revert must not disturb the pre-existing placement. *)
  Planner.revert net plan;
  Alcotest.(check bool) "original placement intact" true (Net_state.is_placed net 0)

let test_plan_reroute_unknown_flow () =
  let net = Net_state.create (topo4 ()) in
  let ev =
    {
      Event.id = 1;
      arrival_s = 0.0;
      kind = Event.Additions;
      work = [ Event.Reroute { flow_id = 999; avoid = Event.Unconstrained } ];
    }
  in
  let plan = Planner.plan net ev in
  match plan.Planner.items with
  | [ { Planner.outcome = Planner.Failed Planner.Flow_not_placed; _ } ] -> ()
  | _ -> Alcotest.fail "expected Flow_not_placed"

let test_plan_frozen_respected () =
  let net, blocked_path = clearing_scenario () in
  ignore blocked_path;
  let ev = Event.of_spec (spec_of_flows [ flow ~id:2 ~demand:400.0 0 2 ]) in
  (* Freeze the blocker: no plan may migrate it. *)
  let plan = Planner.plan ~frozen:(fun id -> id = 1) net ev in
  List.iter
    (fun (item : Planner.item_plan) ->
      match item.Planner.outcome with
      | Planner.Installed { moves; _ } | Planner.Rerouted { moves; _ } ->
          List.iter
            (fun (m : Migration.move) ->
              Alcotest.(check bool) "frozen flow untouched" false
                (m.Migration.flow_id = 1))
            moves
      | Planner.Failed _ -> ())
    plan.Planner.items

let test_plan_work_units_monotone () =
  let net = loaded_net () in
  let small = Event.of_spec (spec_of_flows [ flow ~id:0 ~demand:10.0 0 15 ]) in
  let big =
    Event.of_spec
      (spec_of_flows (List.init 20 (fun i -> flow ~id:i ~demand:10.0 (i mod 8) (15 - (i mod 8)))))
  in
  let e_small = Planner.cost_of net small in
  let e_big = Planner.cost_of net big in
  Alcotest.(check bool) "more work for more flows" true
    (e_big.Planner.est_work_units > e_small.Planner.est_work_units)

let prop_plan_revert_preserves_invariants =
  QCheck.Test.make ~name:"plan+revert keeps invariants on random events"
    ~count:20 QCheck.small_int (fun seed ->
      let net = loaded_net () in
      let rng = Prng.create seed in
      let specs =
        Event_gen.generate ~first_flow_id:10_000 rng ~host_count:16 ~n_events:3
      in
      let events = Event.of_specs specs in
      List.for_all
        (fun ev ->
          let plan = Planner.plan net ev in
          let ok_applied = Net_state.invariants_ok net = Ok () in
          Planner.revert net plan;
          ok_applied && Net_state.invariants_ok net = Ok ())
        events)

let suite =
  [
    ("event of_spec", `Quick, test_event_of_spec);
    ("event empty spec", `Quick, test_event_of_spec_empty);
    ("event total demand", `Quick, test_event_total_demand);
    ("event compare", `Quick, test_event_compare);
    ("event switch upgrade", `Quick, test_switch_upgrade_event);
    ("event link failure", `Quick, test_link_failure_evacuates);
    ("event vm migration", `Quick, test_vm_migration_event);
    ("clear_path moves blocker", `Quick, test_clear_path_moves_blocker);
    ("clear_path exclude", `Quick, test_clear_path_exclude_blocks);
    ("clear_path noop", `Quick, test_clear_path_noop_when_free);
    ("clear_path rollback", `Quick, test_clear_path_rollback_on_failure);
    ("migration orders", `Quick, test_migration_orders_names);
    ("plan installs", `Quick, test_plan_installs_event);
    ("plan revert roundtrip", `Quick, test_plan_revert_roundtrip);
    ("cost_of pure", `Quick, test_cost_of_pure);
    ("plan migration cost", `Quick, test_plan_migration_cost_positive);
    ("admission cost relation", `Quick, test_plan_desired_first_pays_more);
    ("plan failure reason", `Quick, test_plan_failure_reason);
    ("plan reroute work", `Quick, test_plan_reroute_work);
    ("plan duplicate install", `Quick, test_plan_duplicate_install);
    ("plan reroute unknown", `Quick, test_plan_reroute_unknown_flow);
    ("plan frozen", `Quick, test_plan_frozen_respected);
    ("plan work units monotone", `Quick, test_plan_work_units_monotone);
    QCheck_alcotest.to_alcotest prop_plan_revert_preserves_invariants;
  ]
