(* nu_traffic: flow records, IP mapping, trace generators, event specs. *)

(* ------------------------------------------------------------------ *)
(* Flow_record                                                         *)

let mk ?(id = 0) ?(src = 1) ?(dst = 2) ?(size = 10.0) ?(dur = 2.0) ?(arr = 0.0)
    () =
  Flow_record.v ~id ~src ~dst ~size_mbit:size ~duration_s:dur ~arrival_s:arr

let test_record_demand () =
  let r = mk ~size:10.0 ~dur:2.0 () in
  Alcotest.(check (float 1e-9)) "demand" 5.0 (Flow_record.demand_mbps r);
  Alcotest.(check (float 1e-9)) "departure" 2.0 (Flow_record.departure_s r)

let test_record_validation () =
  Alcotest.check_raises "src=dst" (Invalid_argument "Flow_record.v: src = dst")
    (fun () -> ignore (mk ~src:3 ~dst:3 ()));
  Alcotest.check_raises "size" (Invalid_argument "Flow_record.v: size must be positive")
    (fun () -> ignore (mk ~size:0.0 ()));
  Alcotest.check_raises "duration"
    (Invalid_argument "Flow_record.v: duration must be positive") (fun () ->
      ignore (mk ~dur:(-1.0) ()));
  Alcotest.check_raises "arrival" (Invalid_argument "Flow_record.v: negative arrival")
    (fun () -> ignore (mk ~arr:(-0.1) ()));
  Alcotest.check_raises "endpoint"
    (Invalid_argument "Flow_record.v: negative endpoint") (fun () ->
      ignore (mk ~src:(-1) ()))

let test_record_ordering () =
  let a = mk ~id:1 ~arr:1.0 () and b = mk ~id:2 ~arr:2.0 () in
  Alcotest.(check bool) "by arrival" true (Flow_record.compare_by_arrival a b < 0);
  let c = mk ~id:3 ~arr:1.0 () in
  Alcotest.(check bool) "ties by id" true (Flow_record.compare_by_arrival a c < 0)

(* ------------------------------------------------------------------ *)
(* Ip_map                                                              *)

let test_ip_parse_roundtrip () =
  List.iter
    (fun s ->
      match Ip_map.ip_of_string s with
      | Some ip -> Alcotest.(check string) "roundtrip" s (Ip_map.string_of_ip ip)
      | None -> Alcotest.fail ("parse " ^ s))
    [ "0.0.0.0"; "10.0.1.17"; "255.255.255.255"; "192.168.13.9" ]

let test_ip_parse_invalid () =
  List.iter
    (fun s ->
      Alcotest.(check bool) ("reject " ^ s) true (Ip_map.ip_of_string s = None))
    [ "256.0.0.1"; "1.2.3"; "a.b.c.d"; "1.2.3.4.5"; ""; "-1.2.3.4" ]

let test_ip_host_range () =
  for i = 0 to 500 do
    let h = Ip_map.host_of_ip ~host_count:128 (Int32.of_int (i * 7919)) in
    Alcotest.(check bool) "in range" true (h >= 0 && h < 128)
  done

let test_ip_host_deterministic () =
  let ip = Int32.of_int 12345 in
  Alcotest.(check int) "stable"
    (Ip_map.host_of_ip ~host_count:64 ip)
    (Ip_map.host_of_ip ~host_count:64 ip)

let test_ip_pair_distinct () =
  for i = 0 to 500 do
    let ip = Int32.of_int (i * 131) in
    let s, d = Ip_map.host_pair ~host_count:16 ~src_ip:ip ~dst_ip:ip in
    Alcotest.(check bool) "never equal" true (s <> d)
  done

let test_ip_spread () =
  (* The hash must hit a large fraction of hosts over many addresses. *)
  let seen = Hashtbl.create 64 in
  for i = 0 to 2000 do
    Hashtbl.replace seen (Ip_map.host_of_ip ~host_count:128 (Int32.of_int (i * 65537))) ()
  done;
  Alcotest.(check bool) "covers most hosts" true (Hashtbl.length seen > 100)

(* ------------------------------------------------------------------ *)
(* Trace generators                                                    *)

let test_yahoo_shape () =
  let rng = Prng.create 5 in
  let flows = Yahoo_trace.generate rng ~host_count:64 ~n:500 in
  Alcotest.(check int) "count" 500 (Array.length flows);
  Array.iteri
    (fun i (f : Flow_record.t) ->
      Alcotest.(check int) "sequential ids" i f.Flow_record.id;
      Alcotest.(check bool) "endpoints in range" true
        (f.src >= 0 && f.src < 64 && f.dst >= 0 && f.dst < 64 && f.src <> f.dst);
      let d = Flow_record.demand_mbps f in
      Alcotest.(check bool) "demand in bounds" true (d >= 1.0 && d <= 400.0 +. 1e-6);
      Alcotest.(check bool) "duration positive" true (f.duration_s > 0.0))
    flows;
  let sorted = Array.for_all Fun.id (Array.mapi
    (fun i (f : Flow_record.t) ->
      i = 0 || flows.(i - 1).Flow_record.arrival_s <= f.Flow_record.arrival_s)
    flows) in
  Alcotest.(check bool) "arrivals nondecreasing" true sorted

let test_yahoo_first_id () =
  let rng = Prng.create 5 in
  let flows = Yahoo_trace.generate ~first_id:1000 rng ~host_count:64 ~n:3 in
  Alcotest.(check (list int)) "offset ids" [ 1000; 1001; 1002 ]
    (Array.to_list (Array.map (fun (f : Flow_record.t) -> f.Flow_record.id) flows))

let test_yahoo_deterministic () =
  let a = Yahoo_trace.generate (Prng.create 9) ~host_count:32 ~n:50 in
  let b = Yahoo_trace.generate (Prng.create 9) ~host_count:32 ~n:50 in
  Alcotest.(check bool) "same seed same trace" true (a = b)

let test_yahoo_invalid () =
  Alcotest.check_raises "hosts" (Invalid_argument "Yahoo_trace.generate: host_count")
    (fun () -> ignore (Yahoo_trace.generate (Prng.create 1) ~host_count:1 ~n:1))

let test_benson_shape () =
  let rng = Prng.create 6 in
  let flows = Benson_trace.generate rng ~host_count:64 ~n:500 in
  Alcotest.(check int) "count" 500 (Array.length flows);
  let mice =
    Array.to_list flows
    |> List.filter (fun f -> Flow_record.demand_mbps f <= 10.0 +. 1e-6)
  in
  (* mice fraction 0.8 with generous slack *)
  Alcotest.(check bool) "mice dominate" true (List.length mice > 300);
  Array.iter
    (fun (f : Flow_record.t) ->
      let d = Flow_record.demand_mbps f in
      Alcotest.(check bool) "within elephant cap" true (d <= 200.0 +. 1e-6))
    flows

let test_benson_mixture_params () =
  let params =
    { Benson_trace.default_params with Benson_trace.mice_fraction = 0.0 }
  in
  let rng = Prng.create 6 in
  let flows = Benson_trace.generate ~params rng ~host_count:64 ~n:100 in
  Array.iter
    (fun f ->
      Alcotest.(check bool) "all elephants" true
        (Flow_record.demand_mbps f >= 10.0 -. 1e-6))
    flows

let test_benson_draw_flow_endpoints () =
  let rng = Prng.create 7 in
  let f = Benson_trace.draw_flow rng ~id:42 ~src:3 ~dst:9 ~arrival_s:1.5 in
  Alcotest.(check int) "id" 42 f.Flow_record.id;
  Alcotest.(check int) "src" 3 f.Flow_record.src;
  Alcotest.(check int) "dst" 9 f.Flow_record.dst;
  Alcotest.(check (float 0.0)) "arrival" 1.5 f.Flow_record.arrival_s

(* ------------------------------------------------------------------ *)
(* Event_gen                                                           *)

let test_event_gen_counts () =
  let rng = Prng.create 8 in
  let specs = Event_gen.generate rng ~host_count:64 ~n_events:20 in
  Alcotest.(check int) "events" 20 (List.length specs);
  List.iter
    (fun (s : Event_gen.spec) ->
      let n = List.length s.Event_gen.flows in
      Alcotest.(check bool) "heterogeneous 10-100" true (n >= 10 && n <= 100))
    specs

let test_event_gen_synchronous () =
  let rng = Prng.create 8 in
  let specs =
    Event_gen.generate ~shape:Event_gen.Synchronous rng ~host_count:64
      ~n_events:20
  in
  List.iter
    (fun (s : Event_gen.spec) ->
      let n = List.length s.Event_gen.flows in
      Alcotest.(check bool) "synchronous 50-60" true (n >= 50 && n <= 60))
    specs

let test_event_gen_fixed_and_range () =
  let rng = Prng.create 8 in
  Alcotest.(check int) "fixed" 7 (Event_gen.flows_per_event (Event_gen.Fixed 7) rng);
  for _ = 1 to 50 do
    let v = Event_gen.flows_per_event (Event_gen.Range (3, 5)) rng in
    Alcotest.(check bool) "range" true (v >= 3 && v <= 5)
  done;
  Alcotest.check_raises "bad range"
    (Invalid_argument "Event_gen.flows_per_event: Range") (fun () ->
      ignore (Event_gen.flows_per_event (Event_gen.Range (5, 3)) rng))

let test_event_gen_batch_arrivals () =
  let rng = Prng.create 8 in
  let specs = Event_gen.generate rng ~host_count:64 ~n_events:5 in
  List.iter
    (fun (s : Event_gen.spec) ->
      Alcotest.(check (float 0.0)) "batch at t=0" 0.0 s.Event_gen.arrival_s)
    specs

let test_event_gen_poisson_arrivals () =
  let rng = Prng.create 8 in
  let specs =
    Event_gen.generate ~arrivals:(Event_gen.Poisson 1.0) rng ~host_count:64
      ~n_events:10
  in
  let arrivals = List.map (fun (s : Event_gen.spec) -> s.Event_gen.arrival_s) specs in
  Alcotest.(check bool) "nondecreasing" true
    (List.sort compare arrivals = arrivals);
  Alcotest.(check bool) "actually advances" true
    (List.nth arrivals 9 > 0.0)

let test_event_gen_unique_flow_ids () =
  let rng = Prng.create 8 in
  let specs = Event_gen.generate ~first_flow_id:500 rng ~host_count:64 ~n_events:10 in
  let ids =
    List.concat_map
      (fun (s : Event_gen.spec) ->
        List.map (fun (f : Flow_record.t) -> f.Flow_record.id) s.Event_gen.flows)
      specs
  in
  Alcotest.(check int) "unique" (List.length ids)
    (List.length (List.sort_uniq compare ids));
  Alcotest.(check int) "starts at first_flow_id" 500
    (List.fold_left min max_int ids)

let test_event_gen_flow_arrival_matches_event () =
  let rng = Prng.create 8 in
  let specs =
    Event_gen.generate ~arrivals:(Event_gen.Poisson 2.0) rng ~host_count:64
      ~n_events:5
  in
  List.iter
    (fun (s : Event_gen.spec) ->
      List.iter
        (fun (f : Flow_record.t) ->
          Alcotest.(check (float 0.0)) "flow arrival = event arrival"
            s.Event_gen.arrival_s f.Flow_record.arrival_s)
        s.Event_gen.flows)
    specs

let test_event_gen_totals () =
  let rng = Prng.create 8 in
  let specs = Event_gen.generate rng ~host_count:64 ~n_events:4 in
  let by_hand =
    List.fold_left (fun a (s : Event_gen.spec) -> a + List.length s.Event_gen.flows) 0 specs
  in
  Alcotest.(check int) "total flows" by_hand (Event_gen.total_flow_count specs);
  let first = List.hd specs in
  Alcotest.(check bool) "demand positive" true
    (Event_gen.total_demand_mbps first > 0.0)

let prop_event_flows_valid =
  QCheck.Test.make ~name:"generated event flows are valid records" ~count:50
    QCheck.(pair small_int (int_range 1 20))
    (fun (seed, n_events) ->
      let rng = Prng.create seed in
      let specs = Event_gen.generate rng ~host_count:32 ~n_events in
      List.for_all
        (fun (s : Event_gen.spec) ->
          List.for_all
            (fun (f : Flow_record.t) ->
              f.Flow_record.src <> f.Flow_record.dst
              && f.Flow_record.src < 32 && f.Flow_record.dst < 32
              && f.Flow_record.size_mbit > 0.0
              && f.Flow_record.duration_s > 0.0)
            s.Event_gen.flows)
        specs)

let test_pp_smoke () =
  let r = mk ~id:3 ~src:1 ~dst:2 ~size:10.0 ~dur:2.0 () in
  let s = Format.asprintf "%a" Flow_record.pp r in
  Alcotest.(check bool) "mentions id" true (String.length s > 0);
  let spec = { Event_gen.event_id = 7; arrival_s = 1.5; flows = [ r ] } in
  let s2 = Format.asprintf "%a" Event_gen.pp_spec spec in
  Alcotest.(check bool) "spec renders" true (String.length s2 > 0)

let test_dist_uniform_bounds () =
  let rng = Prng.create 21 in
  for _ = 1 to 300 do
    let v = Dist.uniform rng ~lo:2.0 ~hi:5.0 in
    Alcotest.(check bool) "in range" true (v >= 2.0 && v < 5.0)
  done

let suite =
  [
    ("record demand", `Quick, test_record_demand);
    ("pp smoke", `Quick, test_pp_smoke);
    ("dist uniform", `Quick, test_dist_uniform_bounds);
    ("record validation", `Quick, test_record_validation);
    ("record ordering", `Quick, test_record_ordering);
    ("ip parse roundtrip", `Quick, test_ip_parse_roundtrip);
    ("ip parse invalid", `Quick, test_ip_parse_invalid);
    ("ip host range", `Quick, test_ip_host_range);
    ("ip deterministic", `Quick, test_ip_host_deterministic);
    ("ip pair distinct", `Quick, test_ip_pair_distinct);
    ("ip spread", `Quick, test_ip_spread);
    ("yahoo shape", `Quick, test_yahoo_shape);
    ("yahoo first id", `Quick, test_yahoo_first_id);
    ("yahoo deterministic", `Quick, test_yahoo_deterministic);
    ("yahoo invalid", `Quick, test_yahoo_invalid);
    ("benson shape", `Quick, test_benson_shape);
    ("benson mixture", `Quick, test_benson_mixture_params);
    ("benson endpoints", `Quick, test_benson_draw_flow_endpoints);
    ("event counts", `Quick, test_event_gen_counts);
    ("event synchronous", `Quick, test_event_gen_synchronous);
    ("event fixed/range", `Quick, test_event_gen_fixed_and_range);
    ("event batch", `Quick, test_event_gen_batch_arrivals);
    ("event poisson", `Quick, test_event_gen_poisson_arrivals);
    ("event unique ids", `Quick, test_event_gen_unique_flow_ids);
    ("event flow arrivals", `Quick, test_event_gen_flow_arrival_matches_event);
    ("event totals", `Quick, test_event_gen_totals);
    QCheck_alcotest.to_alcotest prop_event_flows_valid;
  ]
