(* nu_serve: admission, journal, source, checkpoint/restore/replay.

   The load-bearing properties are differential: a restored controller
   must reproduce the uninterrupted run's decision digest bit for bit,
   with and without an active fault injector, including recovery from a
   journal whose trailing tick never committed (crash mid-tick). *)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let dummy_flow id =
  Flow_record.v ~id ~src:0 ~dst:1 ~size_mbit:1.0 ~duration_s:1.0 ~arrival_s:0.0

let dummy_event id =
  {
    Event.id;
    arrival_s = 0.0;
    kind = Event.Additions;
    work = [ Event.Install (dummy_flow (100 + id)) ];
  }

let req ?(tenant = "a") id = Serve_request.v ~tenant (dummy_event id)

let event_ids reqs =
  List.map (fun (r, _) -> (Serve_request.event r).Event.id) reqs

(* ------------------------------------------------------------------ *)
(* Admission                                                           *)

let test_admission_block () =
  let a = Admission.create ~capacity:2 ~policy:Admission.Block in
  Alcotest.(check bool) "first" true (Admission.offer a ~tick:0 (req 1) = Admission.Admitted);
  Alcotest.(check bool) "second" true (Admission.offer a ~tick:0 (req 2) = Admission.Admitted);
  Alcotest.(check bool) "full defers" true (Admission.offer a ~tick:0 (req 3) = Admission.Deferred);
  Alcotest.(check int) "size" 2 (Admission.size a)

let test_admission_drop_newest () =
  let a = Admission.create ~capacity:1 ~policy:Admission.Drop_newest in
  ignore (Admission.offer a ~tick:0 (req 1));
  (match Admission.offer a ~tick:0 (req 2) with
  | Admission.Shed reason -> Alcotest.(check string) "reason" "capacity" reason
  | _ -> Alcotest.fail "expected shed");
  Alcotest.(check int) "still holds the old request" 1 (Admission.size a);
  Alcotest.(check (list int)) "old one drains" [ 1 ]
    (event_ids (Admission.drain a ~max:5))

let test_admission_drop_oldest () =
  let a = Admission.create ~capacity:2 ~policy:Admission.Drop_oldest in
  ignore (Admission.offer a ~tick:0 (req ~tenant:"a" 1));
  ignore (Admission.offer a ~tick:0 (req ~tenant:"b" 2));
  (* Full: the globally oldest (id 1) is evicted, the arrival admitted. *)
  Alcotest.(check bool) "admitted" true
    (Admission.offer a ~tick:1 (req ~tenant:"b" 3) = Admission.Admitted);
  Alcotest.(check int) "size constant" 2 (Admission.size a);
  let drained = List.sort compare (event_ids (Admission.drain a ~max:5)) in
  Alcotest.(check (list int)) "survivors" [ 2; 3 ] drained

let test_admission_tenant_quota () =
  let a = Admission.create ~capacity:8 ~policy:(Admission.Tenant_quota 1) in
  Alcotest.(check bool) "a admitted" true
    (Admission.offer a ~tick:0 (req ~tenant:"a" 1) = Admission.Admitted);
  (match Admission.offer a ~tick:0 (req ~tenant:"a" 2) with
  | Admission.Shed reason -> Alcotest.(check string) "reason" "tenant-quota" reason
  | _ -> Alcotest.fail "expected quota shed");
  Alcotest.(check bool) "b unaffected" true
    (Admission.offer a ~tick:0 (req ~tenant:"b" 3) = Admission.Admitted)

let test_admission_fair_drain () =
  let a = Admission.create ~capacity:10 ~policy:Admission.Block in
  ignore (Admission.offer a ~tick:0 (req ~tenant:"a" 1));
  ignore (Admission.offer a ~tick:0 (req ~tenant:"a" 2));
  ignore (Admission.offer a ~tick:0 (req ~tenant:"a" 3));
  ignore (Admission.offer a ~tick:0 (req ~tenant:"b" 4));
  (* Round-robin: one per tenant per sweep, so b's single request is
     served second despite three of a's queued ahead of it. *)
  Alcotest.(check (list int)) "rotation order" [ 1; 4; 2 ]
    (event_ids (Admission.drain a ~max:3));
  Alcotest.(check (list int)) "remainder" [ 3 ]
    (event_ids (Admission.drain a ~max:3))

let test_admission_policy_names () =
  List.iter
    (fun p ->
      match Admission.policy_of_name (Admission.policy_name p) with
      | Ok p' -> Alcotest.(check bool) "round-trip" true (p = p')
      | Error m -> Alcotest.fail m)
    [ Admission.Block; Admission.Drop_newest; Admission.Drop_oldest;
      Admission.Tenant_quota 3 ];
  Alcotest.(check bool) "unknown rejected" true
    (Result.is_error (Admission.policy_of_name "nonsense"))

let test_admission_freeze_thaw () =
  let a = Admission.create ~capacity:4 ~policy:Admission.Block in
  ignore (Admission.offer a ~tick:0 (req ~tenant:"a" 1));
  ignore (Admission.offer a ~tick:1 (req ~tenant:"b" 2));
  ignore (Admission.offer a ~tick:1 (req ~tenant:"a" 3));
  ignore (Admission.drain a ~max:1);
  let b = Admission.thaw ~capacity:4 ~policy:Admission.Block (Admission.freeze a) in
  Alcotest.(check int) "size" (Admission.size a) (Admission.size b);
  Alcotest.(check (list int)) "same drain order"
    (event_ids (Admission.drain a ~max:5))
    (event_ids (Admission.drain b ~max:5))

(* ------------------------------------------------------------------ *)
(* Journal                                                             *)

let test_journal_roundtrip () =
  let path = Filename.temp_file "nu_serve_journal" ".jsonl" in
  let w = Journal.open_writer path in
  let entries =
    [
      Journal.Arrive { tick = 0; request = req ~tenant:"a" 1 };
      Journal.Tick_done 0;
      Journal.Arrive { tick = 1; request = req ~tenant:"b" 2 };
      Journal.Arrive { tick = 1; request = req ~tenant:"a" 3 };
      Journal.Tick_done 1;
    ]
  in
  List.iter (Journal.write w) entries;
  Journal.close_writer w;
  (match Journal.read path with
  | Error m -> Alcotest.fail m
  | Ok back ->
      Alcotest.(check int) "count" (List.length entries) (List.length back);
      List.iter2
        (fun a b ->
          Alcotest.(check string) "entry"
            (Obs.Json.to_string (Journal.entry_to_json a))
            (Obs.Json.to_string (Journal.entry_to_json b)))
        entries back);
  Sys.remove path

let test_journal_committed_ticks () =
  let entries =
    [
      Journal.Tick_done 0;
      Journal.Arrive { tick = 1; request = req 1 };
      Journal.Tick_done 1;
      (* Crash mid-tick 2: arrivals journaled, commit marker missing. *)
      Journal.Arrive { tick = 2; request = req 2 };
      Journal.Arrive { tick = 2; request = req 3 };
    ]
  in
  let groups = Journal.committed_ticks entries in
  Alcotest.(check (list int)) "committed ticks only" [ 0; 1 ]
    (List.map fst groups);
  Alcotest.(check (list int)) "tick 1 payload" [ 1 ]
    (List.map
       (fun r -> (Serve_request.event r).Event.id)
       (List.assoc 1 groups))

let entry_str e = Obs.Json.to_string (Journal.entry_to_json e)

let group_strs groups =
  List.map
    (fun (t, reqs) ->
      Printf.sprintf "%d:%s" t
        (String.concat ","
           (List.map
              (fun r -> Obs.Json.to_string (Serve_codec.request_to_json r))
              reqs)))
    groups

let rec is_prefix xs ys =
  match (xs, ys) with
  | [], _ -> true
  | x :: xs', y :: ys' -> x = y && is_prefix xs' ys'
  | _ :: _, [] -> false

let rec is_subseq xs ys =
  match (xs, ys) with
  | [], _ -> true
  | _ :: _, [] -> false
  | x :: xs', y :: ys' -> if x = y then is_subseq xs' ys' else is_subseq xs ys'

(* A small WAL fixture shared by the damage properties: four committed
   ticks of two arrivals each, as raw on-disk bytes. *)
let wal_fixture =
  lazy
    (let path = Filename.temp_file "nu_wal_fixture" ".wal" in
     let entries =
       List.concat_map
         (fun t ->
           [
             Journal.Arrive { tick = t; request = req ((10 * t) + 1) };
             Journal.Arrive { tick = t; request = req ((10 * t) + 2) };
             Journal.Tick_done t;
           ])
         [ 0; 1; 2; 3 ]
     in
     let w = Journal.open_writer path in
     List.iter (Journal.write w) entries;
     Journal.close_writer w;
     let ic = open_in_bin path in
     let data = really_input_string ic (in_channel_length ic) in
     close_in ic;
     Sys.remove path;
     (entries, data))

(* Satellite (c): truncating the journal at *every* byte offset must
   yield a prefix of the committed ticks — never a decode exception,
   never a phantom entry or tick. *)
let test_journal_truncation_every_offset () =
  let entries, data = Lazy.force wal_fixture in
  let orig_entries = List.map entry_str entries in
  let orig_groups = group_strs (Journal.committed_ticks entries) in
  let path = Filename.temp_file "nu_wal_trunc" ".wal" in
  let len = String.length data in
  for k = 0 to len do
    let oc = open_out_bin path in
    output_string oc (String.sub data 0 k);
    close_out oc;
    match Journal.read_report path with
    | Error m -> Alcotest.failf "offset %d: read_report errored: %s" k m
    | Ok r ->
        if not (is_prefix (List.map entry_str r.Journal.entries) orig_entries)
        then Alcotest.failf "offset %d: decoded a phantom entry" k;
        let groups = group_strs (Journal.committed_ticks r.Journal.entries) in
        if not (is_prefix groups orig_groups) then
          Alcotest.failf "offset %d: phantom committed tick" k;
        if k = len && r.Journal.corrupt <> [] then
          Alcotest.failf "untruncated journal reported corruption"
  done;
  Sys.remove path

(* Any single flipped bit past the segment magic costs at most frames,
   never correctness: the surviving entries are a subsequence of what
   was written (CRC32 catches every single-bit error) and no unwritten
   tick can appear committed. *)
let prop_journal_bit_flip =
  QCheck.Test.make ~name:"journal survives any single bit flip" ~count:150
    QCheck.(pair small_nat (int_range 0 7))
    (fun (off_raw, bit) ->
      let entries, data = Lazy.force wal_fixture in
      let magic = 8 in
      let off = magic + (off_raw mod (String.length data - magic)) in
      let b = Bytes.of_string data in
      Bytes.set b off
        (Char.chr (Char.code (Bytes.get b off) lxor (1 lsl bit)));
      let path = Filename.temp_file "nu_wal_flip" ".wal" in
      let oc = open_out_bin path in
      output_bytes oc b;
      close_out oc;
      let ok =
        match Journal.read_report path with
        | Error _ -> false
        | Ok r ->
            let orig = List.map entry_str entries in
            let got = List.map entry_str r.Journal.entries in
            let orig_ticks =
              List.map fst (Journal.committed_ticks entries)
            in
            let got_ticks =
              List.map fst (Journal.committed_ticks r.Journal.entries)
            in
            is_subseq got orig
            && List.for_all (fun t -> List.mem t orig_ticks) got_ticks
      in
      Sys.remove path;
      ok)

let test_journal_last_commit () =
  Alcotest.(check bool) "empty journal" true (Journal.last_commit [] = Journal.Empty);
  Alcotest.(check bool) "arrivals only" true
    (Journal.last_commit [ Journal.Arrive { tick = 0; request = req 1 } ]
    = Journal.Empty);
  Alcotest.(check bool) "tick 0 committed is not Empty" true
    (Journal.last_commit [ Journal.Tick_done 0 ] = Journal.Committed 0);
  Alcotest.(check bool) "highest commit wins" true
    (Journal.last_commit
       [
         Journal.Tick_done 0;
         Journal.Arrive { tick = 1; request = req 1 };
         Journal.Tick_done 3;
         Journal.Arrive { tick = 4; request = req 2 };
       ]
    = Journal.Committed 3)

let remove_segments path =
  List.iter
    (fun i ->
      let p = Journal.segment_path path i in
      if Sys.file_exists p then Sys.remove p)
    [ 0; 1; 2; 3; 4; 5 ]

let test_journal_segment_rotation_and_append () =
  let path = Filename.temp_file "nu_wal_seg" ".wal" in
  let entries =
    List.init 30 (fun i ->
        if i mod 3 = 2 then Journal.Tick_done (i / 3)
        else Journal.Arrive { tick = i / 3; request = req i })
  in
  let w = Journal.open_writer ~segment_bytes:512 path in
  List.iter (Journal.write w) entries;
  Journal.close_writer w;
  Alcotest.(check bool) "rotated to a second segment" true
    (Sys.file_exists (Journal.segment_path path 1));
  (match Journal.read_report path with
  | Error m -> Alcotest.fail m
  | Ok r ->
      Alcotest.(check bool) "walked several segments" true (r.Journal.segments > 1);
      Alcotest.(check int) "no corruption" 0 (List.length r.Journal.corrupt);
      Alcotest.(check (list string)) "all entries, in order"
        (List.map entry_str entries)
        (List.map entry_str r.Journal.entries));
  (* Re-open in append mode: the writer must continue in the newest
     segment, not clobber the chain. *)
  let w = Journal.open_writer ~append:true ~segment_bytes:512 path in
  Journal.write w (Journal.Tick_done 99);
  Journal.close_writer w;
  (match Journal.read_report path with
  | Error m -> Alcotest.fail m
  | Ok r ->
      Alcotest.(check int) "one more entry" (List.length entries + 1)
        (List.length r.Journal.entries);
      Alcotest.(check bool) "appended commit visible" true
        (Journal.last_commit r.Journal.entries = Journal.Committed 99));
  remove_segments path

(* ------------------------------------------------------------------ *)
(* Source                                                              *)

let spec_of ?(seed = 21) () =
  Serve_source.Synthetic
    {
      seed;
      rate_per_tick = 0.7;
      flows_per_event = 2;
      tenants = [ "a"; "b" ];
      first_event_id = 1;
      first_flow_id = 1_000_000;
    }

let poll_strings src ~from ~upto =
  List.concat_map
    (fun tick ->
      List.map
        (fun r -> Obs.Json.to_string (Serve_codec.request_to_json r))
        (Serve_source.poll src ~tick ~now_s:(0.05 *. float_of_int tick)))
    (List.init (upto - from) (fun i -> from + i))

let test_source_deterministic () =
  let a = Serve_source.create ~host_count:16 (spec_of ()) in
  let b = Serve_source.create ~host_count:16 (spec_of ()) in
  Alcotest.(check (list string)) "same arrivals"
    (poll_strings a ~from:0 ~upto:20)
    (poll_strings b ~from:0 ~upto:20);
  let c = Serve_source.create ~host_count:16 (spec_of ~seed:99 ()) in
  Alcotest.(check bool) "different seed differs" false
    (poll_strings a ~from:20 ~upto:40 = poll_strings c ~from:20 ~upto:40)

let test_source_freeze_thaw () =
  let a = Serve_source.create ~host_count:16 (spec_of ()) in
  ignore (poll_strings a ~from:0 ~upto:10);
  let fz = Serve_source.freeze a in
  (* Round-trip the frozen cursor through JSON too. *)
  let fz =
    match Serve_source.frozen_of_json (Serve_source.frozen_to_json fz) with
    | Ok fz -> fz
    | Error m -> Alcotest.fail m
  in
  let b = Serve_source.thaw ~host_count:16 (spec_of ()) fz in
  Alcotest.(check (list string)) "thawed continues identically"
    (poll_strings a ~from:10 ~upto:25)
    (poll_strings b ~from:10 ~upto:25)

(* ------------------------------------------------------------------ *)
(* Differential harness                                                *)

let scenario () = Scenario.prepare ~k:4 ~utilization:0.6 ~seed:11 ()

let cfg ?(capacity = 8) ?(admission = Admission.Block) ?churn ?(domains = 1) ()
    =
  {
    Serve.policy = Policy.Plmtf { alpha = 2 };
    engine_seed = 5;
    admission_capacity = capacity;
    admission_policy = admission;
    drain_per_tick = 2;
    steps_per_tick = 3;
    tick_dt_s = 0.05;
    co_max_cost_mbit = 0.0;
    estimate_cache = true;
    churn;
    domains;
  }

let test_stepper_equals_batch () =
  let s = scenario () in
  let events = Scenario.events s ~n:10 in
  let policy = Policy.Plmtf { alpha = 2 } in
  let batch =
    Engine.run ~seed:5 ~net:(Net_state.copy s.Scenario.net) ~events policy
  in
  let st =
    Engine.Stepper.create ~seed:5 ~net:(Net_state.copy s.Scenario.net) policy
  in
  Engine.Stepper.submit st events;
  while Engine.Stepper.step st <> `Idle do () done;
  Alcotest.(check string) "digest equal"
    (Run_digest.of_run batch)
    (Run_digest.of_run (Engine.Stepper.result st))

let test_net_freeze_thaw () =
  let s = scenario () in
  let events = Scenario.events s ~n:8 in
  let policy = Policy.Lmtf { alpha = 2 } in
  let thawed =
    Net_state.thaw s.Scenario.topology (Net_state.freeze s.Scenario.net)
  in
  Alcotest.(check string) "runs on thawed net are bit-identical"
    (Run_digest.of_run
       (Engine.run ~seed:5 ~net:(Net_state.copy s.Scenario.net) ~events policy))
    (Run_digest.of_run (Engine.run ~seed:5 ~net:thawed ~events policy))

let test_stepper_freeze_thaw_mid_run () =
  let s = scenario () in
  let events = Scenario.events s ~n:10 in
  let policy = Policy.Plmtf { alpha = 2 } in
  let digest_straight =
    let st =
      Engine.Stepper.create ~seed:5 ~net:(Net_state.copy s.Scenario.net) policy
    in
    Engine.Stepper.submit st events;
    while Engine.Stepper.step st <> `Idle do () done;
    Run_digest.of_run (Engine.Stepper.result st)
  in
  let net_b = Net_state.copy s.Scenario.net in
  let st = Engine.Stepper.create ~seed:5 ~net:net_b policy in
  Engine.Stepper.submit st events;
  for _ = 1 to 4 do
    ignore (Engine.Stepper.step st)
  done;
  (* Freeze mid-run, thaw into a fresh stepper over a thawed net, finish
     there: the digest must match the uninterrupted run bit for bit. *)
  let fz = Engine.Stepper.freeze st in
  let net2 = Net_state.thaw s.Scenario.topology (Net_state.freeze net_b) in
  let st2 = Engine.Stepper.thaw ~net:net2 fz in
  while Engine.Stepper.step st2 <> `Idle do () done;
  Alcotest.(check string) "digest equal" digest_straight
    (Run_digest.of_run (Engine.Stepper.result st2))

(* ------------------------------------------------------------------ *)
(* Serve: controller-level differentials                               *)

(* Checkpoint saves rotate a chain (cp, cp.1, cp.2, ...); tests that
   rmdir their scratch directory must sweep every generation. *)
let remove_chain cp =
  List.iter
    (fun i ->
      let p = Serve_checkpoint.Chain.gen_path cp i in
      if Sys.file_exists p then Sys.remove p)
    [ 0; 1; 2; 3 ]

let serve_uninterrupted ?injector ~ticks () =
  let s = scenario () in
  let t =
    Serve.create ?injector (cfg ()) ~topology:s.Scenario.topology
      ~net:s.Scenario.net ~source_spec:(spec_of ())
  in
  Serve.run ~ticks t;
  Serve.complete t;
  Serve.digest t

let test_serve_checkpoint_restore_differential () =
  let expected = serve_uninterrupted ~ticks:27 () in
  let dir = Filename.temp_file "nu_serve" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o700;
  let cp = Filename.concat dir "cp.json" in
  let jp = Filename.concat dir "journal.jsonl" in
  (* Interrupted twin: journal everything, checkpoint every 8 ticks,
     stop dead after tick 27 (last checkpoint at tick 24). *)
  let s = scenario () in
  let w = Journal.open_writer jp in
  let t =
    Serve.create ~journal:w (cfg ()) ~topology:s.Scenario.topology
      ~net:s.Scenario.net ~source_spec:(spec_of ())
  in
  Serve.run ~checkpoint_path:cp ~checkpoint_every:8 ~ticks:27 t;
  Journal.close_writer w;
  (* Recover elsewhere: only the checkpoint, the journal, the topology
     and the original configuration cross the "crash". *)
  let topology = Fat_tree.to_topology (Fat_tree.create ~k:4 ()) in
  match
    Serve.restore ~config:(cfg ()) ~source_spec:(spec_of ()) ~topology cp
  with
  | Error m -> Alcotest.fail m
  | Ok t2 ->
      Alcotest.(check int) "restored at the last checkpoint" 24
        (Serve.tick_count t2);
      (match Serve.replay ~journal:jp t2 with
      | Error m -> Alcotest.fail m
      | Ok n -> Alcotest.(check int) "re-drove the journal suffix" 3 n);
      Serve.complete t2;
      Alcotest.(check string) "digest equal" expected (Serve.digest t2);
      remove_chain cp;
      Sys.remove jp;
      Sys.rmdir dir

let make_injector topology =
  let config =
    {
      Fault_model.default_config with
      Fault_model.rate_per_s = 0.5;
      horizon_s = 1.0;
    }
  in
  Injector.create (Fault_model.generate ~config ~seed:3 topology)

let test_serve_crash_recovery_under_faults () =
  let expected =
    let s = scenario () in
    serve_uninterrupted ~injector:(make_injector s.Scenario.topology)
      ~ticks:20 ()
  in
  let dir = Filename.temp_file "nu_serve" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o700;
  let cp = Filename.concat dir "cp.json" in
  let jp = Filename.concat dir "journal.jsonl" in
  let s = scenario () in
  let w = Journal.open_writer jp in
  let t =
    Serve.create ~injector:(make_injector s.Scenario.topology) ~journal:w
      (cfg ()) ~topology:s.Scenario.topology ~net:s.Scenario.net
      ~source_spec:(spec_of ())
  in
  Serve.run ~checkpoint_path:cp ~checkpoint_every:10 ~ticks:15 t;
  Journal.close_writer w;
  (* Simulate a crash mid-tick 15: arrivals hit the journal, the commit
     marker never did. Replay must discard them; the resumed source
     regenerates the real tick-15 arrivals bit-identically. *)
  let w = Journal.open_writer ~append:true jp in
  Journal.write w (Journal.Arrive { tick = 15; request = req 999 });
  Journal.close_writer w;
  let topology = Fat_tree.to_topology (Fat_tree.create ~k:4 ()) in
  match
    Serve.restore ~config:(cfg ()) ~source_spec:(spec_of ()) ~topology cp
  with
  | Error m -> Alcotest.fail m
  | Ok t2 ->
      Alcotest.(check int) "restored at tick 10" 10 (Serve.tick_count t2);
      (match Serve.replay ~journal:jp t2 with
      | Error m -> Alcotest.fail m
      | Ok n ->
          Alcotest.(check int) "committed ticks 10-14 replayed, torn tick dropped" 5 n);
      (* Resume live serving for the ticks the crash swallowed. *)
      Serve.run ~ticks:5 t2;
      Serve.complete t2;
      Alcotest.(check string) "digest equal" expected (Serve.digest t2);
      remove_chain cp;
      Sys.remove jp;
      Sys.rmdir dir

let test_serve_restore_rejects_config_mismatch () =
  let dir = Filename.temp_file "nu_serve" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o700;
  let cp = Filename.concat dir "cp.json" in
  let s = scenario () in
  let t =
    Serve.create (cfg ()) ~topology:s.Scenario.topology ~net:s.Scenario.net
      ~source_spec:(spec_of ())
  in
  Serve.run ~ticks:5 t;
  ignore (Serve.save_checkpoint t cp : string);
  let topology = Fat_tree.to_topology (Fat_tree.create ~k:4 ()) in
  (match
     Serve.restore ~config:(cfg ~capacity:99 ()) ~source_spec:(spec_of ())
       ~topology cp
   with
  | Error m ->
      Alcotest.(check bool) "mentions mismatch" true (contains m "mismatch")
  | Ok _ -> Alcotest.fail "restore should refuse a different configuration");
  remove_chain cp;
  Sys.rmdir dir

let test_serve_checkpoint_json_roundtrip () =
  let s = scenario () in
  let t =
    Serve.create (cfg ()) ~topology:s.Scenario.topology ~net:s.Scenario.net
      ~source_spec:(spec_of ())
  in
  Serve.run ~ticks:12 t;
  let cp = Serve.snapshot t in
  let j = Serve_checkpoint.to_json cp in
  match
    Serve_checkpoint.of_json ~graph:s.Scenario.topology.Topology.graph
      (Result.get_ok (Obs.Json.of_string (Obs.Json.to_string j)))
  with
  | Error m -> Alcotest.fail m
  | Ok cp2 ->
      Alcotest.(check string) "stable through print/parse"
        (Obs.Json.to_string j)
        (Obs.Json.to_string (Serve_checkpoint.to_json cp2))

let test_serve_shed_counters () =
  let s = scenario () in
  let t =
    Serve.create
      (cfg ~capacity:1 ~admission:Admission.Drop_newest ())
      ~topology:s.Scenario.topology ~net:s.Scenario.net
      ~source_spec:
        (Serve_source.Synthetic
           {
             seed = 21;
             rate_per_tick = 3.0;
             flows_per_event = 1;
             tenants = [ "a" ];
             first_event_id = 1;
             first_flow_id = 1_000_000;
           })
  in
  Serve.run ~ticks:10 t;
  Alcotest.(check bool) "pressure sheds" true
    (Admission.total_shed (Serve.admission t) > 0)

(* ------------------------------------------------------------------ *)
(* Telemetry: recording-only, digest-neutral                           *)

let test_serve_telemetry_digest_differential () =
  let plain = serve_uninterrupted ~ticks:27 () in
  let dir = Filename.temp_file "nu_telemetry" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o700;
  let tel =
    Serve_telemetry.create
      {
        Serve_telemetry.default_config with
        Serve_telemetry.metrics_dir = Some dir;
        metrics_every = 5;
        lifecycle_path = Some (Filename.concat dir "lifecycle.jsonl");
        (* A deliberately absurd target: breaches must be recorded
           without affecting one decision. *)
        p99_target_s = Some 1e-9;
      }
  in
  let s = scenario () in
  let t =
    Serve.create ~telemetry:tel (cfg ()) ~topology:s.Scenario.topology
      ~net:s.Scenario.net ~source_spec:(spec_of ())
  in
  Serve.run ~ticks:27 t;
  Serve.complete t;
  Alcotest.(check string)
    "digest identical with full telemetry attached" plain (Serve.digest t);
  ignore (Serve.retire t);
  (* The run actually produced telemetry. *)
  let lc = Serve_telemetry.lifecycle tel in
  Alcotest.(check bool) "stamps recorded" true (Obs.Lifecycle.stamped lc > 0);
  Alcotest.(check bool)
    "expo written" true
    (Serve_telemetry.expo_writes tel > 0);
  Alcotest.(check bool)
    "breaches recorded" true
    (Obs.Slo.breach_count (Serve_telemetry.slo tel) > 0);
  Alcotest.(check bool)
    "fairness saw completions" true
    (Obs.Fairness.jain_index (Serve_telemetry.fairness tel) <> None);
  (* The scrape file is well-formed exposition text. *)
  let prom = Filename.concat dir "metrics.prom" in
  let ic = open_in prom in
  let body = really_input_string ic (in_channel_length ic) in
  close_in ic;
  (match Obs.Expo.validate body with
  | Ok () -> ()
  | Error m -> Alcotest.failf "invalid exposition: %s" m);
  (* The lifecycle stream reads back, every id's stamps in stage order
     ending terminally for completed requests. *)
  (match Obs.Lifecycle.read_jsonl (Filename.concat dir "lifecycle.jsonl") with
  | Error m -> Alcotest.failf "lifecycle read: %s" m
  | Ok { Obs.Lifecycle.read = entries; torn = _ } ->
      Alcotest.(check int)
        "one JSONL line per stamp" (Obs.Lifecycle.stamped lc)
        (List.length entries);
      let terminal =
        List.filter
          (fun e -> Obs.Lifecycle.terminal e.Obs.Lifecycle.stage)
          entries
      in
      Alcotest.(check int)
        "one terminal stamp per completion" (Serve.completed t)
        (List.length terminal));
  Array.iter Sys.remove (Sys.readdir dir |> Array.map (Filename.concat dir));
  Sys.rmdir dir

(* ------------------------------------------------------------------ *)
(* Watchdog: recording-only, alert digest replay-stable                *)

let temp_dir () =
  let d = Filename.temp_file "nu_watch_serve" "" in
  Sys.remove d;
  Sys.mkdir d 0o700;
  d

let rm_rf dir =
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Sys.rmdir dir

(* A watchdog tuned to fire constantly: the backlog-slope threshold is
   below zero, so the detector is firing from the moment its window
   fills and the health machine escalates within a few ticks. The
   stronger the alert storm, the stronger the recording-only proof. *)
let aggressive_watch dir =
  {
    Obs.Watch.default_config with
    Obs.Watch.slope_window = 4;
    max_backlog_slope = -1.0;
    health =
      {
        Obs.Health.warn_after = 2;
        crit_after = 3;
        clear_after = 3;
        recover_after = 3;
      };
    dir;
  }

let watch_telemetry ?metrics_dir dir =
  Serve_telemetry.create
    {
      Serve_telemetry.default_config with
      Serve_telemetry.metrics_dir;
      metrics_every = 5;
      watch = Some (aggressive_watch dir);
    }

let test_serve_watch_digest_differential () =
  let plain = serve_uninterrupted ~ticks:27 () in
  let dir = temp_dir () in
  let tel = watch_telemetry ~metrics_dir:dir (Some dir) in
  let s = scenario () in
  let t =
    Serve.create ~telemetry:tel (cfg ()) ~topology:s.Scenario.topology
      ~net:s.Scenario.net ~source_spec:(spec_of ())
  in
  Serve.run ~ticks:27 t;
  Serve.complete t;
  Alcotest.(check string)
    "digest identical with an alert storm in flight" plain (Serve.digest t);
  let w =
    match Serve_telemetry.watch tel with
    | Some w -> w
    | None -> Alcotest.fail "watcher not attached"
  in
  Alcotest.(check bool) "alerts fired" true (Obs.Watch.alert_total w > 0);
  Alcotest.(check bool)
    "global health escalated" true
    (Obs.Watch.global_state w <> Obs.Health.Ok);
  ignore (Serve.retire t);
  (* The journalled alert stream hashes to the live digest, and the
     exposition carries the nu_alerts_* families. *)
  (match Obs.Watch.read_alerts_digest (Filename.concat dir "alerts.jsonl") with
  | Error m -> Alcotest.failf "read_alerts_digest: %s" m
  | Ok (digest, lines) ->
      Alcotest.(check string) "journal digest" (Obs.Watch.alert_digest w) digest;
      Alcotest.(check int) "journal lines" (Obs.Watch.alert_total w) lines);
  let prom = Filename.concat dir "metrics.prom" in
  let ic = open_in prom in
  let body = really_input_string ic (in_channel_length ic) in
  close_in ic;
  (match Obs.Expo.validate body with
  | Ok () -> ()
  | Error m -> Alcotest.failf "invalid exposition: %s" m);
  Alcotest.(check bool)
    "alert families exposed" true
    (contains body "nu_alerts_total");
  rm_rf dir

let prop_watch_replay_alert_digest =
  (* Crash/restore/replay must reproduce not only the decision digest
     but the watchdog's alert journal digest, bit for bit, for any
     source seed. *)
  QCheck.Test.make ~name:"replay reproduces the live watch alert digest"
    ~count:3
    QCheck.(int_range 20 39)
    (fun seed ->
      let dir_a = temp_dir () and dir_b = temp_dir () in
      let cp = Filename.concat dir_b "cp.json" in
      let jp = Filename.concat dir_b "journal.jsonl" in
      Fun.protect
        ~finally:(fun () ->
          remove_chain cp;
          rm_rf dir_a;
          rm_rf dir_b)
        (fun () ->
          let finish t tel =
            Serve.complete t;
            let w = Option.get (Serve_telemetry.watch tel) in
            let out =
              ( Serve.digest t,
                Obs.Watch.alert_digest w,
                Obs.Watch.alert_total w )
            in
            ignore (Serve.retire t);
            out
          in
          let uninterrupted =
            let tel = watch_telemetry (Some dir_a) in
            let s = scenario () in
            let t =
              Serve.create ~telemetry:tel (cfg ())
                ~topology:s.Scenario.topology ~net:s.Scenario.net
                ~source_spec:(spec_of ~seed ())
            in
            Serve.run ~ticks:20 t;
            finish t tel
          in
          (* Interrupted twin: checkpoint every 8 ticks, journal every
             tick, crash dead after tick 20 (no close, no retire). *)
          let s = scenario () in
          let w = Journal.open_writer jp in
          let t =
            Serve.create ~telemetry:(watch_telemetry (Some dir_b)) ~journal:w
              (cfg ()) ~topology:s.Scenario.topology ~net:s.Scenario.net
              ~source_spec:(spec_of ~seed ())
          in
          Serve.run ~checkpoint_path:cp ~checkpoint_every:8 ~ticks:20 t;
          Journal.close_writer w;
          let topology = Fat_tree.to_topology (Fat_tree.create ~k:4 ()) in
          match
            Serve.restore ~config:(cfg ())
              ~telemetry:(watch_telemetry (Some dir_b))
              ~source_spec:(spec_of ~seed ()) ~topology cp
          with
          | Error m -> Alcotest.failf "restore: %s" m
          | Ok t2 -> (
              match Serve.replay ~journal:jp t2 with
              | Error m -> Alcotest.failf "replay: %s" m
              | Ok _ ->
                  let tel2 = Option.get (Serve.telemetry t2) in
                  uninterrupted = finish t2 tel2)))

let prop_watch_domains_alert_digest =
  (* The probe fan-out width is a wall-clock knob: the watchdog's alert
     stream over a 4-domain run must equal the sequential run's. *)
  QCheck.Test.make ~name:"watch alert digest equal at 1 vs 4 domains" ~count:3
    QCheck.(int_range 40 59)
    (fun seed ->
      let run domains =
        let tel = watch_telemetry None in
        let s = scenario () in
        let t =
          Serve.create ~telemetry:tel
            (cfg ~domains ())
            ~topology:s.Scenario.topology ~net:s.Scenario.net
            ~source_spec:(spec_of ~seed ())
        in
        Serve.run ~ticks:18 t;
        Serve.complete t;
        let w = Option.get (Serve_telemetry.watch tel) in
        let out =
          (Serve.digest t, Obs.Watch.alert_digest w, Obs.Watch.alert_total w)
        in
        ignore (Serve.retire t);
        out
      in
      run 1 = run 4)

(* ------------------------------------------------------------------ *)
(* Checkpoint verification and chain fallback                          *)

(* Mutate one core field of a serialised v2 checkpoint while leaving
   the stored hash alone: the load must refuse it. *)
let test_checkpoint_hash_rejects_mutation () =
  let s = scenario () in
  let t =
    Serve.create (cfg ()) ~topology:s.Scenario.topology ~net:s.Scenario.net
      ~source_spec:(spec_of ())
  in
  Serve.run ~ticks:6 t;
  let j = Serve_checkpoint.to_json (Serve.snapshot t) in
  let mutate = function
    | Obs.Json.Obj fields ->
        Obs.Json.Obj
          (List.map
             (fun (k, v) ->
               if k <> "core" then (k, v)
               else
                 match v with
                 | Obs.Json.Obj core ->
                     ( k,
                       Obs.Json.Obj
                         (List.map
                            (fun (ck, cv) ->
                              match (ck, cv) with
                              | "tick", Obs.Json.Int n ->
                                  (ck, Obs.Json.Int (n + 1))
                              | _ -> (ck, cv))
                            core) )
                 | v -> (k, v))
             fields)
    | j -> j
  in
  (match
     Serve_checkpoint.of_json ~graph:s.Scenario.topology.Topology.graph
       (mutate j)
   with
  | Error m ->
      Alcotest.(check bool) "names the hash" true (contains m "hash")
  | Ok _ -> Alcotest.fail "a mutated core must not verify");
  (* The untouched JSON still loads, so the rejection above is the
     hash check and not an over-eager parser. *)
  match
    Serve_checkpoint.of_json ~graph:s.Scenario.topology.Topology.graph j
  with
  | Error m -> Alcotest.fail m
  | Ok _ -> ()

let corrupt_file path =
  let ic = open_in_bin path in
  let data = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let b = Bytes.of_string data in
  let mid = Bytes.length b / 2 in
  Bytes.set b mid (if Bytes.get b mid = 'X' then 'Y' else 'X');
  let oc = open_out_bin path in
  output_bytes oc b;
  close_out oc

let test_checkpoint_chain_rotation_and_fallback () =
  let dir = Filename.temp_file "nu_chain" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o700;
  let cp = Filename.concat dir "cp.json" in
  let s = scenario () in
  let t =
    Serve.create (cfg ()) ~topology:s.Scenario.topology ~net:s.Scenario.net
      ~source_spec:(spec_of ())
  in
  let graph = s.Scenario.topology.Topology.graph in
  List.iter
    (fun ticks ->
      Serve.run ~ticks t;
      ignore (Serve.save_checkpoint t cp : string))
    [ 3; 3; 3 ];
  (* Three saves: generations 0 (tick 9), 1 (tick 6), 2 (tick 3). *)
  Alcotest.(check (list int)) "three generations on disk" [ 0; 1; 2 ]
    (List.map fst (Serve_checkpoint.Chain.existing cp));
  (match Serve_checkpoint.Chain.fallback ~graph cp with
  | Error m -> Alcotest.fail m
  | Ok (c, depth) ->
      Alcotest.(check int) "newest wins" 9 c.Serve_checkpoint.tick;
      Alcotest.(check int) "depth 0" 0 depth;
      Alcotest.(check int) "chain sequence threaded" 2 c.Serve_checkpoint.seq;
      Alcotest.(check bool) "parent hash recorded" true
        (c.Serve_checkpoint.parent <> None));
  (* Damage the newest generation: fallback must land on its parent. *)
  corrupt_file cp;
  (match Serve_checkpoint.Chain.fallback ~graph cp with
  | Error m -> Alcotest.fail m
  | Ok (c, depth) ->
      Alcotest.(check int) "older ancestor restored" 6 c.Serve_checkpoint.tick;
      Alcotest.(check int) "depth 1" 1 depth);
  (* Damage every generation: fallback refuses, naming each failure. *)
  corrupt_file (Serve_checkpoint.Chain.gen_path cp 1);
  corrupt_file (Serve_checkpoint.Chain.gen_path cp 2);
  (match Serve_checkpoint.Chain.fallback ~graph cp with
  | Error m ->
      Alcotest.(check bool) "names the chain" true
        (contains m "no verifiable checkpoint")
  | Ok _ -> Alcotest.fail "no generation should verify");
  remove_chain cp;
  Sys.rmdir dir

(* ------------------------------------------------------------------ *)
(* Supervisor: crash storms must change nothing about the decisions    *)

let storm_dir () =
  let dir = Filename.temp_file "nu_storm" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o700;
  dir

let cleanup_storm_dir dir =
  remove_segments (Filename.concat dir "journal.wal");
  remove_chain (Filename.concat dir "cp.json");
  Sys.rmdir dir

(* Failure reasons quote file paths, so storm determinism is relative
   to one on-disk location: reruns share [dir], with the previous
   run's store swept first. *)
let run_storm ?sup ~dir ~fault_seed ~ticks () =
  let s = scenario () in
  remove_segments (Filename.concat dir "journal.wal");
  remove_chain (Filename.concat dir "cp.json");
  let fault =
    Store_fault.create
      (Store_fault.generate
         ~config:
           { Store_fault.default_config with n_faults = 8; ops_span = 90 }
         ~seed:fault_seed ())
  in
  Supervisor.run ?sup ~fault ~jitter_seed:7 ~serve_config:(cfg ())
    ~source_spec:(spec_of ()) ~topology:s.Scenario.topology
    ~fresh_net:(fun () -> (scenario ()).Scenario.net)
    ~journal_path:(Filename.concat dir "journal.wal")
    ~checkpoint_path:(Filename.concat dir "cp.json")
    ~ticks ()

let test_supervisor_storm_digest_differential () =
  let expected = serve_uninterrupted ~ticks:20 () in
  let dir = storm_dir () in
  List.iter
    (fun fault_seed ->
      let o = run_storm ~dir ~fault_seed ~ticks:20 () in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d survives" fault_seed)
        false o.Supervisor.gave_up;
      Alcotest.(check bool)
        (Printf.sprintf "seed %d actually crashed" fault_seed)
        true
        (o.Supervisor.restarts > 0);
      Alcotest.(check (option string))
        (Printf.sprintf "seed %d digest equals uninterrupted" fault_seed)
        (Some expected) o.Supervisor.digest;
      Alcotest.(check string)
        (Printf.sprintf "seed %d recovery digest is the event log's" fault_seed)
        (Supervisor.log_digest o.Supervisor.events)
        o.Supervisor.recovery_digest;
      (* Replaying the identical storm reproduces the identical
         supervision history, bit for bit. *)
      let o2 = run_storm ~dir ~fault_seed ~ticks:20 () in
      Alcotest.(check string)
        (Printf.sprintf "seed %d storm is deterministic" fault_seed)
        o.Supervisor.recovery_digest o2.Supervisor.recovery_digest;
      Alcotest.(check int)
        (Printf.sprintf "seed %d restart count is deterministic" fault_seed)
        o.Supervisor.restarts o2.Supervisor.restarts)
    [ 5; 6 ];
  cleanup_storm_dir dir

let test_supervisor_cold_start () =
  let expected = serve_uninterrupted ~ticks:20 () in
  (* One kill before the first checkpoint exists: recovery finds no
     verifiable generation and must cold-start from segment 0. *)
  let s = scenario () in
  let dir = storm_dir () in
  let fault =
    Store_fault.create
      [ { Store_fault.at_op = 12; kind = Store_fault.Kill; knob = 0.3 } ]
  in
  let outcome =
    Supervisor.run ~fault ~jitter_seed:3 ~serve_config:(cfg ())
      ~source_spec:(spec_of ()) ~topology:s.Scenario.topology
      ~fresh_net:(fun () -> (scenario ()).Scenario.net)
      ~journal_path:(Filename.concat dir "journal.wal")
      ~checkpoint_path:(Filename.concat dir "cp.json")
      ~ticks:20 ()
  in
  cleanup_storm_dir dir;
  Alcotest.(check bool) "took the cold-start path" true
    (List.exists
       (function Supervisor.Cold_start _ -> true | _ -> false)
       outcome.Supervisor.events);
  Alcotest.(check (option string)) "digest equals uninterrupted"
    (Some expected) outcome.Supervisor.digest

let suite =
  [
    ("admission block defers", `Quick, test_admission_block);
    ("admission drop-newest", `Quick, test_admission_drop_newest);
    ("admission drop-oldest", `Quick, test_admission_drop_oldest);
    ("admission tenant quota", `Quick, test_admission_tenant_quota);
    ("admission fair drain", `Quick, test_admission_fair_drain);
    ("admission policy names", `Quick, test_admission_policy_names);
    ("admission freeze/thaw", `Quick, test_admission_freeze_thaw);
    ("journal round-trip", `Quick, test_journal_roundtrip);
    ("journal committed ticks", `Quick, test_journal_committed_ticks);
    ( "journal truncation at every offset",
      `Quick,
      test_journal_truncation_every_offset );
    QCheck_alcotest.to_alcotest prop_journal_bit_flip;
    ("journal last commit", `Quick, test_journal_last_commit);
    ( "journal segment rotation + append",
      `Quick,
      test_journal_segment_rotation_and_append );
    ("source deterministic", `Quick, test_source_deterministic);
    ("source freeze/thaw", `Quick, test_source_freeze_thaw);
    ("net freeze/thaw", `Quick, test_net_freeze_thaw);
    ("stepper equals batch", `Quick, test_stepper_equals_batch);
    ("stepper freeze/thaw mid-run", `Quick, test_stepper_freeze_thaw_mid_run);
    ( "checkpoint/restore digest differential",
      `Quick,
      test_serve_checkpoint_restore_differential );
    ( "crash recovery under faults",
      `Quick,
      test_serve_crash_recovery_under_faults );
    ( "restore rejects config mismatch",
      `Quick,
      test_serve_restore_rejects_config_mismatch );
    ( "checkpoint json round-trip",
      `Quick,
      test_serve_checkpoint_json_roundtrip );
    ("overload sheds", `Quick, test_serve_shed_counters);
    ( "telemetry digest differential",
      `Quick,
      test_serve_telemetry_digest_differential );
    ( "watch digest differential",
      `Quick,
      test_serve_watch_digest_differential );
    QCheck_alcotest.to_alcotest prop_watch_replay_alert_digest;
    QCheck_alcotest.to_alcotest prop_watch_domains_alert_digest;
    ( "checkpoint hash rejects mutation",
      `Quick,
      test_checkpoint_hash_rejects_mutation );
    ( "checkpoint chain rotation + fallback",
      `Quick,
      test_checkpoint_chain_rotation_and_fallback );
    ( "supervisor storm digest differential",
      `Quick,
      test_supervisor_storm_digest_differential );
    ("supervisor cold start", `Quick, test_supervisor_cold_start);
  ]
