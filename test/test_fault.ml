(* nu_fault: fault schedules, retry policy, recovery log, invariant
   checker, the injector, and the fault-aware engine loop. *)

let topo4 () = Fat_tree.to_topology (Fat_tree.create ~k:4 ())

let flow ?(id = 0) ?(demand = 50.0) ?(duration = 10.0) ?(arrival = 0.0) src dst
    =
  Flow_record.v ~id ~src ~dst ~size_mbit:(demand *. duration)
    ~duration_s:duration ~arrival_s:arrival

let loaded_net () =
  let net = Net_state.create (topo4 ()) in
  let next = ref 1000 in
  for src = 0 to 7 do
    let dst = 15 - src in
    let r = flow ~id:!next ~demand:300.0 src dst in
    incr next;
    match Routing.select net r with
    | Some p -> ( match Net_state.place net r p with Ok () -> () | Error _ -> ())
    | None -> ()
  done;
  net

(* A deterministic workload of [n] events of [m] small flows each. *)
let workload ?(n = 6) ?(m = 5) () =
  let next = ref 0 in
  List.init n (fun i ->
      let flows =
        List.init m (fun j ->
            let id = !next in
            incr next;
            let src = (i + j) mod 16 in
            let dst = (src + 3 + j) mod 16 in
            let dst = if dst = src then (dst + 1) mod 16 else dst in
            flow ~id ~demand:(10.0 +. float_of_int (j * 5)) src dst)
      in
      Event.of_spec { Event_gen.event_id = i; arrival_s = 0.0; flows })

(* A fabric (switch-to-switch) edge crossed by some placed flow. *)
let fabric_edge_of_some_flow net =
  let topo = Net_state.topology net in
  let found = ref None in
  Net_state.iter_flows net (fun p ->
      if !found = None then
        List.iter
          (fun (e : Graph.edge) ->
            if
              !found = None
              && (not (Topology.is_host topo e.Graph.src))
              && not (Topology.is_host topo e.Graph.dst)
            then found := Some e.Graph.id)
          (Path.edges p.Net_state.path));
  match !found with Some e -> e | None -> Alcotest.fail "no fabric edge"

(* ------------------------------------------------------------------ *)
(* Fault_model                                                         *)

let test_schedule_deterministic () =
  let topo = topo4 () in
  let a = Fault_model.generate ~seed:5 topo in
  let b = Fault_model.generate ~seed:5 topo in
  Alcotest.(check bool) "same seed same schedule" true (a = b);
  let c = Fault_model.generate ~seed:6 topo in
  Alcotest.(check bool) "different seed differs" true (a <> c);
  Alcotest.(check bool) "non-empty" true (List.length a > 0)

let test_schedule_sorted_and_paired () =
  let topo = topo4 () in
  let s = Fault_model.generate ~seed:11 topo in
  let rec sorted = function
    | (a : Fault_model.fault) :: (b :: _ as rest) ->
        a.Fault_model.at_s <= b.Fault_model.at_s && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "sorted by at_s" true (sorted s);
  let count p = List.length (List.filter p s) in
  Alcotest.(check int) "every link down has its repair"
    (count (fun f ->
         match f.Fault_model.action with Fault_model.Link_down _ -> true | _ -> false))
    (count (fun f ->
         match f.Fault_model.action with Fault_model.Link_up _ -> true | _ -> false));
  Alcotest.(check int) "every switch down has its repair"
    (count (fun f ->
         match f.Fault_model.action with
         | Fault_model.Switch_down _ -> true
         | _ -> false))
    (count (fun f ->
         match f.Fault_model.action with Fault_model.Switch_up _ -> true | _ -> false));
  Alcotest.(check int) "every degradation has its restore"
    (count (fun f ->
         match f.Fault_model.action with Fault_model.Degrade _ -> true | _ -> false))
    (count (fun f ->
         match f.Fault_model.action with Fault_model.Restore _ -> true | _ -> false))

let test_install_hazard () =
  let call = Fault_model.install_hazard ~seed:3 ~drop_rate:0.3 ~delay_rate:0.3 ~delay_s:0.01 in
  for switch = 0 to 19 do
    for flow_id = 0 to 19 do
      Alcotest.(check bool) "pure (order-independent)" true
        (call ~switch ~flow_id = call ~switch ~flow_id)
    done
  done;
  let clean =
    Fault_model.install_hazard ~seed:3 ~drop_rate:0.0 ~delay_rate:0.0
      ~delay_s:0.01 ~switch:4 ~flow_id:9
  in
  Alcotest.(check bool) "zero rates never fire" true (clean = None);
  let always =
    Fault_model.install_hazard ~seed:3 ~drop_rate:1.0 ~delay_rate:0.0
      ~delay_s:0.01 ~switch:4 ~flow_id:9
  in
  Alcotest.(check bool) "rate one always drops" true (always = Some `Drop)

(* ------------------------------------------------------------------ *)
(* Retry_policy                                                        *)

let test_retry_policy () =
  let p = { Retry_policy.max_attempts = 3; base_backoff_s = 0.1; multiplier = 2.0 } in
  Alcotest.(check (float 1e-12)) "first backoff" 0.1 (Retry_policy.backoff_s p ~attempt:1);
  Alcotest.(check (float 1e-12)) "doubles" 0.4 (Retry_policy.backoff_s p ~attempt:3);
  (match Retry_policy.decide p ~attempt:2 with
  | `Retry_after b -> Alcotest.(check (float 1e-12)) "retry backoff" 0.2 b
  | `Degrade -> Alcotest.fail "attempt 2 of 3 must retry");
  (match Retry_policy.decide p ~attempt:3 with
  | `Degrade -> ()
  | `Retry_after _ -> Alcotest.fail "attempt 3 of 3 must degrade");
  Alcotest.(check bool) "invalid rejected" true
    (Result.is_error (Retry_policy.validate { p with Retry_policy.max_attempts = 0 }))

(* ------------------------------------------------------------------ *)
(* Recovery                                                            *)

let test_recovery_digest_and_stats () =
  let r = Recovery.create () in
  Alcotest.(check string) "empty log is the FNV basis" "cbf29ce484222325"
    (Recovery.digest r);
  let before = Obs.Counters.snapshot () in
  Recovery.record r (Recovery.Fault_applied { at_s = 1.0; tag = 1; subject = 3 });
  Recovery.record r (Recovery.Migration_aborted { event_id = 7; at_s = 1.0; attempt = 1 });
  Recovery.record r (Recovery.Retry_scheduled { event_id = 7; ready_s = 1.05; attempt = 1 });
  Recovery.record r (Recovery.Event_degraded { event_id = 7; at_s = 2.0 });
  Recovery.record r (Recovery.Flow_evacuated { flow_id = 9; at_s = 1.0; dropped = true });
  Recovery.record r (Recovery.Invariant_violated { at_s = 2.0; name = "blackhole" });
  let d = Obs.Counters.diff ~before ~after:(Obs.Counters.snapshot ()) in
  Alcotest.(check int) "faults counter" 1 (Obs.Counters.value d Obs.Counters.Faults_injected);
  Alcotest.(check int) "aborts counter" 1 (Obs.Counters.value d Obs.Counters.Migrations_aborted);
  Alcotest.(check int) "retries counter" 1 (Obs.Counters.value d Obs.Counters.Retries);
  Alcotest.(check int) "degraded counter" 1 (Obs.Counters.value d Obs.Counters.Events_degraded);
  let s = Recovery.stats r in
  Alcotest.(check int) "stats faults" 1 s.Recovery.faults_applied;
  Alcotest.(check int) "stats aborts" 1 s.Recovery.aborts;
  Alcotest.(check int) "stats retries" 1 s.Recovery.retries;
  Alcotest.(check int) "stats degraded" 1 s.Recovery.degraded;
  Alcotest.(check int) "stats dropped" 1 s.Recovery.dropped;
  Alcotest.(check int) "stats violations" 1 s.Recovery.violations;
  (* Digest is order-sensitive: same decisions, different order. *)
  let r2 = Recovery.create () in
  Recovery.record r2 (Recovery.Migration_aborted { event_id = 7; at_s = 1.0; attempt = 1 });
  Recovery.record r2 (Recovery.Fault_applied { at_s = 1.0; tag = 1; subject = 3 });
  Alcotest.(check bool) "order-sensitive digest" true
    (Recovery.digest r <> Recovery.digest r2)

(* ------------------------------------------------------------------ *)
(* Invariant                                                           *)

let test_invariant_detects_blackhole () =
  let net = loaded_net () in
  Alcotest.(check int) "clean state" 0 (List.length (Invariant.check net));
  let e = fabric_edge_of_some_flow net in
  (* Disable without evacuating: a synthetic blackhole. *)
  Net_state.disable_edge net e;
  let vs = Invariant.check net in
  Alcotest.(check bool) "blackhole found" true
    (List.exists (fun (v : Invariant.violation) -> v.Invariant.name = "blackhole") vs)

let test_invariant_detects_capacity () =
  let net = loaded_net () in
  let e = fabric_edge_of_some_flow net in
  let cap = (Graph.edge (Net_state.graph net) e).Graph.capacity in
  (* Degrade below current usage without shedding: residual goes negative. *)
  Net_state.degrade_edge net e ~lost_mbps:cap;
  let vs = Invariant.check net in
  Alcotest.(check bool) "capacity violation found" true
    (List.exists (fun (v : Invariant.violation) -> v.Invariant.name = "capacity") vs);
  Net_state.restore_edge_capacity net e

(* ------------------------------------------------------------------ *)
(* Injector                                                            *)

let test_injector_link_down_evacuates () =
  let net = loaded_net () in
  let e = fabric_edge_of_some_flow net in
  let inj =
    Injector.create
      [ { Fault_model.at_s = 0.0; action = Fault_model.Link_down e } ]
  in
  let n = Injector.apply_due inj net ~now:0.0 in
  Alcotest.(check int) "one fault applied" 1 n;
  Alcotest.(check bool) "edge disabled" true (Net_state.edge_disabled net e);
  Alcotest.(check int) "no violations after evacuation" 0
    (List.length (Injector.check_now inj net ~now:0.0));
  let s = Recovery.stats (Injector.recovery inj) in
  Alcotest.(check bool) "evacuations recorded" true
    (s.Recovery.evacuated + s.Recovery.dropped > 0);
  Alcotest.(check bool) "faults not yet due stay pending" true
    (Injector.next_due_s inj = None)

let test_injector_switch_down_then_up () =
  let net = loaded_net () in
  let topo = Net_state.topology net in
  let v =
    let sw = ref (-1) in
    let nodes = Graph.node_count (Net_state.graph net) in
    for node = 0 to nodes - 1 do
      if !sw < 0 && not (Topology.is_host topo node) then sw := node
    done;
    !sw
  in
  let inj =
    Injector.create
      [
        { Fault_model.at_s = 0.0; action = Fault_model.Switch_down v };
        { Fault_model.at_s = 5.0; action = Fault_model.Switch_up v };
      ]
  in
  ignore (Injector.apply_due inj net ~now:0.0);
  let g = Net_state.graph net in
  List.iter
    (fun (e : Graph.edge) ->
      Alcotest.(check bool) "incident edge disabled" true
        (Net_state.edge_disabled net e.Graph.id))
    (Graph.out_edges g v);
  Alcotest.(check int) "consistent after switch loss" 0
    (List.length (Injector.check_now inj net ~now:0.0));
  ignore (Injector.apply_due inj net ~now:5.0);
  List.iter
    (fun (e : Graph.edge) ->
      Alcotest.(check bool) "incident edge re-enabled" false
        (Net_state.edge_disabled net e.Graph.id))
    (Graph.out_edges g v)

let test_injector_degrade_sheds () =
  let net = loaded_net () in
  let e = fabric_edge_of_some_flow net in
  let cap = (Graph.edge (Net_state.graph net) e).Graph.capacity in
  let inj =
    Injector.create
      [
        {
          Fault_model.at_s = 0.0;
          action = Fault_model.Degrade { edge = e; lost_mbps = cap *. 0.9 };
        };
      ]
  in
  ignore (Injector.apply_due inj net ~now:0.0);
  Alcotest.(check bool) "residual non-negative after shedding" true
    (Net_state.residual net e >= -1e-6);
  Alcotest.(check int) "consistent after degradation" 0
    (List.length (Injector.check_now inj net ~now:0.0))

(* ------------------------------------------------------------------ *)
(* Fault-aware engine                                                  *)

(* A stable fingerprint of everything a run decided. *)
let run_fingerprint (r : Engine.run_result) =
  let b = Buffer.create 256 in
  Buffer.add_string b (Printf.sprintf "rounds=%d units=%d " r.Engine.rounds r.Engine.total_plan_units);
  Array.iter
    (fun (er : Engine.event_result) ->
      Buffer.add_string b
        (Printf.sprintf "(%d %.9f %.9f %.3f %d %b)" er.Engine.event_id
           er.Engine.start_s er.Engine.completion_s er.Engine.cost_mbit
           er.Engine.failed_items er.Engine.co_scheduled))
    r.Engine.events;
  List.iter
    (fun (ri : Engine.round_info) ->
      Buffer.add_string b
        (Printf.sprintf "[%.9f %s %d]" ri.Engine.round_start_s
           (String.concat "," (List.map string_of_int ri.Engine.executed))
           ri.Engine.round_units))
    r.Engine.rounds_log;
  Buffer.contents b

let test_engine_empty_schedule_identical () =
  let events = workload () in
  let base =
    Engine.run ~seed:3 ~net:(loaded_net ()) ~events (Policy.Plmtf { alpha = 2 })
  in
  let inj = Injector.create [] in
  let faulted =
    Engine.run ~seed:3 ~injector:inj ~net:(loaded_net ()) ~events
      (Policy.Plmtf { alpha = 2 })
  in
  Alcotest.(check string) "bit-identical decisions"
    (run_fingerprint base) (run_fingerprint faulted);
  Alcotest.(check string) "recovery log untouched" "cbf29ce484222325"
    (Recovery.digest (Injector.recovery inj))

let chaos_run ?(retry = Retry_policy.default) ~fault_seed policy =
  let net = loaded_net () in
  (* Size the fault horizon to the run itself: draw the schedule inside
     the fault-free makespan so faults actually land mid-run. *)
  let baseline =
    Engine.run ~seed:3 ~net:(Net_state.copy net) ~events:(workload ~n:8 ())
      policy
  in
  let horizon = baseline.Engine.makespan_s *. 0.8 in
  let schedule =
    Fault_model.generate
      ~config:
        {
          Fault_model.default_config with
          Fault_model.rate_per_s = 6.0 /. horizon;
          horizon_s = horizon;
          repair_s = horizon /. 4.0;
        }
      ~seed:fault_seed (Net_state.topology net)
  in
  let inj = Injector.create ~retry schedule in
  let run =
    Engine.run ~seed:3 ~injector:inj ~net ~events:(workload ~n:8 ()) policy
  in
  (run, inj)

let test_engine_chaos_deterministic () =
  let run_a, inj_a = chaos_run ~fault_seed:21 (Policy.Plmtf { alpha = 2 }) in
  let run_b, inj_b = chaos_run ~fault_seed:21 (Policy.Plmtf { alpha = 2 }) in
  Alcotest.(check string) "same recovery digest"
    (Recovery.digest (Injector.recovery inj_a))
    (Recovery.digest (Injector.recovery inj_b));
  Alcotest.(check string) "same run decisions" (run_fingerprint run_a)
    (run_fingerprint run_b)

let test_engine_chaos_robust () =
  List.iter
    (fun policy ->
      List.iter
        (fun fault_seed ->
          let run, inj = chaos_run ~fault_seed policy in
          Alcotest.(check int) "zero invariant violations" 0
            (Injector.violations inj);
          (* Degraded or retried, every event still completes and is
             reported — nothing is silently dropped. *)
          Alcotest.(check int) "all events reported" 8
            (Array.length run.Engine.events);
          let s = Recovery.stats (Injector.recovery inj) in
          Alcotest.(check bool) "faults actually applied" true
            (s.Recovery.faults_applied > 0))
        [ 21; 22; 23 ])
    [ Policy.Fifo; Policy.Plmtf { alpha = 2 } ]

let test_engine_abort_then_retry () =
  let net = loaded_net () in
  let e = fabric_edge_of_some_flow net in
  (* One event; the fault lands just after the round begins, so the
     in-flight round must abort. With two attempts allowed, the retry
     then completes the event. *)
  let inj =
    Injector.create
      ~retry:{ Retry_policy.max_attempts = 2; base_backoff_s = 0.05; multiplier = 2.0 }
      [ { Fault_model.at_s = 1e-6; action = Fault_model.Link_down e } ]
  in
  let run =
    Engine.run ~seed:3 ~injector:inj ~net ~events:(workload ~n:1 ()) Policy.Fifo
  in
  let s = Recovery.stats (Injector.recovery inj) in
  Alcotest.(check int) "one abort" 1 s.Recovery.aborts;
  Alcotest.(check int) "one retry" 1 s.Recovery.retries;
  Alcotest.(check int) "no degradation" 0 s.Recovery.degraded;
  Alcotest.(check int) "event completed" 1 (Array.length run.Engine.events);
  Alcotest.(check int) "no violations" 0 (Injector.violations inj);
  Alcotest.(check bool) "completion after backoff" true
    (run.Engine.events.(0).Engine.completion_s > 0.05)

let test_engine_abort_then_degrade () =
  let net = loaded_net () in
  let e = fabric_edge_of_some_flow net in
  let inj =
    Injector.create
      ~retry:{ Retry_policy.max_attempts = 1; base_backoff_s = 0.05; multiplier = 2.0 }
      [ { Fault_model.at_s = 1e-6; action = Fault_model.Link_down e } ]
  in
  let run =
    Engine.run ~seed:3 ~injector:inj ~net ~events:(workload ~n:1 ()) Policy.Fifo
  in
  let s = Recovery.stats (Injector.recovery inj) in
  Alcotest.(check int) "one abort" 1 s.Recovery.aborts;
  Alcotest.(check int) "no retry left" 0 s.Recovery.retries;
  Alcotest.(check int) "degraded instead" 1 s.Recovery.degraded;
  Alcotest.(check int) "event still reported" 1 (Array.length run.Engine.events);
  Alcotest.(check int) "no violations" 0 (Injector.violations inj)

let test_engine_flow_level_faults () =
  let net = loaded_net () in
  let e = fabric_edge_of_some_flow net in
  let inj =
    Injector.create
      [ { Fault_model.at_s = 0.0; action = Fault_model.Link_down e } ]
  in
  let run =
    Engine.run ~seed:3 ~injector:inj ~net ~events:(workload ~n:2 ())
      (Policy.Flow_level Policy.Round_robin)
  in
  let s = Recovery.stats (Injector.recovery inj) in
  Alcotest.(check int) "fault applied at item boundary" 1 s.Recovery.faults_applied;
  Alcotest.(check int) "no violations" 0 (Injector.violations inj);
  Alcotest.(check int) "both events reported" 2 (Array.length run.Engine.events)

(* ------------------------------------------------------------------ *)
(* Store_fault: the storage-fault injector                             *)

let plan_str p = Obs.Json.to_string (Store_fault.plan_to_json p)

let test_store_fault_plan_deterministic () =
  List.iter
    (fun seed ->
      let a = Store_fault.generate ~seed () in
      let b = Store_fault.generate ~seed () in
      Alcotest.(check string)
        (Printf.sprintf "seed %d reproduces" seed)
        (plan_str a) (plan_str b);
      (* Sorted by operation index. *)
      ignore
        (List.fold_left
           (fun prev f ->
             Alcotest.(check bool) "sorted by at_op" true
               (f.Store_fault.at_op >= prev);
             f.Store_fault.at_op)
           0 a);
      (* Every acknowledged-but-lost fsync is followed by a kill, so the
         loss actually materialises during the run. *)
      List.iter
        (fun f ->
          if f.Store_fault.kind = Store_fault.Fsync_loss then
            Alcotest.(check bool) "fsync loss paired with a later kill" true
              (List.exists
                 (fun g ->
                   g.Store_fault.kind = Store_fault.Kill
                   && g.Store_fault.at_op > f.Store_fault.at_op)
                 a))
        a)
    [ 1; 2; 3; 4; 5; 6; 7; 8 ];
  Alcotest.(check bool) "different seeds differ" false
    (plan_str (Store_fault.generate ~seed:1 ())
    = plan_str (Store_fault.generate ~seed:2 ()))

let test_store_fault_verdicts () =
  (* ENOSPC: the append fails without dying. *)
  let f =
    Store_fault.create
      [ { Store_fault.at_op = 1; kind = Store_fault.Enospc; knob = 0.0 } ]
  in
  Store_fault.register f ~path:"x" ~size:0;
  (match Store_fault.on_append f ~path:"x" "0123456789" with
  | exception Store_fault.Store_error m ->
      Alcotest.(check bool) "names enospc" true
        (String.lowercase_ascii m |> fun s ->
         let rec go i =
           i + 6 <= String.length s && (String.sub s i 6 = "enospc" || go (i + 1))
         in
         go 0)
  | _ -> Alcotest.fail "expected Store_error");
  Alcotest.(check int) "fired once" 1 (Store_fault.fired_count f);
  (* Torn write: the verdict is a strict prefix the caller must persist
     before crashing. *)
  let f =
    Store_fault.create
      [ { Store_fault.at_op = 1; kind = Store_fault.Torn_write; knob = 0.5 } ]
  in
  Store_fault.register f ~path:"x" ~size:0;
  match Store_fault.on_append f ~path:"x" "0123456789" with
  | Store_fault.Torn prefix ->
      Alcotest.(check bool) "shorter than the buffer" true
        (String.length prefix < 10);
      Alcotest.(check string) "a prefix of the buffer" prefix
        (String.sub "0123456789" 0 (String.length prefix));
      (* The paired crash raises. *)
      (try Store_fault.crash f ~reason:"torn write" with
      | Store_fault.Crash _ -> ())
  | _ -> Alcotest.fail "expected Torn verdict"

(* Delayed fsync loss, end to end on a real file: acknowledged sync,
   bytes on disk, crash — and the file is rolled back to its last
   durable length. *)
let test_store_fault_fsync_loss_truncates () =
  let path = Filename.temp_file "nu_store_fault" ".bin" in
  let f =
    Store_fault.create
      [ { Store_fault.at_op = 2; kind = Store_fault.Fsync_loss; knob = 0.0 } ]
  in
  Store_fault.register f ~path ~size:0;
  (match Store_fault.on_append f ~path "hello world" with
  | Store_fault.Write bytes ->
      let oc = open_out_bin path in
      output_string oc bytes;
      close_out oc;
      Store_fault.note_written f ~path (String.length bytes)
  | Store_fault.Torn _ -> Alcotest.fail "no torn write scheduled");
  (* Op 2: the sync is acknowledged but lost. *)
  Store_fault.on_sync f ~path;
  Alcotest.(check int) "loss fired" 1 (Store_fault.fired_count f);
  (try Store_fault.crash f ~reason:"test kill" with Store_fault.Crash _ -> ());
  let ic = open_in_bin path in
  let survived = in_channel_length ic in
  close_in ic;
  Alcotest.(check int) "bytes since the durable mark vanish" 0 survived;
  Sys.remove path

let suite =
  [
    Alcotest.test_case "schedule deterministic" `Quick test_schedule_deterministic;
    Alcotest.test_case "schedule sorted+paired" `Quick test_schedule_sorted_and_paired;
    Alcotest.test_case "install hazard" `Quick test_install_hazard;
    Alcotest.test_case "retry policy" `Quick test_retry_policy;
    Alcotest.test_case "recovery digest+stats" `Quick test_recovery_digest_and_stats;
    Alcotest.test_case "invariant blackhole" `Quick test_invariant_detects_blackhole;
    Alcotest.test_case "invariant capacity" `Quick test_invariant_detects_capacity;
    Alcotest.test_case "injector link down" `Quick test_injector_link_down_evacuates;
    Alcotest.test_case "injector switch down/up" `Quick test_injector_switch_down_then_up;
    Alcotest.test_case "injector degrade sheds" `Quick test_injector_degrade_sheds;
    Alcotest.test_case "engine empty schedule" `Quick test_engine_empty_schedule_identical;
    Alcotest.test_case "engine chaos deterministic" `Quick test_engine_chaos_deterministic;
    Alcotest.test_case "engine chaos robust" `Quick test_engine_chaos_robust;
    Alcotest.test_case "engine abort then retry" `Quick test_engine_abort_then_retry;
    Alcotest.test_case "engine abort then degrade" `Quick test_engine_abort_then_degrade;
    Alcotest.test_case "engine flow-level faults" `Quick test_engine_flow_level_faults;
    Alcotest.test_case "store-fault plan deterministic" `Quick
      test_store_fault_plan_deterministic;
    Alcotest.test_case "store-fault verdicts" `Quick test_store_fault_verdicts;
    Alcotest.test_case "store-fault fsync loss truncates" `Quick
      test_store_fault_fsync_loss_truncates;
  ]
