(* nu_shard: partition map, weighted-fair apportion, coordinator 2PC
   and the sharded fabric.

   The load-bearing properties are differential: a one-shard fabric
   must reproduce the single-controller Serve digest bit for bit; an
   N-shard fabric that loses a shard's WAL mid-run must recover to the
   uninterrupted run's digest; a coordinator abort must leave the
   fabric exactly as it found it. *)

let dummy_flow ?(src = 0) ?dst id =
  let dst = match dst with Some d -> d | None -> (src + 1) mod 16 in
  Flow_record.v ~id ~src ~dst ~size_mbit:1.0 ~duration_s:1.0 ~arrival_s:0.0

let install_event ~src id =
  {
    Event.id;
    arrival_s = 0.0;
    kind = Event.Additions;
    work = [ Event.Install (dummy_flow ~src (100 + id)) ];
  }

let reroute_event ~flow_id id =
  {
    Event.id;
    arrival_s = 0.0;
    kind = Event.Switch_upgrade 0;
    work = [ Event.Reroute { flow_id; avoid = Event.Unconstrained } ];
  }

(* ------------------------------------------------------------------ *)
(* Partition map                                                       *)

let test_partition_shape () =
  let p = Shard_partition.create ~host_count:16 ~regions:8 ~shards:4 in
  Alcotest.(check int) "regions" 8 (Shard_partition.regions p);
  Alcotest.(check int) "shards" 4 (Shard_partition.shards p);
  (* Every shard owns at least one region; together they own all. *)
  let owned = List.init 4 (Shard_partition.owned p) in
  List.iter (fun n -> Alcotest.(check bool) "owns >= 1" true (n >= 1)) owned;
  Alcotest.(check int) "total" 8 (List.fold_left ( + ) 0 owned);
  (* Contiguous balanced blocks: region r -> r * shards / regions. *)
  for r = 0 to 7 do
    Alcotest.(check int)
      (Printf.sprintf "region %d" r)
      (r * 4 / 8)
      (Shard_partition.shard_of_region p r)
  done

let prop_partition_total =
  QCheck.Test.make ~name:"routing is total: every event has one home"
    ~count:200
    QCheck.(triple (int_bound 15) (int_bound 1_000_000) bool)
    (fun (src, fid, reroute) ->
      let p = Shard_partition.create ~host_count:16 ~regions:8 ~shards:3 in
      let ev =
        if reroute then reroute_event ~flow_id:fid (1 + fid)
        else install_event ~src (1 + src)
      in
      let home = Shard_partition.home_of_event p ev in
      home >= 0 && home < 3)

let prop_partition_stable =
  QCheck.Test.make
    ~name:"routing is stable: arrival history never changes a home"
    ~count:100
    QCheck.(pair (int_bound 15) (small_list (int_bound 7)))
    (fun (src, arrivals) ->
      let p = Shard_partition.create ~host_count:16 ~regions:8 ~shards:4 in
      let ev = install_event ~src 1 in
      let before = Shard_partition.home_of_event p ev in
      List.iter (fun r -> Shard_partition.note_arrival p ~region:r) arrivals;
      Shard_partition.home_of_event p ev = before)

let prop_partition_order_independent =
  QCheck.Test.make
    ~name:"routing is order-independent: any query order, same homes"
    ~count:100
    QCheck.(small_list (int_bound 15))
    (fun srcs ->
      let events = List.mapi (fun i s -> install_event ~src:s (1 + i)) srcs in
      let p = Shard_partition.create ~host_count:16 ~regions:8 ~shards:4 in
      let forward = List.map (Shard_partition.home_of_event p) events in
      let backward =
        List.rev (List.map (Shard_partition.home_of_event p) (List.rev events))
      in
      forward = backward)

let test_partition_move_freeze_thaw () =
  let p = Shard_partition.create ~host_count:16 ~regions:8 ~shards:4 in
  Shard_partition.note_arrival p ~region:0;
  Shard_partition.note_arrival p ~region:0;
  Shard_partition.move p ~region:0 ~to_shard:3;
  Alcotest.(check int) "moved" 3 (Shard_partition.shard_of_region p 0);
  Alcotest.(check int) "generation" 1 (Shard_partition.generation p);
  let json =
    Shard_partition.frozen_to_json (Shard_partition.freeze p)
    |> Nu_obs.Json.to_string
  in
  match Nu_obs.Json.of_string json with
  | Error m -> Alcotest.fail m
  | Ok j -> (
      match Shard_partition.frozen_of_json j with
      | Error m -> Alcotest.fail m
      | Ok fz ->
          let q = Shard_partition.thaw ~host_count:16 ~regions:8 ~shards:4 fz in
          Alcotest.(check int) "thawed assignment" 3
            (Shard_partition.shard_of_region q 0);
          Alcotest.(check int) "thawed generation" 1
            (Shard_partition.generation q))

(* ------------------------------------------------------------------ *)
(* Weighted-fair apportion                                             *)

let prop_apportion_sum_and_cap =
  QCheck.Test.make
    ~name:"apportion: sum = min budget backlog, quota <= backlog" ~count:300
    QCheck.(pair (int_bound 64) (list_of_size Gen.(1 -- 8) (int_bound 40)))
    (fun (budget, backlogs) ->
      let backlogs = Array.of_list backlogs in
      let quota = Shard_fabric.apportion ~budget ~backlogs in
      let total_backlog = Array.fold_left ( + ) 0 backlogs in
      let total_quota = Array.fold_left ( + ) 0 quota in
      total_quota = min budget total_backlog
      && Array.for_all2 (fun q b -> q >= 0 && q <= b) quota backlogs)

let test_apportion_single_shard () =
  (* One shard: exactly the single-controller drain cap. *)
  Alcotest.(check (array int))
    "min budget backlog" [| 3 |]
    (Shard_fabric.apportion ~budget:3 ~backlogs:[| 7 |]);
  Alcotest.(check (array int))
    "backlog under budget" [| 2 |]
    (Shard_fabric.apportion ~budget:5 ~backlogs:[| 2 |])

let test_apportion_proportional () =
  (* 3:1 backlog split at budget 4 -> 3:1 quota split. *)
  Alcotest.(check (array int))
    "proportional" [| 3; 1 |]
    (Shard_fabric.apportion ~budget:4 ~backlogs:[| 9; 3 |])

(* ------------------------------------------------------------------ *)
(* Differential harness                                                *)

let scenario () = Scenario.prepare ~k:4 ~utilization:0.6 ~seed:11 ()

let cfg () =
  {
    Serve.policy = Policy.Plmtf { alpha = 2 };
    engine_seed = 5;
    admission_capacity = 8;
    admission_policy = Admission.Block;
    drain_per_tick = 2;
    steps_per_tick = 3;
    tick_dt_s = 0.05;
    co_max_cost_mbit = 0.0;
    estimate_cache = true;
    churn = None;
    domains = 1;
  }

let spec_of ?(seed = 21) () =
  Serve_source.Synthetic
    {
      seed;
      rate_per_tick = 0.7;
      flows_per_event = 2;
      tenants = [ "a"; "b" ];
      first_event_id = 1;
      first_flow_id = 1_000_000;
    }

let fabric_digest ?journal_base ?(shards = 4) ?coord ~ticks () =
  let s = scenario () in
  let fcfg = Shard_fabric.default_config (cfg ()) ~shards in
  let fcfg = match coord with None -> fcfg | Some c -> { fcfg with Shard_fabric.coord = c } in
  let t =
    Shard_fabric.create ?journal_base fcfg ~topology:s.Scenario.topology
      ~net:s.Scenario.net ~source_spec:(spec_of ())
  in
  Shard_fabric.run t ~ticks;
  Shard_fabric.complete t;
  let d = Shard_fabric.digest t in
  ignore (Shard_fabric.retire t : Engine.run_result list);
  d

(* The headline contract: one fabric shard executes the exact
   single-controller schedule — same digest, bit for bit. *)
let test_one_shard_equals_serve () =
  let s = scenario () in
  let t =
    Serve.create (cfg ()) ~topology:s.Scenario.topology ~net:s.Scenario.net
      ~source_spec:(spec_of ())
  in
  Serve.run ~ticks:40 t;
  Serve.complete t;
  Alcotest.(check string) "digest equal" (Serve.digest t)
    (fabric_digest ~shards:1 ~ticks:40 ())

let test_fabric_deterministic () =
  Alcotest.(check string) "same run twice"
    (fabric_digest ~shards:4 ~ticks:40 ())
    (fabric_digest ~shards:4 ~ticks:40 ())

(* ------------------------------------------------------------------ *)
(* Coordinator 2PC                                                     *)

(* A vetoed inline commit must roll the open fabric transaction back
   and leave the event queued for retry — the fabric afterwards is
   indistinguishable from one where the attempt never started. *)
let test_coord_veto_rolls_back () =
  let s = scenario () in
  let net = s.Scenario.net in
  let edge = List.hd (Net_state.fabric_edges net) in
  let flows_before = Net_state.flow_count net in
  let util_before = Net_state.mean_utilization net in
  let coord =
    Shard_coord.create ~seed:7
      { Shard_coord.default_config with Shard_coord.veto_backlog = 0 }
  in
  (* The engine left a transaction open with staged work in it. *)
  Net_state.begin_txn net;
  Net_state.disable_edge net edge;
  let committed =
    Shard_coord.commit_escalated coord ~net ~tick:3 ~now_floor_s:0.0 ~home:0
      ~event:(install_event ~src:0 1)
      ~moved:[ 42 ]
      ~shard_of_flow:(fun _ -> Some 2)
      ~backlogs:[| 0; 0; 9; 0 |]
      ~txn_open:true
      ~attempt:(fun () -> Alcotest.fail "attempt ran on the veto path")
      ~on_commit:(fun ~home:_ ~result:_ ~degraded:_ _ ->
        Alcotest.fail "on_commit fired on the veto path")
  in
  Alcotest.(check bool) "vetoed" false committed;
  Alcotest.(check bool) "txn closed" false (Net_state.in_txn net);
  Alcotest.(check bool) "staged work undone" false
    (Net_state.edge_disabled net edge);
  Alcotest.(check int) "no flow moved" flows_before (Net_state.flow_count net);
  Alcotest.(check (float 1e-9)) "utilization untouched" util_before
    (Net_state.mean_utilization net);
  Alcotest.(check int) "event queued for retry" 1
    (Shard_coord.pending_count coord);
  (* Prepare + abort were journaled — the abort is part of the audit
     trail and of the digest. *)
  Alcotest.(check int) "prepare + abort journaled" 2
    (Shard_coord.entries coord);
  Shard_coord.close coord

(* End-to-end: a fabric whose coordinator vetoes everything still
   terminates (degrade path) and stays deterministic, and the abort
   counter proves the 2PC abort path actually ran. *)
let test_fabric_abort_path_deterministic () =
  let coord =
    {
      Shard_coord.default_config with
      Shard_coord.veto_backlog = 0;
      max_attempts = 2;
    }
  in
  let before = Obs.Counters.snapshot () in
  let a = fabric_digest ~shards:4 ~coord ~ticks:40 () in
  let d = Obs.Counters.diff ~before ~after:(Obs.Counters.snapshot ()) in
  let b = fabric_digest ~shards:4 ~coord ~ticks:40 () in
  Alcotest.(check string) "deterministic under aborts" a b;
  if Obs.Counters.value d Obs.Counters.Shard_escalations > 0 then
    Alcotest.(check bool) "abort path exercised" true
      (Obs.Counters.value d Obs.Counters.Shard_coord_aborts > 0)

(* ------------------------------------------------------------------ *)
(* Checkpoint / crash / replay                                         *)

let with_tmp_dir f =
  let dir = Filename.temp_file "nu_shard" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun e -> Sys.remove (Filename.concat dir e))
        (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () -> f dir)

let test_checkpoint_json_roundtrip () =
  let expected = fabric_digest ~shards:4 ~ticks:36 () in
  let s = scenario () in
  let fcfg = Shard_fabric.default_config (cfg ()) ~shards:4 in
  let t =
    Shard_fabric.create fcfg ~topology:s.Scenario.topology ~net:s.Scenario.net
      ~source_spec:(spec_of ())
  in
  Shard_fabric.run t ~ticks:18;
  let json =
    Shard_fabric.checkpoint_to_json (Shard_fabric.snapshot t)
    |> Nu_obs.Json.to_string
  in
  Shard_fabric.close t;
  let graph = s.Scenario.topology.Topology.graph in
  match Nu_obs.Json.of_string json with
  | Error m -> Alcotest.fail m
  | Ok j -> (
      match Shard_fabric.checkpoint_of_json ~graph j with
      | Error m -> Alcotest.fail m
      | Ok cp -> (
          Alcotest.(check int) "tick survives" 18 cp.Shard_fabric.cp_tick;
          match
            Shard_fabric.restore_snapshot fcfg ~topology:s.Scenario.topology
              ~source_spec:(spec_of ()) cp
          with
          | Error m -> Alcotest.fail m
          | Ok t2 ->
              Shard_fabric.run t2 ~ticks:18;
              Shard_fabric.complete t2;
              Alcotest.(check string) "digest equal" expected
                (Shard_fabric.digest t2);
              Shard_fabric.close t2))

let test_restore_rejects_config_mismatch () =
  let s = scenario () in
  let fcfg = Shard_fabric.default_config (cfg ()) ~shards:4 in
  let t =
    Shard_fabric.create fcfg ~topology:s.Scenario.topology ~net:s.Scenario.net
      ~source_spec:(spec_of ())
  in
  Shard_fabric.run t ~ticks:5;
  let cp = Shard_fabric.snapshot t in
  Shard_fabric.close t;
  let other = Shard_fabric.default_config (cfg ()) ~shards:2 in
  match
    Shard_fabric.restore_snapshot other ~topology:s.Scenario.topology
      ~source_spec:(spec_of ()) cp
  with
  | Error _ -> ()
  | Ok t2 ->
      Shard_fabric.close t2;
      Alcotest.fail "restore accepted a mismatched shard count"

(* Kill one shard's WAL mid-run, recover the whole fabric from the
   checkpoint + journals, keep serving: the digest must equal the
   uninterrupted run's. *)
let test_crash_recover_differential () =
  with_tmp_dir @@ fun dir ->
  let jb = Filename.concat dir "wal" in
  let cp_path = Filename.concat dir "cp.json" in
  let expected = fabric_digest ~shards:4 ~ticks:40 () in
  let s = scenario () in
  let fcfg = Shard_fabric.default_config (cfg ()) ~shards:4 in
  let t =
    Shard_fabric.create ~journal_base:jb fcfg ~topology:s.Scenario.topology
      ~net:s.Scenario.net ~source_spec:(spec_of ())
  in
  Shard_fabric.run t ~ticks:20;
  Shard_fabric.save_checkpoint t ~path:cp_path;
  Shard_fabric.run t ~ticks:10;
  Shard_fabric.kill_shard_journal t 2;
  (* The crashed fabric is abandoned where it stands. *)
  match
    Shard_fabric.recover fcfg ~topology:s.Scenario.topology
      ~source_spec:(spec_of ()) ~checkpoint_path:cp_path ~journal_base:jb
  with
  | Error m -> Alcotest.fail m
  | Ok (t2, replayed) ->
      Alcotest.(check bool) "replayed beyond the checkpoint" true
        (replayed >= 0);
      Alcotest.(check bool) "recovered at or before the kill" true
        (Shard_fabric.tick_count t2 <= 30);
      Shard_fabric.run t2 ~ticks:(40 - Shard_fabric.tick_count t2);
      Shard_fabric.complete t2;
      Alcotest.(check string) "digest equal" expected
        (Shard_fabric.digest t2);
      Shard_fabric.close t2

(* External audit: rebuild the fabric from its journals alone. *)
let test_replay_from_journals () =
  with_tmp_dir @@ fun dir ->
  let jb = Filename.concat dir "wal" in
  let expected = fabric_digest ~journal_base:jb ~shards:4 ~ticks:30 () in
  let s = scenario () in
  let fcfg = Shard_fabric.default_config (cfg ()) ~shards:4 in
  match
    Shard_fabric.replay fcfg ~topology:s.Scenario.topology
      ~net:s.Scenario.net ~source_spec:(spec_of ()) ~journal_base:jb
  with
  | Error m -> Alcotest.fail m
  | Ok (t, replayed) ->
      Alcotest.(check bool) "replayed ticks" true (replayed > 0);
      Shard_fabric.complete t;
      Alcotest.(check string) "digest equal" expected (Shard_fabric.digest t);
      Shard_fabric.close t

let suite =
  [
    Alcotest.test_case "partition: shape and ownership" `Quick
      test_partition_shape;
    QCheck_alcotest.to_alcotest prop_partition_total;
    QCheck_alcotest.to_alcotest prop_partition_stable;
    QCheck_alcotest.to_alcotest prop_partition_order_independent;
    Alcotest.test_case "partition: move + freeze/thaw" `Quick
      test_partition_move_freeze_thaw;
    QCheck_alcotest.to_alcotest prop_apportion_sum_and_cap;
    Alcotest.test_case "apportion: one shard = drain cap" `Quick
      test_apportion_single_shard;
    Alcotest.test_case "apportion: proportional split" `Quick
      test_apportion_proportional;
    Alcotest.test_case "one-shard fabric = serve digest" `Quick
      test_one_shard_equals_serve;
    Alcotest.test_case "fabric digest deterministic" `Quick
      test_fabric_deterministic;
    Alcotest.test_case "coord: veto rolls the txn back" `Quick
      test_coord_veto_rolls_back;
    Alcotest.test_case "coord: abort path deterministic" `Quick
      test_fabric_abort_path_deterministic;
    Alcotest.test_case "checkpoint JSON round-trip" `Quick
      test_checkpoint_json_roundtrip;
    Alcotest.test_case "restore rejects config mismatch" `Quick
      test_restore_rejects_config_mismatch;
    Alcotest.test_case "crash + recover = uninterrupted digest" `Quick
      test_crash_recover_differential;
    Alcotest.test_case "replay from journals alone" `Quick
      test_replay_from_journals;
  ]
