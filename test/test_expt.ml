(* nu_expt: figure regenerators and the worked examples. *)

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec scan i = i + n <= h && (String.sub hay i n = needle || scan (i + 1)) in
  n = 0 || scan 0

(* ------------------------------------------------------------------ *)
(* Table                                                               *)

let test_table_renders () =
  let t = Nu_expt.Table.create ~title:"demo" ~columns:[ "a"; "bb" ] in
  Nu_expt.Table.add_row t [ "x"; "y" ];
  Nu_expt.Table.add_floats t [ 1.5; 2.25 ];
  Nu_expt.Table.add_mixed t "label" [ 3.0 ];
  let s = Nu_expt.Table.to_string t in
  Alcotest.(check bool) "title" true (contains ~needle:"## demo" s);
  Alcotest.(check bool) "header" true (contains ~needle:"a" s);
  Alcotest.(check bool) "float row" true (contains ~needle:"2.25" s);
  Alcotest.(check bool) "label row" true (contains ~needle:"label" s)

let test_table_row_mismatch () =
  let t = Nu_expt.Table.create ~title:"demo" ~columns:[ "a"; "b" ] in
  Alcotest.check_raises "mismatch" (Invalid_argument "Table.add_row: cell count mismatch")
    (fun () -> Nu_expt.Table.add_row t [ "only-one" ])

(* ------------------------------------------------------------------ *)
(* Fig. 2 / Fig. 3 worked examples                                     *)

let test_fig2_event_level () =
  let s = Nu_expt.Fig2.event_level ~flows_per_event:[ 4; 4; 4 ] in
  Alcotest.(check (list int)) "completions" [ 4; 8; 12 ] s.Nu_expt.Fig2.completions;
  Alcotest.(check (float 1e-9)) "average" 8.0 s.Nu_expt.Fig2.average;
  Alcotest.(check int) "tail" 12 s.Nu_expt.Fig2.tail

let test_fig2_flow_level () =
  let s = Nu_expt.Fig2.flow_level ~flows_per_event:[ 4; 4; 4 ] in
  Alcotest.(check (list int)) "round robin completions" [ 10; 11; 12 ]
    s.Nu_expt.Fig2.completions;
  Alcotest.(check int) "tail equal to event-level" 12 s.Nu_expt.Fig2.tail

let test_fig2_uneven_events () =
  let el = Nu_expt.Fig2.event_level ~flows_per_event:[ 3; 4; 5 ] in
  let fl = Nu_expt.Fig2.flow_level ~flows_per_event:[ 3; 4; 5 ] in
  Alcotest.(check (list int)) "event-level" [ 3; 7; 12 ] el.Nu_expt.Fig2.completions;
  Alcotest.(check bool) "event-level average smaller" true
    (el.Nu_expt.Fig2.average < fl.Nu_expt.Fig2.average);
  Alcotest.(check int) "tails equal" el.Nu_expt.Fig2.tail fl.Nu_expt.Fig2.tail

let test_fig3_paper_numbers () =
  let fifo = Nu_expt.Fig3.completions Nu_expt.Fig3.paper_events in
  Alcotest.(check (float 1e-9)) "fifo average" 7.0 (Nu_expt.Fig3.average fifo);
  Alcotest.(check (float 1e-9)) "fifo tail" 9.0 (Nu_expt.Fig3.tail fifo);
  let by_cost =
    Nu_expt.Fig3.completions
      (List.stable_sort
         (fun a b -> compare a.Nu_expt.Fig3.cost_s b.Nu_expt.Fig3.cost_s)
         Nu_expt.Fig3.paper_events)
  in
  Alcotest.(check (float 1e-9)) "reordered average" 5.0
    (Nu_expt.Fig3.average by_cost);
  Alcotest.(check (float 1e-9)) "same tail" 9.0 (Nu_expt.Fig3.tail by_cost)

(* ------------------------------------------------------------------ *)
(* Fig. 1 (small configuration)                                        *)

let test_fig1_probabilities_decline () =
  let points =
    Nu_expt.Fig1.compute ~seed:3 ~samples:150 ~utilizations:[ 0.2; 0.8 ] ()
  in
  Alcotest.(check int) "two traces x two utils" 4 (List.length points);
  List.iter
    (fun (p : Nu_expt.Fig1.point) ->
      Alcotest.(check bool) "probability range" true
        (p.Nu_expt.Fig1.p_desired_all >= 0.0 && p.Nu_expt.Fig1.p_desired_all <= 1.0))
    points;
  let find trace u =
    List.find
      (fun (p : Nu_expt.Fig1.point) ->
        p.Nu_expt.Fig1.trace = trace
        && abs_float (p.Nu_expt.Fig1.utilization -. u) < 1e-9)
      points
  in
  List.iter
    (fun trace ->
      let low = find trace 0.2 and high = find trace 0.8 in
      Alcotest.(check bool)
        (trace ^ ": success falls with utilization")
        true
        (low.Nu_expt.Fig1.p_desired_all >= high.Nu_expt.Fig1.p_desired_all))
    [ "yahoo"; "random" ]

(* ------------------------------------------------------------------ *)
(* Workload harness                                                    *)

let small_setup =
  {
    Nu_expt.Workload.default_setup with
    Nu_expt.Workload.n_events = 5;
    shape = Event_gen.Range (5, 10);
    utilization = 0.5;
  }

let test_workload_run_policies () =
  let summaries =
    Nu_expt.Workload.run_policies small_setup [ Policy.Fifo; Policy.Lmtf { alpha = 2 } ]
  in
  Alcotest.(check int) "one summary per policy" 2 (List.length summaries);
  List.iter
    (fun (s : Metrics.summary) ->
      Alcotest.(check int) "events" 5 s.Metrics.n_events)
    summaries

let test_workload_averaged () =
  let per_policy =
    Nu_expt.Workload.averaged small_setup ~seeds:[ 1; 2 ] [ Policy.Fifo ]
  in
  match per_policy with
  | [ (Policy.Fifo, summaries) ] ->
      Alcotest.(check int) "two replicates" 2 (List.length summaries);
      let m = Nu_expt.Workload.mean_of (fun s -> s.Metrics.avg_ect_s) summaries in
      Alcotest.(check bool) "positive" true (m > 0.0)
  | _ -> Alcotest.fail "unexpected shape"

let test_workload_reduction_pct () =
  Alcotest.(check (float 1e-9)) "50%" 50.0
    (Nu_expt.Workload.reduction_pct ~baseline:10.0 5.0);
  Alcotest.(check (float 1e-9)) "degenerate baseline" 0.0
    (Nu_expt.Workload.reduction_pct ~baseline:0.0 5.0)

let test_event_level_beats_flow_level_small () =
  let summaries =
    Nu_expt.Workload.run_policies small_setup
      [ Policy.Fifo; Policy.Flow_level Policy.Round_robin ]
  in
  match summaries with
  | [ fifo; fl ] ->
      Alcotest.(check bool) "event-level faster on average" true
        (fifo.Metrics.avg_ect_s <= fl.Metrics.avg_ect_s)
  | _ -> Alcotest.fail "two summaries"

let test_arrival_study_structure () =
  let points =
    Nu_expt.Arrival_study.compute ~seed:4 ~n_events:6
      ~interarrivals:[ 0.5; 8.0 ] ()
  in
  Alcotest.(check int) "two points" 2 (List.length points);
  List.iter
    (fun (p : Nu_expt.Arrival_study.point) ->
      Alcotest.(check bool) "positive ECTs" true
        (p.Nu_expt.Arrival_study.fifo_avg_ect > 0.0
        && p.Nu_expt.Arrival_study.lmtf_avg_ect > 0.0
        && p.Nu_expt.Arrival_study.plmtf_avg_ect > 0.0))
    points;
  (* With 8 s between events nothing queues: delays are ~0 and the
     policies coincide. *)
  let sparse = List.nth points 1 in
  Alcotest.(check bool) "no backlog at sparse arrivals" true
    (sparse.Nu_expt.Arrival_study.fifo_avg_q < 1.0)

let test_fig6_compute_smoke () =
  let points =
    Nu_expt.Fig6.compute ~seeds:[ 42 ] ~alpha:2 ~event_counts:[ 6 ] ()
  in
  match points with
  | [ p ] ->
      Alcotest.(check int) "n" 6 p.Nu_expt.Fig6.n_events;
      (* Reductions are percentages; they must be finite and below 100. *)
      List.iter
        (fun v ->
          Alcotest.(check bool) "finite" true (Float.is_finite v);
          Alcotest.(check bool) "<=100" true (v <= 100.0))
        [
          p.Nu_expt.Fig6.lmtf_avg_red;
          p.Nu_expt.Fig6.plmtf_avg_red;
          p.Nu_expt.Fig6.lmtf_tail_red;
          p.Nu_expt.Fig6.plmtf_tail_red;
        ];
      Alcotest.(check bool) "plan times positive" true
        (p.Nu_expt.Fig6.fifo_plan_s > 0.0 && p.Nu_expt.Fig6.lmtf_plan_s > 0.0)
  | _ -> Alcotest.fail "one point"

let test_mixed_build_events () =
  let scenario = Scenario.prepare ~utilization:0.4 ~seed:6 () in
  let mix =
    {
      Nu_expt.Mixed_issues.additions = 3;
      vm_migrations = 2;
      switch_upgrades = 2;
      link_failures = 1;
    }
  in
  let events, net = Nu_expt.Mixed_issues.build_events scenario ~mix ~seed:7 () in
  Alcotest.(check int) "total events" 8 (List.length events);
  (* Ids must be dense 0..n-1 (queue order). *)
  let ids = List.map (fun ev -> ev.Event.id) events in
  Alcotest.(check (list int)) "dense ids" (List.init 8 Fun.id)
    (List.sort compare ids);
  let count pred = List.length (List.filter pred events) in
  Alcotest.(check int) "additions" 3
    (count (fun ev -> ev.Event.kind = Event.Additions));
  Alcotest.(check int) "vm" 2
    (count (fun ev -> ev.Event.kind = Event.Vm_migration));
  Alcotest.(check int) "upgrades" 2
    (count (fun ev ->
         match ev.Event.kind with Event.Switch_upgrade _ -> true | _ -> false));
  Alcotest.(check int) "failures" 1
    (count (fun ev ->
         match ev.Event.kind with Event.Link_failure _ -> true | _ -> false));
  (* The returned net must have the failed links disabled. *)
  let disabled = ref 0 in
  Graph.iter_edges (Net_state.graph net) (fun e ->
      if Net_state.edge_disabled net e.Graph.id then incr disabled);
  Alcotest.(check int) "two directed edges disabled" 2 !disabled;
  (* The queue must run to completion under FIFO. *)
  let run = Engine.run ~seed:9 ~net:(Net_state.copy net) ~events Policy.Fifo in
  Alcotest.(check int) "all completed" 8 (Array.length run.Engine.events)

let suite =
  [
    ("table renders", `Quick, test_table_renders);
    ("fig6 compute smoke", `Slow, test_fig6_compute_smoke);
    ("mixed build events", `Slow, test_mixed_build_events);
    ("arrival study", `Slow, test_arrival_study_structure);
    ("table mismatch", `Quick, test_table_row_mismatch);
    ("fig2 event-level", `Quick, test_fig2_event_level);
    ("fig2 flow-level", `Quick, test_fig2_flow_level);
    ("fig2 uneven", `Quick, test_fig2_uneven_events);
    ("fig3 paper numbers", `Quick, test_fig3_paper_numbers);
    ("fig1 declines", `Slow, test_fig1_probabilities_decline);
    ("workload run", `Slow, test_workload_run_policies);
    ("workload averaged", `Slow, test_workload_averaged);
    ("workload reduction", `Quick, test_workload_reduction_pct);
    ("event vs flow small", `Slow, test_event_level_beats_flow_level_small);
  ]
