(* nu_graph: graph structure, paths, priority queue, search algorithms. *)

(* A diamond: 0 -> 1 -> 3 and 0 -> 2 -> 3, plus a long detour 0 -> 4 -> 5 -> 3. *)
let diamond () =
  let g = Graph.create ~initial_nodes:6 () in
  let e01 = Graph.add_edge g ~src:0 ~dst:1 ~capacity:10.0 in
  let e13 = Graph.add_edge g ~src:1 ~dst:3 ~capacity:10.0 in
  let e02 = Graph.add_edge g ~src:0 ~dst:2 ~capacity:5.0 in
  let e23 = Graph.add_edge g ~src:2 ~dst:3 ~capacity:5.0 in
  let e04 = Graph.add_edge g ~src:0 ~dst:4 ~capacity:100.0 in
  let e45 = Graph.add_edge g ~src:4 ~dst:5 ~capacity:100.0 in
  let e53 = Graph.add_edge g ~src:5 ~dst:3 ~capacity:100.0 in
  (g, (e01, e13, e02, e23, e04, e45, e53))

(* ------------------------------------------------------------------ *)
(* Graph                                                               *)

let test_graph_counts () =
  let g, _ = diamond () in
  Alcotest.(check int) "nodes" 6 (Graph.node_count g);
  Alcotest.(check int) "edges" 7 (Graph.edge_count g)

let test_graph_add_node () =
  let g = Graph.create () in
  Alcotest.(check int) "first id" 0 (Graph.add_node g);
  Alcotest.(check int) "second id" 1 (Graph.add_node g);
  Graph.add_nodes g 3;
  Alcotest.(check int) "bulk" 5 (Graph.node_count g)

let test_graph_edge_accessor () =
  let g, (e01, _, _, _, _, _, _) = diamond () in
  let e = Graph.edge g e01 in
  Alcotest.(check int) "src" 0 e.Graph.src;
  Alcotest.(check int) "dst" 1 e.Graph.dst;
  Alcotest.(check (float 0.0)) "capacity" 10.0 e.Graph.capacity;
  Alcotest.check_raises "bad id" (Invalid_argument "Graph.edge: id out of range")
    (fun () -> ignore (Graph.edge g 99))

let test_graph_adjacency_order () =
  let g, _ = diamond () in
  let outs = Graph.out_edges g 0 in
  Alcotest.(check (list int)) "insertion order" [ 1; 2; 4 ]
    (List.map (fun (e : Graph.edge) -> e.Graph.dst) outs);
  let ins = Graph.in_edges g 3 in
  Alcotest.(check (list int)) "in edges" [ 1; 2; 5 ]
    (List.map (fun (e : Graph.edge) -> e.Graph.src) ins);
  Alcotest.(check int) "out degree" 3 (Graph.out_degree g 0)

let test_graph_find_edge () =
  let g, (e01, _, _, _, _, _, _) = diamond () in
  (match Graph.find_edge g ~src:0 ~dst:1 with
  | Some e -> Alcotest.(check int) "found" e01 e.Graph.id
  | None -> Alcotest.fail "edge exists");
  Alcotest.(check bool) "absent" true (Graph.find_edge g ~src:1 ~dst:0 = None)

let test_graph_find_edge_first_inserted () =
  let g = Graph.create ~initial_nodes:2 () in
  let first = Graph.add_edge g ~src:0 ~dst:1 ~capacity:1.0 in
  let _second = Graph.add_edge g ~src:0 ~dst:1 ~capacity:2.0 in
  match Graph.find_edge g ~src:0 ~dst:1 with
  | Some e -> Alcotest.(check int) "first parallel edge" first e.Graph.id
  | None -> Alcotest.fail "edge exists"

let test_graph_add_link_and_reverse () =
  let g = Graph.create ~initial_nodes:2 () in
  let ab, ba = Graph.add_link g ~a:0 ~b:1 ~capacity:7.0 in
  let e_ab = Graph.edge g ab in
  (match Graph.reverse_edge g e_ab with
  | Some r -> Alcotest.(check int) "reverse id" ba r.Graph.id
  | None -> Alcotest.fail "reverse exists")

let test_graph_invalid_edges () =
  let g = Graph.create ~initial_nodes:2 () in
  Alcotest.check_raises "bad src" (Invalid_argument "Graph.add_edge: src")
    (fun () -> ignore (Graph.add_edge g ~src:5 ~dst:0 ~capacity:1.0));
  Alcotest.check_raises "bad capacity"
    (Invalid_argument "Graph.add_edge: capacity") (fun () ->
      ignore (Graph.add_edge g ~src:0 ~dst:1 ~capacity:(-1.0)))

let test_graph_total_capacity () =
  let g, _ = diamond () in
  Alcotest.(check (float 1e-9)) "sum" 330.0 (Graph.total_capacity g)

let test_graph_fold_iter () =
  let g, _ = diamond () in
  let n = Graph.fold_edges g ~init:0 ~f:(fun acc _ -> acc + 1) in
  Alcotest.(check int) "fold counts edges" 7 n;
  let seen = ref [] in
  Graph.iter_edges g (fun e -> seen := e.Graph.id :: !seen);
  Alcotest.(check (list int)) "iter order" [ 0; 1; 2; 3; 4; 5; 6 ]
    (List.rev !seen)

let test_graph_growth () =
  (* Force multiple internal array reallocations. *)
  let g = Graph.create () in
  Graph.add_nodes g 200;
  for i = 0 to 198 do
    ignore (Graph.add_edge g ~src:i ~dst:(i + 1) ~capacity:1.0)
  done;
  Alcotest.(check int) "edges" 199 (Graph.edge_count g);
  Alcotest.(check int) "node degree" 1 (Graph.out_degree g 0)

(* ------------------------------------------------------------------ *)
(* Path                                                                *)

let test_path_of_nodes () =
  let g, _ = diamond () in
  let p = Path.of_nodes g [ 0; 1; 3 ] in
  Alcotest.(check int) "src" 0 (Path.src p);
  Alcotest.(check int) "dst" 3 (Path.dst p);
  Alcotest.(check int) "hops" 2 (Path.hops p);
  Alcotest.(check (list int)) "nodes" [ 0; 1; 3 ] (Path.nodes p)

let test_path_validation () =
  let g, _ = diamond () in
  Alcotest.check_raises "empty" (Invalid_argument "Path.make: empty")
    (fun () -> ignore (Path.make g []));
  Alcotest.check_raises "short" (Invalid_argument "Path.of_nodes: need at least two nodes")
    (fun () -> ignore (Path.of_nodes g [ 0 ]));
  Alcotest.check_raises "missing edge"
    (Invalid_argument "Path.of_nodes: missing edge") (fun () ->
      ignore (Path.of_nodes g [ 0; 3 ]))

let test_path_non_contiguous () =
  let g, _ = diamond () in
  let e01 = Graph.edge g 0 and e23 = Graph.edge g 3 in
  Alcotest.check_raises "gap" (Invalid_argument "Path.make: edges are not contiguous")
    (fun () -> ignore (Path.make g [ e01; e23 ]))

let test_path_loop_rejected () =
  let g = Graph.create ~initial_nodes:3 () in
  let a = Graph.add_edge g ~src:0 ~dst:1 ~capacity:1.0 in
  let b = Graph.add_edge g ~src:1 ~dst:0 ~capacity:1.0 in
  let c = Graph.add_edge g ~src:0 ~dst:2 ~capacity:1.0 in
  Alcotest.check_raises "loop" (Invalid_argument "Path.make: node loop")
    (fun () ->
      ignore (Path.make g [ Graph.edge g a; Graph.edge g b; Graph.edge g c ]))

let test_path_mentions () =
  let g, (e01, e13, e02, _, _, _, _) = diamond () in
  let p = Path.of_nodes g [ 0; 1; 3 ] in
  Alcotest.(check bool) "has e01" true (Path.mentions_edge p e01);
  Alcotest.(check bool) "has e13" true (Path.mentions_edge p e13);
  Alcotest.(check bool) "no e02" false (Path.mentions_edge p e02);
  Alcotest.(check bool) "node 1" true (Path.mentions_node p 1);
  Alcotest.(check bool) "node 2" false (Path.mentions_node p 2)

let test_path_bottleneck () =
  let g, _ = diamond () in
  let p = Path.of_nodes g [ 0; 2; 3 ] in
  Alcotest.(check (float 0.0)) "bottleneck" 5.0
    (Path.bottleneck p ~capacity_of:(fun e -> e.Graph.capacity))

let test_path_equal_compare () =
  let g, _ = diamond () in
  let p1 = Path.of_nodes g [ 0; 1; 3 ] in
  let p2 = Path.of_nodes g [ 0; 1; 3 ] in
  let p3 = Path.of_nodes g [ 0; 2; 3 ] in
  Alcotest.(check bool) "equal" true (Path.equal p1 p2);
  Alcotest.(check bool) "not equal" false (Path.equal p1 p3);
  Alcotest.(check bool) "compare consistent" true (Path.compare p1 p2 = 0)

let test_path_pp () =
  let g, _ = diamond () in
  let p = Path.of_nodes g [ 0; 1; 3 ] in
  Alcotest.(check string) "render" "0->1->3" (Format.asprintf "%a" Path.pp p)

(* ------------------------------------------------------------------ *)
(* Pqueue                                                              *)

let test_pqueue_ordering () =
  let q = Pqueue.create () in
  Pqueue.push q 3.0 "c";
  Pqueue.push q 1.0 "a";
  Pqueue.push q 2.0 "b";
  Alcotest.(check (option (pair (float 0.0) string))) "peek" (Some (1.0, "a"))
    (Pqueue.peek q);
  Alcotest.(check (option (pair (float 0.0) string))) "pop a" (Some (1.0, "a"))
    (Pqueue.pop q);
  Alcotest.(check (option (pair (float 0.0) string))) "pop b" (Some (2.0, "b"))
    (Pqueue.pop q);
  Alcotest.(check (option (pair (float 0.0) string))) "pop c" (Some (3.0, "c"))
    (Pqueue.pop q);
  Alcotest.(check bool) "empty" true (Pqueue.pop q = None)

let test_pqueue_fifo_ties () =
  let q = Pqueue.create () in
  Pqueue.push q 1.0 "first";
  Pqueue.push q 1.0 "second";
  Pqueue.push q 1.0 "third";
  let order = List.init 3 (fun _ -> snd (Option.get (Pqueue.pop q))) in
  Alcotest.(check (list string)) "fifo on ties" [ "first"; "second"; "third" ]
    order

(* to_list must report exact pop order (priority, then insertion seq on
   ties), and pushing that list back in order must reproduce the same
   pop sequence — checkpointing serialises departure queues this way. *)
let test_pqueue_to_list_pop_order () =
  let q = Pqueue.create () in
  Pqueue.push q 2.0 "b";
  Pqueue.push q 1.0 "a1";
  Pqueue.push q 1.0 "a2";
  Pqueue.push q 3.0 "c";
  let listed = Pqueue.to_list q in
  let rebuilt = Pqueue.create () in
  List.iter (fun (p, v) -> Pqueue.push rebuilt p v) listed;
  let drain q =
    let rec go acc =
      match Pqueue.pop q with None -> List.rev acc | Some x -> go (x :: acc)
    in
    go []
  in
  let popped = drain q in
  Alcotest.(check (list (pair (float 0.0) string)))
    "to_list is pop order"
    [ (1.0, "a1"); (1.0, "a2"); (2.0, "b"); (3.0, "c") ]
    listed;
  Alcotest.(check (list (pair (float 0.0) string)))
    "rebuild reproduces pops" popped (drain rebuilt)

let test_pqueue_size_clear () =
  let q = Pqueue.create () in
  Alcotest.(check bool) "empty" true (Pqueue.is_empty q);
  Pqueue.push q 1.0 1;
  Pqueue.push q 2.0 2;
  Alcotest.(check int) "size" 2 (Pqueue.size q);
  Pqueue.clear q;
  Alcotest.(check bool) "cleared" true (Pqueue.is_empty q)

let prop_pqueue_sorted =
  QCheck.Test.make ~name:"pqueue pops in sorted order" ~count:200
    QCheck.(list (float_range (-100.) 100.))
    (fun prios ->
      let q = Pqueue.create () in
      List.iteri (fun i p -> Pqueue.push q p i) prios;
      let rec drain acc =
        match Pqueue.pop q with
        | None -> List.rev acc
        | Some (p, _) -> drain (p :: acc)
      in
      let out = drain [] in
      out = List.sort compare prios)

(* ------------------------------------------------------------------ *)
(* CSR adjacency vs a reference model: the flat offsets+ids layout
   behind {!Graph.iter_out}/{!Graph.iter_in} must agree, edge for edge
   and in insertion order, with naive per-node adjacency lists recorded
   at [add_edge] time — including across the lazy rebuild that a
   post-freeze append triggers. *)

let prop_csr_matches_reference =
  QCheck.Test.make ~name:"CSR adjacency matches reference lists" ~count:60
    QCheck.small_int (fun seed ->
      let rng = Prng.create (7000 + seed) in
      let n = Prng.int_in rng 2 20 in
      let g = Graph.create ~initial_nodes:n () in
      let out_ref = Array.make n [] and in_ref = Array.make n [] in
      let add_random_edge () =
        let src = Prng.int rng n in
        let dst = (src + 1 + Prng.int rng (n - 1)) mod n in
        let capacity = Prng.float_in rng 1.0 100.0 in
        let id = Graph.add_edge g ~src ~dst ~capacity in
        out_ref.(src) <- id :: out_ref.(src);
        in_ref.(dst) <- id :: in_ref.(dst)
      in
      let m = Prng.int_in rng 0 60 in
      for _ = 1 to m do
        add_random_edge ()
      done;
      Graph.freeze g;
      (* Post-freeze appends exercise the lazy CSR rebuild. *)
      let extra = Prng.int_in rng 0 10 in
      for _ = 1 to extra do
        add_random_edge ()
      done;
      let csr_out v =
        let acc = ref [] in
        Graph.iter_out g v (fun e -> acc := e :: !acc);
        List.rev !acc
      in
      let csr_in v =
        let acc = ref [] in
        Graph.iter_in g v (fun e -> acc := e :: !acc);
        List.rev !acc
      in
      let ids edges = List.map (fun e -> e.Graph.id) edges in
      let ok = ref true in
      for v = 0 to n - 1 do
        let o = List.rev out_ref.(v) and i = List.rev in_ref.(v) in
        if csr_out v <> o then ok := false;
        if csr_in v <> i then ok := false;
        (* The record-list view must agree with the CSR rows too. *)
        if ids (Graph.out_edges g v) <> o then ok := false;
        if ids (Graph.in_edges g v) <> i then ok := false
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Bfs                                                                 *)

let test_bfs_distance () =
  let g, _ = diamond () in
  Alcotest.(check (option int)) "0->3" (Some 2) (Bfs.distance g ~src:0 ~dst:3 ());
  Alcotest.(check (option int)) "0->5" (Some 2) (Bfs.distance g ~src:0 ~dst:5 ());
  Alcotest.(check (option int)) "3->0 unreachable" None
    (Bfs.distance g ~src:3 ~dst:0 ())

let test_bfs_shortest_path () =
  let g, _ = diamond () in
  match Bfs.shortest_path g ~src:0 ~dst:3 () with
  | Some p ->
      Alcotest.(check int) "two hops" 2 (Path.hops p);
      Alcotest.(check int) "ends at 3" 3 (Path.dst p)
  | None -> Alcotest.fail "path exists"

let test_bfs_all_shortest () =
  let g, _ = diamond () in
  let paths = Bfs.all_shortest_paths g ~src:0 ~dst:3 () in
  Alcotest.(check int) "two 2-hop paths" 2 (List.length paths);
  List.iter (fun p -> Alcotest.(check int) "hops" 2 (Path.hops p)) paths

let test_bfs_max_paths () =
  let g, _ = diamond () in
  let paths = Bfs.all_shortest_paths g ~max_paths:1 ~src:0 ~dst:3 () in
  Alcotest.(check int) "truncated" 1 (List.length paths)

let test_bfs_usable_filter () =
  let g, (e01, _, _, _, _, _, _) = diamond () in
  let usable (e : Graph.edge) = e.Graph.id <> e01 in
  let paths = Bfs.all_shortest_paths g ~usable ~src:0 ~dst:3 () in
  Alcotest.(check int) "one survives" 1 (List.length paths);
  match Bfs.shortest_path g ~usable ~src:0 ~dst:3 () with
  | Some p -> Alcotest.(check bool) "avoids filtered edge" false (Path.mentions_edge p e01)
  | None -> Alcotest.fail "alternative exists"

let test_bfs_same_node () =
  let g, _ = diamond () in
  Alcotest.(check bool) "no self path" true (Bfs.shortest_path g ~src:0 ~dst:0 () = None);
  Alcotest.(check (list pass)) "no self list" []
    (Bfs.all_shortest_paths g ~src:0 ~dst:0 ())

let test_bfs_reachable () =
  let g, _ = diamond () in
  let r = Bfs.reachable g ~src:0 () in
  Alcotest.(check bool) "reaches 3" true r.(3);
  let r3 = Bfs.reachable g ~src:3 () in
  Alcotest.(check bool) "3 cannot reach 0" false r3.(0)

(* ------------------------------------------------------------------ *)
(* Dijkstra                                                            *)

let test_dijkstra_weighted () =
  let g, _ = diamond () in
  (* Make the top route expensive: weight = 100/capacity. *)
  let weight (e : Graph.edge) = 100.0 /. e.Graph.capacity in
  match Dijkstra.shortest_path g ~weight ~src:0 ~dst:3 () with
  | Some (p, w) ->
      Alcotest.(check (list int)) "takes the detour (cheapest)" [ 0; 4; 5; 3 ]
        (Path.nodes p);
      Alcotest.(check (float 1e-9)) "weight" 3.0 w
  | None -> Alcotest.fail "path exists"

let test_dijkstra_hops () =
  let g, _ = diamond () in
  match Dijkstra.shortest_path g ~weight:(fun _ -> 1.0) ~src:0 ~dst:3 () with
  | Some (p, w) ->
      Alcotest.(check int) "two hops" 2 (Path.hops p);
      Alcotest.(check (float 1e-9)) "weight 2" 2.0 w
  | None -> Alcotest.fail "path exists"

let test_dijkstra_negative_weight () =
  let g, _ = diamond () in
  Alcotest.check_raises "negative"
    (Invalid_argument "Dijkstra.shortest_path: negative weight") (fun () ->
      ignore (Dijkstra.shortest_path g ~weight:(fun _ -> -1.0) ~src:0 ~dst:3 ()))

let test_dijkstra_unreachable () =
  let g, _ = diamond () in
  Alcotest.(check bool) "none" true
    (Dijkstra.shortest_path g ~weight:(fun _ -> 1.0) ~src:3 ~dst:0 () = None)

let test_widest_path () =
  let g, _ = diamond () in
  match Dijkstra.widest_path g ~width:(fun e -> e.Graph.capacity) ~src:0 ~dst:3 () with
  | Some (p, w) ->
      Alcotest.(check (float 1e-9)) "bottleneck 100" 100.0 w;
      Alcotest.(check (list int)) "detour route" [ 0; 4; 5; 3 ] (Path.nodes p)
  | None -> Alcotest.fail "path exists"

let test_widest_prefers_short_on_tie () =
  let g = Graph.create ~initial_nodes:4 () in
  ignore (Graph.add_edge g ~src:0 ~dst:1 ~capacity:10.0);
  ignore (Graph.add_edge g ~src:1 ~dst:3 ~capacity:10.0);
  ignore (Graph.add_edge g ~src:0 ~dst:2 ~capacity:10.0);
  ignore (Graph.add_edge g ~src:2 ~dst:1 ~capacity:10.0);
  match Dijkstra.widest_path g ~width:(fun e -> e.Graph.capacity) ~src:0 ~dst:3 () with
  | Some (p, _) -> Alcotest.(check int) "short route" 2 (Path.hops p)
  | None -> Alcotest.fail "path exists"

(* ------------------------------------------------------------------ *)
(* Yen                                                                 *)

let test_yen_enumerates () =
  let g, _ = diamond () in
  let paths = Yen.k_shortest g ~k:3 ~src:0 ~dst:3 () in
  Alcotest.(check int) "three loopless paths" 3 (List.length paths);
  let weights = List.map snd paths in
  Alcotest.(check bool) "ascending" true (weights = List.sort compare weights);
  let distinct =
    List.sort_uniq compare (List.map (fun (p, _) -> Path.edge_ids p) paths)
  in
  Alcotest.(check int) "distinct" 3 (List.length distinct)

let test_yen_k_larger_than_paths () =
  let g, _ = diamond () in
  let paths = Yen.k_shortest g ~k:10 ~src:0 ~dst:3 () in
  Alcotest.(check int) "only 3 exist" 3 (List.length paths)

let test_yen_k_zero () =
  let g, _ = diamond () in
  Alcotest.(check (list pass)) "empty" [] (Yen.k_shortest g ~k:0 ~src:0 ~dst:3 ())

let test_yen_weighted_order () =
  let g, _ = diamond () in
  let weight (e : Graph.edge) = 100.0 /. e.Graph.capacity in
  match Yen.k_shortest g ~weight ~k:3 ~src:0 ~dst:3 () with
  | (first, w) :: _ ->
      Alcotest.(check (list int)) "cheapest first" [ 0; 4; 5; 3 ]
        (Path.nodes first);
      Alcotest.(check (float 1e-9)) "weight" 3.0 w
  | [] -> Alcotest.fail "paths exist"

let suite =
  [
    ("graph counts", `Quick, test_graph_counts);
    ("graph add node", `Quick, test_graph_add_node);
    ("graph edge accessor", `Quick, test_graph_edge_accessor);
    ("graph adjacency order", `Quick, test_graph_adjacency_order);
    ("graph find edge", `Quick, test_graph_find_edge);
    ("graph parallel edges", `Quick, test_graph_find_edge_first_inserted);
    ("graph link + reverse", `Quick, test_graph_add_link_and_reverse);
    ("graph invalid edges", `Quick, test_graph_invalid_edges);
    ("graph total capacity", `Quick, test_graph_total_capacity);
    ("graph fold/iter", `Quick, test_graph_fold_iter);
    ("graph growth", `Quick, test_graph_growth);
    ("path of_nodes", `Quick, test_path_of_nodes);
    ("path validation", `Quick, test_path_validation);
    ("path non-contiguous", `Quick, test_path_non_contiguous);
    ("path loop rejected", `Quick, test_path_loop_rejected);
    ("path mentions", `Quick, test_path_mentions);
    ("path bottleneck", `Quick, test_path_bottleneck);
    ("path equality", `Quick, test_path_equal_compare);
    ("path pp", `Quick, test_path_pp);
    ("pqueue ordering", `Quick, test_pqueue_ordering);
    ("pqueue fifo ties", `Quick, test_pqueue_fifo_ties);
    ("pqueue to_list pop order", `Quick, test_pqueue_to_list_pop_order);
    ("pqueue size/clear", `Quick, test_pqueue_size_clear);
    QCheck_alcotest.to_alcotest prop_pqueue_sorted;
    QCheck_alcotest.to_alcotest prop_csr_matches_reference;
    ("bfs distance", `Quick, test_bfs_distance);
    ("bfs shortest path", `Quick, test_bfs_shortest_path);
    ("bfs all shortest", `Quick, test_bfs_all_shortest);
    ("bfs max paths", `Quick, test_bfs_max_paths);
    ("bfs usable filter", `Quick, test_bfs_usable_filter);
    ("bfs same node", `Quick, test_bfs_same_node);
    ("bfs reachable", `Quick, test_bfs_reachable);
    ("dijkstra weighted", `Quick, test_dijkstra_weighted);
    ("dijkstra hops", `Quick, test_dijkstra_hops);
    ("dijkstra negative weight", `Quick, test_dijkstra_negative_weight);
    ("dijkstra unreachable", `Quick, test_dijkstra_unreachable);
    ("widest path", `Quick, test_widest_path);
    ("widest short tie", `Quick, test_widest_prefers_short_on_tie);
    ("yen enumerates", `Quick, test_yen_enumerates);
    ("yen k too large", `Quick, test_yen_k_larger_than_paths);
    ("yen k zero", `Quick, test_yen_k_zero);
    ("yen weighted order", `Quick, test_yen_weighted_order);
  ]
