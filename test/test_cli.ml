(* The experiments CLI contract: unknown subcommands and unknown flags
   must print usage and exit non-zero (cmdliner's parse-error status is
   124), and bad inputs to the serving subcommands must fail loudly.
   These tests exec the real binary (declared as a test dep, so it sits
   next to the test's cwd in _build). *)

let exe = Filename.concat ".." "bin/experiments.exe"

let run_capture args =
  let out = Filename.temp_file "nu_cli" ".txt" in
  let status =
    Sys.command (Filename.quote_command exe ~stdout:out ~stderr:out args)
  in
  let contents = In_channel.with_open_text out In_channel.input_all in
  Sys.remove out;
  (status, contents)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_unknown_subcommand () =
  let status, out = run_capture [ "definitely-not-a-command" ] in
  Alcotest.(check bool) "non-zero exit" true (status <> 0);
  Alcotest.(check bool) "prints usage" true
    (contains (String.lowercase_ascii out) "usage")

let test_unknown_flag () =
  let status, out = run_capture [ "summary"; "--no-such-flag" ] in
  Alcotest.(check bool) "non-zero exit" true (status <> 0);
  Alcotest.(check bool) "names the flag" true (contains out "no-such-flag")

let test_help_exits_zero () =
  let status, out = run_capture [ "--help=plain" ] in
  Alcotest.(check int) "exit 0" 0 status;
  Alcotest.(check bool) "lists serve" true (contains out "serve");
  Alcotest.(check bool) "lists replay" true (contains out "replay")

let test_snapshot_missing_file () =
  let status, _ = run_capture [ "snapshot"; "no-such-checkpoint.json" ] in
  Alcotest.(check bool) "non-zero exit" true (status <> 0)

let test_serve_bad_admission () =
  let status, out = run_capture [ "serve"; "--admission"; "gibberish" ] in
  Alcotest.(check bool) "non-zero exit" true (status <> 0);
  Alcotest.(check bool) "mentions the option" true (contains out "admission")

let suite =
  [
    ("unknown subcommand fails", `Quick, test_unknown_subcommand);
    ("unknown flag fails", `Quick, test_unknown_flag);
    ("help exits zero", `Quick, test_help_exits_zero);
    ("snapshot missing file fails", `Quick, test_snapshot_missing_file);
    ("serve bad admission policy fails", `Quick, test_serve_bad_admission);
  ]
