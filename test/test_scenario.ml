(* Core.Scenario: the canned experiment fixtures. Heavier than the unit
   suites (each prepare fills a k=8 Fat-Tree), so most cases are `Slow. *)

let test_prepare_reaches_target () =
  let s = Scenario.prepare ~utilization:0.5 ~seed:3 () in
  Alcotest.(check bool) "fabric utilization at target" true
    (Net_state.mean_fabric_utilization s.Scenario.net >= 0.5 -. 1e-6);
  Alcotest.(check int) "hosts" 128 s.Scenario.host_count;
  match Net_state.invariants_ok s.Scenario.net with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_prepare_access_cap () =
  let s = Scenario.prepare ~utilization:0.5 ~seed:3 () in
  let topo = s.Scenario.topology in
  Graph.iter_edges (Net_state.graph s.Scenario.net) (fun e ->
      if Topology.is_host topo e.Graph.src || Topology.is_host topo e.Graph.dst
      then
        Alcotest.(check bool) "access link under cap" true
          (Net_state.edge_utilization s.Scenario.net e.Graph.id
          <= Scenario.access_cap_for 0.5 +. 1e-9))

let test_prepare_deterministic () =
  let a = Scenario.prepare ~utilization:0.4 ~seed:9 () in
  let b = Scenario.prepare ~utilization:0.4 ~seed:9 () in
  Alcotest.(check int) "same flow count"
    (Net_state.flow_count a.Scenario.net)
    (Net_state.flow_count b.Scenario.net);
  let res net =
    Array.init
      (Graph.edge_count (Net_state.graph net))
      (fun i -> Net_state.residual net i)
  in
  Alcotest.(check bool) "same residuals" true (res a.Scenario.net = res b.Scenario.net)

let test_prepare_benson_background () =
  let s = Scenario.prepare ~utilization:0.3 ~seed:5 ~background:Scenario.Benson () in
  Alcotest.(check bool) "filled" true
    (s.Scenario.background_report.Background.placed > 0)

let test_events_shapes () =
  let s = Scenario.prepare ~utilization:0.3 ~seed:5 () in
  let events = Scenario.events ~shape:(Event_gen.Range (5, 9)) s ~n:7 in
  Alcotest.(check int) "count" 7 (List.length events);
  List.iter
    (fun ev ->
      let n = Event.work_count ev in
      Alcotest.(check bool) "flows in range" true (n >= 5 && n <= 9))
    events;
  (* Flow ids must not collide with background ids. *)
  List.iter
    (fun ev ->
      List.iter
        (fun (r : Flow_record.t) ->
          Alcotest.(check bool) "namespaced ids" true (r.Flow_record.id >= 1_000_000))
        (Event.install_records ev))
    events

let test_churn_deterministic () =
  let s = Scenario.prepare ~utilization:0.3 ~seed:5 () in
  let c1 = Scenario.churn ~seed:11 s in
  let c2 = Scenario.churn ~seed:11 s in
  let f1 = c1.Engine.make_flow ~id:10_000_000 in
  let f2 = c2.Engine.make_flow ~id:10_000_000 in
  Alcotest.(check bool) "same stream" true (f1 = f2);
  Alcotest.(check int) "id namespace" 10_000_000 c1.Engine.first_id

let suite =
  [
    ("prepare reaches target", `Slow, test_prepare_reaches_target);
    ("prepare access cap", `Slow, test_prepare_access_cap);
    ("prepare deterministic", `Slow, test_prepare_deterministic);
    ("prepare benson", `Slow, test_prepare_benson_background);
    ("events shapes", `Slow, test_events_shapes);
    ("churn deterministic", `Slow, test_churn_deterministic);
  ]
