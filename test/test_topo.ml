(* nu_topo: Fat-Tree and leaf-spine fabrics, topology interface. *)

let ft4 () = Fat_tree.create ~k:4 ()
let ft8 () = Fat_tree.create ~k:8 ()

let test_fat_tree_counts () =
  let t = ft4 () in
  Alcotest.(check int) "hosts k=4" 16 (Fat_tree.host_count t);
  Alcotest.(check int) "switches k=4" 20 (Fat_tree.switch_count t);
  let t8 = ft8 () in
  Alcotest.(check int) "hosts k=8" 128 (Fat_tree.host_count t8);
  Alcotest.(check int) "switches k=8" 80 (Fat_tree.switch_count t8);
  (* 5k^2/4 and k^3/4 from the paper. *)
  Alcotest.(check int) "5k^2/4" (5 * 8 * 8 / 4) (Fat_tree.switch_count t8);
  Alcotest.(check int) "k^3/4" (8 * 8 * 8 / 4) (Fat_tree.host_count t8)

let test_fat_tree_edge_count () =
  (* k=4: host links 16, edge-agg 4 per pod x 4 pods, agg-core 2 per agg x 8
     aggs; each link is two directed edges. *)
  let t = ft4 () in
  Alcotest.(check int) "directed edges" ((16 + 16 + 16) * 2)
    (Graph.edge_count (Fat_tree.graph t))

let test_fat_tree_invalid_k () =
  Alcotest.check_raises "odd k"
    (Invalid_argument "Fat_tree.create: k must be a positive even integer")
    (fun () -> ignore (Fat_tree.create ~k:3 ()));
  Alcotest.check_raises "zero k"
    (Invalid_argument "Fat_tree.create: k must be a positive even integer")
    (fun () -> ignore (Fat_tree.create ~k:0 ()))

let test_fat_tree_kinds () =
  let t = ft4 () in
  Alcotest.(check bool) "core" true (Fat_tree.kind t 0 = Fat_tree.Core);
  Alcotest.(check bool) "agg pod0" true
    (Fat_tree.kind t (Fat_tree.aggregation t ~pod:0 0) = Fat_tree.Aggregation 0);
  Alcotest.(check bool) "edge pod3" true
    (Fat_tree.kind t (Fat_tree.edge t ~pod:3 1) = Fat_tree.Edge 3);
  Alcotest.(check bool) "host" true
    (Fat_tree.kind t (Fat_tree.host t 5) = Fat_tree.Host 5)

let test_fat_tree_host_index_roundtrip () =
  let t = ft4 () in
  for i = 0 to Fat_tree.host_count t - 1 do
    Alcotest.(check int) "roundtrip" i (Fat_tree.host_index t (Fat_tree.host t i))
  done;
  Alcotest.check_raises "not a host"
    (Invalid_argument "Fat_tree.host_index: not a host") (fun () ->
      ignore (Fat_tree.host_index t 0))

let test_fat_tree_pod_of_host () =
  let t = ft4 () in
  (* k=4: 4 hosts per pod (2 edge switches x 2 hosts). *)
  Alcotest.(check int) "host 0 pod" 0 (Fat_tree.pod_of_host t (Fat_tree.host t 0));
  Alcotest.(check int) "host 4 pod" 1 (Fat_tree.pod_of_host t (Fat_tree.host t 4));
  Alcotest.(check int) "host 15 pod" 3 (Fat_tree.pod_of_host t (Fat_tree.host t 15))

let test_fat_tree_ecmp_same_edge () =
  let t = ft4 () in
  (* hosts 0 and 1 share edge switch 0 of pod 0. *)
  let paths = Fat_tree.ecmp_paths t ~src:(Fat_tree.host t 0) ~dst:(Fat_tree.host t 1) in
  Alcotest.(check int) "single path" 1 (List.length paths);
  Alcotest.(check int) "2 hops" 2 (Path.hops (List.hd paths))

let test_fat_tree_ecmp_same_pod () =
  let t = ft4 () in
  (* hosts 0 and 2 are in pod 0 under different edge switches. *)
  let paths = Fat_tree.ecmp_paths t ~src:(Fat_tree.host t 0) ~dst:(Fat_tree.host t 2) in
  Alcotest.(check int) "k/2 paths" 2 (List.length paths);
  List.iter (fun p -> Alcotest.(check int) "4 hops" 4 (Path.hops p)) paths

let test_fat_tree_ecmp_inter_pod () =
  let t = ft4 () in
  let src = Fat_tree.host t 0 and dst = Fat_tree.host t 15 in
  let paths = Fat_tree.ecmp_paths t ~src ~dst in
  Alcotest.(check int) "(k/2)^2 paths" 4 (List.length paths);
  List.iter
    (fun p ->
      Alcotest.(check int) "6 hops" 6 (Path.hops p);
      Alcotest.(check int) "starts at src" src (Path.src p);
      Alcotest.(check int) "ends at dst" dst (Path.dst p))
    paths;
  let distinct = List.sort_uniq compare (List.map Path.edge_ids paths) in
  Alcotest.(check int) "all distinct" 4 (List.length distinct)

let test_fat_tree_ecmp_self () =
  let t = ft4 () in
  Alcotest.(check (list pass)) "no self paths" []
    (Fat_tree.ecmp_paths t ~src:(Fat_tree.host t 0) ~dst:(Fat_tree.host t 0))

let test_fat_tree_ecmp_not_host () =
  let t = ft4 () in
  Alcotest.check_raises "switch id rejected"
    (Invalid_argument "Fat_tree.host_index: not a host") (fun () ->
      ignore (Fat_tree.ecmp_paths t ~src:0 ~dst:(Fat_tree.host t 1)))

let test_fat_tree_topology_valid () =
  let topo = Fat_tree.to_topology (ft4 ()) in
  (match Topology.validate topo with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "hosts" 16 (Topology.host_count topo);
  Alcotest.(check int) "switches" 20 (Topology.switch_count topo);
  Alcotest.(check int) "diameter" 6 topo.Topology.diameter

let test_fat_tree_link_capacity () =
  let t = Fat_tree.create ~k:4 ~link_capacity:250.0 () in
  Alcotest.(check (float 0.0)) "capacity" 250.0 (Fat_tree.link_capacity t);
  Graph.iter_edges (Fat_tree.graph t) (fun e ->
      Alcotest.(check (float 0.0)) "uniform" 250.0 e.Graph.capacity)

let test_fat_tree_edge_switch_of_host () =
  let t = ft4 () in
  let h0 = Fat_tree.host t 0 in
  let sw = Fat_tree.edge_switch_of_host t h0 in
  Alcotest.(check bool) "edge kind" true
    (match Fat_tree.kind t sw with Fat_tree.Edge _ -> true | _ -> false);
  Alcotest.(check bool) "adjacent" true
    (Graph.find_edge (Fat_tree.graph t) ~src:h0 ~dst:sw <> None)

(* ------------------------------------------------------------------ *)
(* Leaf-spine                                                          *)

let test_leaf_spine_counts () =
  let t = Leaf_spine.create ~leaves:4 ~spines:2 ~hosts_per_leaf:3 () in
  Alcotest.(check int) "hosts" 12 (Leaf_spine.host_count t);
  Alcotest.(check int) "leaves" 4 (Leaf_spine.leaves t);
  Alcotest.(check int) "spines" 2 (Leaf_spine.spines t);
  (* links: 4x2 leaf-spine + 12 host links, two directed edges each. *)
  Alcotest.(check int) "edges" ((8 + 12) * 2)
    (Graph.edge_count (Leaf_spine.graph t))

let test_leaf_spine_paths () =
  let t = Leaf_spine.create ~leaves:4 ~spines:3 ~hosts_per_leaf:2 () in
  let intra =
    Leaf_spine.paths t ~src:(Leaf_spine.host t 0) ~dst:(Leaf_spine.host t 1)
  in
  Alcotest.(check int) "intra-leaf single" 1 (List.length intra);
  Alcotest.(check int) "intra hops" 2 (Path.hops (List.hd intra));
  let inter =
    Leaf_spine.paths t ~src:(Leaf_spine.host t 0) ~dst:(Leaf_spine.host t 7)
  in
  Alcotest.(check int) "one per spine" 3 (List.length inter);
  List.iter (fun p -> Alcotest.(check int) "4 hops" 4 (Path.hops p)) inter

let test_leaf_spine_topology_valid () =
  let topo = Leaf_spine.to_topology (Leaf_spine.create ~leaves:3 ~spines:2 ~hosts_per_leaf:2 ()) in
  match Topology.validate topo with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_leaf_spine_invalid () =
  Alcotest.check_raises "bad counts"
    (Invalid_argument "Leaf_spine.create: counts must be positive") (fun () ->
      ignore (Leaf_spine.create ~leaves:0 ()))

(* ------------------------------------------------------------------ *)
(* Jellyfish                                                           *)

let small_jf () =
  Jellyfish.create ~switches:8 ~ports_per_switch:5 ~inter_switch_ports:3
    ~candidate_paths_per_pair:4 ~seed:7 ()

let test_jellyfish_counts () =
  let t = small_jf () in
  Alcotest.(check int) "switches" 8 (Jellyfish.switch_count t);
  Alcotest.(check int) "hosts" 16 (Jellyfish.host_count t);
  (* 8x3/2 switch links + 16 host links, two directed edges each. *)
  Alcotest.(check int) "edges" ((12 + 16) * 2) (Graph.edge_count (Jellyfish.graph t))

let test_jellyfish_regular () =
  let t = small_jf () in
  Alcotest.(check bool) "r-regular" true (Jellyfish.degree_ok t)

let test_jellyfish_deterministic () =
  let a = small_jf () and b = small_jf () in
  let sig_of t =
    Graph.fold_edges (Jellyfish.graph t) ~init:[] ~f:(fun acc e ->
        (e.Graph.src, e.Graph.dst) :: acc)
  in
  Alcotest.(check bool) "same seed same graph" true (sig_of a = sig_of b)

let test_jellyfish_paths () =
  let t = small_jf () in
  let src = Jellyfish.host t 0 and dst = Jellyfish.host t 15 in
  let paths = Jellyfish.paths t ~src ~dst in
  Alcotest.(check bool) "nonempty, bounded" true
    (List.length paths >= 1 && List.length paths <= 4);
  List.iter
    (fun p ->
      Alcotest.(check int) "src" src (Path.src p);
      Alcotest.(check int) "dst" dst (Path.dst p))
    paths;
  (* Memoised: second call is the same list. *)
  Alcotest.(check bool) "memoised" true (Jellyfish.paths t ~src ~dst == paths)

let test_jellyfish_topology_valid () =
  let topo = Jellyfish.to_topology (small_jf ()) in
  match Topology.validate topo with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_jellyfish_invalid_params () =
  Alcotest.check_raises "ports" (Invalid_argument "Jellyfish.create: inter_switch_ports")
    (fun () -> ignore (Jellyfish.create ~ports_per_switch:4 ~inter_switch_ports:4 ~seed:1 ()));
  Alcotest.check_raises "odd stubs" (Invalid_argument "Jellyfish.create: odd stub count")
    (fun () ->
      ignore
        (Jellyfish.create ~switches:5 ~ports_per_switch:8 ~inter_switch_ports:3
           ~seed:1 ()))

(* ------------------------------------------------------------------ *)
(* Topology interface                                                  *)

let test_topology_is_host () =
  let topo = Fat_tree.to_topology (ft4 ()) in
  let host0 = topo.Topology.hosts.(0) in
  Alcotest.(check bool) "host" true (Topology.is_host topo host0);
  Alcotest.(check bool) "switch" false (Topology.is_host topo 0)

let test_topology_validate_catches_bad_paths () =
  let base = Fat_tree.to_topology (ft4 ()) in
  let broken = { base with Topology.candidate_paths = (fun ~src:_ ~dst:_ -> []) } in
  match Topology.validate broken with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "validation must fail on empty candidate sets"

let test_topology_validate_catches_overlap () =
  let base = Fat_tree.to_topology (ft4 ()) in
  (* A node listed as both host and switch must be rejected. *)
  let bad = { base with Topology.switches = Array.append base.Topology.switches [| base.Topology.hosts.(0) |] } in
  match Topology.validate bad with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "validation must fail on overlapping partitions"

let suite =
  [
    ("fat-tree counts", `Quick, test_fat_tree_counts);
    ("fat-tree edge count", `Quick, test_fat_tree_edge_count);
    ("fat-tree invalid k", `Quick, test_fat_tree_invalid_k);
    ("fat-tree kinds", `Quick, test_fat_tree_kinds);
    ("fat-tree host roundtrip", `Quick, test_fat_tree_host_index_roundtrip);
    ("fat-tree pods", `Quick, test_fat_tree_pod_of_host);
    ("fat-tree ecmp same edge", `Quick, test_fat_tree_ecmp_same_edge);
    ("fat-tree ecmp same pod", `Quick, test_fat_tree_ecmp_same_pod);
    ("fat-tree ecmp inter pod", `Quick, test_fat_tree_ecmp_inter_pod);
    ("fat-tree ecmp self", `Quick, test_fat_tree_ecmp_self);
    ("fat-tree ecmp non-host", `Quick, test_fat_tree_ecmp_not_host);
    ("fat-tree topology valid", `Quick, test_fat_tree_topology_valid);
    ("fat-tree link capacity", `Quick, test_fat_tree_link_capacity);
    ("fat-tree edge switch", `Quick, test_fat_tree_edge_switch_of_host);
    ("leaf-spine counts", `Quick, test_leaf_spine_counts);
    ("leaf-spine paths", `Quick, test_leaf_spine_paths);
    ("leaf-spine valid", `Quick, test_leaf_spine_topology_valid);
    ("leaf-spine invalid", `Quick, test_leaf_spine_invalid);
    ("jellyfish counts", `Quick, test_jellyfish_counts);
    ("jellyfish regular", `Quick, test_jellyfish_regular);
    ("jellyfish deterministic", `Quick, test_jellyfish_deterministic);
    ("jellyfish paths", `Quick, test_jellyfish_paths);
    ("jellyfish topology valid", `Slow, test_jellyfish_topology_valid);
    ("jellyfish invalid", `Quick, test_jellyfish_invalid_params);
    ("topology is_host", `Quick, test_topology_is_host);
    ("topology validate bad paths", `Quick, test_topology_validate_catches_bad_paths);
    ("topology validate overlap", `Quick, test_topology_validate_catches_overlap);
  ]
