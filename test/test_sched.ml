(* nu_sched: execution model, policies, engine, metrics. *)

let topo4 () = Fat_tree.to_topology (Fat_tree.create ~k:4 ())

let flow ?(id = 0) ?(demand = 50.0) ?(duration = 10.0) ?(arrival = 0.0) src dst
    =
  Flow_record.v ~id ~src ~dst ~size_mbit:(demand *. duration)
    ~duration_s:duration ~arrival_s:arrival

(* A small deterministic workload: [n] events of [m] small flows each. *)
let workload ?(n = 6) ?(m = 5) ?(arrival = fun _ -> 0.0) () =
  let next = ref 0 in
  List.init n (fun i ->
      let flows =
        List.init m (fun j ->
            let id = !next in
            incr next;
            let src = (i + j) mod 16 in
            let dst = (src + 3 + j) mod 16 in
            let dst = if dst = src then (dst + 1) mod 16 else dst in
            flow ~id ~demand:(10.0 +. float_of_int (j * 5)) ~arrival:(arrival i)
              src dst)
      in
      Event.of_spec { Event_gen.event_id = i; arrival_s = arrival i; flows })

let loaded_net () =
  let net = Net_state.create (topo4 ()) in
  let next = ref 1000 in
  for src = 0 to 7 do
    let dst = 15 - src in
    let r = flow ~id:!next ~demand:300.0 src dst in
    incr next;
    match Routing.select net r with
    | Some p -> ( match Net_state.place net r p with Ok () -> () | Error _ -> ())
    | None -> ()
  done;
  net

(* ------------------------------------------------------------------ *)
(* Exec_model                                                          *)

let test_exec_plan_time () =
  let m = Exec_model.default in
  Alcotest.(check (float 1e-12)) "linear" (m.Exec_model.plan_unit_cost_s *. 100.0)
    (Exec_model.plan_time m ~work_units:100);
  Alcotest.check_raises "negative" (Invalid_argument "Exec_model.plan_time")
    (fun () -> ignore (Exec_model.plan_time m ~work_units:(-1)))

let test_exec_execution_time () =
  let net = loaded_net () in
  let ev = Event.of_spec { Event_gen.event_id = 0; arrival_s = 0.0; flows = [ flow ~id:0 0 15 ] } in
  let plan = Planner.plan net ev in
  let m = Exec_model.default in
  let t = Exec_model.execution_time m plan in
  (* One flow: no intra-event speedup applies. *)
  let expected =
    (float_of_int plan.Planner.rule_hops *. m.Exec_model.rule_install_s
    +. plan.Planner.transfer_mbit /. m.Exec_model.migration_rate_mbps)
  in
  Alcotest.(check (float 1e-9)) "single flow no parallelism" expected t

let test_exec_parallelism_cap () =
  let net = loaded_net () in
  let flows = List.init 10 (fun i -> flow ~id:i ~demand:5.0 (i mod 8) ((i + 5) mod 16)) in
  let ev = Event.of_spec { Event_gen.event_id = 0; arrival_s = 0.0; flows } in
  let plan = Planner.plan net ev in
  let seq = Exec_model.execution_time Exec_model.sequential plan in
  let par = Exec_model.execution_time Exec_model.default plan in
  Alcotest.(check bool) "parallel faster" true (par < seq);
  Alcotest.(check (float 1e-9)) "factor 8" (seq /. 8.0) par

let test_exec_validation () =
  let net = loaded_net () in
  let ev = Event.of_spec { Event_gen.event_id = 0; arrival_s = 0.0; flows = [ flow ~id:0 0 15 ] } in
  let plan = Planner.plan net ev in
  Alcotest.check_raises "parallelism < 1"
    (Invalid_argument "Exec_model.execution_time: parallelism < 1") (fun () ->
      ignore
        (Exec_model.execution_time
           { Exec_model.default with Exec_model.intra_event_parallelism = 0.5 }
           plan))

(* ------------------------------------------------------------------ *)
(* Policy                                                              *)

let test_policy_names () =
  Alcotest.(check string) "fifo" "fifo" (Policy.name Policy.Fifo);
  Alcotest.(check string) "lmtf" "lmtf(a=4)" (Policy.name (Policy.Lmtf { alpha = 4 }));
  Alcotest.(check string) "plmtf" "p-lmtf(a=2)" (Policy.name (Policy.Plmtf { alpha = 2 }));
  Alcotest.(check string) "reorder" "reorder" (Policy.name Policy.Reorder);
  Alcotest.(check string) "flow rr" "flow-level(rr)"
    (Policy.name (Policy.Flow_level Policy.Round_robin))

let test_policy_validate () =
  Alcotest.(check bool) "valid" true (Policy.validate (Policy.Lmtf { alpha = 1 }) = Ok ());
  Alcotest.(check bool) "invalid" true (Policy.validate (Policy.Plmtf { alpha = 0 }) <> Ok ());
  Alcotest.(check int) "paper alpha" 4 Policy.default_alpha

(* ------------------------------------------------------------------ *)
(* Engine                                                              *)

let run_policy ?(events = workload ()) policy =
  Engine.run ~net:(loaded_net ()) ~events ~seed:5 policy

let test_engine_completes_all () =
  List.iter
    (fun policy ->
      let run = run_policy policy in
      Alcotest.(check int) "all events reported" 6 (Array.length run.Engine.events);
      Array.iter
        (fun (r : Engine.event_result) ->
          Alcotest.(check bool) "completion after start" true
            (r.Engine.completion_s >= r.Engine.start_s);
          Alcotest.(check bool) "start after arrival" true
            (r.Engine.start_s >= r.Engine.arrival_s))
        run.Engine.events)
    [
      Policy.Fifo;
      Policy.Reorder;
      Policy.Lmtf { alpha = 2 };
      Policy.Plmtf { alpha = 2 };
      Policy.Flow_level Policy.Round_robin;
      Policy.Flow_level Policy.By_arrival;
    ]

let test_engine_results_sorted_by_id () =
  let run = run_policy Policy.Fifo in
  Array.iteri
    (fun i (r : Engine.event_result) -> Alcotest.(check int) "sorted" i r.Engine.event_id)
    run.Engine.events

let test_engine_fifo_order () =
  (* Under FIFO with batch arrivals, start times must follow event id
     order (arrival order) strictly, one event at a time. *)
  let run = run_policy Policy.Fifo in
  let starts = Array.map (fun r -> r.Engine.start_s) run.Engine.events in
  Array.iteri
    (fun i s -> if i > 0 then Alcotest.(check bool) "monotone starts" true (s >= starts.(i - 1)))
    starts;
  Alcotest.(check int) "one round per event" 6 run.Engine.rounds

let test_engine_deterministic () =
  let r1 = run_policy (Policy.Lmtf { alpha = 2 }) in
  let r2 = run_policy (Policy.Lmtf { alpha = 2 }) in
  Alcotest.(check bool) "same seed same run" true
    (Array.for_all2
       (fun (a : Engine.event_result) (b : Engine.event_result) ->
         a.Engine.completion_s = b.Engine.completion_s
         && a.Engine.cost_mbit = b.Engine.cost_mbit)
       r1.Engine.events r2.Engine.events)

let test_engine_seed_changes_lmtf () =
  let events = workload ~n:10 () in
  let a = Engine.run ~net:(loaded_net ()) ~events ~seed:1 (Policy.Lmtf { alpha = 2 }) in
  let b = Engine.run ~net:(loaded_net ()) ~events ~seed:2 (Policy.Lmtf { alpha = 2 }) in
  (* Different sampling usually yields different schedules; allow equality
     but require the runs to be well-formed. *)
  Alcotest.(check int) "a complete" 10 (Array.length a.Engine.events);
  Alcotest.(check int) "b complete" 10 (Array.length b.Engine.events)

let test_engine_ect_accessors () =
  let run = run_policy Policy.Fifo in
  Array.iter
    (fun (r : Engine.event_result) ->
      Alcotest.(check (float 1e-9)) "ect" (r.Engine.completion_s -. r.Engine.arrival_s)
        (Engine.ect r);
      Alcotest.(check (float 1e-9)) "queuing" (r.Engine.start_s -. r.Engine.arrival_s)
        (Engine.queuing_delay r))
    run.Engine.events

let test_engine_poisson_arrivals_respected () =
  let events = workload ~arrival:(fun i -> float_of_int i *. 100.0) () in
  let run = Engine.run ~net:(loaded_net ()) ~events ~seed:5 Policy.Fifo in
  Array.iter
    (fun (r : Engine.event_result) ->
      Alcotest.(check bool) "never starts before arrival" true
        (r.Engine.start_s >= r.Engine.arrival_s))
    run.Engine.events;
  (* Long gaps: the service idles, so each event starts shortly after
     its own arrival. *)
  Array.iter
    (fun (r : Engine.event_result) ->
      Alcotest.(check bool) "no queueing with sparse arrivals" true
        (Engine.queuing_delay r < 100.0))
    run.Engine.events

let test_engine_flow_level_slower_on_average () =
  let events = workload ~n:8 ~m:6 () in
  let fifo = Engine.run ~net:(loaded_net ()) ~events ~seed:5 Policy.Fifo in
  let fl =
    Engine.run ~net:(loaded_net ()) ~events ~seed:5
      (Policy.Flow_level Policy.Round_robin)
  in
  let avg (r : Engine.run_result) =
    Descriptive.mean (Array.map Engine.ect r.Engine.events)
  in
  Alcotest.(check bool) "event-level no slower" true (avg fifo <= avg fl)

let test_engine_invalid_policy () =
  Alcotest.check_raises "alpha 0" (Invalid_argument "Engine.run: alpha must be >= 1")
    (fun () ->
      ignore (Engine.run ~net:(loaded_net ()) ~events:(workload ()) (Policy.Lmtf { alpha = 0 })))

let test_engine_plan_accounting () =
  let fifo = run_policy Policy.Fifo in
  let lmtf = run_policy (Policy.Lmtf { alpha = 2 }) in
  Alcotest.(check bool) "lmtf pays more planning" true
    (lmtf.Engine.total_plan_units > fifo.Engine.total_plan_units);
  Alcotest.(check (float 1e-9)) "plan time = units x cost"
    (Exec_model.plan_time Exec_model.default ~work_units:fifo.Engine.total_plan_units)
    fifo.Engine.total_plan_time_s

let test_engine_total_cost_matches_events () =
  let run = run_policy (Policy.Lmtf { alpha = 2 }) in
  let sum = Array.fold_left (fun a (r : Engine.event_result) -> a +. r.Engine.cost_mbit) 0.0 run.Engine.events in
  Alcotest.(check (float 1e-6)) "total" sum run.Engine.total_cost_mbit

let test_engine_churn_expires_and_refills () =
  let net = loaded_net () in
  let maker_rng = Prng.create 77 in
  let churn =
    {
      Engine.make_flow =
        (fun ~id ->
          (Yahoo_trace.generate ~first_id:id maker_rng ~host_count:16 ~n:1).(0));
      target_utilization = 0.2;
      max_placements_per_round = 50;
      first_id = 50_000;
    }
  in
  let events = workload ~n:6 () in
  let run = Engine.run ~net ~events ~seed:5 ~churn Policy.Fifo in
  Alcotest.(check int) "completes" 6 (Array.length run.Engine.events);
  (match Net_state.invariants_ok net with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "utilization maintained" true
    (run.Engine.final_fabric_utilization >= 0.0)

let test_engine_plmtf_co_schedules () =
  (* Many small events on a lightly loaded network: P-LMTF must manage
     to co-schedule at least one event. *)
  let events = workload ~n:10 ~m:3 () in
  let run = Engine.run ~net:(loaded_net ()) ~events ~seed:5 (Policy.Plmtf { alpha = 4 }) in
  let co =
    Array.fold_left
      (fun acc (r : Engine.event_result) -> if r.Engine.co_scheduled then acc + 1 else acc)
      0 run.Engine.events
  in
  Alcotest.(check bool) "co-scheduling happens" true (co > 0);
  Alcotest.(check bool) "fewer rounds than events" true (run.Engine.rounds < 10)

(* Estimate cache: bit-identical results with the cache on or off, and
   hits actually occur when probes' read sets survive across rounds. *)
let check_same_run (a : Engine.run_result) (b : Engine.run_result) =
  Alcotest.(check int) "rounds" a.Engine.rounds b.Engine.rounds;
  Alcotest.(check int) "plan units" a.Engine.total_plan_units
    b.Engine.total_plan_units;
  Alcotest.(check (float 0.0)) "total cost" a.Engine.total_cost_mbit
    b.Engine.total_cost_mbit;
  Alcotest.(check (float 0.0)) "makespan" a.Engine.makespan_s b.Engine.makespan_s;
  Alcotest.(check (float 0.0)) "final utilization"
    a.Engine.final_fabric_utilization b.Engine.final_fabric_utilization;
  Alcotest.(check bool) "event results identical" true
    (a.Engine.events = b.Engine.events);
  Alcotest.(check bool) "round log identical" true
    (a.Engine.rounds_log = b.Engine.rounds_log)

let test_engine_cache_hits_and_determinism () =
  (* Three single-flow events under distinct edge switches: their probe
     read sets are pairwise disjoint, so once Reorder executes one, the
     others' cached estimates must survive to the next round. *)
  let mk i src dst =
    Event.of_spec
      {
        Event_gen.event_id = i;
        arrival_s = 0.0;
        flows = [ flow ~id:(100 + i) ~demand:20.0 src dst ];
      }
  in
  let events = [ mk 0 0 1; mk 1 4 5; mk 2 8 9 ] in
  let net = Net_state.create (topo4 ()) in
  let before = Obs.Counters.snapshot () in
  let a = Engine.run ~net:(Net_state.copy net) ~events ~seed:11 Policy.Reorder in
  let d = Obs.Counters.diff ~before ~after:(Obs.Counters.snapshot ()) in
  Alcotest.(check bool) "cache hits occur" true
    (Obs.Counters.value d Obs.Counters.Estimate_cache_hits > 0);
  let b =
    Engine.run ~estimate_cache:false ~net:(Net_state.copy net) ~events
      ~seed:11 Policy.Reorder
  in
  check_same_run a b

let test_engine_cache_determinism_churn () =
  (* The strong form: LMTF under churn — costs drift between rounds, the
     cache hits or misses unpredictably, and the simulated run must not
     be able to tell. *)
  let events = workload ~n:8 ~m:4 () in
  let churn () =
    let maker_rng = Prng.create 77 in
    {
      Engine.make_flow =
        (fun ~id ->
          (Yahoo_trace.generate ~first_id:id maker_rng ~host_count:16 ~n:1).(0));
      target_utilization = 0.25;
      max_placements_per_round = 50;
      first_id = 50_000;
    }
  in
  let run cache =
    Engine.run ~estimate_cache:cache ~net:(loaded_net ()) ~events ~seed:5
      ~churn:(churn ()) (Policy.Lmtf { alpha = 3 })
  in
  check_same_run (run true) (run false)

let test_engine_flow_level_orders_differ () =
  let events = workload ~n:4 ~m:4 ~arrival:(fun i -> float_of_int i *. 0.001) () in
  let rr = Engine.run ~net:(loaded_net ()) ~events ~seed:5 (Policy.Flow_level Policy.Round_robin) in
  let ba = Engine.run ~net:(loaded_net ()) ~events ~seed:5 (Policy.Flow_level Policy.By_arrival) in
  (* By-arrival groups each event's flows, so the first event finishes
     earlier than under round-robin interleaving. *)
  let first_ect (r : Engine.run_result) = Engine.ect r.Engine.events.(0) in
  Alcotest.(check bool) "grouping helps the first event" true
    (first_ect ba <= first_ect rr)

let test_engine_round_log () =
  let run = run_policy Policy.Fifo in
  Alcotest.(check int) "one entry per round" run.Engine.rounds
    (List.length run.Engine.rounds_log);
  let all_executed =
    List.concat_map (fun ri -> ri.Engine.executed) run.Engine.rounds_log
  in
  Alcotest.(check int) "every event logged once" 6
    (List.length (List.sort_uniq compare all_executed));
  List.iter
    (fun (ri : Engine.round_info) ->
      Alcotest.(check bool) "utilization in range" true
        (ri.Engine.fabric_utilization >= 0.0
        && ri.Engine.fabric_utilization <= 1.0);
      Alcotest.(check bool) "units non-negative" true (ri.Engine.round_units >= 0))
    run.Engine.rounds_log;
  (* Round starts are chronological. *)
  let starts = List.map (fun ri -> ri.Engine.round_start_s) run.Engine.rounds_log in
  Alcotest.(check bool) "chronological" true
    (List.sort compare starts = starts)

let test_engine_round_log_plmtf_batches () =
  let events = workload ~n:10 ~m:3 () in
  let run = Engine.run ~net:(loaded_net ()) ~events ~seed:5 (Policy.Plmtf { alpha = 4 }) in
  let co_total =
    List.fold_left (fun a ri -> a + ri.Engine.co_count) 0 run.Engine.rounds_log
  in
  let co_results =
    Array.fold_left
      (fun a (r : Engine.event_result) -> if r.Engine.co_scheduled then a + 1 else a)
      0 run.Engine.events
  in
  Alcotest.(check int) "log and results agree on co-scheduling" co_results co_total

let test_engine_flow_level_empty_log () =
  let run = run_policy (Policy.Flow_level Policy.Round_robin) in
  Alcotest.(check int) "no event-level rounds" 0 (List.length run.Engine.rounds_log)

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)

let test_metrics_summary () =
  let run = run_policy Policy.Fifo in
  let s = Metrics.of_run run in
  Alcotest.(check int) "events" 6 s.Metrics.n_events;
  Alcotest.(check bool) "avg <= tail" true (s.Metrics.avg_ect_s <= s.Metrics.tail_ect_s);
  Alcotest.(check bool) "p95 <= tail" true (s.Metrics.p95_ect_s <= s.Metrics.tail_ect_s);
  Alcotest.(check bool) "p95 <= p99" true (s.Metrics.p95_ect_s <= s.Metrics.p99_ect_s +. 1e-12);
  Alcotest.(check bool) "p99 <= tail" true (s.Metrics.p99_ect_s <= s.Metrics.tail_ect_s +. 1e-12);
  Alcotest.(check bool) "queuing <= ect" true (s.Metrics.avg_queuing_s <= s.Metrics.avg_ect_s);
  Alcotest.(check string) "policy name" "fifo" s.Metrics.policy_name;
  Alcotest.(check bool) "makespan >= tail" true (s.Metrics.makespan_s >= s.Metrics.tail_ect_s -. 1e-9)

let test_metrics_zero_events () =
  let run = Engine.run ~seed:1 ~net:(loaded_net ()) ~events:[] Policy.Fifo in
  let s = Metrics.of_run run in
  Alcotest.(check int) "no events" 0 s.Metrics.n_events;
  Alcotest.(check (float 0.0)) "avg ect" 0.0 s.Metrics.avg_ect_s;
  Alcotest.(check (float 0.0)) "p95 ect" 0.0 s.Metrics.p95_ect_s;
  Alcotest.(check (float 0.0)) "p99 ect" 0.0 s.Metrics.p99_ect_s;
  Alcotest.(check (float 0.0)) "tail ect" 0.0 s.Metrics.tail_ect_s;
  Alcotest.(check string) "policy name" "fifo" s.Metrics.policy_name;
  (* Summaries stay renderable. *)
  let out = Format.asprintf "%a" Metrics.pp_summary s in
  Alcotest.(check bool) "pp renders" true (String.length out > 0)

let test_metrics_arrays () =
  let run = run_policy Policy.Fifo in
  Alcotest.(check int) "ects" 6 (Array.length (Metrics.ects run));
  Alcotest.(check int) "delays" 6 (Array.length (Metrics.queuing_delays run))

let test_metrics_reduction () =
  Alcotest.(check (float 1e-9)) "reduction" 0.5 (Metrics.reduction ~baseline:10.0 5.0);
  Alcotest.(check (float 1e-9)) "speedup" 2.0 (Metrics.speedup ~baseline:10.0 5.0)

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec scan i = i + n <= h && (String.sub hay i n = needle || scan (i + 1)) in
  n = 0 || scan 0

(* ------------------------------------------------------------------ *)
(* Multicore probe fan-out: the parallel batch path must be a pure
   wall-clock optimisation — every decision, and therefore the run
   digest, bit-identical to the sequential pass at any domain count. *)

let mc_churn seed =
  let maker_rng = Prng.create (1000 + seed) in
  {
    Engine.make_flow =
      (fun ~id ->
        (Yahoo_trace.generate ~first_id:id maker_rng ~host_count:16 ~n:1).(0));
    target_utilization = 0.3;
    max_placements_per_round = 40;
    first_id = 60_000;
  }

let prop_mc_digest_equal =
  QCheck.Test.make ~name:"probe fan-out preserves the digest" ~count:6
    QCheck.small_int (fun seed ->
      (* Rotate through the probing schedulers: LMTF (bounded batches),
         Reorder (whole-queue batches) and P-LMTF (whose co-attempts
         commit transactions between batches — the redo log's
         commit-time conversion path). *)
      let policy =
        match seed mod 3 with
        | 0 -> Policy.Lmtf { alpha = 4 }
        | 1 -> Policy.Reorder
        | _ -> Policy.Plmtf { alpha = 4 }
      in
      let events = workload ~n:10 ~m:4 () in
      let digest domains =
        Run_digest.of_run
          (Engine.run ~net:(loaded_net ()) ~events ~seed:(seed + 3)
             ~churn:(mc_churn seed) ~co_max_cost_mbit:100.0 ~domains policy)
      in
      digest 1 = digest 4)

let test_mc_digest_with_faults () =
  (* Faults exercise the remaining redo-op kinds (disable/enable,
     degrade/restore) and the round-guard transactions whose commits
     feed the log; the fan-out must still not move a single bit. *)
  let events = workload ~n:10 ~m:4 ~arrival:(fun i -> float_of_int i *. 0.01) () in
  let fault_edges () =
    match Net_state.fabric_edges (loaded_net ()) with
    | a :: b :: _ -> (a, b)
    | _ -> Alcotest.fail "expected at least two fabric edges"
  in
  let e1, e2 = fault_edges () in
  let schedule =
    [
      { Fault_model.at_s = 0.0; action = Fault_model.Degrade { edge = e1; lost_mbps = 200.0 } };
      { Fault_model.at_s = 0.05; action = Fault_model.Link_down e2 };
      { Fault_model.at_s = 0.2; action = Fault_model.Restore e1 };
      { Fault_model.at_s = 0.3; action = Fault_model.Link_up e2 };
    ]
  in
  let digest domains =
    Run_digest.of_run
      (Engine.run ~net:(loaded_net ()) ~events ~seed:9 ~churn:(mc_churn 17)
         ~injector:(Injector.create schedule) ~domains
         (Policy.Lmtf { alpha = 4 }))
  in
  Alcotest.(check string) "fault run digest independent of domains"
    (digest 1) (digest 4)

(* Estimate cache invalidation granularity: a degrade→restore cycle
   bumps exactly the touched edge's version, so cached probes that read
   it miss afterwards while probes of disjoint read sets keep hitting. *)
let test_cache_degrade_restore_exact_invalidation () =
  let net = loaded_net () in
  let mk i src dst =
    Event.of_spec
      {
        Event_gen.event_id = i;
        arrival_s = 0.0;
        flows = [ flow ~id:(200 + i) ~demand:20.0 src dst ];
      }
  in
  let ev_a = mk 0 0 1 and ev_b = mk 1 8 9 in
  let cache = Estimate_cache.create () in
  let pr_a = Planner.probe net ev_a in
  let pr_b = Planner.probe net ev_b in
  Estimate_cache.store cache net pr_a;
  Estimate_cache.store cache net pr_b;
  Alcotest.(check bool) "A cached" true (Estimate_cache.find cache net 0 <> None);
  Alcotest.(check bool) "B cached" true (Estimate_cache.find cache net 1 <> None);
  let b_touched = Array.to_list pr_b.Planner.probe_touched in
  let e =
    match
      List.find_opt
        (fun e -> not (List.mem e b_touched))
        (Array.to_list pr_a.Planner.probe_touched)
    with
    | Some e -> e
    | None -> Alcotest.fail "expected disjoint probe read sets"
  in
  let v0 = Net_state.edge_version net e in
  Net_state.degrade_edge net e ~lost_mbps:5.0;
  Net_state.restore_edge_capacity net e;
  Alcotest.(check bool) "cycle dirties the edge" true
    (Net_state.edge_version net e > v0);
  Alcotest.(check bool) "A invalidated" true
    (Estimate_cache.find cache net 0 = None);
  Alcotest.(check bool) "B untouched, still hits" true
    (Estimate_cache.find cache net 1 <> None);
  (* Restore is exact, so a fresh probe re-arms the entry. *)
  Estimate_cache.store cache net (Planner.probe net ev_a);
  Alcotest.(check bool) "A hits after re-store" true
    (Estimate_cache.find cache net 0 <> None)

let test_metrics_comparison_renders () =
  let fifo = Metrics.of_run (run_policy Policy.Fifo) in
  let lmtf = Metrics.of_run (run_policy (Policy.Lmtf { alpha = 2 })) in
  let out = Format.asprintf "%a" (fun ppf -> Metrics.pp_comparison ppf ~baseline:fifo) [ lmtf ] in
  Alcotest.(check bool) "mentions policy" true (contains ~needle:"lmtf" out)

let suite =
  [
    ("exec plan time", `Quick, test_exec_plan_time);
    ("exec execution time", `Quick, test_exec_execution_time);
    ("exec parallelism", `Quick, test_exec_parallelism_cap);
    ("exec validation", `Quick, test_exec_validation);
    ("policy names", `Quick, test_policy_names);
    ("policy validate", `Quick, test_policy_validate);
    ("engine completes all", `Quick, test_engine_completes_all);
    ("engine sorted results", `Quick, test_engine_results_sorted_by_id);
    ("engine fifo order", `Quick, test_engine_fifo_order);
    ("engine deterministic", `Quick, test_engine_deterministic);
    ("engine seed variation", `Quick, test_engine_seed_changes_lmtf);
    ("engine ect accessors", `Quick, test_engine_ect_accessors);
    ("engine sparse arrivals", `Quick, test_engine_poisson_arrivals_respected);
    ("engine flow-level slower", `Quick, test_engine_flow_level_slower_on_average);
    ("engine invalid policy", `Quick, test_engine_invalid_policy);
    ("engine plan accounting", `Quick, test_engine_plan_accounting);
    ("engine total cost", `Quick, test_engine_total_cost_matches_events);
    ("engine churn", `Quick, test_engine_churn_expires_and_refills);
    ("engine plmtf co-schedules", `Quick, test_engine_plmtf_co_schedules);
    ("engine cache determinism", `Quick, test_engine_cache_hits_and_determinism);
    ("engine cache determinism churn", `Quick, test_engine_cache_determinism_churn);
    ("cache exact invalidation", `Quick, test_cache_degrade_restore_exact_invalidation);
    QCheck_alcotest.to_alcotest prop_mc_digest_equal;
    ("mc digest with faults", `Quick, test_mc_digest_with_faults);
    ("engine flow order variants", `Quick, test_engine_flow_level_orders_differ);
    ("engine round log", `Quick, test_engine_round_log);
    ("engine round log plmtf", `Quick, test_engine_round_log_plmtf_batches);
    ("engine flow-level log", `Quick, test_engine_flow_level_empty_log);
    ("metrics summary", `Quick, test_metrics_summary);
    ("metrics zero events", `Quick, test_metrics_zero_events);
    ("metrics arrays", `Quick, test_metrics_arrays);
    ("metrics reduction", `Quick, test_metrics_reduction);
    ("metrics comparison", `Quick, test_metrics_comparison_renders);
  ]
