(* nu_stats: PRNG, distributions, descriptive statistics, CDF. *)

let check_float = Alcotest.(check (float 1e-9))
let check_approx msg tolerance expected actual =
  Alcotest.(check (float tolerance)) msg expected actual

(* ------------------------------------------------------------------ *)
(* Prng                                                                *)

let test_prng_determinism () =
  let a = Prng.create 123 and b = Prng.create 123 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create 1 and b = Prng.create 2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if Prng.bits64 a <> Prng.bits64 b then differs := true
  done;
  Alcotest.(check bool) "different seeds differ" true !differs

let test_prng_copy_independent () =
  let a = Prng.create 7 in
  let b = Prng.copy a in
  let va = Prng.bits64 a in
  let vb = Prng.bits64 b in
  Alcotest.(check int64) "copy starts at same state" va vb;
  ignore (Prng.bits64 a);
  let a3 = Prng.bits64 a in
  let b2 = Prng.bits64 b in
  Alcotest.(check bool) "streams diverge after different draws" true (a3 <> b2)

let test_prng_split_independent () =
  let parent = Prng.create 7 in
  let child = Prng.split parent in
  let xs = List.init 50 (fun _ -> Prng.bits64 parent) in
  let ys = List.init 50 (fun _ -> Prng.bits64 child) in
  Alcotest.(check bool) "split streams differ" true (xs <> ys)

let test_prng_int_bounds_invalid () =
  let rng = Prng.create 1 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int rng 0))

let test_prng_int_in () =
  let rng = Prng.create 5 in
  for _ = 1 to 500 do
    let v = Prng.int_in rng 10 20 in
    Alcotest.(check bool) "in range" true (v >= 10 && v <= 20)
  done

let test_prng_int_in_covers_endpoints () =
  let rng = Prng.create 5 in
  let seen = Array.make 3 false in
  for _ = 1 to 500 do
    seen.(Prng.int_in rng 0 2) <- true
  done;
  Alcotest.(check bool) "all values reached" true (Array.for_all Fun.id seen)

let test_prng_unit_float () =
  let rng = Prng.create 11 in
  for _ = 1 to 500 do
    let v = Prng.unit_float rng in
    Alcotest.(check bool) "in [0,1)" true (v >= 0.0 && v < 1.0)
  done

let test_prng_float_in () =
  let rng = Prng.create 11 in
  for _ = 1 to 200 do
    let v = Prng.float_in rng (-2.0) 3.0 in
    Alcotest.(check bool) "in range" true (v >= -2.0 && v < 3.0)
  done

let test_prng_shuffle_permutation () =
  let rng = Prng.create 3 in
  let a = Array.init 30 Fun.id in
  let b = Array.copy a in
  Prng.shuffle rng b;
  let sorted = Array.copy b in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same multiset" a sorted

let test_prng_sample_without_replacement () =
  let rng = Prng.create 9 in
  for _ = 1 to 50 do
    let picks = Prng.sample_without_replacement rng 5 20 in
    Alcotest.(check int) "count" 5 (List.length picks);
    Alcotest.(check int) "distinct" 5
      (List.length (List.sort_uniq compare picks));
    List.iter
      (fun p -> Alcotest.(check bool) "in range" true (p >= 0 && p < 20))
      picks
  done

let test_prng_sample_all_when_k_ge_n () =
  let rng = Prng.create 9 in
  let picks = Prng.sample_without_replacement rng 10 4 in
  Alcotest.(check (list int)) "whole range" [ 0; 1; 2; 3 ]
    (List.sort compare picks)

let test_prng_choose () =
  let rng = Prng.create 2 in
  let arr = [| "a"; "b"; "c" |] in
  for _ = 1 to 50 do
    let v = Prng.choose rng arr in
    Alcotest.(check bool) "member" true (Array.exists (( = ) v) arr)
  done;
  Alcotest.check_raises "empty" (Invalid_argument "Prng.choose: empty array")
    (fun () -> ignore (Prng.choose rng [||]))

(* Checkpointing captures a PRNG as its raw SplitMix64 cursor; a stream
   rebuilt from that cursor must be indistinguishable from the one that
   kept running. *)
let test_prng_raw_state_roundtrip () =
  let rng = Prng.create 97 in
  for _ = 1 to 37 do
    ignore (Prng.bits64 rng)
  done;
  let resumed = Prng.of_raw_state (Prng.raw_state rng) in
  for i = 1 to 100 do
    Alcotest.(check int64)
      (Printf.sprintf "draw %d" i)
      (Prng.bits64 rng) (Prng.bits64 resumed)
  done

let prop_int_within_bound =
  QCheck.Test.make ~name:"prng int stays within bound" ~count:500
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let rng = Prng.create seed in
      let v = Prng.int rng bound in
      v >= 0 && v < bound)

(* ------------------------------------------------------------------ *)
(* Dist                                                                *)

let mean_of n f =
  let acc = ref 0.0 in
  for _ = 1 to n do
    acc := !acc +. f ()
  done;
  !acc /. float_of_int n

let test_exponential_mean () =
  let rng = Prng.create 4 in
  let m = mean_of 20_000 (fun () -> Dist.exponential rng ~rate:2.0) in
  check_approx "mean 1/rate" 0.02 0.5 m

let test_exponential_positive () =
  let rng = Prng.create 4 in
  for _ = 1 to 1000 do
    Alcotest.(check bool) "positive" true (Dist.exponential rng ~rate:0.5 > 0.0)
  done

let test_exponential_invalid () =
  let rng = Prng.create 4 in
  Alcotest.check_raises "rate 0"
    (Invalid_argument "Dist.exponential: rate must be positive") (fun () ->
      ignore (Dist.exponential rng ~rate:0.0))

let test_pareto_min () =
  let rng = Prng.create 6 in
  for _ = 1 to 1000 do
    Alcotest.(check bool) "above scale" true
      (Dist.pareto rng ~shape:1.5 ~scale:3.0 >= 3.0)
  done

let test_bounded_pareto_range () =
  let rng = Prng.create 8 in
  for _ = 1 to 2000 do
    let v = Dist.bounded_pareto rng ~shape:1.1 ~lo:1.0 ~hi:400.0 in
    Alcotest.(check bool) "in bounds" true (v >= 1.0 && v <= 400.0 +. 1e-9)
  done

let test_bounded_pareto_skew () =
  (* Heavy tail: the median must sit far below the midpoint. *)
  let rng = Prng.create 8 in
  let samples = Array.init 5000 (fun _ ->
      Dist.bounded_pareto rng ~shape:1.1 ~lo:1.0 ~hi:400.0) in
  let median = Descriptive.median samples in
  Alcotest.(check bool) "median below 5" true (median < 5.0)

let test_lognormal_positive_median () =
  let rng = Prng.create 10 in
  let samples = Array.init 20_000 (fun _ -> Dist.lognormal rng ~mu:(log 30.0) ~sigma:1.0) in
  Array.iter (fun v -> assert (v > 0.0)) samples;
  let median = Descriptive.median samples in
  check_approx "median e^mu" 2.0 30.0 median

let test_normal_moments () =
  let rng = Prng.create 12 in
  let samples = Array.init 30_000 (fun _ -> Dist.normal rng ~mu:5.0 ~sigma:2.0) in
  check_approx "mean" 0.05 5.0 (Descriptive.mean samples);
  check_approx "stddev" 0.05 2.0 (Descriptive.stddev samples)

let test_zipf_range_and_skew () =
  let rng = Prng.create 14 in
  let counts = Array.make 11 0 in
  for _ = 1 to 5000 do
    let v = Dist.zipf rng ~n:10 ~s:1.2 in
    Alcotest.(check bool) "in [1,10]" true (v >= 1 && v <= 10);
    counts.(v) <- counts.(v) + 1
  done;
  Alcotest.(check bool) "rank 1 most frequent" true
    (counts.(1) > counts.(2) && counts.(2) > counts.(5))

let test_zipf_s_zero_uniformish () =
  let rng = Prng.create 14 in
  for _ = 1 to 200 do
    let v = Dist.zipf rng ~n:5 ~s:0.0 in
    Alcotest.(check bool) "in [1,5]" true (v >= 1 && v <= 5)
  done

let test_empirical_samples_range () =
  let e = Dist.empirical_of_samples [| 3.0; 1.0; 2.0 |] in
  let rng = Prng.create 16 in
  for _ = 1 to 500 do
    let v = Dist.empirical_draw e rng in
    Alcotest.(check bool) "within observed range" true (v >= 1.0 && v <= 3.0)
  done

let test_empirical_cdf_validation () =
  Alcotest.check_raises "must end at 1"
    (Invalid_argument "Dist.empirical_of_cdf: CDF must end at 1.0") (fun () ->
      ignore (Dist.empirical_of_cdf [| (1.0, 0.5) |]));
  Alcotest.check_raises "sorted"
    (Invalid_argument "Dist.empirical_of_cdf: probabilities must be sorted")
    (fun () -> ignore (Dist.empirical_of_cdf [| (1.0, 0.8); (2.0, 0.2) |]))

let test_empirical_mean () =
  let e = Dist.empirical_of_cdf [| (10.0, 0.5); (20.0, 1.0) |] in
  check_float "mass-weighted mean" 15.0 (Dist.empirical_mean e)

(* ------------------------------------------------------------------ *)
(* Descriptive                                                         *)

let test_mean_total () =
  check_float "mean" 2.5 (Descriptive.mean [| 1.0; 2.0; 3.0; 4.0 |]);
  check_float "total" 10.0 (Descriptive.total [| 1.0; 2.0; 3.0; 4.0 |])

let test_empty_raises () =
  Alcotest.check_raises "mean" (Invalid_argument "Descriptive.mean: empty")
    (fun () -> ignore (Descriptive.mean [||]))

let test_percentiles () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  check_float "median interpolates" 2.5 (Descriptive.median xs);
  check_float "p0 = min" 1.0 (Descriptive.percentile xs 0.0);
  check_float "p100 = max" 4.0 (Descriptive.percentile xs 100.0);
  check_float "p25" 1.75 (Descriptive.percentile xs 25.0)

let test_percentile_unsorted_input () =
  let xs = [| 4.0; 1.0; 3.0; 2.0 |] in
  check_float "sorts internally" 2.5 (Descriptive.median xs);
  Alcotest.(check (float 0.0)) "input untouched" 4.0 xs.(0)

let test_variance_stddev () =
  let xs = [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |] in
  check_float "variance" 4.0 (Descriptive.variance xs);
  check_float "stddev" 2.0 (Descriptive.stddev xs)

let test_normalize_by_max () =
  let n = Descriptive.normalize_by_max [| 2.0; 8.0; 4.0 |] in
  Alcotest.(check (array (float 1e-9))) "normalised" [| 0.25; 1.0; 0.5 |] n

let test_reduction_speedup () =
  check_float "reduction" 0.75 (Descriptive.reduction_vs ~baseline:4.0 1.0);
  check_float "speedup" 4.0 (Descriptive.speedup_vs ~baseline:4.0 1.0)

let test_geometric_mean () =
  check_float "gm" 4.0 (Descriptive.geometric_mean [| 2.0; 8.0 |]);
  Alcotest.check_raises "non-positive"
    (Invalid_argument "Descriptive.geometric_mean: non-positive sample")
    (fun () -> ignore (Descriptive.geometric_mean [| 1.0; 0.0 |]))

let test_summarize () =
  let s = Descriptive.summarize [| 1.0; 2.0; 3.0 |] in
  Alcotest.(check int) "count" 3 s.Descriptive.count;
  check_float "mean" 2.0 s.Descriptive.mean;
  check_float "min" 1.0 s.Descriptive.min;
  check_float "max" 3.0 s.Descriptive.max

let prop_percentile_monotone =
  QCheck.Test.make ~name:"percentile is monotone in p" ~count:200
    QCheck.(
      pair
        (array_of_size (Gen.int_range 1 50) (float_range (-100.) 100.))
        (pair (float_range 0. 100.) (float_range 0. 100.)))
    (fun (xs, (p1, p2)) ->
      let lo = min p1 p2 and hi = max p1 p2 in
      Descriptive.percentile xs lo <= Descriptive.percentile xs hi +. 1e-9)

let prop_mean_between_min_max =
  QCheck.Test.make ~name:"mean lies within [min,max]" ~count:200
    QCheck.(array_of_size (Gen.int_range 1 50) (float_range (-1000.) 1000.))
    (fun xs ->
      let m = Descriptive.mean xs in
      m >= Descriptive.min_value xs -. 1e-6
      && m <= Descriptive.max_value xs +. 1e-6)

(* ------------------------------------------------------------------ *)
(* Cdf                                                                 *)

let test_cdf_eval () =
  let c = Cdf.of_samples [| 1.0; 2.0; 2.0; 4.0 |] in
  check_float "below min" 0.0 (Cdf.eval c 0.5);
  check_float "at 1" 0.25 (Cdf.eval c 1.0);
  check_float "at 2" 0.75 (Cdf.eval c 2.0);
  check_float "at max" 1.0 (Cdf.eval c 4.0);
  check_float "above max" 1.0 (Cdf.eval c 100.0)

let test_cdf_inverse () =
  let c = Cdf.of_samples [| 1.0; 2.0; 3.0; 4.0 |] in
  check_float "q25" 1.0 (Cdf.inverse c 0.25);
  check_float "q50" 2.0 (Cdf.inverse c 0.5);
  check_float "q100" 4.0 (Cdf.inverse c 1.0)

let test_cdf_points_dedup () =
  let c = Cdf.of_samples [| 2.0; 2.0; 1.0 |] in
  let pts = Cdf.points c in
  Alcotest.(check int) "two distinct values" 2 (Array.length pts);
  let v, p = pts.(1) in
  check_float "last value" 2.0 v;
  check_float "last prob" 1.0 p

let test_cdf_size () =
  Alcotest.(check int) "size" 3 (Cdf.size (Cdf.of_samples [| 1.; 2.; 3. |]))

let prop_cdf_eval_monotone =
  QCheck.Test.make ~name:"ecdf is monotone" ~count:200
    QCheck.(
      pair
        (array_of_size (Gen.int_range 1 40) (float_range (-50.) 50.))
        (pair (float_range (-60.) 60.) (float_range (-60.) 60.)))
    (fun (xs, (x1, x2)) ->
      let c = Cdf.of_samples xs in
      let lo = min x1 x2 and hi = max x1 x2 in
      Cdf.eval c lo <= Cdf.eval c hi)

let suite =
  [
    ("prng determinism", `Quick, test_prng_determinism);
    ("prng seed sensitivity", `Quick, test_prng_seed_sensitivity);
    ("prng copy", `Quick, test_prng_copy_independent);
    ("prng split", `Quick, test_prng_split_independent);
    ("prng int invalid", `Quick, test_prng_int_bounds_invalid);
    ("prng int_in range", `Quick, test_prng_int_in);
    ("prng int_in endpoints", `Quick, test_prng_int_in_covers_endpoints);
    ("prng unit_float", `Quick, test_prng_unit_float);
    ("prng float_in", `Quick, test_prng_float_in);
    ("prng shuffle", `Quick, test_prng_shuffle_permutation);
    ("prng sampling", `Quick, test_prng_sample_without_replacement);
    ("prng sampling k>=n", `Quick, test_prng_sample_all_when_k_ge_n);
    ("prng choose", `Quick, test_prng_choose);
    ("prng raw state round-trip", `Quick, test_prng_raw_state_roundtrip);
    QCheck_alcotest.to_alcotest prop_int_within_bound;
    ("exponential mean", `Slow, test_exponential_mean);
    ("exponential positive", `Quick, test_exponential_positive);
    ("exponential invalid", `Quick, test_exponential_invalid);
    ("pareto min", `Quick, test_pareto_min);
    ("bounded pareto range", `Quick, test_bounded_pareto_range);
    ("bounded pareto skew", `Quick, test_bounded_pareto_skew);
    ("lognormal median", `Slow, test_lognormal_positive_median);
    ("normal moments", `Slow, test_normal_moments);
    ("zipf", `Quick, test_zipf_range_and_skew);
    ("zipf s=0", `Quick, test_zipf_s_zero_uniformish);
    ("empirical samples", `Quick, test_empirical_samples_range);
    ("empirical cdf validation", `Quick, test_empirical_cdf_validation);
    ("empirical mean", `Quick, test_empirical_mean);
    ("mean/total", `Quick, test_mean_total);
    ("empty raises", `Quick, test_empty_raises);
    ("percentiles", `Quick, test_percentiles);
    ("percentile input untouched", `Quick, test_percentile_unsorted_input);
    ("variance", `Quick, test_variance_stddev);
    ("normalize", `Quick, test_normalize_by_max);
    ("reduction/speedup", `Quick, test_reduction_speedup);
    ("geometric mean", `Quick, test_geometric_mean);
    ("summarize", `Quick, test_summarize);
    QCheck_alcotest.to_alcotest prop_percentile_monotone;
    QCheck_alcotest.to_alcotest prop_mean_between_min_max;
    ("cdf eval", `Quick, test_cdf_eval);
    ("cdf inverse", `Quick, test_cdf_inverse);
    ("cdf points dedup", `Quick, test_cdf_points_dedup);
    ("cdf size", `Quick, test_cdf_size);
    QCheck_alcotest.to_alcotest prop_cdf_eval_monotone;
  ]
