(* nu_net: network state machine, routing policies, background fill. *)

let topo4 () = Fat_tree.to_topology (Fat_tree.create ~k:4 ())

(* A record between two fat-tree host *indices*. *)
let flow ?(id = 0) ?(demand = 100.0) ?(duration = 10.0) src dst =
  Flow_record.v ~id ~src ~dst ~size_mbit:(demand *. duration)
    ~duration_s:duration ~arrival_s:0.0

let place_exn net record =
  match Routing.select net record with
  | None -> Alcotest.fail "no feasible path"
  | Some path -> (
      match Net_state.place net record path with
      | Ok () -> path
      | Error _ -> Alcotest.fail "placement failed")

(* ------------------------------------------------------------------ *)
(* Net_state                                                           *)

let test_place_accounting () =
  let net = Net_state.create (topo4 ()) in
  let r = flow ~demand:100.0 0 15 in
  let path = place_exn net r in
  List.iter
    (fun (e : Graph.edge) ->
      Alcotest.(check (float 1e-9)) "residual decremented" 900.0
        (Net_state.residual net e.Graph.id);
      Alcotest.(check (float 1e-9)) "used" 100.0 (Net_state.used net e.Graph.id))
    (Path.edges path);
  Alcotest.(check int) "flow count" 1 (Net_state.flow_count net);
  Alcotest.(check bool) "is placed" true (Net_state.is_placed net 0)

let test_remove_restores () =
  let net = Net_state.create (topo4 ()) in
  let r = flow ~demand:50.0 0 15 in
  let path = place_exn net r in
  (match Net_state.remove net 0 with
  | Ok placed -> Alcotest.(check bool) "returns placement" true (Path.equal placed.Net_state.path path)
  | Error `Not_found -> Alcotest.fail "was placed");
  List.iter
    (fun (e : Graph.edge) ->
      Alcotest.(check (float 1e-9)) "restored" 1000.0 (Net_state.residual net e.Graph.id))
    (Path.edges path);
  Alcotest.(check bool) "remove twice" true (Net_state.remove net 0 = Error `Not_found)

let test_duplicate_rejected () =
  let net = Net_state.create (topo4 ()) in
  let r = flow 0 15 in
  let path = place_exn net r in
  Alcotest.(check bool) "duplicate" true
    (Net_state.place net r path = Error Net_state.Duplicate_flow)

let test_congested_error () =
  let net = Net_state.create (topo4 ()) in
  let r = flow ~demand:800.0 0 1 in
  let path = place_exn net r in
  let r2 = flow ~id:1 ~demand:800.0 0 1 in
  match Net_state.place net r2 path with
  | Error (Net_state.Congested blocked) ->
      Alcotest.(check bool) "reports blocked edges" true (blocked <> []);
      List.iter
        (fun (e : Graph.edge) ->
          Alcotest.(check bool) "on path" true (Path.mentions_edge path e.Graph.id))
        blocked
  | _ -> Alcotest.fail "expected congestion"

let test_place_wrong_endpoints () =
  let net = Net_state.create (topo4 ()) in
  let r01 = flow 0 1 in
  let path_0_2 =
    match Net_state.candidate_paths net (flow ~id:9 0 2) with
    | p :: _ -> p
    | [] -> Alcotest.fail "paths exist"
  in
  Alcotest.check_raises "endpoint mismatch"
    (Invalid_argument "Net_state.place: path does not connect the flow endpoints")
    (fun () -> ignore (Net_state.place net r01 path_0_2))

let test_reroute_releases_own_usage () =
  (* A flow of 800 Mbps can move to a partially overlapping path even
     though shared access links cannot hold 2x800. *)
  let net = Net_state.create (topo4 ()) in
  let r = flow ~demand:800.0 0 15 in
  let _ = place_exn net r in
  let alternatives = Net_state.candidate_paths net r in
  let current = (Option.get (Net_state.flow net 0)).Net_state.path in
  let other = List.find (fun p -> not (Path.equal p current)) alternatives in
  (match Net_state.reroute net 0 other with
  | Ok old -> Alcotest.(check bool) "returns old" true (Path.equal old current)
  | Error _ -> Alcotest.fail "overlapping reroute must succeed");
  match Net_state.invariants_ok net with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_reroute_infeasible_keeps_state () =
  let net = Net_state.create (topo4 ()) in
  let blocker = flow ~id:7 ~demand:900.0 2 3 in
  let _ = place_exn net blocker in
  let r = flow ~id:0 ~demand:200.0 0 1 in
  let _ = place_exn net r in
  (* Try to reroute the 0->1 flow onto a same-edge path: there is only
     one path for same-edge pairs, so target the blocked host pair
     instead via a manual path through the blocker's access link. *)
  let blocked_path =
    match Net_state.candidate_paths net (flow ~id:9 ~demand:1.0 2 3) with
    | p :: _ -> p
    | [] -> Alcotest.fail "exists"
  in
  ignore blocked_path;
  (* Rerouting an unknown flow raises. *)
  Alcotest.check_raises "unknown flow"
    (Invalid_argument "Net_state.reroute: flow not placed") (fun () ->
      ignore (Net_state.reroute net 99 blocked_path))

let test_flows_on_edge_sorted () =
  let net = Net_state.create (topo4 ()) in
  let r1 = flow ~id:5 ~demand:10.0 0 1 in
  let r2 = flow ~id:2 ~demand:10.0 0 1 in
  let p1 = place_exn net r1 in
  let _ = place_exn net r2 in
  let first_edge = List.hd (Path.edges p1) in
  let on = Net_state.flows_on_edge net first_edge.Graph.id in
  Alcotest.(check (list int)) "sorted ids" [ 2; 5 ]
    (List.map (fun (p : Net_state.placed) -> p.Net_state.record.Flow_record.id) on)

let test_flows_through_node () =
  let net = Net_state.create (topo4 ()) in
  let r = flow ~id:1 ~demand:10.0 0 15 in
  let path = place_exn net r in
  let mid = List.nth (Path.nodes path) 2 in
  let through = Net_state.flows_through_node net mid in
  Alcotest.(check int) "found" 1 (List.length through)

let test_utilization_math () =
  let topo = topo4 () in
  let net = Net_state.create topo in
  Alcotest.(check (float 1e-9)) "empty" 0.0 (Net_state.mean_utilization net);
  let r = flow ~demand:500.0 0 15 in
  let path = place_exn net r in
  let e0 = (List.hd (Path.edges path)).Graph.id in
  Alcotest.(check (float 1e-9)) "edge util" 0.5 (Net_state.edge_utilization net e0);
  Alcotest.(check bool) "mean positive" true (Net_state.mean_utilization net > 0.0);
  Alcotest.(check (float 1e-9)) "max util" 0.5 (Net_state.max_utilization net)

let test_mean_utilization_subset () =
  let net = Net_state.create (topo4 ()) in
  let r = flow ~demand:500.0 0 15 in
  let path = place_exn net r in
  let path_ids = List.map (fun (e : Graph.edge) -> e.Graph.id) (Path.edges path) in
  Alcotest.(check (float 1e-9)) "subset all on path" 0.5
    (Net_state.mean_utilization ~edges:path_ids net);
  Alcotest.(check (float 1e-9)) "empty subset" 0.0
    (Net_state.mean_utilization ~edges:[] net)

let test_fabric_edges () =
  let topo = topo4 () in
  let net = Net_state.create topo in
  let fabric = Net_state.fabric_edges net in
  (* k=4: 32 directed edge-agg + 32 directed agg-core. *)
  Alcotest.(check int) "fabric edge count" 64 (List.length fabric);
  List.iter
    (fun id ->
      let e = Graph.edge (Net_state.graph net) id in
      Alcotest.(check bool) "no host endpoint" false
        (Topology.is_host topo e.Graph.src || Topology.is_host topo e.Graph.dst))
    fabric

let test_copy_independent () =
  let net = Net_state.create (topo4 ()) in
  let r = flow ~demand:100.0 0 15 in
  let _ = place_exn net r in
  let snapshot = Net_state.copy net in
  let r2 = flow ~id:1 ~demand:100.0 1 14 in
  let _ = place_exn net r2 in
  Alcotest.(check int) "copy unchanged" 1 (Net_state.flow_count snapshot);
  Alcotest.(check int) "original changed" 2 (Net_state.flow_count net);
  (match Net_state.remove snapshot 0 with Ok _ -> () | Error _ -> Alcotest.fail "copy mutable");
  Alcotest.(check bool) "original keeps flow" true (Net_state.is_placed net 0)

let test_capacity_gap () =
  let net = Net_state.create (topo4 ()) in
  let r = flow ~demand:900.0 0 1 in
  let path = place_exn net r in
  let e = List.hd (Path.edges path) in
  Alcotest.(check (float 1e-9)) "gap" 100.0
    (Net_state.capacity_gap net e ~demand:200.0);
  Alcotest.(check bool) "fits" true (Net_state.capacity_gap net e ~demand:50.0 <= 0.0)

let test_endpoints_mapping () =
  let topo = topo4 () in
  let net = Net_state.create topo in
  let r = flow 3 12 in
  let src, dst = Net_state.endpoints net r in
  Alcotest.(check int) "src node" topo.Topology.hosts.(3) src;
  Alcotest.(check int) "dst node" topo.Topology.hosts.(12) dst;
  Alcotest.check_raises "out of range"
    (Invalid_argument "Net_state.endpoints: host index out of range") (fun () ->
      ignore (Net_state.endpoints net (flow 0 99)))

let prop_random_ops_keep_invariants =
  QCheck.Test.make ~name:"random place/remove keeps invariants" ~count:30
    QCheck.(small_int)
    (fun seed ->
      let net = Net_state.create (topo4 ()) in
      let rng = Prng.create seed in
      let placed = ref [] in
      for i = 0 to 150 do
        if Prng.unit_float rng < 0.7 || !placed = [] then begin
          let src = Prng.int rng 16 in
          let dst = (src + 1 + Prng.int rng 15) mod 16 in
          let r = flow ~id:i ~demand:(Prng.float_in rng 1.0 300.0) src dst in
          match Routing.select ~rng ~policy:Routing.Random_fit net r with
          | None -> ()
          | Some path -> (
              match Net_state.place net r path with
              | Ok () -> placed := i :: !placed
              | Error _ -> ())
        end
        else begin
          match !placed with
          | id :: rest ->
              (match Net_state.remove net id with
              | Ok _ -> placed := rest
              | Error `Not_found -> ())
          | [] -> ()
        end
      done;
      Net_state.invariants_ok net = Ok ())

(* ------------------------------------------------------------------ *)
(* Transactions                                                        *)

let test_txn_rollback_restores () =
  let net = Net_state.create (topo4 ()) in
  let r = flow ~id:0 ~demand:100.0 0 15 in
  let path = place_exn net r in
  Net_state.begin_txn net;
  Alcotest.(check bool) "in txn" true (Net_state.in_txn net);
  (match Net_state.remove net 0 with Ok _ -> () | Error _ -> Alcotest.fail "placed");
  let r2 = flow ~id:1 ~demand:700.0 0 15 in
  let _ = place_exn net r2 in
  Net_state.rollback net;
  Alcotest.(check bool) "txn closed" false (Net_state.in_txn net);
  Alcotest.(check int) "flow count restored" 1 (Net_state.flow_count net);
  (match Net_state.flow net 0 with
  | Some p -> Alcotest.(check bool) "path restored" true (Path.equal p.Net_state.path path)
  | None -> Alcotest.fail "flow 0 restored");
  (match Net_state.invariants_ok net with Ok () -> () | Error e -> Alcotest.fail e);
  Alcotest.check_raises "no open txn"
    (Invalid_argument "Net_state.rollback: no open transaction") (fun () ->
      Net_state.rollback net)

let test_txn_commit_bumps_versions () =
  let net = Net_state.create (topo4 ()) in
  let r = flow ~id:0 ~demand:100.0 0 15 in
  Net_state.begin_txn net;
  let path = place_exn net r in
  let e0 = (List.hd (Path.edges path)).Graph.id in
  let v_before = Net_state.edge_version net e0 in
  Net_state.commit net;
  Alcotest.(check bool) "version bumped at commit" true
    (Net_state.edge_version net e0 > v_before);
  Alcotest.(check bool) "flow survives commit" true (Net_state.is_placed net 0)

let test_txn_nested () =
  let net = Net_state.create (topo4 ()) in
  Net_state.begin_txn net;
  let _ = place_exn net (flow ~id:0 ~demand:50.0 0 15) in
  Net_state.begin_txn net;
  Alcotest.(check int) "depth" 2 (Net_state.txn_depth net);
  let _ = place_exn net (flow ~id:1 ~demand:50.0 1 14) in
  Net_state.rollback net;
  Alcotest.(check bool) "inner rolled back" false (Net_state.is_placed net 1);
  Alcotest.(check bool) "outer survives" true (Net_state.is_placed net 0);
  Net_state.commit net;
  Alcotest.(check bool) "committed" true (Net_state.is_placed net 0);
  match Net_state.invariants_ok net with Ok () -> () | Error e -> Alcotest.fail e

let test_txn_copy_rejected () =
  let net = Net_state.create (topo4 ()) in
  Net_state.begin_txn net;
  Alcotest.check_raises "copy in txn"
    (Invalid_argument "Net_state.copy: open transaction") (fun () ->
      ignore (Net_state.copy net));
  Net_state.rollback net

let test_probe_tracking () =
  let net = Net_state.create (topo4 ()) in
  let r = flow ~id:0 ~demand:100.0 0 15 in
  let path = place_exn net r in
  let path_ids =
    List.sort compare (List.map (fun (e : Graph.edge) -> e.Graph.id) (Path.edges path))
  in
  Net_state.start_probe net;
  Alcotest.(check bool) "feasible" true
    (Net_state.path_feasible net path ~demand:10.0);
  let touched = Array.to_list (Net_state.stop_probe net) in
  List.iter
    (fun id ->
      Alcotest.(check bool) "path edge recorded" true (List.mem id touched))
    path_ids;
  Alcotest.(check (list int)) "sorted" (List.sort compare touched) touched;
  (* The set resets between probes. *)
  Net_state.start_probe net;
  Alcotest.(check (list int)) "empty probe" []
    (Array.to_list (Net_state.stop_probe net))

(* The tentpole's correctness property: a rolled-back transaction leaves
   the state indistinguishable from a pre-transaction copy, whatever
   mix of place/remove/reroute/disable/enable ran inside it. *)
let prop_txn_rollback_differential =
  QCheck.Test.make ~name:"txn rollback matches pre-txn copy" ~count:30
    QCheck.(small_int)
    (fun seed ->
      let net = Net_state.create (topo4 ()) in
      let rng = Prng.create (seed + 1) in
      (* Pre-populate so removes and reroutes have targets. *)
      let placed = ref [] in
      for i = 0 to 39 do
        let src = Prng.int rng 16 in
        let dst = (src + 1 + Prng.int rng 15) mod 16 in
        let r = flow ~id:i ~demand:(Prng.float_in rng 1.0 250.0) src dst in
        match Routing.select ~rng ~policy:Routing.Random_fit net r with
        | None -> ()
        | Some path -> (
            match Net_state.place net r path with
            | Ok () -> placed := i :: !placed
            | Error _ -> ())
      done;
      let snap = Net_state.copy net in
      let edge_n = Graph.edge_count (Net_state.graph net) in
      Net_state.begin_txn net;
      for i = 100 to 179 do
        match Prng.int rng 5 with
        | 0 | 1 -> (
            let src = Prng.int rng 16 in
            let dst = (src + 1 + Prng.int rng 15) mod 16 in
            let r = flow ~id:i ~demand:(Prng.float_in rng 1.0 250.0) src dst in
            match Routing.select ~rng ~policy:Routing.Random_fit net r with
            | None -> ()
            | Some path -> ignore (Net_state.place net r path))
        | 2 -> (
            match !placed with
            | id :: rest ->
                ignore (Net_state.remove net id);
                placed := rest @ [ id ]
            | [] -> ())
        | 3 -> (
            match !placed with
            | id :: _ -> (
                match Net_state.flow net id with
                | None -> ()
                | Some p ->
                    let cands =
                      Net_state.candidate_paths net p.Net_state.record
                    in
                    if cands <> [] then
                      let target =
                        List.nth cands (Prng.int rng (List.length cands))
                      in
                      ignore (Net_state.reroute net id target))
            | [] -> ())
        | _ ->
            let e = Prng.int rng edge_n in
            if Prng.unit_float rng < 0.5 then Net_state.disable_edge net e
            else Net_state.enable_edge net e
      done;
      Net_state.rollback net;
      let residuals_match = ref true in
      for e = 0 to edge_n - 1 do
        if
          abs_float (Net_state.residual net e -. Net_state.residual snap e)
          > 1e-9
        then residuals_match := false;
        if Net_state.edge_disabled net e <> Net_state.edge_disabled snap e then
          residuals_match := false
      done;
      let flows_match = ref (Net_state.flow_count net = Net_state.flow_count snap) in
      Net_state.iter_flows snap (fun p ->
          match Net_state.flow net p.Net_state.record.Flow_record.id with
          | Some q ->
              if not (Path.equal p.Net_state.path q.Net_state.path) then
                flows_match := false
          | None -> flows_match := false);
      !residuals_match && !flows_match
      && Net_state.invariants_ok net = Ok ()
      && abs_float
           (Net_state.mean_fabric_utilization net
           -. Net_state.mean_fabric_utilization snap)
         < 1e-9)

(* Capacity degradation and link disable/enable are journal-aware: a
   rolled-back transaction that degraded, restored, disabled and enabled
   random edges — bumping the disabled epoch mid-transaction — must
   leave residuals, the degradation ledger and the administrative state
   exactly as a pre-transaction copy. *)
let prop_txn_degrade_differential =
  QCheck.Test.make ~name:"txn rollback restores degradation state" ~count:30
    QCheck.(small_int)
    (fun seed ->
      let net = Net_state.create (topo4 ()) in
      let rng = Prng.create (seed + 11) in
      (* Background load so degradations interact with real usage. *)
      for i = 0 to 29 do
        let src = Prng.int rng 16 in
        let dst = (src + 1 + Prng.int rng 15) mod 16 in
        let r = flow ~id:i ~demand:(Prng.float_in rng 1.0 200.0) src dst in
        match Routing.select ~rng ~policy:Routing.Random_fit net r with
        | None -> ()
        | Some path -> ignore (Net_state.place net r path)
      done;
      let edge_n = Graph.edge_count (Net_state.graph net) in
      (* Pre-transaction degradation that must survive the rollback. *)
      for _ = 0 to 4 do
        Net_state.degrade_edge net (Prng.int rng edge_n)
          ~lost_mbps:(Prng.float_in rng 1.0 50.0)
      done;
      let snap = Net_state.copy net in
      Net_state.begin_txn net;
      for _ = 0 to 59 do
        let e = Prng.int rng edge_n in
        match Prng.int rng 4 with
        | 0 ->
            Net_state.degrade_edge net e
              ~lost_mbps:(Prng.float_in rng 1.0 100.0)
        | 1 -> Net_state.restore_edge_capacity net e
        | 2 -> Net_state.disable_edge net e
        | _ -> Net_state.enable_edge net e
      done;
      Net_state.rollback net;
      let ok = ref (Net_state.invariants_ok net = Ok ()) in
      for e = 0 to edge_n - 1 do
        if
          abs_float (Net_state.residual net e -. Net_state.residual snap e)
          > 1e-9
        then ok := false;
        if
          abs_float
            (Net_state.degraded_mbps net e -. Net_state.degraded_mbps snap e)
          > 1e-9
        then ok := false;
        if Net_state.edge_disabled net e <> Net_state.edge_disabled snap e then
          ok := false
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Routing                                                             *)

let test_routing_first_fit () =
  let net = Net_state.create (topo4 ()) in
  let r = flow ~demand:10.0 0 15 in
  let candidates = Net_state.candidate_paths net r in
  (match Routing.select net r with
  | Some p -> Alcotest.(check bool) "first candidate" true (Path.equal p (List.hd candidates))
  | None -> Alcotest.fail "feasible");
  Alcotest.(check int) "inter-pod candidates" 4 (List.length candidates)

let test_routing_widest () =
  let net = Net_state.create (topo4 ()) in
  (* Load the fabric links of the probe's first candidate using a sibling
     host pair (1 -> 14 shares edge switches with 0 -> 15), so the probe's
     own access links stay untouched and widest must avoid the loaded
     fabric. *)
  let sibling = flow ~id:50 ~demand:400.0 1 14 in
  let sibling_first = List.hd (Net_state.candidate_paths net sibling) in
  (match Net_state.place net sibling sibling_first with
  | Ok () -> ()
  | Error _ -> assert false);
  let r = flow ~id:51 ~demand:10.0 0 15 in
  let loaded_fabric =
    List.filter
      (fun (e : Graph.edge) ->
        not
          (Topology.is_host (Net_state.topology net) e.Graph.src
          || Topology.is_host (Net_state.topology net) e.Graph.dst))
      (Path.edges sibling_first)
  in
  match Routing.select ~policy:Routing.Widest net r with
  | Some p ->
      List.iter
        (fun (e : Graph.edge) ->
          Alcotest.(check bool) "avoids loaded fabric" false
            (Path.mentions_edge p e.Graph.id))
        loaded_fabric
  | None -> Alcotest.fail "feasible"

let test_routing_least_loaded () =
  let net = Net_state.create (topo4 ()) in
  let r = flow ~demand:10.0 0 15 in
  match Routing.select ~policy:Routing.Least_loaded net r with
  | Some _ -> ()
  | None -> Alcotest.fail "feasible"

let test_routing_random_needs_rng () =
  let net = Net_state.create (topo4 ()) in
  let r = flow ~demand:10.0 0 15 in
  Alcotest.check_raises "no rng"
    (Invalid_argument "Routing.select_from: Random_fit needs an rng") (fun () ->
      ignore (Routing.select ~policy:Routing.Random_fit net r))

let test_routing_random_feasible () =
  let net = Net_state.create (topo4 ()) in
  let rng = Prng.create 3 in
  let r = flow ~demand:10.0 0 15 in
  for _ = 1 to 20 do
    match Routing.select ~rng ~policy:Routing.Random_fit net r with
    | Some p -> Alcotest.(check bool) "feasible" true (Net_state.path_feasible net p ~demand:10.0)
    | None -> Alcotest.fail "feasible"
  done

let test_routing_infeasible_none () =
  let net = Net_state.create (topo4 ()) in
  let r = flow ~demand:2000.0 0 15 in
  Alcotest.(check bool) "demand above capacity" true (Routing.select net r = None)

let test_ecmp_index () =
  let r = flow ~id:77 3 9 in
  let i1 = Routing.ecmp_index r ~n:16 and i2 = Routing.ecmp_index r ~n:16 in
  Alcotest.(check int) "deterministic" i1 i2;
  Alcotest.(check bool) "in range" true (i1 >= 0 && i1 < 16);
  Alcotest.check_raises "n >= 1" (Invalid_argument "Routing.ecmp_index: n")
    (fun () -> ignore (Routing.ecmp_index r ~n:0))

let test_desired_path_stable () =
  let net = Net_state.create (topo4 ()) in
  let r = flow ~demand:10.0 0 15 in
  let d1 = Routing.desired_path net r and d2 = Routing.desired_path net r in
  match (d1, d2) with
  | Some a, Some b -> Alcotest.(check bool) "stable" true (Path.equal a b)
  | _ -> Alcotest.fail "desired path exists"

let test_select_from_restricted () =
  let net = Net_state.create (topo4 ()) in
  Alcotest.(check bool) "empty candidates" true
    (Routing.select_from net ~demand:1.0 [] = None)

(* ------------------------------------------------------------------ *)
(* Background                                                          *)

let test_background_fill_reaches_target () =
  let net = Net_state.create (topo4 ()) in
  let rng = Prng.create 10 in
  let report =
    Background.fill net ~target:0.3
      ~utilization:Net_state.mean_fabric_utilization
      ~make_flow:(fun ~id ~scale ->
        Background.yahoo_flow_maker rng ~host_count:16 ~id ~scale)
      ~first_id:0
  in
  Alcotest.(check bool) "reached" true (report.Background.achieved_utilization >= 0.3);
  Alcotest.(check bool) "placed some" true (report.Background.placed > 0);
  Alcotest.(check int) "ids recorded" report.Background.placed
    (List.length report.Background.placed_ids);
  match Net_state.invariants_ok net with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_background_accept_veto () =
  let net = Net_state.create (topo4 ()) in
  let rng = Prng.create 10 in
  let report =
    Background.fill net ~target:0.5 ~accept:(fun _ _ _ -> false)
      ~max_consecutive_failures:5
      ~make_flow:(fun ~id ~scale ->
        Background.yahoo_flow_maker rng ~host_count:16 ~id ~scale)
      ~first_id:0
  in
  Alcotest.(check int) "nothing placed" 0 report.Background.placed;
  Alcotest.(check bool) "rejections counted" true (report.Background.rejected > 0)

let test_background_invalid_target () =
  let net = Net_state.create (topo4 ()) in
  Alcotest.check_raises "target >= 1" (Invalid_argument "Background.fill: target")
    (fun () ->
      ignore
        (Background.fill net ~target:1.0
           ~make_flow:(fun ~id ~scale ->
             ignore scale;
             flow ~id 0 1)
           ~first_id:0))

let test_background_scaling () =
  let rng = Prng.create 10 in
  let r1 = Background.yahoo_flow_maker rng ~host_count:16 ~id:0 ~scale:1.0 in
  let rng = Prng.create 10 in
  let r2 = Background.yahoo_flow_maker rng ~host_count:16 ~id:0 ~scale:0.5 in
  Alcotest.(check (float 1e-9)) "demand halved"
    (Flow_record.demand_mbps r1 /. 2.0)
    (Flow_record.demand_mbps r2);
  Alcotest.(check (float 1e-9)) "duration preserved" r1.Flow_record.duration_s
    r2.Flow_record.duration_s

let test_background_cap_respected () =
  (* Fill with an access-link cap and verify no host link exceeds it. *)
  let topo = topo4 () in
  let net = Net_state.create topo in
  let rng = Prng.create 11 in
  let cap = 0.5 in
  let accept net (r : Flow_record.t) path =
    let d = Flow_record.demand_mbps r in
    List.for_all
      (fun (e : Graph.edge) ->
        (not (Topology.is_host topo e.Graph.src || Topology.is_host topo e.Graph.dst))
        || (Net_state.used net e.Graph.id +. d) /. e.Graph.capacity <= cap)
      (Path.edges path)
  in
  let _ =
    Background.fill net ~target:0.4 ~accept
      ~utilization:Net_state.mean_fabric_utilization
      ~make_flow:(fun ~id ~scale ->
        Background.yahoo_flow_maker rng ~host_count:16 ~id ~scale)
      ~first_id:0
  in
  Graph.iter_edges (Net_state.graph net) (fun e ->
      if Topology.is_host topo e.Graph.src || Topology.is_host topo e.Graph.dst
      then
        Alcotest.(check bool) "host link under cap" true
          (Net_state.edge_utilization net e.Graph.id <= cap +. 1e-9))

let test_disable_edge () =
  let net = Net_state.create (topo4 ()) in
  let r = flow ~demand:10.0 0 15 in
  let all = Net_state.candidate_paths net r in
  let victim = List.hd all in
  let victim_edge = (List.nth (Path.edges victim) 2).Graph.id in
  Net_state.disable_edge net victim_edge;
  Alcotest.(check bool) "flag set" true (Net_state.edge_disabled net victim_edge);
  let remaining = Net_state.candidate_paths net r in
  Alcotest.(check int) "one candidate dropped" (List.length all - 1)
    (List.length remaining);
  Alcotest.(check bool) "victim infeasible" false
    (Net_state.path_feasible net victim ~demand:10.0);
  (match Net_state.place net r victim with
  | Error (Net_state.Congested blocked) ->
      Alcotest.(check bool) "dead edge reported" true
        (List.exists (fun (e : Graph.edge) -> e.Graph.id = victim_edge) blocked)
  | _ -> Alcotest.fail "placement over a dead link must fail");
  Net_state.enable_edge net victim_edge;
  Alcotest.(check bool) "re-enabled" false (Net_state.edge_disabled net victim_edge);
  Alcotest.(check int) "candidates restored" (List.length all)
    (List.length (Net_state.candidate_paths net r))

let test_disable_edge_copy () =
  let net = Net_state.create (topo4 ()) in
  Net_state.disable_edge net 0;
  let snap = Net_state.copy net in
  Net_state.enable_edge net 0;
  Alcotest.(check bool) "copy keeps its own flag" true
    (Net_state.edge_disabled snap 0);
  Alcotest.check_raises "bad id" (Invalid_argument "Net_state.disable_edge: edge id")
    (fun () -> Net_state.disable_edge net 99999)

let suite =
  [
    ("place accounting", `Quick, test_place_accounting);
    ("disable edge", `Quick, test_disable_edge);
    ("disable edge copy", `Quick, test_disable_edge_copy);
    ("remove restores", `Quick, test_remove_restores);
    ("duplicate rejected", `Quick, test_duplicate_rejected);
    ("congested error", `Quick, test_congested_error);
    ("wrong endpoints", `Quick, test_place_wrong_endpoints);
    ("reroute releases own usage", `Quick, test_reroute_releases_own_usage);
    ("reroute unknown flow", `Quick, test_reroute_infeasible_keeps_state);
    ("flows on edge sorted", `Quick, test_flows_on_edge_sorted);
    ("flows through node", `Quick, test_flows_through_node);
    ("utilization math", `Quick, test_utilization_math);
    ("mean utilization subset", `Quick, test_mean_utilization_subset);
    ("fabric edges", `Quick, test_fabric_edges);
    ("copy independent", `Quick, test_copy_independent);
    ("capacity gap", `Quick, test_capacity_gap);
    ("endpoints mapping", `Quick, test_endpoints_mapping);
    QCheck_alcotest.to_alcotest prop_random_ops_keep_invariants;
    ("txn rollback restores", `Quick, test_txn_rollback_restores);
    ("txn commit bumps versions", `Quick, test_txn_commit_bumps_versions);
    ("txn nested", `Quick, test_txn_nested);
    ("txn copy rejected", `Quick, test_txn_copy_rejected);
    ("probe tracking", `Quick, test_probe_tracking);
    QCheck_alcotest.to_alcotest prop_txn_rollback_differential;
    QCheck_alcotest.to_alcotest prop_txn_degrade_differential;
    ("routing first fit", `Quick, test_routing_first_fit);
    ("routing widest", `Quick, test_routing_widest);
    ("routing least loaded", `Quick, test_routing_least_loaded);
    ("routing random needs rng", `Quick, test_routing_random_needs_rng);
    ("routing random feasible", `Quick, test_routing_random_feasible);
    ("routing infeasible", `Quick, test_routing_infeasible_none);
    ("ecmp index", `Quick, test_ecmp_index);
    ("desired path stable", `Quick, test_desired_path_stable);
    ("select_from empty", `Quick, test_select_from_restricted);
    ("background fill", `Quick, test_background_fill_reaches_target);
    ("background veto", `Quick, test_background_accept_veto);
    ("background invalid target", `Quick, test_background_invalid_target);
    ("background scaling", `Quick, test_background_scaling);
    ("background cap respected", `Quick, test_background_cap_respected);
  ]
