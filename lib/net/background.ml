type report = {
  placed : int;
  rejected : int;
  achieved_utilization : float;
  placed_ids : int list;
}

let fill ?(policy = Routing.First_fit) ?rng ?(max_consecutive_failures = 50)
    ?(min_scale = 1.0 /. 64.0) ?(utilization = fun net -> Net_state.mean_utilization net)
    ?(accept = fun _ _ _ -> true) net ~target ~make_flow ~first_id =
  if target < 0.0 || target >= 1.0 then invalid_arg "Background.fill: target";
  let placed = ref 0 and rejected = ref 0 and placed_ids = ref [] in
  let next_id = ref first_id in
  let scale = ref 1.0 in
  let consecutive_failures = ref 0 in
  let stop = ref false in
  while (not !stop) && utilization net < target do
    let id = !next_id in
    incr next_id;
    let record = make_flow ~id ~scale:!scale in
    let outcome =
      match Routing.select ?rng ~policy net record with
      | None -> Error ()
      | Some path ->
          if not (accept net record path) then Error ()
          else (
            match Net_state.place net record path with
            | Ok () -> Ok ()
            | Error _ -> Error ())
    in
    match outcome with
    | Ok () ->
        incr placed;
        consecutive_failures := 0;
        placed_ids := record.Flow_record.id :: !placed_ids
    | Error () ->
        incr rejected;
        incr consecutive_failures;
        if !consecutive_failures >= max_consecutive_failures then begin
          consecutive_failures := 0;
          scale := !scale /. 2.0;
          if !scale < min_scale then stop := true
        end
  done;
  {
    placed = !placed;
    rejected = !rejected;
    achieved_utilization = utilization net;
    placed_ids = List.rev !placed_ids;
  }

let scaled_record ~scale (r : Flow_record.t) =
  if scale >= 1.0 then r
  else
    Flow_record.v ~id:r.id ~src:r.src ~dst:r.dst
      ~size_mbit:(r.size_mbit *. scale) ~duration_s:r.duration_s
      ~arrival_s:r.arrival_s

let yahoo_flow_maker ?params rng ~host_count ~id ~scale =
  let flows = Yahoo_trace.generate ?params ~first_id:id rng ~host_count ~n:1 in
  scaled_record ~scale flows.(0)

let benson_flow_maker ?params rng ~host_count ~id ~scale =
  let flows = Benson_trace.generate ?params ~first_id:id rng ~host_count ~n:1 in
  scaled_record ~scale flows.(0)
