type placed = { record : Flow_record.t; path : Path.t }

type t = {
  topo : Topology.t;
  residual : float array;  (* indexed by edge id *)
  flows : (int, placed) Hashtbl.t;  (* flow id -> placement *)
  on_edge : (int, unit) Hashtbl.t array;  (* edge id -> flow-id set *)
  disabled : bool array;  (* administratively failed edges *)
  fabric : int list Lazy.t;  (* switch-to-switch edge ids *)
}

let compute_fabric topo =
  let g = topo.Topology.graph in
  let host = Array.make (Graph.node_count g) false in
  Array.iter (fun h -> host.(h) <- true) topo.Topology.hosts;
  Graph.fold_edges g ~init:[] ~f:(fun acc (e : Graph.edge) ->
      if host.(e.src) || host.(e.dst) then acc else e.id :: acc)
  |> List.rev

let create topo =
  let g = topo.Topology.graph in
  let residual =
    Array.init (Graph.edge_count g) (fun id -> (Graph.edge g id).capacity)
  in
  {
    topo;
    residual;
    flows = Hashtbl.create 1024;
    on_edge = Array.init (Graph.edge_count g) (fun _ -> Hashtbl.create 8);
    disabled = Array.make (Graph.edge_count g) false;
    fabric = lazy (compute_fabric topo);
  }

let copy t =
  Nu_obs.Counters.incr Nu_obs.Counters.State_copies;
  {
    topo = t.topo;
    residual = Array.copy t.residual;
    flows = Hashtbl.copy t.flows;
    on_edge = Array.map Hashtbl.copy t.on_edge;
    disabled = Array.copy t.disabled;
    fabric = t.fabric;
  }

let topology t = t.topo
let graph t = t.topo.Topology.graph

let residual t edge_id =
  if edge_id < 0 || edge_id >= Array.length t.residual then
    invalid_arg "Net_state.residual: edge id";
  t.residual.(edge_id)

let used t edge_id = (Graph.edge (graph t) edge_id).capacity -. residual t edge_id

let edge_utilization t edge_id =
  let cap = (Graph.edge (graph t) edge_id).capacity in
  if cap <= 0.0 then 0.0 else used t edge_id /. cap

let mean_utilization ?edges t =
  let ids =
    match edges with
    | Some ids -> ids
    | None -> List.init (Graph.edge_count (graph t)) (fun i -> i)
  in
  match ids with
  | [] -> 0.0
  | _ ->
      let sum = List.fold_left (fun acc id -> acc +. edge_utilization t id) 0.0 ids in
      sum /. float_of_int (List.length ids)

let max_utilization t =
  let m = ref 0.0 in
  for id = 0 to Graph.edge_count (graph t) - 1 do
    m := max !m (edge_utilization t id)
  done;
  !m

let check_edge_id t id name =
  if id < 0 || id >= Array.length t.disabled then
    invalid_arg ("Net_state." ^ name ^ ": edge id")

let disable_edge t id =
  check_edge_id t id "disable_edge";
  t.disabled.(id) <- true

let enable_edge t id =
  check_edge_id t id "enable_edge";
  t.disabled.(id) <- false

let edge_disabled t id =
  check_edge_id t id "edge_disabled";
  t.disabled.(id)

let fabric_edges t = Lazy.force t.fabric
let mean_fabric_utilization t = mean_utilization ~edges:(fabric_edges t) t

let flow t id = Hashtbl.find_opt t.flows id
let flow_count t = Hashtbl.length t.flows
let is_placed t id = Hashtbl.mem t.flows id
let iter_flows t f = Hashtbl.iter (fun _ placed -> f placed) t.flows

let flows_on_edge t edge_id =
  if edge_id < 0 || edge_id >= Array.length t.on_edge then
    invalid_arg "Net_state.flows_on_edge: edge id";
  let ids = Hashtbl.fold (fun id () acc -> id :: acc) t.on_edge.(edge_id) [] in
  let ids = List.sort compare ids in
  List.map (fun id -> Hashtbl.find t.flows id) ids

let flows_through_node t v =
  let acc = ref [] in
  Hashtbl.iter
    (fun id placed -> if Path.mentions_node placed.path v then acc := id :: !acc)
    t.flows;
  List.map (fun id -> Hashtbl.find t.flows id) (List.sort compare !acc)

let endpoints t (record : Flow_record.t) =
  let hosts = t.topo.Topology.hosts in
  let n = Array.length hosts in
  if record.src < 0 || record.src >= n || record.dst < 0 || record.dst >= n
  then invalid_arg "Net_state.endpoints: host index out of range";
  (hosts.(record.src), hosts.(record.dst))

let path_enabled t path =
  List.for_all (fun (e : Graph.edge) -> not t.disabled.(e.id)) (Path.edges path)

let candidate_paths t record =
  Nu_obs.Counters.incr Nu_obs.Counters.Path_enumerations;
  let src, dst = endpoints t record in
  List.filter (path_enabled t) (t.topo.Topology.candidate_paths ~src ~dst)

let path_feasible t path ~demand =
  List.for_all
    (fun (e : Graph.edge) -> (not t.disabled.(e.id)) && t.residual.(e.id) >= demand)
    (Path.edges path)

let congested_links t path ~demand =
  List.filter
    (fun (e : Graph.edge) -> t.residual.(e.id) < demand)
    (Path.edges path)

let capacity_gap t (e : Graph.edge) ~demand = demand -. t.residual.(e.id)

type place_error = Duplicate_flow | Congested of Graph.edge list

let occupy t placed =
  let demand = Flow_record.demand_mbps placed.record in
  List.iter
    (fun (e : Graph.edge) ->
      t.residual.(e.id) <- t.residual.(e.id) -. demand;
      Hashtbl.replace t.on_edge.(e.id) placed.record.id ())
    (Path.edges placed.path)

let release t placed =
  let demand = Flow_record.demand_mbps placed.record in
  List.iter
    (fun (e : Graph.edge) ->
      t.residual.(e.id) <- t.residual.(e.id) +. demand;
      Hashtbl.remove t.on_edge.(e.id) placed.record.id)
    (Path.edges placed.path)

let place t record path =
  if Hashtbl.mem t.flows record.Flow_record.id then Error Duplicate_flow
  else begin
    let src, dst = endpoints t record in
    if Path.src path <> src || Path.dst path <> dst then
      invalid_arg "Net_state.place: path does not connect the flow endpoints";
    let demand = Flow_record.demand_mbps record in
    let dead =
      List.filter (fun (e : Graph.edge) -> t.disabled.(e.id)) (Path.edges path)
    in
    match dead @ congested_links t path ~demand with
    | _ :: _ as blocked -> Error (Congested blocked)
    | [] ->
        let placed = { record; path } in
        Hashtbl.replace t.flows record.id placed;
        occupy t placed;
        Ok ()
  end

let remove t id =
  match Hashtbl.find_opt t.flows id with
  | None -> Error `Not_found
  | Some placed ->
      Hashtbl.remove t.flows id;
      release t placed;
      Ok placed

let reroute ?(admit_disabled = false) t id new_path =
  match Hashtbl.find_opt t.flows id with
  | None -> invalid_arg "Net_state.reroute: flow not placed"
  | Some placed ->
      (* Judge feasibility with the flow's own usage released, then
         either commit the move or restore the original placement. *)
      Hashtbl.remove t.flows id;
      release t placed;
      let demand = Flow_record.demand_mbps placed.record in
      let dead =
        if admit_disabled then []
        else
          List.filter
            (fun (e : Graph.edge) -> t.disabled.(e.id))
            (Path.edges new_path)
      in
      (match dead @ congested_links t new_path ~demand with
      | _ :: _ as blocked ->
          Hashtbl.replace t.flows id placed;
          occupy t placed;
          Error (Congested blocked)
      | [] ->
          let src, dst = endpoints t placed.record in
          if Path.src new_path <> src || Path.dst new_path <> dst then begin
            Hashtbl.replace t.flows id placed;
            occupy t placed;
            invalid_arg "Net_state.reroute: path does not connect endpoints"
          end
          else begin
            let placed' = { placed with path = new_path } in
            Hashtbl.replace t.flows id placed';
            occupy t placed';
            Ok placed.path
          end)

let invariants_ok t =
  let g = graph t in
  let expected =
    Array.init (Graph.edge_count g) (fun id -> (Graph.edge g id).capacity)
  in
  let err = ref None in
  Hashtbl.iter
    (fun id placed ->
      if placed.record.Flow_record.id <> id && !err = None then
        err := Some (Printf.sprintf "flow %d stored under wrong key" id);
      let demand = Flow_record.demand_mbps placed.record in
      List.iter
        (fun (e : Graph.edge) ->
          expected.(e.id) <- expected.(e.id) -. demand;
          if not (Hashtbl.mem t.on_edge.(e.id) id) && !err = None then
            err := Some (Printf.sprintf "flow %d missing from edge %d" id e.id))
        (Path.edges placed.path))
    t.flows;
  Array.iteri
    (fun id expect ->
      if !err = None then begin
        if abs_float (expect -. t.residual.(id)) > 1e-6 then
          err :=
            Some
              (Printf.sprintf "edge %d residual %.6f, expected %.6f" id
                 t.residual.(id) expect);
        if expect < -1e-6 then
          err := Some (Printf.sprintf "edge %d oversubscribed" id)
      end)
    expected;
  (* Every on-edge entry must refer to a placed flow crossing that edge. *)
  Array.iteri
    (fun edge_id set ->
      Hashtbl.iter
        (fun fid () ->
          if !err = None then
            match Hashtbl.find_opt t.flows fid with
            | None ->
                err := Some (Printf.sprintf "edge %d lists ghost flow %d" edge_id fid)
            | Some placed ->
                if not (Path.mentions_edge placed.path edge_id) then
                  err :=
                    Some
                      (Printf.sprintf "edge %d lists flow %d not crossing it"
                         edge_id fid))
        set)
    t.on_edge;
  match !err with Some msg -> Error msg | None -> Ok ()

let pp ppf t =
  Format.fprintf ppf "net[%s: %d flows, mean util %.1f%%, max util %.1f%%]"
    t.topo.Topology.name (flow_count t)
    (100.0 *. mean_utilization t)
    (100.0 *. max_utilization t)
