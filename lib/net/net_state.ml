type placed = { record : Flow_record.t; path : Path.t }

(* Undo-journal entry tags. The journal is a flat struct-of-arrays log
   (tag / int operands / float operand / binding slot) instead of a
   variant list: a probe writes thousands of entries and the list cells
   plus boxed floats dominated minor-heap traffic. Residual entries
   store the *applied* delta and are undone by applying the opposite
   delta — the exact arithmetic the symmetric plan/revert pair used to
   perform, so rollback is bit-compatible with the historical
   revert-based probes. Flow-table entries store the previous binding
   in the [j_obj] slot. *)
let tag_residual = 0 (* a = edge id, f = applied delta *)

let tag_flow_put = 1 (* a = flow id, obj = previous binding *)
let tag_flow_del = 2 (* a = flow id, obj = removed binding *)
let tag_on_put_old = 3 (* a = edge id, b = flow id, was present *)
let tag_on_put_new = 4 (* a = edge id, b = flow id, was absent *)
let tag_on_del_old = 5 (* a = edge id, b = flow id, was present *)
let tag_on_del_new = 6 (* a = edge id, b = flow id, was absent *)
let tag_disabled_t = 7 (* a = edge id, previous flag = true *)
let tag_disabled_f = 8 (* a = edge id, previous flag = false *)
let tag_degraded = 9 (* a = edge id, f = applied degradation delta *)

(* Redo-log opcodes. Unlike journal tags these describe the *forward*
   effect, with every operand needed to re-apply it to an identical
   state: a mirror replays them through the same primitives, so scans
   (duplicate put, absent del) resolve identically on both sides. *)
let rt_residual = 0 (* a = edge id, f = delta *)
let rt_on_put = 1 (* a = edge id, b = flow id, f = demand, g = size *)
let rt_on_del = 2 (* a = edge id, b = flow id *)
let rt_flow_put = 3 (* a = flow id, obj = new binding *)
let rt_flow_del = 4 (* a = flow id *)
let rt_disable = 5 (* a = edge id (set the disabled flag) *)
let rt_enable = 6 (* a = edge id (clear the disabled flag) *)
let rt_degraded = 7 (* a = edge id, f = ledger delta *)

type t = {
  topo : Topology.t;
  residual : float array;  (* indexed by edge id *)
  flows : (int, placed) Hashtbl.t;  (* flow id -> placement *)
  (* Per-edge flow-id sets as flat growable parallel arrays (used prefix
     is [0, oe_len.(e))): flow id, its demand in Mbps and its size in
     Mbit, side by side. Order within a set is insertion-and-swap-remove
     order and carries no meaning: every consumer sorts
     ({!flows_on_edge}), checks membership, or breaks ties explicitly by
     flow id (the migration pool). The flat layout makes {!copy_into} a
     plain [Array.copy] per edge — the dominant cost of per-domain probe
     snapshots when these were hashtables — and the cached demand/size
     let the migration pool rank a congested edge's flows without one
     hashtable resolution per flow. *)
  oe_data : int array array;
  oe_dem : float array array;
  oe_size : float array array;
  oe_len : int array;
  disabled : bool array;  (* administratively failed edges *)
  degraded : float array;  (* exogenous capacity loss (fault model), Mbps *)
  versions : int array;  (* per-edge write stamp (committed writes only) *)
  fabric : int list;  (* switch-to-switch edge ids *)
  is_fabric : bool array;
  inv_cap : float array;  (* 1/capacity for fabric edges, else 0 *)
  fabric_n : int;
  mutable util_sum : float;  (* running sum of fabric used/capacity *)
  mutable util_comp : float;  (* Kahan compensation for util_sum *)
  (* Flat undo journal; used prefix is [0, j_len). *)
  mutable j_tag : int array;
  mutable j_a : int array;
  mutable j_b : int array;
  mutable j_f : float array;
  mutable j_g : float array;  (* second float operand (on-edge entries) *)
  mutable j_obj : placed option array;
  mutable j_len : int;
  mutable txn_marks : int array;  (* journal positions of open txns *)
  mutable txn_n : int;
  mutable disabled_n : int;  (* how many edges are administratively down *)
  mutable disabled_epoch : int;  (* bumped on every disable/enable *)
  mutable watch_on : bool;  (* probe read/write tracking active *)
  watch_seen : Bytes.t;  (* per-edge dedup mask for the probe set *)
  watch_buf : int array;  (* touched edges, dedup'd: at most one per edge *)
  mutable watch_n : int;
  (* Committed-mutation redo log (flat, like the journal; used prefix is
     [0, r_len)). When [redo_on], every mutation that survives — writes
     outside any transaction as they happen, writes inside a transaction
     at its outermost commit — is appended here, so a worker domain's
     mirror of this state can be brought up to date by replaying the
     drained log instead of re-copying the whole state. Rolled-back
     transactions never reach the log (their journal span is discarded
     before commit-time conversion), matching the fact that their
     effects were undone exactly. *)
  mutable redo_on : bool;
  mutable r_tag : int array;
  mutable r_a : int array;
  mutable r_b : int array;
  mutable r_f : float array;
  mutable r_g : float array;
  mutable r_obj : placed option array;
  mutable r_len : int;
  memo_ro : bool;  (* domain snapshot: never write the shared memo *)
  paths_memo : (int, Path.t list) Hashtbl.t;
      (* (src,dst) -> full candidate set; topology-pure, shared by copies *)
}

let compute_fabric topo =
  let g = topo.Topology.graph in
  let host = Array.make (Graph.node_count g) false in
  Array.iter (fun h -> host.(h) <- true) topo.Topology.hosts;
  Graph.fold_edges g ~init:[] ~f:(fun acc (e : Graph.edge) ->
      if host.(e.src) || host.(e.dst) then acc else e.id :: acc)
  |> List.rev

let journal_cap0 = 256

let create topo =
  let g = topo.Topology.graph in
  (* Force the CSR build while still single-domain: per-domain probe
     snapshots share the graph, and the lazy rebuild is not
     domain-safe. *)
  Graph.freeze g;
  let n_edges = Graph.edge_count g in
  let residual = Array.init n_edges (fun id -> Graph.capacity g id) in
  let fabric = compute_fabric topo in
  let is_fabric = Array.make n_edges false in
  let inv_cap = Array.make n_edges 0.0 in
  List.iter
    (fun id ->
      is_fabric.(id) <- true;
      let cap = Graph.capacity g id in
      if cap > 0.0 then inv_cap.(id) <- 1.0 /. cap)
    fabric;
  {
    topo;
    residual;
    flows = Hashtbl.create 1024;
    oe_data = Array.init n_edges (fun _ -> Array.make 8 0);
    oe_dem = Array.init n_edges (fun _ -> Array.make 8 0.0);
    oe_size = Array.init n_edges (fun _ -> Array.make 8 0.0);
    oe_len = Array.make n_edges 0;
    disabled = Array.make n_edges false;
    degraded = Array.make n_edges 0.0;
    versions = Array.make n_edges 0;
    fabric;
    is_fabric;
    inv_cap;
    fabric_n = List.length fabric;
    util_sum = 0.0;
    util_comp = 0.0;
    j_tag = Array.make journal_cap0 0;
    j_a = Array.make journal_cap0 0;
    j_b = Array.make journal_cap0 0;
    j_f = Array.make journal_cap0 0.0;
    j_g = Array.make journal_cap0 0.0;
    j_obj = Array.make journal_cap0 None;
    j_len = 0;
    txn_marks = Array.make 8 0;
    txn_n = 0;
    disabled_n = 0;
    disabled_epoch = 0;
    watch_on = false;
    watch_seen = Bytes.make n_edges '\000';
    watch_buf = Array.make (max 1 n_edges) 0;
    watch_n = 0;
    redo_on = false;
    r_tag = [||];
    r_a = [||];
    r_b = [||];
    r_f = [||];
    r_g = [||];
    r_obj = [||];
    r_len = 0;
    memo_ro = false;
    paths_memo = Hashtbl.create 256;
  }

let copy_into ?(memo_ro = false) t =
  let flows = Hashtbl.copy t.flows in
  (* Copy only each edge's used prefix. Speculative migration churn can
     grow an edge's capacity far beyond its live occupancy (the arrays
     never shrink), and trimming turns tens of megabytes of dead slack
     into a few hundred kilobytes of live entries. 25% headroom keeps
     speculative probe churn on a fresh copy from paying an immediate
     re-grow (large-array allocation contends across domains);
     [oe_append] re-grows a trimmed (even empty) array on demand. *)
  let slack len = len + 4 + (len / 4) in
  let sub_int len a =
    let d = Array.make (slack len) 0 in
    Array.blit a 0 d 0 len;
    d
  in
  let sub_float len a =
    let d = Array.make (slack len) 0.0 in
    Array.blit a 0 d 0 len;
    d
  in
  let oe_data = Array.mapi (fun e a -> sub_int t.oe_len.(e) a) t.oe_data in
  let oe_dem = Array.mapi (fun e a -> sub_float t.oe_len.(e) a) t.oe_dem in
  let oe_size = Array.mapi (fun e a -> sub_float t.oe_len.(e) a) t.oe_size in
  {
    topo = t.topo;
    residual = Array.copy t.residual;
    flows;
    oe_data;
    oe_dem;
    oe_size;
    oe_len = Array.copy t.oe_len;
    disabled = Array.copy t.disabled;
    degraded = Array.copy t.degraded;
    versions = Array.copy t.versions;
    fabric = t.fabric;
    is_fabric = t.is_fabric;
    inv_cap = t.inv_cap;
    fabric_n = t.fabric_n;
    util_sum = t.util_sum;
    util_comp = t.util_comp;
    j_tag = Array.make journal_cap0 0;
    j_a = Array.make journal_cap0 0;
    j_b = Array.make journal_cap0 0;
    j_f = Array.make journal_cap0 0.0;
    j_g = Array.make journal_cap0 0.0;
    j_obj = Array.make journal_cap0 None;
    j_len = 0;
    txn_marks = Array.make 8 0;
    txn_n = 0;
    disabled_n = t.disabled_n;
    disabled_epoch = t.disabled_epoch;
    watch_on = false;
    watch_seen = Bytes.make (Array.length t.residual) '\000';
    watch_buf = Array.make (max 1 (Array.length t.residual)) 0;
    watch_n = 0;
    redo_on = false;
    r_tag = [||];
    r_a = [||];
    r_b = [||];
    r_f = [||];
    r_g = [||];
    r_obj = [||];
    r_len = 0;
    memo_ro;
    paths_memo = t.paths_memo;
  }

let copy t =
  if t.txn_n > 0 then invalid_arg "Net_state.copy: open transaction";
  Nu_obs.Counters.incr Nu_obs.Counters.State_copies;
  copy_into t

(* A probe snapshot for a worker domain. Unlike {!copy} it is allowed
   inside an open transaction (the arrays hold the speculative values a
   sequential probe would read), shares the path memo read-only, and is
   deliberately uncounted so [Counters.diff] output stays independent of
   the domain count. *)
let snapshot t = copy_into ~memo_ro:true t

let topology t = t.topo
let graph t = t.topo.Topology.graph

(* ------------------------------------------------------------------ *)
(* Checkpoint freeze/thaw. The frozen form captures every piece of
   state that can influence a future decision *bit-exactly*: residuals
   and the Kahan pair are copied verbatim rather than recomputed from
   the placements, because floating-point accumulation is
   order-sensitive and a recomputed residual could differ from the live
   one in its low bits — enough to flip a feasibility comparison and
   break digest-equality of restored runs. *)

type frozen = {
  fz_flows : placed list;  (* sorted by flow id *)
  fz_residual : float array;
  fz_degraded : float array;
  fz_disabled : bool array;
  fz_versions : int array;
  fz_disabled_epoch : int;
  fz_util_sum : float;
  fz_util_comp : float;
}

let freeze t =
  if t.txn_n > 0 then invalid_arg "Net_state.freeze: open transaction";
  let flows =
    Hashtbl.fold (fun _ placed acc -> placed :: acc) t.flows []
    |> List.sort (fun a b ->
           Int.compare a.record.Flow_record.id b.record.Flow_record.id)
  in
  {
    fz_flows = flows;
    fz_residual = Array.copy t.residual;
    fz_degraded = Array.copy t.degraded;
    fz_disabled = Array.copy t.disabled;
    fz_versions = Array.copy t.versions;
    fz_disabled_epoch = t.disabled_epoch;
    fz_util_sum = t.util_sum;
    fz_util_comp = t.util_comp;
  }

(* Position of [fid] in edge [e]'s set, or -1. The sets are small (the
   flows crossing one link) and contiguous, so the linear scan is
   competitive with a hashtable probe and allocation-free. *)
let[@inline] oe_index t e fid =
  let data = Array.unsafe_get t.oe_data e in
  let n = Array.unsafe_get t.oe_len e in
  let rec go i =
    if i >= n then -1
    else if Array.unsafe_get data i = fid then i
    else go (i + 1)
  in
  go 0

let oe_append t e fid dem size =
  let n = t.oe_len.(e) in
  if n = Array.length t.oe_data.(e) then begin
    (* [max 8] also covers exact-size (possibly empty) arrays from
       {!copy_into}'s trimmed per-edge copies. *)
    let grow_int a =
      let d = Array.make (max 8 (2 * n)) 0 in
      Array.blit a 0 d 0 n;
      d
    in
    let grow_float a =
      let d = Array.make (max 8 (2 * n)) 0.0 in
      Array.blit a 0 d 0 n;
      d
    in
    t.oe_data.(e) <- grow_int t.oe_data.(e);
    t.oe_dem.(e) <- grow_float t.oe_dem.(e);
    t.oe_size.(e) <- grow_float t.oe_size.(e)
  end;
  t.oe_data.(e).(n) <- fid;
  t.oe_dem.(e).(n) <- dem;
  t.oe_size.(e).(n) <- size;
  t.oe_len.(e) <- n + 1

(* Swap-remove: order inside a set is meaningless (see the field
   comment), so filling the hole with the last element is safe. *)
let[@inline] oe_remove_at t e i =
  let n = t.oe_len.(e) - 1 in
  t.oe_data.(e).(i) <- t.oe_data.(e).(n);
  t.oe_dem.(e).(i) <- t.oe_dem.(e).(n);
  t.oe_size.(e).(i) <- t.oe_size.(e).(n);
  t.oe_len.(e) <- n

let thaw topo fz =
  let t = create topo in
  let n_edges = Array.length t.residual in
  if
    Array.length fz.fz_residual <> n_edges
    || Array.length fz.fz_degraded <> n_edges
    || Array.length fz.fz_disabled <> n_edges
    || Array.length fz.fz_versions <> n_edges
  then invalid_arg "Net_state.thaw: frozen state does not match the topology";
  Array.blit fz.fz_residual 0 t.residual 0 n_edges;
  Array.blit fz.fz_degraded 0 t.degraded 0 n_edges;
  Array.blit fz.fz_disabled 0 t.disabled 0 n_edges;
  Array.blit fz.fz_versions 0 t.versions 0 n_edges;
  let disabled_n = ref 0 in
  Array.iter (fun d -> if d then incr disabled_n) t.disabled;
  t.disabled_n <- !disabled_n;
  t.disabled_epoch <- fz.fz_disabled_epoch;
  t.util_sum <- fz.fz_util_sum;
  t.util_comp <- fz.fz_util_comp;
  List.iter
    (fun placed ->
      Hashtbl.replace t.flows placed.record.Flow_record.id placed;
      List.iter
        (fun (e : Graph.edge) ->
          let fid = placed.record.Flow_record.id in
          if oe_index t e.id fid < 0 then
            oe_append t e.id fid
              (Flow_record.demand_mbps placed.record)
              placed.record.Flow_record.size_mbit)
        (Path.edges placed.path))
    fz.fz_flows;
  t

(* ------------------------------------------------------------------ *)
(* Probe read-set tracking. A bytes mask dedups membership in O(1), and
   the touched ids land in a preallocated buffer (an edge can appear at
   most once, so [watch_buf] never grows) — probes touch edges millions
   of times per run, so a hashtable or accumulator list here dominated
   the tracking cost. Disabled-flag reads are deliberately *not*
   tracked per edge: [disabled_epoch] stands in for all of them (see
   {!candidate_paths}). *)

let[@inline] touch t edge_id =
  if t.watch_on && Bytes.unsafe_get t.watch_seen edge_id = '\000' then begin
    Bytes.unsafe_set t.watch_seen edge_id '\001';
    Array.unsafe_set t.watch_buf t.watch_n edge_id;
    t.watch_n <- t.watch_n + 1
  end

let start_probe t =
  if t.watch_on then invalid_arg "Net_state.start_probe: probe already active";
  t.watch_on <- true

let stop_probe t =
  if not t.watch_on then invalid_arg "Net_state.stop_probe: no active probe";
  t.watch_on <- false;
  let n = t.watch_n in
  let acc = Array.sub t.watch_buf 0 n in
  for i = 0 to n - 1 do
    Bytes.unsafe_set t.watch_seen (Array.unsafe_get acc i) '\000'
  done;
  t.watch_n <- 0;
  Array.sort Int.compare acc;
  acc

(* ------------------------------------------------------------------ *)
(* Transaction journal. *)

let[@inline] journal_active t = t.txn_n > 0

let in_txn t = journal_active t
let txn_depth t = t.txn_n
let disabled_epoch t = t.disabled_epoch
let edge_version t id =
  if id < 0 || id >= Array.length t.versions then
    invalid_arg "Net_state.edge_version: edge id";
  t.versions.(id)

let grow_journal t =
  let cap = Array.length t.j_tag in
  let cap' = 2 * cap in
  let grow_int a = Array.append a (Array.make cap 0) in
  t.j_tag <- grow_int t.j_tag;
  t.j_a <- grow_int t.j_a;
  t.j_b <- grow_int t.j_b;
  t.j_f <- Array.append t.j_f (Array.make cap 0.0);
  t.j_g <- Array.append t.j_g (Array.make cap 0.0);
  t.j_obj <- Array.append t.j_obj (Array.make cap None);
  ignore cap'

(* Append a journal entry; [obj] is only non-None for flow-table ops. *)
let[@inline] jpush t tag a b f =
  if t.j_len = Array.length t.j_tag then grow_journal t;
  let i = t.j_len in
  Array.unsafe_set t.j_tag i tag;
  Array.unsafe_set t.j_a i a;
  Array.unsafe_set t.j_b i b;
  Array.unsafe_set t.j_f i f;
  t.j_len <- i + 1

(* Variant carrying the second float operand (on-edge entries: the
   removed/added flow's demand and size, needed to restore the parallel
   arrays on undo). [jpush] leaves the slot stale, which is fine: undo
   only reads [j_g] for on-edge tags. *)
let[@inline] jpush2 t tag a b f g =
  if t.j_len = Array.length t.j_tag then grow_journal t;
  let i = t.j_len in
  Array.unsafe_set t.j_tag i tag;
  Array.unsafe_set t.j_a i a;
  Array.unsafe_set t.j_b i b;
  Array.unsafe_set t.j_f i f;
  Array.unsafe_set t.j_g i g;
  t.j_len <- i + 1

let[@inline] jpush_obj t tag a obj =
  if t.j_len = Array.length t.j_tag then grow_journal t;
  let i = t.j_len in
  Array.unsafe_set t.j_tag i tag;
  Array.unsafe_set t.j_a i a;
  Array.unsafe_set t.j_b i 0;
  Array.unsafe_set t.j_f i 0.0;
  Array.unsafe_set t.j_obj i obj;
  t.j_len <- i + 1

(* Redo-log append. Starts empty and doubles; the log is drained every
   probe batch, so it stays at the high-water mark of one batch's
   committed churn. *)
let grow_redo t =
  let cap = max 64 (2 * Array.length t.r_tag) in
  let grow_int a = Array.append a (Array.make (max 64 (Array.length a)) 0) in
  if Array.length t.r_tag = 0 then begin
    t.r_tag <- Array.make cap 0;
    t.r_a <- Array.make cap 0;
    t.r_b <- Array.make cap 0;
    t.r_f <- Array.make cap 0.0;
    t.r_g <- Array.make cap 0.0;
    t.r_obj <- Array.make cap None
  end
  else begin
    t.r_tag <- grow_int t.r_tag;
    t.r_a <- grow_int t.r_a;
    t.r_b <- grow_int t.r_b;
    t.r_f <- Array.append t.r_f (Array.make (Array.length t.r_f) 0.0);
    t.r_g <- Array.append t.r_g (Array.make (Array.length t.r_g) 0.0);
    t.r_obj <- Array.append t.r_obj (Array.make (Array.length t.r_obj) None)
  end

let[@inline] rpush t tag a b f g =
  if t.r_len = Array.length t.r_tag then grow_redo t;
  let i = t.r_len in
  Array.unsafe_set t.r_tag i tag;
  Array.unsafe_set t.r_a i a;
  Array.unsafe_set t.r_b i b;
  Array.unsafe_set t.r_f i f;
  Array.unsafe_set t.r_g i g;
  t.r_len <- i + 1

let[@inline] rpush_obj t tag a obj =
  if t.r_len = Array.length t.r_tag then grow_redo t;
  let i = t.r_len in
  Array.unsafe_set t.r_tag i tag;
  Array.unsafe_set t.r_a i a;
  Array.unsafe_set t.r_b i 0;
  Array.unsafe_set t.r_f i 0.0;
  Array.unsafe_set t.r_g i 0.0;
  Array.unsafe_set t.r_obj i (Some obj);
  t.r_len <- i + 1

(* Kahan-compensated accumulation keeps the running fabric-utilisation
   sum accurate across millions of occupy/release pairs. *)
let[@inline] kadd t x =
  let y = x -. t.util_comp in
  let s = t.util_sum +. y in
  t.util_comp <- (s -. t.util_sum) -. y;
  t.util_sum <- s

(* Every residual change funnels through here: journaling, version
   stamping (deferred to commit while inside a transaction), probe
   tracking and the incremental utilisation sum. *)
let[@inline] apply_residual t e delta =
  touch t e;
  if journal_active t then jpush t tag_residual e 0 delta
  else begin
    t.versions.(e) <- t.versions.(e) + 1;
    if t.redo_on then rpush t rt_residual e 0 delta 0.0
  end;
  t.residual.(e) <- t.residual.(e) +. delta;
  (* used = capacity - residual, so utilisation moves opposite to the
     residual delta. *)
  if Array.unsafe_get t.is_fabric e then
    kadd t (-.(delta *. Array.unsafe_get t.inv_cap e))

let[@inline] on_edge_put t e fid dem size =
  let i = oe_index t e fid in
  if journal_active t then
    jpush2 t (if i >= 0 then tag_on_put_old else tag_on_put_new) e fid dem size
  else if t.redo_on then rpush t rt_on_put e fid dem size;
  if i < 0 then oe_append t e fid dem size

let[@inline] on_edge_del t e fid =
  let i = oe_index t e fid in
  if journal_active t then begin
    if i >= 0 then
      (* Journal the entry's demand/size so undo can re-append it. *)
      jpush2 t tag_on_del_old e fid t.oe_dem.(e).(i) t.oe_size.(e).(i)
    else jpush2 t tag_on_del_new e fid 0.0 0.0
  end
  else if t.redo_on then rpush t rt_on_del e fid 0.0 0.0;
  if i >= 0 then oe_remove_at t e i

let[@inline] flow_put t id p =
  if journal_active t then
    jpush_obj t tag_flow_put id (Hashtbl.find_opt t.flows id)
  else if t.redo_on then rpush_obj t rt_flow_put id p;
  Hashtbl.replace t.flows id p

let[@inline] flow_del t id p =
  if journal_active t then jpush_obj t tag_flow_del id (Some p)
  else if t.redo_on then rpush t rt_flow_del id 0 0.0 0.0;
  Hashtbl.remove t.flows id

(* Undo journal entry [i]; clears its binding slot. *)
let undo t i =
  let tag = t.j_tag.(i) and a = t.j_a.(i) in
  if tag = tag_residual then begin
    let delta = t.j_f.(i) in
    t.residual.(a) <- t.residual.(a) -. delta;
    if t.is_fabric.(a) then kadd t (delta *. t.inv_cap.(a))
  end
  else if tag = tag_flow_put then begin
    (match t.j_obj.(i) with
    | None -> Hashtbl.remove t.flows a
    | Some p -> Hashtbl.replace t.flows a p);
    t.j_obj.(i) <- None
  end
  else if tag = tag_flow_del then begin
    (match t.j_obj.(i) with
    | Some p -> Hashtbl.replace t.flows a p
    | None -> assert false);
    t.j_obj.(i) <- None
  end
  else if tag = tag_on_put_new then begin
    let j = oe_index t a t.j_b.(i) in
    assert (j >= 0);
    oe_remove_at t a j
  end
  else if tag = tag_on_del_old then oe_append t a t.j_b.(i) t.j_f.(i) t.j_g.(i)
  else if tag = tag_on_put_old || tag = tag_on_del_new then ()
  else if tag = tag_disabled_t || tag = tag_disabled_f then begin
    let prev = tag = tag_disabled_t in
    t.disabled.(a) <- prev;
    t.disabled_n <- t.disabled_n + (if prev then 1 else -1)
  end
  else if tag = tag_degraded then t.degraded.(a) <- t.degraded.(a) -. t.j_f.(i)
  else assert false

let begin_txn t =
  if t.txn_n = Array.length t.txn_marks then
    t.txn_marks <- Array.append t.txn_marks (Array.make t.txn_n 0);
  t.txn_marks.(t.txn_n) <- t.j_len;
  t.txn_n <- t.txn_n + 1

let rollback t =
  if t.txn_n = 0 then invalid_arg "Net_state.rollback: no open transaction"
  else begin
    Nu_obs.Counters.incr Nu_obs.Counters.Txn_rollbacks;
    let mark = t.txn_marks.(t.txn_n - 1) in
    for i = t.j_len - 1 downto mark do
      undo t i
    done;
    t.j_len <- mark;
    t.txn_n <- t.txn_n - 1
  end

(* Convert the surviving journal — exactly the op stream of the
   committing transaction, inner rollbacks already excised — into redo
   entries. Flow-table entries journal the *previous* binding, so the
   new one is read off the live table: only the final binding per id
   matters to a replayer (no redo op in between reads the table), and
   an [rt_flow_del] of an absent id replays as a no-op. *)
let journal_to_redo t =
  for i = 0 to t.j_len - 1 do
    let tag = t.j_tag.(i) and a = t.j_a.(i) in
    if tag = tag_residual then rpush t rt_residual a 0 t.j_f.(i) 0.0
    else if tag = tag_on_put_old || tag = tag_on_put_new then
      rpush t rt_on_put a t.j_b.(i) t.j_f.(i) t.j_g.(i)
    else if tag = tag_on_del_old then rpush t rt_on_del a t.j_b.(i) 0.0 0.0
    else if tag = tag_on_del_new then ()
    else if tag = tag_flow_put || tag = tag_flow_del then begin
      match Hashtbl.find_opt t.flows a with
      | Some p -> rpush_obj t rt_flow_put a p
      | None -> rpush t rt_flow_del a 0 0.0 0.0
    end
    else if tag = tag_disabled_t then rpush t rt_enable a 0 0.0 0.0
    else if tag = tag_disabled_f then rpush t rt_disable a 0 0.0 0.0
    else if tag = tag_degraded then rpush t rt_degraded a 0 t.j_f.(i) 0.0
    else assert false
  done

let commit t =
  if t.txn_n = 0 then invalid_arg "Net_state.commit: no open transaction"
  else begin
    t.txn_n <- t.txn_n - 1;
    if t.txn_n = 0 then begin
      if t.redo_on then journal_to_redo t;
      (* Outermost commit: the journaled writes become permanent, so
         stamp every edge they touched (once per entry, matching the
         per-write stamping outside transactions). Inner commits just
         merge into the enclosing transaction. *)
      Nu_obs.Counters.incr Nu_obs.Counters.Txn_commits;
      for i = 0 to t.j_len - 1 do
        let tag = t.j_tag.(i) in
        if
          tag = tag_residual || tag = tag_disabled_t || tag = tag_disabled_f
        then begin
          let e = t.j_a.(i) in
          t.versions.(e) <- t.versions.(e) + 1
        end
        (* tag_degraded rides on its paired residual entry for stamping. *)
        else if tag = tag_flow_put || tag = tag_flow_del then t.j_obj.(i) <- None
      done;
      t.j_len <- 0
    end
  end

(* ------------------------------------------------------------------ *)
(* Redo log: public surface. *)

type redo = {
  rd_tag : int array;
  rd_a : int array;
  rd_b : int array;
  rd_f : float array;
  rd_g : float array;
  rd_obj : placed option array;
  rd_n : int;
}

let redo_start t =
  t.redo_on <- true;
  t.r_len <- 0

let redo_stop t =
  t.redo_on <- false;
  Array.fill t.r_obj 0 (Array.length t.r_obj) None;
  t.r_len <- 0

let redo_active t = t.redo_on

let redo_drain t =
  let n = t.r_len in
  let rd =
    {
      rd_tag = Array.sub t.r_tag 0 n;
      rd_a = Array.sub t.r_a 0 n;
      rd_b = Array.sub t.r_b 0 n;
      rd_f = Array.sub t.r_f 0 n;
      rd_g = Array.sub t.r_g 0 n;
      rd_obj = Array.sub t.r_obj 0 n;
      rd_n = n;
    }
  in
  Array.fill t.r_obj 0 n None;
  t.r_len <- 0;
  rd

let redo_size rd = rd.rd_n

(* ------------------------------------------------------------------ *)
(* Capacity accounting. *)

let residual t edge_id =
  if edge_id < 0 || edge_id >= Array.length t.residual then
    invalid_arg "Net_state.residual: edge id";
  touch t edge_id;
  t.residual.(edge_id)

let used t edge_id = Graph.capacity (graph t) edge_id -. residual t edge_id

let edge_utilization t edge_id =
  let cap = Graph.capacity (graph t) edge_id in
  if cap <= 0.0 then 0.0 else used t edge_id /. cap

let mean_utilization ?edges t =
  match edges with
  | Some [] -> 0.0
  | Some ids ->
      let sum = List.fold_left (fun acc id -> acc +. edge_utilization t id) 0.0 ids in
      sum /. float_of_int (List.length ids)
  | None ->
      let n = Graph.edge_count (graph t) in
      if n = 0 then 0.0
      else begin
        let sum = ref 0.0 in
        for id = 0 to n - 1 do
          sum := !sum +. edge_utilization t id
        done;
        !sum /. float_of_int n
      end

let max_utilization t =
  let m = ref 0.0 in
  for id = 0 to Graph.edge_count (graph t) - 1 do
    m := max !m (edge_utilization t id)
  done;
  !m

let check_edge_id t id name =
  if id < 0 || id >= Array.length t.disabled then
    invalid_arg ("Net_state." ^ name ^ ": edge id")

let set_disabled t id v =
  if t.disabled.(id) <> v then begin
    if journal_active t then
      jpush t (if t.disabled.(id) then tag_disabled_t else tag_disabled_f) id 0
        0.0
    else begin
      t.versions.(id) <- t.versions.(id) + 1;
      if t.redo_on then rpush t (if v then rt_disable else rt_enable) id 0 0.0 0.0
    end;
    (* The epoch stays bumped even if the write is rolled back — a
       spurious cache invalidation at worst, never a stale hit. *)
    t.disabled_epoch <- t.disabled_epoch + 1;
    t.disabled_n <- t.disabled_n + (if v then 1 else -1);
    t.disabled.(id) <- v
  end

let disable_edge t id =
  check_edge_id t id "disable_edge";
  set_disabled t id true

let enable_edge t id =
  check_edge_id t id "enable_edge";
  set_disabled t id false

let edge_disabled t id =
  check_edge_id t id "edge_disabled";
  t.disabled.(id)

(* Exogenous capacity loss (the fault model's partial-degradation
   events). The loss is expressed as a residual delta, so feasibility
   checks and the incremental utilisation sum pick it up for free; the
   [degraded] ledger keeps [invariants_ok] able to reconstruct residuals
   and lets {!restore_edge_capacity} undo the loss exactly. The residual
   may go negative when placed flows already exceed the surviving
   capacity — the engine's fault handler evacuates flows until it is
   non-negative again. *)
let degrade_edge t id ~lost_mbps =
  check_edge_id t id "degrade_edge";
  if lost_mbps < 0.0 then invalid_arg "Net_state.degrade_edge: negative loss";
  if lost_mbps > 0.0 then begin
    apply_residual t id (-.lost_mbps);
    if journal_active t then jpush t tag_degraded id 0 lost_mbps
    else if t.redo_on then rpush t rt_degraded id 0 lost_mbps 0.0;
    t.degraded.(id) <- t.degraded.(id) +. lost_mbps
  end

let restore_edge_capacity t id =
  check_edge_id t id "restore_edge_capacity";
  let lost = t.degraded.(id) in
  if lost > 0.0 then begin
    apply_residual t id lost;
    if journal_active t then jpush t tag_degraded id 0 (-.lost)
    else if t.redo_on then rpush t rt_degraded id 0 (-.lost) 0.0;
    t.degraded.(id) <- 0.0
  end

let degraded_mbps t id =
  check_edge_id t id "degraded_mbps";
  t.degraded.(id)

(* Replay a drained redo log against a mirror that was bit-identical to
   the source when the log began. Ops funnel through the same
   primitives the source executed, so membership scans, the Kahan
   utilisation sum and swap-remove order all evolve exactly as they did
   (or would have, for ops that only materialised at commit) on the
   source. The mirror must be quiescent: no open transaction, no active
   probe, redo logging off. *)
let redo_apply t rd =
  if t.txn_n > 0 then invalid_arg "Net_state.redo_apply: open transaction";
  if t.watch_on then invalid_arg "Net_state.redo_apply: active probe";
  if t.redo_on then invalid_arg "Net_state.redo_apply: redo logging active";
  for i = 0 to rd.rd_n - 1 do
    let tag = rd.rd_tag.(i) and a = rd.rd_a.(i) in
    if tag = rt_residual then apply_residual t a rd.rd_f.(i)
    else if tag = rt_on_put then
      on_edge_put t a rd.rd_b.(i) rd.rd_f.(i) rd.rd_g.(i)
    else if tag = rt_on_del then on_edge_del t a rd.rd_b.(i)
    else if tag = rt_flow_put then begin
      match rd.rd_obj.(i) with
      | Some p -> flow_put t a p
      | None -> assert false
    end
    else if tag = rt_flow_del then Hashtbl.remove t.flows a
    else if tag = rt_disable then set_disabled t a true
    else if tag = rt_enable then set_disabled t a false
    else if tag = rt_degraded then t.degraded.(a) <- t.degraded.(a) +. rd.rd_f.(i)
    else assert false
  done

let fabric_edges t = t.fabric

let mean_fabric_utilization t =
  (* Maintained incrementally in occupy/release: O(1), where the fold
     over fabric edge ids was O(edges) per call. *)
  if t.fabric_n = 0 then 0.0
  else
    let v = t.util_sum /. float_of_int t.fabric_n in
    if v < 0.0 then 0.0 else v

let flow t id =
  match Hashtbl.find_opt t.flows id with
  | None -> None
  | Some p as r ->
      (* A probe that looked a flow up depends on its placement; its
         path's edges stand in for it in the read set (any reroute or
         removal of the flow re-stamps them). *)
      if t.watch_on then begin
        let ids = Path.hop_ids p.path in
        for i = 0 to Array.length ids - 1 do
          touch t (Array.unsafe_get ids i)
        done
      end;
      r

let flow_count t = Hashtbl.length t.flows

let is_placed t id =
  if t.watch_on then flow t id <> None else Hashtbl.mem t.flows id

let iter_flows t f = Hashtbl.iter (fun _ placed -> f placed) t.flows

let flows_on_edge t edge_id =
  if edge_id < 0 || edge_id >= Array.length t.oe_len then
    invalid_arg "Net_state.flows_on_edge: edge id";
  touch t edge_id;
  (* Copy the id prefix, sort the ints in place, then resolve each
     placement once — cheaper than sorting boxed records, and the output
     (ascending flow id) is identical whatever internal order the
     swap-removes left behind. *)
  let ids = Array.sub t.oe_data.(edge_id) 0 t.oe_len.(edge_id) in
  Array.sort Int.compare ids;
  Array.fold_right (fun id acc -> Hashtbl.find t.flows id :: acc) ids []

let edge_flow_count t edge_id =
  if edge_id < 0 || edge_id >= Array.length t.oe_len then
    invalid_arg "Net_state.edge_flow_count: edge id";
  t.oe_len.(edge_id)

(* Allocation-free feed for the migration pool: copy the edge's (id,
   demand, size) columns into caller-owned scratch. Entry order is the
   internal swap-remove order and carries no meaning — callers must
   either sort or break ties by flow id. Touches the edge like
   {!flows_on_edge} did, so probe read sets are unchanged. *)
let edge_flows_blit t edge_id ~ids ~dem ~size =
  if edge_id < 0 || edge_id >= Array.length t.oe_len then
    invalid_arg "Net_state.edge_flows_blit: edge id";
  touch t edge_id;
  let n = t.oe_len.(edge_id) in
  if Array.length ids < n || Array.length dem < n || Array.length size < n
  then invalid_arg "Net_state.edge_flows_blit: scratch too small";
  Array.blit t.oe_data.(edge_id) 0 ids 0 n;
  Array.blit t.oe_dem.(edge_id) 0 dem 0 n;
  Array.blit t.oe_size.(edge_id) 0 size 0 n;
  n

let peek_flow t id = Hashtbl.find_opt t.flows id

let flows_through_node t v =
  let acc = ref [] in
  Hashtbl.iter
    (fun id placed -> if Path.mentions_node placed.path v then acc := id :: !acc)
    t.flows;
  List.map (fun id -> Hashtbl.find t.flows id) (List.sort compare !acc)

let endpoints t (record : Flow_record.t) =
  let hosts = t.topo.Topology.hosts in
  let n = Array.length hosts in
  if record.src < 0 || record.src >= n || record.dst < 0 || record.dst >= n
  then invalid_arg "Net_state.endpoints: host index out of range";
  (hosts.(record.src), hosts.(record.dst))

let path_enabled t path =
  let ids = Path.hop_ids path in
  let n = Array.length ids in
  let rec go i =
    i >= n || ((not t.disabled.(Array.unsafe_get ids i)) && go (i + 1))
  in
  go 0

let memo_key t ~src ~dst = (src * Graph.node_count (graph t)) + dst

let candidate_paths t record =
  Nu_obs.Counters.incr Nu_obs.Counters.Path_enumerations;
  let src, dst = endpoints t record in
  let key = memo_key t ~src ~dst in
  let all =
    (* The unfiltered candidate set is a pure function of the topology;
       memoise it so repeated probes skip the path re-construction.
       Domain snapshots ([memo_ro]) read the shared table but never
       write it — the engine pre-warms every host pair before the first
       parallel batch, so worker misses are a cold fallback, not the
       norm. *)
    match Hashtbl.find_opt t.paths_memo key with
    | Some ps -> ps
    | None ->
        let ps = t.topo.Topology.candidate_paths ~src ~dst in
        if not t.memo_ro then Hashtbl.add t.paths_memo key ps;
        ps
  in
  (* With no edge down — the overwhelmingly common case — the filter is
     the identity; skip it. Probes need no per-edge record of the
     disabled reads either way: any disable/enable bumps
     [disabled_epoch], which the estimate cache checks wholesale. *)
  if t.disabled_n = 0 then all else List.filter (path_enabled t) all

let warm_all_paths t =
  (* Populate the path memo (and any topology-internal cache) for every
     ordered host pair, without counting the enumerations — this is a
     cache fill, not planning work. Called once on the main domain
     before probe snapshots start sharing the memo read-only. *)
  if not t.memo_ro then begin
    let hosts = t.topo.Topology.hosts in
    Array.iter
      (fun src ->
        Array.iter
          (fun dst ->
            if src <> dst then begin
              let key = memo_key t ~src ~dst in
              if not (Hashtbl.mem t.paths_memo key) then
                Hashtbl.add t.paths_memo key
                  (t.topo.Topology.candidate_paths ~src ~dst)
            end)
          hosts)
      hosts
  end

let path_feasible t path ~demand =
  let ids = Path.hop_ids path in
  let n = Array.length ids in
  (* Short-circuits exactly like the List.for_all it replaces: edges
     past the first infeasible one are not touched, keeping probe read
     sets (and so estimate-cache stamps) bit-identical. *)
  let rec go i =
    i >= n
    ||
    let e = Array.unsafe_get ids i in
    touch t e;
    (not (Array.unsafe_get t.disabled e))
    && Array.unsafe_get t.residual e >= demand
    && go (i + 1)
  in
  go 0

let congested_links t path ~demand =
  let ids = Path.hop_ids path in
  let g = graph t in
  let acc = ref [] in
  for i = Array.length ids - 1 downto 0 do
    let e = Array.unsafe_get ids i in
    touch t e;
    if Array.unsafe_get t.residual e < demand then acc := Graph.edge g e :: !acc
  done;
  !acc

let capacity_gap t (e : Graph.edge) ~demand =
  touch t e.id;
  demand -. t.residual.(e.id)

type place_error = Duplicate_flow | Congested of Graph.edge list

let occupy t placed =
  let demand = Flow_record.demand_mbps placed.record in
  let size = placed.record.Flow_record.size_mbit in
  let fid = placed.record.Flow_record.id in
  let ids = Path.hop_ids placed.path in
  for i = 0 to Array.length ids - 1 do
    let e = Array.unsafe_get ids i in
    apply_residual t e (-.demand);
    on_edge_put t e fid demand size
  done

let release t placed =
  let demand = Flow_record.demand_mbps placed.record in
  let fid = placed.record.Flow_record.id in
  let ids = Path.hop_ids placed.path in
  for i = 0 to Array.length ids - 1 do
    let e = Array.unsafe_get ids i in
    apply_residual t e demand;
    on_edge_del t e fid
  done

let disabled_links t path =
  let ids = Path.hop_ids path in
  let g = graph t in
  let acc = ref [] in
  for i = Array.length ids - 1 downto 0 do
    let e = Array.unsafe_get ids i in
    if Array.unsafe_get t.disabled e then acc := Graph.edge g e :: !acc
  done;
  !acc

let place t record path =
  if Hashtbl.mem t.flows record.Flow_record.id then Error Duplicate_flow
  else begin
    let src, dst = endpoints t record in
    if Path.src path <> src || Path.dst path <> dst then
      invalid_arg "Net_state.place: path does not connect the flow endpoints";
    let demand = Flow_record.demand_mbps record in
    let dead = disabled_links t path in
    match dead @ congested_links t path ~demand with
    | _ :: _ as blocked -> Error (Congested blocked)
    | [] ->
        let placed = { record; path } in
        flow_put t record.id placed;
        occupy t placed;
        Ok ()
  end

let remove t id =
  match Hashtbl.find_opt t.flows id with
  | None -> Error `Not_found
  | Some placed ->
      flow_del t id placed;
      release t placed;
      Ok placed

let reroute ?(admit_disabled = false) t id new_path =
  match Hashtbl.find_opt t.flows id with
  | None -> invalid_arg "Net_state.reroute: flow not placed"
  | Some placed ->
      (* Judge feasibility with the flow's own usage released — computed
         arithmetically (residual +. demand on edges the old path shares
         with the new one) rather than by physically releasing and
         restoring the placement, so a rejected attempt costs no journal
         or flow-table traffic. The additions match what release used to
         apply, keeping the comparisons bit-identical. *)
      let demand = Flow_record.demand_mbps placed.record in
      let dead = if admit_disabled then [] else disabled_links t new_path in
      let congested =
        let ids = Path.hop_ids new_path in
        let g = graph t in
        let acc = ref [] in
        for i = Array.length ids - 1 downto 0 do
          let e = Array.unsafe_get ids i in
          touch t e;
          let r = Array.unsafe_get t.residual e in
          let avail =
            if Path.mentions_edge placed.path e then r +. demand else r
          in
          if avail < demand then acc := Graph.edge g e :: !acc
        done;
        !acc
      in
      (match dead @ congested with
      | _ :: _ as blocked -> Error (Congested blocked)
      | [] ->
          let src, dst = endpoints t placed.record in
          if Path.src new_path <> src || Path.dst new_path <> dst then
            invalid_arg "Net_state.reroute: path does not connect endpoints"
          else begin
            flow_del t id placed;
            release t placed;
            let placed' = { placed with path = new_path } in
            flow_put t id placed';
            occupy t placed';
            Ok placed.path
          end)

let invariants_ok t =
  let g = graph t in
  let expected =
    Array.init (Graph.edge_count g) (fun id ->
        Graph.capacity g id -. t.degraded.(id))
  in
  let err = ref None in
  Hashtbl.iter
    (fun id placed ->
      if placed.record.Flow_record.id <> id && !err = None then
        err := Some (Printf.sprintf "flow %d stored under wrong key" id);
      let demand = Flow_record.demand_mbps placed.record in
      List.iter
        (fun (e : Graph.edge) ->
          expected.(e.id) <- expected.(e.id) -. demand;
          if oe_index t e.id id < 0 && !err = None then
            err := Some (Printf.sprintf "flow %d missing from edge %d" id e.id))
        (Path.edges placed.path))
    t.flows;
  Array.iteri
    (fun id expect ->
      if !err = None then begin
        if abs_float (expect -. t.residual.(id)) > 1e-6 then
          err :=
            Some
              (Printf.sprintf "edge %d residual %.6f, expected %.6f" id
                 t.residual.(id) expect);
        if expect < -1e-6 then
          err := Some (Printf.sprintf "edge %d oversubscribed" id)
      end)
    expected;
  (* Every on-edge entry must refer to a placed flow crossing that edge. *)
  Array.iteri
    (fun edge_id data ->
      for i = 0 to t.oe_len.(edge_id) - 1 do
        let fid = data.(i) in
        if !err = None then
          match Hashtbl.find_opt t.flows fid with
          | None ->
              err := Some (Printf.sprintf "edge %d lists ghost flow %d" edge_id fid)
          | Some placed ->
              if not (Path.mentions_edge placed.path edge_id) then
                err :=
                  Some
                    (Printf.sprintf "edge %d lists flow %d not crossing it"
                       edge_id fid)
      done)
    t.oe_data;
  (* The incremental fabric-utilisation sum must track a fresh fold. *)
  (if !err = None && t.fabric_n > 0 then begin
     let folded =
       List.fold_left
         (fun acc id ->
           let cap = Graph.capacity g id in
           if cap <= 0.0 then acc
           else acc +. ((cap -. t.residual.(id)) /. cap))
         0.0 t.fabric
     in
     if abs_float (folded -. t.util_sum) > 1e-6 then
       err :=
         Some
           (Printf.sprintf "fabric util sum %.9f, expected %.9f" t.util_sum
              folded)
   end);
  (if !err = None && t.txn_n > 0 then
     err := Some "transaction left open");
  match !err with Some msg -> Error msg | None -> Ok ()

let pp ppf t =
  Format.fprintf ppf "net[%s: %d flows, mean util %.1f%%, max util %.1f%%]"
    t.topo.Topology.name (flow_count t)
    (100.0 *. mean_utilization t)
    (100.0 *. max_utilization t)
