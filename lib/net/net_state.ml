type placed = { record : Flow_record.t; path : Path.t }

(* Undo-journal entry. Residual entries store the *applied* delta and are
   undone by applying the opposite delta — the exact arithmetic the
   symmetric plan/revert pair used to perform, so rollback is bit-
   compatible with the historical revert-based probes. Table entries
   store enough of the previous binding to restore it structurally. *)
type jop =
  | Jresidual of int * float  (* edge id, applied delta *)
  | Jflow_put of int * placed option  (* flow id, previous binding *)
  | Jflow_del of int * placed  (* flow id, removed binding *)
  | Jon_edge_put of int * int * bool  (* edge id, flow id, was present *)
  | Jon_edge_del of int * int * bool  (* edge id, flow id, was present *)
  | Jdisabled of int * bool  (* edge id, previous flag *)
  | Jdegraded of int * float  (* edge id, applied degradation delta *)

type t = {
  topo : Topology.t;
  residual : float array;  (* indexed by edge id *)
  flows : (int, placed) Hashtbl.t;  (* flow id -> placement *)
  on_edge : (int, unit) Hashtbl.t array;  (* edge id -> flow-id set *)
  disabled : bool array;  (* administratively failed edges *)
  degraded : float array;  (* exogenous capacity loss (fault model), Mbps *)
  versions : int array;  (* per-edge write stamp (committed writes only) *)
  fabric : int list;  (* switch-to-switch edge ids *)
  is_fabric : bool array;
  inv_cap : float array;  (* 1/capacity for fabric edges, else 0 *)
  fabric_n : int;
  mutable util_sum : float;  (* running sum of fabric used/capacity *)
  mutable util_comp : float;  (* Kahan compensation for util_sum *)
  mutable journal : jop list;  (* newest-first, non-empty only in a txn *)
  mutable txns : jop list list;  (* savepoints: journal tails, innermost first *)
  mutable disabled_n : int;  (* how many edges are administratively down *)
  mutable disabled_epoch : int;  (* bumped on every disable/enable *)
  mutable watch_on : bool;  (* probe read/write tracking active *)
  watch_seen : Bytes.t;  (* per-edge dedup mask for the probe set *)
  mutable watch_acc : int list;  (* touched edges, newest first *)
  paths_memo : (int, Path.t list) Hashtbl.t;
      (* (src,dst) -> full candidate set; topology-pure, shared by copies *)
}

let compute_fabric topo =
  let g = topo.Topology.graph in
  let host = Array.make (Graph.node_count g) false in
  Array.iter (fun h -> host.(h) <- true) topo.Topology.hosts;
  Graph.fold_edges g ~init:[] ~f:(fun acc (e : Graph.edge) ->
      if host.(e.src) || host.(e.dst) then acc else e.id :: acc)
  |> List.rev

let create topo =
  let g = topo.Topology.graph in
  let n_edges = Graph.edge_count g in
  let residual = Array.init n_edges (fun id -> (Graph.edge g id).capacity) in
  let fabric = compute_fabric topo in
  let is_fabric = Array.make n_edges false in
  let inv_cap = Array.make n_edges 0.0 in
  List.iter
    (fun id ->
      is_fabric.(id) <- true;
      let cap = (Graph.edge g id).capacity in
      if cap > 0.0 then inv_cap.(id) <- 1.0 /. cap)
    fabric;
  {
    topo;
    residual;
    flows = Hashtbl.create 1024;
    on_edge = Array.init n_edges (fun _ -> Hashtbl.create 8);
    disabled = Array.make n_edges false;
    degraded = Array.make n_edges 0.0;
    versions = Array.make n_edges 0;
    fabric;
    is_fabric;
    inv_cap;
    fabric_n = List.length fabric;
    util_sum = 0.0;
    util_comp = 0.0;
    journal = [];
    txns = [];
    disabled_n = 0;
    disabled_epoch = 0;
    watch_on = false;
    watch_seen = Bytes.make n_edges '\000';
    watch_acc = [];
    paths_memo = Hashtbl.create 256;
  }

let copy t =
  if t.txns <> [] then invalid_arg "Net_state.copy: open transaction";
  Nu_obs.Counters.incr Nu_obs.Counters.State_copies;
  {
    topo = t.topo;
    residual = Array.copy t.residual;
    flows = Hashtbl.copy t.flows;
    on_edge = Array.map Hashtbl.copy t.on_edge;
    disabled = Array.copy t.disabled;
    degraded = Array.copy t.degraded;
    versions = Array.copy t.versions;
    fabric = t.fabric;
    is_fabric = t.is_fabric;
    inv_cap = t.inv_cap;
    fabric_n = t.fabric_n;
    util_sum = t.util_sum;
    util_comp = t.util_comp;
    journal = [];
    txns = [];
    disabled_n = t.disabled_n;
    disabled_epoch = t.disabled_epoch;
    watch_on = false;
    watch_seen = Bytes.make (Array.length t.residual) '\000';
    watch_acc = [];
    paths_memo = t.paths_memo;
  }

let topology t = t.topo
let graph t = t.topo.Topology.graph

(* ------------------------------------------------------------------ *)
(* Checkpoint freeze/thaw. The frozen form captures every piece of
   state that can influence a future decision *bit-exactly*: residuals
   and the Kahan pair are copied verbatim rather than recomputed from
   the placements, because floating-point accumulation is
   order-sensitive and a recomputed residual could differ from the live
   one in its low bits — enough to flip a feasibility comparison and
   break digest-equality of restored runs. *)

type frozen = {
  fz_flows : placed list;  (* sorted by flow id *)
  fz_residual : float array;
  fz_degraded : float array;
  fz_disabled : bool array;
  fz_versions : int array;
  fz_disabled_epoch : int;
  fz_util_sum : float;
  fz_util_comp : float;
}

let freeze t =
  if t.txns <> [] then invalid_arg "Net_state.freeze: open transaction";
  let flows =
    Hashtbl.fold (fun _ placed acc -> placed :: acc) t.flows []
    |> List.sort (fun a b ->
           Int.compare a.record.Flow_record.id b.record.Flow_record.id)
  in
  {
    fz_flows = flows;
    fz_residual = Array.copy t.residual;
    fz_degraded = Array.copy t.degraded;
    fz_disabled = Array.copy t.disabled;
    fz_versions = Array.copy t.versions;
    fz_disabled_epoch = t.disabled_epoch;
    fz_util_sum = t.util_sum;
    fz_util_comp = t.util_comp;
  }

let thaw topo fz =
  let t = create topo in
  let n_edges = Array.length t.residual in
  if
    Array.length fz.fz_residual <> n_edges
    || Array.length fz.fz_degraded <> n_edges
    || Array.length fz.fz_disabled <> n_edges
    || Array.length fz.fz_versions <> n_edges
  then invalid_arg "Net_state.thaw: frozen state does not match the topology";
  Array.blit fz.fz_residual 0 t.residual 0 n_edges;
  Array.blit fz.fz_degraded 0 t.degraded 0 n_edges;
  Array.blit fz.fz_disabled 0 t.disabled 0 n_edges;
  Array.blit fz.fz_versions 0 t.versions 0 n_edges;
  let disabled_n = ref 0 in
  Array.iter (fun d -> if d then incr disabled_n) t.disabled;
  t.disabled_n <- !disabled_n;
  t.disabled_epoch <- fz.fz_disabled_epoch;
  t.util_sum <- fz.fz_util_sum;
  t.util_comp <- fz.fz_util_comp;
  List.iter
    (fun placed ->
      Hashtbl.replace t.flows placed.record.Flow_record.id placed;
      List.iter
        (fun (e : Graph.edge) ->
          Hashtbl.replace t.on_edge.(e.id) placed.record.Flow_record.id ())
        (Path.edges placed.path))
    fz.fz_flows;
  t

(* ------------------------------------------------------------------ *)
(* Probe read-set tracking. A bytes mask dedups membership in O(1) with
   no allocation on the hot path — probes touch edges millions of times
   per run, so a hashtable here dominated the tracking cost. Disabled-
   flag reads are deliberately *not* tracked per edge: [disabled_epoch]
   stands in for all of them (see {!candidate_paths}). *)

let[@inline] touch t edge_id =
  if t.watch_on && Bytes.unsafe_get t.watch_seen edge_id = '\000' then begin
    Bytes.unsafe_set t.watch_seen edge_id '\001';
    t.watch_acc <- edge_id :: t.watch_acc
  end

let start_probe t =
  if t.watch_on then invalid_arg "Net_state.start_probe: probe already active";
  t.watch_on <- true

let stop_probe t =
  if not t.watch_on then invalid_arg "Net_state.stop_probe: no active probe";
  t.watch_on <- false;
  let acc = t.watch_acc in
  t.watch_acc <- [];
  List.iter (fun e -> Bytes.unsafe_set t.watch_seen e '\000') acc;
  List.sort compare acc

(* ------------------------------------------------------------------ *)
(* Transaction journal. *)

let[@inline] journal_active t = t.txns <> []

let in_txn t = journal_active t
let txn_depth t = List.length t.txns
let disabled_epoch t = t.disabled_epoch
let edge_version t id =
  if id < 0 || id >= Array.length t.versions then
    invalid_arg "Net_state.edge_version: edge id";
  t.versions.(id)

(* Kahan-compensated accumulation keeps the running fabric-utilisation
   sum accurate across millions of occupy/release pairs. *)
let[@inline] kadd t x =
  let y = x -. t.util_comp in
  let s = t.util_sum +. y in
  t.util_comp <- (s -. t.util_sum) -. y;
  t.util_sum <- s

(* Every residual change funnels through here: journaling, version
   stamping (deferred to commit while inside a transaction), probe
   tracking and the incremental utilisation sum. *)
let[@inline] apply_residual t e delta =
  touch t e;
  if journal_active t then t.journal <- Jresidual (e, delta) :: t.journal
  else t.versions.(e) <- t.versions.(e) + 1;
  t.residual.(e) <- t.residual.(e) +. delta;
  (* used = capacity - residual, so utilisation moves opposite to the
     residual delta. *)
  if t.is_fabric.(e) then kadd t (-.(delta *. t.inv_cap.(e)))

let[@inline] on_edge_put t e fid =
  let tbl = t.on_edge.(e) in
  if journal_active t then
    t.journal <- Jon_edge_put (e, fid, Hashtbl.mem tbl fid) :: t.journal;
  Hashtbl.replace tbl fid ()

let[@inline] on_edge_del t e fid =
  let tbl = t.on_edge.(e) in
  if journal_active t then
    t.journal <- Jon_edge_del (e, fid, Hashtbl.mem tbl fid) :: t.journal;
  Hashtbl.remove tbl fid

let[@inline] flow_put t id p =
  if journal_active t then
    t.journal <- Jflow_put (id, Hashtbl.find_opt t.flows id) :: t.journal;
  Hashtbl.replace t.flows id p

let[@inline] flow_del t id p =
  if journal_active t then t.journal <- Jflow_del (id, p) :: t.journal;
  Hashtbl.remove t.flows id

let undo t = function
  | Jresidual (e, delta) ->
      t.residual.(e) <- t.residual.(e) -. delta;
      if t.is_fabric.(e) then kadd t (delta *. t.inv_cap.(e))
  | Jflow_put (id, prev) -> (
      match prev with
      | None -> Hashtbl.remove t.flows id
      | Some p -> Hashtbl.replace t.flows id p)
  | Jflow_del (id, p) -> Hashtbl.replace t.flows id p
  | Jon_edge_put (e, fid, existed) ->
      if not existed then Hashtbl.remove t.on_edge.(e) fid
  | Jon_edge_del (e, fid, existed) ->
      if existed then Hashtbl.replace t.on_edge.(e) fid ()
  | Jdisabled (e, prev) ->
      t.disabled.(e) <- prev;
      t.disabled_n <- t.disabled_n + (if prev then 1 else -1)
  | Jdegraded (e, delta) -> t.degraded.(e) <- t.degraded.(e) -. delta

let begin_txn t = t.txns <- t.journal :: t.txns

let rollback t =
  match t.txns with
  | [] -> invalid_arg "Net_state.rollback: no open transaction"
  | mark :: rest ->
      Nu_obs.Counters.incr Nu_obs.Counters.Txn_rollbacks;
      let rec undo_to j =
        if j != mark then
          match j with
          | op :: tl ->
              undo t op;
              undo_to tl
          | [] -> assert false (* mark is always a suffix of the journal *)
      in
      undo_to t.journal;
      t.journal <- mark;
      t.txns <- rest

let commit t =
  match t.txns with
  | [] -> invalid_arg "Net_state.commit: no open transaction"
  | _ :: rest ->
      t.txns <- rest;
      if rest = [] then begin
        (* Outermost commit: the journaled writes become permanent, so
           stamp every edge they touched. Inner commits just merge into
           the enclosing transaction. *)
        Nu_obs.Counters.incr Nu_obs.Counters.Txn_commits;
        List.iter
          (fun op ->
            match op with
            | Jresidual (e, _) | Jdisabled (e, _) ->
                t.versions.(e) <- t.versions.(e) + 1
            (* Jdegraded rides on its paired Jresidual for stamping. *)
            | Jdegraded _ | Jflow_put _ | Jflow_del _ | Jon_edge_put _
            | Jon_edge_del _ -> ())
          t.journal;
        t.journal <- []
      end

(* ------------------------------------------------------------------ *)
(* Capacity accounting. *)

let residual t edge_id =
  if edge_id < 0 || edge_id >= Array.length t.residual then
    invalid_arg "Net_state.residual: edge id";
  touch t edge_id;
  t.residual.(edge_id)

let used t edge_id = (Graph.edge (graph t) edge_id).capacity -. residual t edge_id

let edge_utilization t edge_id =
  let cap = (Graph.edge (graph t) edge_id).capacity in
  if cap <= 0.0 then 0.0 else used t edge_id /. cap

let mean_utilization ?edges t =
  match edges with
  | Some [] -> 0.0
  | Some ids ->
      let sum = List.fold_left (fun acc id -> acc +. edge_utilization t id) 0.0 ids in
      sum /. float_of_int (List.length ids)
  | None ->
      let n = Graph.edge_count (graph t) in
      if n = 0 then 0.0
      else begin
        let sum = ref 0.0 in
        for id = 0 to n - 1 do
          sum := !sum +. edge_utilization t id
        done;
        !sum /. float_of_int n
      end

let max_utilization t =
  let m = ref 0.0 in
  for id = 0 to Graph.edge_count (graph t) - 1 do
    m := max !m (edge_utilization t id)
  done;
  !m

let check_edge_id t id name =
  if id < 0 || id >= Array.length t.disabled then
    invalid_arg ("Net_state." ^ name ^ ": edge id")

let set_disabled t id v =
  if t.disabled.(id) <> v then begin
    if journal_active t then
      t.journal <- Jdisabled (id, t.disabled.(id)) :: t.journal
    else t.versions.(id) <- t.versions.(id) + 1;
    (* The epoch stays bumped even if the write is rolled back — a
       spurious cache invalidation at worst, never a stale hit. *)
    t.disabled_epoch <- t.disabled_epoch + 1;
    t.disabled_n <- t.disabled_n + (if v then 1 else -1);
    t.disabled.(id) <- v
  end

let disable_edge t id =
  check_edge_id t id "disable_edge";
  set_disabled t id true

let enable_edge t id =
  check_edge_id t id "enable_edge";
  set_disabled t id false

let edge_disabled t id =
  check_edge_id t id "edge_disabled";
  t.disabled.(id)

(* Exogenous capacity loss (the fault model's partial-degradation
   events). The loss is expressed as a residual delta, so feasibility
   checks and the incremental utilisation sum pick it up for free; the
   [degraded] ledger keeps [invariants_ok] able to reconstruct residuals
   and lets {!restore_edge_capacity} undo the loss exactly. The residual
   may go negative when placed flows already exceed the surviving
   capacity — the engine's fault handler evacuates flows until it is
   non-negative again. *)
let degrade_edge t id ~lost_mbps =
  check_edge_id t id "degrade_edge";
  if lost_mbps < 0.0 then invalid_arg "Net_state.degrade_edge: negative loss";
  if lost_mbps > 0.0 then begin
    apply_residual t id (-.lost_mbps);
    if journal_active t then t.journal <- Jdegraded (id, lost_mbps) :: t.journal;
    t.degraded.(id) <- t.degraded.(id) +. lost_mbps
  end

let restore_edge_capacity t id =
  check_edge_id t id "restore_edge_capacity";
  let lost = t.degraded.(id) in
  if lost > 0.0 then begin
    apply_residual t id lost;
    if journal_active t then t.journal <- Jdegraded (id, -.lost) :: t.journal;
    t.degraded.(id) <- 0.0
  end

let degraded_mbps t id =
  check_edge_id t id "degraded_mbps";
  t.degraded.(id)

let fabric_edges t = t.fabric

let mean_fabric_utilization t =
  (* Maintained incrementally in occupy/release: O(1), where the fold
     over fabric edge ids was O(edges) per call. *)
  if t.fabric_n = 0 then 0.0
  else
    let v = t.util_sum /. float_of_int t.fabric_n in
    if v < 0.0 then 0.0 else v

let flow t id =
  match Hashtbl.find_opt t.flows id with
  | None -> None
  | Some p as r ->
      (* A probe that looked a flow up depends on its placement; its
         path's edges stand in for it in the read set (any reroute or
         removal of the flow re-stamps them). *)
      if t.watch_on then
        List.iter (fun (e : Graph.edge) -> touch t e.id) (Path.edges p.path);
      r

let flow_count t = Hashtbl.length t.flows

let is_placed t id =
  if t.watch_on then flow t id <> None else Hashtbl.mem t.flows id

let iter_flows t f = Hashtbl.iter (fun _ placed -> f placed) t.flows

let flows_on_edge t edge_id =
  if edge_id < 0 || edge_id >= Array.length t.on_edge then
    invalid_arg "Net_state.flows_on_edge: edge id";
  touch t edge_id;
  (* One fold resolving placements directly, then one sort — the id list
     detour (build, sort, re-look-up) doubled the hashtable traffic in
     Migration.clear_path's inner loop. *)
  let ps =
    Hashtbl.fold
      (fun id () acc -> Hashtbl.find t.flows id :: acc)
      t.on_edge.(edge_id) []
  in
  List.sort
    (fun a b -> Int.compare a.record.Flow_record.id b.record.Flow_record.id)
    ps

let flows_through_node t v =
  let acc = ref [] in
  Hashtbl.iter
    (fun id placed -> if Path.mentions_node placed.path v then acc := id :: !acc)
    t.flows;
  List.map (fun id -> Hashtbl.find t.flows id) (List.sort compare !acc)

let endpoints t (record : Flow_record.t) =
  let hosts = t.topo.Topology.hosts in
  let n = Array.length hosts in
  if record.src < 0 || record.src >= n || record.dst < 0 || record.dst >= n
  then invalid_arg "Net_state.endpoints: host index out of range";
  (hosts.(record.src), hosts.(record.dst))

let path_enabled t path =
  List.for_all (fun (e : Graph.edge) -> not t.disabled.(e.id)) (Path.edges path)

let candidate_paths t record =
  Nu_obs.Counters.incr Nu_obs.Counters.Path_enumerations;
  let src, dst = endpoints t record in
  let key = (src * Graph.node_count (graph t)) + dst in
  let all =
    (* The unfiltered candidate set is a pure function of the topology;
       memoise it so repeated probes skip the path re-construction. *)
    match Hashtbl.find_opt t.paths_memo key with
    | Some ps -> ps
    | None ->
        let ps = t.topo.Topology.candidate_paths ~src ~dst in
        Hashtbl.add t.paths_memo key ps;
        ps
  in
  (* With no edge down — the overwhelmingly common case — the filter is
     the identity; skip it. Probes need no per-edge record of the
     disabled reads either way: any disable/enable bumps
     [disabled_epoch], which the estimate cache checks wholesale. *)
  if t.disabled_n = 0 then all else List.filter (path_enabled t) all

let path_feasible t path ~demand =
  List.for_all
    (fun (e : Graph.edge) ->
      touch t e.id;
      (not t.disabled.(e.id)) && t.residual.(e.id) >= demand)
    (Path.edges path)

let congested_links t path ~demand =
  List.filter
    (fun (e : Graph.edge) ->
      touch t e.id;
      t.residual.(e.id) < demand)
    (Path.edges path)

let capacity_gap t (e : Graph.edge) ~demand =
  touch t e.id;
  demand -. t.residual.(e.id)

type place_error = Duplicate_flow | Congested of Graph.edge list

let occupy t placed =
  let demand = Flow_record.demand_mbps placed.record in
  List.iter
    (fun (e : Graph.edge) ->
      apply_residual t e.id (-.demand);
      on_edge_put t e.id placed.record.id)
    (Path.edges placed.path)

let release t placed =
  let demand = Flow_record.demand_mbps placed.record in
  List.iter
    (fun (e : Graph.edge) ->
      apply_residual t e.id demand;
      on_edge_del t e.id placed.record.id)
    (Path.edges placed.path)

let place t record path =
  if Hashtbl.mem t.flows record.Flow_record.id then Error Duplicate_flow
  else begin
    let src, dst = endpoints t record in
    if Path.src path <> src || Path.dst path <> dst then
      invalid_arg "Net_state.place: path does not connect the flow endpoints";
    let demand = Flow_record.demand_mbps record in
    let dead =
      List.filter (fun (e : Graph.edge) -> t.disabled.(e.id)) (Path.edges path)
    in
    match dead @ congested_links t path ~demand with
    | _ :: _ as blocked -> Error (Congested blocked)
    | [] ->
        let placed = { record; path } in
        flow_put t record.id placed;
        occupy t placed;
        Ok ()
  end

let remove t id =
  match Hashtbl.find_opt t.flows id with
  | None -> Error `Not_found
  | Some placed ->
      flow_del t id placed;
      release t placed;
      Ok placed

let reroute ?(admit_disabled = false) t id new_path =
  match Hashtbl.find_opt t.flows id with
  | None -> invalid_arg "Net_state.reroute: flow not placed"
  | Some placed ->
      (* Judge feasibility with the flow's own usage released — computed
         arithmetically (residual +. demand on edges the old path shares
         with the new one) rather than by physically releasing and
         restoring the placement, so a rejected attempt costs no journal
         or flow-table traffic. The additions match what release used to
         apply, keeping the comparisons bit-identical. *)
      let demand = Flow_record.demand_mbps placed.record in
      let dead =
        if admit_disabled then []
        else
          List.filter
            (fun (e : Graph.edge) -> t.disabled.(e.id))
            (Path.edges new_path)
      in
      let congested =
        List.filter
          (fun (e : Graph.edge) ->
            touch t e.id;
            let avail =
              if Path.mentions_edge placed.path e.id then
                t.residual.(e.id) +. demand
              else t.residual.(e.id)
            in
            avail < demand)
          (Path.edges new_path)
      in
      (match dead @ congested with
      | _ :: _ as blocked -> Error (Congested blocked)
      | [] ->
          let src, dst = endpoints t placed.record in
          if Path.src new_path <> src || Path.dst new_path <> dst then
            invalid_arg "Net_state.reroute: path does not connect endpoints"
          else begin
            flow_del t id placed;
            release t placed;
            let placed' = { placed with path = new_path } in
            flow_put t id placed';
            occupy t placed';
            Ok placed.path
          end)

let invariants_ok t =
  let g = graph t in
  let expected =
    Array.init (Graph.edge_count g) (fun id ->
        (Graph.edge g id).capacity -. t.degraded.(id))
  in
  let err = ref None in
  Hashtbl.iter
    (fun id placed ->
      if placed.record.Flow_record.id <> id && !err = None then
        err := Some (Printf.sprintf "flow %d stored under wrong key" id);
      let demand = Flow_record.demand_mbps placed.record in
      List.iter
        (fun (e : Graph.edge) ->
          expected.(e.id) <- expected.(e.id) -. demand;
          if not (Hashtbl.mem t.on_edge.(e.id) id) && !err = None then
            err := Some (Printf.sprintf "flow %d missing from edge %d" id e.id))
        (Path.edges placed.path))
    t.flows;
  Array.iteri
    (fun id expect ->
      if !err = None then begin
        if abs_float (expect -. t.residual.(id)) > 1e-6 then
          err :=
            Some
              (Printf.sprintf "edge %d residual %.6f, expected %.6f" id
                 t.residual.(id) expect);
        if expect < -1e-6 then
          err := Some (Printf.sprintf "edge %d oversubscribed" id)
      end)
    expected;
  (* Every on-edge entry must refer to a placed flow crossing that edge. *)
  Array.iteri
    (fun edge_id set ->
      Hashtbl.iter
        (fun fid () ->
          if !err = None then
            match Hashtbl.find_opt t.flows fid with
            | None ->
                err := Some (Printf.sprintf "edge %d lists ghost flow %d" edge_id fid)
            | Some placed ->
                if not (Path.mentions_edge placed.path edge_id) then
                  err :=
                    Some
                      (Printf.sprintf "edge %d lists flow %d not crossing it"
                         edge_id fid))
        set)
    t.on_edge;
  (* The incremental fabric-utilisation sum must track a fresh fold. *)
  (if !err = None && t.fabric_n > 0 then begin
     let folded =
       List.fold_left
         (fun acc id ->
           let cap = (Graph.edge g id).capacity in
           if cap <= 0.0 then acc
           else acc +. ((cap -. t.residual.(id)) /. cap))
         0.0 t.fabric
     in
     if abs_float (folded -. t.util_sum) > 1e-6 then
       err :=
         Some
           (Printf.sprintf "fabric util sum %.9f, expected %.9f" t.util_sum
              folded)
   end);
  (if !err = None && t.txns <> [] then
     err := Some "transaction left open");
  match !err with Some msg -> Error msg | None -> Ok ()

let pp ppf t =
  Format.fprintf ppf "net[%s: %d flows, mean util %.1f%%, max util %.1f%%]"
    t.topo.Topology.name (flow_count t)
    (100.0 *. mean_utilization t)
    (100.0 *. max_utilization t)
