(** Background-traffic fill (paper §V-A).

    "We inject a large amount of traffic into the Fat-Tree datacenter as
    background traffic, so that the network utilization grows up to
    70%." The fill places generator-supplied flows until the utilisation
    probe reaches the target. Because first-fit packing stalls when only
    large flows remain, {!fill} retries with geometrically shrunk flow
    demands (the [scale] argument to [make_flow]) — mirroring how a real
    trace's mice can still be admitted once elephants no longer fit. *)

type report = {
  placed : int;  (** Flows successfully placed. *)
  rejected : int;  (** Placement attempts that found no feasible path. *)
  achieved_utilization : float;  (** Probe value at the end of the fill. *)
  placed_ids : int list;  (** Ids of the placed flows, placement order. *)
}

val fill :
  ?policy:Routing.policy ->
  ?rng:Prng.t ->
  ?max_consecutive_failures:int ->
  ?min_scale:float ->
  ?utilization:(Net_state.t -> float) ->
  ?accept:(Net_state.t -> Flow_record.t -> Path.t -> bool) ->
  Net_state.t ->
  target:float ->
  make_flow:(id:int -> scale:float -> Flow_record.t) ->
  first_id:int ->
  report
(** [fill net ~target ~make_flow ~first_id] places flows
    [make_flow ~id ~scale] for ids from [first_id] upward until
    [utilization net >= target] (default probe: {!Net_state.mean_utilization}
    over every edge). After [max_consecutive_failures] (default 50)
    rejected attempts in a row, [scale] halves; the fill gives up when
    [scale < min_scale] (default 1/64). [target] must be in [0, 1).
    [accept] (default: always) vetoes individual placements — e.g. to keep
    host access links below a cap so that update-event flows contend on
    the fabric, not on unfixable access links. *)

val yahoo_flow_maker :
  ?params:Yahoo_trace.params ->
  Prng.t ->
  host_count:int ->
  id:int ->
  scale:float ->
  Flow_record.t
(** Convenience [make_flow] drawing Yahoo!-style flows with demand scaled
    by [scale] (duration preserved, size scaled accordingly). *)

val benson_flow_maker :
  ?params:Benson_trace.params ->
  Prng.t ->
  host_count:int ->
  id:int ->
  scale:float ->
  Flow_record.t
(** Same, with Benson-style ("random trace") flows. *)
