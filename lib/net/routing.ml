type policy = First_fit | Widest | Least_loaded | Random_fit

let policy_name = function
  | First_fit -> "first-fit"
  | Widest -> "widest"
  | Least_loaded -> "least-loaded"
  | Random_fit -> "random-fit"

let all_policies = [ First_fit; Widest; Least_loaded; Random_fit ]

let bottleneck_residual net path =
  Path.bottleneck path ~capacity_of:(fun e -> Net_state.residual net e.Graph.id)

let peak_utilization net path =
  List.fold_left
    (fun acc (e : Graph.edge) -> max acc (Net_state.edge_utilization net e.id))
    0.0 (Path.edges path)

let select_from ?rng ?(policy = First_fit) net ~demand candidates =
  match policy with
  | First_fit ->
      (* First-fit needs only the first feasible candidate — don't pay
         feasibility checks for the rest of the list. Picks the same
         path the filter-then-head formulation did. *)
      List.find_opt (fun p -> Net_state.path_feasible net p ~demand) candidates
  | _ -> (
  let feasible =
    List.filter (fun p -> Net_state.path_feasible net p ~demand) candidates
  in
  match feasible with
  | [] -> None
  | first :: _ -> (
      match policy with
      | First_fit -> assert false
      | Widest ->
          let best =
            List.fold_left
              (fun (bp, bw) p ->
                let w = bottleneck_residual net p in
                if w > bw then (p, w) else (bp, bw))
              (first, bottleneck_residual net first)
              feasible
          in
          Some (fst best)
      | Least_loaded ->
          let best =
            List.fold_left
              (fun (bp, bu) p ->
                let u = peak_utilization net p in
                if u < bu then (p, u) else (bp, bu))
              (first, peak_utilization net first)
              feasible
          in
          Some (fst best)
      | Random_fit -> (
          match rng with
          | None -> invalid_arg "Routing.select_from: Random_fit needs an rng"
          | Some rng -> Some (Prng.choose rng (Array.of_list feasible)))))

let select ?rng ?policy net record =
  let demand = Flow_record.demand_mbps record in
  select_from ?rng ?policy net ~demand (Net_state.candidate_paths net record)

(* SplitMix64 finalizer — same mixing family as Ip_map, applied to the
   flow identity so the desired path is stable across replans. *)
let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let ecmp_index (r : Flow_record.t) ~n =
  if n < 1 then invalid_arg "Routing.ecmp_index: n";
  let key =
    Int64.of_int ((r.id * 0x1000003) lxor (r.src * 8191) lxor (r.dst * 131))
  in
  let h = Int64.to_int (Int64.shift_right_logical (mix64 key) 2) in
  h mod n

let nth_candidate candidates ~ecmp =
  match candidates with
  | [] -> None
  | _ ->
      let n = List.length candidates in
      List.nth_opt candidates (ecmp mod n)

let desired_path net record =
  let candidates = Net_state.candidate_paths net record in
  nth_candidate candidates
    ~ecmp:(ecmp_index record ~n:(max 1 (List.length candidates)))
