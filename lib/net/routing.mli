(** Path-selection policies over a candidate set P(f).

    The planner needs two decisions repeatedly: which path to try for a
    new flow, and which path to move a migrated flow to. Both are "pick
    from P(f) subject to feasibility" problems; the policy controls the
    tie-breaking and therefore load spread. First-fit is the paper's
    implicit default (desired path first); the alternatives exist for the
    ablation benches. *)

type policy =
  | First_fit  (** First feasible candidate in ranked order. *)
  | Widest  (** Feasible candidate with maximum bottleneck residual. *)
  | Least_loaded  (** Feasible candidate with minimum peak utilisation. *)
  | Random_fit  (** Uniformly random feasible candidate (needs [rng]). *)

val policy_name : policy -> string

val all_policies : policy list

val select :
  ?rng:Prng.t ->
  ?policy:policy ->
  Net_state.t ->
  Flow_record.t ->
  Path.t option
(** Choose a feasible path for the record among
    {!Net_state.candidate_paths}. [None] when no candidate is feasible.
    Default policy [First_fit]. [Random_fit] raises [Invalid_argument]
    without an [rng]. *)

val select_from :
  ?rng:Prng.t ->
  ?policy:policy ->
  Net_state.t ->
  demand:float ->
  Path.t list ->
  Path.t option
(** Same choice rule over an explicit candidate list (used when the
    candidate set is restricted, e.g. migration targets that must avoid
    the congested links). *)

val bottleneck_residual : Net_state.t -> Path.t -> float
(** Minimum residual along the path — the [Widest] ranking key. *)

val peak_utilization : Net_state.t -> Path.t -> float
(** Maximum edge utilisation along the path — the [Least_loaded] ranking
    key. *)

val desired_path : Net_state.t -> Flow_record.t -> Path.t option
(** The flow's *desired* path regardless of feasibility: the candidate
    picked by {!ecmp_index} over the flow's 5-tuple stand-in
    (id, src, dst) — what a hash-based ECMP dataplane would assign, and
    the path the paper checks for congestion first. [None] only when the
    candidate set is empty. *)

val ecmp_index : Flow_record.t -> n:int -> int
(** Deterministic hash of (id, src, dst) into [0, n). Requires [n >= 1]. *)

val nth_candidate : Path.t list -> ecmp:int -> Path.t option
(** Pick a list element by ECMP index (identity ordering); [None] on an
    empty list. *)
