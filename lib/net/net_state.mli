(** Mutable network state: flow placements and residual link bandwidth.

    This is the object every paper concept is defined against: the
    congestion-free invariants of §III-A (each placed flow is unsplit,
    consumes its demand d^f on every edge of its single path p, and every
    link keeps c_ij >= 0), the congested-link set E^c of Definition 1,
    and the what-if copies the planner's cost estimation runs on.

    All mutating operations either succeed atomically or leave the state
    unchanged and report why — no partial placements. *)

type t

type placed = { record : Flow_record.t; path : Path.t }
(** A flow pinned to its path. The demand on every edge of [path] is
    [Flow_record.demand_mbps record]. *)

val create : Topology.t -> t
(** Empty network over a topology: all residuals at link capacity. *)

val copy : t -> t
(** Deep copy; the copy can be mutated freely (what-if planning). *)

val topology : t -> Topology.t
val graph : t -> Graph.t

(** {2 Capacity accounting} *)

val residual : t -> int -> float
(** Residual bandwidth c_ij of an edge id, Mbps. *)

val used : t -> int -> float
(** [capacity - residual] of an edge id. *)

val edge_utilization : t -> int -> float
(** [used / capacity], in [0, 1]. Zero-capacity edges report 0. *)

val mean_utilization : ?edges:int list -> t -> float
(** Mean utilisation over the given edge ids (default: every edge) —
    the paper's "network utilization". *)

val max_utilization : t -> float

(** {2 Link administrative state} *)

val disable_edge : t -> int -> unit
(** Mark an edge id failed/unusable: it disappears from
    {!candidate_paths}, fails {!path_feasible}, and rejects {!place} /
    {!reroute}. Flows already crossing it stay placed (their traffic is
    being lost until an update reroutes them) — build a
    link-failure update event to evacuate them. Idempotent. *)

val enable_edge : t -> int -> unit
(** Undo {!disable_edge}. Idempotent. *)

val edge_disabled : t -> int -> bool

val fabric_edges : t -> int list
(** Edge ids whose two endpoints are both switches — the aggregation
    fabric. The paper's "network utilization" is measured here: host
    access links are capacity-bound by a single server and are kept out
    of the utilisation probe (see DESIGN.md §3). Computed once per state
    family and cached. *)

val mean_fabric_utilization : t -> float
(** [mean_utilization ~edges:(fabric_edges t) t]. *)

(** {2 Flow queries} *)

val flow : t -> int -> placed option
(** Placed flow by flow id. *)

val flow_count : t -> int
val is_placed : t -> int -> bool

val iter_flows : t -> (placed -> unit) -> unit
(** Iteration order is unspecified; use {!flows_on_edge} for
    deterministic per-link lists. *)

val flows_on_edge : t -> int -> placed list
(** Flows whose path crosses the edge id, sorted by flow id. *)

val flows_through_node : t -> int -> placed list
(** Flows whose path visits the node (as switch or endpoint), sorted by
    flow id. Used to build switch-upgrade update events. *)

val endpoints : t -> Flow_record.t -> int * int
(** Graph node ids of a record's (src, dst) host indices. Raises
    [Invalid_argument] if an index is out of range. *)

val candidate_paths : t -> Flow_record.t -> Path.t list
(** The topology's ranked candidate set P(f) for the record's endpoints,
    minus any path crossing a disabled edge. *)

(** {2 Feasibility and congestion} *)

val path_feasible : t -> Path.t -> demand:float -> bool
(** True when every edge of the path is enabled and has
    residual >= demand. *)

val congested_links : t -> Path.t -> demand:float -> Graph.edge list
(** E^c: edges of the path whose residual is strictly below [demand], in
    path order (Definition 1). *)

val capacity_gap : t -> Graph.edge -> demand:float -> float
(** [demand - residual] of an edge — how much bandwidth migrations must
    free on it. Non-positive means the edge already fits the demand. *)

(** {2 Mutations} *)

type place_error =
  | Duplicate_flow  (** A flow with this id is already placed. *)
  | Congested of Graph.edge list
      (** The path lacks capacity on these edges. *)

val place : t -> Flow_record.t -> Path.t -> (unit, place_error) result
(** Atomically place the flow on the path (checks the endpoints match the
    path and capacity suffices everywhere). *)

val remove : t -> int -> (placed, [ `Not_found ]) result
(** Remove a flow by id, restoring its bandwidth. *)

val reroute :
  ?admit_disabled:bool -> t -> int -> Path.t -> (Path.t, place_error) result
(** [reroute t id new_path] migrates flow [id]: feasibility of
    [new_path] is judged with the flow's current usage already released
    (so partially-overlapping moves work). Returns the old path. Raises
    [Invalid_argument] when [id] is not placed. On error the placement is
    unchanged. [admit_disabled] (default false) skips the disabled-edge
    check — exclusively for rollback paths that must restore a placement
    that legitimately predates a link failure; capacity is still
    checked. *)

val invariants_ok : t -> (unit, string) result
(** Recomputes every residual from scratch and checks the §III-A
    congestion-free constraints; O(flows x diameter + edges). For tests
    and debugging. *)

val pp : Format.formatter -> t -> unit
(** One-line occupancy summary. *)
