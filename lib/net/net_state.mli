(** Mutable network state: flow placements and residual link bandwidth.

    This is the object every paper concept is defined against: the
    congestion-free invariants of §III-A (each placed flow is unsplit,
    consumes its demand d^f on every edge of its single path p, and every
    link keeps c_ij >= 0), the congested-link set E^c of Definition 1,
    and the what-if copies the planner's cost estimation runs on.

    All mutating operations either succeed atomically or leave the state
    unchanged and report why — no partial placements. *)

type t

type placed = { record : Flow_record.t; path : Path.t }
(** A flow pinned to its path. The demand on every edge of [path] is
    [Flow_record.demand_mbps record]. *)

val create : Topology.t -> t
(** Empty network over a topology: all residuals at link capacity. *)

val copy : t -> t
(** Deep copy; the copy can be mutated freely (what-if planning).
    Raises [Invalid_argument] while a transaction is open. Speculative
    planning should prefer {!begin_txn}/{!rollback}, which undo in
    O(touched edges) instead of cloning every per-edge table. *)

val snapshot : t -> t
(** Probe snapshot for a worker domain. Like {!copy} but: allowed while
    a transaction is open (the snapshot captures the speculative values
    a sequential probe would read, with a clean journal of its own);
    shares the candidate-path memo read-only (call {!warm_all_paths}
    on the parent first); and bumps no counters, so [Counters.diff]
    totals stay independent of the domain count. *)

val warm_all_paths : t -> unit
(** Fill the candidate-path memo for every ordered host pair, without
    counting the enumerations as planning work. Must run on the main
    domain before {!snapshot}s of this state are probed in parallel —
    after it, snapshot reads of the shared memo (and of any
    topology-internal path cache) race with no writer. *)

val topology : t -> Topology.t
val graph : t -> Graph.t

(** {2 Checkpoint freeze/thaw}

    Durable-state support for the online controller ({!Nu_serve}): a
    [frozen] value is a plain, serialisable record of everything that
    can influence a future decision. Floats (residuals, the Kahan
    utilisation pair) are captured verbatim — recomputing them from the
    placements would be order-sensitive in the low bits and break the
    bit-identical-restore guarantee. *)

type frozen = {
  fz_flows : placed list;  (** Sorted by flow id. *)
  fz_residual : float array;
  fz_degraded : float array;
  fz_disabled : bool array;
  fz_versions : int array;
  fz_disabled_epoch : int;
  fz_util_sum : float;  (** Running fabric-utilisation sum (bit-exact). *)
  fz_util_comp : float;  (** Its Kahan compensation term. *)
}

val freeze : t -> frozen
(** Snapshot the state. Raises [Invalid_argument] while a transaction is
    open (checkpoints are taken at round boundaries only). *)

val thaw : Topology.t -> frozen -> t
(** Rebuild a state over the same topology. The result behaves
    bit-identically to the frozen original under every future operation
    sequence ([invariants_ok] holds; probe/cache bookkeeping restarts
    empty). Raises [Invalid_argument] when the frozen arrays do not
    match the topology's edge count. *)

(** {2 Transactions}

    A lightweight undo journal for speculative planning: every mutation
    made while a transaction is open is recorded and can be undone with
    {!rollback} in O(operations performed) — no state copy, no
    re-planning of reroutes. Transactions nest; an inner [commit] merges
    its operations into the enclosing transaction, and only the
    outermost [commit] makes them permanent (bumping {!edge_version}
    stamps). *)

val begin_txn : t -> unit
(** Open a (possibly nested) transaction. *)

val rollback : t -> unit
(** Undo every mutation since the matching {!begin_txn}, restoring
    residuals, the flow table, per-edge occupancy and administrative
    link state exactly. Raises [Invalid_argument] with no open
    transaction. *)

val commit : t -> unit
(** Keep the mutations made since the matching {!begin_txn}. The
    outermost commit stamps every written edge (see {!edge_version}).
    Raises [Invalid_argument] with no open transaction. *)

val in_txn : t -> bool

val txn_depth : t -> int
(** Number of open transactions. *)

(** {2 Committed-mutation redo log}

    Synchronises per-domain mirrors without re-copying the state. With
    logging on, every mutation that {e survives} is recorded: writes
    outside any transaction as they happen, writes inside a transaction
    at its outermost {!commit} (rolled-back spans never appear). A
    worker holding a mirror that was bit-identical when logging started
    replays each drained batch with {!redo_apply} and stays
    bit-identical — the paved road for the probe fan-out's persistent
    lane states. *)

type redo
(** One drained batch of committed mutations, in execution order.
    Immutable; safe to share across domains (flow bindings are carried
    by pointer, and placements are immutable). *)

val redo_start : t -> unit
(** Start recording committed mutations (clears any previous log). *)

val redo_stop : t -> unit
(** Stop recording and discard the pending log. *)

val redo_active : t -> bool

val redo_drain : t -> redo
(** Detach the mutations recorded since the last drain (or
    {!redo_start}) and reset the log. May be called with transactions
    open: ops journaled by a still-open transaction are not part of the
    drain — they join the log if and when that transaction commits. *)

val redo_size : redo -> int
(** Number of ops in a drained batch. *)

val redo_apply : t -> redo -> unit
(** Replay a drained batch against a quiescent mirror (no open
    transaction, no active probe, logging off — raises
    [Invalid_argument] otherwise). Applying every batch, in drain
    order, to a mirror that was bit-identical at {!redo_start} keeps
    it bit-identical to the source at each drain point. *)

(** {2 Edge versions and probe read sets}

    Support for memoising cost estimates: [edge_version] is a per-edge
    stamp bumped every time a *committed* write lands on the edge
    (residual change or administrative flag flip; rolled-back
    speculative writes do not count). A probe bracketed by
    [start_probe]/[stop_probe] records every edge id whose state it read
    or wrote, so a cached result is exactly reusable while all recorded
    edges still carry their recorded versions. *)

val edge_version : t -> int -> int

val disabled_epoch : t -> int
(** Bumped on every {!disable_edge}/{!enable_edge} that changes a flag
    (including speculative ones later rolled back). Probes do not record
    per-edge disabled-flag reads; a cached estimate is instead valid
    only while the epoch it was stored under is unchanged — coarse, but
    administrative events are rare and the per-read bookkeeping is
    not. *)

val start_probe : t -> unit
(** Begin recording the edge read/write set. Probes do not nest; raises
    [Invalid_argument] if one is already active. *)

val stop_probe : t -> int array
(** Stop recording and return the touched edge ids as a fresh array,
    sorted ascending. Raises [Invalid_argument] without an active
    probe. *)

(** {2 Capacity accounting} *)

val residual : t -> int -> float
(** Residual bandwidth c_ij of an edge id, Mbps. *)

val used : t -> int -> float
(** [capacity - residual] of an edge id. *)

val edge_utilization : t -> int -> float
(** [used / capacity], in [0, 1]. Zero-capacity edges report 0. *)

val mean_utilization : ?edges:int list -> t -> float
(** Mean utilisation over the given edge ids (default: every edge) —
    the paper's "network utilization". *)

val max_utilization : t -> float

(** {2 Link administrative state} *)

val disable_edge : t -> int -> unit
(** Mark an edge id failed/unusable: it disappears from
    {!candidate_paths}, fails {!path_feasible}, and rejects {!place} /
    {!reroute}. Flows already crossing it stay placed (their traffic is
    being lost until an update reroutes them) — build a
    link-failure update event to evacuate them. Idempotent. *)

val enable_edge : t -> int -> unit
(** Undo {!disable_edge}. Idempotent. *)

val edge_disabled : t -> int -> bool

val degrade_edge : t -> int -> lost_mbps:float -> unit
(** Exogenously remove [lost_mbps] of an edge's capacity (the fault
    model's partial-degradation events). Cumulative; journal-aware, so a
    mid-transaction degrade rolls back exactly. The residual may go
    negative when placed flows already exceed the surviving capacity —
    callers (the fault injector) must evacuate flows until
    {!residual} is non-negative to restore the capacity invariant.
    Raises [Invalid_argument] on a negative loss. *)

val restore_edge_capacity : t -> int -> unit
(** Undo every accumulated {!degrade_edge} on the edge id. Idempotent. *)

val degraded_mbps : t -> int -> float
(** Capacity currently lost to degradation on the edge id. *)

val fabric_edges : t -> int list
(** Edge ids whose two endpoints are both switches — the aggregation
    fabric. The paper's "network utilization" is measured here: host
    access links are capacity-bound by a single server and are kept out
    of the utilisation probe (see DESIGN.md §3). Computed once per state
    family and cached. *)

val mean_fabric_utilization : t -> float
(** Mean utilisation over {!fabric_edges}, maintained incrementally by
    {!place}/{!remove}/{!reroute} (Kahan-compensated running sum), so
    the per-round churn refill loop pays O(1) per probe instead of
    O(edges). Agrees with [mean_utilization ~edges:(fabric_edges t) t]
    to floating-point accumulation accuracy (checked by
    {!invariants_ok}). *)

(** {2 Flow queries} *)

val flow : t -> int -> placed option
(** Placed flow by flow id. *)

val flow_count : t -> int
val is_placed : t -> int -> bool

val iter_flows : t -> (placed -> unit) -> unit
(** Iteration order is unspecified; use {!flows_on_edge} for
    deterministic per-link lists. *)

val flows_on_edge : t -> int -> placed list
(** Flows whose path crosses the edge id, sorted by flow id. *)

val edge_flow_count : t -> int -> int
(** Number of flows currently crossing the edge id. Does not record the
    edge in an open probe's read set (pair with {!edge_flows_blit},
    which does). *)

val edge_flows_blit :
  t -> int -> ids:int array -> dem:float array -> size:float array -> int
(** Copy the edge's flow ids with their demands (Mbps) and sizes (Mbit)
    into caller-owned scratch arrays, returning the entry count. Entry
    order is unspecified — callers must sort or break ties by flow id
    for determinism. Records the edge in an open probe's read set,
    exactly like {!flows_on_edge}. Raises [Invalid_argument] if any
    scratch array is shorter than {!edge_flow_count}. *)

val peek_flow : t -> int -> placed option
(** Current placement of a flow id without recording anything in an open
    probe's read set ({!flows_on_edge}'s resolution step, exposed for
    callers that already hold the edge read via {!edge_flows_blit}). *)

val flows_through_node : t -> int -> placed list
(** Flows whose path visits the node (as switch or endpoint), sorted by
    flow id. Used to build switch-upgrade update events. *)

val endpoints : t -> Flow_record.t -> int * int
(** Graph node ids of a record's (src, dst) host indices. Raises
    [Invalid_argument] if an index is out of range. *)

val candidate_paths : t -> Flow_record.t -> Path.t list
(** The topology's ranked candidate set P(f) for the record's endpoints,
    minus any path crossing a disabled edge. *)

(** {2 Feasibility and congestion} *)

val path_feasible : t -> Path.t -> demand:float -> bool
(** True when every edge of the path is enabled and has
    residual >= demand. *)

val congested_links : t -> Path.t -> demand:float -> Graph.edge list
(** E^c: edges of the path whose residual is strictly below [demand], in
    path order (Definition 1). *)

val capacity_gap : t -> Graph.edge -> demand:float -> float
(** [demand - residual] of an edge — how much bandwidth migrations must
    free on it. Non-positive means the edge already fits the demand. *)

(** {2 Mutations} *)

type place_error =
  | Duplicate_flow  (** A flow with this id is already placed. *)
  | Congested of Graph.edge list
      (** The path lacks capacity on these edges. *)

val place : t -> Flow_record.t -> Path.t -> (unit, place_error) result
(** Atomically place the flow on the path (checks the endpoints match the
    path and capacity suffices everywhere). *)

val remove : t -> int -> (placed, [ `Not_found ]) result
(** Remove a flow by id, restoring its bandwidth. *)

val reroute :
  ?admit_disabled:bool -> t -> int -> Path.t -> (Path.t, place_error) result
(** [reroute t id new_path] migrates flow [id]: feasibility of
    [new_path] is judged with the flow's current usage already released
    (so partially-overlapping moves work). Returns the old path. Raises
    [Invalid_argument] when [id] is not placed. On error the placement is
    unchanged. [admit_disabled] (default false) skips the disabled-edge
    check — exclusively for rollback paths that must restore a placement
    that legitimately predates a link failure; capacity is still
    checked. *)

val invariants_ok : t -> (unit, string) result
(** Recomputes every residual from scratch and checks the §III-A
    congestion-free constraints; O(flows x diameter + edges). For tests
    and debugging. *)

val pp : Format.formatter -> t -> unit
(** One-line occupancy summary. *)
