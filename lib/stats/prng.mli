(** Deterministic pseudo-random number generation.

    The whole reproduction is seed-driven: every workload, trace and
    scheduler decision derives from a [Prng.t], so experiments are exactly
    repeatable. The generator is SplitMix64 (Steele et al., OOPSLA 2014):
    fast, high quality for simulation purposes, and trivially splittable,
    which lets independent subsystems (trace generation, event generation,
    LMTF sampling) own uncorrelated streams derived from one master seed. *)

type t
(** Mutable generator state. Not thread-safe; use {!split} to hand a
    private stream to each concurrent consumer. *)

val create : int -> t
(** [create seed] makes a fresh generator from an integer seed. Equal seeds
    yield equal streams. *)

val copy : t -> t
(** [copy t] duplicates the current state; the copy evolves independently. *)

val raw_state : t -> int64
(** The generator's raw 64-bit counter — the whole state. Serialise it to
    checkpoint a stream mid-run; {!of_raw_state} resumes it exactly. *)

val of_raw_state : int64 -> t
(** Rebuild a generator from {!raw_state}. [of_raw_state (raw_state t)]
    continues [t]'s stream bit-for-bit. Unlike {!create}, the value is
    used verbatim (no seeding mix). *)

val split : t -> t
(** [split t] derives a new, statistically independent generator and
    advances [t]. Use one split per subsystem so adding draws in one place
    does not perturb another. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [0, bound-1]. [bound] must be
    positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] draws uniformly from the inclusive range [lo, hi].
    Requires [lo <= hi]. *)

val float : t -> float -> float
(** [float t bound] draws uniformly from [0, bound). *)

val float_in : t -> float -> float -> float
(** [float_in t lo hi] draws uniformly from [lo, hi). Requires [lo <= hi]. *)

val bool : t -> bool
(** Fair coin. *)

val unit_float : t -> float
(** Uniform draw in [0,1), 53-bit precision. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val sample_without_replacement : t -> int -> int -> int list
(** [sample_without_replacement t k n] draws [k] distinct indices from
    [0, n-1] (Floyd's algorithm). Returns all of [0, n-1] when [k >= n].
    Requires [k >= 0] and [n >= 0]. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. Raises [Invalid_argument] on an
    empty array. *)
