type t = { sorted : float array }

let of_samples xs =
  if Array.length xs = 0 then invalid_arg "Cdf.of_samples: empty";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  { sorted }

let size t = Array.length t.sorted

(* Index of the first element strictly greater than x, by binary search. *)
let upper_bound a x =
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if a.(mid) <= x then go (mid + 1) hi else go lo mid
  in
  go 0 (Array.length a)

let eval t x =
  float_of_int (upper_bound t.sorted x) /. float_of_int (size t)

let inverse t p =
  if p < 0.0 || p > 1.0 then invalid_arg "Cdf.inverse: p";
  let n = size t in
  let idx = int_of_float (ceil (p *. float_of_int n)) - 1 in
  let idx = if idx < 0 then 0 else if idx >= n then n - 1 else idx in
  t.sorted.(idx)

let points t =
  let n = size t in
  let acc = ref [] in
  let i = ref 0 in
  while !i < n do
    let v = t.sorted.(!i) in
    (* Skip to the last duplicate so each value appears once with its
       final cumulative probability. *)
    let j = ref !i in
    while !j + 1 < n && t.sorted.(!j + 1) = v do
      incr j
    done;
    acc := (v, float_of_int (!j + 1) /. float_of_int n) :: !acc;
    i := !j + 1
  done;
  Array.of_list (List.rev !acc)

let pp ppf t =
  let q p = inverse t p in
  Format.fprintf ppf "cdf[n=%d p10=%.4g p50=%.4g p90=%.4g p99=%.4g max=%.4g]"
    (size t) (q 0.10) (q 0.50) (q 0.90) (q 0.99) (q 1.0)
