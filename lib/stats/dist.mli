(** Random variates for the distributions the traces need.

    The Yahoo! and Benson-style traces are heavy-tailed: flow sizes follow
    a Pareto-like law (a few elephant flows carry most bytes) and durations
    and inter-arrivals are log-normal / exponential. This module provides
    the samplers plus an empirical distribution that replays an arbitrary
    CDF, which is how a recorded trace histogram would be consumed. *)

val exponential : Prng.t -> rate:float -> float
(** [exponential rng ~rate] draws from Exp(rate); mean [1/rate].
    Requires [rate > 0]. *)

val pareto : Prng.t -> shape:float -> scale:float -> float
(** [pareto rng ~shape ~scale] draws from a Pareto law with minimum value
    [scale] and tail index [shape]; heavy-tailed for [shape <= 2].
    Requires both positive. *)

val bounded_pareto : Prng.t -> shape:float -> lo:float -> hi:float -> float
(** Pareto truncated to [lo, hi] by inverse-CDF on the truncated law
    (not rejection), so the draw is O(1). Requires [0 < lo < hi]. *)

val lognormal : Prng.t -> mu:float -> sigma:float -> float
(** [lognormal rng ~mu ~sigma] draws exp(N(mu, sigma^2)). *)

val normal : Prng.t -> mu:float -> sigma:float -> float
(** Gaussian via Box–Muller (polar form). *)

val uniform : Prng.t -> lo:float -> hi:float -> float
(** Alias of {!Prng.float_in} for symmetry with the other samplers. *)

val zipf : Prng.t -> n:int -> s:float -> int
(** [zipf rng ~n ~s] draws a rank in [1, n] with probability proportional
    to [1/rank^s], by inversion on a precomputed table-free approximation
    (rejection sampling, Devroye). Requires [n >= 1] and [s >= 0]. *)

type empirical
(** Empirical distribution: replays samples according to an observed CDF. *)

val empirical_of_samples : float array -> empirical
(** Build from raw observations (copied and sorted). Raises
    [Invalid_argument] on an empty array. *)

val empirical_of_cdf : (float * float) array -> empirical
(** Build from explicit [(value, cumulative_probability)] knots, which must
    be sorted by probability and end at probability 1.0 (within 1e-9). *)

val empirical_draw : empirical -> Prng.t -> float
(** Inverse-CDF draw with linear interpolation between knots. *)

val empirical_mean : empirical -> float
(** Mean of the stored knots, weighted by probability mass. *)
