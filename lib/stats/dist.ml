let exponential rng ~rate =
  if rate <= 0.0 then invalid_arg "Dist.exponential: rate must be positive";
  let u = 1.0 -. Prng.unit_float rng in
  -.log u /. rate

let pareto rng ~shape ~scale =
  if shape <= 0.0 || scale <= 0.0 then invalid_arg "Dist.pareto";
  let u = 1.0 -. Prng.unit_float rng in
  scale /. (u ** (1.0 /. shape))

let bounded_pareto rng ~shape ~lo ~hi =
  if not (0.0 < lo && lo < hi) then invalid_arg "Dist.bounded_pareto";
  if shape <= 0.0 then invalid_arg "Dist.bounded_pareto: shape";
  (* Inverse CDF of the truncated Pareto law on [lo, hi]. *)
  let u = Prng.unit_float rng in
  let la = lo ** shape and ha = hi ** shape in
  let denom = 1.0 -. (u *. (1.0 -. (la /. ha))) in
  lo /. (denom ** (1.0 /. shape))

let normal rng ~mu ~sigma =
  (* Polar Box-Muller; rejection keeps the pair inside the unit disc. *)
  let rec draw () =
    let u = (2.0 *. Prng.unit_float rng) -. 1.0 in
    let v = (2.0 *. Prng.unit_float rng) -. 1.0 in
    let s = (u *. u) +. (v *. v) in
    if s >= 1.0 || s = 0.0 then draw ()
    else u *. sqrt (-2.0 *. log s /. s)
  in
  mu +. (sigma *. draw ())

let lognormal rng ~mu ~sigma = exp (normal rng ~mu ~sigma)

let uniform rng ~lo ~hi = Prng.float_in rng lo hi

let zipf rng ~n ~s =
  if n < 1 then invalid_arg "Dist.zipf: n must be >= 1";
  if s < 0.0 then invalid_arg "Dist.zipf: s must be >= 0";
  if n = 1 then 1
  else if s = 0.0 then Prng.int_in rng 1 n
  else begin
    (* Exact inverse-CDF draw over the harmonic weights. O(n) per call;
       the callers draw ranks over at most a few thousand hosts, so a
       table-free linear scan is simpler than Devroye rejection and
       obviously correct. *)
    let total = ref 0.0 in
    for k = 1 to n do
      total := !total +. (float_of_int k ** -.s)
    done;
    let target = Prng.unit_float rng *. !total in
    let rec scan k acc =
      if k >= n then n
      else
        let acc = acc +. (float_of_int k ** -.s) in
        if acc >= target then k else scan (k + 1) acc
    in
    scan 1 0.0
  end

type empirical = { values : float array; cum : float array }

let empirical_of_samples samples =
  let n = Array.length samples in
  if n = 0 then invalid_arg "Dist.empirical_of_samples: empty";
  let values = Array.copy samples in
  Array.sort compare values;
  let cum = Array.init n (fun i -> float_of_int (i + 1) /. float_of_int n) in
  { values; cum }

let empirical_of_cdf knots =
  let n = Array.length knots in
  if n = 0 then invalid_arg "Dist.empirical_of_cdf: empty";
  let values = Array.map fst knots and cum = Array.map snd knots in
  for i = 1 to n - 1 do
    if cum.(i) < cum.(i - 1) then
      invalid_arg "Dist.empirical_of_cdf: probabilities must be sorted"
  done;
  if abs_float (cum.(n - 1) -. 1.0) > 1e-9 then
    invalid_arg "Dist.empirical_of_cdf: CDF must end at 1.0";
  { values; cum }

let empirical_draw e rng =
  let u = Prng.unit_float rng in
  let n = Array.length e.cum in
  (* Binary search for the first knot with cum >= u. *)
  let rec search lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if e.cum.(mid) >= u then search lo mid else search (mid + 1) hi
  in
  let i = search 0 (n - 1) in
  if i = 0 then e.values.(0)
  else begin
    (* Linear interpolation between knots i-1 and i. *)
    let p0 = e.cum.(i - 1) and p1 = e.cum.(i) in
    let v0 = e.values.(i - 1) and v1 = e.values.(i) in
    if p1 -. p0 <= 0.0 then v1
    else v0 +. ((v1 -. v0) *. ((u -. p0) /. (p1 -. p0)))
  end

let empirical_mean e =
  let n = Array.length e.values in
  let total = ref 0.0 in
  for i = 0 to n - 1 do
    let p_prev = if i = 0 then 0.0 else e.cum.(i - 1) in
    total := !total +. (e.values.(i) *. (e.cum.(i) -. p_prev))
  done;
  !total
