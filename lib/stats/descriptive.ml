let check_nonempty name xs =
  if Array.length xs = 0 then invalid_arg ("Descriptive." ^ name ^ ": empty")

let total xs =
  (* Kahan summation keeps the large ECT sums accurate when mixing
     microsecond plan times with multi-second transfer times. *)
  let sum = ref 0.0 and comp = ref 0.0 in
  Array.iter
    (fun x ->
      let y = x -. !comp in
      let t = !sum +. y in
      comp := (t -. !sum) -. y;
      sum := t)
    xs;
  !sum

let mean xs =
  check_nonempty "mean" xs;
  total xs /. float_of_int (Array.length xs)

let variance xs =
  check_nonempty "variance" xs;
  let m = mean xs in
  let acc = Array.map (fun x -> (x -. m) *. (x -. m)) xs in
  total acc /. float_of_int (Array.length xs)

let stddev xs = sqrt (variance xs)

let min_value xs =
  check_nonempty "min_value" xs;
  Array.fold_left min xs.(0) xs

let max_value xs =
  check_nonempty "max_value" xs;
  Array.fold_left max xs.(0) xs

let percentile xs p =
  check_nonempty "percentile" xs;
  if p < 0.0 || p > 100.0 then invalid_arg "Descriptive.percentile: p";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  if n = 1 then sorted.(0)
  else begin
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) in
    let hi = int_of_float (ceil rank) in
    if lo = hi then sorted.(lo)
    else
      let frac = rank -. float_of_int lo in
      sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))
  end

let median xs = percentile xs 50.0

let geometric_mean xs =
  check_nonempty "geometric_mean" xs;
  let logs =
    Array.map
      (fun x ->
        if x <= 0.0 then
          invalid_arg "Descriptive.geometric_mean: non-positive sample"
        else log x)
      xs
  in
  exp (total logs /. float_of_int (Array.length xs))

let normalize_by_max xs =
  check_nonempty "normalize_by_max" xs;
  let mx = max_value xs in
  if mx <= 0.0 then invalid_arg "Descriptive.normalize_by_max: max <= 0";
  Array.map (fun x -> x /. mx) xs

let reduction_vs ~baseline v =
  if baseline <= 0.0 then invalid_arg "Descriptive.reduction_vs: baseline";
  (baseline -. v) /. baseline

let speedup_vs ~baseline v =
  if v <= 0.0 then invalid_arg "Descriptive.speedup_vs: v";
  baseline /. v

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  p50 : float;
  p95 : float;
  p99 : float;
  max : float;
}

let summarize xs =
  check_nonempty "summarize" xs;
  {
    count = Array.length xs;
    mean = mean xs;
    stddev = stddev xs;
    min = min_value xs;
    p50 = percentile xs 50.0;
    p95 = percentile xs 95.0;
    p99 = percentile xs 99.0;
    max = max_value xs;
  }

let pp_summary ppf s =
  Format.fprintf ppf
    "n=%d mean=%.4g sd=%.4g min=%.4g p50=%.4g p95=%.4g p99=%.4g max=%.4g"
    s.count s.mean s.stddev s.min s.p50 s.p95 s.p99 s.max
