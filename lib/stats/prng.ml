(* SplitMix64. Reference: Steele, Lea, Flood, "Fast splittable
   pseudorandom number generators", OOPSLA 2014. The state is a single
   64-bit counter advanced by the golden-gamma constant; output mixing is
   the murmur3-style finalizer variant from the paper. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = mix64 (Int64.of_int seed) }

let copy t = { state = t.state }

let raw_state t = t.state
let of_raw_state state = { state }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let seed = bits64 t in
  { state = mix64 seed }

(* Unbiased bounded draw by rejection on the top bits. *)
let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  if bound = 1 then 0
  else begin
    let mask =
      let rec widen m = if m >= bound - 1 then m else widen ((m lsl 1) lor 1) in
      widen 1
    in
    let rec draw () =
      let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) land mask in
      if v < bound then v else draw ()
    in
    draw ()
  end

let int_in t lo hi =
  if lo > hi then invalid_arg "Prng.int_in: lo > hi";
  lo + int t (hi - lo + 1)

let unit_float t =
  (* 53 significant bits, uniform in [0,1). *)
  let bits = Int64.to_int (Int64.shift_right_logical (bits64 t) 11) in
  float_of_int bits *. 0x1.0p-53

let float t bound = unit_float t *. bound

let float_in t lo hi =
  if lo > hi then invalid_arg "Prng.float_in: lo > hi";
  lo +. (unit_float t *. (hi -. lo))

let bool t = Int64.logand (bits64 t) 1L = 1L

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let sample_without_replacement t k n =
  if k < 0 || n < 0 then invalid_arg "Prng.sample_without_replacement";
  if k >= n then List.init n (fun i -> i)
  else begin
    (* Floyd's algorithm: O(k) expected, no O(n) scratch. *)
    let seen = Hashtbl.create (2 * k) in
    let acc = ref [] in
    for j = n - k to n - 1 do
      let r = int t (j + 1) in
      let pick = if Hashtbl.mem seen r then j else r in
      Hashtbl.replace seen pick ();
      acc := pick :: !acc
    done;
    !acc
  end

let choose t a =
  if Array.length a = 0 then invalid_arg "Prng.choose: empty array";
  a.(int t (Array.length a))
