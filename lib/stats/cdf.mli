(** Empirical cumulative distribution functions for reporting.

    Figure 9 of the paper plots per-event queuing delay series; producing
    a CDF of metric samples is the standard way to compare schedulers.
    This is the reporting-side counterpart of {!Dist.empirical} (which is
    the sampling side). *)

type t

val of_samples : float array -> t
(** Build an ECDF from raw observations. Raises [Invalid_argument] on an
    empty array. *)

val eval : t -> float -> float
(** [eval t x] is P(X <= x), a step function in [0, 1]. *)

val inverse : t -> float -> float
(** [inverse t p] is the p-quantile, [p] in [0, 1]. *)

val points : t -> (float * float) array
(** The ECDF as [(value, cumulative probability)] steps, deduplicated on
    value, suitable for plotting or for {!Dist.empirical_of_cdf}. *)

val size : t -> int
(** Number of underlying samples. *)

val pp : Format.formatter -> t -> unit
(** Compact rendering: a fixed set of quantiles. *)
