(** Descriptive statistics over float samples.

    The evaluation reports average and tail (p95/p99/max) event completion
    times, queuing delays and cost totals. All functions are total over
    non-empty inputs and raise [Invalid_argument] on empty inputs, keeping
    "no data" failures loud rather than silently producing NaN. *)

val mean : float array -> float
(** Arithmetic mean. *)

val total : float array -> float
(** Kahan-compensated sum. *)

val variance : float array -> float
(** Population variance (division by n). *)

val stddev : float array -> float
(** Square root of {!variance}. *)

val min_value : float array -> float
val max_value : float array -> float

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [0, 100]: linear interpolation between
    closest ranks (the common "type 7" estimator). [percentile xs 100.0]
    equals [max_value xs]. The input is not modified. *)

val median : float array -> float
(** [percentile xs 50.0]. *)

val geometric_mean : float array -> float
(** Geometric mean; requires strictly positive samples. *)

val normalize_by_max : float array -> float array
(** Divide every sample by the maximum; the paper reports figure series
    normalised by the flow-level method's maximum. Requires max > 0. *)

val reduction_vs : baseline:float -> float -> float
(** [reduction_vs ~baseline v] is the fractional reduction
    [(baseline - v) / baseline] — the paper's "X% reduction against FIFO"
    metric. Requires [baseline > 0]. *)

val speedup_vs : baseline:float -> float -> float
(** [speedup_vs ~baseline v = baseline /. v] — the paper's "10x faster".
    Requires [v > 0]. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  p50 : float;
  p95 : float;
  p99 : float;
  max : float;
}
(** One-shot summary used by the experiment harness tables. *)

val summarize : float array -> summary
val pp_summary : Format.formatter -> summary -> unit
