(** Bounded per-round gauge time-series.

    A series is a fixed set of named float gauges sampled at increasing
    simulated-time instants — the engine samples fabric utilization,
    queue length and retry backlog once per service round, producing
    the utilization-trajectory data of the paper's Figs. 4-9 without a
    trace export.

    Memory is bounded: the series retains at most [capacity] rows.
    When the cap is reached it decimates — every other retained row is
    dropped and the sampling stride doubles, so arbitrarily long runs
    keep a uniformly-spaced summary at fixed memory. [stride] reports
    the current cadence (1 until the first decimation). *)

type t

val create : ?capacity:int -> columns:string list -> unit -> t
(** [capacity] (default 4096, minimum 2, rounded up to even — the
    stride grid needs pairwise decimation) caps retained rows. [columns]
    names the gauges; every sampled row must supply one value per
    column. Raises [Invalid_argument] on an empty column list. *)

val columns : t -> string list
val length : t -> int
(** Retained rows (at most [capacity]). *)

val total_samples : t -> int
(** Rows offered via {!sample}, including ones dropped by striding. *)

val stride : t -> int
(** Current keep-every-nth cadence; doubles at each decimation. *)

val sample : t -> t_s:float -> float array -> unit
(** Offer one row at instant [t_s]. The row is copied. Rows that fall
    between stride points are dropped in O(1). Raises
    [Invalid_argument] when the row length does not match the column
    count. *)

val get : t -> int -> float * float array
(** [get t i] is the [i]-th retained row (instant, values); the values
    array is a copy. Raises [Invalid_argument] out of range. *)

val reset : t -> unit

val to_json : t -> Json.t
(** [{"columns": [...], "stride": k, "total_samples": n,
    "t_s": [...], "data": {"col": [...], ...}}] — column-major. *)

val to_csv : t -> string
(** RFC-4180-style CSV: a [t_s,col1,col2,...] header then one line per
    retained row. Floats are rendered shortest-round-trip. *)
