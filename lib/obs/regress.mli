(** Bench regression gate over sched_bench JSON documents.

    Compares a current benchmark run against a committed baseline
    (e.g. [BENCH_PR3.json]) and reports regressions:

    - any decision-digest change (["digest"], and ["recovery_digest"]
      when both runs carry one) is a hard failure — the scheduler fast
      paths are required to be bit-identical rewrites;
    - a planning-wall slowdown beyond [max_regress] (default 15%) on
      any scenario present in both runs is a failure;
    - a scenario present in the baseline but missing from the current
      run is a failure (a silently-dropped scenario is not a pass).

    Runs are only comparable when their workloads match: the top-level
    [mode], [seed] and [n_events] must agree, and when both documents
    carry a ["schema_version"] it must agree too. A document without
    [schema_version] (baselines recorded before the field existed) is
    accepted and assumed compatible. *)

type report = {
  failures : string list;  (** Empty means the gate passes. *)
  notes : string list;  (** Informational (new scenarios, speedups). *)
}

val schema_version : int
(** Version stamped into sched_bench output by this tree. *)

val check :
  ?max_regress:float -> baseline:Json.t -> current:Json.t -> unit ->
  (report, string) result
(** [Error reason] when the two documents are not comparable (schema
    version or workload mismatch, missing scenario lists);
    [Ok report] otherwise. [max_regress] is the tolerated fractional
    planning-wall increase (0.15 = +15%). *)

val delta_json :
  ?max_regress:float -> baseline:Json.t -> current:Json.t -> unit -> Json.t
(** Machine-readable companion to {!check}: a document with
    ["result"] (["pass"] / ["fail"] / ["incomparable"]), the gate's
    ["failures"] and ["notes"] (plus ["reason"] when incomparable), and
    a ["scenarios"] list holding one object per scenario name seen in
    either input — baseline/current planning wall, percentage delta,
    both digests and whether they match, and a ["status"] of ["both"],
    ["missing_from_current"] or ["new_in_current"]. Scenario deltas are
    emitted best-effort even when the runs are incomparable, so CI can
    attach the partial picture to the failure. *)
