(** OpenMetrics / Prometheus text-format exposition.

    {!render} walks a counter snapshot, histogram snapshots and the
    {!Fairness} / {!Slo} trackers into a single self-terminated text
    document ([# EOF] last); {!write_atomic} publishes it via
    temp-file + rename so a scraper never reads a torn file; and
    {!validate} parses a document back, which is what the CI
    telemetry-smoke job runs against the scrape file.

    Naming scheme: every metric is prefixed [nu_]; internal names are
    mangled to [[a-z0-9_]] (dots become underscores); a trailing [_s]
    becomes the conventional [_seconds] unit suffix; counters carry
    [_total]. Histograms render as cumulative [le]-labelled bucket
    series plus [_sum]/[_count]; per-tenant ECT renders as a [summary]
    family [nu_tenant_ect_seconds] with [tenant] and [quantile]
    labels. *)

val metric_name : string -> string
(** Mangle an internal metric name ("serve.admission_wait_s" →
    ["nu_serve_admission_wait_seconds"]). *)

val render :
  ?counters:Counters.snapshot ->
  ?histograms:(string * Histogram.t) list ->
  ?fairness:Fairness.t ->
  ?slo:Slo.t ->
  ?watch:Watch.t ->
  unit ->
  string
(** Render the given sources into one exposition document. All sources
    are optional; the result always ends with [# EOF]. A [watch]
    source adds the alerting families: [nu_alerts_total{severity}],
    [nu_alerts_detector_total{detector}], [nu_alerts_dropped_total],
    [nu_health_state{scope="global"}] and
    [nu_tenant_health_state{tenant}] (gauge value is
    {!Health.state_rank}: 0 ok, 1 warn, 2 critical, 3 recovering). *)

val write_atomic : dir:string -> ?filename:string -> string -> unit
(** Write [content] to [dir/filename] (default ["metrics.prom"]) via a
    hidden temp file and atomic rename, creating [dir] if missing. *)

val validate : string -> (unit, string) result
(** Check that a document is well-formed exposition text: every sample
    line parses (name, optional labels, float value), references a
    family declared by a preceding [# TYPE] line (directly or via a
    [_total]/[_bucket]/[_sum]/[_count] series suffix), and the document
    ends with exactly one [# EOF]. Errors carry a line number. *)
