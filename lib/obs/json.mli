(** Minimal JSON tree, printer and parser.

    The observability layer exports run reports, JSONL span logs and
    Chrome-trace files without pulling a JSON dependency into the build;
    this module is the whole codec. The printer always emits valid JSON
    (non-finite floats become [null]); the parser accepts anything the
    printer produces plus ordinary interchange JSON (it does not combine
    UTF-16 surrogate pairs in [\u] escapes). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering. *)

val pp : Format.formatter -> t -> unit
(** Same rendering as {!to_string}. *)

val of_string : string -> (t, string) result
(** Parse one JSON value; trailing non-whitespace is an error. Numbers
    without [.], [e] or [E] that fit in [int] parse as [Int], everything
    else as [Float]. *)

val member : string -> t -> t option
(** First binding of the key in an [Obj]; [None] otherwise. *)
