type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let add_escaped buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

(* Shortest decimal that round-trips; "%.17g" only when needed. A
   marker ('.' or exponent) is forced so integral floats print as
   "1.0", not "1" — otherwise parsing reads the type back as Int and
   print/parse is not the identity on floats. *)
let float_repr f =
  let s = Printf.sprintf "%.15g" f in
  let s = if float_of_string s = f then s else Printf.sprintf "%.17g" f in
  if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s
  else s ^ ".0"

let rec to_buf buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      if Float.is_finite f then Buffer.add_string buf (float_repr f)
      else Buffer.add_string buf "null"
  | String s ->
      Buffer.add_char buf '"';
      add_escaped buf s;
      Buffer.add_char buf '"'
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          to_buf buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          add_escaped buf k;
          Buffer.add_string buf "\":";
          to_buf buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string t =
  let buf = Buffer.create 256 in
  to_buf buf t;
  Buffer.contents buf

let pp ppf t = Format.pp_print_string ppf (to_string t)

exception Parse of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let keyword kw v =
    let l = String.length kw in
    if !pos + l <= n && String.sub s !pos l = kw then (
      pos := !pos + l;
      v)
    else fail "invalid literal"
  in
  let string_lit () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      incr pos;
      if c = '"' then Buffer.contents buf
      else if c = '\\' then begin
        if !pos >= n then fail "truncated escape";
        let e = s.[!pos] in
        incr pos;
        (match e with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' -> (
            if !pos + 4 > n then fail "truncated \\u escape";
            let hex = String.sub s !pos 4 in
            pos := !pos + 4;
            match int_of_string_opt ("0x" ^ hex) with
            | Some code when Uchar.is_valid code ->
                Buffer.add_utf_8_uchar buf (Uchar.of_int code)
            | _ -> fail "invalid \\u escape")
        | _ -> fail "invalid escape");
        loop ()
      end
      else begin
        Buffer.add_char buf c;
        loop ()
      end
    in
    loop ()
  in
  let number () =
    let start = !pos in
    if peek () = Some '-' then incr pos;
    while
      !pos < n
      &&
      match s.[!pos] with
      | '0' .. '9' | '.' | 'e' | 'E' | '+' | '-' -> true
      | _ -> false
    do
      incr pos
    done;
    let lit = String.sub s start (!pos - start) in
    let floatish = String.exists (fun c -> c = '.' || c = 'e' || c = 'E') lit in
    if floatish then
      match float_of_string_opt lit with
      | Some f -> Float f
      | None -> fail "invalid number"
    else
      match int_of_string_opt lit with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt lit with
          | Some f -> Float f
          | None -> fail "invalid number")
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' -> obj ()
    | Some '[' -> arr ()
    | Some '"' -> String (string_lit ())
    | Some 't' -> keyword "true" (Bool true)
    | Some 'f' -> keyword "false" (Bool false)
    | Some 'n' -> keyword "null" Null
    | Some _ -> number ()
  and obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then (
      incr pos;
      Obj [])
    else begin
      let rec members acc =
        skip_ws ();
        let k = string_lit () in
        skip_ws ();
        expect ':';
        let v = value () in
        skip_ws ();
        match peek () with
        | Some ',' ->
            incr pos;
            members ((k, v) :: acc)
        | Some '}' ->
            incr pos;
            Obj (List.rev ((k, v) :: acc))
        | _ -> fail "expected ',' or '}'"
      in
      members []
    end
  and arr () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then (
      incr pos;
      List [])
    else begin
      let rec elems acc =
        let v = value () in
        skip_ws ();
        match peek () with
        | Some ',' ->
            incr pos;
            elems (v :: acc)
        | Some ']' ->
            incr pos;
            List (List.rev (v :: acc))
        | _ -> fail "expected ',' or ']'"
      in
      elems []
    end
  in
  match
    let v = value () in
    skip_ws ();
    if !pos <> n then fail "trailing input";
    v
  with
  | v -> Ok v
  | exception Parse msg -> Error msg

let member key = function Obj kvs -> List.assoc_opt key kvs | _ -> None
