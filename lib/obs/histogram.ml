(* Log-bucketed streaming histogram. A positive value v = m * 2^e
   (frexp, m in [0.5, 1)) lands in bucket e * sub + floor((m - 0.5) * 2
   * sub): octave e split into [sub] linear sub-buckets. Bucket width
   is at most 1/sub of the bucket's lower bound, which bounds the
   relative quantile error. Zero has its own exact bucket. *)

type t = {
  sub : int;
  buckets : (int, int ref) Hashtbl.t;
  mutable zero : int;  (* exact count of 0.0 samples *)
  mutable n : int;
  mutable sum : float;
  mutable minv : float;
  mutable maxv : float;
}

let create ?(sub_buckets = 64) () =
  if sub_buckets < 1 then invalid_arg "Histogram.create: sub_buckets < 1";
  {
    sub = sub_buckets;
    buckets = Hashtbl.create 64;
    zero = 0;
    n = 0;
    sum = 0.0;
    minv = infinity;
    maxv = neg_infinity;
  }

let sub_buckets t = t.sub
let rel_error t = 1.0 /. float_of_int t.sub
let count t = t.n
let sum t = t.sum
let is_empty t = t.n = 0

let check_nonempty fn t =
  if t.n = 0 then invalid_arg ("Histogram." ^ fn ^ ": empty")

let mean t =
  check_nonempty "mean" t;
  t.sum /. float_of_int t.n

let min_value t =
  check_nonempty "min_value" t;
  t.minv

let max_value t =
  check_nonempty "max_value" t;
  t.maxv

let bucket_id t v =
  let m, e = Float.frexp v in
  (e * t.sub) + int_of_float ((m -. 0.5) *. 2.0 *. float_of_int t.sub)

(* Euclidean decomposition of id = e * sub + si with si in [0, sub). *)
let bucket_bounds t id =
  let e = if id >= 0 then id / t.sub else -(((-id) + t.sub - 1) / t.sub) in
  let si = id - (e * t.sub) in
  let lo = Float.ldexp (0.5 +. (float_of_int si /. float_of_int (2 * t.sub))) e in
  let hi =
    Float.ldexp (0.5 +. (float_of_int (si + 1) /. float_of_int (2 * t.sub))) e
  in
  (lo, hi)

let record_n t v k =
  if k < 0 then invalid_arg "Histogram.record_n: negative count";
  if not (Float.is_finite v) || v < 0.0 then
    invalid_arg "Histogram.record: sample must be finite and non-negative";
  if k > 0 then begin
    if v = 0.0 then t.zero <- t.zero + k
    else begin
      let id = bucket_id t v in
      match Hashtbl.find_opt t.buckets id with
      | Some r -> r := !r + k
      | None -> Hashtbl.add t.buckets id (ref k)
    end;
    t.n <- t.n + k;
    t.sum <- t.sum +. (v *. float_of_int k);
    if v < t.minv then t.minv <- v;
    if v > t.maxv then t.maxv <- v
  end

let record t v = record_n t v 1

(* Occupied buckets sorted ascending by id; the zero bucket, when
   occupied, sorts first under the sentinel id [min_int]. *)
let sorted_buckets t =
  let l =
    Hashtbl.fold (fun id r acc -> (id, !r) :: acc) t.buckets []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  if t.zero > 0 then (min_int, t.zero) :: l else l

let representative t (id, _count) =
  if id = min_int then 0.0
  else begin
    let lo, hi = bucket_bounds t id in
    0.5 *. (lo +. hi)
  end

let quantile t q =
  check_nonempty "quantile" t;
  if q < 0.0 || q > 1.0 then invalid_arg "Histogram.quantile: q outside [0,1]";
  let sorted = sorted_buckets t in
  (* Value of the k-th (0-based) smallest sample, as its bucket's
     midpoint. *)
  let value_at k =
    let rec walk seen = function
      | [] -> t.maxv (* unreachable for k < n *)
      | ((_, c) as b) :: rest ->
          if k < seen + c then representative t b else walk (seen + c) rest
    in
    walk 0 sorted
  in
  let rank = q *. float_of_int (t.n - 1) in
  let lo = int_of_float (floor rank) in
  let hi = int_of_float (ceil rank) in
  let est =
    if lo = hi then value_at lo
    else begin
      let frac = rank -. float_of_int lo in
      let vlo = value_at lo and vhi = value_at hi in
      vlo +. (frac *. (vhi -. vlo))
    end
  in
  (* Min and max are exact; clamping never hurts the error bound. *)
  Float.min t.maxv (Float.max t.minv est)

let p50 t = quantile t 0.50
let p90 t = quantile t 0.90
let p99 t = quantile t 0.99
let p999 t = quantile t 0.999

let buckets t =
  List.map
    (fun (id, c) ->
      if id = min_int then (0.0, 0.0, c)
      else begin
        let lo, hi = bucket_bounds t id in
        (lo, hi, c)
      end)
    (sorted_buckets t)

let copy t =
  {
    t with
    buckets =
      (let h = Hashtbl.create (Hashtbl.length t.buckets) in
       Hashtbl.iter (fun id r -> Hashtbl.add h id (ref !r)) t.buckets;
       h);
  }

let merge a b =
  if a.sub <> b.sub then invalid_arg "Histogram.merge: sub_buckets mismatch";
  let t = copy a in
  Hashtbl.iter
    (fun id r ->
      match Hashtbl.find_opt t.buckets id with
      | Some acc -> acc := !acc + !r
      | None -> Hashtbl.add t.buckets id (ref !r))
    b.buckets;
  t.zero <- t.zero + b.zero;
  t.n <- t.n + b.n;
  t.sum <- t.sum +. b.sum;
  t.minv <- Float.min t.minv b.minv;
  t.maxv <- Float.max t.maxv b.maxv;
  t

let reset t =
  Hashtbl.reset t.buckets;
  t.zero <- 0;
  t.n <- 0;
  t.sum <- 0.0;
  t.minv <- infinity;
  t.maxv <- neg_infinity

let to_json t =
  let q f = if t.n = 0 then Json.Null else Json.Float (f t) in
  Json.Obj
    [
      ("count", Json.Int t.n);
      ("sum", Json.Float (if t.n = 0 then 0.0 else t.sum));
      ("min", q min_value);
      ("max", q max_value);
      ("mean", q mean);
      ("p50", q p50);
      ("p90", q p90);
      ("p99", q p99);
      ("p999", q p999);
      ("sub_buckets", Json.Int t.sub);
      ( "buckets",
        Json.List
          (List.map
             (fun (id, c) ->
               let lo, hi =
                 if id = min_int then (0.0, 0.0) else bucket_bounds t id
               in
               Json.List [ Json.Float lo; Json.Float hi; Json.Int c ])
             (sorted_buckets t)) );
    ]

let pp ppf t =
  if t.n = 0 then Format.fprintf ppf "empty"
  else
    Format.fprintf ppf
      "n=%d mean=%.4g p50=%.4g p90=%.4g p99=%.4g p999=%.4g max=%.4g" t.n
      (mean t) (p50 t) (p90 t) (p99 t) (p999 t) t.maxv

module Registry = struct
  let on = ref false
  let table : (string, t) Hashtbl.t = Hashtbl.create 16

  (* Worker domains see the registry as off: the table is a
     single-writer structure owned by the main domain. *)
  let enabled () = !on && not (Obs_domain.in_worker ())
  let enable () = on := true
  let disable () = on := false

  let record name v =
    if !on && not (Obs_domain.in_worker ()) then begin
      let h =
        match Hashtbl.find_opt table name with
        | Some h -> h
        | None ->
            let h = create () in
            Hashtbl.add table name h;
            h
      in
      record h v
    end

  let find name = Hashtbl.find_opt table name

  let snapshot () =
    Hashtbl.fold (fun name h acc -> (name, copy h) :: acc) table []
    |> List.sort (fun (a, _) (b, _) -> compare a b)

  let reset () = Hashtbl.reset table

  let to_json () =
    Json.Obj (List.map (fun (name, h) -> (name, to_json h)) (snapshot ()))
end
