(** Counter registry for the planner/scheduler pipeline.

    One set of integer counters covering the pipeline's units of work —
    planner probes, migration moves, clear attempts, state copies,
    service rounds. [incr]/[add] are single array stores, cheap enough
    to leave permanently enabled on hot paths (unlike {!Trace} spans,
    which are gated on an installed sink).

    The registry is {e domain-local}: every function below reads and
    writes the calling domain's store, so concurrent domains never
    contend. A probe worker domain accumulates into its own store,
    {!drain}s it on exit, and the spawning domain {!absorb}s the deltas
    after the join — in domain-spawn order, making the merged totals
    deterministic and (the sums being commutative) independent of how
    the probes were distributed across domains.

    Scoped measurement works by snapshot/diff: take a {!snapshot}
    before the region of interest and [diff] it against one taken
    after. *)

type key =
  | Planner_plans  (** Applied plans ({!Nu_update.Planner.plan} calls). *)
  | Planner_probes  (** Feasibility probes (summed plan work units). *)
  | Plan_reverts  (** {!Nu_update.Planner.revert} calls. *)
  | Cost_estimates  (** Plan-and-revert probes ({!Nu_update.Planner.cost_of}). *)
  | Migration_moves  (** Make-room flow relocations committed. *)
  | Clear_attempts  (** {!Nu_update.Migration.clear_path} invocations. *)
  | Path_enumerations  (** Candidate-path set constructions. *)
  | State_copies  (** {!Nu_net.Net_state.copy} calls. *)
  | Engine_rounds  (** Service rounds executed (both abstractions). *)
  | Events_executed  (** Events completed by event-level rounds. *)
  | Co_scheduled_events  (** P-LMTF opportunistic co-executions. *)
  | Churn_placements  (** Background flows re-admitted by churn. *)
  | Txn_rollbacks  (** {!Nu_net.Net_state.rollback} calls (probe undos). *)
  | Txn_commits  (** Outermost {!Nu_net.Net_state.commit} calls. *)
  | Plan_replays  (** Winner plans re-applied via {!Nu_update.Planner.replay}. *)
  | Estimate_cache_hits  (** Scheduler probes answered from the cache. *)
  | Estimate_cache_misses  (** Scheduler probes that had to re-plan. *)
  | Faults_injected  (** Fault-schedule events applied by the injector. *)
  | Migrations_aborted
      (** In-flight rounds undone by a fault (txn rollback per event). *)
  | Retries  (** Aborted events re-queued under the retry policy. *)
  | Events_degraded
      (** Events past the retry budget, executed best-effort. *)
  | Invariant_checks  (** {!Nu_fault.Invariant} full-state checks run. *)
  | Serve_ticks  (** Online-controller ticks processed. *)
  | Serve_admitted  (** Requests accepted into the admission queue. *)
  | Serve_shed  (** Requests rejected by the admission policy. *)
  | Serve_deferred
      (** Admission attempts deferred to the next tick (Block policy). *)
  | Serve_drained  (** Requests handed from admission to the engine. *)
  | Serve_checkpoints  (** Durable checkpoints written. *)
  | Probe_parallel_batches
      (** Candidate-probe batches fanned out across worker domains. *)
  | Domain_probes
      (** Probes evaluated inside worker domains (cache misses of
          parallel batches). *)
  | Shard_escalations
      (** Wave rounds whose winner was handed to the global coordinator
          (cross-shard migration set). *)
  | Shard_wave_replans
      (** Wave winners invalidated by an earlier commit of the same
          wave and re-planned live. *)
  | Shard_coord_commits  (** Coordinator two-phase commits. *)
  | Shard_coord_aborts  (** Coordinator aborts (veto or infeasible). *)
  | Shard_coord_degraded
      (** Coordinator events executed best-effort after the retry
          budget. *)
  | Shard_rebalances  (** Hot-shard region reassignments. *)

val all : key list
(** Every key, in rendering order. *)

val name : key -> string
(** Stable snake_case identifier, used in tables and JSON. *)

val incr : key -> unit

val add : key -> int -> unit

val get : key -> int
(** Current live value. *)

(** {2 Dynamic named counters}

    Subsystems whose counter set is not known statically (telemetry
    sinks, plugins) register counters by name on first increment. Named
    counters share the registry's snapshot/diff machinery; names are
    dot-namespaced snake_case ["telemetry.expo_writes"]-style strings. *)

val incr_named : string -> unit
val add_named : string -> int -> unit
(** Create-on-first-use. Raise [Invalid_argument] on an empty name. *)

val get_named : string -> int
(** Current live value; 0 for a name never incremented. *)

val reset : unit -> unit
(** Zero every fixed counter and drop every named counter. Intended for
    tests and benchmark harnesses. *)

type snapshot
(** Immutable copy of all counter values — fixed keys and named
    counters — at one instant. *)

val snapshot : unit -> snapshot

val drain : unit -> snapshot
(** {!snapshot} then {!reset}, atomically from the calling domain's
    point of view: a worker domain's parting gift, to be {!absorb}ed by
    the domain that joins it. *)

val absorb : snapshot -> unit
(** Add a drained snapshot's values into the calling domain's counters.
    Raises [Invalid_argument] on a fixed-size mismatch. *)

val diff : before:snapshot -> after:snapshot -> snapshot
(** Per-key [after - before]: the counts attributable to the region
    between the two snapshots. Named counters diff over the {e union}
    of both snapshots' names — a counter first created after [before]
    was taken diffs against an implicit 0 rather than being dropped. *)

val value : snapshot -> key -> int

val named_value : snapshot -> string -> int
(** 0 for a name absent from the snapshot. *)

val to_alist : snapshot -> (string * int) list
(** All fixed keys in {!all} order (including zeros), then named
    counters sorted by name. *)

val is_zero : snapshot -> bool

val to_json : snapshot -> Json.t
(** Object mapping {!name} to value. *)

val pp_table : Format.formatter -> snapshot -> unit
(** Two-column name/value table. *)
