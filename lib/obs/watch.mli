(** [nu_watch]: deterministic streaming watchdog over the serving
    telemetry.

    The watcher consumes one {!obs} record per controller tick — the
    completions (tenant, ECT) observed that tick, the admission queue
    depth, the engine backlog, and the per-tick deltas of the WAL
    corrupt-frame and supervisor-restart counters — and runs a bank of
    streaming detectors over the stream:

    - EWMA + CUSUM change-point on the rolling global tail ECT (p99),
    - EWMA + CUSUM change-point on the admission queue depth,
    - per-tenant EWMA + CUSUM change-point on each tenant's rolling
      tail ECT,
    - OLS linear-regression backlog-slope divergence,
    - Jain fairness-index collapse (below a threshold for K consecutive
      windows),
    - windowed WAL corrupt-frame-rate and supervisor-restart-rate
      budgets.

    Detector outcomes drive a {!Health} state machine per scope (global
    plus one per tenant); every state transition — and every CUSUM
    rising edge — emits a structured {!alert} into a bounded in-memory
    ring and, when a journal directory is configured, an append-only
    [alerts.jsonl]. An FNV-1a digest folds over the alert lines as they
    are emitted.

    Everything is a pure function of the observation stream: no wall
    clock, no RNG, no dependence on map iteration order (tenants are
    always visited in sorted name order). The observation stream itself
    is journaled to [watch.jsonl], and when the first observation of a
    run arrives at a tick K > 0 (a restore-and-replay run) the watcher
    transparently replays the journaled prefix below K to rebuild its
    state, then rewrites both journals — so [serve -> crash -> replay]
    reproduces the uninterrupted run's alert sequence and digest bit
    for bit. The watcher reads nothing the scheduler consults:
    attaching it cannot change a decision digest. *)

type severity = Info | Warning | Critical

type config = {
  window : int;  (** ECT/fairness window rotation period, ticks *)
  ect_cusum : Detector.Cusum.config;
  queue_cusum : Detector.Cusum.config;
  tenant_cusum : Detector.Cusum.config;
  slope_window : int;  (** backlog-slope regression window, ticks *)
  max_backlog_slope : float;  (** events per tick; above fires *)
  jain_min : float;  (** fairness floor *)
  jain_windows : int;  (** consecutive collapsed windows to fire *)
  max_corrupt_per_window : int;  (** corrupt-frame budget per window *)
  max_restarts_per_window : int;  (** supervisor-restart budget *)
  health : Health.config;
  ring_capacity : int;  (** retained alerts; older ones drop *)
  dir : string option;
      (** journal directory ([watch.jsonl], [alerts.jsonl]); [None]
          keeps the watcher purely in-memory *)
}

val default_config : config

type alert = {
  a_tick : int;
  a_scope : string;  (** ["global"] or a tenant name *)
  a_detector : string;
  a_severity : severity;
  a_state : Health.state;  (** scope health after this alert *)
  a_evidence : Json.t;  (** detector snapshot at emission *)
}

type obs = {
  o_tick : int;
  o_queue : int;
  o_backlog : int;
  o_ects : (string * float) list;  (** (tenant, ect_s), arrival order *)
  o_corrupt_d : int;  (** WAL corrupt-frame counter delta this tick *)
  o_restarts_d : int;  (** supervisor-restart counter delta this tick *)
}

type t

val create : config -> t

(* ------------------------------------------------------------------ *)
(* Live feeding (Serve_telemetry path) *)

val observe_ect : t -> tenant:string -> ect_s:float -> unit
(** Accumulate one completion for the in-progress tick. *)

val on_tick :
  t -> tick:int -> queue:int -> backlog:int -> corrupt_d:int -> restarts_d:int -> unit
(** Close the tick: build the {!obs} record from the accumulated
    completions and {!ingest} it. *)

val ingest : t -> obs -> unit
(** Journal (when configured) and evaluate one observation. The first
    call of a run with [o_tick > 0] triggers the resume-from-journal
    path described above. *)

val close : t -> unit
(** Flush and close the journals (idempotent). *)

(* ------------------------------------------------------------------ *)
(* Readouts *)

val alerts : t -> alert list
(** Retained ring, oldest first. *)

val alert_total : t -> int
(** Exact total emitted, including ring evictions. *)

val critical_total : t -> int
val dropped : t -> int
val alert_digest : t -> string
(** FNV-1a 64-bit hex digest over the emitted alert JSONL lines. *)

val by_detector : t -> (string * int) list
(** Alert counts keyed by detector, sorted by name. *)

val by_severity : t -> (string * int) list
val severity_name : severity -> string
val global_state : t -> Health.state
val tenant_states : t -> (string * Health.state) list
(** Sorted by tenant name. *)

val first_breach_tick : t -> int option
(** First tick with a Warning-or-worse alert. *)

val last_breach_tick : t -> int option

(* ------------------------------------------------------------------ *)
(* Rendering *)

val report_json : t -> Json.t
(** The [alerts] block for {!Run_report.to_json}: totals, counts by
    detector/severity, first/last breach ticks, per-scope health
    timelines. *)

val alerts_json : t -> Json.t
(** Full [alerts.json] artifact (retained alerts + digest + counts). *)

val health_json : t -> Json.t
(** [health.json] artifact (per-scope state + transition timeline). *)

val alert_to_json : alert -> Json.t
val obs_to_json : obs -> Json.t
val obs_of_json : Json.t -> (obs, string) result

(* ------------------------------------------------------------------ *)
(* Offline evaluation *)

type journal = {
  j_config : config option;  (** from the header line; [dir] is [None] *)
  j_obs : obs list;
  j_torn : int option;  (** line number of a torn trailing line *)
}

val read_journal : string -> (journal, string) result
(** Parse a [watch.jsonl] file. A trailing line that fails to parse
    (crash mid-append) is tolerated and reported via [j_torn]; a
    malformed line elsewhere is an error. *)

val read_alerts_digest : string -> (string * int, string) result
(** Recompute the FNV-1a digest and line count of an [alerts.jsonl]
    file, tolerating a torn trailing line. *)

val obs_of_lifecycle : Lifecycle.entry list -> obs list
(** Approximate an observation stream from lifecycle stamps alone:
    per-tick completions and reconstructed queue/backlog gauges, with
    counter deltas of zero. A fallback for metrics directories recorded
    without [--watch]; digests computed from it are not comparable to a
    live watcher's. *)

val config_to_json : config -> Json.t
val config_of_json : Json.t -> (config, string) result
