(* Request-lifecycle tracker. Each stamp is a (request id, stage)
   observation at a (tick, simulated instant); the tracker keeps a
   bounded ring of recent entries, an id -> tenant attribution table
   for the requests still in flight, and optionally streams every entry
   to a JSONL file as it is stamped. Terminal stages retire the
   attribution entry so memory stays proportional to in-flight work. *)

type stage =
  | Arrived
  | Admitted
  | Shed of string
  | Deferred
  | Submitted of { wait_ticks : int }
  | Planned of { round : int; co_scheduled : bool }
  | Aborted of { round : int }
  | Retry_scheduled of { ready_s : float }
  | Completed of { ect_s : float }
  | Degraded of { ect_s : float; failed_items : int }

type entry = {
  id : int;
  tenant : string;
  tick : int;
  t_s : float;
  stage : stage;
}

let stage_name = function
  | Arrived -> "arrived"
  | Admitted -> "admitted"
  | Shed _ -> "shed"
  | Deferred -> "deferred"
  | Submitted _ -> "submitted"
  | Planned _ -> "planned"
  | Aborted _ -> "aborted"
  | Retry_scheduled _ -> "retry-scheduled"
  | Completed _ -> "completed"
  | Degraded _ -> "degraded"

let terminal = function
  | Shed _ | Completed _ | Degraded _ -> true
  | Arrived | Admitted | Deferred | Submitted _ | Planned _ | Aborted _
  | Retry_scheduled _ ->
      false

let stage_fields = function
  | Arrived | Admitted | Deferred -> []
  | Shed reason -> [ ("reason", Json.String reason) ]
  | Submitted { wait_ticks } -> [ ("wait_ticks", Json.Int wait_ticks) ]
  | Planned { round; co_scheduled } ->
      [ ("round", Json.Int round); ("co", Json.Bool co_scheduled) ]
  | Aborted { round } -> [ ("round", Json.Int round) ]
  | Retry_scheduled { ready_s } -> [ ("ready_s", Json.Float ready_s) ]
  | Completed { ect_s } -> [ ("ect_s", Json.Float ect_s) ]
  | Degraded { ect_s; failed_items } ->
      [ ("ect_s", Json.Float ect_s); ("failed", Json.Int failed_items) ]

let entry_to_json e =
  Json.Obj
    ([
       ("id", Json.Int e.id);
       ("tenant", Json.String e.tenant);
       ("tick", Json.Int e.tick);
       ("t_s", Json.Float e.t_s);
       ("stage", Json.String (stage_name e.stage));
     ]
    @ stage_fields e.stage)

let entry_of_json j =
  let ( let* ) = Result.bind in
  let int k =
    match Json.member k j with
    | Some (Json.Int i) -> Ok i
    | _ -> Error (Printf.sprintf "lifecycle entry: missing int %S" k)
  in
  let num k =
    match Json.member k j with
    | Some (Json.Float f) -> Ok f
    | Some (Json.Int i) -> Ok (float_of_int i)
    | _ -> Error (Printf.sprintf "lifecycle entry: missing number %S" k)
  in
  let str k =
    match Json.member k j with
    | Some (Json.String s) -> Ok s
    | _ -> Error (Printf.sprintf "lifecycle entry: missing string %S" k)
  in
  let* id = int "id" in
  let* tenant = str "tenant" in
  let* tick = int "tick" in
  let* t_s = num "t_s" in
  let* name = str "stage" in
  let* stage =
    match name with
    | "arrived" -> Ok Arrived
    | "admitted" -> Ok Admitted
    | "deferred" -> Ok Deferred
    | "shed" ->
        let* reason = str "reason" in
        Ok (Shed reason)
    | "submitted" ->
        let* wait_ticks = int "wait_ticks" in
        Ok (Submitted { wait_ticks })
    | "planned" -> (
        let* round = int "round" in
        match Json.member "co" j with
        | Some (Json.Bool co_scheduled) -> Ok (Planned { round; co_scheduled })
        | _ -> Error "lifecycle entry: missing bool \"co\"")
    | "aborted" ->
        let* round = int "round" in
        Ok (Aborted { round })
    | "retry-scheduled" ->
        let* ready_s = num "ready_s" in
        Ok (Retry_scheduled { ready_s })
    | "completed" ->
        let* ect_s = num "ect_s" in
        Ok (Completed { ect_s })
    | "degraded" ->
        let* ect_s = num "ect_s" in
        let* failed_items = int "failed" in
        Ok (Degraded { ect_s; failed_items })
    | other -> Error (Printf.sprintf "lifecycle entry: unknown stage %S" other)
  in
  Ok { id; tenant; tick; t_s; stage }

type t = {
  capacity : int;
  recent : entry Queue.t;
  tenants : (int, string) Hashtbl.t;
  mutable oc : out_channel option;
  mutable stamped : int;
}

let create ?path ?(capacity = 4096) () =
  if capacity < 1 then invalid_arg "Lifecycle.create: capacity < 1";
  {
    capacity;
    recent = Queue.create ();
    tenants = Hashtbl.create 64;
    oc = Option.map open_out path;
    stamped = 0;
  }

let tenant_of t id = Hashtbl.find_opt t.tenants id
let stamped t = t.stamped
let in_flight t = Hashtbl.length t.tenants
let entries t = List.of_seq (Queue.to_seq t.recent)

(* Flow-event phase for the Chrome trace linkage: a request's first
   stamp starts its flow arrow, the terminal stamp finishes it, and
   everything between is a step. *)
let flow_phase ~fresh stage =
  if fresh then "s" else if terminal stage then "f" else "t"

let stamp t ~id ?tenant ~tick ~t_s stage =
  let fresh = not (Hashtbl.mem t.tenants id) in
  let tenant =
    match tenant with
    | Some tn ->
        Hashtbl.replace t.tenants id tn;
        tn
    | None -> Option.value (tenant_of t id) ~default:""
  in
  if fresh && not (terminal stage) then Hashtbl.replace t.tenants id tenant;
  let e = { id; tenant; tick; t_s; stage } in
  Queue.push e t.recent;
  if Queue.length t.recent > t.capacity then ignore (Queue.pop t.recent);
  t.stamped <- t.stamped + 1;
  (match t.oc with
  | Some oc ->
      output_string oc (Json.to_string (entry_to_json e));
      output_char oc '\n'
  | None -> ());
  if Trace.enabled () then
    Trace.instant "lifecycle"
      ~attrs:
        [
          ("id", Trace.Int id);
          ("stage", Trace.Str (stage_name stage));
          ("flow", Trace.Str (flow_phase ~fresh stage));
        ];
  if terminal stage then Hashtbl.remove t.tenants id

let close t =
  match t.oc with
  | Some oc ->
      flush oc;
      close_out oc;
      t.oc <- None
  | None -> ()

let to_jsonl t =
  let buf = Buffer.create 1024 in
  Queue.iter
    (fun e ->
      Buffer.add_string buf (Json.to_string (entry_to_json e));
      Buffer.add_char buf '\n')
    t.recent;
  Buffer.contents buf

type read_result = { read : entry list; torn : (int * string) option }

(* A parse failure on the last non-blank line is a torn tail (crash
   mid-append) — the same tolerance the WAL reader applies to its final
   frame — and is reported, not raised. A bad line anywhere else means
   the file is corrupt and stays a hard error. *)
let read_jsonl path =
  match In_channel.with_open_text path In_channel.input_lines with
  | exception Sys_error m -> Error m
  | lines ->
      let numbered =
        List.mapi (fun i l -> (i + 1, l)) lines
        |> List.filter (fun (_, l) -> String.trim l <> "")
      in
      let parse line =
        Result.bind (Json.of_string line) entry_of_json
      in
      let rec go acc = function
        | [] -> Ok { read = List.rev acc; torn = None }
        | [ (n, line) ] -> (
            match parse line with
            | Ok e -> Ok { read = List.rev (e :: acc); torn = None }
            | Error _ -> Ok { read = List.rev acc; torn = Some (n, line) })
        | (n, line) :: rest -> (
            match parse line with
            | Ok e -> go (e :: acc) rest
            | Error m -> Error (Printf.sprintf "%s:%d: %s" path n m))
      in
      go [] numbered
