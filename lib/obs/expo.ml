(* OpenMetrics/Prometheus text exposition. Rendering walks the counter
   registry, histogram snapshots and the fairness/SLO trackers into one
   self-terminated text document; [write_atomic] publishes it via
   temp-file + rename so scrapers never observe a torn snapshot;
   [validate] is the parser the CI smoke job runs against the file. *)

(* Metric naming scheme: internal names ("serve.admission_wait_s") are
   mangled to [a-z0-9_], prefixed "nu_", and a trailing "_s" becomes
   the conventional "_seconds" unit suffix; counters additionally get
   "_total". *)
let metric_name raw =
  let b = Buffer.create (String.length raw + 8) in
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | '0' .. '9' | '_' -> Buffer.add_char b c
      | 'A' .. 'Z' -> Buffer.add_char b (Char.lowercase_ascii c)
      | _ -> Buffer.add_char b '_')
    raw;
  let s = Buffer.contents b in
  let s =
    if String.length s > 2 && String.sub s (String.length s - 2) 2 = "_s" then
      String.sub s 0 (String.length s - 2) ^ "_seconds"
    else s
  in
  "nu_" ^ s

let escape_label v =
  let b = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    v;
  Buffer.contents b

let fstr v =
  if Float.is_nan v then "NaN"
  else if v = infinity then "+Inf"
  else if v = neg_infinity then "-Inf"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.12g" v

let labels_str = function
  | [] -> ""
  | ls ->
      "{"
      ^ String.concat ","
          (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label v)) ls)
      ^ "}"

let sample buf name labels v =
  Buffer.add_string buf name;
  Buffer.add_string buf (labels_str labels);
  Buffer.add_char buf ' ';
  Buffer.add_string buf (fstr v);
  Buffer.add_char buf '\n'

let family buf name kind =
  Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind)

(* One histogram as the conventional cumulative-[le] series. *)
let histogram_family buf name h =
  family buf name "histogram";
  let cum = ref 0 in
  List.iter
    (fun (_, hi, c) ->
      cum := !cum + c;
      sample buf (name ^ "_bucket") [ ("le", fstr hi) ] (float_of_int !cum))
    (Histogram.buckets h);
  sample buf (name ^ "_bucket") [ ("le", "+Inf") ]
    (float_of_int (Histogram.count h));
  sample buf (name ^ "_sum") [] (Histogram.sum h);
  sample buf (name ^ "_count") [] (float_of_int (Histogram.count h))

let render_counters buf snap =
  List.iter
    (fun (raw, v) ->
      let name = metric_name raw ^ "_total" in
      family buf name "counter";
      sample buf name [] (float_of_int v))
    (Counters.to_alist snap)

let render_histograms buf hs =
  List.iter (fun (raw, h) -> histogram_family buf (metric_name raw) h) hs

let render_fairness buf f =
  let views = Fairness.view f in
  if views <> [] then begin
    let ect = "nu_tenant_ect_seconds" in
    family buf ect "summary";
    List.iter
      (fun (v : Fairness.tenant_view) ->
        match Fairness.ect_histogram f v.Fairness.v_tenant with
        | Some h when not (Histogram.is_empty h) ->
            let tenant = ("tenant", v.Fairness.v_tenant) in
            sample buf ect [ tenant; ("quantile", "0.5") ] (Histogram.p50 h);
            sample buf ect [ tenant; ("quantile", "0.99") ] (Histogram.p99 h);
            sample buf (ect ^ "_sum") [ tenant ] (Histogram.sum h);
            sample buf (ect ^ "_count") [ tenant ]
              (float_of_int (Histogram.count h))
        | Some _ | None -> ())
      views;
    let tenant_counter field name =
      let name = "nu_tenant_" ^ name ^ "_total" in
      family buf name "counter";
      List.iter
        (fun (v : Fairness.tenant_view) ->
          sample buf name
            [ ("tenant", v.Fairness.v_tenant) ]
            (float_of_int (field v)))
        views
    in
    tenant_counter (fun v -> v.Fairness.v_admitted) "admitted";
    tenant_counter (fun v -> v.Fairness.v_shed) "shed";
    tenant_counter (fun v -> v.Fairness.v_drained) "drained";
    tenant_counter (fun v -> v.Fairness.v_completed) "completed";
    tenant_counter (fun v -> v.Fairness.v_degraded) "degraded";
    family buf "nu_tenant_shed_ratio" "gauge";
    List.iter
      (fun (v : Fairness.tenant_view) ->
        sample buf "nu_tenant_shed_ratio"
          [ ("tenant", v.Fairness.v_tenant) ]
          v.Fairness.v_shed_ratio)
      views
  end;
  (match Fairness.jain_index f with
  | Some j ->
      family buf "nu_fairness_jain_index" "gauge";
      sample buf "nu_fairness_jain_index" [] j
  | None -> ());
  (match Fairness.window_jain_index f with
  | Some j ->
      family buf "nu_fairness_window_jain_index" "gauge";
      sample buf "nu_fairness_window_jain_index" [] j
  | None -> ());
  family buf "nu_fairness_windows_total" "counter";
  sample buf "nu_fairness_windows_total" []
    (float_of_int (Fairness.windows_completed f))

let render_slo buf s =
  (match (Slo.p99 s, Slo.p999 s) with
  | None, None -> ()
  | p99, p999 ->
      family buf "nu_slo_ect_seconds" "gauge";
      (match p99 with
      | Some v -> sample buf "nu_slo_ect_seconds" [ ("quantile", "0.99") ] v
      | None -> ());
      (match p999 with
      | Some v -> sample buf "nu_slo_ect_seconds" [ ("quantile", "0.999") ] v
      | None -> ()));
  family buf "nu_slo_queue_depth" "gauge";
  sample buf "nu_slo_queue_depth" [] (float_of_int (Slo.queue_depth s));
  family buf "nu_slo_engine_backlog" "gauge";
  sample buf "nu_slo_engine_backlog" [] (float_of_int (Slo.engine_backlog s));
  family buf "nu_slo_breaches_total" "counter";
  sample buf "nu_slo_breaches_total" [] (float_of_int (Slo.breach_count s));
  family buf "nu_slo_breaches_dropped_total" "counter";
  sample buf "nu_slo_breaches_dropped_total" []
    (float_of_int (Slo.breaches_dropped s))

let render_watch buf w =
  family buf "nu_alerts_total" "counter";
  List.iter
    (fun sev ->
      let v =
        Option.value ~default:0 (List.assoc_opt sev (Watch.by_severity w))
      in
      sample buf "nu_alerts_total" [ ("severity", sev) ] (float_of_int v))
    [ "info"; "warning"; "critical" ];
  let dets = Watch.by_detector w in
  if dets <> [] then begin
    family buf "nu_alerts_detector_total" "counter";
    List.iter
      (fun (det, v) ->
        sample buf "nu_alerts_detector_total"
          [ ("detector", det) ]
          (float_of_int v))
      dets
  end;
  family buf "nu_alerts_dropped_total" "counter";
  sample buf "nu_alerts_dropped_total" [] (float_of_int (Watch.dropped w));
  family buf "nu_health_state" "gauge";
  sample buf "nu_health_state"
    [ ("scope", "global") ]
    (float_of_int (Health.state_rank (Watch.global_state w)));
  let tenants = Watch.tenant_states w in
  if tenants <> [] then begin
    family buf "nu_tenant_health_state" "gauge";
    List.iter
      (fun (tenant, st) ->
        sample buf "nu_tenant_health_state"
          [ ("tenant", tenant) ]
          (float_of_int (Health.state_rank st)))
      tenants
  end

let render ?counters ?(histograms = []) ?fairness ?slo ?watch () =
  let buf = Buffer.create 4096 in
  (match counters with Some snap -> render_counters buf snap | None -> ());
  render_histograms buf histograms;
  (match fairness with Some f -> render_fairness buf f | None -> ());
  (match slo with Some s -> render_slo buf s | None -> ());
  (match watch with Some w -> render_watch buf w | None -> ());
  Buffer.add_string buf "# EOF\n";
  Buffer.contents buf

(* Rename alone makes the swap atomic but not durable: on power loss
   the directory entry can still point at nothing. Fsync the file
   before the rename and the directory after it (best-effort — not
   every filesystem hands out directory fds). *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      (try Unix.fsync fd with Unix.Unix_error _ -> ());
      Unix.close fd

let write_atomic ~dir ?(filename = "metrics.prom") content =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let tmp = Filename.concat dir ("." ^ filename ^ ".tmp") in
  let oc = open_out tmp in
  output_string oc content;
  flush oc;
  (try Unix.fsync (Unix.descr_of_out_channel oc) with Unix.Unix_error _ -> ());
  close_out oc;
  Sys.rename tmp (Filename.concat dir filename);
  fsync_dir dir

(* ------------------------------------------------------------------ *)
(* Validation: the tiny OpenMetrics parser used by the CI smoke job.   *)

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'

let is_name_char c = is_name_start c || (c >= '0' && c <= '9')

let parse_name line pos =
  let n = String.length line in
  if pos >= n || not (is_name_start line.[pos]) then None
  else begin
    let j = ref pos in
    while !j < n && is_name_char line.[!j] do
      incr j
    done;
    Some (String.sub line pos (!j - pos), !j)
  end

let parse_labels line pos =
  (* Called with line.[pos] = '{'. Returns the position after '}'. *)
  let n = String.length line in
  let rec label pos =
    match parse_name line pos with
    | None -> Error "bad label name"
    | Some (_, pos) ->
        if pos + 1 >= n || line.[pos] <> '=' || line.[pos + 1] <> '"' then
          Error "label value must be quoted"
        else begin
          let j = ref (pos + 2) in
          let closed = ref false in
          while (not !closed) && !j < n do
            if line.[!j] = '\\' then j := !j + 2
            else if line.[!j] = '"' then closed := true
            else incr j
          done;
          if not !closed then Error "unterminated label value"
          else begin
            let pos = !j + 1 in
            if pos < n && line.[pos] = ',' then label (pos + 1)
            else if pos < n && line.[pos] = '}' then Ok (pos + 1)
            else Error "expected ',' or '}' after label"
          end
        end
  in
  label (pos + 1)

let parse_value s =
  match s with
  | "+Inf" | "-Inf" | "NaN" -> true
  | _ -> ( match float_of_string_opt s with Some _ -> true | None -> false)

(* A sample's metric family: the name minus a histogram/summary/counter
   series suffix. *)
let family_of name =
  let strip suffix =
    let ls = String.length suffix and ln = String.length name in
    if ln > ls && String.sub name (ln - ls) ls = suffix then
      Some (String.sub name 0 (ln - ls))
    else None
  in
  List.filter_map strip [ "_total"; "_bucket"; "_sum"; "_count" ]

let validate text =
  let ( let* ) = Result.bind in
  let lines = String.split_on_char '\n' text in
  let declared = Hashtbl.create 32 in
  let rec go lineno saw_eof = function
    | [] ->
        if saw_eof then Ok ()
        else Error "missing terminating \"# EOF\" line"
    | line :: rest ->
        let err fmt =
          Printf.ksprintf (fun m -> Error (Printf.sprintf "line %d: %s" lineno m)) fmt
        in
        if saw_eof then
          if line = "" && rest = [] then Ok ()
          else err "content after \"# EOF\""
        else if line = "" then go (lineno + 1) saw_eof rest
        else if line = "# EOF" then go (lineno + 1) true rest
        else if String.length line > 0 && line.[0] = '#' then begin
          match String.split_on_char ' ' line with
          | "#" :: "TYPE" :: name :: [ kind ] ->
              if
                not
                  (List.mem kind
                     [ "counter"; "gauge"; "histogram"; "summary"; "unknown" ])
              then err "unknown metric type %S" kind
              else begin
                Hashtbl.replace declared name ();
                go (lineno + 1) saw_eof rest
              end
          | "#" :: ("HELP" | "UNIT") :: name :: _ when name <> "" ->
              go (lineno + 1) saw_eof rest
          | _ -> err "malformed comment line %S" line
        end
        else begin
          match parse_name line 0 with
          | None -> err "expected metric name"
          | Some (name, pos) ->
              let* pos =
                if pos < String.length line && line.[pos] = '{' then
                  Result.map_error
                    (fun m -> Printf.sprintf "line %d: %s" lineno m)
                    (parse_labels line pos)
                else Ok pos
              in
              let value =
                if pos < String.length line && line.[pos] = ' ' then
                  (* Value, optionally followed by a timestamp. *)
                  match
                    String.split_on_char ' '
                      (String.sub line (pos + 1) (String.length line - pos - 1))
                  with
                  | [ v ] | [ v; _ ] -> Some v
                  | _ -> None
                else None
              in
              let* () =
                match value with
                | Some v when parse_value v -> Ok ()
                | Some v ->
                    err "metric %s: unparseable value %S" name v
                | None -> err "metric %s: missing value" name
              in
              let known =
                Hashtbl.mem declared name
                || List.exists (Hashtbl.mem declared) (family_of name)
              in
              if not known then
                err "metric %s has no preceding # TYPE declaration" name
              else go (lineno + 1) saw_eof rest
        end
  in
  go 1 false lines
