(* Rolling-window SLO tracker: tail-ECT quantiles over a two-bucket
   rotating histogram pair (current + previous window, so a readout
   always covers between one and two windows of history), latest
   backlog gauges, and threshold breach events evaluated once per
   tick. *)

type breach = {
  b_tick : int;
  b_metric : string;
  b_value : float;
  b_threshold : float;
}

let max_retained_breaches = 256

type t = {
  window : int;
  sub_buckets : int;
  p99_target_s : float option;
  p999_target_s : float option;
  max_queue : int option;
  max_backlog : int option;
  mutable cur : Histogram.t;
  mutable prev : Histogram.t;
  mutable tick_in_window : int;
  mutable queue_depth : int;
  mutable backlog : int;
  mutable breaches_rev : breach list;  (* newest-first, bounded *)
  mutable retained : int;  (* List.length breaches_rev, kept O(1) *)
  mutable breach_total : int;
}

let create ?(window = 50) ?(sub_buckets = 64) ?p99_target_s ?p999_target_s
    ?max_queue ?max_backlog () =
  if window < 1 then invalid_arg "Slo.create: window < 1";
  {
    window;
    sub_buckets;
    p99_target_s;
    p999_target_s;
    max_queue;
    max_backlog;
    cur = Histogram.create ~sub_buckets ();
    prev = Histogram.create ~sub_buckets ();
    tick_in_window = 0;
    queue_depth = 0;
    backlog = 0;
    breaches_rev = [];
    retained = 0;
    breach_total = 0;
  }

let window_ticks t = t.window
let observe_ect t v = Histogram.record t.cur v

let observe_gauges t ~queue ~backlog =
  t.queue_depth <- queue;
  t.backlog <- backlog

let queue_depth t = t.queue_depth
let engine_backlog t = t.backlog
let rolling t = Histogram.merge t.prev t.cur

let quantile_opt t q =
  let h = rolling t in
  if Histogram.is_empty h then None else Some (Histogram.quantile h q)

let p99 t = quantile_opt t 0.99
let p999 t = quantile_opt t 0.999

let record_breach t ~tick ~metric ~value ~threshold =
  let b =
    { b_tick = tick; b_metric = metric; b_value = value; b_threshold = threshold }
  in
  t.breach_total <- t.breach_total + 1;
  t.breaches_rev <- b :: t.breaches_rev;
  t.retained <- t.retained + 1;
  if t.retained > max_retained_breaches then begin
    t.breaches_rev <-
      List.filteri (fun i _ -> i < max_retained_breaches) t.breaches_rev;
    t.retained <- max_retained_breaches
  end

let check t ~tick ~metric ~value = function
  | Some threshold when value > threshold ->
      record_breach t ~tick ~metric ~value ~threshold
  | Some _ | None -> ()

let on_tick t ~tick =
  (match p99 t with
  | Some v -> check t ~tick ~metric:"p99_ect_s" ~value:v t.p99_target_s
  | None -> ());
  (match p999 t with
  | Some v -> check t ~tick ~metric:"p999_ect_s" ~value:v t.p999_target_s
  | None -> ());
  check t ~tick ~metric:"queue_depth"
    ~value:(float_of_int t.queue_depth)
    (Option.map float_of_int t.max_queue);
  check t ~tick ~metric:"engine_backlog"
    ~value:(float_of_int t.backlog)
    (Option.map float_of_int t.max_backlog);
  t.tick_in_window <- t.tick_in_window + 1;
  if t.tick_in_window >= t.window then begin
    t.prev <- t.cur;
    t.cur <- Histogram.create ~sub_buckets:t.sub_buckets ();
    t.tick_in_window <- 0
  end

let breaches t = List.rev t.breaches_rev
let breach_count t = t.breach_total

(* Breaches evicted from the retained list: the cap used to drop them
   silently, with nothing in the report saying the list was partial. *)
let breaches_dropped t = t.breach_total - t.retained

let breach_to_json b =
  Json.Obj
    [
      ("tick", Json.Int b.b_tick);
      ("metric", Json.String b.b_metric);
      ("value", Json.Float b.b_value);
      ("threshold", Json.Float b.b_threshold);
    ]

let opt_float = function None -> Json.Null | Some f -> Json.Float f

let to_json t =
  Json.Obj
    [
      ("window_ticks", Json.Int t.window);
      ("p99_ect_s", opt_float (p99 t));
      ("p999_ect_s", opt_float (p999 t));
      ("queue_depth", Json.Int t.queue_depth);
      ("engine_backlog", Json.Int t.backlog);
      ("breach_total", Json.Int t.breach_total);
      ("breaches_dropped", Json.Int (breaches_dropped t));
      ("breaches", Json.List (List.map breach_to_json (breaches t)));
    ]
