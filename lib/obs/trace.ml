type value = Bool of bool | Int of int | Float of float | Str of string
type phase = Begin | End | Instant

type event = {
  phase : phase;
  name : string;
  ts_ns : int64;
  depth : int;
  attrs : (string * value) list;
}

type sink = { emit : event -> unit; flush : unit -> unit }

let clock = ref Monotonic_clock.now
let set_clock f = clock := f
let now_ns () = !clock ()

type span = {
  sp_name : string;
  sp_depth : int;  (* -1 marks the shared tracing-off token *)
  mutable sp_closed : bool;
}

let disabled_span = { sp_name = ""; sp_depth = -1; sp_closed = true }
let sink : sink option ref = ref None
let stack : span list ref = ref []

(* Worker domains see tracing as off: the sink and span stack are
   single-writer structures owned by the main domain. *)
let enabled () = Option.is_some !sink && not (Obs_domain.in_worker ())

let install s =
  (match !sink with Some old -> old.flush () | None -> ());
  stack := [];
  sink := Some s

let uninstall () =
  (match !sink with Some s -> s.flush () | None -> ());
  sink := None;
  stack := []

let span ?(attrs = []) name =
  match if Obs_domain.in_worker () then None else !sink with
  | None -> disabled_span
  | Some s ->
      let depth = List.length !stack in
      let sp = { sp_name = name; sp_depth = depth; sp_closed = false } in
      stack := sp :: !stack;
      s.emit { phase = Begin; name; ts_ns = now_ns (); depth; attrs };
      sp

let finish ?(attrs = []) sp =
  if sp.sp_depth >= 0 && not sp.sp_closed then
    match !sink with
    | None -> sp.sp_closed <- true (* sink removed mid-span *)
    | Some s -> (
        match !stack with
        | top :: rest when top == sp ->
            stack := rest;
            sp.sp_closed <- true;
            s.emit
              {
                phase = End;
                name = sp.sp_name;
                ts_ns = now_ns ();
                depth = sp.sp_depth;
                attrs;
              }
        | _ ->
            invalid_arg ("Trace.finish: non-LIFO close of span " ^ sp.sp_name))

(* Exceptional-path cleanup: pop and close every span above [sp] on the
   stack (children the raising function left open), then [sp] itself,
   emitting End events so the recorded trace stays a well-formed tree
   and later spans see an uncorrupted stack. *)
let unwind sp =
  if sp.sp_depth >= 0 && not sp.sp_closed then
    match !sink with
    | None -> sp.sp_closed <- true
    | Some s ->
        if List.memq sp !stack then begin
          let rec pop = function
            | [] -> []
            | top :: rest ->
                top.sp_closed <- true;
                s.emit
                  {
                    phase = End;
                    name = top.sp_name;
                    ts_ns = now_ns ();
                    depth = top.sp_depth;
                    attrs = [ ("unwound", Bool true) ];
                  };
                if top == sp then rest else pop rest
          in
          stack := pop !stack
        end
        else sp.sp_closed <- true (* sink reinstalled mid-span *)

let with_span ?attrs name f =
  match if Obs_domain.in_worker () then None else !sink with
  | None -> f ()
  | Some _ -> (
      let sp = span ?attrs name in
      match f () with
      | v ->
          if not sp.sp_closed then finish sp;
          v
      | exception e ->
          let bt = Printexc.get_raw_backtrace () in
          unwind sp;
          Printexc.raise_with_backtrace e bt)

let instant ?(attrs = []) name =
  match if Obs_domain.in_worker () then None else !sink with
  | None -> ()
  | Some s ->
      s.emit
        {
          phase = Instant;
          name;
          ts_ns = now_ns ();
          depth = List.length !stack;
          attrs;
        }

let memory () =
  let events = ref [] in
  ( {
      emit = (fun e -> events := e :: !events);
      flush = (fun () -> ());
    },
    fun () -> List.rev !events )
