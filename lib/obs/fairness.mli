(** Rolling per-tenant fairness metrics.

    The paper's evaluation judges scheduling on efficiency {e and}
    fairness; this module watches the serving layer's fairness live.
    Per tenant it keeps a cumulative ECT histogram (via {!Histogram}),
    admission accounting (admitted / shed / drained), and a
    current-window ECT histogram that rotates every [window] ticks —
    {!last_window} is the most recently completed window, so scrapers
    see a stable summary instead of a half-filled one.

    Fairness is summarised by Jain's index over per-tenant mean ECTs:
    [(Σx)² / (n·Σx²)], 1.0 when every tenant sees the same mean
    completion time, [1/n] when one tenant takes everything. Tenants
    with no completions yet are excluded; an all-zero vector counts as
    perfectly fair.

    Purely observational — nothing here feeds back into scheduling. *)

type t

val create : ?window:int -> ?sub_buckets:int -> unit -> t
(** [window] (default 50, minimum 1) is the rotation period in ticks;
    [sub_buckets] (default 64) configures the ECT histograms. *)

val window_ticks : t -> int
val windows_completed : t -> int

(** {2 Observations} *)

val observe_admit : t -> tenant:string -> unit
val observe_shed : t -> tenant:string -> unit
val observe_drain : t -> tenant:string -> unit

val observe_completion : t -> tenant:string -> ect_s:float -> degraded:bool -> unit
(** Record a completed request's ECT into the tenant's cumulative and
    current-window histograms. *)

val on_tick : t -> unit
(** Advance the window clock; every [window]-th call freezes the
    current window into {!last_window} and restarts it. *)

(** {2 Readouts} *)

type window_stat = { w_tenant : string; w_count : int; w_mean_ect_s : float }

val last_window : t -> window_stat list
(** Per-tenant stats of the last {e completed} window (tenant-sorted;
    tenants with no completions in that window omitted). Empty before
    the first rotation. *)

val jain_index : t -> float option
(** Jain's fairness index over cumulative per-tenant mean ECT. [None]
    until some tenant completes a request. *)

val window_jain_index : t -> float option
(** Jain's index over {!last_window} means. *)

type tenant_view = {
  v_tenant : string;
  v_admitted : int;
  v_shed : int;
  v_drained : int;
  v_completed : int;
  v_degraded : int;
  v_shed_ratio : float;  (** [shed / (admitted + shed)]; 0 when idle. *)
  v_mean_ect_s : float option;  (** [None] until a completion. *)
  v_p99_ect_s : float option;
}

val view : t -> tenant_view list
(** Cumulative per-tenant summary, tenant-sorted. *)

val tenant_names : t -> string list
(** Sorted. *)

val ect_histogram : t -> string -> Histogram.t option
(** Copy of a tenant's cumulative ECT histogram. *)

val to_json : t -> Json.t
