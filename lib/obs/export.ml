let value_to_json : Trace.value -> Json.t = function
  | Trace.Bool b -> Json.Bool b
  | Trace.Int i -> Json.Int i
  | Trace.Float f -> Json.Float f
  | Trace.Str s -> Json.String s

let attrs_to_json attrs =
  Json.Obj (List.map (fun (k, v) -> (k, value_to_json v)) attrs)

let phase_string = function
  | Trace.Begin -> "B"
  | Trace.End -> "E"
  | Trace.Instant -> "i"

let event_to_json (e : Trace.event) =
  Json.Obj
    [
      ("ph", Json.String (phase_string e.Trace.phase));
      ("name", Json.String e.Trace.name);
      ("ts_ns", Json.Int (Int64.to_int e.Trace.ts_ns));
      ("depth", Json.Int e.Trace.depth);
      ("args", attrs_to_json e.Trace.attrs);
    ]

let jsonl_of_events events =
  let buf = Buffer.create 4096 in
  List.iter
    (fun e ->
      Buffer.add_string buf (Json.to_string (event_to_json e));
      Buffer.add_char buf '\n')
    events;
  Buffer.contents buf

let jsonl_sink oc : Trace.sink =
  {
    Trace.emit =
      (fun e ->
        output_string oc (Json.to_string (event_to_json e));
        output_char oc '\n');
    flush = (fun () -> flush oc);
  }

(* Lifecycle instants stamped by [Lifecycle] carry a request id and a
   flow phase ("s" start / "t" step / "f" finish); rendered as Chrome
   flow events they draw arrows linking one request's stamps across the
   span tree. *)
let flow_of e =
  if e.Trace.name <> "lifecycle" then None
  else
    match
      ( List.assoc_opt "flow" e.Trace.attrs,
        List.assoc_opt "id" e.Trace.attrs )
    with
    | Some (Trace.Str ph), Some (Trace.Int id)
      when ph = "s" || ph = "t" || ph = "f" ->
        Some (ph, id)
    | _ -> None

let chrome_of_events ?(pid = 1) events =
  let t0 =
    match events with [] -> 0L | e :: _ -> e.Trace.ts_ns
  in
  let ts_us e =
    Int64.to_float (Int64.sub e.Trace.ts_ns t0) /. 1_000.0
  in
  let one e =
    let base =
      [
        ("name", Json.String e.Trace.name);
        ("ph", Json.String (phase_string e.Trace.phase));
        ("pid", Json.Int pid);
        ("tid", Json.Int 1);
        ("ts", Json.Float (ts_us e));
        ("args", attrs_to_json e.Trace.attrs);
      ]
    in
    match flow_of e with
    | Some (ph, id) ->
        let flow =
          [
            ("name", Json.String "request");
            ("cat", Json.String "lifecycle");
            ("ph", Json.String ph);
            ("id", Json.Int id);
            ("pid", Json.Int pid);
            ("tid", Json.Int 1);
            ("ts", Json.Float (ts_us e));
            ("args", attrs_to_json e.Trace.attrs);
          ]
        in
        (* Flow ends bind to the enclosing slice. *)
        if ph = "f" then Json.Obj (flow @ [ ("bp", Json.String "e") ])
        else Json.Obj flow
    | None -> (
        (* Instant events need a scope; "t" = thread. *)
        match e.Trace.phase with
        | Trace.Instant -> Json.Obj (base @ [ ("s", Json.String "t") ])
        | Trace.Begin | Trace.End -> Json.Obj base)
  in
  Json.Obj
    [
      ("traceEvents", Json.List (List.map one events));
      ("displayTimeUnit", Json.String "ms");
    ]

let write_chrome path events =
  Out_channel.with_open_text path (fun oc ->
      output_string oc (Json.to_string (chrome_of_events events));
      output_char oc '\n')
