(** Streaming change-point and trend detectors for the watchdog layer.

    All detectors are deterministic pure-state machines over the values
    fed to them: no wall clock, no RNG, no allocation beyond the fixed
    rings created at construction time. Feeding the same sequence of
    samples to two instances with the same configuration produces the
    same sequence of statuses bit for bit, which is what lets the
    watchdog replay a journaled observation stream and reproduce the
    live run's alerts exactly. *)

module Cusum : sig
  (** EWMA baseline + two-sided CUSUM change-point detector.

      The statistic is kept in sigma units and interpreted as a level,
      not an edge: [firing] stays true while the statistic exceeds the
      decision threshold and decays naturally as the EWMA baseline
      absorbs the shift. That level semantics is what the health state
      machine's consecutive-tick hysteresis counts over. *)

  type config = {
    alpha : float;  (** EWMA weight for the baseline and deviation. *)
    k_sigma : float;  (** slack, in sigma units, subtracted per step *)
    h_sigma : float;  (** decision threshold, in sigma units *)
    warmup : int;  (** samples consumed before the statistic arms *)
    rel_floor : float;  (** sigma floor as a fraction of |baseline| *)
    abs_floor : float;  (** absolute sigma floor *)
  }

  val default : config

  type direction = Up | Down

  type status = {
    firing : bool;  (** statistic currently above the threshold *)
    changed : bool;  (** rising edge: firing now, quiet last sample *)
    direction : direction option;  (** dominant side while firing *)
    score : float;  (** max of the two one-sided statistics, sigma units *)
    mean : float;  (** EWMA baseline before this sample *)
    sigma : float;  (** floored EWMA absolute deviation *)
  }

  type t

  val create : config -> t
  val observe : t -> float -> status
  val samples : t -> int
  val last : t -> status
end

module Slope : sig
  (** Ordinary-least-squares slope over a fixed-size ring of samples.
      [observe] returns the per-step slope once the ring is full. *)

  type t

  val create : window:int -> t
  val observe : t -> float -> float option
end

module Rate : sig
  (** Windowed sum of per-tick integer deltas (events per [window]
      ticks). Backs the WAL corrupt-frame and supervisor-restart
      detectors, which fire when the windowed sum exceeds a budget. *)

  type t

  val create : window:int -> t
  val observe : t -> int -> int
  val sum : t -> int
end
