(* Rolling per-tenant fairness metrics. Each tenant accumulates a
   cumulative ECT histogram plus a current-window histogram that is
   frozen into [last_window] and restarted every [window] ticks; Jain's
   index is computed over per-tenant mean ECTs. *)

type tenant = {
  t_name : string;
  ect : Histogram.t;  (* cumulative *)
  window_ect : Histogram.t;  (* current window, reset at rotation *)
  mutable admitted : int;
  mutable shed : int;
  mutable drained : int;
  mutable completed : int;
  mutable degraded : int;
}

type window_stat = { w_tenant : string; w_count : int; w_mean_ect_s : float }

type t = {
  window : int;
  sub_buckets : int;
  tenants : (string, tenant) Hashtbl.t;
  mutable tick_in_window : int;
  mutable windows : int;
  mutable last_window : window_stat list;  (* tenant-sorted *)
}

let create ?(window = 50) ?(sub_buckets = 64) () =
  if window < 1 then invalid_arg "Fairness.create: window < 1";
  {
    window;
    sub_buckets;
    tenants = Hashtbl.create 8;
    tick_in_window = 0;
    windows = 0;
    last_window = [];
  }

let window_ticks t = t.window
let windows_completed t = t.windows

let tenant t name =
  match Hashtbl.find_opt t.tenants name with
  | Some tn -> tn
  | None ->
      let tn =
        {
          t_name = name;
          ect = Histogram.create ~sub_buckets:t.sub_buckets ();
          window_ect = Histogram.create ~sub_buckets:t.sub_buckets ();
          admitted = 0;
          shed = 0;
          drained = 0;
          completed = 0;
          degraded = 0;
        }
      in
      Hashtbl.add t.tenants name tn;
      tn

let observe_admit t ~tenant:name =
  let tn = tenant t name in
  tn.admitted <- tn.admitted + 1

let observe_shed t ~tenant:name =
  let tn = tenant t name in
  tn.shed <- tn.shed + 1

let observe_drain t ~tenant:name =
  let tn = tenant t name in
  tn.drained <- tn.drained + 1

let observe_completion t ~tenant:name ~ect_s ~degraded =
  let tn = tenant t name in
  Histogram.record tn.ect ect_s;
  Histogram.record tn.window_ect ect_s;
  tn.completed <- tn.completed + 1;
  if degraded then tn.degraded <- tn.degraded + 1

let sorted_tenants t =
  Hashtbl.fold (fun _ tn acc -> tn :: acc) t.tenants []
  |> List.sort (fun a b -> compare a.t_name b.t_name)

let tenant_names t = List.map (fun tn -> tn.t_name) (sorted_tenants t)

let on_tick t =
  t.tick_in_window <- t.tick_in_window + 1;
  if t.tick_in_window >= t.window then begin
    t.last_window <-
      List.filter_map
        (fun tn ->
          if Histogram.is_empty tn.window_ect then None
          else
            Some
              {
                w_tenant = tn.t_name;
                w_count = Histogram.count tn.window_ect;
                w_mean_ect_s = Histogram.mean tn.window_ect;
              })
        (sorted_tenants t);
    Hashtbl.iter (fun _ tn -> Histogram.reset tn.window_ect) t.tenants;
    t.windows <- t.windows + 1;
    t.tick_in_window <- 0
  end

let last_window t = t.last_window

(* Jain's index (Sum x)^2 / (n * Sum x^2) over per-tenant values; 1 is
   perfect equality, 1/n is one tenant taking everything. All-zero
   values are defined as perfectly fair. *)
let jain_of = function
  | [] -> None
  | xs ->
      let n = float_of_int (List.length xs) in
      let s = List.fold_left ( +. ) 0.0 xs in
      let s2 = List.fold_left (fun acc x -> acc +. (x *. x)) 0.0 xs in
      if s2 = 0.0 then Some 1.0 else Some (s *. s /. (n *. s2))

let jain_index t =
  jain_of
    (List.filter_map
       (fun tn ->
         if Histogram.is_empty tn.ect then None else Some (Histogram.mean tn.ect))
       (sorted_tenants t))

let window_jain_index t =
  jain_of (List.map (fun w -> w.w_mean_ect_s) t.last_window)

type tenant_view = {
  v_tenant : string;
  v_admitted : int;
  v_shed : int;
  v_drained : int;
  v_completed : int;
  v_degraded : int;
  v_shed_ratio : float;
  v_mean_ect_s : float option;
  v_p99_ect_s : float option;
}

let view_of tn =
  let offered = tn.admitted + tn.shed in
  {
    v_tenant = tn.t_name;
    v_admitted = tn.admitted;
    v_shed = tn.shed;
    v_drained = tn.drained;
    v_completed = tn.completed;
    v_degraded = tn.degraded;
    v_shed_ratio =
      (if offered = 0 then 0.0
       else float_of_int tn.shed /. float_of_int offered);
    v_mean_ect_s =
      (if Histogram.is_empty tn.ect then None else Some (Histogram.mean tn.ect));
    v_p99_ect_s =
      (if Histogram.is_empty tn.ect then None else Some (Histogram.p99 tn.ect));
  }

let view t = List.map view_of (sorted_tenants t)

let ect_histogram t name =
  Option.map (fun tn -> Histogram.copy tn.ect) (Hashtbl.find_opt t.tenants name)

let opt_float = function None -> Json.Null | Some f -> Json.Float f

let to_json t =
  Json.Obj
    [
      ("window_ticks", Json.Int t.window);
      ("windows_completed", Json.Int t.windows);
      ("jain_index", opt_float (jain_index t));
      ("window_jain_index", opt_float (window_jain_index t));
      ( "tenants",
        Json.Obj
          (List.map
             (fun tn ->
               let v = view_of tn in
               ( tn.t_name,
                 Json.Obj
                   [
                     ("admitted", Json.Int v.v_admitted);
                     ("shed", Json.Int v.v_shed);
                     ("drained", Json.Int v.v_drained);
                     ("completed", Json.Int v.v_completed);
                     ("degraded", Json.Int v.v_degraded);
                     ("shed_ratio", Json.Float v.v_shed_ratio);
                     ("mean_ect_s", opt_float v.v_mean_ect_s);
                     ("p99_ect_s", opt_float v.v_p99_ect_s);
                     ("ect", Histogram.to_json tn.ect);
                   ] ))
             (sorted_tenants t)) );
      ( "last_window",
        Json.List
          (List.map
             (fun w ->
               Json.Obj
                 [
                   ("tenant", Json.String w.w_tenant);
                   ("count", Json.Int w.w_count);
                   ("mean_ect_s", Json.Float w.w_mean_ect_s);
                 ])
             t.last_window) );
    ]
