(** Trace exporters: JSONL span logs and Chrome [trace_event] files.

    Two machine-readable formats over {!Trace.event} streams:

    - JSONL — one JSON object per line carrying the raw event (phase,
      name, nanosecond timestamp, depth, attributes); trivially greppable
      and streamable.
    - Chrome trace-event JSON — the ["traceEvents"] duration-event format
      loadable in [chrome://tracing] and {{:https://ui.perfetto.dev}
      Perfetto}. Timestamps are rebased to the first event and converted
      to microseconds, as the format expects. *)

val event_to_json : Trace.event -> Json.t
(** Raw JSONL encoding of one event. *)

val jsonl_of_events : Trace.event list -> string
(** One event per line, each line a JSON object, trailing newline. *)

val jsonl_sink : out_channel -> Trace.sink
(** Streaming sink writing each event as a JSONL line; [flush] flushes
    the channel (the caller closes it). *)

val chrome_of_events : ?pid:int -> Trace.event list -> Json.t
(** [{"traceEvents": [...], "displayTimeUnit": "ms"}]. Span begin/end
    map to ["B"]/["E"] duration events, instants to ["i"]; attributes
    land in ["args"]. [pid] defaults to 1.

    Instants named ["lifecycle"] carrying an [id : Int] and a
    [flow : Str] attribute (["s"]/["t"]/["f"], as stamped by
    {!Lifecycle}) are rendered as Chrome {e flow events} instead —
    [cat "lifecycle"], name ["request"], shared [id] — so one request's
    stamps are drawn as linked arrows across the span tree. *)

val write_chrome : string -> Trace.event list -> unit
(** Write {!chrome_of_events} to the named file. *)
