(** Request-lifecycle tracker: per-request stage stamps.

    The serving layer stamps every request's path through the system —
    arrival, admission decision (admitted / shed / deferred), engine
    submission, per-round planning progress, abort/retry, completion or
    degradation — keyed by the request's event id. The tracker is a
    pure observer: stamping reads nothing the scheduler consults, so a
    run with a tracker attached makes bit-identical decisions.

    Entries land in three places:

    - a bounded in-memory ring of the most recent [capacity] entries
      ({!entries}), for reports and tests;
    - a JSONL stream ([path]), one {!entry_to_json} object per line,
      written as each stamp happens — the artifact that
      [experiments telemetry] summarises;
    - when {!Trace} has a sink installed, a ["lifecycle"] instant event
      per stamp carrying the request id, stage name and a flow phase
      ([s]tart / s[t]ep / [f]inish), which {!Export.chrome_of_events}
      turns into Chrome-trace flow arrows threaded through the engine's
      span tree.

    The id → tenant attribution table retains only in-flight requests:
    a terminal stage ({!Shed}, {!Completed}, {!Degraded}) retires its
    entry, so memory stays bounded by in-flight work plus the ring. *)

type stage =
  | Arrived  (** First seen by the controller. *)
  | Admitted  (** Accepted into the admission queue. *)
  | Shed of string  (** Rejected; reason ["capacity"]/["tenant-quota"]. *)
  | Deferred  (** Re-offered next tick (Block backpressure). *)
  | Submitted of { wait_ticks : int }
      (** Drained into the engine after [wait_ticks] queued ticks. *)
  | Planned of { round : int; co_scheduled : bool }
      (** Executed in service round [round]. *)
  | Aborted of { round : int }  (** Round [round] aborted by a fault. *)
  | Retry_scheduled of { ready_s : float }
      (** Re-queued; competes again at simulated instant [ready_s]. *)
  | Completed of { ect_s : float }
  | Degraded of { ect_s : float; failed_items : int }
      (** Terminal best-effort completion past the retry budget. *)

type entry = {
  id : int;  (** Request (event) id. *)
  tenant : string;  (** [""] when the stamp carried no attribution. *)
  tick : int;  (** Controller tick; [-1] outside a serving context. *)
  t_s : float;  (** Simulated instant. *)
  stage : stage;
}

val stage_name : stage -> string
val terminal : stage -> bool
(** Terminal stages ({!Shed}, {!Completed}, {!Degraded}) end a
    request's lifecycle and retire its attribution entry. *)

val entry_to_json : entry -> Json.t
val entry_of_json : Json.t -> (entry, string) result

type t

val create : ?path:string -> ?capacity:int -> unit -> t
(** [path] streams every stamp to a JSONL file (truncated on open;
    closed by {!close}). [capacity] (default 4096, minimum 1) bounds
    the in-memory ring. *)

val stamp : t -> id:int -> ?tenant:string -> tick:int -> t_s:float -> stage -> unit
(** Record one stage observation. A [tenant] argument (re)binds the
    id's attribution; later stamps without one inherit it. *)

val tenant_of : t -> int -> string option
(** Attribution of an in-flight request; [None] once terminal. *)

val stamped : t -> int
(** Total stamps recorded (including ones evicted from the ring). *)

val in_flight : t -> int
(** Requests stamped but not yet terminal. *)

val entries : t -> entry list
(** The retained ring, oldest first. *)

val to_jsonl : t -> string
(** The retained ring as JSONL. *)

val close : t -> unit
(** Flush and close the JSONL stream (idempotent). *)

type read_result = {
  read : entry list;  (** parsed entries, file order *)
  torn : (int * string) option;
      (** a trailing line that failed to parse: (line number, raw
          line). A crash mid-append tears at most the final line. *)
}

val read_jsonl : string -> (read_result, string) result
(** Parse a lifecycle JSONL file (blank lines skipped); the inverse of
    the streaming writer. A torn trailing line — the stream's writer
    died mid-append — is skipped and reported in [torn], mirroring the
    WAL torn-tail policy; a malformed line anywhere else is still an
    [Error]. *)
