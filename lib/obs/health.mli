(** Hysteretic health state machine: [Ok -> Warn -> Critical ->
    Recovering -> Ok].

    Driven once per tick with a boolean "any detector firing" signal.
    Entry and exit both require sustained evidence (consecutive firing
    ticks to escalate, consecutive quiet ticks to de-escalate), so a
    signal oscillating at a detector threshold cannot flap the state.
    A detector firing during [Recovering] relapses straight back to
    [Critical]. All counters reset on every transition. *)

type state = Ok | Warn | Critical | Recovering

type config = {
  warn_after : int;  (** consecutive firing ticks: Ok -> Warn *)
  crit_after : int;  (** consecutive firing ticks: Warn -> Critical *)
  clear_after : int;  (** consecutive quiet ticks: Warn -> Ok,
                          Critical -> Recovering *)
  recover_after : int;  (** further quiet ticks: Recovering -> Ok *)
}

val default : config

type t

val create : config -> t
val state : t -> state

val observe : t -> firing:bool -> state option
(** Advance one tick. Returns [Some s] iff the machine transitioned
    into state [s] on this tick. *)

val state_name : state -> string
val state_rank : state -> int
(** 0 = Ok, 1 = Warn, 2 = Critical, 3 = Recovering; used for the
    [nu_health_state] gauge. *)

val state_of_name : string -> state option
