(* Streaming detectors: EWMA+CUSUM change-point, OLS slope, windowed
   rate. Deterministic pure-state machines — see detector.mli. *)

module Cusum = struct
  type config = {
    alpha : float;
    k_sigma : float;
    h_sigma : float;
    warmup : int;
    rel_floor : float;
    abs_floor : float;
  }

  let default =
    {
      alpha = 0.2;
      k_sigma = 0.5;
      h_sigma = 5.0;
      warmup = 10;
      rel_floor = 0.05;
      abs_floor = 1e-9;
    }

  type direction = Up | Down

  type status = {
    firing : bool;
    changed : bool;
    direction : direction option;
    score : float;
    mean : float;
    sigma : float;
  }

  type t = {
    cfg : config;
    mutable mean : float;
    mutable dev : float; (* EWMA of |x - mean|, the sigma proxy *)
    mutable s_pos : float; (* one-sided statistics, sigma units *)
    mutable s_neg : float;
    mutable n : int;
    mutable st : status;
  }

  let quiet =
    {
      firing = false;
      changed = false;
      direction = None;
      score = 0.0;
      mean = 0.0;
      sigma = 0.0;
    }

  let create cfg =
    { cfg; mean = 0.0; dev = 0.0; s_pos = 0.0; s_neg = 0.0; n = 0; st = quiet }

  let sigma_of t =
    let floor_rel = t.cfg.rel_floor *. Float.abs t.mean in
    Float.max t.cfg.abs_floor (Float.max floor_rel t.dev)

  let observe t x =
    if t.n = 0 then begin
      (* Seed the baseline on the first sample so warmup measures real
         deviations instead of the distance from zero. *)
      t.mean <- x;
      t.dev <- 0.0
    end;
    let was_firing = t.st.firing in
    let sigma = sigma_of t in
    let mean = t.mean in
    let z = (x -. mean) /. sigma in
    if t.n >= t.cfg.warmup then begin
      (* Capped so a long excursion cannot take unboundedly long to
         decay once the baseline catches up. *)
      let cap = 2.0 *. t.cfg.h_sigma in
      t.s_pos <- Float.min cap (Float.max 0.0 (t.s_pos +. z -. t.cfg.k_sigma));
      t.s_neg <- Float.min cap (Float.max 0.0 (t.s_neg -. z -. t.cfg.k_sigma))
    end;
    let score = Float.max t.s_pos t.s_neg in
    let firing = score > t.cfg.h_sigma in
    let direction =
      if not firing then None
      else if t.s_pos >= t.s_neg then Some Up
      else Some Down
    in
    let a = t.cfg.alpha in
    t.dev <- ((1.0 -. a) *. t.dev) +. (a *. Float.abs (x -. mean));
    t.mean <- ((1.0 -. a) *. mean) +. (a *. x);
    t.n <- t.n + 1;
    let st =
      { firing; changed = firing && not was_firing; direction; score; mean; sigma }
    in
    t.st <- st;
    st

  let samples t = t.n
  let last t = t.st
end

module Slope = struct
  type t = {
    ring : float array;
    mutable idx : int;
    mutable count : int;
  }

  let create ~window =
    let window = max 2 window in
    { ring = Array.make window 0.0; idx = 0; count = 0 }

  let observe t x =
    let w = Array.length t.ring in
    t.ring.(t.idx) <- x;
    t.idx <- (t.idx + 1) mod w;
    if t.count < w then t.count <- t.count + 1;
    if t.count < w then None
    else begin
      (* Chronological order starts at idx (oldest slot after the
         wrap). x_i = 0..w-1, closed-form OLS slope. *)
      let n = float_of_int w in
      let sx = n *. (n -. 1.0) /. 2.0 in
      let sxx = n *. (n -. 1.0) *. ((2.0 *. n) -. 1.0) /. 6.0 in
      let sy = ref 0.0 and sxy = ref 0.0 in
      for i = 0 to w - 1 do
        let y = t.ring.((t.idx + i) mod w) in
        sy := !sy +. y;
        sxy := !sxy +. (float_of_int i *. y)
      done;
      let denom = (n *. sxx) -. (sx *. sx) in
      if denom = 0.0 then Some 0.0
      else Some (((n *. !sxy) -. (sx *. !sy)) /. denom)
    end
end

module Rate = struct
  type t = {
    ring : int array;
    mutable idx : int;
    mutable total : int;
  }

  let create ~window =
    let window = max 1 window in
    { ring = Array.make window 0; idx = 0; total = 0 }

  let observe t d =
    t.total <- t.total - t.ring.(t.idx) + d;
    t.ring.(t.idx) <- d;
    t.idx <- (t.idx + 1) mod Array.length t.ring;
    t.total

  let sum t = t.total
end
