(* nu_watch: deterministic streaming watchdog — see watch.mli.

   Layout of the journal directory:
     watch.jsonl   header line {"nu_watch":1,"config":{...}} then one
                   obs object per tick, appended as ticks close
     alerts.jsonl  one alert object per line, appended as emitted

   Resume contract: the first ingest of a run at tick K > 0 replays the
   journaled observations below K through the normal ingest path into
   freshly truncated journals, so the on-disk files and the running
   digest end up exactly as an uninterrupted run's would. *)

type severity = Info | Warning | Critical

type config = {
  window : int;
  ect_cusum : Detector.Cusum.config;
  queue_cusum : Detector.Cusum.config;
  tenant_cusum : Detector.Cusum.config;
  slope_window : int;
  max_backlog_slope : float;
  jain_min : float;
  jain_windows : int;
  max_corrupt_per_window : int;
  max_restarts_per_window : int;
  health : Health.config;
  ring_capacity : int;
  dir : string option;
}

let default_config =
  {
    window = 20;
    ect_cusum = Detector.Cusum.default;
    queue_cusum = Detector.Cusum.default;
    tenant_cusum = Detector.Cusum.default;
    slope_window = 20;
    max_backlog_slope = 0.5;
    jain_min = 0.6;
    jain_windows = 2;
    max_corrupt_per_window = 0;
    max_restarts_per_window = 0;
    health = Health.default;
    ring_capacity = 512;
    dir = None;
  }

type alert = {
  a_tick : int;
  a_scope : string;
  a_detector : string;
  a_severity : severity;
  a_state : Health.state;
  a_evidence : Json.t;
}

type obs = {
  o_tick : int;
  o_queue : int;
  o_backlog : int;
  o_ects : (string * float) list;
  o_corrupt_d : int;
  o_restarts_d : int;
}

let severity_name = function
  | Info -> "info"
  | Warning -> "warning"
  | Critical -> "critical"

let severity_of_name = function
  | "info" -> Some Info
  | "warning" -> Some Warning
  | "critical" -> Some Critical
  | _ -> None

(* Per-tenant detector scope. *)
type tstate = {
  mutable t_cur : Histogram.t;
  mutable t_prev : Histogram.t;
  t_cusum : Detector.Cusum.t;
  t_health : Health.t;
  mutable t_last_detector : string;
  mutable t_timeline : (int * Health.state) list; (* newest-first *)
}

type t = {
  cfg : config;
  mutable pending_rev : (string * float) list; (* live tick accumulation *)
  (* global detectors *)
  mutable g_cur : Histogram.t;
  mutable g_prev : Histogram.t;
  g_ect : Detector.Cusum.t;
  g_queue : Detector.Cusum.t;
  g_slope : Detector.Slope.t;
  g_corrupt : Detector.Rate.t;
  g_restarts : Detector.Rate.t;
  mutable tick_in_window : int;
  mutable jain_run : int; (* consecutive collapsed windows *)
  mutable jain_firing : bool; (* level, held between rotations *)
  mutable last_jain : float option;
  g_health : Health.t;
  mutable g_timeline : (int * Health.state) list; (* newest-first *)
  mutable g_last_detector : string;
  tenants : (string, tstate) Hashtbl.t;
  (* alerts *)
  ring : alert Queue.t;
  mutable alert_total : int;
  mutable critical_total : int;
  mutable dropped : int;
  mutable digest : int64;
  by_detector : (string, int) Hashtbl.t;
  by_severity : (string, int) Hashtbl.t;
  mutable first_breach : int option;
  mutable last_breach : int option;
  (* journaling *)
  mutable started : bool;
  mutable obs_oc : out_channel option;
  mutable alert_oc : out_channel option;
}

let create cfg =
  let sub_buckets = 64 in
  {
    cfg;
    pending_rev = [];
    g_cur = Histogram.create ~sub_buckets ();
    g_prev = Histogram.create ~sub_buckets ();
    g_ect = Detector.Cusum.create cfg.ect_cusum;
    g_queue = Detector.Cusum.create cfg.queue_cusum;
    g_slope = Detector.Slope.create ~window:cfg.slope_window;
    g_corrupt = Detector.Rate.create ~window:cfg.window;
    g_restarts = Detector.Rate.create ~window:cfg.window;
    tick_in_window = 0;
    jain_run = 0;
    jain_firing = false;
    last_jain = None;
    g_health = Health.create cfg.health;
    g_timeline = [];
    g_last_detector = "none";
    tenants = Hashtbl.create 16;
    ring = Queue.create ();
    alert_total = 0;
    critical_total = 0;
    dropped = 0;
    digest = 0xcbf29ce484222325L;
    by_detector = Hashtbl.create 8;
    by_severity = Hashtbl.create 4;
    first_breach = None;
    last_breach = None;
    started = false;
    obs_oc = None;
    alert_oc = None;
  }

(* ------------------------------------------------------------------ *)
(* FNV-1a (same constants as Codec.fnv64_hex; nu_obs cannot depend on
   nu_serve, so the fold is reimplemented here) *)

let fnv_prime = 0x100000001b3L

let fnv_fold acc s =
  let h = ref acc in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) fnv_prime)
    s;
  !h

let fnv_hex h = Printf.sprintf "%016Lx" h

(* ------------------------------------------------------------------ *)
(* JSON codecs *)

let pairs_of_counts tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let alert_to_json a =
  Json.Obj
    [
      ("tick", Json.Int a.a_tick);
      ("scope", Json.String a.a_scope);
      ("detector", Json.String a.a_detector);
      ("severity", Json.String (severity_name a.a_severity));
      ("state", Json.String (Health.state_name a.a_state));
      ("evidence", a.a_evidence);
    ]

let obs_to_json o =
  Json.Obj
    [
      ("tick", Json.Int o.o_tick);
      ("queue", Json.Int o.o_queue);
      ("backlog", Json.Int o.o_backlog);
      ("corrupt", Json.Int o.o_corrupt_d);
      ("restarts", Json.Int o.o_restarts_d);
      ( "ects",
        Json.List
          (List.map
             (fun (tn, v) -> Json.List [ Json.String tn; Json.Float v ])
             o.o_ects) );
    ]

let obs_of_json j =
  let ( let* ) = Result.bind in
  let int k =
    match Json.member k j with
    | Some (Json.Int i) -> Ok i
    | _ -> Error (Printf.sprintf "watch obs: missing int %S" k)
  in
  let* o_tick = int "tick" in
  let* o_queue = int "queue" in
  let* o_backlog = int "backlog" in
  let* o_corrupt_d = int "corrupt" in
  let* o_restarts_d = int "restarts" in
  let* o_ects =
    match Json.member "ects" j with
    | Some (Json.List l) ->
        List.fold_left
          (fun acc e ->
            let* acc = acc in
            match e with
            | Json.List [ Json.String tn; Json.Float v ] -> Ok ((tn, v) :: acc)
            | Json.List [ Json.String tn; Json.Int v ] ->
                Ok ((tn, float_of_int v) :: acc)
            | _ -> Error "watch obs: malformed ects pair")
          (Ok []) l
        |> Result.map List.rev
    | _ -> Error "watch obs: missing list \"ects\""
  in
  Ok { o_tick; o_queue; o_backlog; o_ects; o_corrupt_d; o_restarts_d }

let cusum_to_json (c : Detector.Cusum.config) =
  Json.Obj
    [
      ("alpha", Json.Float c.alpha);
      ("k_sigma", Json.Float c.k_sigma);
      ("h_sigma", Json.Float c.h_sigma);
      ("warmup", Json.Int c.warmup);
      ("rel_floor", Json.Float c.rel_floor);
      ("abs_floor", Json.Float c.abs_floor);
    ]

let cusum_of_json j =
  let ( let* ) = Result.bind in
  let num k =
    match Json.member k j with
    | Some (Json.Float f) -> Ok f
    | Some (Json.Int i) -> Ok (float_of_int i)
    | _ -> Error (Printf.sprintf "watch config: missing number %S" k)
  in
  let int k =
    match Json.member k j with
    | Some (Json.Int i) -> Ok i
    | _ -> Error (Printf.sprintf "watch config: missing int %S" k)
  in
  let* alpha = num "alpha" in
  let* k_sigma = num "k_sigma" in
  let* h_sigma = num "h_sigma" in
  let* warmup = int "warmup" in
  let* rel_floor = num "rel_floor" in
  let* abs_floor = num "abs_floor" in
  Ok { Detector.Cusum.alpha; k_sigma; h_sigma; warmup; rel_floor; abs_floor }

let config_to_json c =
  Json.Obj
    [
      ("window", Json.Int c.window);
      ("ect_cusum", cusum_to_json c.ect_cusum);
      ("queue_cusum", cusum_to_json c.queue_cusum);
      ("tenant_cusum", cusum_to_json c.tenant_cusum);
      ("slope_window", Json.Int c.slope_window);
      ("max_backlog_slope", Json.Float c.max_backlog_slope);
      ("jain_min", Json.Float c.jain_min);
      ("jain_windows", Json.Int c.jain_windows);
      ("max_corrupt_per_window", Json.Int c.max_corrupt_per_window);
      ("max_restarts_per_window", Json.Int c.max_restarts_per_window);
      ("warn_after", Json.Int c.health.Health.warn_after);
      ("crit_after", Json.Int c.health.Health.crit_after);
      ("clear_after", Json.Int c.health.Health.clear_after);
      ("recover_after", Json.Int c.health.Health.recover_after);
      ("ring_capacity", Json.Int c.ring_capacity);
    ]

let config_of_json j =
  let ( let* ) = Result.bind in
  let int k =
    match Json.member k j with
    | Some (Json.Int i) -> Ok i
    | _ -> Error (Printf.sprintf "watch config: missing int %S" k)
  in
  let num k =
    match Json.member k j with
    | Some (Json.Float f) -> Ok f
    | Some (Json.Int i) -> Ok (float_of_int i)
    | _ -> Error (Printf.sprintf "watch config: missing number %S" k)
  in
  let obj k =
    match Json.member k j with
    | Some o -> Ok o
    | None -> Error (Printf.sprintf "watch config: missing object %S" k)
  in
  let* window = int "window" in
  let* ect_cusum = Result.bind (obj "ect_cusum") cusum_of_json in
  let* queue_cusum = Result.bind (obj "queue_cusum") cusum_of_json in
  let* tenant_cusum = Result.bind (obj "tenant_cusum") cusum_of_json in
  let* slope_window = int "slope_window" in
  let* max_backlog_slope = num "max_backlog_slope" in
  let* jain_min = num "jain_min" in
  let* jain_windows = int "jain_windows" in
  let* max_corrupt_per_window = int "max_corrupt_per_window" in
  let* max_restarts_per_window = int "max_restarts_per_window" in
  let* warn_after = int "warn_after" in
  let* crit_after = int "crit_after" in
  let* clear_after = int "clear_after" in
  let* recover_after = int "recover_after" in
  let* ring_capacity = int "ring_capacity" in
  Ok
    {
      window;
      ect_cusum;
      queue_cusum;
      tenant_cusum;
      slope_window;
      max_backlog_slope;
      jain_min;
      jain_windows;
      max_corrupt_per_window;
      max_restarts_per_window;
      health = { Health.warn_after; crit_after; clear_after; recover_after };
      ring_capacity;
      dir = None;
    }

(* ------------------------------------------------------------------ *)
(* Journaling *)

let obs_path dir = Filename.concat dir "watch.jsonl"
let alerts_path dir = Filename.concat dir "alerts.jsonl"

let write_line oc j =
  output_string oc (Json.to_string j);
  output_char oc '\n';
  flush oc

let open_fresh t dir =
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  let obs_oc = open_out (obs_path dir) in
  write_line obs_oc
    (Json.Obj [ ("nu_watch", Json.Int 1); ("config", config_to_json t.cfg) ]);
  t.obs_oc <- Some obs_oc;
  t.alert_oc <- Some (open_out (alerts_path dir))

let close t =
  let shut oc =
    flush oc;
    close_out oc
  in
  Option.iter shut t.obs_oc;
  Option.iter shut t.alert_oc;
  t.obs_oc <- None;
  t.alert_oc <- None

(* ------------------------------------------------------------------ *)
(* Alert emission *)

let bump tbl k =
  Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k))

let emit t a =
  let line = Json.to_string (alert_to_json a) in
  t.digest <- fnv_fold (fnv_fold t.digest line) "\n";
  t.alert_total <- t.alert_total + 1;
  if a.a_severity = Critical then t.critical_total <- t.critical_total + 1;
  bump t.by_detector a.a_detector;
  bump t.by_severity (severity_name a.a_severity);
  (match a.a_severity with
  | Warning | Critical ->
      if t.first_breach = None then t.first_breach <- Some a.a_tick;
      t.last_breach <- Some a.a_tick
  | Info -> ());
  Queue.push a t.ring;
  if Queue.length t.ring > t.cfg.ring_capacity then begin
    ignore (Queue.pop t.ring);
    t.dropped <- t.dropped + 1
  end;
  match t.alert_oc with
  | Some oc ->
      output_string oc line;
      output_char oc '\n';
      flush oc
  | None -> ()

let severity_of_entry = function
  | Health.Warn -> Warning
  | Health.Critical -> Critical
  | Health.Ok | Health.Recovering -> Info

(* ------------------------------------------------------------------ *)
(* Evaluation *)

let jain_of means =
  match means with
  | [] -> None
  | _ ->
      let n = float_of_int (List.length means) in
      let s = List.fold_left ( +. ) 0.0 means in
      let s2 = List.fold_left (fun acc x -> acc +. (x *. x)) 0.0 means in
      if s2 = 0.0 then None else Some (s *. s /. (n *. s2))

let sorted_tenants t =
  Hashtbl.fold (fun name ts acc -> (name, ts) :: acc) t.tenants []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let tenant_state t name =
  match Hashtbl.find_opt t.tenants name with
  | Some ts -> ts
  | None ->
      let sub_buckets = 64 in
      let ts =
        {
          t_cur = Histogram.create ~sub_buckets ();
          t_prev = Histogram.create ~sub_buckets ();
          t_cusum = Detector.Cusum.create t.cfg.tenant_cusum;
          t_health = Health.create t.cfg.health;
          t_last_detector = "tenant_ect_cusum";
          t_timeline = [];
        }
      in
      Hashtbl.replace t.tenants name ts;
      ts

let rolling_p99 prev cur =
  let h = Histogram.merge prev cur in
  if Histogram.is_empty h then None else Some (Histogram.quantile h 0.99)

let opt_float = function None -> Json.Null | Some f -> Json.Float f

let eval t o =
  (* 1. Fold the tick's completions into the rolling windows. *)
  List.iter
    (fun (tn, v) ->
      if Float.is_finite v && v >= 0.0 then begin
        Histogram.record t.g_cur v;
        Histogram.record (tenant_state t tn).t_cur v
      end)
    o.o_ects;
  (* 2. Global detectors over the pre-rotation windows. *)
  let ect_st =
    match rolling_p99 t.g_prev t.g_cur with
    | Some p -> Detector.Cusum.observe t.g_ect p
    | None -> Detector.Cusum.last t.g_ect
  in
  let queue_st = Detector.Cusum.observe t.g_queue (float_of_int o.o_queue) in
  let slope_v = Detector.Slope.observe t.g_slope (float_of_int o.o_backlog) in
  let slope_firing =
    match slope_v with Some s -> s > t.cfg.max_backlog_slope | None -> false
  in
  let corrupt_w = Detector.Rate.observe t.g_corrupt o.o_corrupt_d in
  let corrupt_firing = corrupt_w > t.cfg.max_corrupt_per_window in
  let restarts_w = Detector.Rate.observe t.g_restarts o.o_restarts_d in
  let restarts_firing = restarts_w > t.cfg.max_restarts_per_window in
  (* 3. Per-tenant CUSUM over the pre-rotation windows, sorted order. *)
  let tenant_stats =
    List.map
      (fun (name, ts) ->
        match rolling_p99 ts.t_prev ts.t_cur with
        | Some p -> (name, ts, Some (Detector.Cusum.observe ts.t_cusum p))
        | None -> (name, ts, None))
      (sorted_tenants t)
  in
  (* 4. Fairness window: evaluate and rotate every window-th tick. *)
  t.tick_in_window <- t.tick_in_window + 1;
  if t.tick_in_window >= t.cfg.window then begin
    let means =
      List.filter_map
        (fun (_, ts, _) ->
          if Histogram.is_empty ts.t_cur then None
          else Some (Histogram.mean ts.t_cur))
        tenant_stats
    in
    (match if List.length means >= 2 then jain_of means else None with
    | Some j ->
        t.last_jain <- Some j;
        if j < t.cfg.jain_min then t.jain_run <- t.jain_run + 1
        else t.jain_run <- 0
    | None -> t.jain_run <- 0);
    t.jain_firing <- t.jain_run >= t.cfg.jain_windows;
    t.g_prev <- t.g_cur;
    t.g_cur <- Histogram.create ~sub_buckets:64 ();
    List.iter
      (fun (_, ts, _) ->
        ts.t_prev <- ts.t_cur;
        ts.t_cur <- Histogram.create ~sub_buckets:64 ())
      tenant_stats;
    t.tick_in_window <- 0
  end;
  (* 5. Change-point Info alerts on CUSUM rising edges. *)
  let evidence extra =
    Json.Obj
      ([
         ("queue", Json.Int o.o_queue);
         ("backlog", Json.Int o.o_backlog);
         ("jain", opt_float t.last_jain);
         ("corrupt_w", Json.Int corrupt_w);
         ("restarts_w", Json.Int restarts_w);
       ]
      @ extra)
  in
  let cusum_evidence (st : Detector.Cusum.status) =
    [
      ("score", Json.Float st.score);
      ("mean", Json.Float st.mean);
      ("sigma", Json.Float st.sigma);
    ]
  in
  let edge name (st : Detector.Cusum.status) scope state =
    if st.changed then
      emit t
        {
          a_tick = o.o_tick;
          a_scope = scope;
          a_detector = name;
          a_severity = Info;
          a_state = state;
          a_evidence = evidence (cusum_evidence st);
        }
  in
  edge "ect_cusum" ect_st "global" (Health.state t.g_health);
  edge "queue_cusum" queue_st "global" (Health.state t.g_health);
  List.iter
    (fun (name, ts, st) ->
      match st with
      | Some st -> edge "tenant_ect_cusum" st name (Health.state ts.t_health)
      | None -> ())
    tenant_stats;
  (* 6. Global health. *)
  let firing_by_detector =
    [
      ("ect_cusum", ect_st.Detector.Cusum.firing);
      ("queue_cusum", queue_st.Detector.Cusum.firing);
      ("backlog_slope", slope_firing);
      ("jain_collapse", t.jain_firing);
      ("wal_corrupt", corrupt_firing);
      ("supervisor_restarts", restarts_firing);
    ]
  in
  let g_firing = List.exists snd firing_by_detector in
  (match List.find_opt snd firing_by_detector with
  | Some (name, _) -> t.g_last_detector <- name
  | None -> ());
  (match Health.observe t.g_health ~firing:g_firing with
  | Some st ->
      t.g_timeline <- (o.o_tick, st) :: t.g_timeline;
      emit t
        {
          a_tick = o.o_tick;
          a_scope = "global";
          a_detector = t.g_last_detector;
          a_severity = severity_of_entry st;
          a_state = st;
          a_evidence =
            evidence
              [
                ("p99_ect_s", opt_float (rolling_p99 t.g_prev t.g_cur));
                ("ect_score", Json.Float ect_st.Detector.Cusum.score);
                ("queue_score", Json.Float queue_st.Detector.Cusum.score);
                ("slope", opt_float slope_v);
              ];
        }
  | None -> ());
  (* 7. Per-tenant health, sorted order. *)
  List.iter
    (fun (name, ts, st) ->
      let firing =
        match st with
        | Some st -> st.Detector.Cusum.firing
        | None -> false
      in
      match Health.observe ts.t_health ~firing with
      | Some hs ->
          ts.t_timeline <- (o.o_tick, hs) :: ts.t_timeline;
          let extra =
            match st with Some st -> cusum_evidence st | None -> []
          in
          emit t
            {
              a_tick = o.o_tick;
              a_scope = name;
              a_detector = ts.t_last_detector;
              a_severity = severity_of_entry hs;
              a_state = hs;
              a_evidence = evidence extra;
            }
      | None -> ())
    tenant_stats

(* ------------------------------------------------------------------ *)
(* Journal reading (tolerant of a torn trailing line) *)

type journal = {
  j_config : config option;
  j_obs : obs list;
  j_torn : int option;
}

let read_lines path =
  match In_channel.with_open_text path In_channel.input_lines with
  | exception Sys_error m -> Error m
  | lines -> Ok lines

(* Parse numbered non-blank lines with [parse]; a parse failure on the
   LAST non-blank line is reported as torn, anywhere else it is an
   error. Shared by the watch journal, the alert digest recompute and
   Lifecycle.read_jsonl's tolerance policy. *)
let parse_tolerant path parse lines =
  let numbered =
    List.mapi (fun i l -> (i + 1, l)) lines
    |> List.filter (fun (_, l) -> String.trim l <> "")
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc, None)
    | [ (n, line) ] -> (
        match parse line with
        | Ok v -> Ok (List.rev (v :: acc), None)
        | Error _ -> Ok (List.rev acc, Some n))
    | (n, line) :: rest -> (
        match parse line with
        | Ok v -> go (v :: acc) rest
        | Error m -> Error (Printf.sprintf "%s:%d: %s" path n m))
  in
  go [] numbered

let read_journal path =
  let ( let* ) = Result.bind in
  let* lines = read_lines path in
  let parse line =
    Result.bind (Json.of_string line) (fun j -> Ok (line, j))
  in
  let* parsed, torn = parse_tolerant path parse lines in
  match parsed with
  | [] -> Ok { j_config = None; j_obs = []; j_torn = torn }
  | (_, first) :: rest_js ->
      let cfg, obs_js =
        match Json.member "nu_watch" first with
        | Some _ -> (
            match Json.member "config" first with
            | Some cj -> (Result.to_option (config_of_json cj), rest_js)
            | None -> (None, rest_js))
        | None -> (None, (("", first) :: rest_js))
      in
      let* obs =
        List.fold_left
          (fun acc (_, j) ->
            let* acc = acc in
            let* o = obs_of_json j in
            Ok (o :: acc))
          (Ok []) obs_js
        |> Result.map List.rev
      in
      Ok { j_config = cfg; j_obs = obs; j_torn = torn }

let read_alerts_digest path =
  let ( let* ) = Result.bind in
  let* lines = read_lines path in
  let parse line = Result.map (fun _ -> line) (Json.of_string line) in
  let* ok_lines, _torn = parse_tolerant path parse lines in
  let digest =
    List.fold_left
      (fun acc line -> fnv_fold (fnv_fold acc line) "\n")
      0xcbf29ce484222325L ok_lines
  in
  Ok (fnv_hex digest, List.length ok_lines)

(* ------------------------------------------------------------------ *)
(* Ingest (with resume-from-journal) *)

let journal_obs t o =
  match t.obs_oc with Some oc -> write_line oc (obs_to_json o) | None -> ()

let ingest_started t o =
  journal_obs t o;
  eval t o

let ingest t o =
  if not t.started then begin
    t.started <- true;
    match t.cfg.dir with
    | Some dir when o.o_tick > 0 && Sys.file_exists (obs_path dir) ->
        (* Restore-and-replay run: rebuild detector state from the
           journaled prefix below the resume tick, re-journaling it
           into freshly truncated files so the on-disk artifacts and
           the alert digest match an uninterrupted run's. *)
        let prefix =
          match read_journal (obs_path dir) with
          | Ok j -> List.filter (fun p -> p.o_tick < o.o_tick) j.j_obs
          | Error _ -> []
        in
        open_fresh t dir;
        List.iter (ingest_started t) prefix
    | Some dir -> open_fresh t dir
    | None -> ()
  end;
  ingest_started t o

let observe_ect t ~tenant ~ect_s = t.pending_rev <- (tenant, ect_s) :: t.pending_rev

let on_tick t ~tick ~queue ~backlog ~corrupt_d ~restarts_d =
  let ects = List.rev t.pending_rev in
  t.pending_rev <- [];
  ingest t
    {
      o_tick = tick;
      o_queue = queue;
      o_backlog = backlog;
      o_ects = ects;
      o_corrupt_d = corrupt_d;
      o_restarts_d = restarts_d;
    }

(* ------------------------------------------------------------------ *)
(* Readouts *)

let alerts t = List.of_seq (Queue.to_seq t.ring)
let alert_total t = t.alert_total
let critical_total t = t.critical_total
let dropped t = t.dropped
let alert_digest t = fnv_hex t.digest
let by_detector t = pairs_of_counts t.by_detector
let by_severity t = pairs_of_counts t.by_severity
let global_state t = Health.state t.g_health

let tenant_states t =
  List.map (fun (name, ts) -> (name, Health.state ts.t_health)) (sorted_tenants t)

let first_breach_tick t = t.first_breach
let last_breach_tick t = t.last_breach

(* ------------------------------------------------------------------ *)
(* Rendering *)

let timeline_json tl =
  Json.List
    (List.rev_map
       (fun (tick, st) ->
         Json.List [ Json.Int tick; Json.String (Health.state_name st) ])
       tl)

let counts_json pairs =
  Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) pairs)

let opt_int = function None -> Json.Null | Some i -> Json.Int i

let scope_json state timeline =
  Json.Obj
    [
      ("state", Json.String (Health.state_name state));
      ("timeline", timeline_json timeline);
    ]

let scopes_json t =
  ( ("global", scope_json (Health.state t.g_health) t.g_timeline),
    List.map
      (fun (name, ts) -> (name, scope_json (Health.state ts.t_health) ts.t_timeline))
      (sorted_tenants t) )

let report_json t =
  let global, tenants = scopes_json t in
  Json.Obj
    [
      ("alert_total", Json.Int t.alert_total);
      ("critical_total", Json.Int t.critical_total);
      ("dropped", Json.Int t.dropped);
      ("digest", Json.String (alert_digest t));
      ("by_detector", counts_json (by_detector t));
      ("by_severity", counts_json (by_severity t));
      ("first_breach_tick", opt_int t.first_breach);
      ("last_breach_tick", opt_int t.last_breach);
      ("global", snd global);
      ("tenants", Json.Obj tenants);
    ]

let alerts_json t =
  Json.Obj
    [
      ("schema", Json.Int 1);
      ("digest", Json.String (alert_digest t));
      ("total", Json.Int t.alert_total);
      ("critical_total", Json.Int t.critical_total);
      ("dropped", Json.Int t.dropped);
      ("by_detector", counts_json (by_detector t));
      ("by_severity", counts_json (by_severity t));
      ("alerts", Json.List (List.map alert_to_json (alerts t)));
    ]

let health_json t =
  let global, tenants = scopes_json t in
  Json.Obj
    [
      ("schema", Json.Int 1);
      ("digest", Json.String (alert_digest t));
      ("first_breach_tick", opt_int t.first_breach);
      ("last_breach_tick", opt_int t.last_breach);
      ("global", snd global);
      ("tenants", Json.Obj tenants);
    ]

(* ------------------------------------------------------------------ *)
(* Lifecycle fallback reconstruction *)

let obs_of_lifecycle entries =
  match entries with
  | [] -> []
  | _ ->
      let max_tick =
        List.fold_left (fun m (e : Lifecycle.entry) -> max m e.tick) 0 entries
      in
      let by_tick = Array.make (max_tick + 1) [] in
      List.iter
        (fun (e : Lifecycle.entry) ->
          if e.tick >= 0 then by_tick.(e.tick) <- e :: by_tick.(e.tick))
        entries;
      let queued = Hashtbl.create 64 in
      let queue = ref 0 and backlog = ref 0 in
      let out = ref [] in
      for tick = 0 to max_tick do
        let ects = ref [] in
        List.iter
          (fun (e : Lifecycle.entry) ->
            match e.stage with
            | Lifecycle.Admitted ->
                if not (Hashtbl.mem queued e.id) then begin
                  Hashtbl.replace queued e.id ();
                  incr queue
                end
            | Lifecycle.Submitted _ ->
                if Hashtbl.mem queued e.id then begin
                  Hashtbl.remove queued e.id;
                  decr queue
                end;
                incr backlog
            | Lifecycle.Shed _ ->
                if Hashtbl.mem queued e.id then begin
                  Hashtbl.remove queued e.id;
                  decr queue
                end
            | Lifecycle.Completed { ect_s } ->
                backlog := max 0 (!backlog - 1);
                ects := (e.tenant, ect_s) :: !ects
            | Lifecycle.Degraded { ect_s; _ } ->
                backlog := max 0 (!backlog - 1);
                ects := (e.tenant, ect_s) :: !ects
            | Lifecycle.Arrived | Lifecycle.Deferred | Lifecycle.Planned _
            | Lifecycle.Aborted _ | Lifecycle.Retry_scheduled _ ->
                ())
          (List.rev by_tick.(tick));
        out :=
          {
            o_tick = tick;
            o_queue = max 0 !queue;
            o_backlog = max 0 !backlog;
            o_ects = List.rev !ects;
            o_corrupt_d = 0;
            o_restarts_d = 0;
          }
          :: !out
      done;
      List.rev !out

let _ = severity_of_name
