type node = {
  name : string;
  count : int;
  total_ns : int64;
  self_ns : int64;
  children : node list;
}

type t = node list

(* Mutable builder tree: same-named children merge into one node. *)
type builder = {
  b_name : string;
  mutable b_count : int;
  mutable b_total : int64;
  b_children : (string, builder) Hashtbl.t;
}

let builder name =
  { b_name = name; b_count = 0; b_total = 0L; b_children = Hashtbl.create 4 }

let child_of parent name =
  match Hashtbl.find_opt parent.b_children name with
  | Some b -> b
  | None ->
      let b = builder name in
      Hashtbl.add parent.b_children name b;
      b

let of_events events =
  (* The roots live under a synthetic parent so Begin handling is
     uniform. *)
  let top = builder "" in
  let stack = ref [] in
  let last_ts = ref 0L in
  let close b t0 ts = b.b_total <- Int64.add b.b_total (Int64.sub ts t0) in
  List.iter
    (fun (e : Trace.event) ->
      last_ts := e.Trace.ts_ns;
      match e.Trace.phase with
      | Trace.Instant -> ()
      | Trace.Begin ->
          let parent =
            match !stack with [] -> top | (b, _) :: _ -> b
          in
          let b = child_of parent e.Trace.name in
          b.b_count <- b.b_count + 1;
          stack := (b, e.Trace.ts_ns) :: !stack
      | Trace.End -> (
          (* Trace guarantees LIFO closes; tolerate a stray End. *)
          match !stack with
          | [] -> ()
          | (b, t0) :: rest ->
              close b t0 e.Trace.ts_ns;
              stack := rest))
    events;
  (* Close spans the stream truncated at the last timestamp seen. *)
  List.iter (fun (b, t0) -> close b t0 !last_ts) !stack;
  let rec freeze b =
    let children =
      Hashtbl.fold (fun _ c acc -> freeze c :: acc) b.b_children []
      |> List.sort (fun a b ->
             match Int64.compare b.total_ns a.total_ns with
             | 0 -> compare a.name b.name
             | c -> c)
    in
    let child_total =
      List.fold_left (fun acc c -> Int64.add acc c.total_ns) 0L children
    in
    {
      name = b.b_name;
      count = b.b_count;
      total_ns = b.b_total;
      (* Clock jitter could make children sum past the parent; clamp. *)
      self_ns =
        (let s = Int64.sub b.b_total child_total in
         if Int64.compare s 0L < 0 then 0L else s);
      children;
    }
  in
  (freeze top).children

let rec fold_nodes f acc nodes =
  List.fold_left (fun acc n -> fold_nodes f (f acc n) n.children) acc nodes

let span_count t = fold_nodes (fun acc n -> acc + n.count) 0 t

let hotspots ?(top = 10) t =
  let table = Hashtbl.create 16 in
  fold_nodes
    (fun () n ->
      let c, tot, slf =
        match Hashtbl.find_opt table n.name with
        | Some (c, tot, slf) -> (c, tot, slf)
        | None -> (0, 0L, 0L)
      in
      Hashtbl.replace table n.name
        (c + n.count, Int64.add tot n.total_ns, Int64.add slf n.self_ns))
    () t;
  Hashtbl.fold (fun name (c, tot, slf) acc -> (name, c, tot, slf) :: acc) table []
  |> List.sort (fun (na, _, _, sa) (nb, _, _, sb) ->
         match Int64.compare sb sa with 0 -> compare na nb | c -> c)
  |> List.filteri (fun i _ -> i < top)

let ms ns = Int64.to_float ns /. 1e6

let pp_hotspots ?top ppf t =
  let rows = hotspots ?top t in
  let wall =
    List.fold_left (fun acc n -> Int64.add acc n.total_ns) 0L t
  in
  let width =
    List.fold_left (fun acc (n, _, _, _) -> max acc (String.length n)) 4 rows
  in
  Format.fprintf ppf "@[<v>%-*s %10s %12s %12s %7s" width "span" "calls"
    "total_ms" "self_ms" "self%";
  List.iter
    (fun (name, calls, total, self) ->
      let pct =
        if Int64.compare wall 0L > 0 then
          100.0 *. Int64.to_float self /. Int64.to_float wall
        else 0.0
      in
      Format.fprintf ppf "@,%-*s %10d %12.3f %12.3f %6.1f%%" width name calls
        (ms total) (ms self) pct)
    rows;
  Format.fprintf ppf "@]"

let collapsed t =
  let buf = Buffer.create 1024 in
  let rec emit prefix n =
    let frame = if prefix = "" then n.name else prefix ^ ";" ^ n.name in
    if Int64.compare n.self_ns 0L > 0 then begin
      Buffer.add_string buf frame;
      Buffer.add_char buf ' ';
      Buffer.add_string buf (Int64.to_string n.self_ns);
      Buffer.add_char buf '\n'
    end;
    List.iter (emit frame) n.children
  in
  List.iter (emit "") t;
  Buffer.contents buf

let rec node_to_json n =
  Json.Obj
    [
      ("name", Json.String n.name);
      ("count", Json.Int n.count);
      ("total_ns", Json.Int (Int64.to_int n.total_ns));
      ("self_ns", Json.Int (Int64.to_int n.self_ns));
      ("children", Json.List (List.map node_to_json n.children));
    ]

let to_json t =
  Json.Obj
    [
      ("spans", Json.Int (span_count t));
      ("roots", Json.List (List.map node_to_json t));
    ]
