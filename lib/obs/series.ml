type t = {
  cols : string array;
  capacity : int;
  times : float array;  (* first [len] slots are live *)
  rows : float array array;
  mutable len : int;
  mutable stride : int;
  mutable countdown : int;  (* offers to drop before the next keep *)
  mutable total : int;
}

let create ?(capacity = 4096) ~columns () =
  if columns = [] then invalid_arg "Series.create: no columns";
  (* Decimation assumes the buffer-filling row sits at an odd slot (one
     old stride past the last even-grid row) so that halving drops it.
     An odd capacity would place that row at an even slot and leak an
     off-grid sample into the retained set; round up instead. *)
  let capacity = max 2 capacity in
  let capacity = capacity + (capacity land 1) in
  {
    cols = Array.of_list columns;
    capacity;
    times = Array.make capacity 0.0;
    rows = Array.make capacity [||];
    len = 0;
    stride = 1;
    countdown = 0;
    total = 0;
  }

let columns t = Array.to_list t.cols
let length t = t.len
let total_samples t = t.total
let stride t = t.stride

(* Keep rows 0, 2, 4, ... — the decimated series stays anchored at the
   first sample and uniformly spaced at the doubled stride. *)
let decimate t =
  let kept = (t.len + 1) / 2 in
  for i = 0 to kept - 1 do
    t.times.(i) <- t.times.(2 * i);
    t.rows.(i) <- t.rows.(2 * i)
  done;
  t.len <- kept;
  t.stride <- t.stride * 2

let sample t ~t_s row =
  if Array.length row <> Array.length t.cols then
    invalid_arg "Series.sample: row length does not match columns";
  t.total <- t.total + 1;
  if t.countdown > 0 then t.countdown <- t.countdown - 1
  else begin
    t.times.(t.len) <- t_s;
    t.rows.(t.len) <- Array.copy row;
    t.len <- t.len + 1;
    if t.len >= t.capacity then begin
      (* The just-stored row sat one old stride past the last even-grid
         row and is dropped by the decimation; the next keep must land
         back on the (now doubled) grid, one old stride from here. *)
      decimate t;
      t.countdown <- (t.stride / 2) - 1
    end
    else t.countdown <- t.stride - 1
  end

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Series.get: index out of range";
  (t.times.(i), Array.copy t.rows.(i))

let reset t =
  t.len <- 0;
  t.stride <- 1;
  t.countdown <- 0;
  t.total <- 0

let to_json t =
  let column j =
    Json.List (List.init t.len (fun i -> Json.Float t.rows.(i).(j)))
  in
  Json.Obj
    [
      ( "columns",
        Json.List (Array.to_list (Array.map (fun c -> Json.String c) t.cols))
      );
      ("stride", Json.Int t.stride);
      ("total_samples", Json.Int t.total);
      ("t_s", Json.List (List.init t.len (fun i -> Json.Float t.times.(i))));
      ( "data",
        Json.Obj (List.mapi (fun j c -> (c, column j)) (Array.to_list t.cols))
      );
    ]

(* Shortest decimal that round-trips (mirrors Json.float_repr). *)
let float_repr f =
  let s = Printf.sprintf "%.15g" f in
  if float_of_string s = f then s else Printf.sprintf "%.17g" f

let to_csv t =
  let buf = Buffer.create (256 + (t.len * 32)) in
  Buffer.add_string buf "t_s";
  Array.iter
    (fun c ->
      Buffer.add_char buf ',';
      Buffer.add_string buf c)
    t.cols;
  Buffer.add_char buf '\n';
  for i = 0 to t.len - 1 do
    Buffer.add_string buf (float_repr t.times.(i));
    Array.iter
      (fun v ->
        Buffer.add_char buf ',';
        Buffer.add_string buf (float_repr v))
      t.rows.(i);
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf
