(* Hysteretic health state machine — see health.mli. *)

type state = Ok | Warn | Critical | Recovering

type config = {
  warn_after : int;
  crit_after : int;
  clear_after : int;
  recover_after : int;
}

let default = { warn_after = 3; crit_after = 5; clear_after = 5; recover_after = 5 }

type t = {
  cfg : config;
  mutable st : state;
  mutable firing_run : int; (* consecutive firing ticks in this state *)
  mutable quiet_run : int; (* consecutive quiet ticks in this state *)
}

let create cfg = { cfg; st = Ok; firing_run = 0; quiet_run = 0 }
let state t = t.st

let enter t s =
  t.st <- s;
  t.firing_run <- 0;
  t.quiet_run <- 0;
  Some s

let observe t ~firing =
  if firing then begin
    t.firing_run <- t.firing_run + 1;
    t.quiet_run <- 0
  end
  else begin
    t.quiet_run <- t.quiet_run + 1;
    t.firing_run <- 0
  end;
  match t.st with
  | Ok -> if firing && t.firing_run >= t.cfg.warn_after then enter t Warn else None
  | Warn ->
      if firing && t.firing_run >= t.cfg.crit_after then enter t Critical
      else if (not firing) && t.quiet_run >= t.cfg.clear_after then enter t Ok
      else None
  | Critical ->
      if (not firing) && t.quiet_run >= t.cfg.clear_after then enter t Recovering
      else None
  | Recovering ->
      (* Any relapse during recovery goes straight back to Critical:
         the incident was evidently not over. *)
      if firing then enter t Critical
      else if t.quiet_run >= t.cfg.recover_after then enter t Ok
      else None

let state_name = function
  | Ok -> "ok"
  | Warn -> "warn"
  | Critical -> "critical"
  | Recovering -> "recovering"

let state_rank = function Ok -> 0 | Warn -> 1 | Critical -> 2 | Recovering -> 3

let state_of_name = function
  | "ok" -> Some Ok
  | "warn" -> Some Warn
  | "critical" -> Some Critical
  | "recovering" -> Some Recovering
  | _ -> None
