(** HDR-style log-bucketed streaming histograms.

    The paper's evaluation is statistical — average vs. tail completion
    times, fairness across events — so the analysis layer needs
    distribution summaries, not scalar counters. A histogram records
    non-negative float samples into logarithmic buckets: each octave
    [2^(e-1), 2^e) is split into [sub_buckets] linear sub-buckets, so
    every recorded value lands in a bucket whose width is at most
    [1/sub_buckets] of its value. Memory is O(occupied buckets)
    regardless of sample count, recording is O(1), and quantiles are
    answered to within one bucket's relative error ({!rel_error}).

    Exact count, sum, min and max are tracked on the side, so [mean],
    [min_value] and [max_value] are exact; only quantiles are
    approximate. *)

type t

val create : ?sub_buckets:int -> unit -> t
(** [sub_buckets] (default 64) is the number of linear sub-buckets per
    octave; must be at least 1. Larger values trade memory for quantile
    precision: the relative quantile error is bounded by
    [1 / sub_buckets]. *)

val sub_buckets : t -> int

val rel_error : t -> float
(** Upper bound on the relative error of {!quantile}:
    [1 /. float_of_int (sub_buckets t)]. *)

val record : t -> float -> unit
(** Record one sample. Zero is tracked exactly in a dedicated bucket.
    Raises [Invalid_argument] on negative or non-finite samples — the
    recorded quantities (latencies, counts, traffic volumes) are
    non-negative by construction, so a negative sample is a bug worth
    surfacing. *)

val record_n : t -> float -> int -> unit
(** [record_n t v k] records [v] [k] times in O(1). *)

val count : t -> int
val sum : t -> float
val mean : t -> float
(** Exact mean. Raises [Invalid_argument] when empty. *)

val min_value : t -> float
(** Exact minimum. Raises [Invalid_argument] when empty. *)

val max_value : t -> float
(** Exact maximum. Raises [Invalid_argument] when empty. *)

val is_empty : t -> bool

val quantile : t -> float -> float
(** [quantile t q] with [q] in [0, 1]: the linear-interpolation
    ("type 7") quantile estimate — the same rank convention as
    {!Nu_stats.Descriptive.percentile} — answered from bucket midpoints
    and clamped into [[min_value, max_value]]. The result is within
    [rel_error t] relative error of the exact quantile of the recorded
    samples. Raises [Invalid_argument] when empty or [q] out of
    range. *)

val p50 : t -> float
val p90 : t -> float
val p99 : t -> float
val p999 : t -> float

val buckets : t -> (float * float * int) list
(** Occupied buckets as [(lo, hi, count)] sorted by lower bound, the
    zero bucket (when occupied) first as [(0, 0, count)] — the same
    triples {!to_json} renders. Exposition formats build cumulative
    [le] series from the [hi] bounds. *)

val copy : t -> t

val merge : t -> t -> t
(** Fresh histogram holding both inputs' samples. Merging is
    commutative and associative on the bucket counts (the float [sum]
    accumulates in argument order, so its low bits may differ across
    associations). Raises [Invalid_argument] when the two histograms
    have different [sub_buckets]. *)

val reset : t -> unit

val to_json : t -> Json.t
(** Object with exact [count]/[sum]/[min]/[max]/[mean], the [p50]/
    [p90]/[p99]/[p999] estimates ([null] when empty), [sub_buckets],
    and the occupied [buckets] as [[lo, hi, count]] triples sorted by
    lower bound (the zero bucket reported as [[0, 0, count]]). *)

val pp : Format.formatter -> t -> unit
(** One-line [n/mean/p50/p90/p99/p999/max] rendering. *)

(** Process-wide named-histogram registry, following the {!Counters}
    pattern but gated like {!Trace}: recording is off by default and
    the off state is one boolean load — hot paths guard clock reads and
    value computation behind [if Registry.enabled () then ...], so an
    unsampled run allocates nothing for histogram instrumentation. *)
module Registry : sig
  val enabled : unit -> bool
  val enable : unit -> unit
  val disable : unit -> unit

  val record : string -> float -> unit
  (** Record into the named histogram, creating it on first use
      (default [sub_buckets]). No-op when disabled. *)

  val find : string -> t option
  (** The live histogram, if the name has ever been recorded. *)

  val snapshot : unit -> (string * t) list
  (** Independent copies of every named histogram, sorted by name. *)

  val reset : unit -> unit
  (** Drop every named histogram (does not change enablement). *)

  val to_json : unit -> Json.t
  (** Object mapping each name to {!to_json}, sorted by name. *)
end
