(** Structured tracing: hierarchical timed spans with typed attributes.

    A span is a named region of wall-clock time (monotonic clock,
    nanoseconds). Spans strictly nest: {!span} pushes onto a stack and
    {!finish} must close the innermost open span, so every recorded
    trace is a well-formed tree (run → round → plan/estimate/migrate/
    execute). Events stream into the installed {!type-sink}.

    Tracing is off by default and the off state is free: with no sink
    installed, {!enabled} is [false], {!span} returns a preallocated
    token, and {!finish}/{!instant}/{!with_span} do nothing. Hot paths
    guard attribute construction behind [if Trace.enabled () then ...]
    so an untraced run allocates nothing for instrumentation. *)

type value = Bool of bool | Int of int | Float of float | Str of string
(** Attribute values. *)

type phase = Begin | End | Instant

type event = {
  phase : phase;
  name : string;
  ts_ns : int64;  (** Monotonic clock. *)
  depth : int;  (** Open-span stack depth when emitted. *)
  attrs : (string * value) list;
}

type sink = { emit : event -> unit; flush : unit -> unit }

val install : sink -> unit
(** Install a sink and enable tracing (flushing any previous sink). The
    open-span stack is cleared. *)

val uninstall : unit -> unit
(** Flush and remove the sink; tracing returns to the free off state. *)

val enabled : unit -> bool

type span

val span : ?attrs:(string * value) list -> string -> span
(** Open a span: emits a [Begin] event and pushes the span. When
    tracing is off, returns a dummy token without emitting. *)

val finish : ?attrs:(string * value) list -> span -> unit
(** Close a span: emits an [End] event carrying [attrs] (measured
    results go here). Raises [Invalid_argument] if [span] is not the
    innermost open span — spans must close in LIFO order. *)

val with_span : ?attrs:(string * value) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f] inside a span, closing it on any exit
    (including exceptions). When tracing is off this is just [f ()]. *)

val instant : ?attrs:(string * value) list -> string -> unit
(** Zero-duration marker at the current depth. *)

val memory : unit -> sink * (unit -> event list)
(** In-memory sink for tests and one-shot exports: the second component
    returns every event emitted so far, in order. *)

val set_clock : (unit -> int64) -> unit
(** Replace the timestamp source (default: the monotonic clock).
    Intended for deterministic tests. *)

val now_ns : unit -> int64
(** Current reading of the installed clock. *)
