type key =
  | Planner_plans
  | Planner_probes
  | Plan_reverts
  | Cost_estimates
  | Migration_moves
  | Clear_attempts
  | Path_enumerations
  | State_copies
  | Engine_rounds
  | Events_executed
  | Co_scheduled_events
  | Churn_placements
  | Txn_rollbacks
  | Txn_commits
  | Plan_replays
  | Estimate_cache_hits
  | Estimate_cache_misses
  | Faults_injected
  | Migrations_aborted
  | Retries
  | Events_degraded
  | Invariant_checks
  | Serve_ticks
  | Serve_admitted
  | Serve_shed
  | Serve_deferred
  | Serve_drained
  | Serve_checkpoints

let index = function
  | Planner_plans -> 0
  | Planner_probes -> 1
  | Plan_reverts -> 2
  | Cost_estimates -> 3
  | Migration_moves -> 4
  | Clear_attempts -> 5
  | Path_enumerations -> 6
  | State_copies -> 7
  | Engine_rounds -> 8
  | Events_executed -> 9
  | Co_scheduled_events -> 10
  | Churn_placements -> 11
  | Txn_rollbacks -> 12
  | Txn_commits -> 13
  | Plan_replays -> 14
  | Estimate_cache_hits -> 15
  | Estimate_cache_misses -> 16
  | Faults_injected -> 17
  | Migrations_aborted -> 18
  | Retries -> 19
  | Events_degraded -> 20
  | Invariant_checks -> 21
  | Serve_ticks -> 22
  | Serve_admitted -> 23
  | Serve_shed -> 24
  | Serve_deferred -> 25
  | Serve_drained -> 26
  | Serve_checkpoints -> 27

let all =
  [
    Planner_plans;
    Planner_probes;
    Plan_reverts;
    Cost_estimates;
    Migration_moves;
    Clear_attempts;
    Path_enumerations;
    State_copies;
    Engine_rounds;
    Events_executed;
    Co_scheduled_events;
    Churn_placements;
    Txn_rollbacks;
    Txn_commits;
    Plan_replays;
    Estimate_cache_hits;
    Estimate_cache_misses;
    Faults_injected;
    Migrations_aborted;
    Retries;
    Events_degraded;
    Invariant_checks;
    Serve_ticks;
    Serve_admitted;
    Serve_shed;
    Serve_deferred;
    Serve_drained;
    Serve_checkpoints;
  ]

let size = List.length all

let name = function
  | Planner_plans -> "planner_plans"
  | Planner_probes -> "planner_probes"
  | Plan_reverts -> "plan_reverts"
  | Cost_estimates -> "cost_estimates"
  | Migration_moves -> "migration_moves"
  | Clear_attempts -> "clear_attempts"
  | Path_enumerations -> "path_enumerations"
  | State_copies -> "state_copies"
  | Engine_rounds -> "engine_rounds"
  | Events_executed -> "events_executed"
  | Co_scheduled_events -> "co_scheduled_events"
  | Churn_placements -> "churn_placements"
  | Txn_rollbacks -> "txn_rollbacks"
  | Txn_commits -> "txn_commits"
  | Plan_replays -> "plan_replays"
  | Estimate_cache_hits -> "estimate_cache_hits"
  | Estimate_cache_misses -> "estimate_cache_misses"
  | Faults_injected -> "faults_injected"
  | Migrations_aborted -> "migrations_aborted"
  | Retries -> "retries"
  | Events_degraded -> "events_degraded"
  | Invariant_checks -> "invariant_checks"
  | Serve_ticks -> "serve_ticks"
  | Serve_admitted -> "serve_admitted"
  | Serve_shed -> "serve_shed"
  | Serve_deferred -> "serve_deferred"
  | Serve_drained -> "serve_drained"
  | Serve_checkpoints -> "serve_checkpoints"

let counts = Array.make size 0

let incr k =
  let i = index k in
  counts.(i) <- counts.(i) + 1

let add k n =
  let i = index k in
  counts.(i) <- counts.(i) + n

let get k = counts.(index k)

(* Dynamic named counters, created on first increment. *)
let named : (string, int ref) Hashtbl.t = Hashtbl.create 16

let add_named n k =
  if n = "" then invalid_arg "Counters.add_named: empty name";
  match Hashtbl.find_opt named n with
  | Some r -> r := !r + k
  | None -> Hashtbl.add named n (ref k)

let incr_named n = add_named n 1
let get_named n = match Hashtbl.find_opt named n with Some r -> !r | None -> 0

let reset () =
  Array.fill counts 0 size 0;
  Hashtbl.reset named

type snapshot = { fixed : int array; dyn : (string * int) list }

let snapshot () =
  {
    fixed = Array.copy counts;
    dyn =
      Hashtbl.fold (fun n r acc -> (n, !r) :: acc) named []
      |> List.sort (fun (a, _) (b, _) -> compare a b);
  }

(* The named-counter diff is over the *union* of both snapshots' names:
   a counter first incremented between the two snapshots diffs against
   an implicit zero instead of silently disappearing. *)
let diff ~before ~after =
  if Array.length before.fixed <> size || Array.length after.fixed <> size then
    invalid_arg "Counters.diff: snapshot size mismatch";
  let get l n = Option.value (List.assoc_opt n l) ~default:0 in
  let names =
    List.sort_uniq compare
      (List.map fst before.dyn @ List.map fst after.dyn)
  in
  {
    fixed = Array.init size (fun i -> after.fixed.(i) - before.fixed.(i));
    dyn = List.map (fun n -> (n, get after.dyn n - get before.dyn n)) names;
  }

let value snap k = snap.fixed.(index k)
let named_value snap n = Option.value (List.assoc_opt n snap.dyn) ~default:0

let to_alist snap =
  List.map (fun k -> (name k, snap.fixed.(index k))) all @ snap.dyn

let is_zero snap =
  Array.for_all (fun v -> v = 0) snap.fixed
  && List.for_all (fun (_, v) -> v = 0) snap.dyn

let to_json snap =
  Json.Obj (List.map (fun (n, v) -> (n, Json.Int v)) (to_alist snap))

let pp_table ppf snap =
  let alist = to_alist snap in
  let width =
    List.fold_left (fun acc (n, _) -> max acc (String.length n)) 0 alist
  in
  Format.fprintf ppf "@[<v>counters:";
  List.iter
    (fun (n, v) -> Format.fprintf ppf "@,  %-*s %10d" width n v)
    alist;
  Format.fprintf ppf "@]"
