type key =
  | Planner_plans
  | Planner_probes
  | Plan_reverts
  | Cost_estimates
  | Migration_moves
  | Clear_attempts
  | Path_enumerations
  | State_copies
  | Engine_rounds
  | Events_executed
  | Co_scheduled_events
  | Churn_placements
  | Txn_rollbacks
  | Txn_commits
  | Plan_replays
  | Estimate_cache_hits
  | Estimate_cache_misses
  | Faults_injected
  | Migrations_aborted
  | Retries
  | Events_degraded
  | Invariant_checks
  | Serve_ticks
  | Serve_admitted
  | Serve_shed
  | Serve_deferred
  | Serve_drained
  | Serve_checkpoints

let index = function
  | Planner_plans -> 0
  | Planner_probes -> 1
  | Plan_reverts -> 2
  | Cost_estimates -> 3
  | Migration_moves -> 4
  | Clear_attempts -> 5
  | Path_enumerations -> 6
  | State_copies -> 7
  | Engine_rounds -> 8
  | Events_executed -> 9
  | Co_scheduled_events -> 10
  | Churn_placements -> 11
  | Txn_rollbacks -> 12
  | Txn_commits -> 13
  | Plan_replays -> 14
  | Estimate_cache_hits -> 15
  | Estimate_cache_misses -> 16
  | Faults_injected -> 17
  | Migrations_aborted -> 18
  | Retries -> 19
  | Events_degraded -> 20
  | Invariant_checks -> 21
  | Serve_ticks -> 22
  | Serve_admitted -> 23
  | Serve_shed -> 24
  | Serve_deferred -> 25
  | Serve_drained -> 26
  | Serve_checkpoints -> 27

let all =
  [
    Planner_plans;
    Planner_probes;
    Plan_reverts;
    Cost_estimates;
    Migration_moves;
    Clear_attempts;
    Path_enumerations;
    State_copies;
    Engine_rounds;
    Events_executed;
    Co_scheduled_events;
    Churn_placements;
    Txn_rollbacks;
    Txn_commits;
    Plan_replays;
    Estimate_cache_hits;
    Estimate_cache_misses;
    Faults_injected;
    Migrations_aborted;
    Retries;
    Events_degraded;
    Invariant_checks;
    Serve_ticks;
    Serve_admitted;
    Serve_shed;
    Serve_deferred;
    Serve_drained;
    Serve_checkpoints;
  ]

let size = List.length all

let name = function
  | Planner_plans -> "planner_plans"
  | Planner_probes -> "planner_probes"
  | Plan_reverts -> "plan_reverts"
  | Cost_estimates -> "cost_estimates"
  | Migration_moves -> "migration_moves"
  | Clear_attempts -> "clear_attempts"
  | Path_enumerations -> "path_enumerations"
  | State_copies -> "state_copies"
  | Engine_rounds -> "engine_rounds"
  | Events_executed -> "events_executed"
  | Co_scheduled_events -> "co_scheduled_events"
  | Churn_placements -> "churn_placements"
  | Txn_rollbacks -> "txn_rollbacks"
  | Txn_commits -> "txn_commits"
  | Plan_replays -> "plan_replays"
  | Estimate_cache_hits -> "estimate_cache_hits"
  | Estimate_cache_misses -> "estimate_cache_misses"
  | Faults_injected -> "faults_injected"
  | Migrations_aborted -> "migrations_aborted"
  | Retries -> "retries"
  | Events_degraded -> "events_degraded"
  | Invariant_checks -> "invariant_checks"
  | Serve_ticks -> "serve_ticks"
  | Serve_admitted -> "serve_admitted"
  | Serve_shed -> "serve_shed"
  | Serve_deferred -> "serve_deferred"
  | Serve_drained -> "serve_drained"
  | Serve_checkpoints -> "serve_checkpoints"

let counts = Array.make size 0

let incr k =
  let i = index k in
  counts.(i) <- counts.(i) + 1

let add k n =
  let i = index k in
  counts.(i) <- counts.(i) + n

let get k = counts.(index k)
let reset () = Array.fill counts 0 size 0

type snapshot = int array

let snapshot () = Array.copy counts

let diff ~before ~after =
  if Array.length before <> size || Array.length after <> size then
    invalid_arg "Counters.diff: snapshot size mismatch";
  Array.init size (fun i -> after.(i) - before.(i))

let value snap k = snap.(index k)
let to_alist snap = List.map (fun k -> (name k, snap.(index k))) all
let is_zero snap = Array.for_all (fun v -> v = 0) snap

let to_json snap =
  Json.Obj (List.map (fun (n, v) -> (n, Json.Int v)) (to_alist snap))

let pp_table ppf snap =
  let width =
    List.fold_left (fun acc k -> max acc (String.length (name k))) 0 all
  in
  Format.fprintf ppf "@[<v>counters:";
  List.iter
    (fun (n, v) -> Format.fprintf ppf "@,  %-*s %10d" width n v)
    (to_alist snap);
  Format.fprintf ppf "@]"
