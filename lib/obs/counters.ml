type key =
  | Planner_plans
  | Planner_probes
  | Plan_reverts
  | Cost_estimates
  | Migration_moves
  | Clear_attempts
  | Path_enumerations
  | State_copies
  | Engine_rounds
  | Events_executed
  | Co_scheduled_events
  | Churn_placements
  | Txn_rollbacks
  | Txn_commits
  | Plan_replays
  | Estimate_cache_hits
  | Estimate_cache_misses
  | Faults_injected
  | Migrations_aborted
  | Retries
  | Events_degraded
  | Invariant_checks
  | Serve_ticks
  | Serve_admitted
  | Serve_shed
  | Serve_deferred
  | Serve_drained
  | Serve_checkpoints
  | Probe_parallel_batches
  | Domain_probes
  | Shard_escalations
  | Shard_wave_replans
  | Shard_coord_commits
  | Shard_coord_aborts
  | Shard_coord_degraded
  | Shard_rebalances

let index = function
  | Planner_plans -> 0
  | Planner_probes -> 1
  | Plan_reverts -> 2
  | Cost_estimates -> 3
  | Migration_moves -> 4
  | Clear_attempts -> 5
  | Path_enumerations -> 6
  | State_copies -> 7
  | Engine_rounds -> 8
  | Events_executed -> 9
  | Co_scheduled_events -> 10
  | Churn_placements -> 11
  | Txn_rollbacks -> 12
  | Txn_commits -> 13
  | Plan_replays -> 14
  | Estimate_cache_hits -> 15
  | Estimate_cache_misses -> 16
  | Faults_injected -> 17
  | Migrations_aborted -> 18
  | Retries -> 19
  | Events_degraded -> 20
  | Invariant_checks -> 21
  | Serve_ticks -> 22
  | Serve_admitted -> 23
  | Serve_shed -> 24
  | Serve_deferred -> 25
  | Serve_drained -> 26
  | Serve_checkpoints -> 27
  | Probe_parallel_batches -> 28
  | Domain_probes -> 29
  | Shard_escalations -> 30
  | Shard_wave_replans -> 31
  | Shard_coord_commits -> 32
  | Shard_coord_aborts -> 33
  | Shard_coord_degraded -> 34
  | Shard_rebalances -> 35

let all =
  [
    Planner_plans;
    Planner_probes;
    Plan_reverts;
    Cost_estimates;
    Migration_moves;
    Clear_attempts;
    Path_enumerations;
    State_copies;
    Engine_rounds;
    Events_executed;
    Co_scheduled_events;
    Churn_placements;
    Txn_rollbacks;
    Txn_commits;
    Plan_replays;
    Estimate_cache_hits;
    Estimate_cache_misses;
    Faults_injected;
    Migrations_aborted;
    Retries;
    Events_degraded;
    Invariant_checks;
    Serve_ticks;
    Serve_admitted;
    Serve_shed;
    Serve_deferred;
    Serve_drained;
    Serve_checkpoints;
    Probe_parallel_batches;
    Domain_probes;
    Shard_escalations;
    Shard_wave_replans;
    Shard_coord_commits;
    Shard_coord_aborts;
    Shard_coord_degraded;
    Shard_rebalances;
  ]

let size = List.length all

let name = function
  | Planner_plans -> "planner_plans"
  | Planner_probes -> "planner_probes"
  | Plan_reverts -> "plan_reverts"
  | Cost_estimates -> "cost_estimates"
  | Migration_moves -> "migration_moves"
  | Clear_attempts -> "clear_attempts"
  | Path_enumerations -> "path_enumerations"
  | State_copies -> "state_copies"
  | Engine_rounds -> "engine_rounds"
  | Events_executed -> "events_executed"
  | Co_scheduled_events -> "co_scheduled_events"
  | Churn_placements -> "churn_placements"
  | Txn_rollbacks -> "txn_rollbacks"
  | Txn_commits -> "txn_commits"
  | Plan_replays -> "plan_replays"
  | Estimate_cache_hits -> "estimate_cache_hits"
  | Estimate_cache_misses -> "estimate_cache_misses"
  | Faults_injected -> "faults_injected"
  | Migrations_aborted -> "migrations_aborted"
  | Retries -> "retries"
  | Events_degraded -> "events_degraded"
  | Invariant_checks -> "invariant_checks"
  | Serve_ticks -> "serve_ticks"
  | Serve_admitted -> "serve_admitted"
  | Serve_shed -> "serve_shed"
  | Serve_deferred -> "serve_deferred"
  | Serve_drained -> "serve_drained"
  | Serve_checkpoints -> "serve_checkpoints"
  | Probe_parallel_batches -> "probe_parallel_batches"
  | Domain_probes -> "domain_probes"
  | Shard_escalations -> "shard_escalations"
  | Shard_wave_replans -> "shard_wave_replans"
  | Shard_coord_commits -> "shard_coord_commits"
  | Shard_coord_aborts -> "shard_coord_aborts"
  | Shard_coord_degraded -> "shard_coord_degraded"
  | Shard_rebalances -> "shard_rebalances"

(* The registry is domain-local: each domain increments its own store
   (no contention, no torn reads), and a probe worker's deltas are
   merged into the spawning domain with {!absorb} after the join — in
   domain-spawn order, so the merged totals are deterministic and, the
   sums being commutative, independent of how probes were distributed
   across domains. Everything below operates on the calling domain's
   store; in a single-domain program that is exactly the historical
   process-global behaviour. *)
type store = { counts : int array; named : (string, int ref) Hashtbl.t }

let store_key : store Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      { counts = Array.make size 0; named = Hashtbl.create 16 })

let store () = Domain.DLS.get store_key

let incr k =
  let counts = (store ()).counts in
  let i = index k in
  counts.(i) <- counts.(i) + 1

let add k n =
  let counts = (store ()).counts in
  let i = index k in
  counts.(i) <- counts.(i) + n

let get k = (store ()).counts.(index k)

(* Dynamic named counters, created on first increment. *)

let add_named n k =
  if n = "" then invalid_arg "Counters.add_named: empty name";
  let named = (store ()).named in
  match Hashtbl.find_opt named n with
  | Some r -> r := !r + k
  | None -> Hashtbl.add named n (ref k)

let incr_named n = add_named n 1

let get_named n =
  match Hashtbl.find_opt (store ()).named n with Some r -> !r | None -> 0

let reset () =
  let s = store () in
  Array.fill s.counts 0 size 0;
  Hashtbl.reset s.named

type snapshot = { fixed : int array; dyn : (string * int) list }

let snapshot () =
  let s = store () in
  {
    fixed = Array.copy s.counts;
    dyn =
      Hashtbl.fold (fun n r acc -> (n, !r) :: acc) s.named []
      |> List.sort (fun (a, _) (b, _) -> compare a b);
  }

let drain () =
  let snap = snapshot () in
  reset ();
  snap

let absorb snap =
  if Array.length snap.fixed <> size then
    invalid_arg "Counters.absorb: snapshot size mismatch";
  let s = store () in
  Array.iteri (fun i v -> s.counts.(i) <- s.counts.(i) + v) snap.fixed;
  List.iter (fun (n, v) -> if v <> 0 then add_named n v) snap.dyn

(* The named-counter diff is over the *union* of both snapshots' names:
   a counter first incremented between the two snapshots diffs against
   an implicit zero instead of silently disappearing. *)
let diff ~before ~after =
  if Array.length before.fixed <> size || Array.length after.fixed <> size then
    invalid_arg "Counters.diff: snapshot size mismatch";
  let get l n = Option.value (List.assoc_opt n l) ~default:0 in
  let names =
    List.sort_uniq compare
      (List.map fst before.dyn @ List.map fst after.dyn)
  in
  {
    fixed = Array.init size (fun i -> after.fixed.(i) - before.fixed.(i));
    dyn = List.map (fun n -> (n, get after.dyn n - get before.dyn n)) names;
  }

let value snap k = snap.fixed.(index k)
let named_value snap n = Option.value (List.assoc_opt n snap.dyn) ~default:0

let to_alist snap =
  List.map (fun k -> (name k, snap.fixed.(index k))) all @ snap.dyn

let is_zero snap =
  Array.for_all (fun v -> v = 0) snap.fixed
  && List.for_all (fun (_, v) -> v = 0) snap.dyn

let to_json snap =
  Json.Obj (List.map (fun (n, v) -> (n, Json.Int v)) (to_alist snap))

let pp_table ppf snap =
  let alist = to_alist snap in
  let width =
    List.fold_left (fun acc (n, _) -> max acc (String.length n)) 0 alist
  in
  Format.fprintf ppf "@[<v>counters:";
  List.iter
    (fun (n, v) -> Format.fprintf ppf "@,  %-*s %10d" width n v)
    alist;
  Format.fprintf ppf "@]"
