(** Span-tree profiler over {!Trace} event streams.

    Folds a recorded Begin/End stream into a call tree keyed by span
    name — same-named siblings merge, so a 10,000-round run collapses
    into one [run → round → plan/estimate/migrate/execute] tree with
    counts and total/self times — and renders it as a hotspot table,
    a JSON document, or perf-style collapsed stacks consumable by
    flamegraph tooling ([flamegraph.pl], [inferno], speedscope). *)

type node = {
  name : string;
  count : int;  (** Spans merged into this node. *)
  total_ns : int64;  (** Wall time including children. *)
  self_ns : int64;  (** [total_ns] minus the children's totals. *)
  children : node list;  (** Sorted by [total_ns], largest first. *)
}

type t = node list
(** Forest of root spans (usually the single ["run"] root), sorted by
    [total_ns], largest first. *)

val of_events : Trace.event list -> t
(** Fold a chronological event stream (e.g. from {!Trace.memory}) into
    a span forest. [Instant] events are ignored. Spans left open at the
    end of the stream are closed at the last timestamp seen, so a
    truncated trace still profiles. *)

val span_count : t -> int
(** Total spans folded into the forest (sum of every node's count). *)

val hotspots : ?top:int -> t -> (string * int * int64 * int64) list
(** Per-name aggregation over the whole forest:
    [(name, count, total_ns, self_ns)], sorted by self time, largest
    first, truncated to [top] (default 10) rows. Self times partition
    the trace, so they sum to the root wall time; totals of nested
    same-named spans would double-count and are summed as-is. *)

val pp_hotspots : ?top:int -> Format.formatter -> t -> unit
(** Table of {!hotspots}: name, calls, total ms, self ms, self %. *)

val collapsed : t -> string
(** Perf-style collapsed stacks: one [root;child;...;leaf value] line
    per node with positive self time, value = self time in
    nanoseconds. Feed to [flamegraph.pl] or paste into speedscope. *)

val to_json : t -> Json.t
(** [{"spans": n, "roots": [...]}] with recursive
    [{"name", "count", "total_ns", "self_ns", "children"}] nodes. *)
