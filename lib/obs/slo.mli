(** Rolling-window SLO tracker: tail-ECT quantiles, backlog gauges and
    threshold breach events.

    ECT samples land in a pair of rotating histograms (current +
    previous window), so {!p99}/{!p999} always answer from between one
    and two windows of recent history — a bounded-memory approximation
    of a sliding window. Queue-depth and engine-backlog gauges hold
    the latest observed values. Once per tick ({!on_tick}) each
    configured threshold is evaluated against the rolling readout and
    an exceedance is recorded as a {!breach} event (total count exact;
    the retained event list is bounded to the most recent 256).

    Purely observational — thresholds gate nothing. *)

type breach = {
  b_tick : int;
  b_metric : string;
      (** ["p99_ect_s"], ["p999_ect_s"], ["queue_depth"] or
          ["engine_backlog"]. *)
  b_value : float;
  b_threshold : float;
}

type t

val create :
  ?window:int ->
  ?sub_buckets:int ->
  ?p99_target_s:float ->
  ?p999_target_s:float ->
  ?max_queue:int ->
  ?max_backlog:int ->
  unit ->
  t
(** [window] (default 50, minimum 1) is the rotation period in ticks.
    Omitted targets are never evaluated. *)

val window_ticks : t -> int

val observe_ect : t -> float -> unit
(** Record one completed request's ECT into the current window. *)

val observe_gauges : t -> queue:int -> backlog:int -> unit
(** Latest admission queue depth and engine backlog. *)

val on_tick : t -> tick:int -> unit
(** Evaluate thresholds (recording breaches against [tick]) and
    advance the window clock, rotating every [window]-th call. *)

val p99 : t -> float option
(** Rolling-window ECT p99; [None] while the window pair is empty. *)

val p999 : t -> float option

val rolling : t -> Histogram.t
(** Merged current + previous window histogram (a fresh copy). *)

val queue_depth : t -> int
val engine_backlog : t -> int

val breaches : t -> breach list
(** Retained breach events, oldest first (bounded to 256). *)

val breach_count : t -> int
(** Exact total, including events evicted from the retained list. *)

val breaches_dropped : t -> int
(** Breach events evicted from the retained list by the 256-record
    cap: [breach_count t - List.length (breaches t)]. Non-zero means
    {!breaches} is a suffix of the true sequence. *)

val to_json : t -> Json.t
