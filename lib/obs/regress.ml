type report = {
  failures : string list;
  notes : string list;
}

let schema_version = 2

let num = function
  | Some (Json.Float f) -> Some f
  | Some (Json.Int i) -> Some (float_of_int i)
  | _ -> None

let str = function Some (Json.String s) -> Some s | _ -> None

let scenario_name s = Option.value (str (Json.member "name" s)) ~default:"?"

let scenarios doc =
  match Json.member "scenarios" doc with
  | Some (Json.List l) -> Some l
  | _ -> None

(* A document predating the field carries no version; assume it is
   comparable rather than refusing every historical baseline. *)
let version doc =
  match Json.member "schema_version" doc with
  | Some (Json.Int v) -> Some v
  | _ -> None

let check ?(max_regress = 0.15) ~baseline ~current () =
  match (version baseline, version current) with
  | Some vb, Some vc when vb <> vc ->
      Error
        (Printf.sprintf
           "schema_version mismatch: baseline %d vs current %d — regenerate \
            the baseline"
           vb vc)
  | _ -> (
      let workload_mismatch =
        List.filter_map
          (fun key ->
            let b = Json.member key baseline and c = Json.member key current in
            match (b, c) with
            | Some b, Some c when b <> c ->
                Some
                  (Printf.sprintf "%s (baseline %s vs current %s)" key
                     (Json.to_string b) (Json.to_string c))
            | _ -> None)
          [ "mode"; "seed"; "n_events" ]
      in
      if workload_mismatch <> [] then
        Error
          ("workload mismatch: runs are not comparable: "
          ^ String.concat ", " workload_mismatch)
      else
        match (scenarios baseline, scenarios current) with
        | None, _ -> Error "baseline has no \"scenarios\" list"
        | _, None -> Error "current run has no \"scenarios\" list"
        | Some bases, Some curs ->
            let failures = ref [] and notes = ref [] in
            let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
            let note fmt = Printf.ksprintf (fun s -> notes := s :: !notes) fmt in
            let find name l =
              List.find_opt (fun s -> scenario_name s = name) l
            in
            List.iter
              (fun b ->
                let name = scenario_name b in
                match find name curs with
                | None -> fail "%s: scenario missing from current run" name
                | Some c -> (
                    (match
                       (str (Json.member "digest" b), str (Json.member "digest" c))
                     with
                    | Some db, Some dc when db <> dc ->
                        fail "%s: decision digest changed (%s -> %s)" name db dc
                    | _ -> ());
                    (match
                       ( str (Json.member "recovery_digest" b),
                         str (Json.member "recovery_digest" c) )
                     with
                    | Some db, Some dc when db <> dc ->
                        fail "%s: recovery digest changed (%s -> %s)" name db dc
                    | _ -> ());
                    match
                      ( num (Json.member "planning_wall_s" b),
                        num (Json.member "planning_wall_s" c) )
                    with
                    | Some wb, Some wc when wb > 0.0 ->
                        let ratio = wc /. wb in
                        if ratio > 1.0 +. max_regress then
                          fail
                            "%s: planning wall regressed %.1f%% (%.3fs -> \
                             %.3fs, tolerance %.0f%%)"
                            name
                            ((ratio -. 1.0) *. 100.0)
                            wb wc (max_regress *. 100.0)
                        else
                          note "%s: planning wall %.3fs vs baseline %.3fs (%+.1f%%)"
                            name wc wb
                            ((ratio -. 1.0) *. 100.0)
                    | _ -> note "%s: no comparable planning wall" name))
              bases;
            List.iter
              (fun c ->
                let name = scenario_name c in
                if find name bases = None then
                  note "%s: new scenario (no baseline)" name)
              curs;
            Ok { failures = List.rev !failures; notes = List.rev !notes })

(* Machine-readable companion to [check]: one object per scenario name
   seen in either document, best-effort even when the gate itself says
   the runs are incomparable (CI wants the partial picture attached to
   the failure, not nothing). *)

let scenario_list doc = Option.value (scenarios doc) ~default:[]

let opt_field name to_json = function
  | None -> []
  | Some v -> [ (name, to_json v) ]

let scenario_delta name b c =
  let wall s = num (Json.member "planning_wall_s" s) in
  let digest s = str (Json.member "digest" s) in
  let wb = Option.bind b wall and wc = Option.bind c wall in
  let db = Option.bind b digest and dc = Option.bind c digest in
  let wall_delta_pct =
    match (wb, wc) with
    | Some wb, Some wc when wb > 0.0 -> Some ((wc /. wb -. 1.0) *. 100.0)
    | _ -> None
  in
  let digest_match =
    match (db, dc) with Some db, Some dc -> Some (db = dc) | _ -> None
  in
  let status =
    match (b, c) with
    | Some _, Some _ -> "both"
    | Some _, None -> "missing_from_current"
    | None, Some _ -> "new_in_current"
    | None, None -> "absent"
  in
  Json.Obj
    ([ ("name", Json.String name); ("status", Json.String status) ]
    @ opt_field "planning_wall_baseline_s" (fun f -> Json.Float f) wb
    @ opt_field "planning_wall_current_s" (fun f -> Json.Float f) wc
    @ opt_field "planning_wall_delta_pct" (fun f -> Json.Float f) wall_delta_pct
    @ opt_field "digest_baseline" (fun s -> Json.String s) db
    @ opt_field "digest_current" (fun s -> Json.String s) dc
    @ opt_field "digest_match" (fun m -> Json.Bool m) digest_match)

let delta_json ?(max_regress = 0.15) ~baseline ~current () =
  let bases = scenario_list baseline and curs = scenario_list current in
  let find name l = List.find_opt (fun s -> scenario_name s = name) l in
  let names =
    List.map scenario_name bases
    @ List.filter_map
        (fun c ->
          let name = scenario_name c in
          if find name bases = None then Some name else None)
        curs
  in
  let deltas =
    List.map (fun name -> scenario_delta name (find name bases) (find name curs))
      names
  in
  let strings l = Json.List (List.map (fun s -> Json.String s) l) in
  let verdict =
    match check ~max_regress ~baseline ~current () with
    | Error reason ->
        [
          ("result", Json.String "incomparable");
          ("reason", Json.String reason);
          ("failures", strings []);
          ("notes", strings []);
        ]
    | Ok { failures; notes } ->
        [
          ( "result",
            Json.String (if failures = [] then "pass" else "fail") );
          ("failures", strings failures);
          ("notes", strings notes);
        ]
  in
  Json.Obj
    (verdict
    @ [
        ("max_regress", Json.Float max_regress);
        ("scenarios", Json.List deltas);
      ])
