type report = {
  failures : string list;
  notes : string list;
}

let schema_version = 2

let num = function
  | Some (Json.Float f) -> Some f
  | Some (Json.Int i) -> Some (float_of_int i)
  | _ -> None

let str = function Some (Json.String s) -> Some s | _ -> None

let scenario_name s = Option.value (str (Json.member "name" s)) ~default:"?"

let scenarios doc =
  match Json.member "scenarios" doc with
  | Some (Json.List l) -> Some l
  | _ -> None

(* A document predating the field carries no version; assume it is
   comparable rather than refusing every historical baseline. *)
let version doc =
  match Json.member "schema_version" doc with
  | Some (Json.Int v) -> Some v
  | _ -> None

let check ?(max_regress = 0.15) ~baseline ~current () =
  match (version baseline, version current) with
  | Some vb, Some vc when vb <> vc ->
      Error
        (Printf.sprintf
           "schema_version mismatch: baseline %d vs current %d — regenerate \
            the baseline"
           vb vc)
  | _ -> (
      let workload_mismatch =
        List.filter_map
          (fun key ->
            let b = Json.member key baseline and c = Json.member key current in
            match (b, c) with
            | Some b, Some c when b <> c ->
                Some
                  (Printf.sprintf "%s (baseline %s vs current %s)" key
                     (Json.to_string b) (Json.to_string c))
            | _ -> None)
          [ "mode"; "seed"; "n_events" ]
      in
      if workload_mismatch <> [] then
        Error
          ("workload mismatch: runs are not comparable: "
          ^ String.concat ", " workload_mismatch)
      else
        match (scenarios baseline, scenarios current) with
        | None, _ -> Error "baseline has no \"scenarios\" list"
        | _, None -> Error "current run has no \"scenarios\" list"
        | Some bases, Some curs ->
            let failures = ref [] and notes = ref [] in
            let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
            let note fmt = Printf.ksprintf (fun s -> notes := s :: !notes) fmt in
            let find name l =
              List.find_opt (fun s -> scenario_name s = name) l
            in
            List.iter
              (fun b ->
                let name = scenario_name b in
                match find name curs with
                | None -> fail "%s: scenario missing from current run" name
                | Some c -> (
                    (match
                       (str (Json.member "digest" b), str (Json.member "digest" c))
                     with
                    | Some db, Some dc when db <> dc ->
                        fail "%s: decision digest changed (%s -> %s)" name db dc
                    | _ -> ());
                    (match
                       ( str (Json.member "recovery_digest" b),
                         str (Json.member "recovery_digest" c) )
                     with
                    | Some db, Some dc when db <> dc ->
                        fail "%s: recovery digest changed (%s -> %s)" name db dc
                    | _ -> ());
                    match
                      ( num (Json.member "planning_wall_s" b),
                        num (Json.member "planning_wall_s" c) )
                    with
                    | Some wb, Some wc when wb > 0.0 ->
                        let ratio = wc /. wb in
                        if ratio > 1.0 +. max_regress then
                          fail
                            "%s: planning wall regressed %.1f%% (%.3fs -> \
                             %.3fs, tolerance %.0f%%)"
                            name
                            ((ratio -. 1.0) *. 100.0)
                            wb wc (max_regress *. 100.0)
                        else
                          note "%s: planning wall %.3fs vs baseline %.3fs (%+.1f%%)"
                            name wc wb
                            ((ratio -. 1.0) *. 100.0)
                    | _ -> note "%s: no comparable planning wall" name))
              bases;
            List.iter
              (fun c ->
                let name = scenario_name c in
                if find name bases = None then
                  note "%s: new scenario (no baseline)" name)
              curs;
            Ok { failures = List.rev !failures; notes = List.rev !notes })
