(** Per-domain observability mode.

    The {!Trace} sink and {!Histogram.Registry} are process-global,
    single-writer structures owned by the main domain. A probe worker
    domain (see [Nu_sched.Probe_pool]) calls {!enter_worker} once on
    startup; from then on the gates in {!Trace.enabled},
    {!Histogram.Registry.enabled} and friends report "off" on that
    domain, so code running in a worker emits no spans or samples and
    never races the main domain's sinks. {!Counters} are unaffected —
    they are domain-local and merged explicitly. *)

val in_worker : unit -> bool
(** True on a domain that called {!enter_worker}. *)

val enter_worker : unit -> unit
(** Mark the calling domain as an observability-silent worker. There is
    deliberately no way back: worker domains are short-lived. *)

val quietly : (unit -> 'a) -> 'a
(** Run [f] with the calling domain marked observability-silent,
    restoring the previous mode afterwards (exception-safe). Used by the
    main domain when it runs probe-batch lanes alongside workers: every
    parallel-batch probe is silent, whichever domain evaluates it. *)
