(* Per-domain observability mode. The trace sink and histogram registry
   are process-global single-writer structures; probe worker domains
   must not emit into them. Workers raise this flag on entry, and the
   Trace/Histogram gates read it — a worker sees tracing and sampling
   as disabled, while the main domain is unaffected. *)

let worker_flag : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)
let in_worker () = Domain.DLS.get worker_flag
let enter_worker () = Domain.DLS.set worker_flag true

let quietly f =
  let prev = Domain.DLS.get worker_flag in
  Domain.DLS.set worker_flag true;
  Fun.protect ~finally:(fun () -> Domain.DLS.set worker_flag prev) f
