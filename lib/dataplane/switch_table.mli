(** One switch's flow table.

    Rules are keyed by (flow id, version). Ingress switches additionally
    hold the *stamp* — the version tag they write onto a flow's packets;
    flipping the stamp is the single atomic step of a two-phase update.
    Capacity accounting (rule-memory occupancy) is tracked because the
    cost of keeping two rule generations alive is the classic objection
    to two-phase updates (paper §VI: "reduce the overhead of keeping new
    and old configurations at related switches"). *)

type t

val create : unit -> t

val install : t -> Rule.t -> unit
(** Idempotent: re-installing an identical rule is a no-op. *)

val uninstall : t -> flow_id:int -> version:int -> bool
(** Remove the rule for (flow, version); returns whether it existed. *)

val lookup : t -> flow_id:int -> version:int -> Rule.t option

val rules : t -> Rule.t list
(** All installed rules, sorted. *)

val rule_count : t -> int

val versions_of : t -> flow_id:int -> int list
(** Versions installed for a flow, ascending. *)

val set_stamp : t -> flow_id:int -> version:int -> unit
(** Declare this switch the ingress of [flow_id], stamping packets with
    [version]. *)

val stamp : t -> flow_id:int -> int option
(** Current ingress stamp for a flow at this switch, if it is the
    flow's ingress. *)

val clear_stamp : t -> flow_id:int -> unit

val pp : Format.formatter -> t -> unit
