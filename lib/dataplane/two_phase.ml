type transition = {
  flow_id : int;
  old_path : Path.t option;
  new_path : Path.t;
  old_version : int;
  new_version : int;
}

let transition_of fabric ~flow_id ~old_path ~new_path =
  let ingress = Path.src new_path in
  match Switch_table.stamp (Fabric.table fabric ingress) ~flow_id with
  | Some v -> { flow_id; old_path; new_path; old_version = v; new_version = v + 1 }
  | None -> { flow_id; old_path; new_path; old_version = 0; new_version = 0 }

let transitions_of_plan fabric (plan : Nu_update.Planner.t) =
  List.concat_map
    (fun (item : Nu_update.Planner.item_plan) ->
      let moves =
        match item.Nu_update.Planner.outcome with
        | Nu_update.Planner.Installed { moves; _ }
        | Nu_update.Planner.Rerouted { moves; _ } ->
            List.map
              (fun (m : Nu_update.Migration.move) ->
                transition_of fabric ~flow_id:m.Nu_update.Migration.flow_id
                  ~old_path:(Some m.Nu_update.Migration.from_path)
                  ~new_path:m.Nu_update.Migration.to_path)
              moves
        | Nu_update.Planner.Failed _ -> []
      in
      let own =
        match (item.Nu_update.Planner.outcome, item.Nu_update.Planner.work) with
        | Nu_update.Planner.Installed { path; _ }, Nu_update.Event.Install r ->
            [ transition_of fabric ~flow_id:r.Flow_record.id ~old_path:None
                ~new_path:path ]
        | ( Nu_update.Planner.Rerouted { from_path; to_path; _ },
            Nu_update.Event.Reroute { flow_id; _ } ) ->
            [ transition_of fabric ~flow_id ~old_path:(Some from_path)
                ~new_path:to_path ]
        | _ -> []
      in
      moves @ own)
    plan.Nu_update.Planner.items

type stats = {
  transitions : int;
  rules_installed : int;
  rules_removed : int;
  peak_extra_rules : int;
  flips : int;
}

let stage fabric transitions =
  let before = Fabric.total_rules fabric in
  List.iter
    (fun tr ->
      Fabric.install_path_rules fabric ~flow_id:tr.flow_id
        ~version:tr.new_version tr.new_path)
    transitions;
  Fabric.total_rules fabric - before

let flip fabric tr =
  (* One atomic write at the (new) ingress. For a rerouted flow whose
     ingress moved (it cannot in this model: paths share endpoints), the
     old stamp would be cleared here too. *)
  Fabric.set_ingress fabric ~flow_id:tr.flow_id
    ~ingress:(Path.src tr.new_path) ~version:tr.new_version

let collect fabric tr =
  match tr.old_path with
  | None -> 0
  | Some old_path ->
      if tr.old_version = tr.new_version then 0
      else begin
        let before = Fabric.total_rules fabric in
        Fabric.uninstall_path_rules fabric ~flow_id:tr.flow_id
          ~version:tr.old_version old_path;
        before - Fabric.total_rules fabric
      end

let execute fabric transitions =
  let base = Fabric.total_rules fabric in
  let rules_installed = stage fabric transitions in
  let peak_extra_rules = Fabric.total_rules fabric - base in
  List.iter (flip fabric) transitions;
  let rules_removed =
    List.fold_left (fun acc tr -> acc + collect fabric tr) 0 transitions
  in
  {
    transitions = List.length transitions;
    rules_installed;
    rules_removed;
    peak_extra_rules;
    flips = List.length transitions;
  }

type install_fault =
  switch:int -> flow_id:int -> [ `Drop | `Delay of float ] option

type fault_report = {
  stats : stats;
  dropped_flow_ids : int list;
  delayed_hops : int;
  extra_latency_s : float;
}

(* Per-hop verdicts for one transition's staging: how many installs the
   fabric dropped, how many acked late and by how much. *)
let hop_faults ~fault tr =
  List.fold_left
    (fun (drops, delays, delay_s) (e : Graph.edge) ->
      match fault ~switch:e.Graph.src ~flow_id:tr.flow_id with
      | Some `Drop -> (drops + 1, delays, delay_s)
      | Some (`Delay d) -> (drops, delays + 1, delay_s +. d)
      | None -> (drops, delays, delay_s))
    (0, 0, 0.0) (Path.edges tr.new_path)

let execute_with_faults fabric ~fault transitions =
  let base = Fabric.total_rules fabric in
  (* Stage everything first, mirroring [execute], then roll back every
     transition with a dropped install: the controller never flips a
     flow whose new rules are not all acknowledged, so a faulted flow
     keeps its old configuration verbatim — old rules, old ingress
     stamp — and per-packet consistency is preserved. Late acks only
     stretch the stage phase; the flip still happens. *)
  let staged =
    List.map
      (fun tr ->
        let before = Fabric.total_rules fabric in
        Fabric.install_path_rules fabric ~flow_id:tr.flow_id
          ~version:tr.new_version tr.new_path;
        let installed = Fabric.total_rules fabric - before in
        let drops, delays, delay_s = hop_faults ~fault tr in
        (tr, installed, drops, delays, delay_s))
      transitions
  in
  let peak_extra_rules = Fabric.total_rules fabric - base in
  let ok, dropped =
    List.partition (fun (_, _, drops, _, _) -> drops = 0) staged
  in
  List.iter
    (fun (tr, _, _, _, _) ->
      Fabric.uninstall_path_rules fabric ~flow_id:tr.flow_id
        ~version:tr.new_version tr.new_path)
    dropped;
  List.iter (fun (tr, _, _, _, _) -> flip fabric tr) ok;
  let rules_removed =
    List.fold_left (fun acc (tr, _, _, _, _) -> acc + collect fabric tr) 0 ok
  in
  {
    stats =
      {
        transitions = List.length transitions;
        rules_installed =
          List.fold_left (fun acc (_, n, _, _, _) -> acc + n) 0 ok;
        rules_removed;
        peak_extra_rules;
        flips = List.length ok;
      };
    dropped_flow_ids =
      List.map (fun (tr, _, _, _, _) -> tr.flow_id) dropped;
    delayed_hops =
      List.fold_left (fun acc (_, _, _, d, _) -> acc + d) 0 ok;
    extra_latency_s =
      List.fold_left (fun acc (_, _, _, _, s) -> acc +. s) 0.0 ok;
  }

let pp_stats ppf s =
  Format.fprintf ppf
    "two-phase[%d transitions, +%d rules staged (peak overhead %d), %d \
     flips, %d rules collected]"
    s.transitions s.rules_installed s.peak_extra_rules s.flips s.rules_removed
