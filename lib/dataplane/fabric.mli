(** The simulated dataplane: one {!Switch_table} per node.

    This is what the control-plane abstractions are verified against: a
    packet of flow f enters at the ingress, gets stamped with the
    ingress's current version tag, and is then forwarded hop by hop by
    (flow, version)-matching rules. The walker detects loops and
    black holes — the two anomalies per-packet consistency is supposed to
    exclude (Reitblatt et al.). *)

type t

val create : Graph.t -> t
(** Empty tables on every node. *)

val graph : t -> Graph.t
val table : t -> int -> Switch_table.t
(** Table of a node id. *)

val install_path_rules : t -> flow_id:int -> version:int -> Path.t -> unit
(** Install the forwarding rule of every hop of [path] under [version].
    Does not touch the ingress stamp. *)

val uninstall_path_rules : t -> flow_id:int -> version:int -> Path.t -> unit
(** Remove those rules (missing rules are ignored). *)

val set_ingress : t -> flow_id:int -> ingress:int -> version:int -> unit
(** Atomically (re)stamp the flow's packets at its ingress node. *)

val total_rules : t -> int

val of_net : Net_state.t -> t
(** Build the dataplane matching a network state: version-0 rules along
    every placed flow's path, ingress stamp at the path source. *)

type outcome =
  | Arrived of { at : int; hops : int }
      (** The packet left the rule-covered region at node [at] (for a
          correct configuration, the flow's destination host). *)
  | Black_hole of { at : int }
      (** No ingress stamp — the flow cannot even be injected. *)
  | Looped of { at : int }  (** The walk revisited node [at]. *)

val forward : t -> flow_id:int -> src:int -> outcome
(** Walk a packet of [flow_id] injected at [src]. *)

val verify_flow : t -> Net_state.t -> flow_id:int -> (unit, string) result
(** The packet walk must arrive exactly at the flow's destination node.
    Errors name the failing node. *)

val verify_all : t -> Net_state.t -> (unit, string) result
(** {!verify_flow} over every placed flow. *)
