(** Forwarding rules.

    The simulated SDN dataplane matches packets on (flow id, version
    tag): version tags are the mechanism of per-flow consistent updates
    (Reitblatt et al., the paper's related-work category "consistent
    update") — a packet stamped with version v at the ingress is
    forwarded by v-tagged rules everywhere, so it traverses either the
    old or the new configuration, never a mix. *)

type t = {
  flow_id : int;
  version : int;  (** Configuration version this rule belongs to. *)
  out_edge : int;  (** Edge id the packet is forwarded onto. *)
}

val v : flow_id:int -> version:int -> out_edge:int -> t
(** Checked constructor: non-negative fields. *)

val matches : t -> flow_id:int -> version:int -> bool

val compare : t -> t -> int
(** Orders by (flow id, version, out edge). *)

val pp : Format.formatter -> t -> unit
