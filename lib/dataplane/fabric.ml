type t = { graph : Graph.t; tables : Switch_table.t array }

let create graph =
  {
    graph;
    tables = Array.init (Graph.node_count graph) (fun _ -> Switch_table.create ());
  }

let graph t = t.graph

let table t node =
  if node < 0 || node >= Array.length t.tables then
    invalid_arg "Fabric.table: node id";
  t.tables.(node)

let install_path_rules t ~flow_id ~version path =
  List.iter
    (fun (e : Graph.edge) ->
      Switch_table.install t.tables.(e.src)
        (Rule.v ~flow_id ~version ~out_edge:e.id))
    (Path.edges path)

let uninstall_path_rules t ~flow_id ~version path =
  List.iter
    (fun (e : Graph.edge) ->
      ignore (Switch_table.uninstall t.tables.(e.src) ~flow_id ~version))
    (Path.edges path)

let set_ingress t ~flow_id ~ingress ~version =
  Switch_table.set_stamp (table t ingress) ~flow_id ~version

let total_rules t =
  Array.fold_left (fun acc tbl -> acc + Switch_table.rule_count tbl) 0 t.tables

let of_net net =
  let t = create (Net_state.graph net) in
  Net_state.iter_flows net (fun placed ->
      let flow_id = placed.Net_state.record.Flow_record.id in
      install_path_rules t ~flow_id ~version:0 placed.Net_state.path;
      set_ingress t ~flow_id ~ingress:(Path.src placed.Net_state.path)
        ~version:0);
  t

type outcome =
  | Arrived of { at : int; hops : int }
  | Black_hole of { at : int }
  | Looped of { at : int }

let forward t ~flow_id ~src =
  match Switch_table.stamp (table t src) ~flow_id with
  | None -> Black_hole { at = src }
  | Some version ->
      let visited = Hashtbl.create 16 in
      let rec walk node hops =
        if Hashtbl.mem visited node then Looped { at = node }
        else begin
          Hashtbl.replace visited node ();
          match Switch_table.lookup t.tables.(node) ~flow_id ~version with
          | None -> Arrived { at = node; hops }
          | Some rule ->
              let e = Graph.edge t.graph rule.Rule.out_edge in
              if e.src <> node then Looped { at = node }
                (* a rule pointing at a non-incident edge is corrupt;
                   surfaced as a routing anomaly *)
              else walk e.dst (hops + 1)
        end
      in
      walk src 0

let verify_flow t net ~flow_id =
  match Net_state.flow net flow_id with
  | None -> Error (Printf.sprintf "flow %d is not placed" flow_id)
  | Some placed -> (
      let src = Path.src placed.Net_state.path in
      let dst = Path.dst placed.Net_state.path in
      match forward t ~flow_id ~src with
      | Arrived { at; _ } when at = dst -> Ok ()
      | Arrived { at; _ } ->
          Error (Printf.sprintf "flow %d stranded at node %d (wants %d)" flow_id at dst)
      | Black_hole { at } ->
          Error (Printf.sprintf "flow %d black-holed at node %d" flow_id at)
      | Looped { at } ->
          Error (Printf.sprintf "flow %d loops at node %d" flow_id at))

let verify_all t net =
  let err = ref None in
  Net_state.iter_flows net (fun placed ->
      if !err = None then
        match verify_flow t net ~flow_id:placed.Net_state.record.Flow_record.id with
        | Ok () -> ()
        | Error e -> err := Some e);
  match !err with None -> Ok () | Some e -> Error e
