(** Two-phase per-flow consistent updates (Reitblatt et al.; the paper's
    related-work category "consistent update").

    Moving a set of flows to new paths in three phases:

    + {b stage} — install the new-version rules at every switch of every
      new path (old rules stay; rule memory temporarily doubles for the
      touched flows — the overhead the paper's §VI discusses);
    + {b flip} — atomically re-stamp each flow's ingress to the new
      version. Between flips the network is mixed, but every packet is
      consistently old *or* new, never both;
    + {b garbage-collect} — remove the old-version rules.

    The module consumes the transitions an applied {!Nu_update.Planner.t}
    implies (installs, the event's reroutes, and the make-room
    migrations) and executes them against a {!Fabric}. *)

type transition = {
  flow_id : int;
  old_path : Path.t option;  (** [None] for a brand-new flow. *)
  new_path : Path.t;
  old_version : int;
  new_version : int;
}

val transitions_of_plan : Fabric.t -> Nu_update.Planner.t -> transition list
(** Derive the transitions of an applied plan. The old/new version of
    each flow is read from the fabric's current ingress stamp (new flows
    start at version 0). Transition order follows the plan. *)

type stats = {
  transitions : int;
  rules_installed : int;  (** New-version rules written in the stage. *)
  rules_removed : int;  (** Old-version rules collected. *)
  peak_extra_rules : int;  (** Maximum simultaneous rule overhead. *)
  flips : int;
}

val stage : Fabric.t -> transition list -> int
(** Phase 1. Returns the number of rules installed. *)

val flip : Fabric.t -> transition -> unit
(** Phase 2 for one flow (atomic). *)

val collect : Fabric.t -> transition -> int
(** Phase 3 for one flow. Returns the number of rules removed. *)

val execute : Fabric.t -> transition list -> stats
(** Run all three phases in order (all stages, then flips in transition
    order, then all collections) and report the overheads. *)

type install_fault =
  switch:int -> flow_id:int -> [ `Drop | `Delay of float ] option
(** Per-hop install-fault oracle, consulted once per (switch, flow) rule
    write during staging. [`Drop] means the switch never acknowledged
    the install; [`Delay d] means it acked [d] seconds late.
    {!Nu_fault.Fault_model.install_hazard} partially applied is one. *)

type fault_report = {
  stats : stats;  (** Overheads of what actually went through. *)
  dropped_flow_ids : int list;
      (** Transitions rolled back because an install was dropped: their
          new-version rules were unstaged and the flip never issued, so
          those flows keep the old configuration verbatim. *)
  delayed_hops : int;  (** Installs that acked late (flip still ran). *)
  extra_latency_s : float;  (** Summed injected install latency. *)
}

val execute_with_faults :
  Fabric.t -> fault:install_fault -> transition list -> fault_report
(** {!execute} under an install-fault oracle. A transition with any
    dropped install is aborted: its staged rules are removed again and
    its flip is skipped — the two-phase protocol's safety net, leaving
    the dataplane exactly as before for that flow. Delayed installs
    stretch the stage phase ([extra_latency_s]) but do not abort.
    With an oracle that never fires, the result's [stats] equals
    [execute]'s. *)

val pp_stats : Format.formatter -> stats -> unit
