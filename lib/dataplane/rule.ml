type t = { flow_id : int; version : int; out_edge : int }

let v ~flow_id ~version ~out_edge =
  if flow_id < 0 then invalid_arg "Rule.v: flow_id";
  if version < 0 then invalid_arg "Rule.v: version";
  if out_edge < 0 then invalid_arg "Rule.v: out_edge";
  { flow_id; version; out_edge }

let matches t ~flow_id ~version = t.flow_id = flow_id && t.version = version

let compare a b =
  match Stdlib.compare a.flow_id b.flow_id with
  | 0 -> (
      match Stdlib.compare a.version b.version with
      | 0 -> Stdlib.compare a.out_edge b.out_edge
      | c -> c)
  | c -> c

let pp ppf t =
  Format.fprintf ppf "rule[flow %d v%d -> edge %d]" t.flow_id t.version
    t.out_edge
