type t = {
  rules : (int * int, Rule.t) Hashtbl.t;  (* (flow, version) -> rule *)
  stamps : (int, int) Hashtbl.t;  (* flow -> ingress version stamp *)
}

let create () = { rules = Hashtbl.create 64; stamps = Hashtbl.create 8 }

let install t (rule : Rule.t) =
  Hashtbl.replace t.rules (rule.Rule.flow_id, rule.Rule.version) rule

let uninstall t ~flow_id ~version =
  let existed = Hashtbl.mem t.rules (flow_id, version) in
  Hashtbl.remove t.rules (flow_id, version);
  existed

let lookup t ~flow_id ~version = Hashtbl.find_opt t.rules (flow_id, version)

let rules t =
  Hashtbl.fold (fun _ r acc -> r :: acc) t.rules [] |> List.sort Rule.compare

let rule_count t = Hashtbl.length t.rules

let versions_of t ~flow_id =
  Hashtbl.fold
    (fun (fid, version) _ acc -> if fid = flow_id then version :: acc else acc)
    t.rules []
  |> List.sort compare

let set_stamp t ~flow_id ~version = Hashtbl.replace t.stamps flow_id version
let stamp t ~flow_id = Hashtbl.find_opt t.stamps flow_id
let clear_stamp t ~flow_id = Hashtbl.remove t.stamps flow_id

let pp ppf t =
  Format.fprintf ppf "table[%d rules, %d ingress flows]" (rule_count t)
    (Hashtbl.length t.stamps)
