(** Inter-event scheduling policies (paper §III-C, §IV).

    All policies consume the same arrival-ordered queue of update events;
    they differ in which event(s) each service round executes:

    - {!Fifo}: strict arrival order, one event per round — maximally fair,
      suffers head-of-line blocking under heavy-tailed event sizes.
    - {!Reorder}: the "intrinsic" strawman — recompute every queued
      event's cost each round and run the cheapest; best ECTs in theory,
      huge plan time and no fairness.
    - {!Lmtf}: least migration traffic first — sample α random non-head
      events, cost them together with the head, run the cheapest of the
      α+1 (power-of-d-choices; §IV-B).
    - {!Plmtf}: parallel LMTF — LMTF head selection, then opportunistically
      co-execute the other α candidates, visited in arrival order, when
      they remain satisfiable alongside the new head (§IV-C).
    - {!Flow_level}: the paper's baseline abstraction — individual flows
      scheduled with no event grouping; an event finishes when its last
      flow does. *)

type flow_order =
  | Round_robin
      (** Interleave: first flows of every queued event, then second
          flows, ... (the ordering depicted in the paper's Fig. 2a). *)
  | By_arrival  (** Strictly by flow arrival time, then event id. *)

type t =
  | Fifo
  | Reorder
  | Lmtf of { alpha : int }
  | Plmtf of { alpha : int }
  | Flow_level of flow_order

val name : t -> string
(** Short stable identifier ("fifo", "lmtf(a=4)", ...). *)

val default_alpha : int
(** 4 — the paper's evaluation setting. *)

val validate : t -> (unit, string) result
(** Rejects non-positive α. *)
