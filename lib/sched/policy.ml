type flow_order = Round_robin | By_arrival

type t =
  | Fifo
  | Reorder
  | Lmtf of { alpha : int }
  | Plmtf of { alpha : int }
  | Flow_level of flow_order

let name = function
  | Fifo -> "fifo"
  | Reorder -> "reorder"
  | Lmtf { alpha } -> Printf.sprintf "lmtf(a=%d)" alpha
  | Plmtf { alpha } -> Printf.sprintf "p-lmtf(a=%d)" alpha
  | Flow_level Round_robin -> "flow-level(rr)"
  | Flow_level By_arrival -> "flow-level(arrival)"

let default_alpha = 4

let validate = function
  | Lmtf { alpha } | Plmtf { alpha } ->
      if alpha < 1 then Error "alpha must be >= 1" else Ok ()
  | Fifo | Reorder | Flow_level _ -> Ok ()
