let fnv_prime = 0x100000001b3L
let fnv_basis = 0xcbf29ce484222325L

let fnv64 h x =
  let h = Int64.logxor h x in
  Int64.mul h fnv_prime

let fnv_float h f = fnv64 h (Int64.bits_of_float f)
let fnv_int h i = fnv64 h (Int64.of_int i)

let fnv_string h s =
  String.fold_left (fun h c -> fnv_int h (Char.code c)) h s

(* A single digest passes through unchanged, so a one-shard fabric's
   combined digest equals its lone controller's — the N=1 differential
   against single-controller serving compares raw strings. *)
let combine = function
  | [ d ] -> d
  | ds ->
      let h =
        List.fold_left (fun h d -> fnv_int (fnv_string h d) 0x1f) fnv_basis ds
      in
      Printf.sprintf "%016Lx" h

let of_run (r : Engine.run_result) =
  let h = ref fnv_basis in
  Array.iter
    (fun (e : Engine.event_result) ->
      h := fnv_int !h e.Engine.event_id;
      h := fnv_float !h e.Engine.arrival_s;
      h := fnv_float !h e.Engine.start_s;
      h := fnv_float !h e.Engine.completion_s;
      h := fnv_float !h e.Engine.cost_mbit;
      h := fnv_int !h e.Engine.plan_work_units;
      h := fnv_int !h e.Engine.failed_items;
      h := fnv_int !h (if e.Engine.co_scheduled then 1 else 0))
    r.Engine.events;
  h := fnv_int !h r.Engine.rounds;
  h := fnv_int !h r.Engine.total_plan_units;
  h := fnv_float !h r.Engine.total_cost_mbit;
  h := fnv_float !h r.Engine.makespan_s;
  (* fabric_utilization is deliberately left out: it is telemetry whose
     low-order bits depend on summation order (the incremental Kahan sum
     vs a fresh fold), not a scheduling decision. The digest covers the
     decisions — ECTs, costs, rounds, batches, work units. *)
  List.iter
    (fun (ri : Engine.round_info) ->
      h := fnv_float !h ri.Engine.round_start_s;
      List.iter (fun id -> h := fnv_int !h id) ri.Engine.executed;
      h := fnv_int !h ri.Engine.round_units)
    r.Engine.rounds_log;
  Printf.sprintf "%016Lx" !h
