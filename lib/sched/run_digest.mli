(** Stable 64-bit digest of a {!Engine.run_result}.

    FNV-1a over every scheduling decision the run made: per-event ids,
    arrival/start/completion instants, costs, work units, failure
    counts and co-scheduling flags; total rounds, plan units, cost and
    makespan; and the per-round log (start instant, executed batch,
    units). Two runs digest equal iff they made bit-identical
    decisions — the acceptance gate for determinism-preserving
    refactors, checkpoint/restore and replay.

    Wall-clock time and fabric utilisation are excluded: the former is
    real time, the latter's low-order bits depend on summation order
    (incremental Kahan sum vs fresh fold), not on any decision. *)

val of_run : Engine.run_result -> string
(** 16-hex-digit digest, e.g. ["a3f0c2..."]. *)

val combine : string list -> string
(** Fold a list of component digests (per-shard runs, a coordinator
    log) into one fabric digest. [combine [d] = d], so a one-shard
    fabric digests exactly like its lone controller; with several
    components the result is an FNV-1a fold over the ordered,
    separator-delimited digest strings. *)
