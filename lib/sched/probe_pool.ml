module Counters = Nu_obs.Counters

(* Persistent probe-worker pool: [n_workers] long-lived domains, each
   holding a redo-synchronised mirror of the shared state (see the
   interface comment for the protocol).

   Batch handoff is a single atomic cell carrying an epoch-stamped job.
   The job's work closure erases the per-call item/result types, so the
   worker loop itself is monomorphic: it replays the batch's redo log
   into its mirror, runs the closure on the mirror, parks its drained
   counter delta in its slot, and bumps the completion count. Epochs
   only ever advance by one (map is serial on the owner domain), so
   "epoch different from the last one I ran" is exactly "a new batch".

   Memory ordering: the owner publishes the job with an atomic set
   (release) and workers read it with an atomic get (acquire); workers
   write results and counter slots before the atomic completion
   increment, and the owner reads them only after observing the count —
   every non-atomic write is ordered by an atomic edge.

   The owner domain is always one of the lanes, probing the live state
   directly — both a free worker and insurance that no domain sits in a
   blocking join while others allocate (a blocked domain answers
   stop-the-world requests through its backup thread, a slow futex
   handshake on older kernels; a spinning or working domain answers at
   its next poll point). *)

type job = {
  j_epoch : int;
  j_redo : Net_state.redo;
  j_run : Net_state.t -> unit;
}

type msg = Run of job | Quit

type t = {
  net : Net_state.t;
  n_workers : int;
  mutable doms : unit Domain.t array;
  cell : msg option Atomic.t;
  done_c : int Atomic.t;  (* cumulative worker completions *)
  deltas : Counters.snapshot option array;  (* per-worker, per batch *)
  mutable epoch : int;
  mutable closed : bool;
}

let worker_loop pool ix ready =
  Nu_obs.Obs_domain.enter_worker ();
  let mirror = Net_state.snapshot pool.net in
  Atomic.incr ready;
  let rec loop seen =
    match Atomic.get pool.cell with
    | Some (Run j) when j.j_epoch <> seen ->
        Net_state.redo_apply mirror j.j_redo;
        j.j_run mirror;
        pool.deltas.(ix) <- Some (Counters.drain ());
        Atomic.incr pool.done_c;
        loop j.j_epoch
    | Some Quit -> ()
    | Some (Run _) | None ->
        Domain.cpu_relax ();
        loop seen
  in
  loop 0

let create ~domains ~net =
  let n_workers = max 0 (domains - 1) in
  (* Recording starts before the mirrors are taken and the caller is
     parked below until they all exist, so no committed op can fall in
     the gap between a mirror's snapshot and the first drained log. *)
  if n_workers > 0 then Net_state.redo_start net;
  let pool =
    {
      net;
      n_workers;
      doms = [||];
      cell = Atomic.make None;
      done_c = Atomic.make 0;
      deltas = Array.make (max 1 n_workers) None;
      epoch = 0;
      closed = false;
    }
  in
  let ready = Atomic.make 0 in
  pool.doms <-
    Array.init n_workers (fun ix ->
        Domain.spawn (fun () -> worker_loop pool ix ready));
  while Atomic.get ready < n_workers do
    Domain.cpu_relax ()
  done;
  pool

let domains pool = pool.n_workers + 1

let map pool ~f items =
  if pool.closed then invalid_arg "Probe_pool.map: pool is shut down";
  let n = Array.length items in
  if n = 0 then [||]
  else begin
    let results = Array.make n None in
    let cursor = Atomic.make 0 in
    let run_lane lane =
      let rec claim () =
        let i = Atomic.fetch_and_add cursor 1 in
        if i < n then begin
          results.(i) <- Some (f lane items.(i));
          claim ()
        end
      in
      claim ()
    in
    if pool.n_workers > 0 then begin
      let redo = Net_state.redo_drain pool.net in
      pool.epoch <- pool.epoch + 1;
      Atomic.set pool.cell
        (Some (Run { j_epoch = pool.epoch; j_redo = redo; j_run = run_lane }))
    end;
    Nu_obs.Obs_domain.quietly (fun () -> run_lane pool.net);
    if pool.n_workers > 0 then begin
      let target = pool.n_workers * pool.epoch in
      while Atomic.get pool.done_c < target do
        Domain.cpu_relax ()
      done;
      Array.iteri
        (fun ix d ->
          match d with
          | Some delta ->
              Counters.absorb delta;
              pool.deltas.(ix) <- None
          | None -> ())
        pool.deltas
    end;
    Array.map
      (function
        | Some v -> v
        | None -> invalid_arg "Probe_pool.map: unfilled result slot")
      results
  end

let shutdown pool =
  if not pool.closed then begin
    pool.closed <- true;
    if pool.n_workers > 0 then begin
      Atomic.set pool.cell (Some Quit);
      Array.iter Domain.join pool.doms;
      Net_state.redo_stop pool.net
    end
  end
