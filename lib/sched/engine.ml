module Trace = Nu_obs.Trace
module Counters = Nu_obs.Counters
module Histogram = Nu_obs.Histogram
module Series = Nu_obs.Series
module Injector = Nu_fault.Injector

type event_result = {
  event_id : int;
  arrival_s : float;
  start_s : float;
  completion_s : float;
  cost_mbit : float;
  plan_work_units : int;
  failed_items : int;
  co_scheduled : bool;
}

let ect r = r.completion_s -. r.arrival_s
let queuing_delay r = r.start_s -. r.arrival_s

type round_info = {
  round_start_s : float;
  executed : int list;
  co_count : int;
  round_units : int;
  fabric_utilization : float;
}

(* Stepper progress callbacks for external observers (the serving
   telemetry layer). Observations are emitted after the corresponding
   state mutation and carry copies of already-computed values only —
   an observer can record but never perturb a decision. *)
type observation =
  | Round_executed of {
      round : int;
      start_s : float;
      executed : int list;
      co_ids : int list;
      degraded : bool;
    }
  | Round_aborted of {
      round : int;
      start_s : float;
      fault_s : float;
      batch : int list;
    }
  | Event_completed of { result : event_result; degraded : bool }
  | Event_retry of { event_id : int; ready_s : float }
  | Round_escalated of { round : int; start_s : float; event_id : int }

type run_result = {
  policy : Policy.t;
  events : event_result array;
  rounds : int;
  rounds_log : round_info list;
  total_plan_units : int;
  total_plan_time_s : float;
  total_cost_mbit : float;
  makespan_s : float;
  final_fabric_utilization : float;
  planning_wall_s : float;
}

type churn = {
  make_flow : id:int -> Flow_record.t;
  target_utilization : float;
  max_placements_per_round : int;
  first_id : int;
}

(* Shared per-run mutable accounting. *)
type ctx = {
  net : Net_state.t;
  exec : Exec_model.t;
  config : Planner.config;
  rng : Prng.t;
  churn : churn option;
  expiry : int Pqueue.t;  (* flow id keyed by departure instant *)
  co_max_cost_mbit : float;
  cache : Estimate_cache.t option;  (* memoised probes; None = disabled *)
  injector : Injector.t option;  (* fault schedule; None = fault-free *)
  series : Series.t option;  (* per-round gauge samples; None = off *)
  domains : int;  (* probe fan-out width; 1 = sequential *)
  mutable next_churn_id : int;
  mutable units : int;  (* plan-time-billable probes *)
  mutable wall : float;  (* real planner CPU seconds *)
  mutable memo_warmed : bool;  (* warm_all_paths ran (parallel mode) *)
  mutable pool : Probe_pool.t option;
      (* persistent worker domains; created at the first fanned-out
         batch, torn down by [close] (the batch [run] does it on exit;
         a stepper owner calls [Stepper.close]) *)
}

(* Expire flows whose departure has passed, then refill the background to
   the churn setpoint. Called at each service round boundary. *)
let sync_background ctx now =
  match ctx.churn with
  | None -> ()
  | Some ch ->
      let rec expire () =
        match Pqueue.peek ctx.expiry with
        | Some (dep, flow_id) when dep <= now ->
            ignore (Pqueue.pop ctx.expiry);
            (* The flow may already be gone (e.g. double registration);
               removal is idempotent through the error case. *)
            (match Net_state.remove ctx.net flow_id with
            | Ok _ | Error `Not_found -> ());
            expire ()
        | Some _ | None -> ()
      in
      expire ();
      let attempts = ref 0 and placed = ref 0 in
      let max_attempts = 3 * ch.max_placements_per_round in
      while
        !placed < ch.max_placements_per_round
        && !attempts < max_attempts
        && Net_state.mean_fabric_utilization ctx.net < ch.target_utilization
      do
        incr attempts;
        let id = ctx.next_churn_id in
        ctx.next_churn_id <- id + 1;
        let record = ch.make_flow ~id in
        match Routing.select ~rng:ctx.rng ctx.net record with
        | None -> ()
        | Some path -> (
            match Net_state.place ctx.net record path with
            | Ok () ->
                incr placed;
                Counters.incr Counters.Churn_placements;
                Pqueue.push ctx.expiry
                  (now +. record.Flow_record.duration_s)
                  record.Flow_record.id
            | Error _ -> ())
      done

(* Register departures for the flows an executed plan installed. *)
let schedule_departures ctx ~completion (plan : Planner.t) =
  if Option.is_some ctx.churn then
    List.iter
      (fun (item : Planner.item_plan) ->
        match (item.outcome, item.work) with
        | Planner.Installed _, Event.Install r ->
            Pqueue.push ctx.expiry
              (completion +. r.Flow_record.duration_s)
              r.Flow_record.id
        | _ -> ())
      plan.Planner.items

(* Monotonic wall clock, not [Sys.time]: getrusage is a real syscall on
   the per-probe path, and process CPU time sums across domains — the
   parallel fan-out would report more "planning wall" the more domains
   it used. *)
let timed ctx f =
  let t0 = Monotonic_clock.now () in
  let v = f () in
  ctx.wall <-
    ctx.wall +. (Int64.to_float (Int64.sub (Monotonic_clock.now ()) t0) *. 1e-9);
  v

let series_columns =
  [
    "round";
    "queue_len";
    "retry_backlog";
    "active_flows";
    "mean_fabric_utilization";
    "max_link_utilization";
  ]

let make_series ?capacity () =
  Series.create ?capacity ~columns:series_columns ()

(* One gauge row per service round, sampled at the decision instant
   (after background sync, before planning). Pure reads of the network
   state — attaching a series cannot perturb a scheduling decision —
   and with no series attached the cost is one match on [None]. *)
let sample_series ctx ~round ~t_s ~queue_len ~retry_backlog =
  match ctx.series with
  | None -> ()
  | Some s ->
      Series.sample s ~t_s
        [|
          float_of_int round;
          float_of_int queue_len;
          float_of_int retry_backlog;
          float_of_int (Net_state.flow_count ctx.net);
          Net_state.mean_fabric_utilization ctx.net;
          Net_state.max_utilization ctx.net;
        |]

(* Plan-and-rollback probe; billed. A cache hit bills the identical
   simulated work units a fresh probe would have reported (the stamps
   guarantee the fresh probe would recompute the same plan), so the
   virtual timeline is independent of the cache — only the real planner
   wall time shrinks. *)
let probe_event ctx ev =
  let cached =
    match ctx.cache with
    | Some c -> Estimate_cache.find c ctx.net ev.Event.id
    | None -> None
  in
  let pr =
    match cached with
    | Some pr -> pr
    | None ->
        let pr =
          timed ctx (fun () ->
              Planner.probe ~rng:ctx.rng ~config:ctx.config ctx.net ev)
        in
        (match ctx.cache with
        | Some c -> Estimate_cache.store c ctx.net pr
        | None -> ());
        pr
  in
  ctx.units <- ctx.units + pr.Planner.probe_est.Planner.est_work_units;
  pr

(* Probe a round's whole candidate list.

   Sequentially this is exactly [List.map (probe_event ctx)]. With
   [domains > 1] the cache-missing probes are fanned out across worker
   domains ({!Probe_pool}), and the result is bit-identical to the
   sequential pass:

   - cache lookups run first, on the main domain, in candidate order —
     probes commit nothing, so no lookup's answer depends on an earlier
     probe of the same batch, and the hit/miss counters land exactly as
     the interleaved sequential loop produced them;
   - each worker probes against its own snapshot of the (quiescent)
     round state — the same state every sequential probe saw, since
     probes roll back;
   - stores and unit billing replay on the main domain in candidate
     order, stamping cache entries against the same edge versions the
     sequential store observed (nothing committed in between).

   Random-fit planning consumes PRNG draws inside the probe, so it pins
   the batch to the sequential path (as the estimate cache already
   does); the draws stay on the main domain in candidate order. *)

(* Below this many cache-missing probes a round is evaluated on the
   main domain even when [domains > 1]: waking the worker pool costs
   microseconds, but a couple of sub-millisecond probes still amortise
   nothing and the tail of a draining queue lives here. Either way the
   decision — and the digest — is identical. *)
let min_parallel_probes = 4

let probe_batch ctx candidates =
  if
    ctx.domains <= 1
    || ctx.config.Planner.policy = Routing.Random_fit
    || match candidates with [] | [ _ ] -> true | _ -> false
  then List.map (fun ev -> (probe_event ctx ev, ev)) candidates
  else begin
    let arr = Array.of_list candidates in
    let n = Array.length arr in
    let results = Array.make n None in
    let misses = ref [] in
    Array.iteri
      (fun i ev ->
        match ctx.cache with
        | Some c -> (
            match Estimate_cache.find c ctx.net ev.Event.id with
            | Some pr -> results.(i) <- Some pr
            | None -> misses := i :: !misses)
        | None -> misses := i :: !misses)
      arr;
    let miss = Array.of_list (List.rev !misses) in
    let store_result j pr =
      (match ctx.cache with
      | Some c -> Estimate_cache.store c ctx.net pr
      | None -> ());
      results.(j) <- Some pr
    in
    let n_miss = Array.length miss in
    if n_miss > 0 && n_miss < min_parallel_probes then
      (* Too small to amortise a fan-out: probe on the main domain, in
         candidate order, exactly like the sequential loop would. *)
      Array.iter
        (fun i ->
          store_result i
            (timed ctx (fun () ->
                 Planner.probe ~rng:ctx.rng ~config:ctx.config ctx.net arr.(i))))
        miss
    else if n_miss > 0 then begin
      Counters.incr Counters.Probe_parallel_batches;
      Counters.add Counters.Domain_probes n_miss;
      let h_on = Histogram.Registry.enabled () in
      let h_t0 = if h_on then Trace.now_ns () else 0L in
      let fresh =
        timed ctx (fun () ->
            let pool =
              match ctx.pool with
              | Some p -> p
              | None ->
                  (* The memo must be fully warm before the mirrors are
                     taken: mirrors share it read-only, so no lane may
                     ever miss (and write) it. *)
                  if not ctx.memo_warmed then begin
                    Net_state.warm_all_paths ctx.net;
                    ctx.memo_warmed <- true
                  end;
                  let p = Probe_pool.create ~domains:ctx.domains ~net:ctx.net in
                  ctx.pool <- Some p;
                  p
            in
            Probe_pool.map pool
              ~f:(fun local i -> Planner.probe ~config:ctx.config local arr.(i))
              miss)
      in
      if h_on then
        Histogram.Registry.record "planner.probe_batch_s"
          (Int64.to_float (Int64.sub (Trace.now_ns ()) h_t0) *. 1e-9);
      Array.iteri (fun j i -> store_result i fresh.(j)) miss
    end;
    Array.to_list
      (Array.mapi
         (fun i r ->
           match r with
           | Some pr ->
               ctx.units <- ctx.units + pr.Planner.probe_est.Planner.est_work_units;
               (pr, arr.(i))
           | None -> assert false)
         results)
  end

(* Re-apply the round winner's probe plan. Every losing probe rolled
   back, so the state is exactly the one the winner's plan was computed
   against: replaying its recorded operations is equivalent to (and much
   cheaper than) the full re-plan the engine used to pay here. *)
let apply_winner ctx (pr : Planner.probe) =
  timed ctx (fun () -> Planner.replay ctx.net pr.Planner.probe_plan);
  (match ctx.cache with
  | Some c ->
      Estimate_cache.invalidate c
        pr.Planner.probe_plan.Planner.event.Event.id
  | None -> ());
  pr.Planner.probe_plan

(* Apply a plan for execution. [billed] is false when the scheduler
   already paid for an estimate of this event this round and reuses it.
   [frozen] marks flows other plans of the same round are installing.
   [config] overrides the planner configuration (P-LMTF's co-attempts
   use scan-first admission). *)
let apply ?frozen ?config ctx ~billed ev =
  let config = Option.value config ~default:ctx.config in
  let plan =
    timed ctx (fun () -> Planner.plan ~rng:ctx.rng ~config ?frozen ctx.net ev)
  in
  if billed then ctx.units <- ctx.units + plan.Planner.work_units;
  plan

(* Flows a plan installs or reroutes as event work. These are mid-update
   during the round, so a co-scheduled plan must not migrate them. *)
let work_flow_ids (plan : Planner.t) =
  List.filter_map
    (fun (item : Planner.item_plan) ->
      match (item.outcome, item.work) with
      | Planner.Installed _, Event.Install r -> Some r.Flow_record.id
      | Planner.Rerouted _, Event.Reroute { flow_id; _ } -> Some flow_id
      | _ -> None)
    plan.Planner.items


(* Lowest estimated cost wins; arrival order breaks ties. *)
let pick_winner costed =
  List.fold_left
    (fun ((best_pr : Planner.probe), best_ev) ((pr : Planner.probe), ev) ->
      if
        pr.Planner.probe_est.Planner.est_cost_mbit
        < best_pr.Planner.probe_est.Planner.est_cost_mbit
        || (pr.Planner.probe_est.Planner.est_cost_mbit
            = best_pr.Planner.probe_est.Planner.est_cost_mbit
            && Event.compare_by_arrival ev best_ev < 0)
      then (pr, ev)
      else (best_pr, best_ev))
    (match costed with c :: _ -> (fst c, snd c) | [] -> assert false)
    costed

(* One service round: the (event, applied plan, co_scheduled) batch. *)
let decide ctx policy queue =
  match (policy, queue) with
  | _, [] -> invalid_arg "Engine.decide: empty queue"
  | Policy.Fifo, head :: _ -> [ (head, apply ctx ~billed:true head, false) ]
  | Policy.Reorder, _ ->
      let costed = probe_batch ctx queue in
      let win_pr, winner = pick_winner costed in
      [ (winner, apply_winner ctx win_pr, false) ]
  | Policy.Lmtf { alpha }, head :: tail | Policy.Plmtf { alpha }, head :: tail
    ->
      let sampled =
        if tail = [] then []
        else begin
          let arr = Array.of_list tail in
          let picks =
            Prng.sample_without_replacement ctx.rng alpha (Array.length arr)
          in
          List.map (fun i -> arr.(i)) picks
        end
      in
      let candidates = head :: sampled in
      let costed = probe_batch ctx candidates in
      let win_pr, winner = pick_winner costed in
      let winner_plan = apply_winner ctx win_pr in
      let batch = [ (winner, winner_plan, false) ] in
      (match policy with
      | Policy.Lmtf _ -> batch
      | Policy.Plmtf _ ->
          (* Opportunistic updating: visit the remaining candidates in
             arrival order; co-execute each that stays fully satisfiable
             on the state left by the plans already in the batch and does
             not migrate a flow some batch member is installing or
             rerouting this round. Bandwidth consistency is automatic:
             each plan is computed on the shared state. *)
          let protected = Hashtbl.create 64 in
          List.iter
            (fun id -> Hashtbl.replace protected id ())
            (work_flow_ids winner_plan);
          let others =
            List.sort Event.compare_by_arrival
              (List.filter (fun ev -> ev.Event.id <> winner.Event.id) candidates)
          in
          (* "Can be updated together" is a fit check: the candidate's
             flows must be accommodated in the capacity left around the
             in-flight batch, essentially without displacing anything —
             so co-attempts plan scan-first and are accepted only up to
             a small migration budget. Each attempt runs in a
             transaction: acceptance commits, rejection rolls the
             journal back instead of re-planning every reroute. *)
          let co_config = { ctx.config with Planner.admission = Planner.Scan_first } in
          let co =
            List.filter_map
              (fun ev ->
                Net_state.begin_txn ctx.net;
                let plan =
                  apply ctx ~billed:true ~config:co_config
                    ~frozen:(Hashtbl.mem protected) ev
                in
                if
                  plan.Planner.failed_count = 0
                  && plan.Planner.cost_mbit <= ctx.co_max_cost_mbit
                then begin
                  Net_state.commit ctx.net;
                  (match ctx.cache with
                  | Some c -> Estimate_cache.invalidate c ev.Event.id
                  | None -> ());
                  List.iter
                    (fun id -> Hashtbl.replace protected id ())
                    (work_flow_ids plan);
                  Some (ev, plan, true)
                end
                else begin
                  timed ctx (fun () -> Net_state.rollback ctx.net);
                  None
                end)
              others
          in
          batch @ co
      | _ -> assert false)
  | Policy.Flow_level _, _ ->
      invalid_arg "Engine.decide: flow-level handled separately"

(* Incremental event-level stepper: the old run_event_level loop with
   its mutable refs lifted into a record, so one service round can be
   executed at a time and new events can be submitted between rounds —
   the substrate of both the batch [run] (which just steps to
   exhaustion, bit-identically to the historical loop) and the online
   controller in [Nu_serve] (which interleaves submits, steps and
   checkpoints). *)
type stepper = {
  ctx : ctx;
  policy : Policy.t;
  fault_mode : bool;
      (* Fault hooks engage only when the injector actually has faults
         to deliver: an absent injector — or one with an empty schedule
         — keeps the loop on the exact fault-free path (no transactions,
         no checks), so the two runs are bit-identical. *)
  mutable pending : Event.t list;  (* future arrivals, arrival-sorted *)
  mutable queue : Event.t list;
  mutable held : (float * Event.t) list;
      (* aborted events awaiting their retry instant: (ready_s, event) *)
  mutable now : float;
  mutable rounds : int;
  mutable results : event_result list;  (* newest-first *)
  mutable log : round_info list;  (* newest-first *)
  mutable observer : (observation -> unit) option;
}

let notify st obs =
  match st.observer with Some f -> f obs | None -> ()

let promote st =
  let arrived, later =
    List.partition (fun ev -> ev.Event.arrival_s <= st.now) st.pending
  in
  st.pending <- later;
  st.queue <- st.queue @ arrived

(* Re-admit aborted events whose backoff has elapsed, at their arrival
   rank: a retried event competes again exactly as if it were still
   waiting, so FIFO order and LMTF sampling stay well-defined. *)
let release_held st =
  if st.held <> [] then begin
    let ready, waiting = List.partition (fun (r, _) -> r <= st.now) st.held in
    st.held <- waiting;
    if ready <> [] then
      st.queue <-
        List.stable_sort Event.compare_by_arrival
          (st.queue @ List.map snd ready)
  end

(* Earliest instant at which new work can appear while the queue is
   empty: the next arrival or the next retry becoming ready. *)
let next_work_s st =
  let a =
    match st.pending with ev :: _ -> ev.Event.arrival_s | [] -> infinity
  in
  List.fold_left (fun m (ready, _) -> min m ready) a st.held

let apply_faults_due st =
  match st.ctx.injector with
  | Some inj when st.fault_mode ->
      let n = Injector.apply_due inj st.ctx.net ~now:st.now in
      if n > 0 then ignore (Injector.check_now inj st.ctx.net ~now:st.now)
  | Some _ | None -> ()

(* Terminal best-effort service for an event whose retries ran out:
   scan-first admission fits what it can into the surviving capacity,
   unsatisfiable items are reported as failed — the event completes
   degraded instead of being dropped or retried forever. Runs outside
   any transaction and is not itself interruptible. *)
let execute_degraded st ev =
  let ctx = st.ctx in
  let sp =
    if Trace.enabled () then
      Some
        (Trace.span "degraded_round"
           ~attrs:
             [
               ("event", Trace.Int ev.Event.id);
               ("start_s", Trace.Float st.now);
             ])
    else None
  in
  let round_start_s = st.now in
  let round_utilization = Net_state.mean_fabric_utilization ctx.net in
  sample_series ctx ~round:st.rounds ~t_s:round_start_s
    ~queue_len:(List.length st.queue) ~retry_backlog:(List.length st.held);
  let config =
    { ctx.config with Planner.admission = Planner.Scan_first }
  in
  let units_before = ctx.units in
  let plan = apply ctx ~billed:true ~config ev in
  (match ctx.cache with
  | Some c -> Estimate_cache.invalidate c ev.Event.id
  | None -> ());
  let round_units = ctx.units - units_before in
  let plan_time = Exec_model.plan_time ctx.exec ~work_units:round_units in
  let start_s = st.now +. plan_time in
  let completion_s = start_s +. Exec_model.execution_time ctx.exec plan in
  schedule_departures ctx ~completion:completion_s plan;
  st.rounds <- st.rounds + 1;
  Counters.incr Counters.Engine_rounds;
  Counters.add Counters.Events_executed 1;
  st.log <-
    {
      round_start_s;
      executed = [ ev.Event.id ];
      co_count = 0;
      round_units;
      fabric_utilization = round_utilization;
    }
    :: st.log;
  let result =
    {
      event_id = ev.Event.id;
      arrival_s = ev.Event.arrival_s;
      start_s;
      completion_s;
      cost_mbit = plan.Planner.cost_mbit;
      plan_work_units = plan.Planner.work_units;
      failed_items = plan.Planner.failed_count;
      co_scheduled = false;
    }
  in
  st.results <- result :: st.results;
  st.now <- completion_s;
  notify st
    (Round_executed
       {
         round = st.rounds - 1;
         start_s = round_start_s;
         executed = [ ev.Event.id ];
         co_ids = [];
         degraded = true;
       });
  notify st (Event_completed { result; degraded = true });
  match sp with
  | Some sp ->
      Trace.finish sp ~attrs:[ ("completion_s", Trace.Float completion_s) ]
  | None -> ()

(* One service round — exactly one iteration of the historical batch
   loop, including the leading empty-queue time jump and the trailing
   promotion of newly arrived/ready events. *)
let step st =
  if st.queue = [] && st.pending = [] && st.held = [] then `Idle
  else begin
    let ctx = st.ctx in
    let policy = st.policy in
    if st.queue = [] then begin
      let t = next_work_s st in
      st.now <- max st.now t;
      promote st;
      release_held st
    end;
    apply_faults_due st;
    let round_sp =
      if Trace.enabled () then
        Some
          (Trace.span "round"
             ~attrs:
               [
                 ("start_s", Trace.Float st.now);
                 ("queue", Trace.Int (List.length st.queue));
               ])
      else None
    in
    sync_background ctx st.now;
    let round_start_s = st.now in
    let round_utilization = Net_state.mean_fabric_utilization ctx.net in
    sample_series ctx ~round:st.rounds ~t_s:round_start_s
      ~queue_len:(List.length st.queue) ~retry_backlog:(List.length st.held);
    let units_before = ctx.units in
    (* While faults are still pending, the whole round is speculative:
       planning and execution run inside a transaction so a fault that
       lands before the head event completes can abort the round
       wholesale and roll the network back to the round's start. The
       transaction opens after background sync, so churn placements
       survive an abort. *)
    let guard =
      if st.fault_mode then
        match ctx.injector with
        | Some inj -> Injector.next_due_s inj
        | None -> None
      else None
    in
    if guard <> None then Net_state.begin_txn ctx.net;
    let batch = decide ctx policy st.queue in
    let round_units = ctx.units - units_before in
    let plan_time = Exec_model.plan_time ctx.exec ~work_units:round_units in
    let start_s = st.now +. plan_time in
    (* The service is free again when the *chosen* event completes;
       co-scheduled events run in parallel in the network and may finish
       after the next round has already begun (the "parallel update" of
       §IV-C). Their flows are already installed, so later planning sees
       a consistent state. *)
    let timings =
      List.map
        (fun (ev, plan, co) ->
          (ev, plan, co, start_s +. Exec_model.execution_time ctx.exec plan))
        batch
    in
    let head_finish =
      List.fold_left
        (fun acc (_, _, co, c) -> if co then acc else max acc c)
        start_s timings
    in
    let executed = List.map (fun (ev, _, _) -> ev.Event.id) batch in
    let executed_set = Hashtbl.create (List.length executed) in
    List.iter (fun id -> Hashtbl.replace executed_set id ()) executed;
    st.queue <-
      List.filter
        (fun ev -> not (Hashtbl.mem executed_set ev.Event.id))
        st.queue;
    (match guard with
    | Some fault_s when fault_s < head_finish ->
        (* A fault lands while this round is in flight. The migration is
           aborted: roll the network back to the round's start, let the
           fault strike the pre-round state, and route every batch event
           through the retry policy — bounded backoff, then terminal
           best-effort degradation. *)
        let inj = Option.get ctx.injector in
        timed ctx (fun () -> Net_state.rollback ctx.net);
        st.now <- max st.now fault_s;
        ignore (Injector.apply_due inj ctx.net ~now:st.now);
        notify st
          (Round_aborted
             {
               round = st.rounds;
               start_s = round_start_s;
               fault_s;
               batch = executed;
             });
        let degraded =
          List.filter_map
            (fun (ev, _, _) ->
              match
                Injector.note_abort inj ~event_id:ev.Event.id ~now:st.now
              with
              | `Retry_at ready_s ->
                  st.held <- (ready_s, ev) :: st.held;
                  notify st (Event_retry { event_id = ev.Event.id; ready_s });
                  None
              | `Degrade -> Some ev)
            batch
        in
        ignore (Injector.check_now inj ctx.net ~now:st.now);
        (match round_sp with
        | Some sp ->
            Trace.finish sp
              ~attrs:
                [
                  ("aborted", Trace.Bool true);
                  ("fault_s", Trace.Float fault_s);
                  ("batch", Trace.Int (List.length batch));
                ]
        | None -> ());
        List.iter (execute_degraded st) degraded
    | Some _ | None ->
        if guard <> None then Net_state.commit ctx.net;
        st.rounds <- st.rounds + 1;
        let co_count =
          List.length (List.filter (fun (_, _, co, _) -> co) timings)
        in
        Counters.incr Counters.Engine_rounds;
        Counters.add Counters.Events_executed (List.length batch);
        Counters.add Counters.Co_scheduled_events co_count;
        st.log <-
          {
            round_start_s;
            executed;
            co_count;
            round_units;
            fabric_utilization = round_utilization;
          }
          :: st.log;
        let exec_sp =
          if Trace.enabled () then
            Some
              (Trace.span "execute"
                 ~attrs:
                   [
                     ("batch", Trace.Int (List.length batch));
                     ("start_s", Trace.Float start_s);
                   ])
          else None
        in
        notify st
          (Round_executed
             {
               round = st.rounds - 1;
               start_s = round_start_s;
               executed;
               co_ids =
                 List.filter_map
                   (fun (ev, _, co, _) ->
                     if co then Some ev.Event.id else None)
                   timings;
               degraded = false;
             });
        List.iter
          (fun (ev, plan, co_scheduled, completion_s) ->
            schedule_departures ctx ~completion:completion_s plan;
            let result =
              {
                event_id = ev.Event.id;
                arrival_s = ev.Event.arrival_s;
                start_s;
                completion_s;
                cost_mbit = plan.Planner.cost_mbit;
                plan_work_units = plan.Planner.work_units;
                failed_items = plan.Planner.failed_count;
                co_scheduled;
              }
            in
            st.results <- result :: st.results;
            notify st (Event_completed { result; degraded = false }))
          timings;
        (match exec_sp with
        | Some sp ->
            Trace.finish sp
              ~attrs:[ ("head_finish_s", Trace.Float head_finish) ]
        | None -> ());
        st.now <- head_finish;
        (match ctx.injector with
        | Some inj when st.fault_mode ->
            ignore (Injector.check_now inj ctx.net ~now:st.now)
        | Some _ | None -> ());
        (match round_sp with
        | Some sp ->
            Trace.finish sp
              ~attrs:
                [
                  ( "executed",
                    Trace.Str
                      (String.concat "," (List.map string_of_int executed)) );
                  ("batch", Trace.Int (List.length executed));
                  ("co_count", Trace.Int co_count);
                  ("units", Trace.Int round_units);
                  ("fabric_utilization", Trace.Float round_utilization);
                ]
        | None -> ()));
    promote st;
    release_held st;
    `Stepped
  end

(* ------------------------------------------------------------------ *)
(* Wave-based group stepping: the sharded fabric's inner loop.         *)

(* [step_group] advances a set of steppers that share one network by a
   single synchronised wave. Phase A walks the steppers in array order
   and runs exactly [step]'s preamble for each (empty-queue time jump,
   background churn sync, series sample, candidate selection with PRNG
   draws on the calling domain); then every cache-missing probe across
   all steppers is evaluated in one batch — optionally fanned out
   through a shared {!Probe_pool} — against the quiescent wave-start
   state. Phase B commits the winners sequentially in array order: a
   winner whose probe plan is still valid (no touched edge changed
   since the wave start — the estimate cache's own soundness rule) is
   replayed; one invalidated by an earlier commit of the same wave is
   re-planned live, deterministically. With a single stepper a wave is
   bit-identical to {!step}: probes roll back, so nothing can
   invalidate the lone winner, and every mutation happens in the same
   order as the sequential round. *)

type escalation = {
  esc_shard : int;  (* index into the caller's stepper array *)
  esc_event : Event.t;
  esc_moved : int list;  (* flow ids the withdrawn local plan migrated *)
}

type group_pre = {
  gp_index : int;
  gp_st : stepper;
  gp_round_start_s : float;
  gp_round_utilization : float;
  gp_units_before : int;
  gp_candidates : Event.t array;
}

type group_decision = {
  gd_pre : group_pre;
  gd_win : Planner.probe * Event.t;
  gd_stamps : (int * int) array;  (* (edge, version) at decision time *)
  gd_epoch : int;  (* disabled_epoch at decision time *)
}

(* Pre-round bookkeeping, exactly [step]'s preamble. Returns [None]
   only when the stepper has no work at all (the caller filters on
   [has_work], so the guard is belt-and-braces). *)
let group_pre_round ~index st =
  if st.queue = [] && st.pending = [] && st.held = [] then None
  else begin
    let ctx = st.ctx in
    if st.queue = [] then begin
      let t = next_work_s st in
      st.now <- max st.now t;
      promote st;
      release_held st
    end;
    match st.queue with
    | [] -> None
    | head :: tail ->
        sync_background ctx st.now;
        let round_start_s = st.now in
        let round_utilization = Net_state.mean_fabric_utilization ctx.net in
        sample_series ctx ~round:st.rounds ~t_s:round_start_s
          ~queue_len:(List.length st.queue)
          ~retry_backlog:(List.length st.held);
        let candidates =
          match st.policy with
          | Policy.Fifo -> [ head ]
          | Policy.Reorder -> st.queue
          | Policy.Lmtf { alpha } | Policy.Plmtf { alpha } ->
              let sampled =
                if tail = [] then []
                else begin
                  let arr = Array.of_list tail in
                  let picks =
                    Prng.sample_without_replacement ctx.rng alpha
                      (Array.length arr)
                  in
                  List.map (fun i -> arr.(i)) picks
                end
              in
              head :: sampled
          | Policy.Flow_level _ ->
              invalid_arg
                "Engine.step_group: flow-level policies are batch-only"
        in
        Some
          {
            gp_index = index;
            gp_st = st;
            gp_round_start_s = round_start_s;
            gp_round_utilization = round_utilization;
            gp_units_before = ctx.units;
            gp_candidates = Array.of_list candidates;
          }
  end

(* All steppers' probes in one batch, mirroring [probe_batch]'s
   discipline across stepper boundaries: cache lookups on the calling
   domain in (stepper, candidate) order; misses probed either
   sequentially in that same order or fanned out through [pool]; stores
   and unit billing replayed in (stepper, candidate) order. Probes
   commit nothing, so every lane sees the same quiescent wave-start
   state regardless of fan-out — decisions are bit-identical either
   way. *)
let group_probe ?pool pres =
  let slots =
    List.map (fun gp -> Array.make (Array.length gp.gp_candidates) None) pres
  in
  let misses = ref [] in
  List.iter2
    (fun gp slot ->
      let ctx = gp.gp_st.ctx in
      Array.iteri
        (fun i ev ->
          match ctx.cache with
          | Some c -> (
              match Estimate_cache.find c ctx.net ev.Event.id with
              | Some pr -> slot.(i) <- Some pr
              | None -> misses := (gp, slot, i) :: !misses)
          | None -> misses := (gp, slot, i) :: !misses)
        gp.gp_candidates)
    pres slots;
  let miss = Array.of_list (List.rev !misses) in
  let n_miss = Array.length miss in
  let sequential =
    Option.is_none pool
    || n_miss < min_parallel_probes
    || List.exists
         (fun gp ->
           gp.gp_st.ctx.config.Planner.policy = Routing.Random_fit)
         pres
  in
  let store (gp, (slot : Planner.probe option array), i) pr =
    let ctx = gp.gp_st.ctx in
    (match ctx.cache with
    | Some c -> Estimate_cache.store c ctx.net pr
    | None -> ());
    slot.(i) <- Some pr
  in
  if n_miss > 0 then
    if sequential then
      Array.iter
        (fun ((gp, _, i) as m) ->
          let ctx = gp.gp_st.ctx in
          store m
            (timed ctx (fun () ->
                 Planner.probe ~rng:ctx.rng ~config:ctx.config ctx.net
                   gp.gp_candidates.(i))))
        miss
    else begin
      let pool = Option.get pool in
      Counters.incr Counters.Probe_parallel_batches;
      Counters.add Counters.Domain_probes n_miss;
      let t0 = Monotonic_clock.now () in
      let fresh =
        Probe_pool.map pool
          ~f:(fun local (gp, _, i) ->
            Planner.probe ~config:gp.gp_st.ctx.config local
              gp.gp_candidates.(i))
          miss
      in
      let dt =
        Int64.to_float (Int64.sub (Monotonic_clock.now ()) t0) *. 1e-9
      in
      (* Attribute the batch wall to the participating steppers in
         proportion to the probes each contributed. *)
      let total = float_of_int n_miss in
      List.iter
        (fun gp ->
          let mine =
            Array.fold_left
              (fun acc (g, _, _) -> if g == gp then acc + 1 else acc)
              0 miss
          in
          if mine > 0 then
            gp.gp_st.ctx.wall <-
              gp.gp_st.ctx.wall +. (dt *. float_of_int mine /. total))
        pres;
      if Histogram.Registry.enabled () then
        Histogram.Registry.record "planner.probe_batch_s" dt;
      Array.iteri (fun j m -> store m fresh.(j)) miss
    end;
  List.map2
    (fun gp slot ->
      Array.to_list
        (Array.mapi
           (fun i r ->
             match r with
             | Some pr ->
                 let ctx = gp.gp_st.ctx in
                 ctx.units <-
                   ctx.units + pr.Planner.probe_est.Planner.est_work_units;
                 (pr, gp.gp_candidates.(i))
             | None -> assert false)
           slot))
    pres slots

let plan_moved_flow_ids (plan : Planner.t) =
  List.concat_map
    (fun (item : Planner.item_plan) ->
      match item.outcome with
      | Planner.Installed { moves; _ } | Planner.Rerouted { moves; _ } ->
          List.map (fun (m : Migration.move) -> m.Migration.flow_id) moves
      | Planner.Failed _ -> [])
    plan.Planner.items

(* A wave round that hands its winner to the global coordinator instead
   of executing it: the shard paid the planning time (the probes are
   billed), the event leaves its queue, and the round logs with an
   empty batch. *)
let group_escalation_round gd ~moved =
  let gp = gd.gd_pre in
  let st = gp.gp_st in
  let ctx = st.ctx in
  let _, winner = gd.gd_win in
  let round_units = ctx.units - gp.gp_units_before in
  let plan_time = Exec_model.plan_time ctx.exec ~work_units:round_units in
  st.queue <-
    List.filter (fun ev -> ev.Event.id <> winner.Event.id) st.queue;
  st.rounds <- st.rounds + 1;
  Counters.incr Counters.Engine_rounds;
  Counters.incr Counters.Shard_escalations;
  st.log <-
    {
      round_start_s = gp.gp_round_start_s;
      executed = [];
      co_count = 0;
      round_units;
      fabric_utilization = gp.gp_round_utilization;
    }
    :: st.log;
  st.now <- gp.gp_round_start_s +. plan_time;
  notify st
    (Round_escalated
       {
         round = st.rounds - 1;
         start_s = gp.gp_round_start_s;
         event_id = winner.Event.id;
       });
  promote st;
  release_held st;
  { esc_shard = gp.gp_index; esc_event = winner; esc_moved = moved }

(* Commit one wave decision: replay the winner if its touched edges are
   untouched since the wave start, re-plan live otherwise, then run
   [step]'s whole post-decide bookkeeping. Returns the escalation when
   the caller's predicate claimed the winner for the coordinator. *)
let group_commit ?escalate ?external_commit gd =
  let gp = gd.gd_pre in
  let st = gp.gp_st in
  let ctx = st.ctx in
  let win_pr, winner = gd.gd_win in
  let valid =
    Net_state.disabled_epoch ctx.net = gd.gd_epoch
    && Array.for_all
         (fun (e, v) -> Net_state.edge_version ctx.net e = v)
         gd.gd_stamps
  in
  let claim plan =
    match escalate with
    | Some f -> f ~shard:gp.gp_index plan
    | None -> false
  in
  let outcome =
    if valid then begin
      if claim win_pr.Planner.probe_plan then begin
        let moved = plan_moved_flow_ids win_pr.Planner.probe_plan in
        match external_commit with
        | Some f ->
            (* Inline two-phase commit: the coordinator wraps the
               already-probed plan's replay in its own transaction and
               vote round — no second planning pass. The callback owns
               the outcome (commit now, or queue for retry). *)
            ignore
              (f ~shard:gp.gp_index ~event:winner ~moved ~txn_open:false
                 ~attempt:(fun () -> apply_winner ctx win_pr)
                : bool);
            `Escalate_handled moved
        | None -> `Escalate moved
      end
      else `Commit (apply_winner ctx win_pr)
    end
    else begin
      (* An earlier commit of this wave touched one of the winner's
         edges: the probe plan is stale. Re-plan on the live state, in
         a transaction so an escalation can withdraw it. *)
      Counters.incr Counters.Shard_wave_replans;
      (match ctx.cache with
      | Some c -> Estimate_cache.invalidate c winner.Event.id
      | None -> ());
      Net_state.begin_txn ctx.net;
      let plan = apply ctx ~billed:false winner in
      if claim plan then begin
        let moved = plan_moved_flow_ids plan in
        match external_commit with
        | Some f ->
            (* The replan already ran inside the open transaction; the
               coordinator decides whether it commits or rolls back. *)
            ignore
              (f ~shard:gp.gp_index ~event:winner ~moved ~txn_open:true
                 ~attempt:(fun () -> plan)
                : bool);
            `Escalate_handled moved
        | None ->
            timed ctx (fun () -> Net_state.rollback ctx.net);
            `Escalate moved
      end
      else begin
        Net_state.commit ctx.net;
        `Commit plan
      end
    end
  in
  match outcome with
  | `Escalate moved -> Some (group_escalation_round gd ~moved)
  | `Escalate_handled moved ->
      ignore (group_escalation_round gd ~moved : escalation);
      None
  | `Commit winner_plan ->
      let round_sp =
        if Trace.enabled () then
          Some
            (Trace.span "round"
               ~attrs:
                 [
                   ("start_s", Trace.Float gp.gp_round_start_s);
                   ("queue", Trace.Int (List.length st.queue));
                 ])
        else None
      in
      let batch = [ (winner, winner_plan, false) ] in
      let batch =
        match st.policy with
        | Policy.Plmtf _ ->
            let protected = Hashtbl.create 64 in
            List.iter
              (fun id -> Hashtbl.replace protected id ())
              (work_flow_ids winner_plan);
            let others =
              List.sort Event.compare_by_arrival
                (List.filter
                   (fun ev -> ev.Event.id <> winner.Event.id)
                   (Array.to_list gp.gp_candidates))
            in
            let co_config =
              { ctx.config with Planner.admission = Planner.Scan_first }
            in
            let co =
              List.filter_map
                (fun ev ->
                  Net_state.begin_txn ctx.net;
                  let plan =
                    apply ctx ~billed:true ~config:co_config
                      ~frozen:(Hashtbl.mem protected) ev
                  in
                  if
                    plan.Planner.failed_count = 0
                    && plan.Planner.cost_mbit <= ctx.co_max_cost_mbit
                  then begin
                    Net_state.commit ctx.net;
                    (match ctx.cache with
                    | Some c -> Estimate_cache.invalidate c ev.Event.id
                    | None -> ());
                    List.iter
                      (fun id -> Hashtbl.replace protected id ())
                      (work_flow_ids plan);
                    Some (ev, plan, true)
                  end
                  else begin
                    timed ctx (fun () -> Net_state.rollback ctx.net);
                    None
                  end)
                others
            in
            batch @ co
        | _ -> batch
      in
      let round_units = ctx.units - gp.gp_units_before in
      let plan_time = Exec_model.plan_time ctx.exec ~work_units:round_units in
      let start_s = st.now +. plan_time in
      let timings =
        List.map
          (fun (ev, plan, co) ->
            (ev, plan, co, start_s +. Exec_model.execution_time ctx.exec plan))
          batch
      in
      let head_finish =
        List.fold_left
          (fun acc (_, _, co, c) -> if co then acc else max acc c)
          start_s timings
      in
      let executed = List.map (fun (ev, _, _) -> ev.Event.id) batch in
      let executed_set = Hashtbl.create (List.length executed) in
      List.iter (fun id -> Hashtbl.replace executed_set id ()) executed;
      st.queue <-
        List.filter
          (fun ev -> not (Hashtbl.mem executed_set ev.Event.id))
          st.queue;
      st.rounds <- st.rounds + 1;
      let co_count =
        List.length (List.filter (fun (_, _, co, _) -> co) timings)
      in
      Counters.incr Counters.Engine_rounds;
      Counters.add Counters.Events_executed (List.length batch);
      Counters.add Counters.Co_scheduled_events co_count;
      st.log <-
        {
          round_start_s = gp.gp_round_start_s;
          executed;
          co_count;
          round_units;
          fabric_utilization = gp.gp_round_utilization;
        }
        :: st.log;
      notify st
        (Round_executed
           {
             round = st.rounds - 1;
             start_s = gp.gp_round_start_s;
             executed;
             co_ids =
               List.filter_map
                 (fun (ev, _, co, _) -> if co then Some ev.Event.id else None)
                 timings;
             degraded = false;
           });
      List.iter
        (fun (ev, plan, co_scheduled, completion_s) ->
          schedule_departures ctx ~completion:completion_s plan;
          let result =
            {
              event_id = ev.Event.id;
              arrival_s = ev.Event.arrival_s;
              start_s;
              completion_s;
              cost_mbit = plan.Planner.cost_mbit;
              plan_work_units = plan.Planner.work_units;
              failed_items = plan.Planner.failed_count;
              co_scheduled;
            }
          in
          st.results <- result :: st.results;
          notify st (Event_completed { result; degraded = false }))
        timings;
      st.now <- head_finish;
      (match round_sp with
      | Some sp ->
          Trace.finish sp
            ~attrs:
              [
                ( "executed",
                  Trace.Str
                    (String.concat "," (List.map string_of_int executed)) );
                ("batch", Trace.Int (List.length executed));
                ("co_count", Trace.Int co_count);
                ("units", Trace.Int round_units);
                ("head_finish_s", Trace.Float head_finish);
              ]
      | None -> ());
      promote st;
      release_held st;
      None

let step_group ?pool ?escalate ?external_commit steppers =
  let n = Array.length steppers in
  if n = 0 then `Idle
  else begin
    let net0 = steppers.(0).ctx.net in
    Array.iter
      (fun st ->
        if st.ctx.net != net0 then
          invalid_arg "Engine.step_group: steppers must share one network";
        if st.fault_mode then
          invalid_arg
            "Engine.step_group: fault injection is unsupported in group mode")
      steppers;
    let pres = ref [] in
    Array.iteri
      (fun i st ->
        match group_pre_round ~index:i st with
        | Some gp -> pres := gp :: !pres
        | None -> ())
      steppers;
    let pres = List.rev !pres in
    if pres = [] then `Idle
    else begin
      let costeds = group_probe ?pool pres in
      let decisions =
        List.map2
          (fun gp costed ->
            let win_pr, winner = pick_winner costed in
            let ctx = gp.gp_st.ctx in
            {
              gd_pre = gp;
              gd_win = (win_pr, winner);
              gd_stamps =
                Array.map
                  (fun e -> (e, Net_state.edge_version ctx.net e))
                  win_pr.Planner.probe_touched;
              gd_epoch = Net_state.disabled_epoch ctx.net;
            })
          pres costeds
      in
      let escs =
        List.filter_map (fun gd -> group_commit ?escalate ?external_commit gd) decisions
      in
      `Stepped (List.length decisions, escs)
    end
  end

let make_stepper ?observer ctx policy events =
  let st =
    {
      ctx;
      policy;
      fault_mode =
        (match ctx.injector with
        | Some inj -> Injector.next_due_s inj <> None
        | None -> false);
      pending = List.sort Event.compare_by_arrival events;
      queue = [];
      held = [];
      now = 0.0;
      rounds = 0;
      results = [];
      log = [];
      observer;
    }
  in
  promote st;
  st

let run_event_level ctx policy events =
  let st = make_stepper ctx policy events in
  while step st <> `Idle do
    ()
  done;
  (st.results, st.rounds, List.rev st.log)

(* Flow-level baseline: the queue holds individual flows. *)
type flow_item = {
  fi_event : int;
  fi_arrival : float;
  fi_intra : int;
  fi_work : Event.work;
}

let flow_level_items order events =
  let items =
    List.concat_map
      (fun ev ->
        List.mapi
          (fun i w ->
            {
              fi_event = ev.Event.id;
              fi_arrival = ev.Event.arrival_s;
              fi_intra = i;
              fi_work = w;
            })
          ev.Event.work)
      events
  in
  let key item =
    match order with
    | Policy.Round_robin -> (item.fi_arrival, item.fi_intra, item.fi_event)
    | Policy.By_arrival -> (item.fi_arrival, item.fi_event, item.fi_intra)
  in
  List.sort (fun a b -> compare (key a) (key b)) items

let run_flow_level ctx order events =
  let items = ref (flow_level_items order events) in
  let now = ref 0.0 in
  let rounds = ref 0 in
  (* Per-event aggregation. *)
  let first_start = Hashtbl.create 64 in
  let last_completion = Hashtbl.create 64 in
  let cost = Hashtbl.create 64 in
  let units = Hashtbl.create 64 in
  let failed = Hashtbl.create 64 in
  let add tbl k v plus =
    Hashtbl.replace tbl k (match Hashtbl.find_opt tbl k with
      | None -> v
      | Some old -> plus old v)
  in
  while !items <> [] do
    match !items with
    | [] -> assert false
    | item :: rest ->
        items := rest;
        now := max !now item.fi_arrival;
        (* Flow-level runs take faults at item boundaries; there is no
           round transaction to abort, so no retry machinery either. *)
        (match ctx.injector with
        | Some inj ->
            let n = Injector.apply_due inj ctx.net ~now:!now in
            if n > 0 then ignore (Injector.check_now inj ctx.net ~now:!now)
        | None -> ());
        let round_sp =
          if Trace.enabled () then
            Some
              (Trace.span "round"
                 ~attrs:
                   [
                     ("event", Trace.Int item.fi_event);
                     ("intra", Trace.Int item.fi_intra);
                     ("start_s", Trace.Float !now);
                   ])
          else None
        in
        sync_background ctx !now;
        sample_series ctx ~round:!rounds ~t_s:!now
          ~queue_len:(List.length !items) ~retry_backlog:0;
        Counters.incr Counters.Engine_rounds;
        let pseudo =
          {
            Event.id = item.fi_event;
            arrival_s = item.fi_arrival;
            kind = Event.Additions;
            work = [ item.fi_work ];
          }
        in
        let plan = apply ctx ~billed:true pseudo in
        incr rounds;
        let plan_time =
          Exec_model.plan_time ctx.exec ~work_units:plan.Planner.work_units
        in
        let start_s = !now +. plan_time in
        let completion_s = start_s +. Exec_model.execution_time ctx.exec plan in
        schedule_departures ctx ~completion:completion_s plan;
        now := completion_s;
        add first_start item.fi_event start_s min;
        add last_completion item.fi_event completion_s max;
        add cost item.fi_event plan.Planner.cost_mbit ( +. );
        add units item.fi_event plan.Planner.work_units ( + );
        add failed item.fi_event plan.Planner.failed_count ( + );
        (match round_sp with
        | Some sp ->
            Trace.finish sp
              ~attrs:[ ("completion_s", Trace.Float completion_s) ]
        | None -> ())
  done;
  let results =
    List.map
      (fun ev ->
        let id = ev.Event.id in
        {
          event_id = id;
          arrival_s = ev.Event.arrival_s;
          start_s = (try Hashtbl.find first_start id with Not_found -> ev.Event.arrival_s);
          completion_s =
            (try Hashtbl.find last_completion id with Not_found -> ev.Event.arrival_s);
          cost_mbit = (try Hashtbl.find cost id with Not_found -> 0.0);
          plan_work_units = (try Hashtbl.find units id with Not_found -> 0);
          failed_items = (try Hashtbl.find failed id with Not_found -> 0);
          co_scheduled = false;
        })
      events
  in
  (results, !rounds, [])

(* Construct the per-run context. [init_expiry] registers departures for
   flows already in the network (churn runs); a checkpoint thaw passes
   false and restores the frozen expiry queue verbatim instead. *)
let make_ctx ~exec ~config ~rng ~churn ~co_max_cost_mbit ~estimate_cache
    ~injector ~series ~domains ~init_expiry ~net =
  if domains < 1 then invalid_arg "Engine: domains must be >= 1";
  (* Memoised probes are only sound when planning is a deterministic
     function of the state it reads: Random_fit consumes PRNG draws
     inside the planner, so a cache hit would perturb the stream for
     every later decision. The cache switches itself off there. *)
  let cache =
    if estimate_cache && config.Planner.policy <> Routing.Random_fit then
      Some (Estimate_cache.create ())
    else None
  in
  let ctx =
    {
      net;
      exec;
      config;
      rng;
      churn;
      expiry = Pqueue.create ();
      co_max_cost_mbit;
      cache;
      injector;
      series;
      domains;
      next_churn_id = (match churn with Some c -> c.first_id | None -> 0);
      units = 0;
      wall = 0.0;
      memo_warmed = false;
      pool = None;
    }
  in
  (* Flows already in the network run out their remaining duration. *)
  (match churn with
  | Some _ when init_expiry ->
      Net_state.iter_flows net (fun placed ->
          Pqueue.push ctx.expiry placed.Net_state.record.Flow_record.duration_s
            placed.Net_state.record.Flow_record.id)
  | Some _ | None -> ());
  ctx

(* Stop and join the probe workers (idempotent; no-op when no batch
   ever fanned out). The worker domains spin between batches, so a
   long-lived stepper owner should close as soon as planning is done. *)
let close_ctx ctx =
  match ctx.pool with
  | Some p ->
      Probe_pool.shutdown p;
      ctx.pool <- None
  | None -> ()

(* Per-event distribution samples: service time (ECT) and queuing delay.
   One registry check when sampling is off. *)
let record_event_histograms events_arr =
  if Histogram.Registry.enabled () then
    Array.iter
      (fun r ->
        Histogram.Registry.record "engine.event_service_s" (ect r);
        Histogram.Registry.record "engine.event_queuing_s" (queuing_delay r))
      events_arr

let assemble_result ctx policy (results, rounds, rounds_log) =
  let events_arr = Array.of_list results in
  Array.sort (fun a b -> compare a.event_id b.event_id) events_arr;
  let makespan =
    Array.fold_left (fun acc r -> max acc r.completion_s) 0.0 events_arr
  in
  let total_cost =
    Array.fold_left (fun acc r -> acc +. r.cost_mbit) 0.0 events_arr
  in
  {
    policy;
    events = events_arr;
    rounds;
    rounds_log;
    total_plan_units = ctx.units;
    total_plan_time_s = Exec_model.plan_time ctx.exec ~work_units:ctx.units;
    total_cost_mbit = total_cost;
    makespan_s = makespan;
    final_fabric_utilization = Net_state.mean_fabric_utilization ctx.net;
    planning_wall_s = ctx.wall;
  }

let run ?(exec = Exec_model.default) ?(config = Planner.default_config) ?rng
    ?(seed = 7) ?churn ?(co_max_cost_mbit = 0.0) ?(estimate_cache = true)
    ?injector ?series ?(domains = 1) ~net ~events policy =
  (match Policy.validate policy with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Engine.run: " ^ msg));
  let run_sp =
    if Trace.enabled () then
      Some
        (Trace.span "run"
           ~attrs:
             [
               ("policy", Trace.Str (Policy.name policy));
               ("events", Trace.Int (List.length events));
               ("seed", Trace.Int seed);
             ])
    else None
  in
  let rng = match rng with Some r -> r | None -> Prng.create seed in
  let ctx =
    make_ctx ~exec ~config ~rng ~churn ~co_max_cost_mbit ~estimate_cache
      ~injector ~series ~domains ~init_expiry:true ~net
  in
  let outcome =
    Fun.protect
      ~finally:(fun () -> close_ctx ctx)
      (fun () ->
        match policy with
        | Policy.Flow_level order -> run_flow_level ctx order events
        | _ -> run_event_level ctx policy events)
  in
  let result = assemble_result ctx policy outcome in
  record_event_histograms result.events;
  (match run_sp with
  | Some sp ->
      Trace.finish sp
        ~attrs:
          [
            ("rounds", Trace.Int result.rounds);
            ("makespan_s", Trace.Float result.makespan_s);
            ("total_cost_mbit", Trace.Float result.total_cost_mbit);
            ("plan_units", Trace.Int result.total_plan_units);
            ( "fabric_utilization",
              Trace.Float result.final_fabric_utilization );
          ]
  | None -> ());
  result

(* ------------------------------------------------------------------ *)
(* Public incremental interface.                                       *)

module Stepper = struct
  type t = stepper

  let fault_mode_of injector =
    match injector with
    | Some inj -> Injector.next_due_s inj <> None
    | None -> false

  let create ?(exec = Exec_model.default) ?(config = Planner.default_config)
      ?rng ?(seed = 7) ?churn ?(co_max_cost_mbit = 0.0) ?(estimate_cache = true)
      ?injector ?series ?(domains = 1) ?(init_expiry = true) ?observer
      ?(events = []) ~net policy =
    (match Policy.validate policy with
    | Ok () -> ()
    | Error msg -> invalid_arg ("Engine.Stepper.create: " ^ msg));
    (match policy with
    | Policy.Flow_level _ ->
        invalid_arg "Engine.Stepper.create: flow-level policies are batch-only"
    | _ -> ());
    let rng = match rng with Some r -> r | None -> Prng.create seed in
    let ctx =
      make_ctx ~exec ~config ~rng ~churn ~co_max_cost_mbit ~estimate_cache
        ~injector ~series ~domains ~init_expiry ~net
    in
    make_stepper ?observer ctx policy events

  let set_observer st obs = st.observer <- obs

  (* New arrivals merge into the pending list at their arrival rank;
     events already due promote immediately so the next [step] sees
     them. Submitting every event up front and stepping to [`Idle] is
     bit-identical to the batch [run]. *)
  let submit st evs =
    if evs <> [] then begin
      st.pending <-
        List.merge Event.compare_by_arrival st.pending
          (List.sort Event.compare_by_arrival evs);
      promote st
    end

  let step = step

  type nonrec escalation = escalation = {
    esc_shard : int;
    esc_event : Event.t;
    esc_moved : int list;
  }

  let step_group = step_group

  let register_departures st ~completion plan =
    schedule_departures st.ctx ~completion plan

  let advance_clock st ~to_s = st.now <- Float.max st.now to_s

  let close st = close_ctx st.ctx
  let has_work st = st.queue <> [] || st.pending <> [] || st.held <> []

  let backlog st =
    List.length st.queue + List.length st.pending + List.length st.held

  let completed st = List.length st.results
  let now_s st = st.now
  let rounds st = st.rounds
  let policy st = st.policy

  let result st =
    assemble_result st.ctx st.policy (st.results, st.rounds, List.rev st.log)

  type frozen = {
    fz_policy : Policy.t;
    fz_pending : Event.t list;
    fz_queue : Event.t list;
    fz_held : (float * Event.t) list;
    fz_now : float;
    fz_rounds : int;
    fz_results : event_result list;  (* newest-first, as accumulated *)
    fz_log : round_info list;  (* newest-first, as accumulated *)
    fz_units : int;
    fz_wall : float;
    fz_next_churn_id : int;
    fz_expiry : (float * int) list;  (* exact pop order *)
    fz_rng : int64;
  }

  let freeze st =
    {
      fz_policy = st.policy;
      fz_pending = st.pending;
      fz_queue = st.queue;
      fz_held = st.held;
      fz_now = st.now;
      fz_rounds = st.rounds;
      fz_results = st.results;
      fz_log = st.log;
      fz_units = st.ctx.units;
      fz_wall = st.ctx.wall;
      fz_next_churn_id = st.ctx.next_churn_id;
      fz_expiry = Pqueue.to_list st.ctx.expiry;
      fz_rng = Prng.raw_state st.ctx.rng;
    }

  let thaw ?(exec = Exec_model.default) ?(config = Planner.default_config)
      ?churn ?(co_max_cost_mbit = 0.0) ?(estimate_cache = true) ?injector
      ?series ?(domains = 1) ?observer ~net fz =
    let rng = Prng.of_raw_state fz.fz_rng in
    let ctx =
      make_ctx ~exec ~config ~rng ~churn ~co_max_cost_mbit ~estimate_cache
        ~injector ~series ~domains ~init_expiry:false ~net
    in
    (* Restore the departure queue in pop order: pushing in that order
       reproduces the original pop sequence exactly (FIFO tie-break on
       insertion sequence). *)
    List.iter (fun (dep, id) -> Pqueue.push ctx.expiry dep id) fz.fz_expiry;
    ctx.next_churn_id <- fz.fz_next_churn_id;
    ctx.units <- fz.fz_units;
    ctx.wall <- fz.fz_wall;
    {
      ctx;
      policy = fz.fz_policy;
      fault_mode = fault_mode_of injector;
      pending = fz.fz_pending;
      queue = fz.fz_queue;
      held = fz.fz_held;
      now = fz.fz_now;
      rounds = fz.fz_rounds;
      results = fz.fz_results;
      log = fz.fz_log;
      observer;
    }
end
