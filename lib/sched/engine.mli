(** Discrete-event simulation of an update queue under a policy.

    The service loop mirrors the paper's setting: update events arrive
    into a queue; each round the policy picks the event (or, for P-LMTF,
    the batch) to execute next; planning consumes virtual plan time,
    execution consumes virtual execution time; costs are recomputed
    against the *live* network state each round, because earlier
    executions change later costs (§IV-A). Placed flows persist for the
    whole run — the paper keeps background traffic static, and the update
    horizon is short relative to flow lifetimes (DESIGN.md §3).

    The run mutates the supplied network state (events get installed);
    pass {!Nu_net.Net_state.copy} of a prepared state to compare policies
    on identical initial conditions. *)

type event_result = {
  event_id : int;
  arrival_s : float;
  start_s : float;  (** Execution start (after its round's plan time). *)
  completion_s : float;
  cost_mbit : float;  (** Cost(U) actually paid at execution. *)
  plan_work_units : int;  (** Planner probes spent on the executed plan. *)
  failed_items : int;  (** Work items that stayed unsatisfiable. *)
  co_scheduled : bool;  (** Ran alongside a P-LMTF head event. *)
}

val ect : event_result -> float
(** Event completion time: [completion_s - arrival_s]. *)

val queuing_delay : event_result -> float
(** [start_s - arrival_s]. *)

type round_info = {
  round_start_s : float;  (** Decision instant (after background sync). *)
  executed : int list;  (** Event ids of the round's batch, head first. *)
  co_count : int;  (** How many of them were co-scheduled. *)
  round_units : int;  (** Planner probes paid this round. *)
  fabric_utilization : float;  (** Probe at the decision instant. *)
}
(** One service round of an event-level policy — the run's audit trail.
    Lets experiments observe the utilisation trajectory (the paper's
    "utilization fluctuates between 50% and 70%") and the batch sizes
    P-LMTF achieves. Flow-level runs, whose rounds are individual flows,
    do not produce a log. *)

(** Progress callbacks emitted by a {!Stepper} to an attached observer
    (the serving telemetry layer). Emitted after the corresponding
    state mutation, carrying copies of already-computed values only, so
    an observer can record but never perturb a decision — attaching one
    leaves the run bit-identical. *)
type observation =
  | Round_executed of {
      round : int;  (** 0-based index of the round just finished. *)
      start_s : float;  (** Decision instant (simulated). *)
      executed : int list;  (** Event ids of the batch, head first. *)
      co_ids : int list;  (** The co-scheduled subset. *)
      degraded : bool;  (** Terminal best-effort round after retries. *)
    }
  | Round_aborted of {
      round : int;  (** Index the round would have had. *)
      start_s : float;
      fault_s : float;  (** Fault instant that landed mid-flight. *)
      batch : int list;  (** Event ids routed into retry/degrade. *)
    }
  | Event_completed of { result : event_result; degraded : bool }
  | Event_retry of { event_id : int; ready_s : float }
      (** Aborted event held until [ready_s] (bounded backoff). *)
  | Round_escalated of { round : int; start_s : float; event_id : int }
      (** A {!Stepper.step_group} wave round whose winner was claimed by
          the caller's escalation predicate for the global coordinator:
          the event left the shard's queue without executing there. *)

type run_result = {
  policy : Policy.t;
  events : event_result array;  (** Sorted by event id. *)
  rounds : int;  (** Service rounds executed. *)
  rounds_log : round_info list;
      (** Chronological; empty for flow-level runs. *)
  total_plan_units : int;
      (** Every planner probe across the run: estimates, co-scheduling
          attempts and executed plans. *)
  total_plan_time_s : float;  (** [total_plan_units] x unit cost. *)
  total_cost_mbit : float;
  makespan_s : float;  (** Completion of the last event. *)
  final_fabric_utilization : float;
  planning_wall_s : float;  (** Real CPU seconds spent in the planner. *)
}

type churn = {
  make_flow : id:int -> Flow_record.t;
      (** Marginals of fresh background flows (endpoints included). *)
  target_utilization : float;  (** Fabric-utilisation refill setpoint. *)
  max_placements_per_round : int;  (** Caps the per-round refill work. *)
  first_id : int;  (** Ids for churn flows; must not collide. *)
}
(** Background dynamics. When enabled, every placed flow expires
    [duration_s] after it is installed (flows present at t=0 expire at
    their remaining duration), and at each service round the engine
    readmits fresh flows until the fabric utilisation recovers the
    setpoint. This is the "network traffic dynamics" of §IV-A that makes
    a waiting event's cost drift between rounds — the fluctuation LMTF
    exploits. Without churn the background is static (§V-D). *)

val series_columns : string list
(** Gauge names sampled per service round, in column order: [round],
    [queue_len], [retry_backlog], [active_flows],
    [mean_fabric_utilization], [max_link_utilization]. *)

val make_series : ?capacity:int -> unit -> Nu_obs.Series.t
(** Fresh bounded series with {!series_columns}, ready to pass as
    {!run}'s [series]. *)

val run :
  ?exec:Exec_model.t ->
  ?config:Planner.config ->
  ?rng:Prng.t ->
  ?seed:int ->
  ?churn:churn ->
  ?co_max_cost_mbit:float ->
  ?estimate_cache:bool ->
  ?injector:Nu_fault.Injector.t ->
  ?series:Nu_obs.Series.t ->
  ?domains:int ->
  net:Net_state.t ->
  events:Event.t list ->
  Policy.t ->
  run_result
(** Simulate the queue to completion. [events] need not be sorted. [rng]
    (or [seed], default 7; [rng] wins) drives LMTF/P-LMTF sampling and
    churn — given equal seeds, runs are exactly reproducible.
    [domains] (default 1) sets the candidate-probe fan-out width: with
    [domains > 1] each round's cache-missing probes are evaluated in
    parallel on that many worker domains ({!Probe_pool}), with
    bit-identical decisions, digests and counter totals at any width —
    only the planning wall clock changes. Random-fit planning consumes
    PRNG draws inside probes and therefore always runs sequentially.
    Raises [Invalid_argument] when [domains < 1].
    [co_max_cost_mbit] (default 0) bounds opportunistic updating: a
    candidate is co-scheduled only when a scan-first plan alongside the
    in-flight batch fits within that migration budget — i.e. the
    candidate's flows can be accommodated in the residual capacity
    without displacing anything (§IV-C's "can be updated with the first
    event together"). [estimate_cache] (default true) memoises scheduler
    probes across rounds with dirty-edge invalidation
    ({!Estimate_cache}); results are identical with it on or off — a hit
    bills the same simulated work units a fresh probe would have
    reported — and it disables itself under [Routing.Random_fit], whose
    probes consume PRNG draws. Raises [Invalid_argument] on an invalid
    policy.

    [injector] attaches a fault schedule ({!Nu_fault.Injector}). While
    faults remain pending, each event-level round runs inside a
    {!Nu_net.Net_state} transaction: a fault whose instant falls before
    the round's head event completes aborts the round — the network
    rolls back to the round's start, the fault strikes the pre-round
    state, and every batch event goes through the injector's bounded
    retry policy (deterministic exponential backoff in simulated time,
    then a terminal best-effort scan-first round that reports
    unsatisfiable items as failed instead of dropping the event). After
    every fault application and every completed round the injector's
    invariant checker runs; violations land in the recovery log. An
    absent injector — or one whose schedule is empty — leaves the run
    bit-identical to a fault-free run. Flow-level runs apply due faults
    at item boundaries only (no per-item transactions, so no aborts or
    retries).

    [series] attaches a per-round gauge time-series ({!series_columns};
    build one with {!make_series}): every service round — event-level,
    degraded, and flow-level (whose rounds are individual flows, with a
    [retry_backlog] of 0) — appends one row sampled at the decision
    instant. Sampling only reads the network state, so an attached
    series leaves every scheduling decision bit-identical; when absent
    the per-round cost is one pattern match. Independently, when
    {!Nu_obs.Histogram.Registry} sampling is enabled, the run records
    each event's service time and queuing delay into the
    [engine.event_service_s] / [engine.event_queuing_s] histograms. *)

(** {2 Incremental stepping}

    The same event-level service loop, one round at a time. A stepper
    owns the per-run context ([run] is itself implemented as
    create-then-step-to-idle, so the two are bit-identical given the
    same inputs); between rounds the owner may submit new arrivals,
    freeze the stepper into a serialisable checkpoint, or read
    progress. This is the substrate of the online controller
    ({!Nu_serve}). *)

module Stepper : sig
  type t

  val create :
    ?exec:Exec_model.t ->
    ?config:Planner.config ->
    ?rng:Prng.t ->
    ?seed:int ->
    ?churn:churn ->
    ?co_max_cost_mbit:float ->
    ?estimate_cache:bool ->
    ?injector:Nu_fault.Injector.t ->
    ?series:Nu_obs.Series.t ->
    ?domains:int ->
    ?init_expiry:bool ->
    ?observer:(observation -> unit) ->
    ?events:Event.t list ->
    net:Net_state.t ->
    Policy.t ->
    t
  (** Same optional knobs (and defaults) as {!run}. [events] (default
      []) seeds the arrival queue. [observer] receives an
      {!observation} after each round and completion — recording only,
      never decision-relevant. [init_expiry] (default true) registers
      churn departures for the flows already placed in [net]; a sharded
      fabric passes [false] for every shard but the one that owns the
      background churn, so the shared pre-placed flows are expired
      exactly once. Raises [Invalid_argument] on an invalid policy, or
      on a flow-level policy — those are batch-only. *)

  val set_observer : t -> (observation -> unit) option -> unit
  (** Attach or detach the progress observer. *)

  val submit : t -> Event.t list -> unit
  (** Merge new arrivals (any order) into the arrival queue at their
      arrival rank. Events whose [arrival_s] is already due enter the
      service queue immediately. Submitting every event up front and
      stepping to exhaustion is bit-identical to {!run}. *)

  val step : t -> [ `Stepped | `Idle ]
  (** Execute one service round (including any leading idle-time jump
      to the next arrival or retry instant). [`Idle] means no queued,
      pending or held work remained — nothing happened. *)

  type escalation = {
    esc_shard : int;  (** Index into the caller's stepper array. *)
    esc_event : Event.t;  (** The winner claimed by the predicate. *)
    esc_moved : int list;
        (** Flow ids the withdrawn local plan would have migrated to
            make room — the cross-shard migration set. *)
  }

  val step_group :
    ?pool:Probe_pool.t ->
    ?escalate:(shard:int -> Planner.t -> bool) ->
    ?external_commit:
      (shard:int ->
      event:Event.t ->
      moved:int list ->
      txn_open:bool ->
      attempt:(unit -> Planner.t) ->
      bool) ->
    t array ->
    [ `Stepped of int * escalation list | `Idle ]
  (** Advance every stepper that has work by one synchronised wave.
      The steppers must share one network and be fault-free (raises
      [Invalid_argument] otherwise). Phase A runs {!step}'s pre-round
      bookkeeping per stepper in array order — empty-queue time jump,
      background churn sync, candidate selection with PRNG draws on the
      calling domain — then evaluates every cache-missing candidate
      probe across all steppers in one batch against the quiescent
      wave-start state, fanned out through [pool] when given (decisions
      are bit-identical with or without it). Phase B commits winners
      sequentially in array order: a winner whose touched edges are
      unchanged since the wave start replays its probe plan; one
      invalidated by an earlier commit of the same wave re-plans live,
      deterministically. With one stepper a wave is bit-identical to
      {!step}.

      [escalate] (default: never) inspects each winner's plan before it
      commits; returning [true] withdraws the round — the event leaves
      the shard's queue unexecuted and is reported in the escalation
      list for the caller's global coordinator, with the make-room flow
      ids the withdrawn plan migrated. The predicate must be a
      deterministic function of the plan.

      [external_commit] (default: none) turns a claimed winner over to an
      inline committer instead of the escalation list: the callback
      receives the cross-shard migration set and an [attempt] thunk
      that applies the plan — a cheap validated replay of the probe
      plan when [txn_open] is [false], or the already-applied live
      replan when [txn_open] is [true] (the engine's transaction is
      open and the callback must commit or roll it back, typically by
      wrapping its own two-phase vote round). Whatever the callback
      returns, the round is booked as escalated on the shard and the
      event is {e not} reported in the escalation list — the callback
      owns its fate (committed, or queued for a later retry).

      [`Stepped (rounds, escalations)] counts the wave's rounds
      (committed + escalated); [`Idle] means no stepper had work. *)

  val register_departures : t -> completion:float -> Planner.t -> unit
  (** Register churn departures for the flows an externally executed
      plan installed (the coordinator's cross-shard commits), exactly
      as the stepper does for its own rounds. No-op without churn. *)

  val advance_clock : t -> to_s:float -> unit
  (** Wave-barrier time sync for multi-controller fabrics: lift the
      stepper's virtual clock to [to_s] (never backwards). All steppers
      sharing a fabric read one wall clock, so after each wave the
      caller advances every shard to the fabric-wide maximum — without
      it a shard whose events all escalate never sees time pass, its
      background churn stalls, and the shared fabric's utilisation
      drifts away from the refill setpoint. A no-op at or behind the
      current clock (in particular for a lone stepper). *)

  val close : t -> unit
  (** Stop and join the probe-worker domains, if any batch ever fanned
      out ([domains > 1]). Idempotent, and a no-op for sequential
      steppers. The workers spin-wait between rounds, so a long-lived
      owner (the serving layer) should close as soon as planning is
      done; a later step simply re-creates the pool on demand. *)

  val has_work : t -> bool
  val backlog : t -> int
  (** Events not yet executed: queued + future + awaiting retry. *)

  val completed : t -> int
  (** Event results accumulated so far. *)

  val now_s : t -> float
  (** Current simulated instant. *)

  val rounds : t -> int
  val policy : t -> Policy.t

  val result : t -> run_result
  (** Assemble the result from the rounds executed so far. Pure — does
      not record histograms (the batch {!run} does; long-lived callers
      record once at end-of-life). Calling it mid-run is allowed and
      reflects only completed rounds. *)

  (** {2 Checkpoint freeze/thaw}

      The stepper's decision-relevant state as a plain record:
      queues, clocks, accumulated results, plan-unit/wall accounting,
      the churn departure queue in exact pop order, and the raw PRNG
      cursor. Together with {!Nu_net.Net_state.frozen} and
      {!Nu_fault.Injector.frozen} this is everything needed to resume
      a run bit-identically. *)

  type frozen = {
    fz_policy : Policy.t;
    fz_pending : Event.t list;
    fz_queue : Event.t list;
    fz_held : (float * Event.t) list;
    fz_now : float;
    fz_rounds : int;
    fz_results : event_result list;  (** Newest-first, as accumulated. *)
    fz_log : round_info list;  (** Newest-first, as accumulated. *)
    fz_units : int;
    fz_wall : float;
    fz_next_churn_id : int;
    fz_expiry : (float * int) list;  (** Departure queue, exact pop order. *)
    fz_rng : int64;  (** {!Prng.raw_state} of the run's PRNG. *)
  }

  val freeze : t -> frozen
  (** Snapshot between rounds. The network and injector are frozen
      separately ({!Nu_net.Net_state.freeze},
      {!Nu_fault.Injector.freeze}) — a checkpoint is the triple. *)

  val thaw :
    ?exec:Exec_model.t ->
    ?config:Planner.config ->
    ?churn:churn ->
    ?co_max_cost_mbit:float ->
    ?estimate_cache:bool ->
    ?injector:Nu_fault.Injector.t ->
    ?series:Nu_obs.Series.t ->
    ?domains:int ->
    ?observer:(observation -> unit) ->
    net:Net_state.t ->
    frozen ->
    t
  (** Rebuild a stepper that continues bit-identically: same
      configuration knobs as the original run, [net] thawed from its
      own frozen snapshot, [injector] (if the original had one) thawed
      likewise. The PRNG resumes from the frozen cursor — no [seed]
      parameter. The estimate cache restarts cold (hits bill the same
      simulated units a fresh probe would, so decisions are unaffected;
      only real wall time differs). [domains] may differ from the
      original run's — the probe fan-out width is invisible to every
      decision, so a checkpoint taken at one width replays identically
      at any other. *)
end

val record_event_histograms : event_result array -> unit
(** Record each event's service time and queuing delay into the
    [engine.event_service_s] / [engine.event_queuing_s] registry
    histograms (no-op while registry sampling is off). {!run} does this
    automatically; {!Stepper} owners call it once when a serving run
    retires. *)
