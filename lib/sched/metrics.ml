type summary = {
  policy_name : string;
  n_events : int;
  avg_ect_s : float;
  tail_ect_s : float;
  p95_ect_s : float;
  p99_ect_s : float;
  avg_queuing_s : float;
  worst_queuing_s : float;
  total_cost_mbit : float;
  total_plan_time_s : float;
  total_plan_units : int;
  makespan_s : float;
  failed_items : int;
  co_scheduled_events : int;
}

let ects (run : Engine.run_result) = Array.map Engine.ect run.Engine.events

let queuing_delays (run : Engine.run_result) =
  Array.map Engine.queuing_delay run.Engine.events

(* A run with no events has a well-defined (all-zero) summary; the
   totals still come from the run so e.g. churn-only plan accounting is
   preserved. *)
let empty_summary (run : Engine.run_result) =
  {
    policy_name = Policy.name run.Engine.policy;
    n_events = 0;
    avg_ect_s = 0.0;
    tail_ect_s = 0.0;
    p95_ect_s = 0.0;
    p99_ect_s = 0.0;
    avg_queuing_s = 0.0;
    worst_queuing_s = 0.0;
    total_cost_mbit = run.Engine.total_cost_mbit;
    total_plan_time_s = run.Engine.total_plan_time_s;
    total_plan_units = run.Engine.total_plan_units;
    makespan_s = run.Engine.makespan_s;
    failed_items = 0;
    co_scheduled_events = 0;
  }

let of_run (run : Engine.run_result) =
  if Array.length run.Engine.events = 0 then empty_summary run
  else
  let ect = ects run and qd = queuing_delays run in
  {
    policy_name = Policy.name run.Engine.policy;
    n_events = Array.length run.Engine.events;
    avg_ect_s = Descriptive.mean ect;
    tail_ect_s = Descriptive.max_value ect;
    p95_ect_s = Descriptive.percentile ect 95.0;
    p99_ect_s = Descriptive.percentile ect 99.0;
    avg_queuing_s = Descriptive.mean qd;
    worst_queuing_s = Descriptive.max_value qd;
    total_cost_mbit = run.Engine.total_cost_mbit;
    total_plan_time_s = run.Engine.total_plan_time_s;
    total_plan_units = run.Engine.total_plan_units;
    makespan_s = run.Engine.makespan_s;
    failed_items =
      Array.fold_left
        (fun acc (r : Engine.event_result) -> acc + r.Engine.failed_items)
        0 run.Engine.events;
    co_scheduled_events =
      Array.fold_left
        (fun acc (r : Engine.event_result) ->
          if r.Engine.co_scheduled then acc + 1 else acc)
        0 run.Engine.events;
  }

let reduction ~baseline v = Descriptive.reduction_vs ~baseline v
let speedup ~baseline v = Descriptive.speedup_vs ~baseline v

let pp_summary ppf s =
  Format.fprintf ppf
    "%-18s events=%d avgECT=%.3fs tailECT=%.3fs p95=%.3fs p99=%.3fs \
     avgQ=%.3fs worstQ=%.3fs cost=%.0fMbit plan=%.3fs (%d units) \
     makespan=%.3fs failed=%d co=%d"
    s.policy_name s.n_events s.avg_ect_s s.tail_ect_s s.p95_ect_s s.p99_ect_s
    s.avg_queuing_s s.worst_queuing_s s.total_cost_mbit s.total_plan_time_s
    s.total_plan_units s.makespan_s s.failed_items s.co_scheduled_events

let pp_comparison ppf ~baseline summaries =
  Format.fprintf ppf
    "@[<v>baseline: %s@,%-18s %10s %10s %10s %10s %10s@,"
    baseline.policy_name "policy" "cost-red" "avgECT-red" "tailECT-red"
    "avgQ-red" "planx";
  List.iter
    (fun s ->
      (* A zero baseline (e.g. no migration anywhere) makes a percentage
         reduction meaningless; report 0 rather than fault. *)
      let red get =
        let b = get baseline in
        if b <= 0.0 then 0.0 else 100.0 *. reduction ~baseline:b (get s)
      in
      let planx =
        if baseline.total_plan_time_s > 0.0 then
          s.total_plan_time_s /. baseline.total_plan_time_s
        else nan
      in
      Format.fprintf ppf "%-18s %9.1f%% %9.1f%% %9.1f%% %9.1f%% %9.2fx@,"
        s.policy_name
        (red (fun x -> x.total_cost_mbit))
        (red (fun x -> x.avg_ect_s))
        (red (fun x -> x.tail_ect_s))
        (red (fun x -> x.avg_queuing_s))
        planx)
    summaries;
  Format.fprintf ppf "@]"
