(** Persistent pool of probe-worker domains with redo-synchronised
    mirrors of the shared network state.

    A pool spawned with [create ~domains ~net] keeps [domains - 1]
    worker domains alive for its whole lifetime. Each worker owns a
    {!Net_state.snapshot} mirror of [net], taken once at creation; from
    then on the pool records the committed mutations of [net]
    ({!Net_state.redo_start}) and every {!map} call ships the drained
    log to the workers, which replay it into their mirrors — a few
    hundred ops per round instead of a multi-megabyte state copy per
    lane per batch.

    [map pool ~f items] evaluates [f lane item] for every item and
    returns the results in item order. Lanes claim items off a shared
    atomic cursor: the calling domain probes [net] itself (exactly what
    the sequential path does), workers probe their mirrors — which are
    bit-identical to [net] at the batch boundary, so any lane computes
    the same result for a given item and the merged outcome carries no
    trace of the interleaving.

    Requirements on [f]: it must leave the lane state exactly as it
    found it (the planner's probe — plan inside a transaction, then
    rollback — does), must not touch the shared trace/histogram sinks
    (workers are marked observability-silent and the caller's lane runs
    scoped silent, so the standard gates already refuse), and must not
    consume the run's PRNG stream. Counters incremented inside [f] land
    in each worker's domain-local store and are merged into the
    caller's after the batch, in worker-index order — deterministic
    totals, independent of how the cursor distributed the items.

    Call {!Net_state.warm_all_paths} on [net] before [create]: mirrors
    share the candidate-path memo read-only.

    Between batches the workers spin-wait (with [Domain.cpu_relax]) —
    they respond to minor-GC stop-the-world requests immediately, where
    a domain parked on a condition variable would drag every other
    domain's allocation into its slow wake-up handshake. Call
    {!shutdown} when planning is done to stop burning those cores and
    to stop [net]'s redo recording. *)

type t

val create : domains:int -> net:Net_state.t -> t
(** Spawn the worker domains and take their mirrors. [net] must be
    quiescent (the caller must not mutate it until [create] returns —
    it blocks until every mirror is built). With [domains <= 1] no
    workers are spawned and no redo recording starts; {!map} then runs
    entirely on the calling domain. *)

val domains : t -> int
(** Lane count: workers + the calling domain. *)

val map : t -> f:(Net_state.t -> 'a -> 'b) -> 'a array -> 'b array
(** Evaluate the batch across the lanes; results in item order. Must
    only be called from the domain that ran {!create}, and not after
    {!shutdown}. *)

val shutdown : t -> unit
(** Stop the workers, join them, and stop [net]'s redo recording.
    Idempotent. After shutdown the pool must not be used. *)
