(** Memoised scheduler probes with dirty-edge invalidation.

    LMTF / P-LMTF probe Cost(U) for α+1 sampled events every service
    round, and Reorder probes the whole queue — yet between rounds most
    of the network is untouched, so most probes would recompute exactly
    the answer they produced last round. This cache keys each
    {!Nu_update.Planner.probe} by event id and stamps it with the
    {!Nu_net.Net_state.edge_version} of every edge the probe read or
    wrote. A lookup is a hit iff every stamped edge still carries its
    recorded version — i.e. no committed write has landed on any state
    the plan depended on — in which case the cached estimate (and its
    replayable plan) is exactly what a fresh probe would compute.

    Correctness relies on plans being deterministic functions of the
    state they read: the engine disables the cache under
    [Routing.Random_fit], whose probes also consume PRNG draws. *)

type t

val create : unit -> t

val find : t -> Net_state.t -> int -> Planner.probe option
(** [find t net event_id] returns the cached probe when every touched
    edge is unchanged, bumping the [Estimate_cache_hits] counter;
    otherwise [None] (and [Estimate_cache_misses]). *)

val store : t -> Net_state.t -> Planner.probe -> unit
(** Record a fresh probe under its event id, stamping its touched edges
    with their current versions. *)

val invalidate : t -> int -> unit
(** Drop one event's entry (the engine evicts executed events). *)

val clear : t -> unit

val size : t -> int
(** Live entries (stale ones included until overwritten or evicted). *)
