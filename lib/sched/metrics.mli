(** The paper's five evaluation metrics over a run (§V-A).

    "They are the total update cost of all update events, the average
    ECT, the tail ECT, the total plan time, and the event queuing
    delay." Tail values are reported as p99 and the maximum (the queue
    holds at most ~50 events, where the two mostly coincide); p95 is
    also exposed. *)

type summary = {
  policy_name : string;
  n_events : int;
  avg_ect_s : float;
  tail_ect_s : float;  (** Maximum ECT. *)
  p95_ect_s : float;
  p99_ect_s : float;
  avg_queuing_s : float;
  worst_queuing_s : float;
  total_cost_mbit : float;
  total_plan_time_s : float;
  total_plan_units : int;
  makespan_s : float;
  failed_items : int;
  co_scheduled_events : int;
}

val of_run : Engine.run_result -> summary
(** A run with no events yields an all-zero summary (totals still taken
    from the run) rather than raising. *)

val ects : Engine.run_result -> float array
(** Per-event completion times, indexed in event-id order. *)

val queuing_delays : Engine.run_result -> float array

val reduction : baseline:float -> float -> float
(** The paper's headline form: fractional reduction vs a baseline value
    ({!Nu_stats.Descriptive.reduction_vs}). *)

val speedup : baseline:float -> float -> float

val pp_summary : Format.formatter -> summary -> unit

val pp_comparison :
  Format.formatter -> baseline:summary -> summary list -> unit
(** Render a table of reductions vs the baseline for cost / avg ECT /
    tail ECT / plan time / queuing delay. *)
