(** Virtual-time execution model.

    The paper measures ECT on a simulated testbed; we map an applied
    {!Nu_update.Planner.t} to virtual seconds with three physical
    components, all configurable:

    - rule installation: switches take on the order of a millisecond to
      commit a TCAM/flow-table update, paid once per programmed hop;
    - traffic migration: moving a flow's traffic (and the event's own
      rerouted flows) is make-before-break transfer of its in-flight
      volume at a bounded migration rate — the reason "migrating more
      traffic will certainly take more time" (paper §II);
    - intra-event parallelism: a controller programs independent flows of
      one event concurrently, divided by a parallelism factor.

    Planning effort is metered in work units (feasibility probes); the
    "total plan time" metric of Fig. 6(d) is units x unit cost. *)

type t = {
  rule_install_s : float;  (** Seconds per programmed path hop. *)
  migration_rate_mbps : float;  (** Transfer rate for migrated traffic. *)
  intra_event_parallelism : float;
      (** >= 1; divides an event's execution time. *)
  plan_unit_cost_s : float;  (** Seconds per planner work unit. *)
}

val default : t
(** 1 ms/hop, 500 Mbps migration rate, 8-way parallelism, 0.1 ms/unit. *)

val sequential : t
(** [intra_event_parallelism = 1]; for the flow-level baseline, which
    updates one flow at a time. *)

val execution_time : t -> Planner.t -> float
(** Virtual seconds to execute an applied plan. *)

val plan_time : t -> work_units:int -> float

val pp : Format.formatter -> t -> unit
