type t = {
  rule_install_s : float;
  migration_rate_mbps : float;
  intra_event_parallelism : float;
  plan_unit_cost_s : float;
}

let default =
  {
    rule_install_s = 0.001;
    migration_rate_mbps = 500.0;
    intra_event_parallelism = 8.0;
    plan_unit_cost_s = 1e-4;
  }

let sequential = { default with intra_event_parallelism = 1.0 }

let execution_time t (plan : Planner.t) =
  if t.intra_event_parallelism < 1.0 then
    invalid_arg "Exec_model.execution_time: parallelism < 1";
  if t.migration_rate_mbps <= 0.0 then
    invalid_arg "Exec_model.execution_time: migration rate";
  let rule_time = float_of_int plan.Planner.rule_hops *. t.rule_install_s in
  let transfer_time = plan.Planner.transfer_mbit /. t.migration_rate_mbps in
  (* The controller cannot parallelise beyond the number of flows the
     plan actually touches: a one-flow plan gains nothing. *)
  let satisfied = List.length plan.Planner.items - plan.Planner.failed_count in
  let effective =
    min t.intra_event_parallelism (float_of_int (max 1 satisfied))
  in
  (rule_time +. transfer_time) /. effective

let plan_time t ~work_units =
  if work_units < 0 then invalid_arg "Exec_model.plan_time";
  float_of_int work_units *. t.plan_unit_cost_s

let pp ppf t =
  Format.fprintf ppf
    "exec[%.1f ms/hop, %.0f Mbps migration, %gx parallel, %.2g s/unit]"
    (1000.0 *. t.rule_install_s)
    t.migration_rate_mbps t.intra_event_parallelism t.plan_unit_cost_s
