module Counters = Nu_obs.Counters

type entry = {
  probe : Planner.probe;
  stamps : (int * int) array;
  epoch : int;  (* Net_state.disabled_epoch at store time *)
}

type t = { table : (int, entry) Hashtbl.t }

let create () = { table = Hashtbl.create 64 }

let valid net entry =
  Net_state.disabled_epoch net = entry.epoch
  && Array.for_all
       (fun (e, v) -> Net_state.edge_version net e = v)
       entry.stamps

let find t net event_id =
  match Hashtbl.find_opt t.table event_id with
  | Some entry when valid net entry ->
      Counters.incr Counters.Estimate_cache_hits;
      Some entry.probe
  | _ ->
      Counters.incr Counters.Estimate_cache_misses;
      None

let store t net (probe : Planner.probe) =
  let stamps =
    Array.of_list
      (List.map
         (fun e -> (e, Net_state.edge_version net e))
         probe.Planner.probe_touched)
  in
  Hashtbl.replace t.table probe.Planner.probe_plan.Planner.event.Event.id
    { probe; stamps; epoch = Net_state.disabled_epoch net }

let invalidate t event_id = Hashtbl.remove t.table event_id
let clear t = Hashtbl.reset t.table
let size t = Hashtbl.length t.table
