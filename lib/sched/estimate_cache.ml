module Counters = Nu_obs.Counters

(* Stamps are parallel flat int arrays (edge id / version) rather than
   an array of pairs: validation walks them on every cache lookup, and
   the tuple boxes doubled the pointer chasing for no benefit. Edge ids
   arrive sorted from the probe bracket and are kept that way — the
   regression tests assert exact invalidation behaviour per edge id. *)
type entry = {
  probe : Planner.probe;
  stamp_edges : int array;  (* sorted ascending *)
  stamp_versions : int array;  (* stamp_versions.(i) is for stamp_edges.(i) *)
  epoch : int;  (* Net_state.disabled_epoch at store time *)
}

type t = { table : (int, entry) Hashtbl.t }

let create () = { table = Hashtbl.create 64 }

let valid net entry =
  Net_state.disabled_epoch net = entry.epoch
  &&
  let n = Array.length entry.stamp_edges in
  let rec go i =
    i >= n
    || Net_state.edge_version net (Array.unsafe_get entry.stamp_edges i)
       = Array.unsafe_get entry.stamp_versions i
       && go (i + 1)
  in
  go 0

let find t net event_id =
  match Hashtbl.find_opt t.table event_id with
  | Some entry when valid net entry ->
      Counters.incr Counters.Estimate_cache_hits;
      Some entry.probe
  | _ ->
      Counters.incr Counters.Estimate_cache_misses;
      None

let store t net (probe : Planner.probe) =
  let edges = probe.Planner.probe_touched in
  let versions =
    Array.map (fun e -> Net_state.edge_version net e) edges
  in
  Hashtbl.replace t.table probe.Planner.probe_plan.Planner.event.Event.id
    {
      probe;
      stamp_edges = edges;
      stamp_versions = versions;
      epoch = Net_state.disabled_epoch net;
    }

let invalidate t event_id = Hashtbl.remove t.table event_id
let clear t = Hashtbl.reset t.table
let size t = Hashtbl.length t.table
