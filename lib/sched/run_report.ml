module Json = Nu_obs.Json

let summary_to_json (s : Metrics.summary) =
  Json.Obj
    [
      ("policy", Json.String s.Metrics.policy_name);
      ("n_events", Json.Int s.Metrics.n_events);
      ("avg_ect_s", Json.Float s.Metrics.avg_ect_s);
      ("tail_ect_s", Json.Float s.Metrics.tail_ect_s);
      ("p95_ect_s", Json.Float s.Metrics.p95_ect_s);
      ("p99_ect_s", Json.Float s.Metrics.p99_ect_s);
      ("avg_queuing_s", Json.Float s.Metrics.avg_queuing_s);
      ("worst_queuing_s", Json.Float s.Metrics.worst_queuing_s);
      ("total_cost_mbit", Json.Float s.Metrics.total_cost_mbit);
      ("total_plan_time_s", Json.Float s.Metrics.total_plan_time_s);
      ("total_plan_units", Json.Int s.Metrics.total_plan_units);
      ("makespan_s", Json.Float s.Metrics.makespan_s);
      ("failed_items", Json.Int s.Metrics.failed_items);
      ("co_scheduled_events", Json.Int s.Metrics.co_scheduled_events);
    ]

let event_result_to_json (r : Engine.event_result) =
  Json.Obj
    [
      ("event_id", Json.Int r.Engine.event_id);
      ("arrival_s", Json.Float r.Engine.arrival_s);
      ("start_s", Json.Float r.Engine.start_s);
      ("completion_s", Json.Float r.Engine.completion_s);
      ("ect_s", Json.Float (Engine.ect r));
      ("queuing_s", Json.Float (Engine.queuing_delay r));
      ("cost_mbit", Json.Float r.Engine.cost_mbit);
      ("plan_work_units", Json.Int r.Engine.plan_work_units);
      ("failed_items", Json.Int r.Engine.failed_items);
      ("co_scheduled", Json.Bool r.Engine.co_scheduled);
    ]

let round_to_json (r : Engine.round_info) =
  Json.Obj
    [
      ("start_s", Json.Float r.Engine.round_start_s);
      ("executed", Json.List (List.map (fun id -> Json.Int id) r.Engine.executed));
      ("co_count", Json.Int r.Engine.co_count);
      ("units", Json.Int r.Engine.round_units);
      ("fabric_utilization", Json.Float r.Engine.fabric_utilization);
    ]

let to_json ?counters ?recovery ?histograms ?series ?profile ?telemetry ?alerts
    (run : Engine.run_result) =
  let summary = Metrics.of_run run in
  Json.Obj
    ([
       ("policy", Json.String (Policy.name run.Engine.policy));
       ("summary", summary_to_json summary);
       ( "events",
         Json.List
           (Array.to_list (Array.map event_result_to_json run.Engine.events))
       );
       ("rounds", Json.Int run.Engine.rounds);
       ("rounds_log", Json.List (List.map round_to_json run.Engine.rounds_log));
       ( "planning_wall_s", Json.Float run.Engine.planning_wall_s );
       ( "final_fabric_utilization",
         Json.Float run.Engine.final_fabric_utilization );
     ]
    @ (match recovery with
      | None -> []
      | Some r -> [ ("recovery", Nu_fault.Recovery.stats_to_json r) ])
    @ (match counters with
      | None -> []
      | Some snap -> [ ("counters", Nu_obs.Counters.to_json snap) ])
    @ (match histograms with
      | None -> []
      | Some hs ->
          [
            ( "histograms",
              Json.Obj
                (List.map
                   (fun (name, h) -> (name, Nu_obs.Histogram.to_json h))
                   hs) );
          ])
    @ (match series with
      | None -> []
      | Some s -> [ ("series", Nu_obs.Series.to_json s) ])
    @ (match profile with
      | None -> []
      | Some p -> [ ("profile", Nu_obs.Profile.to_json p) ])
    @ (match telemetry with
      | None -> []
      | Some j -> [ ("telemetry", (j : Nu_obs.Json.t)) ])
    @
    match alerts with
    | None -> []
    | Some j -> [ ("alerts", (j : Nu_obs.Json.t)) ])
