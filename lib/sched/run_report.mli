(** Machine-readable run reports.

    Serialises a complete {!Engine.run_result} — summary metrics,
    per-event results, the per-round audit log and (optionally) an
    observability counter snapshot — as one JSON document, so every
    experiment becomes an inspectable artifact that downstream tooling
    can diff, plot or regression-check without re-running the
    simulation. *)

val summary_to_json : Metrics.summary -> Nu_obs.Json.t

val event_result_to_json : Engine.event_result -> Nu_obs.Json.t
(** Includes the derived [ect_s] and [queuing_s] alongside the raw
    fields. *)

val round_to_json : Engine.round_info -> Nu_obs.Json.t

val to_json :
  ?counters:Nu_obs.Counters.snapshot ->
  ?recovery:Nu_fault.Recovery.t ->
  ?histograms:(string * Nu_obs.Histogram.t) list ->
  ?series:Nu_obs.Series.t ->
  ?profile:Nu_obs.Profile.t ->
  ?telemetry:Nu_obs.Json.t ->
  ?alerts:Nu_obs.Json.t ->
  Engine.run_result ->
  Nu_obs.Json.t
(** The full report: policy, summary, events (event-id order), round
    count, round log and, when given, the counter snapshot (typically a
    {!Nu_obs.Counters.diff} scoped to the run). [recovery] — usually the
    run's injector's {!Nu_fault.Injector.recovery} — adds a ["recovery"]
    section with the fault/abort/retry/degrade statistics and the
    deterministic recovery digest. [histograms] (typically
    {!Nu_obs.Histogram.Registry.snapshot}) adds a ["histograms"] object
    keyed by metric name; [series] (the run's per-round gauge series)
    adds a ["series"] block; [profile] (a {!Nu_obs.Profile.of_events}
    span tree) adds a ["profile"] block; [telemetry] (a serving run's
    [Nu_serve.Telemetry.to_json] — passed pre-rendered, since this
    library sits below [Nu_serve]) adds a ["telemetry"] block;
    [alerts] (a watchdog run's {!Nu_obs.Watch.report_json} — alert
    counts by detector/severity, first/last breach ticks, per-scope
    health timelines) adds an ["alerts"] incident block. *)
