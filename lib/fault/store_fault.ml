module Json = Nu_obs.Json

type kind = Torn_write | Bit_flip | Short_read | Enospc | Fsync_loss | Kill

let kind_name = function
  | Torn_write -> "torn_write"
  | Bit_flip -> "bit_flip"
  | Short_read -> "short_read"
  | Enospc -> "enospc"
  | Fsync_loss -> "fsync_loss"
  | Kill -> "kill"

type fault = { at_op : int; kind : kind; knob : float }
type plan = fault list

type config = {
  n_faults : int;
  ops_span : int;
  w_torn : float;
  w_flip : float;
  w_short : float;
  w_enospc : float;
  w_fsync_loss : float;
  w_kill : float;
}

let default_config =
  {
    n_faults = 8;
    ops_span = 240;
    w_torn = 3.0;
    w_flip = 2.0;
    w_short = 1.0;
    w_enospc = 1.0;
    w_fsync_loss = 1.0;
    w_kill = 2.0;
  }

let weights c =
  [
    (Torn_write, c.w_torn);
    (Bit_flip, c.w_flip);
    (Short_read, c.w_short);
    (Enospc, c.w_enospc);
    (Fsync_loss, c.w_fsync_loss);
    (Kill, c.w_kill);
  ]

let pick_kind rng c total =
  let x = ref (Prng.unit_float rng *. total) in
  let rec go = function
    | [] -> Kill
    | (k, w) :: rest ->
        if !x < w then k
        else begin
          x := !x -. w;
          go rest
        end
  in
  go (weights c)

let generate ?(config = default_config) ~seed () =
  if config.n_faults < 0 then invalid_arg "Store_fault.generate: n_faults < 0";
  if config.ops_span < 1 then invalid_arg "Store_fault.generate: ops_span < 1";
  let total = List.fold_left (fun a (_, w) -> a +. w) 0.0 (weights config) in
  if List.exists (fun (_, w) -> w < 0.0) (weights config) || total <= 0.0 then
    invalid_arg "Store_fault.generate: weights must be >= 0 and sum > 0";
  let rng = Prng.create seed in
  let base =
    List.init config.n_faults (fun _ ->
        let at_op = 1 + Prng.int rng config.ops_span in
        let kind = pick_kind rng config total in
        let knob = Prng.unit_float rng in
        { at_op; kind; knob })
  in
  (* A lost sync only materialises if a crash happens before the next
     good sync re-persists everything; pair every fsync loss with a
     kill a few operations later. *)
  let companions =
    List.filter_map
      (fun f ->
        match f.kind with
        | Fsync_loss ->
            Some { at_op = f.at_op + 2 + Prng.int rng 4; kind = Kill; knob = 0.0 }
        | _ -> None)
      base
  in
  List.stable_sort (fun a b -> compare a.at_op b.at_op) (base @ companions)

let fault_to_json f =
  Json.Obj
    [
      ("at_op", Json.Int f.at_op);
      ("kind", Json.String (kind_name f.kind));
      ("knob", Json.Float f.knob);
    ]

let plan_to_json p = Json.List (List.map fault_to_json p)

exception Crash of string
exception Store_error of string

(* Per-file durability model: [written] bytes are on disk, [durable]
   survived the last honest fsync. A lost sync sets [lost]; the next
   crash truncates the file back to [durable]. A later honest sync
   clears the loss (the OS really flushed this time). *)
type file = { mutable written : int; mutable durable : int; mutable lost : bool }

type t = {
  mutable plan : plan;
  mutable op : int;
  mutable log : (int * string) list;  (* newest first *)
  files : (string, file) Hashtbl.t;
}

let create plan = { plan; op = 0; log = []; files = Hashtbl.create 8 }
let ops t = t.op
let pending t = t.plan
let fired t = List.rev t.log
let fired_count t = List.length t.log

let to_json t =
  Json.Obj
    [
      ("ops", Json.Int t.op);
      ( "fired",
        Json.List
          (List.map
             (fun (op, what) ->
               Json.Obj [ ("op", Json.Int op); ("what", Json.String what) ])
             (fired t)) );
      ("pending", plan_to_json t.plan);
    ]

let file_for t path =
  match Hashtbl.find_opt t.files path with
  | Some f -> f
  | None ->
      let f = { written = 0; durable = 0; lost = false } in
      Hashtbl.add t.files path f;
      f

let register t ~path ~size =
  Hashtbl.replace t.files path { written = size; durable = size; lost = false }

let note_written t ~path n =
  let f = file_for t path in
  f.written <- f.written + n

let note_rename t ~src ~dst =
  match Hashtbl.find_opt t.files src with
  | None -> ()
  | Some f ->
      Hashtbl.remove t.files src;
      Hashtbl.replace t.files dst f

let crash t ~reason =
  Hashtbl.iter
    (fun path f ->
      if f.lost && f.written > f.durable then begin
        (try Unix.truncate path f.durable with Unix.Unix_error _ | Sys_error _ -> ());
        f.written <- f.durable;
        f.lost <- false
      end)
    t.files;
  raise (Crash reason)

(* Advance the op counter and pop the first *applicable* due fault, so
   a fault armed for an operation type that is not happening right now
   (e.g. a short read while only appends run) waits for the next
   applicable operation instead of being silently dropped. *)
let due t applicable =
  t.op <- t.op + 1;
  let rec split acc = function
    | [] -> None
    | f :: rest ->
        if f.at_op <= t.op && List.mem f.kind applicable then begin
          t.plan <- List.rev_append acc rest;
          Some f
        end
        else split (f :: acc) rest
  in
  split [] t.plan

let fire t what = t.log <- (t.op, what) :: t.log

let flip_bit data knob =
  let len = String.length data in
  let bit = int_of_float (knob *. float_of_int (len * 8)) mod (len * 8) in
  let b = Bytes.of_string data in
  let i = bit / 8 in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl (bit mod 8))));
  Bytes.to_string b

type write_verdict = Write of string | Torn of string

let on_append t ~path data =
  match due t [ Torn_write; Bit_flip; Enospc; Kill ] with
  | None -> Write data
  | Some { kind = Kill; _ } ->
      fire t (Printf.sprintf "kill before append %s" path);
      crash t ~reason:"injected kill"
  | Some { kind = Enospc; _ } ->
      fire t (Printf.sprintf "enospc appending %s" path);
      raise (Store_error (Printf.sprintf "ENOSPC: cannot append to %s" path))
  | Some { kind = Torn_write; knob; _ } ->
      let keep = int_of_float (knob *. float_of_int (String.length data)) in
      let keep = max 0 (min keep (String.length data)) in
      fire t
        (Printf.sprintf "torn write %s: %d of %d byte(s)" path keep
           (String.length data));
      Torn (String.sub data 0 keep)
  | Some { kind = Bit_flip; knob; _ } ->
      if data = "" then Write data
      else begin
        fire t (Printf.sprintf "bit flip in append to %s" path);
        Write (flip_bit data knob)
      end
  | Some { kind = Short_read | Fsync_loss; _ } ->
      (* unreachable: filtered by [applicable] *)
      Write data

let on_sync t ~path =
  match due t [ Fsync_loss; Kill ] with
  | None ->
      let f = file_for t path in
      f.durable <- f.written;
      f.lost <- false
  | Some { kind = Kill; _ } ->
      fire t (Printf.sprintf "kill before fsync %s" path);
      crash t ~reason:"injected kill"
  | Some { kind = Fsync_loss; _ } ->
      fire t (Printf.sprintf "fsync loss on %s" path);
      (file_for t path).lost <- true
  | Some _ -> ()

let on_read t ~path data =
  match due t [ Short_read; Bit_flip ] with
  | None -> data
  | Some { kind = Short_read; knob; _ } ->
      let keep = int_of_float (knob *. float_of_int (String.length data)) in
      let keep = max 0 (min keep (String.length data)) in
      fire t
        (Printf.sprintf "short read %s: %d of %d byte(s)" path keep
           (String.length data));
      String.sub data 0 keep
  | Some { kind = Bit_flip; knob; _ } ->
      if data = "" then data
      else begin
        fire t (Printf.sprintf "bit flip reading %s" path);
        flip_bit data knob
      end
  | Some _ -> data
