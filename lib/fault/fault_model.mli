(** Deterministic, seed-driven fault schedules.

    The paper evaluates scheduling on a fault-free fabric; the
    consistent-update literature it belongs to is centrally about the
    network misbehaving mid-update. This module generates the
    misbehaviour: a timed schedule of link failures/repairs, switch
    failures (all incident links), and partial capacity degradations,
    drawn from the {!Nu_stats.Prng} stream so that equal seeds always
    yield bit-identical schedules — chaos runs are exactly replayable.

    The schedule is data, not behaviour: {!Injector} interprets it
    against a live {!Nu_net.Net_state.t} inside the engine loop. *)

type action =
  | Link_down of int
      (** Fail a link by primary edge id (its reverse fails too). *)
  | Link_up of int  (** Repair a failed link. *)
  | Switch_down of int  (** Fail every link incident to the node id. *)
  | Switch_up of int  (** Repair those links. *)
  | Degrade of { edge : int; lost_mbps : float }
      (** Remove part of a link's capacity in both directions. *)
  | Restore of int  (** Undo every degradation on the edge (both ways). *)

type fault = { at_s : float; action : action }

type schedule = fault list
(** Sorted by [at_s]; ties keep generation order. *)

val empty : schedule

type config = {
  rate_per_s : float;  (** Expected primary faults per simulated second. *)
  horizon_s : float;  (** Primary faults are drawn in [0, horizon_s). *)
  repair_s : float;  (** Down/degraded duration before the paired repair. *)
  degrade_frac : float;  (** Fraction of capacity a degradation removes. *)
  w_link : float;  (** Relative weight of link down/up pairs. *)
  w_switch : float;  (** Relative weight of switch down/up pairs. *)
  w_degrade : float;  (** Relative weight of degrade/restore pairs. *)
}

val default_config : config
(** 0.2 faults/s over a 40 s horizon, 5 s repair, 50% degradation,
    weights 3:1:2 (link:switch:degrade). *)

val generate : ?config:config -> seed:int -> Topology.t -> schedule
(** Draw a schedule for the topology: link faults and degradations hit
    fabric (switch-to-switch) links, switch faults hit non-host nodes.
    Every fault is paired with its repair [repair_s] later. Equal seeds
    and topologies yield equal schedules. *)

val install_hazard :
  seed:int ->
  drop_rate:float ->
  delay_rate:float ->
  delay_s:float ->
  switch:int ->
  flow_id:int ->
  [ `Drop | `Delay of float ] option
(** Deterministic dataplane install-fault oracle for
    {!Nu_dataplane.Two_phase.execute_with_faults}: a pure hash of
    [(seed, switch, flow_id)] decides whether that rule install is
    dropped, delayed by [delay_s], or clean — independent of call order,
    so staging order cannot perturb the fault pattern. *)

val action_tag : action -> int
(** Stable small integer code per constructor (digest material). *)

val subject : action -> int
(** The edge or node id the action targets. *)

val pp_action : Format.formatter -> action -> unit
val pp : Format.formatter -> fault -> unit
