(** Recovery log: every abort/retry/degrade/evacuation decision the
    engine makes under fault, in order, with a stable digest.

    Determinism is an acceptance criterion, not an aspiration: two runs
    with the same fault seed must produce bit-identical recovery
    behaviour. The digest (FNV-1a over the decision stream) makes that
    checkable in one string comparison, the same way the scheduler bench
    digests run results. Recording also feeds the {!Nu_obs.Counters}
    fault keys, so counter snapshots pick the recovery work up for
    free. *)

type decision =
  | Fault_applied of { at_s : float; tag : int; subject : int }
      (** One schedule entry interpreted against the live state
          ([tag]/[subject] from {!Fault_model.action_tag}/[subject]). *)
  | Migration_aborted of { event_id : int; at_s : float; attempt : int }
      (** An in-flight event's round was undone by transaction
          rollback; [attempt] counts this event's aborts so far. *)
  | Retry_scheduled of { event_id : int; ready_s : float; attempt : int }
      (** The aborted event re-enters the queue at [ready_s]. *)
  | Event_degraded of { event_id : int; at_s : float }
      (** Retry budget exhausted; executed best-effort instead. *)
  | Flow_evacuated of { flow_id : int; at_s : float; dropped : bool }
      (** A placed flow was moved off failed capacity ([dropped] when no
          enabled path could take it and it was removed instead). *)
  | Invariant_violated of { at_s : float; name : string }

type t
(** Mutable, append-only. *)

val create : unit -> t

val record : t -> decision -> unit
(** Append and bump the matching counter ([Faults_injected],
    [Migrations_aborted], [Retries], [Events_degraded]). *)

val decisions : t -> decision list
(** Chronological. *)

type stats = {
  faults_applied : int;
  aborts : int;
  retries : int;
  degraded : int;
  evacuated : int;  (** Rerouted off failed capacity. *)
  dropped : int;  (** Removed: no enabled path survived. *)
  violations : int;
}

val stats : t -> stats
val violations : t -> int

val digest : t -> string
(** FNV-1a (64-bit, hex) over the ordered decision stream. Two runs are
    behaviourally identical under fault iff their digests match. An
    empty log digests to the FNV offset basis. *)

val stats_to_json : t -> Nu_obs.Json.t
(** Stats plus digest — the "recovery" object of run reports. *)

val to_json : t -> Nu_obs.Json.t
(** Full log: stats, digest and the decision list. *)

val pp : Format.formatter -> t -> unit
(** Stats one-liner. *)
