(** Bounded retry with deterministic exponential backoff in simulated
    time.

    When a fault aborts an in-flight update event, the engine does not
    crash and does not drop the event: it re-queues it after a backoff
    that grows exponentially with the number of aborts that event has
    already suffered, and after [max_attempts] aborts it falls back to
    graceful degradation (a best-effort scan-first plan that accepts
    unsatisfiable items instead of waiting for the fabric to heal).
    Everything is pure arithmetic on simulated time — two runs with the
    same fault schedule make the same retry decisions. *)

type t = {
  max_attempts : int;  (** Aborts tolerated before degrading (>= 1). *)
  base_backoff_s : float;  (** Backoff after the first abort (>= 0). *)
  multiplier : float;  (** Growth per further abort (>= 1). *)
}

val default : t
(** 3 attempts, 50 ms base, doubling. *)

val validate : t -> (unit, string) result

val backoff_s : t -> attempt:int -> float
(** Backoff after the [attempt]-th abort (1-based):
    [base_backoff_s *. multiplier ^ (attempt - 1)]. *)

val decide : t -> attempt:int -> [ `Retry_after of float | `Degrade ]
(** Decision after the [attempt]-th abort of one event: retry after
    {!backoff_s}, or degrade once the budget is exhausted. *)

val pp : Format.formatter -> t -> unit
