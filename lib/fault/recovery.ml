module Counters = Nu_obs.Counters
module Json = Nu_obs.Json

type decision =
  | Fault_applied of { at_s : float; tag : int; subject : int }
  | Migration_aborted of { event_id : int; at_s : float; attempt : int }
  | Retry_scheduled of { event_id : int; ready_s : float; attempt : int }
  | Event_degraded of { event_id : int; at_s : float }
  | Flow_evacuated of { flow_id : int; at_s : float; dropped : bool }
  | Invariant_violated of { at_s : float; name : string }

type t = { mutable log : decision list (* newest first *) }

let create () = { log = [] }

let record t d =
  (match d with
  | Fault_applied _ -> Counters.incr Counters.Faults_injected
  | Migration_aborted _ -> Counters.incr Counters.Migrations_aborted
  | Retry_scheduled _ -> Counters.incr Counters.Retries
  | Event_degraded _ -> Counters.incr Counters.Events_degraded
  | Flow_evacuated _ | Invariant_violated _ -> ());
  t.log <- d :: t.log

let decisions t = List.rev t.log

type stats = {
  faults_applied : int;
  aborts : int;
  retries : int;
  degraded : int;
  evacuated : int;
  dropped : int;
  violations : int;
}

let stats t =
  List.fold_left
    (fun s d ->
      match d with
      | Fault_applied _ -> { s with faults_applied = s.faults_applied + 1 }
      | Migration_aborted _ -> { s with aborts = s.aborts + 1 }
      | Retry_scheduled _ -> { s with retries = s.retries + 1 }
      | Event_degraded _ -> { s with degraded = s.degraded + 1 }
      | Flow_evacuated { dropped; _ } ->
          if dropped then { s with dropped = s.dropped + 1 }
          else { s with evacuated = s.evacuated + 1 }
      | Invariant_violated _ -> { s with violations = s.violations + 1 })
    {
      faults_applied = 0;
      aborts = 0;
      retries = 0;
      degraded = 0;
      evacuated = 0;
      dropped = 0;
      violations = 0;
    }
    t.log

let violations t =
  List.fold_left
    (fun n -> function Invariant_violated _ -> n + 1 | _ -> n)
    0 t.log

(* FNV-1a, same constants as the scheduler bench digests. *)
let fnv_prime = 0x100000001b3L
let fnv_basis = 0xcbf29ce484222325L

let fnv64 h x = Int64.mul (Int64.logxor h x) fnv_prime
let fnv_int h i = fnv64 h (Int64.of_int i)
let fnv_float h f = fnv64 h (Int64.bits_of_float f)

let fnv_string h s =
  String.fold_left (fun h c -> fnv_int h (Char.code c)) h s

let digest t =
  let h =
    List.fold_left
      (fun h d ->
        match d with
        | Fault_applied { at_s; tag; subject } ->
            fnv_int (fnv_int (fnv_float (fnv_int h 1) at_s) tag) subject
        | Migration_aborted { event_id; at_s; attempt } ->
            fnv_int (fnv_float (fnv_int (fnv_int h 2) event_id) at_s) attempt
        | Retry_scheduled { event_id; ready_s; attempt } ->
            fnv_int (fnv_float (fnv_int (fnv_int h 3) event_id) ready_s) attempt
        | Event_degraded { event_id; at_s } ->
            fnv_float (fnv_int (fnv_int h 4) event_id) at_s
        | Flow_evacuated { flow_id; at_s; dropped } ->
            fnv_int
              (fnv_float (fnv_int (fnv_int h 5) flow_id) at_s)
              (if dropped then 1 else 0)
        | Invariant_violated { at_s; name } ->
            fnv_string (fnv_float (fnv_int h 6) at_s) name)
      fnv_basis (decisions t)
  in
  Printf.sprintf "%016Lx" h

let stats_fields s =
  [
    ("faults_applied", Json.Int s.faults_applied);
    ("migrations_aborted", Json.Int s.aborts);
    ("retries", Json.Int s.retries);
    ("events_degraded", Json.Int s.degraded);
    ("flows_evacuated", Json.Int s.evacuated);
    ("flows_dropped", Json.Int s.dropped);
    ("invariant_violations", Json.Int s.violations);
  ]

let stats_to_json t =
  Json.Obj (("digest", Json.String (digest t)) :: stats_fields (stats t))

let decision_to_json = function
  | Fault_applied { at_s; tag; subject } ->
      Json.Obj
        [
          ("kind", Json.String "fault");
          ("at_s", Json.Float at_s);
          ("tag", Json.Int tag);
          ("subject", Json.Int subject);
        ]
  | Migration_aborted { event_id; at_s; attempt } ->
      Json.Obj
        [
          ("kind", Json.String "abort");
          ("event_id", Json.Int event_id);
          ("at_s", Json.Float at_s);
          ("attempt", Json.Int attempt);
        ]
  | Retry_scheduled { event_id; ready_s; attempt } ->
      Json.Obj
        [
          ("kind", Json.String "retry");
          ("event_id", Json.Int event_id);
          ("ready_s", Json.Float ready_s);
          ("attempt", Json.Int attempt);
        ]
  | Event_degraded { event_id; at_s } ->
      Json.Obj
        [
          ("kind", Json.String "degraded");
          ("event_id", Json.Int event_id);
          ("at_s", Json.Float at_s);
        ]
  | Flow_evacuated { flow_id; at_s; dropped } ->
      Json.Obj
        [
          ("kind", Json.String "evacuated");
          ("flow_id", Json.Int flow_id);
          ("at_s", Json.Float at_s);
          ("dropped", Json.Bool dropped);
        ]
  | Invariant_violated { at_s; name } ->
      Json.Obj
        [
          ("kind", Json.String "violation");
          ("at_s", Json.Float at_s);
          ("name", Json.String name);
        ]

let to_json t =
  Json.Obj
    [
      ("digest", Json.String (digest t));
      ("stats", Json.Obj (stats_fields (stats t)));
      ("decisions", Json.List (List.map decision_to_json (decisions t)));
    ]

let pp ppf t =
  let s = stats t in
  Format.fprintf ppf
    "recovery[faults %d, aborts %d, retries %d, degraded %d, evacuated %d, \
     dropped %d, violations %d, digest %s]"
    s.faults_applied s.aborts s.retries s.degraded s.evacuated s.dropped
    s.violations (digest t)
