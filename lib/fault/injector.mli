(** Runtime interpreter of a fault schedule against a live network.

    One injector accompanies one {!Nu_sched.Engine.run}: the engine asks
    when the next fault is due (to decide whether an executing round
    will be interrupted), tells the injector to apply every due fault at
    the current simulated instant, and consults it for abort/retry/
    degrade decisions. The injector owns the mutable pieces — schedule
    cursor, per-event attempt counts, the {!Recovery} log — so the
    engine's fault path stays a handful of calls, and a run without an
    injector pays nothing.

    Applying a fault also {b repairs the placement}: flows left on
    failed or over-degraded capacity are evacuated deterministically (in
    flow-id order, first enabled candidate path; dropped when none
    fits), so blackhole-freedom and capacity non-violation hold again
    before the engine resumes — that is the invariant {!check_now}
    asserts. *)

type t

val create :
  ?retry:Retry_policy.t ->
  ?check_invariants:bool ->
  Fault_model.schedule ->
  t
(** [check_invariants] (default true) controls whether {!check_now}
    actually scans the state. Raises [Invalid_argument] on an invalid
    retry policy. *)

val recovery : t -> Recovery.t
val retry_policy : t -> Retry_policy.t

(** {2 Checkpoint freeze/thaw}

    The decision-relevant injector state — the unapplied schedule suffix
    and the per-event abort counts that drive retry backoff — as a
    plain serialisable record. The recovery log is deliberately not
    frozen: it is append-only telemetry, and a thawed injector logs the
    post-restore suffix afresh. *)

type frozen = {
  fz_pending : Fault_model.schedule;  (** Unapplied faults, time-sorted. *)
  fz_attempts : (int * int) list;  (** (event id, aborts so far), id-sorted. *)
  fz_violations : int;
}

val freeze : t -> frozen

val thaw : ?retry:Retry_policy.t -> ?check_invariants:bool -> frozen -> t
(** Rebuild an injector that makes bit-identical abort/retry/degrade
    decisions from this point on, given the same [retry] policy and
    [check_invariants] flag as the original (same defaults as
    {!create}). *)

val next_due_s : t -> float option
(** Arrival time of the earliest unapplied fault, if any. *)

val apply_due : t -> Net_state.t -> now:float -> int
(** Apply every fault with [at_s <= now] in schedule order: flip the
    administrative state, then evacuate affected flows. Records each
    application and evacuation in the recovery log. Returns how many
    faults were applied. *)

val note_abort :
  t -> event_id:int -> now:float -> [ `Retry_at of float | `Degrade ]
(** One aborted attempt for the event: records the abort and either the
    retry (with its deterministic backoff-adjusted ready time) or the
    degradation decision. *)

val check_now : t -> Net_state.t -> now:float -> Invariant.violation list
(** Run {!Invariant.check} (unless invariant checking is off), record
    every violation in the recovery log, and return them. *)

val violations : t -> int
(** Total violations recorded so far. *)
