type t = { max_attempts : int; base_backoff_s : float; multiplier : float }

let default = { max_attempts = 3; base_backoff_s = 0.05; multiplier = 2.0 }

let validate t =
  if t.max_attempts < 1 then Error "max_attempts must be >= 1"
  else if t.base_backoff_s < 0.0 then Error "base_backoff_s must be >= 0"
  else if t.multiplier < 1.0 then Error "multiplier must be >= 1"
  else Ok ()

let backoff_s t ~attempt =
  if attempt < 1 then invalid_arg "Retry_policy.backoff_s: attempt < 1";
  t.base_backoff_s *. (t.multiplier ** float_of_int (attempt - 1))

let decide t ~attempt =
  if attempt >= t.max_attempts then `Degrade
  else `Retry_after (backoff_s t ~attempt)

let pp ppf t =
  Format.fprintf ppf "retry[max %d, base %.3fs, x%.1f]" t.max_attempts
    t.base_backoff_s t.multiplier
