(** Update-consistency invariant checking.

    After every engine step under fault, three things must hold or the
    chaos suite fails:

    + {b blackhole-freedom} — every placed flow's path crosses only
      enabled links (a fault handler that leaves a flow on failed
      capacity has blackholed it);
    + {b capacity non-violation} — no link's residual is negative (the
      §III-A congestion-free constraint survived the fault);
    + {b routing/placement agreement} — the per-edge occupancy tables,
      residuals and the flow table tell one consistent story
      ({!Nu_net.Net_state.invariants_ok}'s full recomputation).

    Checks are O(flows x diameter + edges) — chaos-suite economics, not
    hot-path economics; the engine only runs them when a fault injector
    is attached. Violations are emitted as {!Nu_obs.Trace} instants so
    traced chaos runs show exactly when consistency broke. *)

type violation = { name : string; detail : string }
(** [name] is one of ["blackhole"], ["capacity"], ["consistency"]. *)

val check : Net_state.t -> violation list
(** All violations currently present (empty = consistent). Bumps the
    [Invariant_checks] counter and emits one trace instant per
    violation. *)

val pp : Format.formatter -> violation -> unit
