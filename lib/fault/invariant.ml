module Trace = Nu_obs.Trace
module Counters = Nu_obs.Counters

type violation = { name : string; detail : string }

let check net =
  Counters.incr Counters.Invariant_checks;
  let acc = ref [] in
  let add name detail = acc := { name; detail } :: !acc in
  (* Blackhole-freedom: no placed flow crosses a disabled edge. *)
  Net_state.iter_flows net (fun (p : Net_state.placed) ->
      List.iter
        (fun (e : Graph.edge) ->
          if Net_state.edge_disabled net e.Graph.id then
            add "blackhole"
              (Printf.sprintf "flow %d crosses disabled edge %d"
                 p.Net_state.record.Flow_record.id e.Graph.id))
        (Path.edges p.Net_state.path));
  (* Capacity non-violation: every residual >= 0. *)
  let g = Net_state.graph net in
  for e = 0 to Graph.edge_count g - 1 do
    let r = Net_state.residual net e in
    if r < -1e-6 then
      add "capacity" (Printf.sprintf "edge %d residual %.3f < 0" e r)
  done;
  (* Routing/placement agreement: full structural recomputation. *)
  (match Net_state.invariants_ok net with
  | Ok () -> ()
  | Error msg -> add "consistency" msg);
  let violations = List.rev !acc in
  if Trace.enabled () then
    List.iter
      (fun v ->
        Trace.instant "invariant_violation"
          ~attrs:[ ("name", Trace.Str v.name); ("detail", Trace.Str v.detail) ])
      violations;
  violations

let pp ppf v = Format.fprintf ppf "%s: %s" v.name v.detail
