(** Deterministic storage-fault injection for the durable serving
    store.

    Where {!Fault_model} schedules dataplane faults by simulated time,
    this module schedules {e storage} faults by I/O operation index: a
    seeded plan maps the n-th physical store operation (journal append,
    fsync, checkpoint write, recovery read) to a fault — torn write at
    byte k, single bit-flip, short read, ENOSPC, delayed fsync loss, or
    plain process death. The journal and checkpoint writers route every
    physical operation through the hooks below, so a crash-storm run is
    a pure function of (workload seed, fault seed) and replays
    bit-identically.

    Simulated crashes are the {!Crash} exception; the supervisor
    catches it and restarts the serve loop. Delayed fsync loss is
    modelled faithfully: an acknowledged-but-lost sync leaves the bytes
    on disk until the next crash, at which point the file is truncated
    back to its last durable length. *)

type kind =
  | Torn_write  (** Persist a prefix of the buffer, then crash. *)
  | Bit_flip  (** Flip one bit of the buffer; the write proceeds. *)
  | Short_read  (** Deliver only a prefix of the file on read. *)
  | Enospc  (** The append fails with {!Store_error}. *)
  | Fsync_loss
      (** The sync is acknowledged but not durable: bytes written since
          the last durable sync vanish at the next crash. *)
  | Kill  (** Process death before the operation runs. *)

val kind_name : kind -> string

type fault = {
  at_op : int;  (** 1-based store-operation index the fault arms at. *)
  kind : kind;
  knob : float;
      (** Kind-specific dial in [0,1): torn-write keep fraction,
          bit-flip position, short-read keep fraction. *)
}

type plan = fault list
(** Sorted by [at_op]; at most one fault fires per operation. *)

type config = {
  n_faults : int;
  ops_span : int;  (** Fault indices are drawn from [1, ops_span]. *)
  w_torn : float;
  w_flip : float;
  w_short : float;
  w_enospc : float;
  w_fsync_loss : float;
  w_kill : float;
}

val default_config : config
(** 8 faults over 240 ops; weights torn 3, flip 2, kill 2, short 1,
    enospc 1, fsync-loss 1. *)

val generate : ?config:config -> seed:int -> unit -> plan
(** Deterministic: equal (config, seed) produce equal plans. Every
    [Fsync_loss] is paired with a [Kill] a few ops later so the lost
    sync actually materialises. Raises [Invalid_argument] on a
    non-positive span or weights that sum to zero. *)

val plan_to_json : plan -> Nu_obs.Json.t

exception Crash of string
(** Simulated process death. *)

exception Store_error of string
(** Simulated I/O failure that is not a death (e.g. ENOSPC). *)

type t
(** A live injector: the pending plan plus per-file durability
    tracking and the fired-fault log. *)

val create : plan -> t

val ops : t -> int
(** Store operations observed so far. *)

val pending : t -> plan

val fired : t -> (int * string) list
(** (op, description) pairs of fired faults, in firing order. *)

val fired_count : t -> int

val to_json : t -> Nu_obs.Json.t
(** Plan + fired log, for the crash-storm fault-report artifact. *)

(** {2 Device hooks}

    Called by the journal/checkpoint writers around every physical
    operation. Each hook advances the operation counter, fires at most
    one applicable due fault, and may raise {!Crash} or
    {!Store_error}. *)

val register : t -> path:string -> size:int -> unit
(** Start durability tracking for [path] at [size] on-disk bytes. *)

type write_verdict =
  | Write of string  (** Write these bytes (possibly bit-flipped). *)
  | Torn of string
      (** Write this prefix, then call {!crash} — the caller must put
          the prefix on disk first so the torn state is observable. *)

val on_append : t -> path:string -> string -> write_verdict
val note_written : t -> path:string -> int -> unit
(** Bytes actually written (and OS-flushed) to [path]. *)

val on_sync : t -> path:string -> unit
(** An fsync of [path]: marks its bytes durable unless a fault lost
    the sync. *)

val on_read : t -> path:string -> string -> string
(** Filter a whole-file read (may shorten or flip). *)

val note_rename : t -> src:string -> dst:string -> unit
(** Transfer durability tracking across an atomic rename. *)

val crash : t -> reason:string -> 'a
(** Apply pending fsync-loss truncations, then raise {!Crash}. *)
