module Trace = Nu_obs.Trace

type t = {
  mutable pending : Fault_model.fault list;  (* sorted by at_s *)
  retry : Retry_policy.t;
  check_invariants : bool;
  recovery : Recovery.t;
  attempts : (int, int) Hashtbl.t;  (* event id -> aborts so far *)
  mutable violation_count : int;
}

let create ?(retry = Retry_policy.default) ?(check_invariants = true) schedule =
  (match Retry_policy.validate retry with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Injector.create: " ^ msg));
  {
    pending =
      List.stable_sort
        (fun (a : Fault_model.fault) b ->
          compare a.Fault_model.at_s b.Fault_model.at_s)
        schedule;
    retry;
    check_invariants;
    recovery = Recovery.create ();
    attempts = Hashtbl.create 32;
    violation_count = 0;
  }

let recovery t = t.recovery
let retry_policy t = t.retry
let violations t = t.violation_count

(* Checkpoint support: the pieces of injector state that influence
   future engine decisions are the unapplied schedule suffix and the
   per-event abort counts (they drive retry backoff vs degradation).
   The recovery log is telemetry — a thawed injector starts a fresh log
   covering the post-restore suffix. *)

type frozen = {
  fz_pending : Fault_model.schedule;
  fz_attempts : (int * int) list;  (* event id, aborts so far; id-sorted *)
  fz_violations : int;
}

let freeze t =
  {
    fz_pending = t.pending;
    fz_attempts =
      List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.attempts []);
    fz_violations = t.violation_count;
  }

let thaw ?retry ?check_invariants fz =
  let t = create ?retry ?check_invariants fz.fz_pending in
  List.iter (fun (id, n) -> Hashtbl.replace t.attempts id n) fz.fz_attempts;
  t.violation_count <- fz.fz_violations;
  t

let next_due_s t =
  match t.pending with
  | [] -> None
  | f :: _ -> Some f.Fault_model.at_s

(* ------------------------------------------------------------------ *)
(* Evacuation: move a flow off failed capacity, deterministically.     *)

(* Try every enabled candidate path in ranked order; candidate_paths
   already filters paths crossing disabled edges, and reroute itself
   re-checks capacity with the flow's own usage released. A flow with no
   surviving feasible path is removed — a recorded drop, never a silent
   blackhole. *)
let evacuate_flow t net ~now flow_id =
  match Net_state.flow net flow_id with
  | None -> ()
  | Some (p : Net_state.placed) ->
      let rec try_paths = function
        | [] ->
            (match Net_state.remove net flow_id with
            | Ok _ | Error `Not_found -> ());
            Recovery.record t.recovery
              (Recovery.Flow_evacuated { flow_id; at_s = now; dropped = true })
        | path :: rest -> (
            if Path.equal path p.Net_state.path then try_paths rest
            else
              match Net_state.reroute net flow_id path with
              | Ok _ ->
                  Recovery.record t.recovery
                    (Recovery.Flow_evacuated
                       { flow_id; at_s = now; dropped = false })
              | Error _ -> try_paths rest)
      in
      try_paths (Net_state.candidate_paths net p.Net_state.record)

(* Flows crossing any of the given (now disabled) edges, in id order. *)
let evacuate_edges t net ~now edges =
  let ids =
    List.sort_uniq compare
      (List.concat_map
         (fun e ->
           List.map
             (fun (p : Net_state.placed) -> p.Net_state.record.Flow_record.id)
             (Net_state.flows_on_edge net e))
         edges)
  in
  List.iter (evacuate_flow t net ~now) ids

(* Shed flows (id order) until the degraded edge's residual is
   non-negative again. *)
let shed_overload t net ~now edge =
  let rec shed () =
    if Net_state.residual net edge < 0.0 then
      match Net_state.flows_on_edge net edge with
      | [] -> ()
      | p :: _ ->
          evacuate_flow t net ~now p.Net_state.record.Flow_record.id;
          shed ()
  in
  shed ()

let with_reverse net e =
  let g = Net_state.graph net in
  match Graph.reverse_edge g (Graph.edge g e) with
  | Some r -> [ e; r.Graph.id ]
  | None -> [ e ]

let incident_edges net v =
  let g = Net_state.graph net in
  List.sort_uniq compare
    (List.map
       (fun (e : Graph.edge) -> e.Graph.id)
       (Graph.out_edges g v @ Graph.in_edges g v))

let apply_fault t net ~now (f : Fault_model.fault) =
  Recovery.record t.recovery
    (Recovery.Fault_applied
       {
         at_s = f.Fault_model.at_s;
         tag = Fault_model.action_tag f.Fault_model.action;
         subject = Fault_model.subject f.Fault_model.action;
       });
  if Trace.enabled () then
    Trace.instant "fault"
      ~attrs:
        [
          ("at_s", Trace.Float f.Fault_model.at_s);
          ( "action",
            Trace.Str
              (Format.asprintf "%a" Fault_model.pp_action f.Fault_model.action)
          );
        ];
  match f.Fault_model.action with
  | Fault_model.Link_down e ->
      let edges = with_reverse net e in
      List.iter (Net_state.disable_edge net) edges;
      evacuate_edges t net ~now edges
  | Fault_model.Link_up e ->
      List.iter (Net_state.enable_edge net) (with_reverse net e)
  | Fault_model.Switch_down v ->
      let edges = incident_edges net v in
      List.iter (Net_state.disable_edge net) edges;
      evacuate_edges t net ~now edges
  | Fault_model.Switch_up v ->
      List.iter (Net_state.enable_edge net) (incident_edges net v)
  | Fault_model.Degrade { edge; lost_mbps } ->
      List.iter
        (fun e ->
          Net_state.degrade_edge net e ~lost_mbps;
          shed_overload t net ~now e)
        (with_reverse net edge)
  | Fault_model.Restore e ->
      List.iter (Net_state.restore_edge_capacity net) (with_reverse net e)

let apply_due t net ~now =
  let rec loop applied =
    match t.pending with
    | f :: rest when f.Fault_model.at_s <= now ->
        t.pending <- rest;
        apply_fault t net ~now f;
        loop (applied + 1)
    | _ -> applied
  in
  loop 0

let note_abort t ~event_id ~now =
  let attempt = 1 + (try Hashtbl.find t.attempts event_id with Not_found -> 0) in
  Hashtbl.replace t.attempts event_id attempt;
  Recovery.record t.recovery
    (Recovery.Migration_aborted { event_id; at_s = now; attempt });
  match Retry_policy.decide t.retry ~attempt with
  | `Retry_after backoff ->
      let ready_s = now +. backoff in
      Recovery.record t.recovery
        (Recovery.Retry_scheduled { event_id; ready_s; attempt });
      `Retry_at ready_s
  | `Degrade ->
      Recovery.record t.recovery
        (Recovery.Event_degraded { event_id; at_s = now });
      `Degrade

let check_now t net ~now =
  if not t.check_invariants then []
  else begin
    let vs = Invariant.check net in
    List.iter
      (fun (v : Invariant.violation) ->
        t.violation_count <- t.violation_count + 1;
        Recovery.record t.recovery
          (Recovery.Invariant_violated { at_s = now; name = v.Invariant.name }))
      vs;
    vs
  end
