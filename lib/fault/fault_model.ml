type action =
  | Link_down of int
  | Link_up of int
  | Switch_down of int
  | Switch_up of int
  | Degrade of { edge : int; lost_mbps : float }
  | Restore of int

type fault = { at_s : float; action : action }
type schedule = fault list

let empty = []

type config = {
  rate_per_s : float;
  horizon_s : float;
  repair_s : float;
  degrade_frac : float;
  w_link : float;
  w_switch : float;
  w_degrade : float;
}

let default_config =
  {
    rate_per_s = 0.2;
    horizon_s = 40.0;
    repair_s = 5.0;
    degrade_frac = 0.5;
    w_link = 3.0;
    w_switch = 1.0;
    w_degrade = 2.0;
  }

(* Fabric edges (both endpoints switches) and non-host nodes, straight
   from the topology — the generator must not depend on live state. *)
let fault_targets (topo : Topology.t) =
  let g = topo.Topology.graph in
  let host = Array.make (Graph.node_count g) false in
  Array.iter (fun h -> host.(h) <- true) topo.Topology.hosts;
  let fabric =
    Graph.fold_edges g ~init:[] ~f:(fun acc (e : Graph.edge) ->
        if host.(e.src) || host.(e.dst) then acc else e.id :: acc)
    |> List.rev |> Array.of_list
  in
  let switches = ref [] in
  for v = Graph.node_count g - 1 downto 0 do
    if not host.(v) then switches := v :: !switches
  done;
  (fabric, Array.of_list !switches)

let generate ?(config = default_config) ~seed topo =
  if config.rate_per_s < 0.0 || config.horizon_s < 0.0 then
    invalid_arg "Fault_model.generate: negative rate or horizon";
  let fabric, switches = fault_targets topo in
  let n = int_of_float ((config.rate_per_s *. config.horizon_s) +. 0.5) in
  if n = 0 || Array.length fabric = 0 || Array.length switches = 0 then []
  else begin
    let rng = Prng.create seed in
    let g = topo.Topology.graph in
    let total = config.w_link +. config.w_switch +. config.w_degrade in
    let faults = ref [] in
    for _ = 1 to n do
      let at_s = Prng.float rng config.horizon_s in
      let up_s = at_s +. config.repair_s in
      let w = Prng.float rng total in
      let pair =
        if w < config.w_link then begin
          let e = Prng.choose rng fabric in
          [ { at_s; action = Link_down e }; { at_s = up_s; action = Link_up e } ]
        end
        else if w < config.w_link +. config.w_switch then begin
          let v = Prng.choose rng switches in
          [
            { at_s; action = Switch_down v };
            { at_s = up_s; action = Switch_up v };
          ]
        end
        else begin
          let e = Prng.choose rng fabric in
          let lost_mbps =
            (Graph.edge g e).Graph.capacity
            *. max 0.0 (min 1.0 config.degrade_frac)
          in
          [
            { at_s; action = Degrade { edge = e; lost_mbps } };
            { at_s = up_s; action = Restore e };
          ]
        end
      in
      faults := List.rev_append pair !faults
    done;
    (* Stable sort: equal times keep generation order, so the schedule
       is a pure function of (seed, topology, config). *)
    List.stable_sort
      (fun a b -> compare a.at_s b.at_s)
      (List.rev !faults)
  end

(* Order-independent install-fault oracle: one private PRNG draw per
   (seed, switch, flow) triple. The multipliers are the SplitMix64 /
   Knuth mixing constants; what matters is only that distinct triples
   land on distinct, well-spread seeds. *)
let install_hazard ~seed ~drop_rate ~delay_rate ~delay_s ~switch ~flow_id =
  let mixed =
    (seed * 0x9E3779B1) lxor (switch * 0x85EBCA77) lxor (flow_id * 0xC2B2AE3D)
  in
  let u = Prng.unit_float (Prng.create mixed) in
  if u < drop_rate then Some `Drop
  else if u < drop_rate +. delay_rate then Some (`Delay delay_s)
  else None

let action_tag = function
  | Link_down _ -> 1
  | Link_up _ -> 2
  | Switch_down _ -> 3
  | Switch_up _ -> 4
  | Degrade _ -> 5
  | Restore _ -> 6

let subject = function
  | Link_down e | Link_up e | Degrade { edge = e; _ } | Restore e -> e
  | Switch_down v | Switch_up v -> v

let pp_action ppf = function
  | Link_down e -> Format.fprintf ppf "link-down(%d)" e
  | Link_up e -> Format.fprintf ppf "link-up(%d)" e
  | Switch_down v -> Format.fprintf ppf "switch-down(%d)" v
  | Switch_up v -> Format.fprintf ppf "switch-up(%d)" v
  | Degrade { edge; lost_mbps } ->
      Format.fprintf ppf "degrade(%d,-%.0fMbps)" edge lost_mbps
  | Restore e -> Format.fprintf ppf "restore(%d)" e

let pp ppf f = Format.fprintf ppf "@%.3fs %a" f.at_s pp_action f.action
