(** Sharded multi-controller serving: one fabric, N planners.

    N shard controllers — each an {!Nu_sched.Engine.Stepper} with its
    own bounded {!Nu_serve.Admission} queue and WAL segment namespace —
    share one {!Nu_net.Net_state}. A deterministic {!Partition} map
    routes every request to its home shard; shards advance in
    synchronised waves ({!Nu_sched.Engine.Stepper.step_group}); rounds
    whose make-room migration set crosses shard boundaries escalate to
    the global {!Coord}, which two-phase-commits them against the
    shared fabric. The drain budget is apportioned across shards
    weighted by backlog, and persistent hot shards shed their busiest
    region to the coldest shard.

    Determinism contract: same config, topology, net and source spec
    → bit-identical fabric {!digest}; with one shard the fabric
    executes the exact single-controller schedule, so the digest IS
    the {!Nu_serve.Serve} digest; per-shard WALs + the fabric
    checkpoint make a crash — including a torn shard WAL — recoverable
    to the uninterrupted run's digest. *)

(** {2 Configuration} *)

type config = {
  base : Serve.config;  (** Per-shard controller knobs. *)
  shards : int;
  regions : int;
      (** Routing granularity; on pod-major Fat-Tree host numbering,
          [regions = pod count] makes a region a pod. *)
  hot_factor : float;  (** Hot iff load EWMA > factor × mean EWMA. *)
  hot_ticks : int;  (** Consecutive hot ticks before a rebalance. *)
  rebalance_min_load : int;  (** Ignore "hot" shards lighter than this. *)
  coord : Coord.config;
}

val default_config : ?regions:int -> Serve.config -> shards:int -> config
(** [regions] defaults to [max 8 shards]; hot_factor 2.0, hot_ticks 3,
    rebalance_min_load 8, default coordinator config. *)

val validate_config : config -> unit
val fingerprint : config -> Source.spec -> Nu_obs.Json.t

val shard_journal_path : string -> int -> string
(** [<base>.shard<k>] — shard [k]'s WAL segment namespace. *)

val coord_journal_path : string -> string
(** [<base>.coord.jsonl] — the coordinator's decisions journal. *)

val apportion : budget:int -> backlogs:int array -> int array
(** Weighted-fair split of the fabric drain budget: proportional to
    backlog, largest-remainder (ties to the lower shard index), capped
    at each backlog with freed capacity re-dealt round-robin. Pure;
    [sum = min budget (sum backlogs)] and [quota.(k) <= backlogs.(k)].
    With one shard this is [min budget backlog] — exactly the
    single-controller drain cap. *)

(** {2 Lifecycle} *)

type t

val create :
  ?telemetry:Telemetry.t ->
  ?journal_base:string ->
  config ->
  topology:Topology.t ->
  net:Net_state.t ->
  source_spec:Source.spec ->
  t
(** [journal_base] attaches one write-ahead WAL per shard (under
    {!shard_journal_path}) plus the coordinator JSONL. *)

val tick : t -> unit
(** Poll → route → write-ahead per shard → execute → commit markers. *)

val run : t -> ticks:int -> unit

val complete : ?max_ticks:int -> t -> unit
(** Drain to quiescence (no admissions, deferred, engine work or
    pending coordinator events). Completion ticks poll nothing and
    journal nothing. *)

val tick_count : t -> int
val now_s : t -> float
val shard_count : t -> int
val partition : t -> Partition.t
val coord : t -> Coord.t
val stepper : t -> int -> Engine.Stepper.t
val admission : t -> int -> Admission.t

val backlog : t -> int -> int
(** Shard load: admission queue + engine backlog. *)

val quiescent : t -> bool
val completed : t -> int

val shard_digests : t -> string list
(** Per-shard decision digests, shard order. *)

val digest : t -> string
(** {!Run_digest.combine} of the shard digests plus the coordinator
    journal digest (when any coordinator entry exists). A one-shard
    fabric digests exactly like its lone controller. *)

val kill_shard_journal : t -> int -> unit
(** Crash-injection helper: abort shard [k]'s WAL writer, leaving a
    torn tail on disk exactly as a mid-write crash would. *)

val close : t -> unit
(** Close steppers, probe pool, journals and the coordinator sink. *)

val retire : t -> Engine.run_result list
(** {!close} plus telemetry retirement and end-of-life histogram
    recording; returns the per-shard run results. *)

(** {2 Checkpoint / restore / replay} *)

type shard_frozen = {
  sh_stepper : Engine.Stepper.frozen;
  sh_admission : Admission.frozen;
  sh_deferred : Request.t list;
}

type checkpoint = {
  cp_tick : int;
  cp_meta : Nu_obs.Json.t;
  cp_net : Net_state.frozen;
  cp_source : Source.frozen;
  cp_partition : Partition.frozen;
  cp_coord : Coord.frozen;
  cp_shards : shard_frozen list;
  cp_ewma : float list;
  cp_streak : int list;
}

val snapshot : t -> checkpoint
val checkpoint_to_json : checkpoint -> Nu_obs.Json.t
val checkpoint_of_json : graph:Graph.t -> Nu_obs.Json.t -> (checkpoint, string) result

val save_checkpoint : t -> path:string -> unit
(** Atomic write-then-rename with an embedded content hash. *)

val load_checkpoint : graph:Graph.t -> string -> (checkpoint, string) result

val restore_snapshot :
  ?telemetry:Telemetry.t ->
  config ->
  topology:Topology.t ->
  source_spec:Source.spec ->
  checkpoint ->
  (t, string) result
(** Rebuild the whole fabric from a checkpoint (journals detached).
    Refuses a configuration/source fingerprint mismatch. *)

val recover :
  ?telemetry:Telemetry.t ->
  config ->
  topology:Topology.t ->
  source_spec:Source.spec ->
  checkpoint_path:string ->
  journal_base:string ->
  (t * int, string) result
(** Crash recovery: restore from the checkpoint, strictly replay every
    shard's committed ticks up to the minimum commit horizon across
    shards (tolerating torn WAL tails), re-roll the per-shard journals
    as fresh segment chains holding exactly the committed groups, and
    re-attach everything. Returns the fabric and the number of ticks
    replayed; the caller re-serves the remaining horizon live. *)

val replay :
  ?telemetry:Telemetry.t ->
  ?checkpoint_path:string ->
  config ->
  topology:Topology.t ->
  net:Net_state.t ->
  source_spec:Source.spec ->
  journal_base:string ->
  (t * int, string) result
(** External audit: rebuild a fabric from its journals (cold-starting
    from [net] unless a checkpoint exists at [checkpoint_path]),
    strictly replaying every committed tick. Returns the fabric (not
    yet drained — call {!complete}) and the tick count replayed. *)
