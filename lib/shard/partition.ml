(* Deterministic region-keyed partition map. Hosts fold into [regions]
   contiguous blocks — on the Fat-Tree topologies hosts are pod-major,
   so with [regions] = pod count a region IS a pod — and each region is
   owned by exactly one shard. Routing a request reads only the request
   itself and the current assignment, never arrival history, so the map
   is total and stable: every event id lands on exactly one shard, in
   whatever order requests show up.

   The per-region arrival counters are bookkeeping for the rebalance
   step (pick the hot shard's busiest region); they are part of the
   frozen state so a restored fabric continues the same rebalance
   trajectory a crash interrupted. *)

module Json = Nu_obs.Json

type t = {
  host_count : int;
  regions : int;
  shards : int;
  assign : int array;  (* region -> owning shard *)
  arrivals : int array;  (* per-region arrivals since the last move *)
  mutable generation : int;
}

let create ~host_count ~regions ~shards =
  if shards < 1 then invalid_arg "Partition.create: shards must be >= 1";
  if regions < shards then
    invalid_arg "Partition.create: regions must be >= shards";
  if host_count < regions then
    invalid_arg "Partition.create: host_count must be >= regions";
  {
    host_count;
    regions;
    shards;
    (* Contiguous balanced blocks: region r -> shard r*S/R, the same
       rounding that folds hosts into regions. *)
    assign = Array.init regions (fun r -> r * shards / regions);
    arrivals = Array.make regions 0;
    generation = 0;
  }

let host_count t = t.host_count
let regions t = t.regions
let shards t = t.shards
let generation t = t.generation

let region_of_host t host =
  if host < 0 || host >= t.host_count then
    invalid_arg
      (Printf.sprintf "Partition.region_of_host: host %d outside [0, %d)" host
         t.host_count);
  host * t.regions / t.host_count

let shard_of_region t r =
  if r < 0 || r >= t.regions then
    invalid_arg
      (Printf.sprintf "Partition.shard_of_region: region %d outside [0, %d)" r
         t.regions);
  t.assign.(r)

(* The home region is a pure function of the event: the first Install's
   source host keys it; a Reroute-only event keys on the rerouted flow
   id, and (for safety — work lists are non-empty) an empty event keys
   on its own id. *)
let home_region_of_event t (e : Event.t) =
  let rec first_install = function
    | Event.Install fr :: _ -> Some (region_of_host t fr.Flow_record.src)
    | _ :: rest -> first_install rest
    | [] -> None
  in
  match first_install e.Event.work with
  | Some r -> r
  | None ->
      let rec first_reroute = function
        | Event.Reroute { flow_id; _ } :: _ -> Some flow_id
        | _ :: rest -> first_reroute rest
        | [] -> None
      in
      let key =
        match first_reroute e.Event.work with
        | Some fid -> fid
        | None -> e.Event.id
      in
      ((key mod t.regions) + t.regions) mod t.regions

let home_of_event t e = t.assign.(home_region_of_event t e)

let note_arrival t ~region =
  if region < 0 || region >= t.regions then
    invalid_arg "Partition.note_arrival: region out of range";
  t.arrivals.(region) <- t.arrivals.(region) + 1

let owned t shard =
  Array.fold_left (fun n s -> if s = shard then n + 1 else n) 0 t.assign

let regions_of t shard =
  let acc = ref [] in
  for r = t.regions - 1 downto 0 do
    if t.assign.(r) = shard then acc := r :: !acc
  done;
  !acc

(* The region a rebalance should evict from a hot shard: its
   max-arrival region, ties to the lowest id. None unless the shard
   owns at least two regions — a shard must keep a home. *)
let busiest_region t ~shard =
  if owned t shard < 2 then None
  else begin
    let best = ref (-1) in
    for r = 0 to t.regions - 1 do
      if
        t.assign.(r) = shard
        && (!best < 0 || t.arrivals.(r) > t.arrivals.(!best))
      then best := r
    done;
    if !best < 0 then None else Some !best
  end

let move t ~region ~to_shard =
  if region < 0 || region >= t.regions then
    invalid_arg "Partition.move: region out of range";
  if to_shard < 0 || to_shard >= t.shards then
    invalid_arg "Partition.move: shard out of range";
  t.assign.(region) <- to_shard;
  t.generation <- t.generation + 1;
  (* A move resets the arrival window: the next rebalance decision
     reads post-move traffic, not the skew that triggered this one. *)
  Array.fill t.arrivals 0 t.regions 0

(* ------------------------------------------------------------------ *)
(* Freeze / thaw.                                                      *)

type frozen = {
  fz_assign : int list;
  fz_arrivals : int list;
  fz_generation : int;
}

let freeze t =
  {
    fz_assign = Array.to_list t.assign;
    fz_arrivals = Array.to_list t.arrivals;
    fz_generation = t.generation;
  }

let thaw ~host_count ~regions ~shards fz =
  if List.length fz.fz_assign <> regions then
    invalid_arg "Partition.thaw: assignment length mismatch";
  if List.length fz.fz_arrivals <> regions then
    invalid_arg "Partition.thaw: arrival counter length mismatch";
  List.iter
    (fun s ->
      if s < 0 || s >= shards then
        invalid_arg "Partition.thaw: assignment names an unknown shard")
    fz.fz_assign;
  let t = create ~host_count ~regions ~shards in
  List.iteri (fun r s -> t.assign.(r) <- s) fz.fz_assign;
  List.iteri (fun r n -> t.arrivals.(r) <- n) fz.fz_arrivals;
  t.generation <- fz.fz_generation;
  t

let frozen_to_json fz =
  Json.Obj
    [
      ("assign", Json.List (List.map (fun s -> Json.Int s) fz.fz_assign));
      ("arrivals", Json.List (List.map (fun n -> Json.Int n) fz.fz_arrivals));
      ("generation", Json.Int fz.fz_generation);
    ]

let ( let* ) = Result.bind

let frozen_of_json j =
  let* assign = Codec.list_field "assign" j in
  let* fz_assign = Codec.map_m Codec.as_int assign in
  let* arrivals = Codec.list_field "arrivals" j in
  let* fz_arrivals = Codec.map_m Codec.as_int arrivals in
  let* fz_generation = Codec.int_field "generation" j in
  Ok { fz_assign; fz_arrivals; fz_generation }

let to_json t =
  Json.Obj
    [
      ("host_count", Json.Int t.host_count);
      ("regions", Json.Int t.regions);
      ("shards", Json.Int t.shards);
      ("generation", Json.Int t.generation);
      ("assign", Json.List (Array.to_list (Array.map (fun s -> Json.Int s) t.assign)));
    ]
