(** Deterministic region-keyed partition map: which shard controller
    owns which slice of the fabric.

    Hosts fold into [regions] contiguous blocks (pod-major host
    numbering makes a region a pod on the Fat-Tree topologies); each
    region is owned by exactly one shard. Routing is a pure function
    of the event and the current assignment — total (every event has
    exactly one home) and stable (independent of arrival order), which
    is what lets an N-shard journal replay reproduce the same split a
    live run produced. The per-region arrival counters feed the
    fabric's rebalance step and are part of the frozen state. *)

type t

val create : host_count:int -> regions:int -> shards:int -> t
(** Initial assignment: region [r] -> shard [r*shards/regions]
    (contiguous balanced blocks). Raises [Invalid_argument] unless
    [host_count >= regions >= shards >= 1]. *)

val host_count : t -> int
val regions : t -> int
val shards : t -> int

val generation : t -> int
(** Number of rebalance moves applied so far. *)

val region_of_host : t -> int -> int
(** [host * regions / host_count] — contiguous blocks. *)

val shard_of_region : t -> int -> int

val home_region_of_event : t -> Event.t -> int
(** The event's home region: the first [Install]'s source host keys
    it; a [Reroute]-only event keys on the rerouted flow id. A pure
    function of the event — never of arrival history. *)

val home_of_event : t -> Event.t -> int
(** [shard_of_region] of [home_region_of_event]. *)

val note_arrival : t -> region:int -> unit
(** Count one arrival against [region] (rebalance bookkeeping). *)

val owned : t -> int -> int
(** Number of regions a shard currently owns. *)

val regions_of : t -> int -> int list

val busiest_region : t -> shard:int -> int option
(** The shard's max-arrival region (ties to the lowest region id), or
    [None] when the shard owns fewer than two regions — a shard is
    never evicted from its last region. *)

val move : t -> region:int -> to_shard:int -> unit
(** Reassign [region], bump the generation and reset every arrival
    counter so the next rebalance decision reads post-move traffic. *)

(** {2 Freeze / thaw} *)

type frozen = {
  fz_assign : int list;
  fz_arrivals : int list;
  fz_generation : int;
}

val freeze : t -> frozen

val thaw : host_count:int -> regions:int -> shards:int -> frozen -> t
(** Raises [Invalid_argument] on a shape mismatch with the frozen
    assignment. *)

val frozen_to_json : frozen -> Nu_obs.Json.t
val frozen_of_json : Nu_obs.Json.t -> (frozen, string) result
val to_json : t -> Nu_obs.Json.t
