(* Sharded multi-controller serving: one fabric, N planners.

   The fabric owns N shard controllers — each an Engine.Stepper with
   its own bounded admission queue and WAL segment namespace — over
   ONE shared Net_state. A deterministic partition map routes every
   arriving request to its home shard; the shards advance in
   synchronised waves (Engine.Stepper.step_group), and a round whose
   make-room migration set crosses shard boundaries is withdrawn and
   escalated to the global Coord, which two-phase-commits it against
   the shared fabric.

   Determinism contract, mirrored from Serve:
   - same config, topology, net and source spec -> bit-identical
     fabric digest (per-shard decision digests folded with the
     coordinator's journal digest);
   - with one shard the fabric executes the exact single-controller
     schedule: routing is the identity, waves degenerate to steps,
     weighted-fair drain degenerates to drain_per_tick, nothing ever
     escalates — the combined digest IS the Serve digest;
   - per-shard write-ahead journals + the fabric checkpoint make a
     crash (even a torn shard WAL) recoverable to the uninterrupted
     run's digest: restore the whole fabric from the checkpoint,
     strictly replay every shard's committed ticks up to the minimum
     commit horizon, re-serve the rest live from the deterministic
     source. *)

module Json = Nu_obs.Json
module Counters = Nu_obs.Counters
module Histogram = Nu_obs.Histogram
module Watch = Nu_obs.Watch

let ( let* ) = Result.bind

type config = {
  base : Serve.config;  (** Per-shard controller knobs. *)
  shards : int;
  regions : int;
  hot_factor : float;  (** Hot iff load EWMA > factor x mean EWMA. *)
  hot_ticks : int;  (** Consecutive hot ticks before a rebalance. *)
  rebalance_min_load : int;  (** Ignore "hot" shards lighter than this. *)
  coord : Coord.config;
}

let default_config ?(regions = 8) base ~shards =
  {
    base;
    shards;
    regions = max regions shards;
    hot_factor = 2.0;
    hot_ticks = 3;
    rebalance_min_load = 8;
    coord = Coord.default_config;
  }

let validate_config cfg =
  Serve.validate_config cfg.base;
  Coord.validate_config cfg.coord;
  if cfg.shards < 1 then invalid_arg "Shard_fabric: shards must be >= 1";
  if cfg.regions < cfg.shards then
    invalid_arg "Shard_fabric: regions must be >= shards";
  if cfg.hot_factor <= 1.0 || not (Float.is_finite cfg.hot_factor) then
    invalid_arg "Shard_fabric: hot_factor must be finite and > 1";
  if cfg.hot_ticks < 1 then invalid_arg "Shard_fabric: hot_ticks must be >= 1";
  if cfg.rebalance_min_load < 0 then
    invalid_arg "Shard_fabric: rebalance_min_load must be >= 0"

let fingerprint cfg spec =
  Json.Obj
    [
      ("config", Serve.config_to_json cfg.base);
      ("source", Serve.spec_to_json spec);
      ("shards", Json.Int cfg.shards);
      ("regions", Json.Int cfg.regions);
      ("hot_factor", Json.Float cfg.hot_factor);
      ("hot_ticks", Json.Int cfg.hot_ticks);
      ("rebalance_min_load", Json.Int cfg.rebalance_min_load);
      ("coord", Coord.config_to_json cfg.coord);
    ]

(* Journal namespace: shard k's WAL segments live under
   <base>.shard<k>, the coordinator's JSONL audit under
   <base>.coord.jsonl. *)
let shard_journal_path base k = Printf.sprintf "%s.shard%d" base k
let coord_journal_path base = base ^ ".coord.jsonl"

type t = {
  cfg : config;
  topology : Topology.t;
  net : Net_state.t;
  source_spec : Source.spec;
  mutable source : Source.t;
  partition : Partition.t;
  coord : Coord.t;
  steppers : Engine.Stepper.t array;
  admissions : Admission.t array;
  deferred : Request.t list array;
  journals : Journal.writer option array;
  telemetry : Telemetry.t option;
  mutable pool : Probe_pool.t option;  (* shared probe fan-out, lazy *)
  ewma : float array;  (* per-shard load EWMA (hot detection) *)
  hot_streak : int array;
  mutable tick_count : int;
}

(* Shard k's engine-side observer: per-shard ECT stream into the watch
   layer (tenant "shard<k>") on top of the regular telemetry
   observations. Recording only — never decision-relevant. *)
let shard_observer telemetry k =
  Option.map
    (fun tel obs ->
      (match obs with
      | Engine.Event_completed { result; _ } -> (
          match Telemetry.watch tel with
          | Some w ->
              Watch.observe_ect w
                ~tenant:("shard" ^ string_of_int k)
                ~ect_s:(Engine.ect result)
          | None -> ())
      | _ -> ());
      Telemetry.observer tel obs)
    telemetry

(* Shard k's churn: the churn-owning shard (0) runs the base spec and
   expires the pre-placed flows; every other shard shares the exact
   flow generator but with a zero refill setpoint and no initial
   expiry, so churn placements happen once and ids never collide. *)
let shard_churn ~host_count base k =
  match Serve.engine_churn ~host_count base.Serve.churn with
  | None -> None
  | Some ch ->
      if k = 0 then Some ch
      else Some { ch with Engine.target_utilization = 0.0 }

let shard_seed base k =
  if k = 0 then base.Serve.engine_seed else base.Serve.engine_seed + (k * 7919)

let make_stepper ?telemetry cfg ~host_count ~net k =
  Engine.Stepper.create
    ~seed:(shard_seed cfg.base k)
    ~domains:1
    ?churn:(shard_churn ~host_count cfg.base k)
    ~co_max_cost_mbit:cfg.base.Serve.co_max_cost_mbit
    ~estimate_cache:cfg.base.Serve.estimate_cache
    ~init_expiry:(k = 0)
    ?observer:(shard_observer telemetry k)
    ~net cfg.base.Serve.policy

let create ?telemetry ?journal_base cfg ~topology ~net ~source_spec =
  validate_config cfg;
  let host_count = Topology.host_count topology in
  let partition =
    Partition.create ~host_count ~regions:cfg.regions ~shards:cfg.shards
  in
  let source = Source.create ~host_count source_spec in
  let steppers =
    Array.init cfg.shards (fun k -> make_stepper ?telemetry cfg ~host_count ~net k)
  in
  let admissions =
    Array.init cfg.shards (fun _ ->
        Admission.create ~capacity:cfg.base.Serve.admission_capacity
          ~policy:cfg.base.Serve.admission_policy)
  in
  let journals =
    match journal_base with
    | None -> Array.make cfg.shards None
    | Some base ->
        Array.init cfg.shards (fun k ->
            Some (Journal.open_writer (shard_journal_path base k)))
  in
  let coord_sink =
    Option.map (fun base -> open_out (coord_journal_path base)) journal_base
  in
  let coord =
    Coord.create ?sink:coord_sink
      ~seed:(cfg.base.Serve.engine_seed lxor 0x5eed)
      cfg.coord
  in
  {
    cfg;
    topology;
    net;
    source_spec;
    source;
    partition;
    coord;
    steppers;
    admissions;
    deferred = Array.make cfg.shards [];
    journals;
    telemetry;
    pool = None;
    ewma = Array.make cfg.shards 0.0;
    hot_streak = Array.make cfg.shards 0;
    tick_count = 0;
  }

let tick_count t = t.tick_count
let now_s t = float_of_int t.tick_count *. t.cfg.base.Serve.tick_dt_s
let partition t = t.partition
let coord t = t.coord
let shard_count t = t.cfg.shards
let stepper t k = t.steppers.(k)
let admission t k = t.admissions.(k)

let backlog t k =
  Admission.size t.admissions.(k) + Engine.Stepper.backlog t.steppers.(k)

let quiescent t =
  Array.for_all (fun a -> Admission.size a = 0) t.admissions
  && Array.for_all (fun d -> d = []) t.deferred
  && Array.for_all (fun st -> not (Engine.Stepper.has_work st)) t.steppers
  && Coord.pending_count t.coord = 0

let completed t =
  Array.fold_left (fun n st -> n + Engine.Stepper.completed st) 0 t.steppers
  + List.length (Coord.results t.coord)

(* The fabric digest: per-shard decision digests in shard order, plus
   the coordinator's journal digest when it ever decided anything.
   Run_digest.combine passes a singleton through unchanged, so a
   one-shard fabric (whose coordinator is structurally idle) digests
   exactly like the single-controller Serve run. *)
let shard_digests t =
  Array.to_list
    (Array.map (fun st -> Run_digest.of_run (Engine.Stepper.result st)) t.steppers)

let digest t =
  let ds = shard_digests t in
  Run_digest.combine
    (if Coord.entries t.coord > 0 then ds @ [ Coord.digest t.coord ] else ds)

(* ------------------------------------------------------------------ *)
(* Weighted-fair drain.                                                *)

(* Apportion the fabric drain budget across shards in proportion to
   admission backlog, largest-remainder, ties to the lower shard
   index; quotas are capped at the backlog and freed capacity is
   re-dealt round-robin to shards that can still use it. Pure, total:
   sum quota = min budget (sum backlogs), quota.(k) <= backlogs.(k).
   With one shard this is min budget backlog — exactly Serve's
   drain_per_tick cap. *)
let apportion ~budget ~backlogs =
  let n = Array.length backlogs in
  let total = Array.fold_left ( + ) 0 backlogs in
  let quota = Array.make n 0 in
  if total > 0 && budget > 0 then begin
    let rem = Array.make n 0 in
    let assigned = ref 0 in
    for k = 0 to n - 1 do
      let num = budget * backlogs.(k) in
      quota.(k) <- num / total;
      rem.(k) <- num mod total;
      assigned := !assigned + quota.(k)
    done;
    let order = Array.init n (fun i -> i) in
    Array.sort
      (fun a b ->
        match compare rem.(b) rem.(a) with 0 -> compare a b | c -> c)
      order;
    let left = ref (budget - !assigned) in
    Array.iter
      (fun k ->
        if !left > 0 then begin
          quota.(k) <- quota.(k) + 1;
          decr left
        end)
      order;
    (* Cap at backlog, then re-deal the freed capacity round-robin. *)
    for k = 0 to n - 1 do
      if quota.(k) > backlogs.(k) then quota.(k) <- backlogs.(k)
    done;
    let spent = Array.fold_left ( + ) 0 quota in
    let left = ref (min budget total - spent) in
    let progressed = ref true in
    while !left > 0 && !progressed do
      progressed := false;
      for k = 0 to n - 1 do
        if !left > 0 && quota.(k) < backlogs.(k) then begin
          quota.(k) <- quota.(k) + 1;
          decr left;
          progressed := true
        end
      done
    done
  end;
  quota

(* ------------------------------------------------------------------ *)
(* Escalation predicate.                                               *)

(* A flow's home shard: the region of its source host under the
   current assignment. None once the flow has left the network. *)
let shard_of_flow t fid =
  match Net_state.flow t.net fid with
  | Some placed ->
      Some
        (Partition.shard_of_region t.partition
           (Partition.region_of_host t.partition
              placed.Net_state.record.Flow_record.src))
  | None -> None

(* Escalate a winner iff its make-room migration set touches a flow
   homed on another shard — the two-level planner's boundary. A pure
   function of the plan and the live flow table, so replay reproduces
   every escalation decision. One shard never escalates. *)
let escalate_predicate t =
  if t.cfg.shards = 1 then None
  else
    Some
      (fun ~shard (plan : Planner.t) ->
        List.exists
          (fun fid ->
            match shard_of_flow t fid with
            | Some home -> home <> shard
            | None -> false)
          (Coord.moved_flow_ids plan))

(* ------------------------------------------------------------------ *)
(* Hot-shard detection + rebalance.                                    *)

(* EWMA the per-shard load each tick; a shard hot for [hot_ticks]
   consecutive ticks (and actually loaded, and owning a spare region)
   triggers one rebalance: its busiest region moves to the coldest
   shard. The decision is journaled through the coordinator so the
   audit stream (and digest) records the assignment history. *)
let update_hot t =
  let n = t.cfg.shards in
  if n > 1 then begin
    let loads = Array.init n (fun k -> backlog t k) in
    for k = 0 to n - 1 do
      t.ewma.(k) <- (0.8 *. t.ewma.(k)) +. (0.2 *. float_of_int loads.(k))
    done;
    let mean = Array.fold_left ( +. ) 0.0 t.ewma /. float_of_int n in
    for k = 0 to n - 1 do
      let hot =
        t.ewma.(k) > t.cfg.hot_factor *. mean
        && loads.(k) >= t.cfg.rebalance_min_load
        && Partition.owned t.partition k >= 2
      in
      t.hot_streak.(k) <- (if hot then t.hot_streak.(k) + 1 else 0)
    done;
    let hottest = ref (-1) in
    for k = n - 1 downto 0 do
      if
        t.hot_streak.(k) >= t.cfg.hot_ticks
        && (!hottest < 0 || t.ewma.(k) > t.ewma.(!hottest))
      then hottest := k
    done;
    if !hottest >= 0 then begin
      let hot = !hottest in
      match Partition.busiest_region t.partition ~shard:hot with
      | None -> Array.fill t.hot_streak 0 n 0
      | Some region ->
          let coldest = ref 0 in
          for k = 1 to n - 1 do
            if t.ewma.(k) < t.ewma.(!coldest) then coldest := k
          done;
          if !coldest <> hot then begin
            Partition.move t.partition ~region ~to_shard:!coldest;
            Coord.note_rebalance t.coord ~tick:t.tick_count ~region
              ~from_shard:hot ~to_shard:!coldest
              ~generation:(Partition.generation t.partition);
            Counters.incr Counters.Shard_rebalances
          end;
          Array.fill t.hot_streak 0 n 0
    end
  end

(* ------------------------------------------------------------------ *)
(* Tick execution.                                                     *)

let pool t =
  if t.cfg.base.Serve.domains <= 1 then None
  else
    match t.pool with
    | Some _ as p -> p
    | None ->
        let p =
          Probe_pool.create ~domains:t.cfg.base.Serve.domains ~net:t.net
        in
        t.pool <- Some p;
        Some p

let coord_pass t =
  Coord.attempt_due t.coord ~net:t.net ~tick:t.tick_count
    ~now_floor_s:(now_s t)
    ~shard_of_flow:(shard_of_flow t)
    ~backlogs:(Array.init t.cfg.shards (fun k -> backlog t k))
    ~on_commit:(fun ~home ~result ~degraded plan ->
      Engine.Stepper.register_departures t.steppers.(home)
        ~completion:result.Engine.completion_s plan;
      match t.telemetry with
      | Some tel ->
          Telemetry.observer tel (Engine.Event_completed { result; degraded })
      | None -> ())

(* One tick's admission + execution for already-routed (journaled or
   replayed) arrivals. Per shard this mirrors Serve.execute_tick
   hook-for-hook and counter-for-counter; across shards the drain
   budget is apportioned by backlog and the steppers advance in
   synchronised waves with a coordinator pass after each. *)
let execute_tick t routed =
  let tick = t.tick_count in
  let now = now_s t in
  (match t.telemetry with
  | Some tel ->
      Telemetry.on_tick_start tel ~tick ~now_s:now;
      Array.iter (List.iter (Telemetry.on_arrival tel)) routed
  | None -> ());
  (* Admission, shard by shard; deferred requests re-offer first. *)
  Array.iteri
    (fun k fresh ->
      let candidates = t.deferred.(k) @ fresh in
      t.deferred.(k) <- [];
      let deferred_rev = ref [] in
      List.iter
        (fun req ->
          let outcome = Admission.offer t.admissions.(k) ~tick req in
          (match t.telemetry with
          | Some tel -> Telemetry.on_admission tel req outcome
          | None -> ());
          match outcome with
          | Admission.Admitted -> Counters.incr Counters.Serve_admitted
          | Admission.Shed _ -> Counters.incr Counters.Serve_shed
          | Admission.Deferred ->
              Counters.incr Counters.Serve_deferred;
              deferred_rev := req :: !deferred_rev)
        candidates;
      t.deferred.(k) <- List.rev !deferred_rev)
    routed;
  (* Weighted-fair drain: the fabric budget splits by backlog. *)
  let backlogs = Array.map Admission.size t.admissions in
  let budget = t.cfg.base.Serve.drain_per_tick * t.cfg.shards in
  let quotas = apportion ~budget ~backlogs in
  Array.iteri
    (fun k quota ->
      if quota > 0 then begin
        let drained = Admission.drain t.admissions.(k) ~max:quota in
        if drained <> [] then begin
          Counters.add Counters.Serve_drained (List.length drained);
          if Histogram.Registry.enabled () then
            List.iter
              (fun (_, enq_tick) ->
                Histogram.Registry.record "serve.admission_wait_s"
                  (float_of_int (tick - enq_tick)
                  *. t.cfg.base.Serve.tick_dt_s))
              drained;
          (match t.telemetry with
          | Some tel ->
              List.iter
                (fun (req, enq_tick) ->
                  Telemetry.on_drain tel req ~wait_ticks:(tick - enq_tick))
                drained
          | None -> ());
          Engine.Stepper.submit t.steppers.(k)
            (List.map (fun (req, _) -> req.Request.event) drained)
        end
      end)
    quotas;
  (* Synchronised waves. Cross-shard winners two-phase-commit inline —
     the coordinator replays the wave's own probed plan inside a fabric
     transaction, so nothing is planned twice — and vetoed ones join
     the coordinator's retry queue, drained after each wave. *)
  let escalate = escalate_predicate t in
  let external_commit =
    match escalate with
    | None -> None
    | Some _ ->
        Some
          (fun ~shard ~event ~moved ~txn_open ~attempt ->
            Coord.commit_escalated t.coord ~net:t.net ~tick
              ~now_floor_s:(now_s t) ~home:shard ~event ~moved
              ~shard_of_flow:(shard_of_flow t)
              ~backlogs:(Array.init t.cfg.shards (fun k -> backlog t k))
              ~txn_open ~attempt
              ~on_commit:(fun ~home ~result ~degraded plan ->
                Engine.Stepper.register_departures t.steppers.(home)
                  ~completion:result.Engine.completion_s plan;
                match t.telemetry with
                | Some tel ->
                    Telemetry.observer tel
                      (Engine.Event_completed { result; degraded })
                | None -> ()))
  in
  let steps = ref 0 in
  let continue = ref true in
  while !continue && !steps < t.cfg.base.Serve.steps_per_tick do
    (match
       Engine.Stepper.step_group ?pool:(pool t) ?escalate ?external_commit
         t.steppers
     with
    | `Stepped (_, escalations) ->
        incr steps;
        (* With the inline committer every escalated winner is already
           handled; the list is empty. Submit any stragglers anyway so
           a future hookless configuration stays correct. *)
        List.iter
          (fun (e : Engine.Stepper.escalation) ->
            Coord.submit t.coord ~tick ~home:e.Engine.Stepper.esc_shard
              e.Engine.Stepper.esc_event)
          escalations
    | `Idle -> continue := false);
    coord_pass t;
    (* Wave barrier: every shard reads the fabric-wide clock, so a
       shard whose winners keep escalating still sees time pass and
       its background churn tracks the fabric. *)
    let now_max =
      Array.fold_left
        (fun acc st -> Float.max acc (Engine.Stepper.now_s st))
        (Coord.now_s t.coord) t.steppers
    in
    Array.iter
      (fun st -> Engine.Stepper.advance_clock st ~to_s:now_max)
      t.steppers
  done;
  update_hot t;
  let queue = Array.fold_left (fun n a -> n + Admission.size a) 0 t.admissions in
  let engine_backlog =
    Array.fold_left (fun n st -> n + Engine.Stepper.backlog st) 0 t.steppers
  in
  if Histogram.Registry.enabled () then begin
    Histogram.Registry.record "serve.queue_depth" (float_of_int queue);
    Histogram.Registry.record "serve.engine_backlog"
      (float_of_int engine_backlog)
  end;
  (match t.telemetry with
  | Some tel ->
      Telemetry.on_tick_end tel ~tick ~queue ~backlog:engine_backlog
  | None -> ());
  Counters.incr Counters.Serve_ticks;
  t.tick_count <- t.tick_count + 1

(* Route one tick's arrivals to their home shards, counting per-region
   arrivals for the rebalance step. Oldest-first within a shard. *)
let route t arrivals =
  let routed = Array.make t.cfg.shards [] in
  List.iter
    (fun req ->
      let region =
        Partition.home_region_of_event t.partition req.Request.event
      in
      Partition.note_arrival t.partition ~region;
      let k = Partition.shard_of_region t.partition region in
      routed.(k) <- req :: routed.(k))
    arrivals;
  for k = 0 to t.cfg.shards - 1 do
    routed.(k) <- List.rev routed.(k)
  done;
  routed

let tick t =
  let arrivals = Source.poll t.source ~tick:t.tick_count ~now_s:(now_s t) in
  let routed = route t arrivals in
  (* Write-ahead per shard: each shard journals exactly its own slice,
     so a single controller's recovery never depends on a sibling's
     WAL being readable. *)
  Array.iteri
    (fun k w ->
      match w with
      | Some w ->
          List.iter
            (fun req ->
              Journal.write w
                (Journal.Arrive { tick = t.tick_count; request = req }))
            routed.(k);
          Journal.flush w
      | None -> ())
    t.journals;
  execute_tick t routed;
  Array.iter
    (fun w ->
      match w with
      | Some w ->
          Journal.write w (Journal.Tick_done (t.tick_count - 1));
          Journal.flush w
      | None -> ())
    t.journals

let run t ~ticks =
  for _ = 1 to ticks do
    tick t
  done

(* Completion ticks poll nothing and journal nothing — pure functions
   of fabric state, reproduced by recovery without any record. *)
let complete ?(max_ticks = 1_000_000) t =
  let n = ref 0 in
  let empty = Array.make t.cfg.shards [] in
  while not (quiescent t) do
    if !n >= max_ticks then
      failwith
        (Printf.sprintf "Shard_fabric.complete: not quiescent after %d ticks"
           max_ticks);
    incr n;
    execute_tick t empty
  done

let kill_shard_journal t k =
  match t.journals.(k) with
  | Some w ->
      Journal.abort_writer w;
      t.journals.(k) <- None
  | None -> ()

let close t =
  Array.iter Engine.Stepper.close t.steppers;
  (match t.pool with
  | Some p ->
      Probe_pool.shutdown p;
      t.pool <- None
  | None -> ());
  Array.iteri
    (fun k w ->
      match w with
      | Some w ->
          Journal.close_writer w;
          t.journals.(k) <- None
      | None -> ())
    t.journals;
  Coord.close t.coord

let retire t =
  let results =
    Array.to_list (Array.map (fun st -> Engine.Stepper.result st) t.steppers)
  in
  List.iter (fun r -> Engine.record_event_histograms r.Engine.events) results;
  (match t.telemetry with Some tel -> Telemetry.on_retire tel | None -> ());
  close t;
  results

(* ------------------------------------------------------------------ *)
(* Checkpointing.                                                      *)

type shard_frozen = {
  sh_stepper : Engine.Stepper.frozen;
  sh_admission : Admission.frozen;
  sh_deferred : Request.t list;
}

type checkpoint = {
  cp_tick : int;
  cp_meta : Json.t;
  cp_net : Net_state.frozen;
  cp_source : Source.frozen;
  cp_partition : Partition.frozen;
  cp_coord : Coord.frozen;
  cp_shards : shard_frozen list;
  cp_ewma : float list;
  cp_streak : int list;
}

let snapshot t =
  {
    cp_tick = t.tick_count;
    cp_meta = fingerprint t.cfg t.source_spec;
    cp_net = Net_state.freeze t.net;
    cp_source = Source.freeze t.source;
    cp_partition = Partition.freeze t.partition;
    cp_coord = Coord.freeze t.coord;
    cp_shards =
      List.init t.cfg.shards (fun k ->
          {
            sh_stepper = Engine.Stepper.freeze t.steppers.(k);
            sh_admission = Admission.freeze t.admissions.(k);
            sh_deferred = t.deferred.(k);
          });
    cp_ewma = Array.to_list t.ewma;
    cp_streak = Array.to_list t.hot_streak;
  }

let format_tag = "nu_shard_checkpoint"
let version = 1

let core_to_json cp =
  Json.Obj
    [
      ("tick", Json.Int cp.cp_tick);
      ("meta", cp.cp_meta);
      ("net", Codec.net_frozen_to_json cp.cp_net);
      ("source", Source.frozen_to_json cp.cp_source);
      ("partition", Partition.frozen_to_json cp.cp_partition);
      ("coord", Coord.frozen_to_json cp.cp_coord);
      ( "shards",
        Json.List
          (List.map
             (fun sh ->
               Json.Obj
                 [
                   ("stepper", Codec.stepper_frozen_to_json sh.sh_stepper);
                   ("admission", Codec.admission_frozen_to_json sh.sh_admission);
                   ( "deferred",
                     Json.List (List.map Codec.request_to_json sh.sh_deferred)
                   );
                 ])
             cp.cp_shards) );
      ("ewma", Json.List (List.map (fun f -> Json.Float f) cp.cp_ewma));
      ("streak", Json.List (List.map (fun n -> Json.Int n) cp.cp_streak));
    ]

let checkpoint_to_json cp =
  let core = core_to_json cp in
  Json.Obj
    [
      ("format", Json.String format_tag);
      ("version", Json.Int version);
      ("hash", Json.String (Codec.fnv64_hex (Json.to_string core)));
      ("core", core);
    ]

let core_of_json ~graph j =
  let* cp_tick = Codec.int_field "tick" j in
  let cp_meta = Option.value (Codec.opt_field "meta" j) ~default:Json.Null in
  let* nj = Codec.field "net" j in
  let* cp_net = Codec.net_frozen_of_json graph nj in
  let* srcj = Codec.field "source" j in
  let* cp_source = Source.frozen_of_json srcj in
  let* pj = Codec.field "partition" j in
  let* cp_partition = Partition.frozen_of_json pj in
  let* cj = Codec.field "coord" j in
  let* cp_coord = Coord.frozen_of_json cj in
  let* shl = Codec.list_field "shards" j in
  let* cp_shards =
    Codec.map_m
      (fun sj ->
        let* stj = Codec.field "stepper" sj in
        let* sh_stepper = Codec.stepper_frozen_of_json stj in
        let* aj = Codec.field "admission" sj in
        let* sh_admission = Codec.admission_frozen_of_json aj in
        let* dl = Codec.list_field "deferred" sj in
        let* sh_deferred = Codec.map_m Codec.request_of_json dl in
        Ok { sh_stepper; sh_admission; sh_deferred })
      shl
  in
  let* el = Codec.list_field "ewma" j in
  let* cp_ewma = Codec.map_m Codec.as_float el in
  let* kl = Codec.list_field "streak" j in
  let* cp_streak = Codec.map_m Codec.as_int kl in
  Ok
    {
      cp_tick;
      cp_meta;
      cp_net;
      cp_source;
      cp_partition;
      cp_coord;
      cp_shards;
      cp_ewma;
      cp_streak;
    }

let checkpoint_of_json ~graph j =
  let* tag = Codec.string_field "format" j in
  if tag <> format_tag then Error (Printf.sprintf "not a fabric checkpoint: %S" tag)
  else
    let* v = Codec.int_field "version" j in
    if v <> version then
      Error (Printf.sprintf "unsupported fabric checkpoint version %d" v)
    else
      let* claimed = Codec.string_field "hash" j in
      let* core = Codec.field "core" j in
      let actual = Codec.fnv64_hex (Json.to_string core) in
      if claimed <> actual then
        Error
          (Printf.sprintf
             "fabric checkpoint content hash mismatch: file says %s, core \
              hashes to %s"
             claimed actual)
      else core_of_json ~graph core

(* Write-then-rename: a crash mid-save leaves the previous checkpoint
   intact, never a torn file. *)
let save_checkpoint t ~path =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  output_string oc (Json.to_string (checkpoint_to_json (snapshot t)));
  output_char oc '\n';
  close_out oc;
  Sys.rename tmp path;
  Counters.incr Counters.Serve_checkpoints

let load_checkpoint ~graph path =
  if not (Sys.file_exists path) then
    Error (Printf.sprintf "no fabric checkpoint at %s" path)
  else
    let ic = open_in path in
    let len = in_channel_length ic in
    let raw = really_input_string ic len in
    close_in ic;
    let* j = Json.of_string raw in
    checkpoint_of_json ~graph j

(* ------------------------------------------------------------------ *)
(* Restore + replay.                                                   *)

let restore_snapshot ?telemetry cfg ~topology ~source_spec cp =
  let* () = try Ok (validate_config cfg) with Invalid_argument m -> Error m in
  let expected = fingerprint cfg source_spec in
  if not (Serve.fingerprint_matches cp.cp_meta expected) then
    Error
      (Printf.sprintf
         "fabric checkpoint configuration mismatch:\n\
         \  checkpoint: %s\n\
         \  requested:  %s"
         (Json.to_string cp.cp_meta)
         (Json.to_string expected))
  else if
    List.length cp.cp_shards <> cfg.shards
    || List.length cp.cp_ewma <> cfg.shards
    || List.length cp.cp_streak <> cfg.shards
  then Error "fabric checkpoint shard count mismatch"
  else
    match
      let host_count = Topology.host_count topology in
      let net = Net_state.thaw topology cp.cp_net in
      let steppers =
        Array.of_list
          (List.mapi
             (fun k sh ->
               Engine.Stepper.thaw ~domains:1
                 ?churn:(shard_churn ~host_count cfg.base k)
                 ~co_max_cost_mbit:cfg.base.Serve.co_max_cost_mbit
                 ~estimate_cache:cfg.base.Serve.estimate_cache
                 ?observer:(shard_observer telemetry k)
                 ~net sh.sh_stepper)
             cp.cp_shards)
      in
      let admissions =
        Array.of_list
          (List.map
             (fun sh ->
               Admission.thaw ~capacity:cfg.base.Serve.admission_capacity
                 ~policy:cfg.base.Serve.admission_policy sh.sh_admission)
             cp.cp_shards)
      in
      let deferred =
        Array.of_list (List.map (fun sh -> sh.sh_deferred) cp.cp_shards)
      in
      let partition =
        Partition.thaw ~host_count ~regions:cfg.regions ~shards:cfg.shards
          cp.cp_partition
      in
      let source = Source.thaw ~host_count source_spec cp.cp_source in
      {
        cfg;
        topology;
        net;
        source_spec;
        source;
        partition;
        coord = Coord.thaw cfg.coord cp.cp_coord;
        steppers;
        admissions;
        deferred;
        journals = Array.make cfg.shards None;
        telemetry;
        pool = None;
        ewma = Array.of_list cp.cp_ewma;
        hot_streak = Array.of_list cp.cp_streak;
        tick_count = cp.cp_tick;
      }
    with
    | t -> Ok t
    | exception Invalid_argument m -> Error ("fabric checkpoint restore: " ^ m)

let request_eq a b =
  Json.to_string (Codec.request_to_json a)
  = Json.to_string (Codec.request_to_json b)

(* Strict replay of one committed tick: re-poll the deterministic
   source, re-route, and validate that every shard's regenerated slice
   matches what its WAL recorded — then execute. The journaled record
   stays authoritative; any divergence is an error, not a warning. *)
let replay_tick t ~per_shard_groups tk =
  if tk <> t.tick_count then
    Error
      (Printf.sprintf "journal gap: expected tick %d, found committed tick %d"
         t.tick_count tk)
  else begin
    let arrivals = Source.poll t.source ~tick:t.tick_count ~now_s:(now_s t) in
    let routed = route t arrivals in
    let rec check k =
      if k >= t.cfg.shards then Ok ()
      else
        let journaled =
          match List.assoc_opt tk per_shard_groups.(k) with
          | Some reqs -> reqs
          | None -> []
        in
        if
          List.length routed.(k) <> List.length journaled
          || not (List.for_all2 request_eq routed.(k) journaled)
        then
          Error
            (Printf.sprintf
               "replay divergence at tick %d shard %d: source regenerated %d \
                request(s), journal recorded %d (or contents differ)"
               tk k
               (List.length routed.(k))
               (List.length journaled))
        else check (k + 1)
    in
    let* () = check 0 in
    execute_tick t routed;
    Ok ()
  end

(* Recover a fabric after a crash (including a torn shard WAL):
   restore the whole fabric from the checkpoint, strictly replay every
   shard's committed ticks up to the minimum commit horizon across
   shards, then re-roll the per-shard journals — fresh segment chains
   rewriting exactly the committed groups, never appending past a torn
   tail. The caller then re-serves the remaining ticks live; the
   deterministic source makes the continuation bit-identical to the
   uninterrupted run. Returns the fabric and the number of ticks
   replayed. *)
let recover ?telemetry cfg ~topology ~source_spec ~checkpoint_path
    ~journal_base =
  let* cp =
    load_checkpoint ~graph:topology.Topology.graph checkpoint_path
  in
  let* t = restore_snapshot ?telemetry cfg ~topology ~source_spec cp in
  (* Tolerant read: a torn tail (or a shard WAL torn to nothing)
     truncates that shard's history, it does not fail recovery. *)
  let per_shard_groups =
    Array.init cfg.shards (fun k ->
        match Journal.read_report (shard_journal_path journal_base k) with
        | Ok report -> Journal.committed_ticks report.Journal.entries
        | Error _ -> [])
  in
  let horizon_of groups =
    List.fold_left (fun acc (tk, _) -> max acc (tk + 1)) cp.cp_tick groups
  in
  let target =
    Array.fold_left
      (fun acc groups -> min acc (horizon_of groups))
      max_int per_shard_groups
  in
  let target = max target cp.cp_tick in
  (* Re-attach the coordinator audit sink before replay so regenerated
     decisions land in a fresh JSONL (the pre-checkpoint history lives
     on in the frozen digest cursor). *)
  Coord.set_sink t.coord
    (Some (open_out (coord_journal_path journal_base)));
  let rec replay_from n =
    if t.tick_count >= target then Ok n
    else
      let* () = replay_tick t ~per_shard_groups t.tick_count in
      replay_from (n + 1)
  in
  let* replayed = replay_from 0 in
  (* Re-roll the WALs: fresh writers, committed groups only. *)
  Array.iteri
    (fun k groups ->
      let w = Journal.open_writer (shard_journal_path journal_base k) in
      List.iter
        (fun (tk, reqs) ->
          if tk < t.tick_count then begin
            List.iter
              (fun req ->
                Journal.write w (Journal.Arrive { tick = tk; request = req }))
              reqs;
            Journal.write w (Journal.Tick_done tk)
          end)
        (List.sort (fun (a, _) (b, _) -> compare a b) groups);
      Journal.flush w;
      t.journals.(k) <- Some w)
    per_shard_groups;
  Ok (t, replayed)

(* External audit: rebuild a fabric from nothing but its journals (and
   optionally a checkpoint), replay every committed tick, drain to
   quiescence and hand back the digest. *)
let replay ?telemetry ?checkpoint_path cfg ~topology ~net ~source_spec
    ~journal_base =
  let* t =
    match checkpoint_path with
    | Some path when Sys.file_exists path ->
        let* cp = load_checkpoint ~graph:topology.Topology.graph path in
        restore_snapshot ?telemetry cfg ~topology ~source_spec cp
    | _ -> Ok (create ?telemetry cfg ~topology ~net ~source_spec)
  in
  let per_shard_groups =
    Array.init cfg.shards (fun k ->
        match Journal.read_report (shard_journal_path journal_base k) with
        | Ok report -> Journal.committed_ticks report.Journal.entries
        | Error _ -> [])
  in
  let horizon_of groups =
    List.fold_left (fun acc (tk, _) -> max acc (tk + 1)) t.tick_count groups
  in
  let target =
    Array.fold_left
      (fun acc groups -> min acc (horizon_of groups))
      max_int per_shard_groups
  in
  let target = max target t.tick_count in
  let rec replay_from n =
    if t.tick_count >= target then Ok n
    else
      let* () = replay_tick t ~per_shard_groups t.tick_count in
      replay_from (n + 1)
  in
  let* replayed = replay_from 0 in
  Ok (t, replayed)
