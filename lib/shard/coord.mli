(** Global coordinator for cross-shard migration sets — the second
    level of the two-level planner.

    Shard-local rounds whose make-room migrations stay inside the
    owning shard commit locally; the rest escalate here. Each
    escalated event is planned inside a {!Nu_net.Net_state}
    transaction on the shared fabric, two-phase: Prepare is journaled,
    every participant shard (homes of the migrated flows plus the
    event's own home) votes — a participant vetoes when its backlog
    exceeds [veto_backlog] — and the transaction commits only on
    unanimous yes within the cost cap, otherwise it rolls back and the
    event retries, degrading after [max_attempts] to a scan-first plan
    outside any transaction. Failed plan items are committed and
    recorded exactly as the single-controller engine commits them —
    aborts exist for fairness (vetoes) and budget, not feasibility.

    Deterministic: own PRNG, own virtual clock floored by the tick
    wall, and an ordered JSONL decisions journal whose running FNV-1a
    digest folds into the fabric digest. Recovery never reads the
    journal back — the whole coordinator freezes into the fabric
    checkpoint and WAL replay regenerates later entries. *)

type config = {
  veto_backlog : int;
      (** A participant vetoes while its backlog exceeds this. *)
  retry_ticks : int;  (** Delay before an aborted event retries. *)
  max_attempts : int;  (** Attempts before degrading. *)
  max_cost_mbit : float;  (** Abort plans above this cost; 0 = off. *)
}

val default_config : config
(** veto 512, retry 1 tick, 3 attempts, no cost cap. *)

val validate_config : config -> unit
val config_to_json : config -> Nu_obs.Json.t

type t

val create :
  ?sink:out_channel ->
  ?exec:Exec_model.t ->
  ?plan_config:Planner.config ->
  seed:int ->
  config ->
  t
(** [sink] receives the JSONL decisions journal (one object per line,
    flushed per entry). The digest is maintained with or without it. *)

val set_sink : t -> out_channel option -> unit
val close : t -> unit

val submit : t -> tick:int -> home:int -> Event.t -> unit
(** Enqueue an escalated event (FIFO) owned by shard [home]. *)

val attempt_due :
  t ->
  net:Net_state.t ->
  tick:int ->
  now_floor_s:float ->
  shard_of_flow:(int -> int option) ->
  backlogs:int array ->
  on_commit:
    (home:int ->
    result:Engine.event_result ->
    degraded:bool ->
    Planner.t ->
    unit) ->
  unit
(** Run one coordinator pass: every queued event whose retry delay has
    elapsed gets a two-phase attempt. [shard_of_flow] maps a migrated
    flow id to its current home shard ([None] if the flow has left the
    network). [on_commit] fires once per terminating event (commit or
    degrade) with the accumulated result — the fabric uses it to
    register churn departures on the home shard and to surface the
    completion to telemetry. *)

val commit_escalated :
  t ->
  net:Net_state.t ->
  tick:int ->
  now_floor_s:float ->
  home:int ->
  event:Event.t ->
  moved:int list ->
  shard_of_flow:(int -> int option) ->
  backlogs:int array ->
  txn_open:bool ->
  attempt:(unit -> Planner.t) ->
  on_commit:
    (home:int ->
    result:Engine.event_result ->
    degraded:bool ->
    Planner.t ->
    unit) ->
  bool
(** Inline two-phase commit of a wave escalation — the fast path, fed
    by {!Nu_sched.Engine.Stepper.step_group}'s [external_commit] hook.
    The prepare entry is journaled and the participants (homes of
    [moved], plus [home]) vote on the announced migration set; on
    unanimous yes, [attempt] applies the engine's already-computed plan
    inside a fabric transaction ([txn_open] tells whether the engine
    left one open) and the commit is journaled and finished. On a veto
    the transaction rolls back and the event joins the retry queue for
    {!attempt_due}. Returns [true] iff the event committed. Nothing is
    planned twice on the commit path. *)

val note_rebalance :
  t ->
  tick:int ->
  region:int ->
  from_shard:int ->
  to_shard:int ->
  generation:int ->
  unit
(** Journal a partition rebalance decision (audit + digest). *)

val moved_flow_ids : Planner.t -> int list
(** Flow ids the plan's make-room moves migrated — the migration set
    the escalate predicate and the participant computation share. *)

val digest : t -> string
(** Running FNV-1a over the journal entries, 16 hex digits. *)

val entries : t -> int
val pending_count : t -> int

val results : t -> Engine.event_result list
(** Completion results, oldest-first. *)

val units : t -> int
val now_s : t -> float

(** {2 Freeze / thaw} *)

type frozen = {
  fz_queue : (Event.t * int * int * int * int) list;
      (** event, home, enq_tick, attempts, not_before. *)
  fz_now : float;
  fz_units : int;
  fz_results : Engine.event_result list;  (** Newest-first. *)
  fz_entries : int;
  fz_digest : int64;
  fz_rng : int64;
}

val freeze : t -> frozen

val thaw :
  ?sink:out_channel ->
  ?exec:Exec_model.t ->
  ?plan_config:Planner.config ->
  config ->
  frozen ->
  t

val frozen_to_json : frozen -> Nu_obs.Json.t
val frozen_of_json : Nu_obs.Json.t -> (frozen, string) result
