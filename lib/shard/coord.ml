(* Global coordinator: the second level of the two-level planner.

   A shard escalates a round when its winner's make-room migration set
   touches flows homed on other shards (see Shard_fabric's escalate
   predicate). The event then leaves the shard and is planned here,
   two-phase: Prepare is journaled, the plan is built inside a
   Net_state transaction on the shared fabric, every participant shard
   (the homes of the migrated flows, plus the event's own home) gets a
   veto vote, and the transaction commits only on unanimous yes with a
   clean plan — otherwise it rolls back, the Abort is journaled and
   the event retries a bounded number of times before degrading
   (scan-first admission, failures accepted, outside any vote).

   Everything is deterministic: the coordinator has its own PRNG and a
   virtual clock floored by the tick wall, and the decisions journal is
   an ordered JSONL audit stream whose running FNV-1a digest is part of
   the fabric digest. Recovery does not read the journal back — the
   coordinator's whole state (queue, clock, results, digest cursor,
   PRNG) freezes into the fabric checkpoint and the replayed WAL
   regenerates the post-checkpoint entries bit-identically. *)

module Json = Nu_obs.Json
module Counters = Nu_obs.Counters

type config = {
  veto_backlog : int;
  retry_ticks : int;
  max_attempts : int;
  max_cost_mbit : float;  (* 0 = unlimited *)
}

let default_config =
  { veto_backlog = 512; retry_ticks = 1; max_attempts = 3; max_cost_mbit = 0.0 }

let validate_config cfg =
  if cfg.veto_backlog < 0 then
    invalid_arg "Coord: veto_backlog must be >= 0";
  if cfg.retry_ticks < 1 then invalid_arg "Coord: retry_ticks must be >= 1";
  if cfg.max_attempts < 1 then invalid_arg "Coord: max_attempts must be >= 1";
  if cfg.max_cost_mbit < 0.0 || not (Float.is_finite cfg.max_cost_mbit) then
    invalid_arg "Coord: max_cost_mbit must be finite and >= 0"

let config_to_json cfg =
  Json.Obj
    [
      ("veto_backlog", Json.Int cfg.veto_backlog);
      ("retry_ticks", Json.Int cfg.retry_ticks);
      ("max_attempts", Json.Int cfg.max_attempts);
      ("max_cost_mbit", Json.Float cfg.max_cost_mbit);
    ]

type pending = {
  p_event : Event.t;
  p_home : int;
  p_enq_tick : int;
  mutable p_attempts : int;
  mutable p_not_before : int;
}

type t = {
  cfg : config;
  exec : Exec_model.t;
  plan_config : Planner.config;
  rng : Prng.t;
  mutable sink : out_channel option;
  mutable queue : pending list;  (* oldest-first *)
  mutable now_s : float;
  mutable units : int;
  mutable results : Engine.event_result list;  (* newest-first *)
  mutable entries : int;
  mutable digest_h : int64;
}

let fnv_prime = 0x100000001b3L
let fnv_basis = 0xcbf29ce484222325L

let fnv_byte h c = Int64.mul (Int64.logxor h (Int64.of_int c)) fnv_prime

let fnv_string h s =
  String.fold_left (fun h ch -> fnv_byte h (Char.code ch)) h s

let create ?sink ?(exec = Exec_model.default)
    ?(plan_config = Planner.default_config) ~seed cfg =
  validate_config cfg;
  {
    cfg;
    exec;
    plan_config;
    rng = Prng.create seed;
    sink;
    queue = [];
    now_s = 0.0;
    units = 0;
    results = [];
    entries = 0;
    digest_h = fnv_basis;
  }

let set_sink t sink = t.sink <- sink

let close t =
  (match t.sink with Some oc -> close_out oc | None -> ());
  t.sink <- None

(* Journal one decision: the digest covers every entry whether or not
   a sink is attached, so a journal-less fabric (tests, benches)
   digests identically to a journaled one. *)
let record t j =
  let line = Json.to_string j in
  t.digest_h <- fnv_byte (fnv_string t.digest_h line) 0x0a;
  t.entries <- t.entries + 1;
  match t.sink with
  | Some oc ->
      output_string oc line;
      output_char oc '\n';
      flush oc
  | None -> ()

let digest t = Printf.sprintf "%016Lx" t.digest_h
let entries t = t.entries
let pending_count t = List.length t.queue
let results t = List.rev t.results
let units t = t.units
let now_s t = t.now_s

(* Flow ids the plan's make-room moves migrated — the cross-shard
   migration set. Mirrors the engine's own notion exactly. *)
let moved_flow_ids (plan : Planner.t) =
  List.concat_map
    (fun (it : Planner.item_plan) ->
      match it.Planner.outcome with
      | Planner.Installed { moves; _ } | Planner.Rerouted { moves; _ } ->
          List.map (fun (m : Migration.move) -> m.Migration.flow_id) moves
      | Planner.Failed _ -> [])
    plan.Planner.items

let submit t ~tick ~home (ev : Event.t) =
  t.queue <-
    t.queue
    @ [
        {
          p_event = ev;
          p_home = home;
          p_enq_tick = tick;
          p_attempts = 0;
          p_not_before = tick;
        };
      ]

let note_rebalance t ~tick ~region ~from_shard ~to_shard ~generation =
  record t
    (Json.Obj
       [
         ("k", Json.String "rebalance");
         ("tick", Json.Int tick);
         ("region", Json.Int region);
         ("from", Json.Int from_shard);
         ("to", Json.Int to_shard);
         ("generation", Json.Int generation);
       ])

let participants_json ps = Json.List (List.map (fun k -> Json.Int k) ps)

(* Execute one accepted plan: bill units, advance the virtual clock by
   plan + execution time, accumulate the event result and notify the
   fabric so the home shard registers churn departures and telemetry
   sees the completion. *)
let finish t ~tick ~kind ~participants ~billed ~on_commit p
    (plan : Planner.t) =
  (* Inline wave commits reuse a plan the shard's probe already billed;
     only the coordinator's own planning (retries, degrades) adds to
     the fabric's unit total. The virtual clock charges plan time
     either way — the decision was made somewhere. *)
  if billed then t.units <- t.units + plan.Planner.work_units;
  let plan_t = Exec_model.plan_time t.exec ~work_units:plan.Planner.work_units in
  let exec_t = Exec_model.execution_time t.exec plan in
  let start_s = t.now_s +. plan_t in
  let completion_s = start_s +. exec_t in
  t.now_s <- completion_s;
  let degraded = kind = "degraded" in
  let result =
    {
      Engine.event_id = p.p_event.Event.id;
      arrival_s = p.p_event.Event.arrival_s;
      start_s;
      completion_s;
      cost_mbit = plan.Planner.cost_mbit;
      plan_work_units = plan.Planner.work_units;
      failed_items = plan.Planner.failed_count;
      co_scheduled = false;
    }
  in
  t.results <- result :: t.results;
  record t
    (Json.Obj
       [
         ("k", Json.String kind);
         ("tick", Json.Int tick);
         ("event", Json.Int p.p_event.Event.id);
         ("attempt", Json.Int p.p_attempts);
         ("participants", participants_json participants);
         ("cost_mbit", Json.Float plan.Planner.cost_mbit);
         ("work_units", Json.Int plan.Planner.work_units);
         ("failed_items", Json.Int plan.Planner.failed_count);
         ("completion_s", Json.Float completion_s);
       ]);
  on_commit ~home:p.p_home ~result ~degraded plan

(* Inline two-phase commit for a wave escalation: the engine already
   probed (or live-replanned) the winner, so the prepare phase votes on
   the announced migration set and the commit phase merely applies
   [attempt] — a validated replay of the probe plan when the engine's
   transaction is not yet open, or the already-applied replan when it
   is. A veto rolls the transaction back (if open) and queues the event
   for the retry path below; nothing is planned twice on the commit
   path, which is what lets an N-shard wave retire N events in the
   wall-clock of one. *)
let commit_escalated t ~net ~tick ~now_floor_s ~home ~(event : Event.t) ~moved
    ~shard_of_flow ~(backlogs : int array) ~txn_open ~attempt ~on_commit =
  t.now_s <- Float.max t.now_s now_floor_s;
  let p =
    {
      p_event = event;
      p_home = home;
      p_enq_tick = tick;
      p_attempts = 1;
      p_not_before = tick;
    }
  in
  record t
    (Json.Obj
       [
         ("k", Json.String "prepare");
         ("tick", Json.Int tick);
         ("event", Json.Int event.Event.id);
         ("attempt", Json.Int p.p_attempts);
       ]);
  let participants =
    List.sort_uniq compare (home :: List.filter_map shard_of_flow moved)
  in
  let vetoed =
    List.filter
      (fun k ->
        k >= 0 && k < Array.length backlogs
        && backlogs.(k) > t.cfg.veto_backlog)
      participants
  in
  let abort reason =
    if txn_open then Net_state.rollback net;
    Counters.incr Counters.Shard_coord_aborts;
    record t
      (Json.Obj
         [
           ("k", Json.String "abort");
           ("tick", Json.Int tick);
           ("event", Json.Int event.Event.id);
           ("attempt", Json.Int p.p_attempts);
           ("participants", participants_json participants);
           ("reason", Json.String reason);
           ("vetoed", participants_json vetoed);
         ]);
    p.p_not_before <- tick + t.cfg.retry_ticks;
    t.queue <- t.queue @ [ p ];
    false
  in
  if vetoed <> [] then abort "veto"
  else begin
    if not txn_open then Net_state.begin_txn net;
    let plan = attempt () in
    let over_budget =
      t.cfg.max_cost_mbit > 0.0
      && plan.Planner.cost_mbit > t.cfg.max_cost_mbit
    in
    if over_budget then abort "over_budget"
    else begin
      Net_state.commit net;
      Counters.incr Counters.Shard_coord_commits;
      let participants =
        List.sort_uniq compare
          (home :: List.filter_map shard_of_flow (moved_flow_ids plan))
      in
      finish t ~tick ~kind:"commit" ~participants ~billed:false ~on_commit p
        plan;
      true
    end
  end

(* One coordinator pass: every queued event whose retry delay elapsed
   gets a two-phase attempt against the live fabric. [shard_of_flow]
   maps a migrated flow to its home shard (None for flows that left
   the network since the plan was probed); [backlogs] is each shard's
   vote input. Deterministic given the same net, queue and clock. *)
let attempt_due t ~net ~tick ~now_floor_s ~shard_of_flow ~backlogs ~on_commit =
  if t.queue <> [] then begin
    t.now_s <- Float.max t.now_s now_floor_s;
    let still = ref [] in
    List.iter
      (fun p ->
        if p.p_not_before > tick then still := p :: !still
        else begin
          p.p_attempts <- p.p_attempts + 1;
          record t
            (Json.Obj
               [
                 ("k", Json.String "prepare");
                 ("tick", Json.Int tick);
                 ("event", Json.Int p.p_event.Event.id);
                 ("attempt", Json.Int p.p_attempts);
               ]);
          Net_state.begin_txn net;
          let plan =
            Planner.plan ~rng:t.rng ~config:t.plan_config net p.p_event
          in
          let moved = moved_flow_ids plan in
          let participants =
            List.sort_uniq compare
              (p.p_home :: List.filter_map shard_of_flow moved)
          in
          let vetoed =
            List.filter
              (fun k ->
                k >= 0
                && k < Array.length backlogs
                && backlogs.(k) > t.cfg.veto_backlog)
              participants
          in
          let over_budget =
            t.cfg.max_cost_mbit > 0.0
            && plan.Planner.cost_mbit > t.cfg.max_cost_mbit
          in
          (* Failed plan items are not grounds for abort: the engine
             itself commits plans with failures and records them in the
             result, and a retry against a fuller fabric can only do
             worse. Abort is for participant vetoes and cost caps. *)
          if vetoed = [] && not over_budget then begin
            Net_state.commit net;
            Counters.incr Counters.Shard_coord_commits;
            finish t ~tick ~kind:"commit" ~participants ~billed:true
              ~on_commit p plan
          end
          else begin
            Net_state.rollback net;
            Counters.incr Counters.Shard_coord_aborts;
            let reason = if vetoed <> [] then "veto" else "over_budget" in
            record t
              (Json.Obj
                 [
                   ("k", Json.String "abort");
                   ("tick", Json.Int tick);
                   ("event", Json.Int p.p_event.Event.id);
                   ("attempt", Json.Int p.p_attempts);
                   ("participants", participants_json participants);
                   ("reason", Json.String reason);
                   ("vetoed", participants_json vetoed);
                 ]);
            if p.p_attempts >= t.cfg.max_attempts then begin
              (* Degrade: plan outside any transaction with scan-first
                 admission (minimal migration) and accept whatever
                 failures remain — the event must terminate. *)
              let dplan =
                Planner.plan ~rng:t.rng
                  ~config:
                    { t.plan_config with Planner.admission = Planner.Scan_first }
                  net p.p_event
              in
              Counters.incr Counters.Shard_coord_degraded;
              finish t ~tick ~kind:"degraded" ~participants:[ p.p_home ]
                ~billed:true ~on_commit p dplan
            end
            else begin
              p.p_not_before <- tick + t.cfg.retry_ticks;
              still := p :: !still
            end
          end
        end)
      t.queue;
    t.queue <- List.rev !still
  end

(* ------------------------------------------------------------------ *)
(* Freeze / thaw.                                                      *)

type frozen = {
  fz_queue : (Event.t * int * int * int * int) list;
      (* event, home, enq_tick, attempts, not_before *)
  fz_now : float;
  fz_units : int;
  fz_results : Engine.event_result list;  (* newest-first *)
  fz_entries : int;
  fz_digest : int64;
  fz_rng : int64;
}

let freeze t =
  {
    fz_queue =
      List.map
        (fun p -> (p.p_event, p.p_home, p.p_enq_tick, p.p_attempts, p.p_not_before))
        t.queue;
    fz_now = t.now_s;
    fz_units = t.units;
    fz_results = t.results;
    fz_entries = t.entries;
    fz_digest = t.digest_h;
    fz_rng = Prng.raw_state t.rng;
  }

let thaw ?sink ?(exec = Exec_model.default)
    ?(plan_config = Planner.default_config) cfg fz =
  validate_config cfg;
  {
    cfg;
    exec;
    plan_config;
    rng = Prng.of_raw_state fz.fz_rng;
    sink;
    queue =
      List.map
        (fun (ev, home, enq, att, nb) ->
          {
            p_event = ev;
            p_home = home;
            p_enq_tick = enq;
            p_attempts = att;
            p_not_before = nb;
          })
        fz.fz_queue;
    now_s = fz.fz_now;
    units = fz.fz_units;
    results = fz.fz_results;
    entries = fz.fz_entries;
    digest_h = fz.fz_digest;
  }

let frozen_to_json fz =
  Json.Obj
    [
      ( "queue",
        Json.List
          (List.map
             (fun (ev, home, enq, att, nb) ->
               Json.Obj
                 [
                   ("event", Codec.event_to_json ev);
                   ("home", Json.Int home);
                   ("enq_tick", Json.Int enq);
                   ("attempts", Json.Int att);
                   ("not_before", Json.Int nb);
                 ])
             fz.fz_queue) );
      ("now_s", Json.Float fz.fz_now);
      ("units", Json.Int fz.fz_units);
      ( "results",
        Json.List (List.map Codec.event_result_to_json fz.fz_results) );
      ("entries", Json.Int fz.fz_entries);
      ("digest", Codec.int64_to_json fz.fz_digest);
      ("rng", Codec.int64_to_json fz.fz_rng);
    ]

let ( let* ) = Result.bind

let frozen_of_json j =
  let* ql = Codec.list_field "queue" j in
  let* fz_queue =
    Codec.map_m
      (fun pj ->
        let* ej = Codec.field "event" pj in
        let* ev = Codec.event_of_json ej in
        let* home = Codec.int_field "home" pj in
        let* enq = Codec.int_field "enq_tick" pj in
        let* att = Codec.int_field "attempts" pj in
        let* nb = Codec.int_field "not_before" pj in
        Ok (ev, home, enq, att, nb))
      ql
  in
  let* fz_now = Codec.float_field "now_s" j in
  let* fz_units = Codec.int_field "units" j in
  let* rl = Codec.list_field "results" j in
  let* fz_results = Codec.map_m Codec.event_result_of_json rl in
  let* fz_entries = Codec.int_field "entries" j in
  let* dj = Codec.field "digest" j in
  let* fz_digest = Codec.int64_of_json dj in
  let* rj = Codec.field "rng" j in
  let* fz_rng = Codec.int64_of_json rj in
  Ok { fz_queue; fz_now; fz_units; fz_results; fz_entries; fz_digest; fz_rng }
