(** Directed capacitated multigraph.

    This is the paper's network model G = (V, E): V is a set of switches
    (and hosts), E a set of links with capacity c_ij. Nodes and edges are
    dense integer ids so that per-edge state (residual bandwidth, flow
    lists) can live in flat arrays owned by higher layers ({!Nu_net}).

    The structure is append-only: topologies are built once and never
    shrink. Link failure is modelled by higher layers as an edge filter,
    not by mutation, which keeps a single graph shareable across
    concurrent what-if computations.

    Storage is a flat CSR (compressed sparse row) layout: edge
    attributes live in struct-of-arrays columns indexed by edge id, and
    adjacency is an offsets-plus-edge-ids array pair rebuilt lazily
    after appends. {!iter_out}/{!iter_in}/{!src}/{!dst}/{!capacity} read
    it without allocating; {!out_edges}/{!in_edges} materialise the
    historical record-list view on demand. Call {!freeze} after the last
    append before sharing a graph across domains — the lazy rebuild is
    not domain-safe, reads of a frozen graph are. *)

type t

type edge = private {
  id : int;  (** Dense id in [0, edge_count). *)
  src : int;
  dst : int;
  capacity : float;  (** Link capacity, Mbit/s. *)
}

val create : ?initial_nodes:int -> unit -> t
(** Fresh empty graph. [initial_nodes] pre-declares that many nodes. *)

val add_node : t -> int
(** Append a node; returns its id. *)

val add_nodes : t -> int -> unit
(** Append that many nodes at once. *)

val add_edge : t -> src:int -> dst:int -> capacity:float -> int
(** Append a directed edge and return its id. Requires both endpoints to
    exist and [capacity >= 0]. Parallel edges are allowed. *)

val add_link : t -> a:int -> b:int -> capacity:float -> int * int
(** Convenience for network links: adds the two directed edges (a->b,
    b->a) and returns both ids. *)

val node_count : t -> int
val edge_count : t -> int

val edge : t -> int -> edge
(** Edge by id. Raises [Invalid_argument] on an out-of-range id. *)

val src : t -> int -> int
(** Source node of an edge id — O(1) flat-array read, no allocation. *)

val dst : t -> int -> int
(** Destination node of an edge id — O(1) flat-array read. *)

val capacity : t -> int -> float
(** Capacity of an edge id — O(1) flat-array read. *)

val iter_out : t -> int -> (int -> unit) -> unit
(** [iter_out t v f] applies [f] to each outgoing edge id of [v] in
    insertion order, straight off the CSR row — no allocation. *)

val iter_in : t -> int -> (int -> unit) -> unit
(** Incoming counterpart of {!iter_out}. *)

val freeze : t -> unit
(** Force the lazy CSR rebuild now. Required once after the final
    append before the graph is read from multiple domains. *)

val out_edges : t -> int -> edge list
(** Outgoing edges of a node, in insertion order. *)

val in_edges : t -> int -> edge list
(** Incoming edges of a node, in insertion order. *)

val out_degree : t -> int -> int

val find_edge : t -> src:int -> dst:int -> edge option
(** First edge from [src] to [dst], if any. *)

val iter_edges : t -> (edge -> unit) -> unit
val fold_edges : t -> init:'a -> f:('a -> edge -> 'a) -> 'a

val reverse_edge : t -> edge -> edge option
(** The paired opposite-direction edge, if one exists (first match). *)

val total_capacity : t -> float
(** Sum of all directed edge capacities. *)

val pp : Format.formatter -> t -> unit
(** One-line size summary. *)
