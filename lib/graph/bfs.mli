(** Breadth-first search: fewest-hop paths.

    In a Fat-Tree all shortest paths have equal hop count, and the
    candidate path set P(f) of a flow is exactly the ECMP set of
    fewest-hop paths. [usable] lets callers restrict the search to edges
    with enough residual bandwidth or to exclude failed links. *)

val distance :
  Graph.t -> ?usable:(Graph.edge -> bool) -> src:int -> dst:int -> unit ->
  int option
(** Hop distance, or [None] when unreachable. *)

val shortest_path :
  Graph.t -> ?usable:(Graph.edge -> bool) -> src:int -> dst:int -> unit ->
  Path.t option
(** One fewest-hop path (deterministic: first edge in insertion order
    wins). [None] when unreachable or [src = dst]. *)

val all_shortest_paths :
  Graph.t ->
  ?usable:(Graph.edge -> bool) ->
  ?max_paths:int ->
  src:int ->
  dst:int ->
  unit ->
  Path.t list
(** All fewest-hop paths, enumerated from the BFS level DAG in
    deterministic (insertion) order, truncated at [max_paths]
    (default 64). Empty when unreachable or [src = dst]. *)

val reachable : Graph.t -> ?usable:(Graph.edge -> bool) -> src:int -> unit ->
  bool array
(** [reachable g ~src ()] marks every node reachable from [src]. *)
