let default_usable (_ : Graph.edge) = true

(* Traversals walk the CSR rows through [Graph.iter_out]/[iter_in] —
   edge ids only, no per-visit list materialisation. The [usable]
   callback still receives the edge record for API compatibility. *)

(* One BFS from [src]; returns the hop-distance array (-1 = unreachable). *)
let distances g usable src =
  let n = Graph.node_count g in
  let dist = Array.make n (-1) in
  dist.(src) <- 0;
  let q = Queue.create () in
  Queue.push src q;
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    Graph.iter_out g v (fun id ->
        let w = Graph.dst g id in
        if dist.(w) < 0 && usable (Graph.edge g id) then begin
          dist.(w) <- dist.(v) + 1;
          Queue.push w q
        end)
  done;
  dist

let distance g ?(usable = default_usable) ~src ~dst () =
  let dist = distances g usable src in
  if dist.(dst) < 0 then None else Some dist.(dst)

let shortest_path g ?(usable = default_usable) ~src ~dst () =
  if src = dst then None
  else begin
    let n = Graph.node_count g in
    let parent_edge = Array.make n (-1) in
    let seen = Array.make n false in
    seen.(src) <- true;
    let q = Queue.create () in
    Queue.push src q;
    let found = ref false in
    while (not !found) && not (Queue.is_empty q) do
      let v = Queue.pop q in
      Graph.iter_out g v (fun id ->
          let w = Graph.dst g id in
          if (not seen.(w)) && usable (Graph.edge g id) then begin
            seen.(w) <- true;
            parent_edge.(w) <- id;
            if w = dst then found := true;
            Queue.push w q
          end)
    done;
    if not seen.(dst) then None
    else begin
      let rec collect v acc =
        let id = parent_edge.(v) in
        if id < 0 then acc
        else
          let e = Graph.edge g id in
          collect e.Graph.src (e :: acc)
      in
      Some (Path.make g (collect dst []))
    end
  end

let all_shortest_paths g ?(usable = default_usable) ?(max_paths = 64) ~src ~dst
    () =
  if src = dst then []
  else begin
    (* Distances from every node to [dst] over the reversed graph; a
       forward edge (u,v) lies on a shortest path iff
       dist_to_dst u = dist_to_dst v + 1. *)
    let n = Graph.node_count g in
    let dist_to_dst = Array.make n (-1) in
    dist_to_dst.(dst) <- 0;
    let q = Queue.create () in
    Queue.push dst q;
    while not (Queue.is_empty q) do
      let v = Queue.pop q in
      Graph.iter_in g v (fun id ->
          let u = Graph.src g id in
          if dist_to_dst.(u) < 0 && usable (Graph.edge g id) then begin
            dist_to_dst.(u) <- dist_to_dst.(v) + 1;
            Queue.push u q
          end)
    done;
    if dist_to_dst.(src) < 0 then []
    else begin
      let results = ref [] and count = ref 0 in
      (* DFS along the shortest-path DAG, insertion order of out-edges. *)
      let rec walk v acc =
        if !count < max_paths then begin
          if v = dst then begin
            results := Path.make g (List.rev acc) :: !results;
            incr count
          end
          else
            Graph.iter_out g v (fun id ->
                let e = Graph.edge g id in
                if
                  usable e
                  && dist_to_dst.(e.Graph.dst) >= 0
                  && dist_to_dst.(e.Graph.dst) = dist_to_dst.(v) - 1
                then walk e.Graph.dst (e :: acc))
        end
      in
      walk src [];
      List.rev !results
    end
  end

let reachable g ?(usable = default_usable) ~src () =
  let dist = distances g usable src in
  Array.map (fun d -> d >= 0) dist
